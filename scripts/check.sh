#!/usr/bin/env bash
# One-command verification driver.
#
#   scripts/check.sh          tier-1: release build, full test suite
#                             (includes the rf_lint checker + its selftest),
#                             a focused `serve`-label rerun, plus the
#                             enforced clang-tidy pass (skipped without the
#                             toolchain)
#   scripts/check.sh --full   tier-1, then the ASan+UBSan and TSan suites
#                             (separate build trees via CMakePresets.json;
#                             TSan also runs the `stress` label and reruns
#                             the `serve` and `observability` labels)
#   scripts/check.sh --lint-only
#                             fast path: build only rf_lint, run it over the
#                             tree plus its selftest, then the enforced
#                             clang-tidy pass — no test suite
#
# Every build tree is a preset from CMakePresets.json, so this script and
# `cmake --preset <name>` always agree on flags.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

full=0
lint_only=0
if [[ "${1:-}" == "--full" ]]; then full=1; shift; fi
if [[ "${1:-}" == "--lint-only" ]]; then lint_only=1; shift; fi
jobs="$(nproc 2>/dev/null || echo 2)"

if [[ "${lint_only}" == 1 ]]; then
  echo "==> [release] configure"
  cmake --preset release >/dev/null
  echo "==> [release] build rf_lint"
  cmake --build --preset release --target rf_lint -j "${jobs}"
  echo "==> rf_lint (src tests bench examples)"
  build/tools/rf_lint "${repo_root}" src tests bench examples
  echo "==> rf_lint selftest"
  build/tools/rf_lint --selftest "${repo_root}/tools/lint_fixture"
  echo "==> clang-tidy --enforce (skipped when not installed)"
  tools/run_clang_tidy.sh --enforce "${repo_root}/build"
  echo "==> lint checks passed"
  exit 0
fi

run_preset() {
  local preset="$1"
  echo "==> [${preset}] configure"
  cmake --preset "${preset}" >/dev/null
  echo "==> [${preset}] build"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> [${preset}] test"
  ctest --preset "${preset}" -j "${jobs}"
}

run_preset release

# The serve suite exercises the admission queue, socket endpoint, and the
# loopback e2e path; rerun it by label with failure output so a daemon-path
# regression is loud even when the full pass above already covered it.
echo "==> [release] serve-label focused rerun"
ctest --preset release -L serve --output-on-failure -j "${jobs}"

echo "==> clang-tidy --enforce (skipped when not installed)"
tools/run_clang_tidy.sh --enforce "${repo_root}/build"

if [[ "${full}" == "1" ]]; then
  run_preset asan
  # The mmap'd RFP3 loader hands out pointers into mapped pages; run the
  # serialize suite again by name under ASan so an out-of-bounds read of a
  # truncated mapping can never silently drop out of the full pass.
  echo "==> [asan] mmap-load (SerializeTest) focused rerun"
  ctest --preset asan -R 'SerializeTest' --output-on-failure -j "${jobs}"
  run_preset tsan
  # Cross-request batching is the most concurrency-dense code in the repo
  # (admission queue + worker pool + per-connection handler threads), and
  # the observability plane (lock-free metrics, rolling histograms, tracer
  # rings) is read concurrently by the kStats admin path; rerun both suites
  # under TSan explicitly so they cannot silently fall out of the stress
  # label.
  echo "==> [tsan] serve+observability focused rerun"
  ctest --preset tsan -L 'serve|observability' --output-on-failure -j "${jobs}"
fi

echo "==> all checks passed"
