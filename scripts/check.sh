#!/usr/bin/env bash
# One-command verification driver.
#
#   scripts/check.sh          tier-1: release build, full test suite
#                             (includes the rf_lint checker + its selftest),
#                             a focused `serve`-label rerun, plus the
#                             advisory clang-tidy pass
#   scripts/check.sh --full   tier-1, then the ASan+UBSan and TSan suites
#                             (separate build trees via CMakePresets.json;
#                             TSan also runs the `stress` label and reruns
#                             the `serve` and `observability` labels)
#
# Every build tree is a preset from CMakePresets.json, so this script and
# `cmake --preset <name>` always agree on flags.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

full=0
if [[ "${1:-}" == "--full" ]]; then full=1; shift; fi
jobs="$(nproc 2>/dev/null || echo 2)"

run_preset() {
  local preset="$1"
  echo "==> [${preset}] configure"
  cmake --preset "${preset}" >/dev/null
  echo "==> [${preset}] build"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> [${preset}] test"
  ctest --preset "${preset}" -j "${jobs}"
}

run_preset release

# The serve suite exercises the admission queue, socket endpoint, and the
# loopback e2e path; rerun it by label with failure output so a daemon-path
# regression is loud even when the full pass above already covered it.
echo "==> [release] serve-label focused rerun"
ctest --preset release -L serve --output-on-failure -j "${jobs}"

echo "==> clang-tidy (advisory; skipped when not installed)"
tools/run_clang_tidy.sh "${repo_root}/build"

if [[ "${full}" == "1" ]]; then
  run_preset asan
  # The mmap'd RFP3 loader hands out pointers into mapped pages; run the
  # serialize suite again by name under ASan so an out-of-bounds read of a
  # truncated mapping can never silently drop out of the full pass.
  echo "==> [asan] mmap-load (SerializeTest) focused rerun"
  ctest --preset asan -R 'SerializeTest' --output-on-failure -j "${jobs}"
  run_preset tsan
  # Cross-request batching is the most concurrency-dense code in the repo
  # (admission queue + worker pool + per-connection handler threads), and
  # the observability plane (lock-free metrics, rolling histograms, tracer
  # rings) is read concurrently by the kStats admin path; rerun both suites
  # under TSan explicitly so they cannot silently fall out of the stress
  # label.
  echo "==> [tsan] serve+observability focused rerun"
  ctest --preset tsan -L 'serve|observability' --output-on-failure -j "${jobs}"
fi

echo "==> all checks passed"
