// rf_lint self-test fixture (never compiled; text-only input for
// `rf_lint --selftest`). Seeds one or more violations of every rule that
// bad_code.h does not already cover, with exact expected counts.
#include "bad_code.h"

#include <atomic>
#include <cstdlib>

namespace lint_fixture {

// Both statements below drop a Status/Result return value on the floor.
// rf-lint-selftest-expect(discarded-status=2)
inline void DropErrors(Thing& thing) {
  DoThing();
  thing.Save("snapshot.bin");
}

// Consumed results must NOT fire: assigned, tested, or wrapped.
inline bool ConsumeErrors() {
  Status s = DoThing();
  return s.ok();
}

// The fetch_add below uses a weakened memory order with no justification
// comment on its line or the three lines above it (the filler statements
// keep this comment out of the adjacency window).
// rf-lint-selftest-expect(atomic-order-comment=1)
inline void RecordSample(std::atomic<long>& counter) {
  long x = 1;
  x += 2;
  x += 3;
  counter.fetch_add(x, std::memory_order_relaxed);
}

// Compliant atomic access must NOT fire: the justification is adjacent.
inline long ReadSample(const std::atomic<long>& counter) {
  // relaxed: statistical tally, no ordering with other memory required.
  return counter.load(std::memory_order_relaxed);
}

// rf-lint-selftest-expect(naked-new=1)
inline int* LeakAnInt() {
  return new int(42);
}

// The leaked-singleton idiom must NOT fire.
inline Thing& GlobalThing() {
  static Thing* thing = new Thing();
  return *thing;
}

// rf-lint-selftest-expect(naked-malloc=1)
inline void* RawBuffer() {
  return malloc(64);
}

// One bare call counted, one suppressed: the suppression keeps the expected
// count at 1, so a broken suppression mechanism fails the selftest with 2.
// rf-lint-selftest-expect(std-rand=1)
inline int UnseededRandom() {
  return std::rand();
}
inline int SuppressedRandom() {
  return std::rand();  // rf-lint-allow(std-rand) fixture: proves suppression
}

// rf-lint-selftest-expect(volatile-qualifier=1)
inline void SpinWait() {
  volatile int spin_flag = 0;
  (void)spin_flag;
}

// TRACE_SPAN inside the dispatched lambda must fire; the span around the
// dispatch in TracedDispatch must NOT.
// rf-lint-selftest-expect(trace-span-in-parallel-for=1)
inline void PerChunkSpan() {
  ParallelFor(0, 100, [](int tid, long begin, long end) {
    TRACE_SPAN("per-chunk");
  });
}
inline void TracedDispatch() {
  TRACE_SPAN("dispatch");
  ParallelFor(0, 100, [](int tid, long begin, long end) {});
}

// Hand-rolled JSON concatenation: the first line glues a literal that ends
// with an escaped quote onto a value, the second glues `+` onto a literal
// that opens with one. Each shape fires once.
// rf-lint-selftest-expect(json-string-concat=2)
inline std::string JsonByHand(const std::string& name) {
  std::string json = "{\"name\": \"" + name;
  json = json + "\", \"ok\": true}";
  return json;
}

// Concatenation with no JSON quoting involved must NOT fire, and neither
// must escaped quotes mentioned inside comments: "\"" + like that.
inline std::string PlainConcat(const std::string& name) {
  return "resume: " + name;
}

// Typed reinterpret_casts of raw bytes outside the serialize/quant TUs:
// the float* and const int32_t* views each fire once.
// rf-lint-selftest-expect(mmap-payload-cast=2)
inline float ReadPayloadWrong(unsigned char* bytes) {
  float* floats = reinterpret_cast<float*>(bytes);
  const int32_t* words = reinterpret_cast<const int32_t*>(bytes + 4);
  return floats[0] + static_cast<float>(words[0]);
}

// Byte-level views stay allowed: stream-IO casts to the char family,
// std::byte and uintptr_t must NOT fire.
inline const char* ReadPayloadOk(unsigned char* bytes) {
  uintptr_t addr = reinterpret_cast<uintptr_t>(bytes);
  (void)addr;
  return reinterpret_cast<const char*>(bytes);
}

// Metric-name lookups: the first builds the name at runtime (allocates and
// re-hashes per call), the second passes a literal outside the lowercase
// dotted convention. Each fires once.
// rf-lint-selftest-expect(metric-name-literal=2)
inline void BadMetricNames(Registry& registry, const std::string& shard) {
  registry.GetCounter("serve.requests." + shard)->Increment();
  registry.GetHistogram("Serve.E2E-Latency")->Record(1);
}

// Compliant lookups must NOT fire: one lowercase dotted literal, resolved
// once into a stable pointer — including an argument that wraps lines.
inline void GoodMetricNames(Registry& registry) {
  static Counter* counter = registry.GetCounter("serve.requests");
  static Counter* wrapped = registry.GetCounter(
      "serve.rejected.deadline");
  counter->Increment();
  wrapped->Increment();
}

}  // namespace lint_fixture
