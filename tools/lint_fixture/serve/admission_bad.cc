// rf_lint self-test fixture (never compiled; text-only input for
// `rf_lint --selftest`). Lives under a serve/ directory because the
// blocking-reachable-under-lock rule roots in serving-path files: it seeds
// blocking calls directly inside lock critical sections, with exact
// expected counts, plus compliant shapes that must NOT fire. The
// *transitive* chains the rule also catches are seeded in
// ../deadlock/transitive_block.cc.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace lint_fixture {

// A sleep between the lock declaration and the end of its block stalls
// every thread serialized behind the mutex, and a raw socket read inside
// the same region blocks for as long as the peer stays silent.
// rf-lint-selftest-expect(blocking-reachable-under-lock=2)
inline void BlockWhileHoldingTheLock(std::mutex& mu, int fd) {
  char byte = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ::read(fd, &byte, 1);
  }
}

// Condition-variable waits must NOT fire: they release the lock while
// parked, which is exactly the admission loop's idiom.
inline void ParkOnTheQueue(std::mutex& mu, std::condition_variable& cv,
                           bool& ready) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&ready] { return ready; });
  cv.wait_until(lock, std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(5));
}

// Blocking calls outside any lock region must NOT fire.
inline void BlockWithoutTheLock(int fd) {
  char byte = 0;
  ::read(fd, &byte, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace lint_fixture
