// rf_lint self-test fixture (never compiled; text-only input for
// `rf_lint --selftest`). Seeds exactly one *transitive* blocking chain:
// PumpOnce holds mu_ and calls DrainPeer -> ReadByte -> ::read, two hops
// away from the critical section — invisible to a textual scanner, caught
// by the call-graph pass, and reported with the full chain. The compliant
// shapes below (cv-wait, a designated nonblocking I/O endpoint, and
// blocking reached with no lock held) must NOT fire.
// rf-lint-selftest-expect(blocking-reachable-under-lock=1)

#include <condition_variable>
#include <mutex>
#include <unistd.h>

namespace lint_fixture {

class FrameRelay {
 public:
  void PumpOnce() {
    std::lock_guard<std::mutex> lock(mu_);
    DrainPeer();
    pending_ = 0;
  }

  // Calling the same chain with no lock held must NOT fire.
  void PumpUnlocked() { DrainPeer(); }

 private:
  void DrainPeer() { ReadByte(); }

  int ReadByte() {
    char byte = 0;
    return static_cast<int>(::read(fd_, &byte, 1));
  }

  std::mutex mu_;
  int fd_ = -1;
  int pending_ = 0;
};

// Condition-variable waits release the lock while parked and must NOT
// fire, including through the predicate-lambda form.
class ParkedConsumer {
 public:
  void AwaitWork() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return ready_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool ready_ = false;
};

// A designated non-blocking I/O endpoint: the attribute comment vouches
// that the fd is O_NONBLOCK, so chains through it must NOT fire.
class StatusBeacon {
 public:
  void Publish() {
    std::lock_guard<std::mutex> lock(mu_);
    WriteBeacon();
  }

 private:
  // rf-lint-attr(nonblocking) beacon fd is opened O_NONBLOCK; this write
  // returns EAGAIN instead of parking.
  void WriteBeacon() { ::write(fd_, "x", 1); }

  std::mutex mu_;
  int fd_ = -1;
};

}  // namespace lint_fixture
