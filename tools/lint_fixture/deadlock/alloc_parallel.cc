// rf_lint self-test fixture (never compiled; text-only input for
// `rf_lint --selftest`). Seeds the alloc-in-parallel-for rule: the
// dispatched body grows a vector directly (one finding) and reaches a
// second growth site through a helper call (one finding via the call
// graph). Writing into pre-sized storage must NOT fire — `assign` and
// index stores reuse capacity, which is the steady-state idiom the
// zero-alloc invariant protects.
// rf-lint-selftest-expect(alloc-in-parallel-for=2)

#include <vector>

namespace lint_fixture {

inline void GrowScratch(std::vector<int>& scratch) {
  scratch.reserve(128);
}

inline void CollectInParallel(std::vector<int>& out) {
  ParallelFor(0, 100, [&](int tid, long begin, long end) {
    out.push_back(static_cast<int>(begin));
    GrowScratch(out);
  });
}

// Pre-sized writes and capacity-reusing assign must NOT fire.
inline void FillInParallel(std::vector<int>& out) {
  ParallelFor(0, 100, [&](int tid, long begin, long end) {
    for (long i = begin; i < end; ++i) {
      out[static_cast<unsigned long>(i)] = static_cast<int>(i);
    }
  });
}

inline void ResetInParallel(std::vector<int>& out) {
  ParallelFor(0, 4, [&](int tid, long begin, long end) {
    out.assign(out.size(), 0);
  });
}

// Growth outside any parallel body must NOT fire this rule.
inline void GrowSequentially(std::vector<int>& out) {
  out.push_back(1);
  GrowScratch(out);
}

}  // namespace lint_fixture
