// rf_lint self-test fixture (never compiled; text-only input for
// `rf_lint --selftest`). Seeds exactly one lock-order cycle: TransferAB
// nests mu_a_ -> mu_b_ inside one function, while TransferBA holds mu_b_
// and reaches mu_a_ through a callee — so the cycle needs both the
// within-function edge and the cross-function (call-graph) edge to be
// detected, and the finding must carry a witness path for each direction.
// rf-lint-selftest-expect(lock-order-cycle=1)

#include <mutex>

namespace lint_fixture {

class PairedState {
 public:
  void TransferAB() {
    std::lock_guard<std::mutex> a(mu_a_);
    std::lock_guard<std::mutex> b(mu_b_);
    ++balance_;
  }

  void TransferBA() {
    std::lock_guard<std::mutex> b(mu_b_);
    GrabA();
  }

 private:
  void GrabA() {
    std::lock_guard<std::mutex> a(mu_a_);
    --balance_;
  }

  std::mutex mu_a_;
  std::mutex mu_b_;
  int balance_ = 0;
};

// A consistent acquisition order everywhere must NOT fire, even when both
// orders of *textual* appearance exist: only the acquisition graph counts.
class OrderedState {
 public:
  void Deposit() {
    std::lock_guard<std::mutex> a(mu_a_);
    std::lock_guard<std::mutex> b(mu_b_);
    ++total_;
  }

  void Withdraw() {
    std::lock_guard<std::mutex> a(mu_a_);
    std::lock_guard<std::mutex> b(mu_b_);
    --total_;
  }

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
  int total_ = 0;
};

// Sequential (non-nested) acquisition must NOT create order edges: the
// first guard's scope closes before the second opens.
class SequentialState {
 public:
  void Tick() {
    {
      std::lock_guard<std::mutex> b(mu_b_);
      ++ticks_;
    }
    {
      std::lock_guard<std::mutex> a(mu_a_);
      ++ticks_;
    }
  }

  void Tock() {
    {
      std::lock_guard<std::mutex> a(mu_a_);
      --ticks_;
    }
    {
      std::lock_guard<std::mutex> b(mu_b_);
      --ticks_;
    }
  }

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
  int ticks_ = 0;
};

}  // namespace lint_fixture
