// rf_lint self-test fixture: every lint rule is violated somewhere in this
// directory, with exact expected counts declared via
// rf-lint-selftest-expect(rule=N) markers. These files are never compiled —
// they exist only as text for `rf_lint --selftest`.
//
// Wrong guard below: the expected macro is RESUFORMER_BAD_CODE_H_.
// rf-lint-selftest-expect(include-guard=1)
#ifndef LINT_FIXTURE_BAD_CODE_H
#define LINT_FIXTURE_BAD_CODE_H

#include <string>

namespace lint_fixture {

// Both declarations below return Status/Result without [[nodiscard]].
// rf-lint-selftest-expect(nodiscard-status=2)
Status DoThing();
Result<int> ComputeAnswer(const std::string& input);

// Annotated declaration: must NOT be reported.
[[nodiscard]] Status DoThingSafely();

struct Thing {
  // Annotated member declaration: must not fire either, but registers
  // `Save` as a Status-returning function for the discarded-status rule.
  [[nodiscard]] Status Save(const std::string& path);
};

}  // namespace lint_fixture

#endif  // LINT_FIXTURE_BAD_CODE_H
