#!/usr/bin/env bash
# Live stats watch-loop for a running `resuformer_cli serve` daemon:
# fetches the kStats admin frame every INTERVAL seconds and re-renders the
# table in place.
#
#   tools/serve_stats.sh PORT [INTERVAL] [CLI]
#
#   PORT      the daemon's loopback port (printed on its "serving on" line)
#   INTERVAL  seconds between polls (default 2)
#   CLI       path to resuformer_cli (default build/examples/resuformer_cli)
#
# Exits nonzero when the daemon becomes unreachable (drained or killed).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
port="${1:?usage: tools/serve_stats.sh PORT [INTERVAL] [CLI]}"
interval="${2:-2}"
cli="${3:-${repo_root}/build/examples/resuformer_cli}"

if [[ ! -x "${cli}" ]]; then
  echo "serve_stats: ${cli} not found or not executable (build first, or" \
       "pass the CLI path as the third argument)" >&2
  exit 1
fi

while true; do
  output="$("${cli}" stats --port "${port}")" || {
    echo "serve_stats: daemon on port ${port} unreachable; exiting" >&2
    exit 1
  }
  clear
  echo "resuformer serve @ 127.0.0.1:${port}  (every ${interval}s, ctrl-c to quit)"
  echo "${output}"
  sleep "${interval}"
done
