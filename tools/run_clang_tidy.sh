#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the project
# sources using a compile_commands.json produced by CMake.
#
#   tools/run_clang_tidy.sh [build_dir] [-- extra clang-tidy args]
#
# Exits 0 with a notice when clang-tidy is not installed, so wrapper
# scripts (scripts/check.sh) can invoke it unconditionally: the tidy pass
# is advisory on machines without the toolchain, mandatory on CI images
# that carry it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (install LLVM" \
       "clang-tools to enable this pass)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: generating compile_commands.json in ${build_dir}"
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Project sources only — gtest/benchmark headers are not ours to lint.
mapfile -t sources < <(cd "${repo_root}" &&
    find src tests bench examples tools -name '*.cc' ! -path 'tools/lint_fixture/*' | sort)

echo "run_clang_tidy: ${#sources[@]} files, config $(clang-tidy --version | head -1)"
status=0
for f in "${sources[@]}"; do
  clang-tidy -p "${build_dir}" --quiet "$@" "${repo_root}/${f}" || status=1
done
exit "${status}"
