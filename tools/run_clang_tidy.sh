#!/usr/bin/env bash
# Runs clang-tidy over the project sources using a compile_commands.json
# produced by CMake.
#
#   tools/run_clang_tidy.sh [--enforce] [build_dir] [-- extra clang-tidy args]
#
# Default mode runs the repo-root .clang-tidy config advisorily. --enforce
# instead runs a pinned check set with -warnings-as-errors, so any finding
# fails the run:
#   bugprone-use-after-move, bugprone-dangling-handle,
#   performance-move-const-arg, concurrency-*
#
# Exits 0 with a notice when clang-tidy is not installed, so wrapper
# scripts (scripts/check.sh) can invoke it unconditionally: the tidy pass
# is skipped on machines without the toolchain, enforced on CI images
# that carry it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
enforce=0
if [[ "${1:-}" == "--enforce" ]]; then enforce=1; shift; fi
build_dir="${1:-${repo_root}/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (install LLVM" \
       "clang-tools to enable this pass)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: generating compile_commands.json in ${build_dir}"
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# The enforced set is pinned here, not in .clang-tidy: these four families
# flag outright bugs (moved-from reads, dangling string_views, wasted moves,
# lock misuse) with a near-zero false-positive rate, so they are safe to
# hard-fail on every machine that has the toolchain.
enforce_checks='-*,bugprone-use-after-move,bugprone-dangling-handle'
enforce_checks+=',performance-move-const-arg,concurrency-*'
tidy_args=()
if [[ "${enforce}" == 1 ]]; then
  tidy_args+=("--checks=${enforce_checks}")
  tidy_args+=("--warnings-as-errors=${enforce_checks}")
fi

# Project sources only — gtest/benchmark headers are not ours to lint.
mapfile -t sources < <(cd "${repo_root}" &&
    find src tests bench examples tools -name '*.cc' ! -path 'tools/lint_fixture/*' | sort)

mode="advisory"
if [[ "${enforce}" == 1 ]]; then mode="enforce"; fi
echo "run_clang_tidy: ${#sources[@]} files, mode ${mode}," \
     "$(clang-tidy --version | head -1)"
status=0
for f in "${sources[@]}"; do
  clang-tidy -p "${build_dir}" --quiet \
      ${tidy_args[@]+"${tidy_args[@]}"} "$@" "${repo_root}/${f}" || status=1
done
exit "${status}"
