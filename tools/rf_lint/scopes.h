// rf_lint scope tracker: brace/function structure + per-function facts.
//
// Consumes the token stream from lexer.h and produces one FunctionInfo per
// function definition (including lambdas, which become standalone
// pseudo-functions named `Outer::<lambda@LINE>`), each carrying the facts
// the cross-file rule families need:
//
//   * mutexes acquired: std::lock_guard/unique_lock/scoped_lock declarations
//     and raw `.lock()` calls, with the guarded expression resolved to a
//     qualified identity ("ParseServer::mu_", "buffer->mu") and RAII
//     lifetime tracked via the enclosing brace scope (explicit `.unlock()`
//     releases early; `std::defer_lock` guards only arm on `.lock()`);
//   * condition-variable waits (`.wait/wait_for/wait_until`) — recorded
//     separately because they release the lock while parked;
//   * blocking syscalls (sleeps, and globally-qualified ::read/::write/
//     ::recv/::send/::accept/::connect/::poll/::select);
//   * heap allocation sites (`new`, make_unique/make_shared, malloc family,
//     container-growth member calls, local container construction);
//   * outgoing calls by simple name, each annotated with the set of locks
//     held at the call site.
//
// Lambdas passed (textually) inside the argument list of a ParallelFor /
// ForRows / ForElems call are flagged `is_parallel_body` — those are the
// roots of the alloc-in-parallel-for rule. An attribute comment
// `rf-lint-attr(nonblocking)` on or just above a function's signature marks
// it as a designated non-blocking endpoint for the reachability pass.

#ifndef RESUFORMER_TOOLS_RF_LINT_SCOPES_H_
#define RESUFORMER_TOOLS_RF_LINT_SCOPES_H_

#include <string>
#include <vector>

#include "rf_lint/lexer.h"

namespace rflint {

struct LockSite {
  std::string mutex;      // qualified identity, e.g. "ParseServer::mu_"
  std::string guard_var;  // RAII guard variable name; "" for raw .lock()
  std::string kind;       // lock_guard | unique_lock | scoped_lock | lock()
  int line = 0;
  std::vector<int> held_at_acquire;  // indices of locks already held
};

struct CallSite {
  std::string name;       // simple callee name (last identifier)
  std::string qualifier;  // preceding Foo:: qualifier if present, else ""
  bool member = false;    // receiver call (obj.f / ptr->f)
  // One-time initialization: the initializer of a function-local static
  // (`static T* x = Lookup();`) or the body of a thread_local null-check
  // (`thread_local T* b = nullptr; if (b == nullptr) {...}`). Runs once per
  // process/thread, so the reachability families (blocking/alloc) skip the
  // edge; lock-order keeps it (a first-call deadlock still hangs).
  bool static_init = false;
  int line = 0;
  std::vector<int> locks_held;  // indices into FunctionInfo::locks
};

struct BlockingSite {
  std::string what;  // e.g. "sleep_for", "::read"
  int line = 0;
  std::vector<int> locks_held;
};

struct AllocSite {
  std::string what;  // e.g. "new", "make_unique", "x.push_back"
  int line = 0;
  std::vector<int> locks_held;
};

struct FunctionInfo {
  std::string qualified_name;  // Namespace::Class::Name or Outer::<lambda@N>
  std::string simple_name;     // Name (lambdas: "<lambda@N>")
  std::string owner_class;     // innermost class, or "" for free functions
  std::string file;            // path as given to AnalyzeScopes
  int line = 0;                // line of the name token (lambdas: of '[')
  bool is_lambda = false;
  bool is_parallel_body = false;  // lambda inside ParallelFor/ForRows/ForElems args
  bool attr_nonblocking = false;  // rf-lint-attr(nonblocking) on signature
  std::vector<LockSite> locks;
  std::vector<CallSite> calls;
  std::vector<BlockingSite> blocking;
  std::vector<AllocSite> allocs;
  std::vector<int> cv_wait_lines;
};

struct ScopeAnalysis {
  std::vector<FunctionInfo> functions;
};

ScopeAnalysis AnalyzeScopes(const std::string& file_rel, const LexedFile& lex);

}  // namespace rflint

#endif  // RESUFORMER_TOOLS_RF_LINT_SCOPES_H_
