// rf_lint SARIF emitter: writes findings as a minimal SARIF 2.1.0 log so
// editors and CI annotate from the same machine-readable stream the human
// output comes from.

#ifndef RESUFORMER_TOOLS_RF_LINT_SARIF_H_
#define RESUFORMER_TOOLS_RF_LINT_SARIF_H_

#include <string>
#include <vector>

#include "rf_lint/rules.h"

namespace rflint {

/// Serializes the SARIF 2.1.0 document (one run, one result per violation).
std::string SarifDocument(const std::vector<Violation>& violations);

/// Writes SarifDocument() to `path`. Returns false on I/O failure.
bool WriteSarif(const std::string& path,
                const std::vector<Violation>& violations);

}  // namespace rflint

#endif  // RESUFORMER_TOOLS_RF_LINT_SARIF_H_
