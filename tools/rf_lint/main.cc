// rf_lint entry point: the ResuFormer project-invariant checker.
//
// A self-contained C++20 analysis tool (no external dependencies) that walks
// src/, tests/, bench/ and examples/ and enforces the project conventions
// the compiler cannot check — including the cross-file lock-order and
// blocking-reachability families that need a project call graph. Registered
// as the `rf_lint` ctest test, so tier-1 runs it on every build;
// `--selftest tools/lint_fixture` checks the checker itself against seeded
// violations (the `rf_lint_selftest` test). See rules.h for the rule list
// and DESIGN.md section 4k for the architecture.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "rf_lint/fixit.h"
#include "rf_lint/rules.h"
#include "rf_lint/sarif.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

void WalkDirectory(const fs::path& root, const fs::path& dir,
                   rflint::Linter* linter) {
  if (!fs::exists(dir)) return;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourceFile(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    linter->AddFile(p, fs::relative(p, root).generic_string());
  }
}

int Usage() {
  std::cerr
      << "usage: rf_lint [--sarif <path>] [--fix] <repo_root> [subdir...]\n"
      << "       rf_lint [--sarif <path>] --selftest <fixture_dir>\n"
      << "default subdirs: src tests bench examples\n"
      << "--fix applies mechanical rewrites for include-guard and\n"
      << "      atomic-order-comment, then reports what remains\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool selftest = false;
  bool fix = false;
  std::string sarif_path;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--selftest") {
      selftest = true;
    } else if (args[i] == "--fix") {
      fix = true;
    } else if (args[i] == "--sarif") {
      if (i + 1 >= args.size()) return Usage();
      sarif_path = args[++i];
    } else if (args[i].rfind("--", 0) == 0) {
      return Usage();
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.empty() || (selftest && positional.size() != 1)) {
    return Usage();
  }
  const fs::path root = positional[0];
  if (!fs::exists(root)) {
    std::cerr << "rf_lint: no such directory: " << root << "\n";
    return 2;
  }

  rflint::Linter linter;
  if (selftest) {
    WalkDirectory(root, root, &linter);
  } else {
    std::vector<std::string> subdirs(positional.begin() + 1,
                                     positional.end());
    if (subdirs.empty()) subdirs = {"src", "tests", "bench", "examples"};
    for (const std::string& sub : subdirs) {
      WalkDirectory(root, root / sub, &linter);
    }
  }
  linter.Run();

  if (!sarif_path.empty() &&
      !rflint::WriteSarif(sarif_path, linter.violations())) {
    std::cerr << "rf_lint: cannot write SARIF log: " << sarif_path << "\n";
    return 2;
  }

  if (selftest) {
    // Every rule must fire with exactly the count the fixture declares.
    const std::map<std::string, int> expected = linter.Expectations();
    std::map<std::string, int> actual;
    for (const rflint::Violation& v : linter.violations()) ++actual[v.rule];
    bool ok = true;
    for (const std::string& rule : rflint::Linter::AllRules()) {
      const int want = expected.count(rule) ? expected.at(rule) : 0;
      const int got = actual.count(rule) ? actual.at(rule) : 0;
      if (want == 0) {
        std::cerr << "selftest: fixture declares no expectation for rule '"
                  << rule << "' — every rule needs a seeded violation\n";
        ok = false;
      } else if (want != got) {
        std::cerr << "selftest: rule '" << rule << "' expected " << want
                  << " violation(s), detected " << got << "\n";
        ok = false;
      }
    }
    if (!ok) {
      for (const rflint::Violation& v : linter.violations()) {
        std::cerr << "  detected: " << v.file << ":" << v.line << ": ["
                  << v.rule << "]\n";
      }
      return 1;
    }
    std::cout << "rf_lint selftest: all " << rflint::Linter::AllRules().size()
              << " rules detected with expected counts\n";
    return 0;
  }

  if (fix) {
    const int modified =
        rflint::ApplyFixes(linter.files(), linter.violations());
    std::cout << "rf_lint --fix: rewrote " << modified << " file(s)\n";
    // Re-lint from scratch so the report reflects the post-fix tree.
    rflint::Linter after;
    std::vector<std::string> subdirs(positional.begin() + 1,
                                     positional.end());
    if (subdirs.empty()) subdirs = {"src", "tests", "bench", "examples"};
    for (const std::string& sub : subdirs) {
      WalkDirectory(root, root / sub, &after);
    }
    after.Run();
    for (const rflint::Violation& v : after.violations()) {
      std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    }
    if (!after.violations().empty()) {
      std::cerr << after.violations().size()
                << " violation(s) remain after --fix\n";
      return 1;
    }
    return 0;
  }

  for (const rflint::Violation& v : linter.violations()) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (!linter.violations().empty()) {
    std::cerr << linter.violations().size()
              << " violation(s). Suppress a deliberate exception with "
                 "// rf-lint-allow(rule) and a justification.\n";
    return 1;
  }
  std::cout << "rf_lint: clean\n";
  return 0;
}
