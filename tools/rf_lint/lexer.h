// rf_lint lexer: a real C++ tokenizer for the analysis engine.
//
// Replaces the blank-out heuristics of the original line-regex checker with
// an actual token stream: comments and literal *contents* never reach the
// rules, string/char/raw-string boundaries are exact, preprocessor
// directives are folded (with their line continuations) into single tokens,
// and `#if 0` regions produce no tokens at all. Tokens carry 1-based line
// numbers so findings and suppressions stay line-addressable.
//
// Deliberately not a preprocessor: macros are not expanded, and the live
// branch of a non-zero `#if` is tokenized as-is (soundness caveats are
// documented in DESIGN.md section 4k).

#ifndef RESUFORMER_TOOLS_RF_LINT_LEXER_H_
#define RESUFORMER_TOOLS_RF_LINT_LEXER_H_

#include <string>
#include <vector>

namespace rflint {

enum class TokKind {
  kIdent,   // identifiers and keywords (rules match by spelling)
  kNumber,  // numeric literals, digit separators included
  kString,  // string literal, spelling includes quotes/prefix ("x", R"(x)")
  kChar,    // character literal, spelling includes quotes
  kPunct,   // operators/punctuation; only "::" and "->" are multi-char
  kPp,      // whole preprocessor directive, continuations joined
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;  // exact source spelling (kPp: joined directive text)
  int line = 0;      // 1-based line of the token's first character
};

struct Comment {
  std::string text;  // spelling without the // or /* */ markers
  int line = 0;      // 1-based first line
  int end_line = 0;  // 1-based last line (== line for // comments)
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  // 1-based per-line flag: line carries (part of) a comment. Index 0 unused.
  std::vector<bool> line_has_comment;
  int num_lines = 0;
};

/// Tokenizes `source`. Never fails: unterminated constructs are closed at
/// end of file so a hostile input degrades to odd tokens, not a crash.
LexedFile Lex(const std::string& source);

/// For a kString token: the spelling between the outermost quotes (escape
/// sequences NOT decoded; raw strings lose prefix/delimiters only).
std::string StringInner(const Token& token);

}  // namespace rflint

#endif  // RESUFORMER_TOOLS_RF_LINT_LEXER_H_
