// rf_lint rule driver: loads files, runs the token-level project rules and
// the cross-file graph families (callgraph.h), and collects violations.
//
// Rule ids (the suppression syntax names these):
//   nodiscard-status        Header declarations returning Status/Result<T>
//                           must carry [[nodiscard]].
//   discarded-status        A statement that is solely a call to a Status/
//                           Result-returning function drops the error.
//   atomic-order-comment    Weakened std::memory_order needs a justification
//                           comment on the same line or within three above.
//   naked-new               No naked `new` (static leaked singletons exempt).
//   naked-malloc            No malloc/calloc/realloc/free.
//   std-rand                No std::rand/srand; use common/rng.h.
//   volatile-qualifier      No volatile; use std::atomic with an order.
//   include-guard           RESUFORMER_<PATH>_<FILE>_H_ ("src/" stripped).
//   trace-span-in-parallel-for  No TRACE_SPAN inside a ParallelFor body.
//   json-string-concat      No hand-rolled JSON via string concatenation.
//   mmap-payload-cast       reinterpret_cast to non-byte pointer types only
//                           in nn/serialize.cc and tensor/quant.cc.
//   metric-name-literal     Metric lookups pass one lowercase dotted literal.
//   lock-order-cycle        (graph) cycle in the mutex acquisition order.
//   blocking-reachable-under-lock  (graph) call chain from a critical
//                           section to a blocking syscall, chain printed.
//   alloc-in-parallel-for   (graph) allocation reachable from a ParallelFor
//                           body or plan-replay handler.
//
// Suppressions (in comments):
//   rf-lint-allow(rule[,rule...])        this line or the next line
//   rf-lint-allow-file(rule[,rule...])   the whole file
// Self-test fixtures declare exact counts with
//   rf-lint-selftest-expect(rule=N)

#ifndef RESUFORMER_TOOLS_RF_LINT_RULES_H_
#define RESUFORMER_TOOLS_RF_LINT_RULES_H_

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rf_lint/lexer.h"
#include "rf_lint/scopes.h"

namespace rflint {

/// Canonical include-guard macro for a path relative to the repo root:
/// RESUFORMER_<PATH>_<FILE>_H_ with a leading "src/" stripped.
std::string ExpectedGuardMacro(std::string rel);

struct Violation {
  std::string file;  // path as reported (relative to the scan root)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

struct LintedFile {
  std::filesystem::path path;  // absolute path (for --fix rewrites)
  std::string rel;             // path relative to the scan root
  std::string source;          // raw bytes
  LexedFile lex;
  // Suppression state parsed out of comments.
  std::set<std::string> file_allow;                 // rf-lint-allow-file
  std::map<int, std::set<std::string>> line_allow;  // rf-lint-allow by line
};

class Linter {
 public:
  void AddFile(const std::filesystem::path& path, const std::string& rel);
  void Run();

  const std::vector<Violation>& violations() const { return violations_; }
  const std::vector<LintedFile>& files() const { return files_; }

  // Exact per-rule expectations declared in fixture comments via
  // rf-lint-selftest-expect(rule=N).
  std::map<std::string, int> Expectations() const;

  static const std::vector<std::string>& AllRules();

 private:
  bool Suppressed(const LintedFile& f, int line, const std::string& rule) const;
  void Report(const LintedFile& f, int line, const std::string& rule,
              std::string message);

  void CollectStatusFunctions();
  void LintNodiscardDeclarations(const LintedFile& f);
  void LintDiscardedStatus(const LintedFile& f);
  void LintAtomicOrderComments(const LintedFile& f);
  void LintBannedConstructs(const LintedFile& f);
  void LintIncludeGuard(const LintedFile& f);
  void LintTraceSpanInParallelFor(const LintedFile& f);
  void LintJsonStringConcat(const LintedFile& f);
  void LintMmapPayloadCast(const LintedFile& f);
  void LintMetricNameLiteral(const LintedFile& f);
  void RunGraphFamilies();

  std::vector<LintedFile> files_;
  std::set<std::string> status_functions_;
  std::vector<Violation> violations_;
};

}  // namespace rflint

#endif  // RESUFORMER_TOOLS_RF_LINT_RULES_H_
