// Unit tests for the rf_lint analysis engine: lexer edge cases, scope facts,
// the cross-file graph rules, SARIF validity, and --fix idempotency. The
// end-to-end fixture counts live in `rf_lint --selftest` (the
// rf_lint_selftest ctest); these tests pin down the engine behaviors the
// fixtures rely on.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rf_lint/callgraph.h"
#include "rf_lint/fixit.h"
#include "rf_lint/lexer.h"
#include "rf_lint/rules.h"
#include "rf_lint/sarif.h"
#include "rf_lint/scopes.h"

namespace rflint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Helpers

bool HasIdent(const LexedFile& lex, const std::string& text) {
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kIdent && t.text == text) return true;
  }
  return false;
}

std::vector<FunctionInfo> Funcs(const std::string& file,
                                const std::string& src) {
  return AnalyzeScopes(file, Lex(src)).functions;
}

const FunctionInfo* Find(const std::vector<FunctionInfo>& fns,
                         const std::string& qualified) {
  for (const FunctionInfo& f : fns) {
    if (f.qualified_name == qualified) return &f;
  }
  return nullptr;
}

int CountRule(const std::vector<GraphFinding>& findings,
              const std::string& rule) {
  int n = 0;
  for (const GraphFinding& g : findings) {
    if (g.rule == rule) ++n;
  }
  return n;
}

// Scratch directory on disk for the Linter/fix tests (AddFile reads files).
class TempTree {
 public:
  TempTree() {
    static int counter = 0;
    root_ = fs::temp_directory_path() /
            ("rf_lint_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(root_);
  }
  ~TempTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  fs::path Write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << content;
    return p;
  }

  std::string Read(const std::string& rel) const {
    std::ifstream in(root_ / rel, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  const fs::path& root() const { return root_; }

 private:
  fs::path root_;
};

// Minimal strict JSON validator (objects, arrays, strings with escapes,
// numbers, literals) so the SARIF test proves well-formedness rather than
// grepping for substrings.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return i_ == s_.size();
  }

 private:
  bool Value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++i_;  // {
    SkipWs();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != '}') return false;
    ++i_;
    return true;
  }

  bool Array() {
    ++i_;  // [
    SkipWs();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != ']') return false;
    ++i_;
    return true;
  }

  bool String() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (i_ + k >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[i_ + k]))) {
              return false;
            }
          }
          i_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++i_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    size_t digits = 0;
    while (i_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
      ++digits;
    }
    if (digits == 0) return false;
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        ++i_;
      }
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        ++i_;
      }
    }
    return i_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(i_, len, word) != 0) return false;
    i_ += len;
    return true;
  }

  void SkipWs() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
            s_[i_] == '\r')) {
      ++i_;
    }
  }

  const std::string& s_;
  size_t i_ = 0;
};

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, CommentsNeverReachTheTokenStream) {
  const LexedFile lex = Lex(
      "int a; // trailing note with code-looking text: new int[3]\n"
      "/* block with volatile and malloc( inside */ int b;\n");
  EXPECT_FALSE(HasIdent(lex, "new"));
  EXPECT_FALSE(HasIdent(lex, "volatile"));
  EXPECT_FALSE(HasIdent(lex, "malloc"));
  EXPECT_TRUE(HasIdent(lex, "a"));
  EXPECT_TRUE(HasIdent(lex, "b"));
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_TRUE(lex.line_has_comment[1]);
  EXPECT_TRUE(lex.line_has_comment[2]);
}

TEST(LexerTest, StringContentsAreOpaque) {
  const LexedFile lex = Lex("const char* s = \"// not a comment; new X\";\n");
  EXPECT_TRUE(lex.comments.empty());
  EXPECT_FALSE(HasIdent(lex, "new"));
  bool found = false;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kString) {
      found = true;
      EXPECT_EQ(StringInner(t), "// not a comment; new X");
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, RawStringSpansLinesAndHidesQuotes) {
  const LexedFile lex = Lex(
      "auto s = R\"js({\"k\": \"v\", // not a comment\n"
      "\"volatile\": )js\";\n"
      "int after = 1;\n");
  EXPECT_TRUE(lex.comments.empty());
  EXPECT_FALSE(HasIdent(lex, "volatile"));
  EXPECT_TRUE(HasIdent(lex, "after"));
  int strings = 0;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kString) {
      ++strings;
      EXPECT_EQ(t.line, 1);
      EXPECT_NE(StringInner(t).find("not a comment"), std::string::npos);
    }
  }
  EXPECT_EQ(strings, 1);
  // A ) inside the body that does not complete the delimiter must not close.
  const LexedFile tricky = Lex("auto t = R\"x(a)y\" b)x\"; int z;\n");
  EXPECT_TRUE(HasIdent(tricky, "z"));
  for (const Token& t : tricky.tokens) {
    if (t.kind == TokKind::kString) {
      EXPECT_EQ(StringInner(t), "a)y\" b");
    }
  }
}

TEST(LexerTest, DigitSeparatorsStayOneNumberToken) {
  const LexedFile lex = Lex("long n = 1'000'000; double d = 1.5e-3;\n");
  std::vector<std::string> numbers;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kNumber) numbers.push_back(t.text);
  }
  ASSERT_EQ(numbers.size(), 2u);
  EXPECT_EQ(numbers[0], "1'000'000");
  EXPECT_EQ(numbers[1], "1.5e-3");
}

TEST(LexerTest, IfZeroRegionProducesNoTokens) {
  const LexedFile lex = Lex(
      "int live1;\n"
      "#if 0\n"
      "int dead1 = new int;\n"
      "#ifdef NESTED\n"
      "int dead2;\n"
      "#endif\n"
      "int dead3;\n"
      "#endif\n"
      "int live2;\n");
  EXPECT_TRUE(HasIdent(lex, "live1"));
  EXPECT_TRUE(HasIdent(lex, "live2"));
  EXPECT_FALSE(HasIdent(lex, "dead1"));
  EXPECT_FALSE(HasIdent(lex, "dead2"));
  EXPECT_FALSE(HasIdent(lex, "dead3"));
  EXPECT_FALSE(HasIdent(lex, "new"));
}

TEST(LexerTest, ElseBranchOfIfZeroIsLive) {
  const LexedFile lex = Lex(
      "#if 0\n"
      "int dead;\n"
      "#else\n"
      "int live;\n"
      "#endif\n");
  EXPECT_FALSE(HasIdent(lex, "dead"));
  EXPECT_TRUE(HasIdent(lex, "live"));
}

TEST(LexerTest, DirectiveContinuationsJoinIntoOneToken) {
  const LexedFile lex = Lex(
      "#define RF_CHECK(x) \\\n"
      "  do { if (!(x)) ::abort(); } \\\n"
      "  while (0)\n"
      "int after;\n");
  int pp = 0;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kPp) {
      ++pp;
      EXPECT_EQ(t.line, 1);
      EXPECT_NE(t.text.find("abort"), std::string::npos);
      EXPECT_NE(t.text.find("while"), std::string::npos);
    }
  }
  EXPECT_EQ(pp, 1);
  // Macro body tokens never leak into the stream as code.
  EXPECT_FALSE(HasIdent(lex, "abort"));
  EXPECT_TRUE(HasIdent(lex, "after"));
}

TEST(LexerTest, ScopeAndArrowFoldAsUnits) {
  const LexedFile lex = Lex("a::b(); p->q(); x - y; u : v;\n");
  std::vector<std::string> puncts;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "-"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), ":"), puncts.end());
}

TEST(LexerTest, HostileInputDoesNotCrash) {
  // Trigraph-era punctuation soup, an unterminated string, an unterminated
  // block comment, and a stray raw-string prefix: all must degrade to
  // tokens, never crash or loop.
  const LexedFile soup = Lex("?\?= ?\?( ?\?) int ok;\n");
  EXPECT_TRUE(HasIdent(soup, "ok"));
  const LexedFile unterminated = Lex("const char* s = \"oops\nint next;\n");
  EXPECT_TRUE(HasIdent(unterminated, "next"));
  const LexedFile comment = Lex("int before; /* never closed\nint hidden;");
  EXPECT_TRUE(HasIdent(comment, "before"));
  EXPECT_FALSE(HasIdent(comment, "hidden"));
  const LexedFile raw = Lex("auto r = R\"never(closed\n");
  EXPECT_FALSE(raw.tokens.empty());
}

// ---------------------------------------------------------------------------
// Scope tracker

TEST(ScopesTest, FindsFreeInlineAndOutOfLineFunctions) {
  const auto fns = Funcs("src/serve/server.cc",
                         "namespace rf {\n"
                         "int Helper(int x) { return x; }\n"
                         "class Server {\n"
                         " public:\n"
                         "  void Start() { running_ = true; }\n"
                         " private:\n"
                         "  bool running_ = false;\n"
                         "};\n"
                         "void Server::Stop() { Helper(1); }\n"
                         "}  // namespace rf\n");
  ASSERT_NE(Find(fns, "Helper"), nullptr);
  ASSERT_NE(Find(fns, "Server::Start"), nullptr);
  const FunctionInfo* stop = Find(fns, "Server::Stop");
  ASSERT_NE(stop, nullptr);
  EXPECT_EQ(stop->owner_class, "Server");
  ASSERT_EQ(stop->calls.size(), 1u);
  EXPECT_EQ(stop->calls[0].name, "Helper");
}

TEST(ScopesTest, LockNestingFollowsBraceScopes) {
  const auto fns = Funcs("src/serve/s.cc",
                         "#include <mutex>\n"
                         "struct S {\n"
                         "  void A() {\n"
                         "    std::lock_guard<std::mutex> g1(mu1_);\n"
                         "    {\n"
                         "      std::lock_guard<std::mutex> g2(mu2_);\n"
                         "    }\n"
                         "    std::lock_guard<std::mutex> g3(mu3_);\n"
                         "  }\n"
                         "  std::mutex mu1_, mu2_, mu3_;\n"
                         "};\n");
  const FunctionInfo* a = Find(fns, "S::A");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->locks.size(), 3u);
  EXPECT_EQ(a->locks[0].mutex, "S::mu1_");
  EXPECT_TRUE(a->locks[0].held_at_acquire.empty());
  EXPECT_EQ(a->locks[1].mutex, "S::mu2_");
  EXPECT_EQ(a->locks[1].held_at_acquire, std::vector<int>{0});
  // g2's block closed before g3: only g1 is still held.
  EXPECT_EQ(a->locks[2].mutex, "S::mu3_");
  EXPECT_EQ(a->locks[2].held_at_acquire, std::vector<int>{0});
}

TEST(ScopesTest, ExplicitUnlockReleasesEarly) {
  const auto fns = Funcs("src/serve/s.cc",
                         "#include <mutex>\n"
                         "void F(std::mutex& mu, int fd) {\n"
                         "  std::unique_lock<std::mutex> lk(mu);\n"
                         "  lk.unlock();\n"
                         "  char b;\n"
                         "  ::read(fd, &b, 1);\n"
                         "}\n");
  const FunctionInfo* f = Find(fns, "F");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->blocking.size(), 1u);
  EXPECT_EQ(f->blocking[0].what, "::read");
  EXPECT_TRUE(f->blocking[0].locks_held.empty());
}

TEST(ScopesTest, DeferLockOnlyArmsOnLockCall) {
  const auto fns = Funcs("src/serve/s.cc",
                         "#include <mutex>\n"
                         "#include <thread>\n"
                         "void G(std::mutex& mu, int fd) {\n"
                         "  std::unique_lock<std::mutex> lk(mu, "
                         "std::defer_lock);\n"
                         "  char b;\n"
                         "  ::read(fd, &b, 1);\n"
                         "  lk.lock();\n"
                         "  std::this_thread::sleep_for(t);\n"
                         "}\n");
  const FunctionInfo* g = Find(fns, "G");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->blocking.size(), 2u);
  EXPECT_TRUE(g->blocking[0].locks_held.empty());
  EXPECT_EQ(g->blocking[1].what, "sleep_for");
  EXPECT_EQ(g->blocking[1].locks_held.size(), 1u);
}

TEST(ScopesTest, OnlyGloballyQualifiedIoIsBlocking) {
  const auto fns = Funcs("src/serve/s.cc",
                         "void H(Codec& c, int fd) {\n"
                         "  c.read(fd);\n"
                         "  Codec::read(fd);\n"
                         "  ::read(fd, nullptr, 0);\n"
                         "}\n");
  const FunctionInfo* h = Find(fns, "H");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->blocking.size(), 1u);
  EXPECT_EQ(h->blocking[0].what, "::read");
}

TEST(ScopesTest, CvWaitIsRecordedSeparatelyNotAsBlocking) {
  const auto fns = Funcs("src/serve/s.cc",
                         "#include <mutex>\n"
                         "void W(std::mutex& mu, std::condition_variable& cv,"
                         " bool& ready) {\n"
                         "  std::unique_lock<std::mutex> lk(mu);\n"
                         "  cv.wait(lk, [&ready] { return ready; });\n"
                         "}\n");
  const FunctionInfo* w = Find(fns, "W");
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->blocking.empty());
  EXPECT_EQ(w->cv_wait_lines.size(), 1u);
}

TEST(ScopesTest, AllocFactsCoverNewMakeUniqueAndGrowth) {
  const auto fns = Funcs("src/tensor/t.cc",
                         "void A(std::vector<int>& v) {\n"
                         "  int* p = new int[4];\n"
                         "  auto u = std::make_unique<int>(1);\n"
                         "  v.push_back(1);\n"
                         "  v.assign(4, 0);\n"
                         "  v.clear();\n"
                         "}\n");
  const FunctionInfo* a = Find(fns, "A");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->allocs.size(), 3u);
  EXPECT_EQ(a->allocs[0].what, "new");
  EXPECT_EQ(a->allocs[1].what, "make_unique");
  EXPECT_EQ(a->allocs[2].what, "v.push_back");
}

TEST(ScopesTest, ParallelForLambdaIsFlaggedAsParallelBody) {
  const auto fns = Funcs("src/tensor/k.cc",
                         "void Host(ThreadPool& pool, std::vector<int>& v) {\n"
                         "  pool.ParallelFor(0, 8, [&](int t, long b, long e)"
                         " {\n"
                         "    v.push_back(1);\n"
                         "  });\n"
                         "  auto plain = [&] { v.push_back(2); };\n"
                         "  plain();\n"
                         "}\n");
  ASSERT_EQ(fns.size(), 3u);
  const FunctionInfo* body = Find(fns, "Host::<lambda@2>");
  ASSERT_NE(body, nullptr);
  EXPECT_TRUE(body->is_parallel_body);
  ASSERT_EQ(body->allocs.size(), 1u);
  const FunctionInfo* plain = Find(fns, "Host::<lambda@5>");
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->is_parallel_body);
}

TEST(ScopesTest, NestedLambdasChainTheirQualifiedNames) {
  const auto fns = Funcs("src/serve/s.cc",
                         "void Outer() {\n"
                         "  auto a = [] {\n"
                         "    auto b = [] { return 1; };\n"
                         "    return b();\n"
                         "  };\n"
                         "  a();\n"
                         "}\n");
  EXPECT_NE(Find(fns, "Outer"), nullptr);
  EXPECT_NE(Find(fns, "Outer::<lambda@2>"), nullptr);
  EXPECT_NE(Find(fns, "Outer::<lambda@2>::<lambda@3>"), nullptr);
}

TEST(ScopesTest, NonblockingAttributeComesFromSignatureComment) {
  const auto fns = Funcs("src/serve/s.cc",
                         "void Plain(int fd) { ::write(fd, \"x\", 1); }\n"
                         "// rf-lint-attr(nonblocking) fd is O_NONBLOCK\n"
                         "void Pump(int fd) { ::write(fd, \"x\", 1); }\n");
  const FunctionInfo* pump = Find(fns, "Pump");
  ASSERT_NE(pump, nullptr);
  EXPECT_TRUE(pump->attr_nonblocking);
  const FunctionInfo* plain = Find(fns, "Plain");
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->attr_nonblocking);
}

TEST(ScopesTest, CallSitesCarryTheLocksHeld) {
  const auto fns = Funcs("src/serve/s.cc",
                         "#include <mutex>\n"
                         "struct S {\n"
                         "  void Run() {\n"
                         "    Prepare();\n"
                         "    std::lock_guard<std::mutex> g(mu_);\n"
                         "    Commit();\n"
                         "  }\n"
                         "  void Prepare();\n"
                         "  void Commit();\n"
                         "  std::mutex mu_;\n"
                         "};\n");
  const FunctionInfo* run = Find(fns, "S::Run");
  ASSERT_NE(run, nullptr);
  ASSERT_EQ(run->calls.size(), 2u);
  EXPECT_EQ(run->calls[0].name, "Prepare");
  EXPECT_TRUE(run->calls[0].locks_held.empty());
  EXPECT_EQ(run->calls[1].name, "Commit");
  EXPECT_EQ(run->calls[1].locks_held.size(), 1u);
}

TEST(ScopesTest, CallsInsideLocalStaticInitializersAreMarked) {
  // The Meyers-singleton cache idiom: the initializer runs once per process.
  const auto fns = Funcs(
      "src/common/s.cc",
      "Counter* Cached() {\n"
      "  static Counter* c = Registry::Global().GetCounter(\"x\");\n"
      "  c->Touch();\n"
      "  return c;\n"
      "}\n");
  const FunctionInfo* cached = Find(fns, "Cached");
  ASSERT_NE(cached, nullptr);
  ASSERT_EQ(cached->calls.size(), 3u);
  EXPECT_EQ(cached->calls[0].name, "Global");
  EXPECT_TRUE(cached->calls[0].static_init);
  EXPECT_EQ(cached->calls[1].name, "GetCounter");
  EXPECT_TRUE(cached->calls[1].static_init);
  EXPECT_EQ(cached->calls[2].name, "Touch");
  EXPECT_FALSE(cached->calls[2].static_init);
}

TEST(ScopesTest, ThreadLocalNullCheckBlockIsOneTimeInit) {
  // Once-per-thread registration: the null-check body runs on a thread's
  // first call only.
  const auto fns = Funcs("src/common/s.cc",
                         "int* Buf() {\n"
                         "  thread_local int* b = nullptr;\n"
                         "  if (b == nullptr) { b = Register(); }\n"
                         "  Use(b);\n"
                         "  return b;\n"
                         "}\n");
  const FunctionInfo* buf = Find(fns, "Buf");
  ASSERT_NE(buf, nullptr);
  ASSERT_EQ(buf->calls.size(), 2u);
  EXPECT_EQ(buf->calls[0].name, "Register");
  EXPECT_TRUE(buf->calls[0].static_init);
  EXPECT_EQ(buf->calls[1].name, "Use");
  EXPECT_FALSE(buf->calls[1].static_init);
}

// ---------------------------------------------------------------------------
// Graph rules

TEST(GraphTest, LockOrderCycleAcrossFunctionsIsOneFinding) {
  const auto fns = Funcs(
      "src/serve/paired.cc",
      "#include <mutex>\n"
      "class P {\n"
      " public:\n"
      "  void AB() {\n"
      "    std::lock_guard<std::mutex> a(ma_);\n"
      "    std::lock_guard<std::mutex> b(mb_);\n"
      "  }\n"
      "  void BA() {\n"
      "    std::lock_guard<std::mutex> b(mb_);\n"
      "    GrabA();\n"
      "  }\n"
      " private:\n"
      "  void GrabA() { std::lock_guard<std::mutex> a(ma_); }\n"
      "  std::mutex ma_, mb_;\n"
      "};\n");
  const auto findings = RunGraphRules(fns);
  ASSERT_EQ(CountRule(findings, "lock-order-cycle"), 1);
  for (const GraphFinding& g : findings) {
    if (g.rule != "lock-order-cycle") continue;
    EXPECT_NE(g.message.find("P::ma_"), std::string::npos);
    EXPECT_NE(g.message.find("P::mb_"), std::string::npos);
    // Both directions appear as witnesses.
    EXPECT_NE(g.message.find("P::AB"), std::string::npos);
    EXPECT_NE(g.message.find("P::BA"), std::string::npos);
  }
}

TEST(GraphTest, ConsistentLockOrderIsClean) {
  const auto fns = Funcs(
      "src/serve/ordered.cc",
      "#include <mutex>\n"
      "class O {\n"
      " public:\n"
      "  void X() {\n"
      "    std::lock_guard<std::mutex> a(ma_);\n"
      "    std::lock_guard<std::mutex> b(mb_);\n"
      "  }\n"
      "  void Y() {\n"
      "    std::lock_guard<std::mutex> a(ma_);\n"
      "    std::lock_guard<std::mutex> b(mb_);\n"
      "  }\n"
      " private:\n"
      "  std::mutex ma_, mb_;\n"
      "};\n");
  EXPECT_EQ(CountRule(RunGraphRules(fns), "lock-order-cycle"), 0);
}

TEST(GraphTest, BlockingReachabilityCrossesFiles) {
  auto fns = Funcs("src/serve/server.cc",
                   "#include <mutex>\n"
                   "class Server {\n"
                   " public:\n"
                   "  void Flush() {\n"
                   "    std::lock_guard<std::mutex> lock(mu_);\n"
                   "    WriteAll(fd_);\n"
                   "  }\n"
                   " private:\n"
                   "  std::mutex mu_;\n"
                   "  int fd_ = 0;\n"
                   "};\n");
  const auto helpers = Funcs("src/common/io.cc",
                             "void WriteAll(int fd) {\n"
                             "  ::write(fd, nullptr, 0);\n"
                             "}\n");
  fns.insert(fns.end(), helpers.begin(), helpers.end());
  const auto findings = RunGraphRules(fns);
  ASSERT_EQ(CountRule(findings, "blocking-reachable-under-lock"), 1);
  for (const GraphFinding& g : findings) {
    if (g.rule != "blocking-reachable-under-lock") continue;
    EXPECT_EQ(g.file, "src/serve/server.cc");
    EXPECT_NE(g.message.find("Server::Flush"), std::string::npos);
    EXPECT_NE(g.message.find("::write"), std::string::npos);
    EXPECT_NE(g.message.find("->"), std::string::npos);  // chain printed
  }
}

TEST(GraphTest, NonblockingAttributeExemptsTheChain) {
  auto fns = Funcs("src/serve/server.cc",
                   "#include <mutex>\n"
                   "class Server {\n"
                   " public:\n"
                   "  void Flush() {\n"
                   "    std::lock_guard<std::mutex> lock(mu_);\n"
                   "    WriteAll(fd_);\n"
                   "  }\n"
                   " private:\n"
                   "  std::mutex mu_;\n"
                   "  int fd_ = 0;\n"
                   "};\n");
  const auto helpers = Funcs("src/common/io.cc",
                             "// rf-lint-attr(nonblocking) fd is O_NONBLOCK\n"
                             "void WriteAll(int fd) {\n"
                             "  ::write(fd, nullptr, 0);\n"
                             "}\n");
  fns.insert(fns.end(), helpers.begin(), helpers.end());
  EXPECT_EQ(CountRule(RunGraphRules(fns), "blocking-reachable-under-lock"), 0);
}

TEST(GraphTest, OnlyConcurrencySurfaceFilesAreRoots) {
  // Identical shape, but the lock holder lives outside serve//thread_pool/
  // metrics/trace: the rule must not root there.
  const auto fns = Funcs("src/nn/encoder.cc",
                         "#include <mutex>\n"
                         "void F(std::mutex& mu, int fd) {\n"
                         "  std::lock_guard<std::mutex> lock(mu);\n"
                         "  ::read(fd, nullptr, 0);\n"
                         "}\n");
  EXPECT_EQ(CountRule(RunGraphRules(fns), "blocking-reachable-under-lock"), 0);
}

TEST(GraphTest, AllocReachableFromParallelBody) {
  const auto fns = Funcs(
      "src/tensor/kernels.cc",
      "void Grow(std::vector<int>& v) { v.reserve(64); }\n"
      "void Collect(ThreadPool& pool, std::vector<int>& out) {\n"
      "  pool.ParallelFor(0, 8, [&](int t, long b, long e) {\n"
      "    out.push_back(1);\n"
      "    Grow(out);\n"
      "  });\n"
      "}\n"
      "void Fill(ThreadPool& pool, std::vector<int>& out) {\n"
      "  pool.ParallelFor(0, 8, [&](int t, long b, long e) {\n"
      "    out[0] = 1;\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(RunGraphRules(fns), "alloc-in-parallel-for"), 2);
}

TEST(GraphTest, PlanReplayHandlersAreAllocRoots) {
  const auto fns = Funcs("src/tensor/plan.cc",
                         "void ExecMatmul(Ctx& ctx) {\n"
                         "  ctx.scratch.resize(64);\n"
                         "}\n"
                         "void Shutdown(Ctx& ctx) {\n"
                         "  ctx.scratch.resize(0);\n"
                         "}\n");
  const auto findings = RunGraphRules(fns);
  ASSERT_EQ(CountRule(findings, "alloc-in-parallel-for"), 1);
  EXPECT_NE(findings[0].message.find("ExecMatmul"), std::string::npos);
}

TEST(GraphTest, OneTimeStaticInitIsNotSteadyStateAllocation) {
  // A function-local static's initializer allocates exactly once, so an edge
  // through it must not make a parallel body look allocating.
  const auto fns = Funcs(
      "src/tensor/k.cc",
      "int* Make() { return new int[4]; }\n"
      "int* Cached() {\n"
      "  static int* c = Make();\n"
      "  return c;\n"
      "}\n"
      "void Host(ThreadPool& pool) {\n"
      "  pool.ParallelFor(0, 8, [&](int t, long b, long e) {\n"
      "    Cached();\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(RunGraphRules(fns), "alloc-in-parallel-for"), 0);
}

TEST(GraphTest, ThreadLocalRegistrationIsNotSteadyStateAllocation) {
  // Per-thread buffer registration allocates on a thread's first call only;
  // the steady state reuses the registered buffer.
  const auto fns = Funcs(
      "src/tensor/k.cc",
      "struct R {\n"
      "  int* Buf() {\n"
      "    thread_local int* buf = nullptr;\n"
      "    if (buf == nullptr) {\n"
      "      bufs_.push_back(new int[4]);\n"
      "      buf = bufs_.back();\n"
      "    }\n"
      "    return buf;\n"
      "  }\n"
      "  std::vector<int*> bufs_;\n"
      "};\n"
      "void Host(ThreadPool& pool, R& r) {\n"
      "  pool.ParallelFor(0, 8, [&](int t, long b, long e) {\n"
      "    r.Buf();\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(RunGraphRules(fns), "alloc-in-parallel-for"), 0);
}

// ---------------------------------------------------------------------------
// Linter plumbing: suppressions and expectations

TEST(LinterTest, SuppressionsApplyToLineNextLineAndFile) {
  TempTree tree;
  const fs::path direct = tree.Write(
      "src/a.cc",
      "void F() {\n"
      "  int* a = new int;  // rf-lint-allow(naked-new) pool bootstrap\n"
      "  // rf-lint-allow(naked-new) arena bootstrap\n"
      "  int* b = new int;\n"
      "  int* c = new int;\n"
      "}\n");
  const fs::path file_wide = tree.Write(
      "src/b.cc",
      "// rf-lint-allow-file(naked-new) generated shim\n"
      "void G() { int* a = new int; int* b = new int; }\n");
  Linter linter;
  linter.AddFile(direct, "src/a.cc");
  linter.AddFile(file_wide, "src/b.cc");
  linter.Run();
  int naked = 0;
  for (const Violation& v : linter.violations()) {
    if (v.rule == "naked-new") {
      ++naked;
      EXPECT_EQ(v.file, "src/a.cc");
      EXPECT_EQ(v.line, 5);  // only the unsuppressed one
    }
  }
  EXPECT_EQ(naked, 1);
}

TEST(LinterTest, ExpectationsSumAcrossFixtureFiles) {
  TempTree tree;
  const fs::path a = tree.Write(
      "fx/a.cc", "// rf-lint-selftest-expect(naked-new=2)\nint x;\n");
  const fs::path b = tree.Write(
      "fx/b.cc",
      "// rf-lint-selftest-expect(naked-new=1)\n"
      "// rf-lint-selftest-expect(std-rand=3)\nint y;\n");
  Linter linter;
  linter.AddFile(a, "fx/a.cc");
  linter.AddFile(b, "fx/b.cc");
  const auto expect = linter.Expectations();
  EXPECT_EQ(expect.at("naked-new"), 3);
  EXPECT_EQ(expect.at("std-rand"), 3);
}

TEST(LinterTest, ExpectedGuardMacroStripsSrcPrefix) {
  EXPECT_EQ(ExpectedGuardMacro("src/common/config.h"),
            "RESUFORMER_COMMON_CONFIG_H_");
  EXPECT_EQ(ExpectedGuardMacro("tests/util.h"), "RESUFORMER_TESTS_UTIL_H_");
}

// ---------------------------------------------------------------------------
// SARIF

TEST(SarifTest, DocumentIsValidJsonEvenWithHostileMessages) {
  std::vector<Violation> violations;
  violations.push_back({"src/a.cc", 3, "naked-new",
                        "message with \"quotes\", back\\slash,\nnewline, "
                        "\ttab and control\x01 byte"});
  violations.push_back({"src/b \"quoted\".cc", 0, "std-rand", "plain"});
  const std::string doc = SarifDocument(violations);
  EXPECT_TRUE(JsonValidator(doc).Valid()) << doc;
  EXPECT_NE(doc.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\":\"naked-new\""), std::string::npos);
  // Every rule is declared in the driver's rules array.
  for (const std::string& rule : Linter::AllRules()) {
    EXPECT_NE(doc.find("{\"id\":\"" + rule + "\"}"), std::string::npos);
  }
  // A zero line degrades to 1 (SARIF requires startLine >= 1).
  EXPECT_NE(doc.find("\"startLine\":1"), std::string::npos);
}

TEST(SarifTest, EmptyRunIsValidToo) {
  const std::string doc = SarifDocument({});
  EXPECT_TRUE(JsonValidator(doc).Valid()) << doc;
  EXPECT_NE(doc.find("\"results\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// --fix

TEST(FixTest, GuardAndAtomicFixesConvergeAndAreIdempotent) {
  TempTree tree;
  tree.Write("src/common/cfg.h",
             "#ifndef WRONG_MACRO_H_\n"
             "#define WRONG_MACRO_H_\n"
             "int Get();\n"
             "#endif  // WRONG_MACRO_H_\n");
  tree.Write("src/common/raw.h", "int Raw();\n");
  tree.Write("src/common/flag.cc",
             "#include <atomic>\n"
             "void Bump(std::atomic<int>& a) {\n"
             "  a.store(1, std::memory_order_relaxed);\n"
             "}\n");
  auto lint_all = [&](Linter* linter) {
    linter->AddFile(tree.root() / "src/common/cfg.h", "src/common/cfg.h");
    linter->AddFile(tree.root() / "src/common/raw.h", "src/common/raw.h");
    linter->AddFile(tree.root() / "src/common/flag.cc", "src/common/flag.cc");
    linter->Run();
  };
  Linter before;
  lint_all(&before);
  int guard = 0, atomic = 0;
  for (const Violation& v : before.violations()) {
    if (v.rule == "include-guard") ++guard;
    if (v.rule == "atomic-order-comment") ++atomic;
  }
  EXPECT_EQ(guard, 2);
  EXPECT_EQ(atomic, 1);

  EXPECT_EQ(ApplyFixes(before.files(), before.violations()), 3);
  const std::string fixed_cfg = tree.Read("src/common/cfg.h");
  EXPECT_NE(fixed_cfg.find("#ifndef RESUFORMER_COMMON_CFG_H_"),
            std::string::npos);
  EXPECT_NE(fixed_cfg.find("#endif  // RESUFORMER_COMMON_CFG_H_"),
            std::string::npos);
  EXPECT_EQ(fixed_cfg.find("WRONG_MACRO_H_"), std::string::npos);
  const std::string fixed_raw = tree.Read("src/common/raw.h");
  EXPECT_NE(fixed_raw.find("#ifndef RESUFORMER_COMMON_RAW_H_"),
            std::string::npos);
  EXPECT_NE(tree.Read("src/common/flag.cc").find("TODO(memory-order)"),
            std::string::npos);

  // Re-linting the fixed tree finds nothing, so a second --fix pass applies
  // zero edits: the rewrites are idempotent.
  Linter after;
  lint_all(&after);
  for (const Violation& v : after.violations()) {
    EXPECT_NE(v.rule, "include-guard") << v.file << ":" << v.line;
    EXPECT_NE(v.rule, "atomic-order-comment") << v.file << ":" << v.line;
  }
  EXPECT_EQ(ApplyFixes(after.files(), after.violations()), 0);
}

// ---------------------------------------------------------------------------
// End-to-end sanity against the real fixture tree (exact counts are owned by
// the rf_lint_selftest ctest; here we only require that every rule has an
// expectation declared, which keeps fixtures and rules from drifting apart).

TEST(FixtureTest, EveryRuleHasASeededExpectation) {
  const fs::path fixture =
      fs::path(RESUFORMER_REPO_ROOT) / "tools" / "lint_fixture";
  ASSERT_TRUE(fs::exists(fixture));
  Linter linter;
  for (const auto& entry : fs::recursive_directory_iterator(fixture)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    linter.AddFile(entry.path(),
                   fs::relative(entry.path(), fixture).generic_string());
  }
  const auto expect = linter.Expectations();
  for (const std::string& rule : Linter::AllRules()) {
    EXPECT_TRUE(expect.count(rule) && expect.at(rule) > 0)
        << "no rf-lint-selftest-expect(" << rule << "=N) in any fixture";
  }
}

}  // namespace
}  // namespace rflint
