#include "rf_lint/sarif.h"

#include <cstdio>
#include <fstream>

namespace rflint {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string SarifDocument(const std::vector<Violation>& violations) {
  std::string out;
  out +=
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"rf_lint\",\"informationUri\":"
      "\"https://github.com/resuformer/resuformer\",\"rules\":[";
  bool first = true;
  for (const std::string& rule : Linter::AllRules()) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    AppendJsonString(&out, rule);
    out += '}';
  }
  out += "]}},\"results\":[";
  first = true;
  for (const Violation& v : violations) {
    if (!first) out += ',';
    first = false;
    out += "{\"ruleId\":";
    AppendJsonString(&out, v.rule);
    out += ",\"level\":\"error\",\"message\":{\"text\":";
    AppendJsonString(&out, v.message);
    out +=
        "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
        "{\"uri\":";
    AppendJsonString(&out, v.file);
    out += "},\"region\":{\"startLine\":";
    out += std::to_string(v.line > 0 ? v.line : 1);
    out += "}}}]}";
  }
  out += "]}]}\n";
  return out;
}

bool WriteSarif(const std::string& path,
                const std::vector<Violation>& violations) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << SarifDocument(violations);
  return static_cast<bool>(out);
}

}  // namespace rflint
