#include "rf_lint/callgraph.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace rflint {

namespace {

// Where the lock-discipline families look for *roots*. Callees are followed
// into any file; only the function holding the lock must live on the
// concurrency surface.
bool InConcurrencyScope(const std::string& file) {
  return file.find("serve/") != std::string::npos ||
         file.find("thread_pool") != std::string::npos ||
         file.find("common/metrics") != std::string::npos ||
         file.find("common/trace") != std::string::npos ||
         file.find("deadlock/") != std::string::npos;
}

// Where parallel-body lambdas become alloc-rule roots.
bool InAllocScope(const std::string& file) {
  return file.find("tensor/") != std::string::npos ||
         file.find("deadlock/") != std::string::npos;
}

std::string Loc(const FunctionInfo& f, int line) {
  return f.file + ":" + std::to_string(line);
}

class Graph {
 public:
  explicit Graph(const std::vector<FunctionInfo>& fns) : fns_(fns) {
    for (int i = 0; i < static_cast<int>(fns_.size()); ++i) {
      if (!fns_[i].is_lambda) by_name_[fns_[i].simple_name].push_back(i);
    }
    blocks_.resize(fns_.size());
    allocs_.resize(fns_.size());
    acquired_.resize(fns_.size());
  }

  std::vector<GraphFinding> Run() {
    std::vector<GraphFinding> out;
    RunBlockingRule(&out);
    RunLockOrderRule(&out);
    RunAllocRule(&out);
    return out;
  }

 private:
  struct Reach {
    int state = 0;  // 0 = unvisited, 1 = in progress, 2 = done
    bool yes = false;
    std::string chain;  // witness, starting at the offending function
  };

  struct Acquired {
    int state = 0;
    std::map<std::string, std::string> mutexes;  // identity -> witness
  };

  std::vector<int> Resolve(int caller, const CallSite& c) const {
    auto it = by_name_.find(c.name);
    if (it == by_name_.end()) return {};
    std::vector<int> cand;
    for (int i : it->second) {
      if (i != caller) cand.push_back(i);
    }
    if (cand.empty()) return {};
    if (!c.qualifier.empty()) {
      std::vector<int> exact;
      for (int i : cand) {
        if (fns_[i].owner_class == c.qualifier) exact.push_back(i);
      }
      if (!exact.empty()) return exact;
    } else {
      const std::string& cls = fns_[caller].owner_class;
      if (!cls.empty()) {
        std::vector<int> same_class;
        for (int i : cand) {
          if (fns_[i].owner_class == cls) same_class.push_back(i);
        }
        if (!same_class.empty()) return same_class;
      }
      std::vector<int> same_file;
      for (int i : cand) {
        if (fns_[i].file == fns_[caller].file) same_file.push_back(i);
      }
      if (!same_file.empty()) return same_file;
    }
    // A very popular simple name is more likely an unrelated homonym than a
    // real target; refuse to guess.
    if (cand.size() > 6) return {};
    return cand;
  }

  // Does `f` (transitively) reach a blocking syscall?
  const Reach& Blocks(int f) {
    Reach& r = blocks_[f];
    if (r.state == 2) return r;
    if (r.state == 1) return r;  // recursion: cut the cycle, assume no
    r.state = 1;
    if (!fns_[f].attr_nonblocking) {
      for (const BlockingSite& b : fns_[f].blocking) {
        r.yes = true;
        r.chain = fns_[f].qualified_name + " calls " + b.what + " (" +
                  Loc(fns_[f], b.line) + ")";
        break;
      }
      if (!r.yes) {
        for (const CallSite& c : fns_[f].calls) {
          if (c.static_init) continue;  // one-time init, not steady state
          for (int g : Resolve(f, c)) {
            const Reach& sub = Blocks(g);
            if (sub.yes) {
              r.yes = true;
              r.chain = fns_[f].qualified_name + " (" + Loc(fns_[f], c.line) +
                        ") -> " + sub.chain;
              break;
            }
          }
          if (r.yes) break;
        }
      }
    }
    r.state = 2;
    return r;
  }

  // Does `f` (transitively) allocate?
  const Reach& Allocates(int f) {
    Reach& r = allocs_[f];
    if (r.state == 2) return r;
    if (r.state == 1) return r;
    r.state = 1;
    for (const AllocSite& a : fns_[f].allocs) {
      r.yes = true;
      r.chain = fns_[f].qualified_name + " allocates via " + a.what + " (" +
                Loc(fns_[f], a.line) + ")";
      break;
    }
    if (!r.yes) {
      for (const CallSite& c : fns_[f].calls) {
        if (c.static_init) continue;  // one-time init, not steady state
        for (int g : Resolve(f, c)) {
          const Reach& sub = Allocates(g);
          if (sub.yes) {
            r.yes = true;
            r.chain = fns_[f].qualified_name + " (" + Loc(fns_[f], c.line) +
                      ") -> " + sub.chain;
            break;
          }
        }
        if (r.yes) break;
      }
    }
    r.state = 2;
    return r;
  }

  // Which mutexes might `f` (transitively) acquire, with witness paths?
  const Acquired& AcquiredLocks(int f) {
    Acquired& a = acquired_[f];
    if (a.state == 2) return a;
    if (a.state == 1) return a;
    a.state = 1;
    for (const LockSite& s : fns_[f].locks) {
      if (a.mutexes.count(s.mutex)) continue;
      a.mutexes[s.mutex] = fns_[f].qualified_name + " acquires " + s.mutex +
                           " (" + Loc(fns_[f], s.line) + ")";
    }
    for (const CallSite& c : fns_[f].calls) {
      if (a.mutexes.size() >= 16) break;
      for (int g : Resolve(f, c)) {
        for (const auto& [m, w] : AcquiredLocks(g).mutexes) {
          if (a.mutexes.count(m)) continue;
          a.mutexes[m] = fns_[f].qualified_name + " (" + Loc(fns_[f], c.line) +
                         ") -> " + w;
        }
      }
    }
    a.state = 2;
    return a;
  }

  std::string HeldNames(const FunctionInfo& f, const std::vector<int>& held) {
    std::string out;
    for (int idx : held) {
      if (idx < 0 || idx >= static_cast<int>(f.locks.size())) continue;
      if (!out.empty()) out += ", ";
      out += f.locks[idx].mutex;
    }
    return out;
  }

  void RunBlockingRule(std::vector<GraphFinding>* out) {
    for (int f = 0; f < static_cast<int>(fns_.size()); ++f) {
      const FunctionInfo& fn = fns_[f];
      if (!InConcurrencyScope(fn.file) || fn.attr_nonblocking) continue;
      for (const BlockingSite& b : fn.blocking) {
        if (b.locks_held.empty()) continue;
        out->push_back({"blocking-reachable-under-lock", fn.file, b.line,
                        "blocking call " + b.what + " while holding {" +
                            HeldNames(fn, b.locks_held) + "} in " +
                            fn.qualified_name});
      }
      for (const CallSite& c : fn.calls) {
        if (c.locks_held.empty() || c.static_init) continue;
        for (int g : Resolve(f, c)) {
          const Reach& sub = Blocks(g);
          if (!sub.yes) continue;
          out->push_back(
              {"blocking-reachable-under-lock", fn.file, c.line,
               "call chain reaches a blocking syscall while holding {" +
                   HeldNames(fn, c.locks_held) + "}: " + fn.qualified_name +
                   " (" + Loc(fn, c.line) + ") -> " + sub.chain});
          break;  // one finding per call site
        }
      }
    }
  }

  void RunLockOrderRule(std::vector<GraphFinding>* out) {
    struct Edge {
      std::string witness;
      std::string file;
      int line = 0;
    };
    std::map<std::pair<std::string, std::string>, Edge> edges;
    auto add_edge = [&edges](const std::string& a, const std::string& b,
                             std::string witness, const std::string& file,
                             int line) {
      if (a == b) return;  // recursive acquisition is a different problem
      edges.emplace(std::make_pair(a, b),
                    Edge{std::move(witness), file, line});
    };
    for (int f = 0; f < static_cast<int>(fns_.size()); ++f) {
      const FunctionInfo& fn = fns_[f];
      if (!InConcurrencyScope(fn.file)) continue;
      for (const LockSite& s : fn.locks) {
        for (int h : s.held_at_acquire) {
          if (h < 0 || h >= static_cast<int>(fn.locks.size())) continue;
          add_edge(fn.locks[h].mutex, s.mutex,
                   fn.qualified_name + " acquires " + fn.locks[h].mutex +
                       " (" + Loc(fn, fn.locks[h].line) + ") then " + s.mutex +
                       " (" + Loc(fn, s.line) + ")",
                   fn.file, s.line);
        }
      }
      for (const CallSite& c : fn.calls) {
        if (c.locks_held.empty()) continue;
        for (int g : Resolve(f, c)) {
          for (const auto& [m, w] : AcquiredLocks(g).mutexes) {
            for (int h : c.locks_held) {
              if (h < 0 || h >= static_cast<int>(fn.locks.size())) continue;
              add_edge(fn.locks[h].mutex, m,
                       fn.qualified_name + " holds " + fn.locks[h].mutex +
                           " (" + Loc(fn, fn.locks[h].line) + "), then " + w,
                       fn.file, c.line);
            }
          }
        }
      }
    }
    // SCCs over the mutex-order graph (iterative Tarjan).
    std::vector<std::string> nodes;
    std::map<std::string, int> node_id;
    auto id_of = [&](const std::string& n) {
      auto it = node_id.find(n);
      if (it != node_id.end()) return it->second;
      const int id = static_cast<int>(nodes.size());
      node_id[n] = id;
      nodes.push_back(n);
      return id;
    };
    std::vector<std::vector<int>> adj;
    for (const auto& [key, edge] : edges) {
      const int a = id_of(key.first);
      const int b = id_of(key.second);
      if (static_cast<int>(adj.size()) < static_cast<int>(nodes.size())) {
        adj.resize(nodes.size());
      }
      adj[a].push_back(b);
    }
    adj.resize(nodes.size());
    const int n = static_cast<int>(nodes.size());
    std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
    std::vector<bool> on_stack(n, false);
    std::vector<int> stack;
    int next_index = 0, next_comp = 0;
    // Iterative Tarjan: frames of (node, child cursor).
    for (int root = 0; root < n; ++root) {
      if (index[root] != -1) continue;
      std::vector<std::pair<int, size_t>> work{{root, 0}};
      while (!work.empty()) {
        auto& [v, cursor] = work.back();
        if (cursor == 0) {
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
        }
        bool descended = false;
        while (cursor < adj[v].size()) {
          const int w = adj[v][cursor++];
          if (index[w] == -1) {
            work.push_back({w, 0});
            descended = true;
            break;
          }
          if (on_stack[w]) low[v] = std::min(low[v], index[w]);
        }
        if (descended) continue;
        if (low[v] == index[v]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == v) break;
          }
          ++next_comp;
        }
        const int finished = v;
        work.pop_back();
        if (!work.empty()) {
          low[work.back().first] =
              std::min(low[work.back().first], low[finished]);
        }
      }
    }
    // One finding per SCC with >= 2 mutexes.
    std::map<int, std::vector<int>> members;
    for (int v = 0; v < n; ++v) members[comp[v]].push_back(v);
    for (const auto& [cid, vs] : members) {
      if (vs.size() < 2) continue;
      std::set<int> in_scc(vs.begin(), vs.end());
      std::string names;
      for (int v : vs) {
        if (!names.empty()) names += ", ";
        names += nodes[v];
      }
      std::string witnesses;
      const Edge* anchor = nullptr;
      int shown = 0;
      for (const auto& [key, edge] : edges) {
        const int a = node_id[key.first];
        const int b = node_id[key.second];
        if (!in_scc.count(a) || !in_scc.count(b)) continue;
        if (!anchor) anchor = &edge;
        if (shown < 4) {
          witnesses += (shown ? " | " : "") + edge.witness;
          ++shown;
        }
      }
      out->push_back({"lock-order-cycle", anchor ? anchor->file : "",
                      anchor ? anchor->line : 0,
                      "lock-order cycle among {" + names +
                          "} (potential deadlock): " + witnesses});
    }
  }

  void RunAllocRule(std::vector<GraphFinding>* out) {
    for (int f = 0; f < static_cast<int>(fns_.size()); ++f) {
      const FunctionInfo& fn = fns_[f];
      const bool parallel_root = fn.is_parallel_body && InAllocScope(fn.file);
      const bool replay_root =
          fn.file.find("tensor/plan") != std::string::npos &&
          (fn.simple_name.rfind("Exec", 0) == 0 ||
           fn.qualified_name.find("PlanExecutor::Run") != std::string::npos);
      if (!parallel_root && !replay_root) continue;
      const char* where =
          parallel_root ? "parallel-for body" : "plan-replay handler";
      for (const AllocSite& a : fn.allocs) {
        out->push_back({"alloc-in-parallel-for", fn.file, a.line,
                        std::string("heap allocation (") + a.what + ") in " +
                            where + " " + fn.qualified_name});
      }
      for (const CallSite& c : fn.calls) {
        if (c.static_init) continue;
        for (int g : Resolve(f, c)) {
          const Reach& sub = Allocates(g);
          if (!sub.yes) continue;
          out->push_back({"alloc-in-parallel-for", fn.file, c.line,
                          std::string("allocation reachable from ") + where +
                              " " + fn.qualified_name + " (" +
                              Loc(fn, c.line) + ") -> " + sub.chain});
          break;
        }
      }
    }
  }

  const std::vector<FunctionInfo>& fns_;
  std::map<std::string, std::vector<int>> by_name_;
  std::vector<Reach> blocks_;
  std::vector<Reach> allocs_;
  std::vector<Acquired> acquired_;
};

}  // namespace

std::vector<GraphFinding> RunGraphRules(
    const std::vector<FunctionInfo>& functions) {
  return Graph(functions).Run();
}

}  // namespace rflint
