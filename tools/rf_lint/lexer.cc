#include "rf_lint/lexer.h"

#include <cctype>

namespace rflint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Cursor over the source with 1-based line tracking.
struct Cursor {
  const std::string& src;
  size_t i = 0;
  int line = 1;

  explicit Cursor(const std::string& s) : src(s) {}

  bool Done() const { return i >= src.size(); }
  char At(size_t off = 0) const {
    return i + off < src.size() ? src[i + off] : '\0';
  }
  void Advance() {
    if (src[i] == '\n') ++line;
    ++i;
  }
  void Advance(size_t n) {
    for (size_t k = 0; k < n && !Done(); ++k) Advance();
  }
};

void MarkCommentLines(LexedFile* out, int first, int last) {
  if (static_cast<int>(out->line_has_comment.size()) <= last) {
    out->line_has_comment.resize(static_cast<size_t>(last) + 1, false);
  }
  for (int l = first; l <= last; ++l) out->line_has_comment[l] = true;
}

// Consumes a // comment (cursor on the first '/').
void LexLineComment(Cursor* c, LexedFile* out) {
  const int start_line = c->line;
  c->Advance(2);
  std::string text;
  while (!c->Done() && c->At() != '\n') {
    text += c->At();
    c->Advance();
  }
  out->comments.push_back({text, start_line, start_line});
  MarkCommentLines(out, start_line, start_line);
}

// Consumes a /* */ comment (cursor on the '/').
void LexBlockComment(Cursor* c, LexedFile* out) {
  const int start_line = c->line;
  c->Advance(2);
  std::string text;
  while (!c->Done() && !(c->At() == '*' && c->At(1) == '/')) {
    text += c->At();
    c->Advance();
  }
  const int end_line = c->line;
  c->Advance(2);  // the terminating */ (no-op at EOF)
  out->comments.push_back({text, start_line, end_line});
  MarkCommentLines(out, start_line, end_line);
}

// Consumes a quoted literal with escapes (cursor on the opening quote).
// A bare newline terminates the literal: real code never spans lines, and
// recovering here keeps one stray quote from cascading over the whole file.
std::string LexQuoted(Cursor* c, char quote) {
  std::string text(1, quote);
  c->Advance();
  while (!c->Done() && c->At() != '\n') {
    const char ch = c->At();
    text += ch;
    c->Advance();
    if (ch == '\\' && !c->Done() && c->At() != '\n') {
      text += c->At();
      c->Advance();
      continue;
    }
    if (ch == quote) break;
  }
  return text;
}

// Consumes a raw string literal (cursor on the 'R'; caller verified R").
std::string LexRawString(Cursor* c) {
  std::string text;
  text += c->At();  // R
  c->Advance();
  text += c->At();  // "
  c->Advance();
  std::string delim;
  while (!c->Done() && c->At() != '(' && c->At() != '\n' &&
         delim.size() < 16) {
    delim += c->At();
    text += c->At();
    c->Advance();
  }
  if (c->Done() || c->At() != '(') return text;  // malformed: recover
  text += '(';
  c->Advance();
  const std::string close = ")" + delim + "\"";
  size_t matched = 0;
  while (!c->Done()) {
    const char ch = c->At();
    text += ch;
    c->Advance();
    matched = ch == close[matched] ? matched + 1 : (ch == ')' ? 1 : 0);
    if (matched == close.size()) break;
  }
  return text;
}

// Consumes a numeric literal, including hex/exponent forms and C++14 digit
// separators (1'000'000).
std::string LexNumber(Cursor* c) {
  std::string text;
  while (!c->Done()) {
    const char ch = c->At();
    if (IsIdentChar(ch) || ch == '.') {
      text += ch;
      c->Advance();
      // Exponent signs: 1e+5, 0x1p-3.
      if ((ch == 'e' || ch == 'E' || ch == 'p' || ch == 'P') &&
          (c->At() == '+' || c->At() == '-') && text.size() > 1 &&
          IsDigit(text[0])) {
        text += c->At();
        c->Advance();
      }
    } else if (ch == '\'' && IsIdentChar(c->At(1))) {
      text += ch;  // digit separator
      c->Advance();
    } else {
      break;
    }
  }
  return text;
}

// Joins a preprocessor directive's physical lines (backslash continuations)
// into one string; consumes through the final newline's preceding content.
std::string LexDirective(Cursor* c, LexedFile* out) {
  std::string text;
  while (!c->Done()) {
    const char ch = c->At();
    if (ch == '\n') {
      if (!text.empty() && text.back() == '\\') {
        text.back() = ' ';  // continuation: join lines
        c->Advance();
        continue;
      }
      break;
    }
    if (ch == '/' && c->At(1) == '/') {
      LexLineComment(c, out);
      break;
    }
    if (ch == '/' && c->At(1) == '*') {
      LexBlockComment(c, out);
      text += ' ';
      continue;
    }
    text += ch;
    c->Advance();
  }
  // Trailing \r from CRLF files.
  while (!text.empty() && (text.back() == '\r' || text.back() == ' ')) {
    text.pop_back();
  }
  return text;
}

// Normalized directive keyword: "# if" -> "if", "#ifndef" -> "ifndef".
std::string DirectiveKeyword(const std::string& directive) {
  size_t i = 0;
  while (i < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[i]))) {
    ++i;
  }
  if (i >= directive.size() || directive[i] != '#') return "";
  ++i;
  while (i < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[i]))) {
    ++i;
  }
  std::string kw;
  while (i < directive.size() && IsIdentChar(directive[i])) {
    kw += directive[i++];
  }
  return kw;
}

// True for `#if 0` (and `#if 0L` etc.): the canonical disabled region.
bool IsIfZero(const std::string& directive) {
  if (DirectiveKeyword(directive) != "if") return false;
  size_t i = directive.find("if");
  i += 2;
  while (i < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[i]))) {
    ++i;
  }
  if (i >= directive.size() || directive[i] != '0') return false;
  ++i;
  // 0, 0L, 0u are disabled; 0x1 / 01 are not literally zero-only but
  // nobody writes those as condition spellings worth honoring.
  return i >= directive.size() ||
         !std::isalnum(static_cast<unsigned char>(directive[i])) ||
         directive[i] == 'L' || directive[i] == 'l' || directive[i] == 'u' ||
         directive[i] == 'U';
}

bool IsLineStart(const Cursor& c) {
  // Only horizontal whitespace may precede a directive's '#'.
  size_t j = c.i;
  while (j > 0) {
    const char prev = c.src[j - 1];
    if (prev == '\n') return true;
    if (prev != ' ' && prev != '\t') return false;
    --j;
  }
  return true;  // start of file
}

}  // namespace

std::string StringInner(const Token& token) {
  const std::string& t = token.text;
  if (t.size() >= 2 && t.front() == '"' && t.back() == '"') {
    return t.substr(1, t.size() - 2);
  }
  // Raw string / prefixed literal: find R"delim( ... )delim" bounds.
  const size_t open_quote = t.find('"');
  if (open_quote == std::string::npos) return "";
  if (open_quote > 0 && t[open_quote - 1] == 'R') {
    const size_t open_paren = t.find('(', open_quote);
    if (open_paren == std::string::npos) return "";
    const size_t delim_len = open_paren - open_quote - 1;
    const size_t body = open_paren + 1;
    const size_t tail = t.size() >= body + delim_len + 2
                            ? t.size() - (delim_len + 2)
                            : body;
    return tail >= body ? t.substr(body, tail - body) : "";
  }
  return t.size() > open_quote + 1 ? t.substr(open_quote + 1,
                                              t.size() - open_quote - 2)
                                   : "";
}

LexedFile Lex(const std::string& source) {
  LexedFile out;
  Cursor c(source);
  int skip_depth = 0;  // > 0 while inside an `#if 0` region

  while (!c.Done()) {
    const char ch = c.At();

    if (ch == '/' && c.At(1) == '/') {
      LexLineComment(&c, &out);
      continue;
    }
    if (ch == '/' && c.At(1) == '*') {
      LexBlockComment(&c, &out);
      continue;
    }
    if (ch == '#' && IsLineStart(c)) {
      const int line = c.line;
      const std::string directive = LexDirective(&c, &out);
      const std::string kw = DirectiveKeyword(directive);
      if (skip_depth > 0) {
        // Inside #if 0: only track the conditional nesting; emit nothing.
        if (kw == "if" || kw == "ifdef" || kw == "ifndef") {
          ++skip_depth;
        } else if (kw == "endif") {
          --skip_depth;
        } else if (skip_depth == 1 && (kw == "else" || kw == "elif")) {
          // The branch after `#if 0 ... #else` is the live one.
          skip_depth = 0;
          out.tokens.push_back({TokKind::kPp, directive, line});
        }
        continue;
      }
      if (IsIfZero(directive)) skip_depth = 1;
      out.tokens.push_back({TokKind::kPp, directive, line});
      continue;
    }
    if (skip_depth > 0) {
      c.Advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.Advance();
      continue;
    }
    const int line = c.line;
    if (ch == '"') {
      out.tokens.push_back({TokKind::kString, LexQuoted(&c, '"'), line});
      continue;
    }
    if (ch == 'R' && c.At(1) == '"') {
      out.tokens.push_back({TokKind::kString, LexRawString(&c), line});
      continue;
    }
    // Encoding-prefixed literals (u8"x", L"x") lex as ident + string via
    // the paths below; no rule misreads that split.
    if (ch == '\'') {
      out.tokens.push_back({TokKind::kChar, LexQuoted(&c, '\''), line});
      continue;
    }
    if (IsIdentStart(ch)) {
      std::string text;
      while (!c.Done() && IsIdentChar(c.At())) {
        text += c.At();
        c.Advance();
      }
      out.tokens.push_back({TokKind::kIdent, std::move(text), line});
      continue;
    }
    if (IsDigit(ch) || (ch == '.' && IsDigit(c.At(1)))) {
      out.tokens.push_back({TokKind::kNumber, LexNumber(&c), line});
      continue;
    }
    // Punctuation. Only "::" and "->" are folded: those are the two the
    // scope tracker needs as units; every other operator is fine split.
    if (ch == ':' && c.At(1) == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      c.Advance(2);
      continue;
    }
    if (ch == '-' && c.At(1) == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      c.Advance(2);
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, ch), line});
    c.Advance();
  }

  out.num_lines = c.line;
  if (static_cast<int>(out.line_has_comment.size()) <= out.num_lines) {
    out.line_has_comment.resize(static_cast<size_t>(out.num_lines) + 1,
                                false);
  }
  return out;
}

}  // namespace rflint
