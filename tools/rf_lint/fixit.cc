#include "rf_lint/fixit.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

namespace rflint {

namespace {

std::vector<std::string> SplitLines(const std::string& source) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

// "#  ifndef FOO" -> directive position/word; empty word when not matching.
std::string DirectiveWord(const std::string& line, const std::string& kw,
                          size_t* word_pos) {
  size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return "";
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (line.compare(i, kw.size(), kw) != 0) return "";
  i += kw.size();
  if (i < line.size() && line[i] != ' ' && line[i] != '\t') return "";
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  std::string word;
  *word_pos = i;
  while (i < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[i])) ||
          line[i] == '_')) {
    word += line[i++];
  }
  return word;
}

bool FixIncludeGuard(const LintedFile& f, std::vector<std::string>* lines) {
  const std::string expected = ExpectedGuardMacro(f.rel);
  int ifndef_idx = -1, define_idx = -1;
  std::string old_macro;
  for (size_t i = 0; i < lines->size(); ++i) {
    size_t pos = 0;
    if (ifndef_idx < 0) {
      const std::string word = DirectiveWord((*lines)[i], "ifndef", &pos);
      if (!word.empty()) {
        ifndef_idx = static_cast<int>(i);
        old_macro = word;
      }
    } else {
      const std::string word = DirectiveWord((*lines)[i], "define", &pos);
      if (!word.empty() && word == old_macro) {
        define_idx = static_cast<int>(i);
        break;
      }
      if (!word.empty()) break;  // #define of something else: malformed pair
    }
  }
  if (ifndef_idx >= 0 && define_idx >= 0) {
    if (old_macro == expected) return false;  // already canonical
    (*lines)[ifndef_idx] = "#ifndef " + expected;
    (*lines)[define_idx] = "#define " + expected;
    // Retarget a trailing `#endif  // OLD_MACRO` comment if present.
    for (size_t i = lines->size(); i-- > 0;) {
      std::string& l = (*lines)[i];
      if (l.find("#endif") != std::string::npos &&
          l.find(old_macro) != std::string::npos) {
        l = "#endif  // " + expected;
        break;
      }
    }
    return true;
  }
  // No guard at all: insert one after the leading comment/blank block.
  size_t insert_at = 0;
  bool in_block_comment = false;
  for (size_t i = 0; i < lines->size(); ++i) {
    const std::string& l = (*lines)[i];
    const size_t first = l.find_first_not_of(" \t");
    if (in_block_comment) {
      insert_at = i + 1;
      if (l.find("*/") != std::string::npos) in_block_comment = false;
      continue;
    }
    if (first == std::string::npos || l.compare(first, 2, "//") == 0) {
      insert_at = i + 1;
      continue;
    }
    if (l.compare(first, 2, "/*") == 0) {
      in_block_comment = l.find("*/", first + 2) == std::string::npos;
      insert_at = i + 1;
      continue;
    }
    break;
  }
  lines->insert(lines->begin() + static_cast<long>(insert_at),
                {"#ifndef " + expected, "#define " + expected, ""});
  lines->push_back("");
  lines->push_back("#endif  // " + expected);
  return true;
}

bool FixAtomicOrderComment(int line, std::vector<std::string>* lines) {
  const size_t idx = static_cast<size_t>(line - 1);
  if (idx >= lines->size()) return false;
  std::string& l = (*lines)[idx];
  if (l.find("TODO(memory-order)") != std::string::npos) return false;
  while (!l.empty() && (l.back() == ' ' || l.back() == '\t')) l.pop_back();
  l += "  // TODO(memory-order): justify this weakened order.";
  return true;
}

}  // namespace

int ApplyFixes(const std::vector<LintedFile>& files,
               const std::vector<Violation>& violations) {
  std::map<std::string, const LintedFile*> by_rel;
  for (const LintedFile& f : files) by_rel[f.rel] = &f;

  int files_modified = 0;
  for (const auto& [rel, file] : by_rel) {
    std::vector<const Violation*> fixable;
    for (const Violation& v : violations) {
      if (v.file != rel) continue;
      if (v.rule == "include-guard" || v.rule == "atomic-order-comment") {
        fixable.push_back(&v);
      }
    }
    if (fixable.empty()) continue;
    std::vector<std::string> lines = SplitLines(file->source);
    bool changed = false;
    // Atomic-order stubs first (they only touch their own line), then the
    // guard rewrite (which may insert lines — but only above/below code,
    // so the order keeps line numbers valid for the stub edits).
    for (const Violation* v : fixable) {
      if (v->rule == "atomic-order-comment") {
        changed |= FixAtomicOrderComment(v->line, &lines);
      }
    }
    for (const Violation* v : fixable) {
      if (v->rule == "include-guard") {
        changed |= FixIncludeGuard(*file, &lines);
        break;  // one guard per file
      }
    }
    if (!changed) continue;
    std::ofstream out(file->path, std::ios::binary | std::ios::trunc);
    if (!out) continue;
    out << JoinLines(lines);
    ++files_modified;
  }
  return files_modified;
}

}  // namespace rflint
