// rf_lint --fix: mechanical rewrites for the two rules whose remedy is
// unambiguous text surgery.
//
//   include-guard         Rewrites the #ifndef/#define pair (and a matching
//                         #endif trailer comment) to the canonical macro, or
//                         inserts a whole guard when the header has none.
//   atomic-order-comment  Appends a TODO justification stub to the flagged
//                         line so the gap is visible in the diff instead of
//                         invisible in the lint log.
//
// Fixes are idempotent: a second run over fixed files applies zero edits,
// because both rewrites make the rule that produced them pass.

#ifndef RESUFORMER_TOOLS_RF_LINT_FIXIT_H_
#define RESUFORMER_TOOLS_RF_LINT_FIXIT_H_

#include <vector>

#include "rf_lint/rules.h"

namespace rflint {

/// Applies fixes for fixable violations, rewriting files in place.
/// Returns the number of files modified.
int ApplyFixes(const std::vector<LintedFile>& files,
               const std::vector<Violation>& violations);

}  // namespace rflint

#endif  // RESUFORMER_TOOLS_RF_LINT_FIXIT_H_
