#include "rf_lint/scopes.h"

#include <algorithm>
#include <map>
#include <set>

namespace rflint {

namespace {

const std::set<std::string>& GuardClasses() {
  static const std::set<std::string> kSet = {"lock_guard", "unique_lock",
                                             "scoped_lock"};
  return kSet;
}

const std::set<std::string>& SleepCalls() {
  static const std::set<std::string> kSet = {"sleep_for", "sleep_until",
                                             "usleep", "nanosleep", "sleep"};
  return kSet;
}

// Blocking only when spelled with the global qualifier (::read). Unqualified
// `read`/`write` are far too common as member names to treat as syscalls.
const std::set<std::string>& GlobalIoCalls() {
  static const std::set<std::string> kSet = {
      "read", "write", "recv",    "send",    "accept",  "connect",
      "poll", "select", "recvfrom", "sendto", "recvmsg", "sendmsg"};
  return kSet;
}

// Container members that may grow the allocation. `assign`/`clear` are
// deliberately absent: reusing existing capacity is the steady-state idiom
// the zero-alloc invariant is built on.
const std::set<std::string>& GrowthMembers() {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "push_front", "emplace_front", "resize",
      "reserve",   "insert",       "emplace",    "append"};
  return kSet;
}

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kSet = {"if",    "for",   "while",
                                             "switch", "catch", "constexpr"};
  return kSet;
}

// Identifier-keywords after which `Name(` is an expression, not a decl.
const std::set<std::string>& StatementKeywords() {
  static const std::set<std::string> kSet = {"return",    "co_return",
                                             "co_await",  "co_yield",
                                             "throw",     "else",
                                             "do",        "case"};
  return kSet;
}

const std::set<std::string>& PostQualifiers() {
  static const std::set<std::string> kSet = {"const",  "noexcept", "override",
                                             "final",  "mutable",  "try"};
  return kSet;
}

// Idents that never open a call fact even when followed by '('.
const std::set<std::string>& NonCallKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",     "while",   "switch",        "return", "sizeof",
      "alignof", "catch",  "new",     "delete",        "throw",  "decltype",
      "noexcept", "static_assert",    "alignas",       "typeid", "case",
      "co_await", "co_return",        "co_yield",      "defined"};
  return kSet;
}

std::string FileStem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

class Tracker {
 public:
  Tracker(const std::string& file, const LexedFile& lex) : file_(file) {
    toks_.reserve(lex.tokens.size());
    for (const Token& t : lex.tokens) {
      if (t.kind != TokKind::kPp) toks_.push_back(&t);
    }
    for (const Comment& c : lex.comments) {
      for (int l = c.line; l <= c.end_line; ++l) {
        comment_by_line_[l] += c.text;
      }
    }
  }

  ScopeAnalysis Run() {
    const int n = static_cast<int>(toks_.size());
    for (int i = 0; i < n; ++i) {
      const Token& t = Tok(i);
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") {
          OpenBrace(i);
        } else if (t.text == "}") {
          CloseBrace();
        } else if (t.text == "(") {
          parens_.push_back(next_paren_parallel_);
          next_paren_parallel_ = false;
        } else if (t.text == ")") {
          if (!parens_.empty()) parens_.pop_back();
        }
        continue;
      }
      if (t.kind == TokKind::kIdent) HandleIdent(i);
    }
    ScopeAnalysis out;
    out.functions = std::move(functions_);
    return out;
  }

 private:
  struct Frame {
    enum Kind { kNamespace, kClass, kEnum, kFunction, kLambda, kBlock };
    Kind kind = kBlock;
    std::string name;               // namespace / class name
    int func = -1;                  // enclosing function index (-1 at type scope)
    bool one_time = false;          // body of `if (tl_var == nullptr)` init
    std::vector<int> locks;         // active lock indices owned by this frame
    std::vector<std::string> guards;  // guard vars declared in this frame
  };

  struct GuardState {
    std::string mutex;  // qualified identity ("" for a guard with no target)
  };

  struct Classified {
    Frame::Kind kind = Frame::kBlock;
    std::vector<std::string> name_chain;  // for kFunction
    int name_line = 0;
  };

  const Token& Tok(int i) const { return *toks_[i]; }
  int Count() const { return static_cast<int>(toks_.size()); }
  const std::string& Text(int i) const { return Tok(i).text; }
  bool IsIdent(int i) const { return Tok(i).kind == TokKind::kIdent; }
  bool Is(int i, const char* s) const { return Tok(i).text == s; }

  int CurrentFunc() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == Frame::kFunction || it->kind == Frame::kLambda ||
          it->kind == Frame::kBlock) {
        return it->func;
      }
      return -1;  // hit a class/namespace/enum boundary first
    }
    return -1;
  }

  std::string EnclosingClass() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == Frame::kClass) return it->name;
    }
    return "";
  }

  std::vector<int> ActiveLocks(int func) const {
    std::vector<int> out;
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->func != func &&
          (it->kind == Frame::kFunction || it->kind == Frame::kLambda)) {
        break;
      }
      if (it->func != func) break;
      for (int idx : it->locks) out.push_back(idx);
      if (it->kind == Frame::kFunction || it->kind == Frame::kLambda) break;
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // ---- brace bookkeeping -------------------------------------------------

  void OpenBrace(int i) {
    auto pending = pending_braces_.find(i);
    if (pending != pending_braces_.end()) {
      frames_.push_back(pending->second);
      frames_.back().func = -1;
      pending_braces_.erase(pending);
      return;
    }
    Classified c = Classify(i);
    if (c.kind == Frame::kFunction || c.kind == Frame::kLambda) {
      const int f = static_cast<int>(functions_.size());
      functions_.push_back(
          MakeFunction(c, Tok(i).line, c.kind == Frame::kLambda));
      Frame frame;
      frame.kind = c.kind;
      frame.func = f;
      frames_.push_back(frame);
      return;
    }
    Frame frame;
    frame.kind = Frame::kBlock;
    frame.func = CurrentFunc();
    frame.one_time = IsOneTimeInitBody(i);
    frames_.push_back(frame);
  }

  // `{` at token i opens the body of `if (V == nullptr)` / `if (!V)` where V
  // is a function-local thread_local: the canonical once-per-thread
  // registration idiom. Facts inside are one-time init, not steady state.
  bool IsOneTimeInitBody(int i) const {
    const int f = CurrentFunc();
    if (f < 0 || i < 1 || !Is(i - 1, ")")) return false;
    auto vars = tl_vars_.find(f);
    if (vars == tl_vars_.end()) return false;
    const int open = MatchBack(i - 1, "(", ")");
    if (open <= 0 || !IsIdent(open - 1) || Text(open - 1) != "if") {
      return false;
    }
    const int a = open + 1, b = i - 2;  // condition tokens, inclusive
    const int n = b - a + 1;
    if (n == 4 && Is(a + 1, "=") && Is(a + 2, "=")) {
      if (IsIdent(a) && Text(b) == "nullptr" && vars->second.count(Text(a))) {
        return true;
      }
      if (Text(a) == "nullptr" && IsIdent(b) && vars->second.count(Text(b))) {
        return true;
      }
    }
    if (n == 2 && Is(a, "!") && IsIdent(b) && vars->second.count(Text(b))) {
      return true;
    }
    return false;
  }

  bool InOneTimeInit() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->one_time) return true;
      if (it->kind == Frame::kFunction || it->kind == Frame::kLambda) break;
    }
    return false;
  }

  void CloseBrace() {
    if (frames_.empty()) return;
    for (const std::string& g : frames_.back().guards) guard_map_.erase(g);
    frames_.pop_back();
  }

  FunctionInfo MakeFunction(const Classified& c, int brace_line,
                            bool is_lambda) {
    FunctionInfo f;
    f.file = file_;
    f.is_lambda = is_lambda;
    f.line = c.name_line;
    if (is_lambda) {
      const int outer = CurrentFunc();
      const std::string outer_name =
          outer >= 0 ? functions_[outer].qualified_name : "";
      f.simple_name = "<lambda@" + std::to_string(c.name_line) + ">";
      f.qualified_name =
          outer_name.empty() ? f.simple_name : outer_name + "::" + f.simple_name;
      f.owner_class = outer >= 0 ? functions_[outer].owner_class : "";
      for (bool parallel : parens_) {
        if (parallel) f.is_parallel_body = true;
      }
      return f;
    }
    f.simple_name = c.name_chain.empty() ? "?" : c.name_chain.back();
    if (c.name_chain.size() > 1) {
      f.owner_class = c.name_chain[c.name_chain.size() - 2];
    } else {
      f.owner_class = EnclosingClass();
    }
    std::string qual;
    if (c.name_chain.size() == 1 && !f.owner_class.empty()) {
      qual = f.owner_class + "::";
    }
    for (size_t k = 0; k < c.name_chain.size(); ++k) {
      if (k) qual += "::";
      qual += c.name_chain[k];
    }
    f.qualified_name = qual;
    for (int l = c.name_line - 2; l <= brace_line; ++l) {
      auto it = comment_by_line_.find(l);
      if (it != comment_by_line_.end() &&
          it->second.find("rf-lint-attr(nonblocking)") != std::string::npos) {
        f.attr_nonblocking = true;
      }
    }
    return f;
  }

  // ---- brace classification ---------------------------------------------

  // Backward bracket matching with a step cap so a confused region degrades
  // to "block" instead of scanning the whole file.
  int MatchBack(int i, const char* open, const char* close) const {
    int depth = 0;
    for (int steps = 0; i >= 0 && steps < 2000; --i, ++steps) {
      if (Tok(i).kind != TokKind::kPunct) continue;
      if (Text(i) == close) {
        ++depth;
      } else if (Text(i) == open) {
        if (--depth == 0) return i;
      }
    }
    return -1;
  }

  int MatchAngleBack(int i) const {
    int depth = 0;
    for (int steps = 0; i >= 0 && steps < 200; --i, ++steps) {
      if (Text(i) == ">") {
        ++depth;
      } else if (Text(i) == "<") {
        if (--depth == 0) return i;
      } else if (Text(i) == ";" || Text(i) == "{" || Text(i) == "}") {
        return -1;
      }
    }
    return -1;
  }

  bool LambdaIntroAt(int lb) const {
    if (lb == 0) return true;
    const Token& p = Tok(lb - 1);
    if (p.kind == TokKind::kIdent) {
      return StatementKeywords().count(p.text) > 0;
    }
    if (p.kind != TokKind::kPunct) return false;
    static const std::set<std::string> kBefore = {"(", ",", "=", "{", ";",
                                                 ":",  "&", "|", "?", "<"};
    return kBefore.count(p.text) > 0;
  }

  Classified Classify(int brace) const {
    Classified out;
    int j = brace - 1;
    // Walk back over post-signature qualifiers and trailing return types.
    for (int guard = 0; guard < 40 && j >= 0; ++guard) {
      const Token& t = Tok(j);
      if (t.kind == TokKind::kIdent && PostQualifiers().count(t.text)) {
        --j;
        continue;
      }
      // Trailing return: `) -> Type {` — probe back over type tokens.
      static const std::set<std::string> kTypeTok = {"::", "<", ">", "*",
                                                     "&",  "[", "]", ","};
      if (t.kind == TokKind::kIdent ||
          (t.kind == TokKind::kPunct && kTypeTok.count(t.text))) {
        int k = j;
        for (int steps = 0; k >= 0 && steps < 30; --k, ++steps) {
          const Token& tk = Tok(k);
          const bool type_like =
              tk.kind == TokKind::kIdent ||
              (tk.kind == TokKind::kPunct && kTypeTok.count(tk.text));
          if (!type_like) break;
        }
        if (k >= 0 && Is(k, "->")) {
          j = k - 1;
          continue;
        }
      }
      break;
    }
    if (j < 0) return out;
    if (Is(j, ")")) return ClassifyFromParamClose(j);
    if (Is(j, "]")) {
      const int lb = MatchBack(j, "[", "]");
      if (lb > 0 && Is(lb - 1, "[")) return out;  // attribute [[...]]
      if (lb >= 0 && LambdaIntroAt(lb)) {
        out.kind = Frame::kLambda;
        out.name_line = Tok(lb).line;
      }
    }
    return out;
  }

  Classified ClassifyFromParamClose(int close) const {
    Classified out;
    const int open = MatchBack(close, "(", ")");
    if (open <= 0) return out;
    int k = open - 1;
    if (Is(k, "]")) {
      const int lb = MatchBack(k, "[", "]");
      if (lb >= 0 && LambdaIntroAt(lb)) {
        out.kind = Frame::kLambda;
        out.name_line = Tok(lb).line;
      }
      return out;
    }
    if (Is(k, ">")) {  // templated name: Foo<T>(...)
      const int ab = MatchAngleBack(k);
      if (ab <= 0) return out;
      k = ab - 1;
    }
    if (!IsIdent(k)) return out;
    if (ControlKeywords().count(Text(k))) return out;
    if (Text(k) == "noexcept") {
      return k >= 1 && Is(k - 1, ")") ? ClassifyFromParamClose(k - 1) : out;
    }
    // Assemble the (possibly qualified) name chain.
    std::vector<std::string> chain;
    int m = k;
    bool dtor = false;
    if (m >= 1 && Is(m - 1, "~")) {
      dtor = true;
      --m;
    }
    chain.push_back((dtor ? "~" : "") + Text(k));
    while (m >= 2 && Is(m - 1, "::") && IsIdent(m - 2)) {
      chain.insert(chain.begin(), Text(m - 2));
      m -= 2;
    }
    if (m >= 1) {
      const Token& before = Tok(m - 1);
      if (before.text == "." || before.text == "->") return out;
      if (before.text == "," || before.text == ":") {
        // Possibly a constructor initializer-list entry; walk back to the
        // parameter list the list hangs off.
        const int params = WalkInitList(m - 1);
        return params >= 0 ? ClassifyFromParamClose(params) : out;
      }
    }
    out.kind = Frame::kFunction;
    out.name_chain = std::move(chain);
    out.name_line = Tok(k).line;
    return out;
  }

  // `sep` points at the ',' or ':' preceding an initializer entry already
  // consumed. Returns the index of the ')' closing the ctor's parameter
  // list, or -1 when the shape doesn't match an init list.
  int WalkInitList(int sep) const {
    int m = sep;
    for (int guard = 0; guard < 60 && m >= 0; ++guard) {
      if (Is(m, ":")) {
        int j = m - 1;
        while (j >= 0 && IsIdent(j) && Text(j) == "noexcept") --j;
        return j >= 0 && Is(j, ")") ? j : -1;
      }
      if (!Is(m, ",")) return -1;
      int e = m - 1;
      if (e < 0) return -1;
      if (Is(e, ")")) {
        e = MatchBack(e, "(", ")");
      } else if (Is(e, "}")) {
        e = MatchBack(e, "{", "}");
      } else {
        return -1;
      }
      if (e <= 0) return -1;
      --e;  // the member name
      if (e < 0 || !IsIdent(e)) return -1;
      m = e - 1;
    }
    return -1;
  }

  // ---- type headers (namespace / class / enum) ---------------------------

  void ScanNamespaceHeader(int i) {
    std::string name;
    for (int j = i + 1, steps = 0; j < Count() && steps < 40; ++j, ++steps) {
      if (IsIdent(j) || Is(j, "::")) {
        name += Text(j);
        continue;
      }
      if (Is(j, "{")) {
        Frame f;
        f.kind = Frame::kNamespace;
        f.name = name.empty() ? "<anon>" : name;
        pending_braces_[j] = f;
      }
      return;  // ';' (alias/using) or '=' or anything else: not a block
    }
  }

  void ScanClassHeader(int i) {
    // Skip `template <class T>` parameters and `enum class`.
    if (i >= 1 && (Is(i - 1, "<") || Is(i - 1, ",") || Is(i - 1, "enum"))) {
      return;
    }
    if (!parens_.empty()) return;  // `f(struct stat* s)` etc.
    std::string name;
    int angle = 0, paren = 0;
    for (int j = i + 1, steps = 0; j < Count() && steps < 200; ++j, ++steps) {
      const std::string& t = Text(j);
      if (t == "<") ++angle;
      if (t == ">" && angle > 0) --angle;
      if (t == "(") ++paren;
      if (t == ")" && paren > 0) --paren;
      if (angle > 0 || paren > 0) continue;
      if (name.empty() && IsIdent(j) && t != "final" && t != "alignas") {
        name = t;
        continue;
      }
      if (t == ";" || t == "=") return;  // fwd decl / alias
      if (t == "{") {
        Frame f;
        f.kind = Frame::kClass;
        f.name = name.empty() ? "<anon>" : name;
        pending_braces_[j] = f;
        return;
      }
    }
  }

  void ScanEnumHeader(int i) {
    for (int j = i + 1, steps = 0; j < Count() && steps < 40; ++j, ++steps) {
      if (Is(j, ";")) return;
      if (Is(j, "{")) {
        Frame f;
        f.kind = Frame::kEnum;
        pending_braces_[j] = f;
        return;
      }
    }
  }

  // ---- facts -------------------------------------------------------------

  void HandleIdent(int i) {
    const std::string& t = Text(i);
    if (t == "namespace") {
      ScanNamespaceHeader(i);
      return;
    }
    if (t == "class" || t == "struct" || t == "union") {
      ScanClassHeader(i);
      return;
    }
    if (t == "enum") {
      ScanEnumHeader(i);
      return;
    }

    const int f = CurrentFunc();
    if (f < 0) return;  // facts only matter inside function bodies

    if (t == "thread_local") {
      // Function-local thread_local declaration: remember the variable name
      // so a following `if (var == nullptr)` block reads as one-time init.
      int last_ident = -1;
      for (int j = i + 1, steps = 0; j < Count() && steps < 16; ++j, ++steps) {
        if (Is(j, ";") || Is(j, "=") || Is(j, "{") || Is(j, "(")) break;
        if (IsIdent(j)) last_ident = j;
      }
      if (last_ident >= 0) tl_vars_[f].insert(Text(last_ident));
      return;
    }

    const bool next_open =
        i + 1 < Count() && Tok(i + 1).kind == TokKind::kPunct &&
        Text(i + 1) == "(";
    const bool member_recv =
        i >= 1 && (Is(i - 1, ".") || Is(i - 1, "->"));

    if (GuardClasses().count(t) && !member_recv) {
      HandleGuardDecl(i, f);
      return;
    }
    if ((t == "ParallelFor" || t == "ForRows" || t == "ForElems") &&
        next_open) {
      next_paren_parallel_ = true;
      RecordCall(i, f, member_recv);
      return;
    }
    if (next_open && SleepCalls().count(t)) {
      functions_[f].blocking.push_back({t, Tok(i).line, ActiveLocks(f)});
      return;
    }
    if (next_open && GlobalIoCalls().count(t) && i >= 1 && Is(i - 1, "::")) {
      // Global qualification only: `::read(...)`, not `Foo::read(...)`.
      const bool global = i < 2 || (!IsIdent(i - 2) && !Is(i - 2, ">"));
      if (global) {
        functions_[f].blocking.push_back(
            {"::" + t, Tok(i).line, ActiveLocks(f)});
        return;
      }
    }
    if (next_open && member_recv &&
        (t == "wait" || t == "wait_for" || t == "wait_until")) {
      functions_[f].cv_wait_lines.push_back(Tok(i).line);
      return;
    }
    if (next_open && member_recv &&
        (t == "lock" || t == "unlock" || t == "try_lock")) {
      HandleLockCall(i, f, t);
      return;
    }
    if (t == "new" && !(i >= 1 && Is(i - 1, "operator"))) {
      // `static T* x = new T...` initializes once, not per call — mirror the
      // naked-new rule's leaked-singleton exemption so the reachability pass
      // doesn't tag every chain through a Meyers-singleton accessor.
      bool static_init = false;
      if (i >= 1 && Is(i - 1, "=")) {
        for (int j = i - 2; j >= 0 && j >= i - 14; --j) {
          if (IsIdent(j) && Text(j) == "static") static_init = true;
          if (Is(j, ";") || Is(j, "{") || Is(j, "}")) break;
        }
      }
      if (!static_init && !InOneTimeInit()) {
        functions_[f].allocs.push_back({"new", Tok(i).line, ActiveLocks(f)});
      }
      return;
    }
    if ((t == "make_unique" || t == "make_shared") &&
        (next_open || (i + 1 < Count() && Is(i + 1, "<")))) {
      if (!InOneTimeInit()) {
        functions_[f].allocs.push_back({t, Tok(i).line, ActiveLocks(f)});
      }
      return;
    }
    if (next_open && !member_recv &&
        (t == "malloc" || t == "calloc" || t == "realloc" || t == "strdup")) {
      if (!InOneTimeInit()) {
        functions_[f].allocs.push_back({t, Tok(i).line, ActiveLocks(f)});
      }
      return;
    }
    if (next_open && member_recv && GrowthMembers().count(t)) {
      if (!InOneTimeInit()) {
        const std::string recv = ReceiverChain(i - 2);
        const std::string what = recv.empty() ? t : recv + "." + t;
        functions_[f].allocs.push_back({what, Tok(i).line, ActiveLocks(f)});
      }
      return;
    }
    if (next_open) RecordCall(i, f, member_recv);
  }

  void RecordCall(int i, int f, bool member_recv) {
    const std::string& t = Text(i);
    if (NonCallKeywords().count(t)) return;
    std::string qualifier;
    if (!member_recv && i >= 2 && Is(i - 1, "::") && IsIdent(i - 2)) {
      qualifier = Text(i - 2);
    } else if (!member_recv && i >= 1) {
      const Token& prev = Tok(i - 1);
      // `Type Name(` / `Foo* Name(` is a declaration, not a call.
      if (prev.kind == TokKind::kIdent &&
          !StatementKeywords().count(prev.text)) {
        return;
      }
      if (prev.kind == TokKind::kPunct &&
          (prev.text == ">" || prev.text == "*" || prev.text == "&")) {
        return;
      }
    }
    // A call inside a function-local static initializer runs once per
    // process (scan back to the statement boundary for `static`); a call
    // inside a thread_local null-check block runs once per thread.
    bool static_init = InOneTimeInit();
    for (int j = i - 1; !static_init && j >= 0 && j >= i - 24; --j) {
      if (Is(j, ";") || Is(j, "{") || Is(j, "}")) break;
      if (IsIdent(j) && Text(j) == "static") {
        static_init = true;
        break;
      }
    }
    functions_[f].calls.push_back(
        {t, qualifier, member_recv, static_init, Tok(i).line, ActiveLocks(f)});
  }

  // Receiver expression ending at token index `last` (inclusive): walks back
  // over ident / :: / . / -> / this chains.
  std::string ReceiverChain(int last) const {
    int first = last;
    for (int steps = 0; first >= 0 && steps < 12; --first, ++steps) {
      const Token& t = Tok(first);
      const bool chain =
          t.kind == TokKind::kIdent ||
          (t.kind == TokKind::kPunct &&
           (t.text == "::" || t.text == "." || t.text == "->"));
      if (!chain) break;
    }
    ++first;
    std::string out;
    for (int k = first; k <= last; ++k) out += Text(k);
    return out;
  }

  std::string Qualify(std::string expr, int f) const {
    while (!expr.empty() && (expr[0] == '*' || expr[0] == '&')) {
      expr.erase(expr.begin());
    }
    if (expr.rfind("this->", 0) == 0) expr = expr.substr(6);
    if (expr.find("->") != std::string::npos ||
        expr.find('.') != std::string::npos ||
        expr.find("::") != std::string::npos) {
      return expr;
    }
    const std::string& cls = functions_[f].owner_class;
    if (!cls.empty()) return cls + "::" + expr;
    return FileStem(file_) + "::" + expr;
  }

  int AcquireLock(int f, const std::string& mutex, const std::string& var,
                  const std::string& kind, int line, bool function_scope) {
    LockSite site;
    site.mutex = mutex;
    site.guard_var = var;
    site.kind = kind;
    site.line = line;
    site.held_at_acquire = ActiveLocks(f);
    const int idx = static_cast<int>(functions_[f].locks.size());
    functions_[f].locks.push_back(site);
    Frame* target = &frames_.back();
    if (function_scope) {
      for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        if (it->kind == Frame::kFunction || it->kind == Frame::kLambda) {
          target = &*it;
          break;
        }
      }
    }
    target->locks.push_back(idx);
    return idx;
  }

  void Deactivate(int idx) {
    for (Frame& fr : frames_) {
      auto it = std::find(fr.locks.begin(), fr.locks.end(), idx);
      if (it != fr.locks.end()) {
        fr.locks.erase(it);
        return;
      }
    }
  }

  void HandleGuardDecl(int i, int f) {
    const std::string kind = Text(i);
    int j = i + 1;
    if (j < Count() && Is(j, "<")) {
      int depth = 0;
      for (int steps = 0; j < Count() && steps < 60; ++j, ++steps) {
        if (Is(j, "<")) ++depth;
        if (Is(j, ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (j >= Count() || !IsIdent(j)) return;  // not a declaration
    const std::string var = Text(j);
    const int line = Tok(j).line;
    ++j;
    if (j < Count() && Is(j, ";")) {  // `std::unique_lock<std::mutex> lk;`
      guard_map_[var] = {""};
      frames_.back().guards.push_back(var);
      return;
    }
    const char* open = nullptr;
    const char* close = nullptr;
    if (j < Count() && Is(j, "(")) {
      open = "(";
      close = ")";
    } else if (j < Count() && Is(j, "{")) {
      open = "{";
      close = "}";
    } else {
      return;
    }
    // Split constructor args on top-level commas.
    std::vector<std::string> args;
    std::string cur;
    int depth = 0;
    for (int steps = 0; j < Count() && steps < 120; ++j, ++steps) {
      const std::string& t = Text(j);
      if (t == open || t == "(" || t == "[") {
        ++depth;
        if (depth > 1) cur += t;
        continue;
      }
      if (t == close || t == ")" || t == "]") {
        --depth;
        if (depth == 0) break;
        cur += t;
        continue;
      }
      if (t == "," && depth == 1) {
        args.push_back(cur);
        cur.clear();
        continue;
      }
      cur += t;
    }
    if (!cur.empty()) args.push_back(cur);
    // Tag arguments (defer/adopt/try) trail the mutex, so scan the whole
    // list for them before deciding which args are mutexes.
    bool deferred = false, adopted = false;
    std::vector<std::string> mutex_args;
    for (const std::string& a : args) {
      if (a.find("defer_lock") != std::string::npos) {
        deferred = true;
      } else if (a.find("adopt_lock") != std::string::npos ||
                 a.find("try_to_lock") != std::string::npos) {
        adopted = true;  // already held (acquisition recorded at .lock())
      } else {
        mutex_args.push_back(a);
      }
    }
    frames_.back().guards.push_back(var);
    for (const std::string& m : mutex_args) {
      const std::string qualified = Qualify(m, f);
      guard_map_[var] = {qualified};
      if (!deferred && !adopted) {
        AcquireLock(f, qualified, var, kind, line, /*function_scope=*/false);
      }
      if (kind != "scoped_lock") break;  // only the first arg is the mutex
    }
    if (mutex_args.empty()) guard_map_[var] = {""};
  }

  void HandleLockCall(int i, int f, const std::string& which) {
    const std::string recv = ReceiverChain(i - 2);
    if (recv.empty()) return;
    if (which == "unlock") {
      // Release by guard var name or by mutex identity.
      const std::string qualified = Qualify(recv, f);
      auto& locks = functions_[f].locks;
      for (int idx = static_cast<int>(locks.size()) - 1; idx >= 0; --idx) {
        if (locks[idx].guard_var == recv || locks[idx].mutex == qualified) {
          Deactivate(idx);
          return;
        }
      }
      return;
    }
    // lock() / try_lock(): re-arm a known guard, else treat the receiver as
    // the mutex itself. Raw locks live until unlock or function end.
    auto guard = guard_map_.find(recv);
    if (guard != guard_map_.end()) {
      if (guard->second.mutex.empty()) return;  // guard with unknown target
      AcquireLock(f, guard->second.mutex, recv, "lock()", Tok(i).line,
                  /*function_scope=*/true);
      return;
    }
    AcquireLock(f, Qualify(recv, f), "", "lock()", Tok(i).line,
                /*function_scope=*/true);
  }

  const std::string file_;
  std::vector<const Token*> toks_;
  std::vector<Frame> frames_;
  std::vector<bool> parens_;  // one entry per open paren: parallel-call args?
  bool next_paren_parallel_ = false;
  std::vector<FunctionInfo> functions_;
  std::map<int, Frame> pending_braces_;     // token index of '{' -> frame
  std::map<int, std::set<std::string>> tl_vars_;  // func -> thread_local vars
  std::map<std::string, GuardState> guard_map_;
  std::map<int, std::string> comment_by_line_;
};

}  // namespace

ScopeAnalysis AnalyzeScopes(const std::string& file_rel, const LexedFile& lex) {
  return Tracker(file_rel, lex).Run();
}

}  // namespace rflint
