#include "rf_lint/rules.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "rf_lint/callgraph.h"

namespace rflint {

namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeader(const std::string& rel) {
  return HasSuffix(rel, ".h") || HasSuffix(rel, ".hpp");
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Index of the token matching an opener at `i`, or -1. Skips kPp tokens.
int MatchForward(const std::vector<Token>& toks, int i, const char* open,
                 const char* close) {
  int depth = 0;
  const int n = static_cast<int>(toks.size());
  for (int steps = 0; i < n && steps < 20000; ++i, ++steps) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == open) {
      ++depth;
    } else if (toks[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return -1;
}

bool LineHasComment(const LexedFile& lex, int line) {
  return line >= 1 && line < static_cast<int>(lex.line_has_comment.size()) &&
         lex.line_has_comment[line];
}

// Parses "rule[,rule...]" between parens starting at `open` in `text`.
std::set<std::string> ParseRuleList(const std::string& text, size_t open) {
  std::set<std::string> rules;
  const size_t close = text.find(')', open);
  if (close == std::string::npos) return rules;
  std::stringstream ss(text.substr(open + 1, close - open - 1));
  std::string item;
  while (std::getline(ss, item, ',')) {
    item.erase(std::remove_if(item.begin(), item.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               item.end());
    if (!item.empty()) rules.insert(item);
  }
  return rules;
}

// Matches `Status Foo(` or `Result<...> Foo(` starting at token i. On match
// returns the index of the function-name token, else -1.
int MatchStatusReturningDecl(const std::vector<Token>& toks, int i) {
  const int n = static_cast<int>(toks.size());
  int name = -1;
  if (IsIdent(toks[i], "Status")) {
    name = i + 1;
  } else if (IsIdent(toks[i], "Result") && i + 1 < n &&
             IsPunct(toks[i + 1], "<")) {
    const int close = MatchForward(toks, i + 1, "<", ">");
    if (close < 0 || close - i > 40) return -1;
    name = close + 1;
  } else {
    return -1;
  }
  if (name + 1 >= n) return -1;
  if (toks[name].kind != TokKind::kIdent) return -1;
  if (!IsPunct(toks[name + 1], "(")) return -1;
  // `Status::Foo(` is a scoped call, not a declaration.
  if (i >= 1 && (IsPunct(toks[i - 1], "::") || IsPunct(toks[i - 1], ".") ||
                 IsPunct(toks[i - 1], "->"))) {
    return -1;
  }
  return name;
}

const char* kMemoryOrders[] = {"memory_order_relaxed", "memory_order_acquire",
                               "memory_order_release", "memory_order_acq_rel",
                               "memory_order_consume"};

}  // namespace

std::string ExpectedGuardMacro(std::string rel) {
  if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
  std::string expected = "RESUFORMER_";
  for (char c : rel) {
    expected += std::isalnum(static_cast<unsigned char>(c))
                    ? static_cast<char>(
                          std::toupper(static_cast<unsigned char>(c)))
                    : '_';
  }
  expected += "_";
  return expected;
}

const std::vector<std::string>& Linter::AllRules() {
  static const std::vector<std::string> kRules = {
      "nodiscard-status",       "discarded-status",
      "atomic-order-comment",   "naked-new",
      "naked-malloc",           "std-rand",
      "volatile-qualifier",     "include-guard",
      "trace-span-in-parallel-for", "json-string-concat",
      "mmap-payload-cast",      "metric-name-literal",
      "lock-order-cycle",       "blocking-reachable-under-lock",
      "alloc-in-parallel-for"};
  return kRules;
}

void Linter::AddFile(const std::filesystem::path& path,
                     const std::string& rel) {
  LintedFile file;
  file.path = path;
  file.rel = rel;
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  file.source = buf.str();
  file.lex = Lex(file.source);
  // Suppressions live in comments only.
  for (const Comment& c : file.lex.comments) {
    size_t pos = 0;
    while ((pos = c.text.find("rf-lint-allow", pos)) != std::string::npos) {
      size_t open = pos + 13;  // strlen("rf-lint-allow")
      bool file_scope = false;
      if (c.text.compare(open, 5, "-file") == 0) {
        open += 5;
        file_scope = true;
      }
      if (open < c.text.size() && c.text[open] == '(') {
        for (const std::string& r : ParseRuleList(c.text, open)) {
          if (file_scope) {
            file.file_allow.insert(r);
          } else {
            for (int l = c.line; l <= c.end_line; ++l) {
              file.line_allow[l].insert(r);
            }
          }
        }
      }
      pos = open;
    }
  }
  files_.push_back(std::move(file));
}

void Linter::Run() {
  CollectStatusFunctions();
  for (const LintedFile& f : files_) {
    LintNodiscardDeclarations(f);
    LintDiscardedStatus(f);
    LintAtomicOrderComments(f);
    LintBannedConstructs(f);
    LintIncludeGuard(f);
    LintTraceSpanInParallelFor(f);
    LintJsonStringConcat(f);
    LintMmapPayloadCast(f);
    LintMetricNameLiteral(f);
  }
  RunGraphFamilies();
}

std::map<std::string, int> Linter::Expectations() const {
  std::map<std::string, int> expect;
  for (const LintedFile& f : files_) {
    for (const Comment& c : f.lex.comments) {
      size_t pos = 0;
      while ((pos = c.text.find("rf-lint-selftest-expect(", pos)) !=
             std::string::npos) {
        const size_t open = pos + 24;
        const size_t eq = c.text.find('=', open);
        const size_t close = c.text.find(')', open);
        pos = open;
        if (eq == std::string::npos || close == std::string::npos ||
            eq > close) {
          continue;
        }
        const std::string rule = c.text.substr(open, eq - open);
        const std::string count = c.text.substr(eq + 1, close - eq - 1);
        if (rule.empty() || count.empty()) continue;
        bool numeric = true;
        for (char ch : count) {
          if (!std::isdigit(static_cast<unsigned char>(ch))) numeric = false;
        }
        if (numeric) expect[rule] += std::stoi(count);
      }
    }
  }
  return expect;
}

bool Linter::Suppressed(const LintedFile& f, int line,
                        const std::string& rule) const {
  if (f.file_allow.count(rule)) return true;
  auto hit = [&](int l) {
    auto it = f.line_allow.find(l);
    return it != f.line_allow.end() && it->second.count(rule) > 0;
  };
  return hit(line) || hit(line - 1);
}

void Linter::Report(const LintedFile& f, int line, const std::string& rule,
                    std::string message) {
  if (Suppressed(f, line, rule)) return;
  violations_.push_back({f.rel, line, rule, std::move(message)});
}

void Linter::CollectStatusFunctions() {
  for (const LintedFile& f : files_) {
    const auto& toks = f.lex.tokens;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      const int name = MatchStatusReturningDecl(toks, i);
      if (name >= 0) status_functions_.insert(toks[name].text);
    }
  }
}

void Linter::LintNodiscardDeclarations(const LintedFile& f) {
  if (!IsHeader(f.rel)) return;
  const auto& toks = f.lex.tokens;
  for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
    const int name = MatchStatusReturningDecl(toks, i);
    if (name < 0) continue;
    // [[nodiscard]] appears shortly before the return type.
    bool annotated = false;
    for (int j = i - 1; j >= 0 && j >= i - 8; --j) {
      if (IsIdent(toks[j], "nodiscard")) annotated = true;
      if (IsPunct(toks[j], ";") || IsPunct(toks[j], "{") ||
          IsPunct(toks[j], "}")) {
        break;
      }
    }
    if (!annotated) {
      Report(f, toks[name].line, "nodiscard-status",
             "declaration of '" + toks[name].text + "' returns " +
                 toks[i].text +
                 " but is not [[nodiscard]]; a dropped error must not "
                 "compile warning-clean");
    }
  }
}

void Linter::LintDiscardedStatus(const LintedFile& f) {
  const auto& toks = f.lex.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::kIdent || i + 1 >= n ||
        !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    if (status_functions_.count(toks[i].text) == 0) continue;
    // Walk back over the receiver/qualifier chain to the statement start.
    int start = i;
    while (start >= 2 &&
           (IsPunct(toks[start - 1], "::") || IsPunct(toks[start - 1], ".") ||
            IsPunct(toks[start - 1], "->")) &&
           toks[start - 2].kind == TokKind::kIdent) {
      start -= 2;
    }
    const bool at_statement_start =
        start == 0 || IsPunct(toks[start - 1], ";") ||
        IsPunct(toks[start - 1], "{") || IsPunct(toks[start - 1], "}") ||
        IsIdent(toks[start - 1], "else") || IsIdent(toks[start - 1], "do") ||
        toks[start - 1].kind == TokKind::kPp;
    if (!at_statement_start) continue;
    const int close = MatchForward(toks, i + 1, "(", ")");
    if (close < 0 || close + 1 >= n || !IsPunct(toks[close + 1], ";")) {
      continue;
    }
    Report(f, toks[i].line, "discarded-status",
           "return value of '" + toks[i].text +
               "' (Status/Result) is discarded; assign it, wrap it in "
               "RF_RETURN_NOT_OK/WarnIfError, or test .ok()");
  }
}

void Linter::LintAtomicOrderComments(const LintedFile& f) {
  for (const Token& t : f.lex.tokens) {
    if (t.kind != TokKind::kIdent) continue;
    bool is_order = false;
    for (const char* order : kMemoryOrders) {
      if (t.text == order) is_order = true;
    }
    if (!is_order) continue;
    bool commented = false;
    for (int l = t.line - 3; l <= t.line; ++l) {
      if (LineHasComment(f.lex, l)) commented = true;
    }
    if (!commented) {
      Report(f, t.line, "atomic-order-comment",
             "weakened std::memory_order without an adjacent justification "
             "comment (same line or the three lines above)");
    }
  }
}

void Linter::LintBannedConstructs(const LintedFile& f) {
  const auto& toks = f.lex.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool member_recv =
        i >= 1 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
    if (t.text == "new") {
      if (i >= 1 && IsIdent(toks[i - 1], "operator")) continue;
      // Leaked-singleton exemption: `static T* x = new T...`.
      bool leaked_singleton = false;
      if (i >= 1 && IsPunct(toks[i - 1], "=")) {
        for (int j = i - 2; j >= 0 && j >= i - 14; --j) {
          if (IsIdent(toks[j], "static")) leaked_singleton = true;
          if (IsPunct(toks[j], ";") || IsPunct(toks[j], "{") ||
              IsPunct(toks[j], "}")) {
            break;
          }
        }
      }
      if (!leaked_singleton) {
        Report(f, t.line, "naked-new",
               "naked 'new'; use std::make_unique/make_shared or a "
               "container (static leaked singletons are exempt)");
      }
      continue;
    }
    const bool call = i + 1 < n && IsPunct(toks[i + 1], "(");
    if (call && !member_recv &&
        (t.text == "malloc" || t.text == "calloc" || t.text == "realloc" ||
         t.text == "free")) {
      // `Foo::free(` is someone else's API; bare or std:: is the libc one.
      const bool scoped = i >= 2 && IsPunct(toks[i - 1], "::") &&
                          !IsIdent(toks[i - 2], "std");
      if (!scoped) {
        Report(f, t.line, "naked-malloc",
               "'" + t.text +
                   "' bypasses the tensor arena and RAII ownership");
      }
      continue;
    }
    if (call && !member_recv && (t.text == "rand" || t.text == "srand")) {
      const bool scoped = i >= 2 && IsPunct(toks[i - 1], "::") &&
                          !IsIdent(toks[i - 2], "std");
      if (!scoped) {
        Report(f, t.line, "std-rand",
               "'" + t.text +
                   "' breaks reproducibility; draw from common/rng.h");
      }
      continue;
    }
    if (t.text == "volatile") {
      Report(f, t.line, "volatile-qualifier",
             "'volatile' is not a threading primitive; use std::atomic "
             "with a documented memory order");
    }
  }
}

void Linter::LintIncludeGuard(const LintedFile& f) {
  if (!IsHeader(f.rel)) return;
  const std::string expected = ExpectedGuardMacro(f.rel);
  auto directive_word = [](const std::string& text, const std::string& kw) {
    // "#  ifndef FOO" -> "FOO" when kw matches, else "".
    size_t i = text.find('#');
    if (i == std::string::npos) return std::string();
    ++i;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (text.compare(i, kw.size(), kw) != 0) return std::string();
    i += kw.size();
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::string word;
    while (i < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[i])) ||
            text[i] == '_')) {
      word += text[i++];
    }
    return word;
  };
  std::string ifndef_macro, define_macro;
  int ifndef_line = 1;
  for (const Token& t : f.lex.tokens) {
    if (t.kind != TokKind::kPp) continue;
    if (ifndef_macro.empty()) {
      const std::string word = directive_word(t.text, "ifndef");
      if (!word.empty()) {
        ifndef_macro = word;
        ifndef_line = t.line;
      }
    } else {
      const std::string word = directive_word(t.text, "define");
      if (!word.empty()) {
        define_macro = word;
        break;
      }
    }
  }
  if (ifndef_macro.empty() || define_macro.empty()) {
    Report(f, 1, "include-guard",
           "missing include guard; expected #ifndef " + expected);
    return;
  }
  if (ifndef_macro != expected || define_macro != expected) {
    Report(f, ifndef_line, "include-guard",
           "include guard '" + ifndef_macro + "' should be '" + expected +
               "' (RESUFORMER_ + path relative to the repo root, src/ "
               "stripped)");
  }
}

void Linter::LintTraceSpanInParallelFor(const LintedFile& f) {
  const auto& toks = f.lex.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (!IsIdent(toks[i], "ParallelFor") || i + 1 >= n ||
        !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    const int close = MatchForward(toks, i + 1, "(", ")");
    if (close < 0) continue;
    for (int j = i + 2; j < close; ++j) {
      if (IsIdent(toks[j], "TRACE_SPAN")) {
        Report(f, toks[j].line, "trace-span-in-parallel-for",
               "TRACE_SPAN inside a ParallelFor body records a span per "
               "chunk per dispatch and floods the per-thread ring buffers; "
               "trace around the dispatch instead");
      }
    }
  }
}

void Linter::LintJsonStringConcat(const LintedFile& f) {
  // common/string_util implements the escape helper itself.
  if (f.rel.find("common/string_util") != std::string::npos) return;
  const auto& toks = f.lex.tokens;
  const int n = static_cast<int>(toks.size());
  auto ends_with_escaped_quote = [](const std::string& inner) {
    return inner.size() >= 2 && inner[inner.size() - 2] == '\\' &&
           inner.back() == '"';
  };
  auto starts_with_escaped_quote = [](const std::string& inner) {
    return inner.size() >= 2 && inner[0] == '\\' && inner[1] == '"';
  };
  for (int i = 0; i < n; ++i) {
    if (!IsPunct(toks[i], "+")) continue;
    const bool close_then_plus =
        i >= 1 && toks[i - 1].kind == TokKind::kString &&
        ends_with_escaped_quote(StringInner(toks[i - 1]));
    const bool plus_then_open =
        i + 1 < n && toks[i + 1].kind == TokKind::kString &&
        starts_with_escaped_quote(StringInner(toks[i + 1]));
    if (close_then_plus || plus_then_open) {
      Report(f, toks[i].line, "json-string-concat",
             "raw concatenation into a JSON string literal leaves the "
             "payload unescaped; quote values with JsonEscape/"
             "AppendJsonQuoted from common/string_util");
    }
  }
}

void Linter::LintMmapPayloadCast(const LintedFile& f) {
  if (HasSuffix(f.rel, "nn/serialize.cc") ||
      HasSuffix(f.rel, "tensor/quant.cc")) {
    return;
  }
  const auto& toks = f.lex.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (!IsIdent(toks[i], "reinterpret_cast") || i + 1 >= n ||
        !IsPunct(toks[i + 1], "<")) {
      continue;
    }
    const int close = MatchForward(toks, i + 1, "<", ">");
    if (close < 0) continue;
    bool byte_target = false;
    std::string target;
    for (int j = i + 2; j < close; ++j) {
      if (!target.empty() && toks[j].kind == TokKind::kIdent &&
          toks[j - 1].kind == TokKind::kIdent) {
        target += ' ';
      }
      target += toks[j].text;
      if (IsIdent(toks[j], "char") || IsIdent(toks[j], "byte") ||
          IsIdent(toks[j], "uintptr_t") || IsIdent(toks[j], "intptr_t") ||
          IsIdent(toks[j], "void")) {
        byte_target = true;
      }
    }
    if (byte_target) continue;
    Report(f, toks[i].line, "mmap-payload-cast",
           "reinterpret_cast to '" + target +
               "' outside nn/serialize.cc / tensor/quant.cc; typed views "
               "of raw payload bytes live only in those TUs (byte-pointer "
               "casts are exempt)");
  }
}

void Linter::LintMetricNameLiteral(const LintedFile& f) {
  // The registry implements these functions (string parameters), and tests
  // exercise snapshot plumbing with synthetic names.
  if (f.rel.find("common/metrics.") != std::string::npos) return;
  if (f.rel.rfind("tests/", 0) == 0) return;
  const auto& toks = f.lex.tokens;
  const int n = static_cast<int>(toks.size());
  auto valid_name = [](const std::string& name) {
    if (name.empty() || name[0] < 'a' || name[0] > 'z') return false;
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_' || c == '.';
      if (!ok) return false;
    }
    return true;
  };
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent ||
        (t.text != "GetCounter" && t.text != "GetGauge" &&
         t.text != "GetHistogram")) {
      continue;
    }
    if (i + 1 >= n || !IsPunct(toks[i + 1], "(")) continue;
    const int close = MatchForward(toks, i + 1, "(", ")");
    if (close < 0) continue;
    // The argument list must be exactly one string literal token.
    if (close == i + 3 && toks[i + 2].kind == TokKind::kString) {
      const std::string name = StringInner(toks[i + 2]);
      if (!valid_name(name)) {
        Report(f, t.line, "metric-name-literal",
               "metric name '" + name +
                   "' must be lowercase dotted ([a-z][a-z0-9_.]*) so the "
                   "dotted -> Prometheus-underscore mapping stays stable");
      }
    } else {
      Report(f, t.line, "metric-name-literal",
             t.text +
                 " argument is not a single string literal; a runtime-built "
                 "metric name allocates and re-hashes on every call — look "
                 "the instrument up once from a literal and cache the "
                 "stable pointer");
    }
  }
}

void Linter::RunGraphFamilies() {
  std::vector<FunctionInfo> functions;
  for (const LintedFile& f : files_) {
    ScopeAnalysis analysis = AnalyzeScopes(f.rel, f.lex);
    for (FunctionInfo& fn : analysis.functions) {
      functions.push_back(std::move(fn));
    }
  }
  std::map<std::string, const LintedFile*> by_rel;
  for (const LintedFile& f : files_) by_rel[f.rel] = &f;
  for (const GraphFinding& g : RunGraphRules(functions)) {
    auto it = by_rel.find(g.file);
    if (it != by_rel.end()) {
      Report(*it->second, g.line, g.rule, g.message);
    } else {
      violations_.push_back({g.file, g.line, g.rule, g.message});
    }
  }
}

}  // namespace rflint
