// rf_lint cross-file pass: stitches per-function facts (scopes.h) into a
// project call graph and runs the three graph rule families over it:
//
//   lock-order-cycle            — mutex acquisition-order graph across the
//                                 concurrency surface (src/serve/, common/
//                                 thread_pool, common/metrics, common/trace,
//                                 and the deadlock fixtures); any cycle is a
//                                 potential deadlock, reported with a witness
//                                 acquisition path for each direction.
//   blocking-reachable-under-lock — a call chain from inside a critical
//                                 section to a blocking syscall (transitive
//                                 upgrade of the old textual rule 12); the
//                                 full chain is printed. cv-waits and
//                                 functions marked `rf-lint-attr(nonblocking)`
//                                 are exempt.
//   alloc-in-parallel-for       — heap allocation or container growth
//                                 reachable from a ParallelFor body or a
//                                 plan-replay instruction handler (the PR-5
//                                 steady-state zero-alloc invariant, enforced
//                                 statically).
//
// Call resolution is by simple name with preference order: explicit
// `Foo::` qualifier match > same class > same file > all candidates (capped —
// a name with too many definitions is treated as unresolved rather than
// guessed at). Lambdas are only reachable as parallel-body roots; they are
// never resolved as callees, which keeps worker-thread bodies from being
// conflated with the code that spawns them.

#ifndef RESUFORMER_TOOLS_RF_LINT_CALLGRAPH_H_
#define RESUFORMER_TOOLS_RF_LINT_CALLGRAPH_H_

#include <string>
#include <vector>

#include "rf_lint/scopes.h"

namespace rflint {

struct GraphFinding {
  std::string rule;  // one of the three family names above
  std::string file;  // file the finding anchors to
  int line = 0;
  std::string message;
};

/// Runs all three graph rule families over the whole-project function list.
std::vector<GraphFinding> RunGraphRules(
    const std::vector<FunctionInfo>& functions);

}  // namespace rflint

#endif  // RESUFORMER_TOOLS_RF_LINT_CALLGRAPH_H_
