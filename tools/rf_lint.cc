// rf_lint: the ResuFormer project-invariant checker.
//
// A self-contained C++20 static checker (no external dependencies — plain
// std::filesystem + std::regex over the source text) that walks src/,
// tests/, bench/ and examples/ and enforces the project conventions that
// the compiler cannot, or that we want diagnosed with project-specific
// messages. It is registered as the `rf_lint` ctest test, so tier-1 runs it
// on every build; `--selftest tools/lint_fixture` checks the checker itself
// against seeded violations (the `rf_lint_selftest` test).
//
// Rules (ids are what the suppression syntax names):
//   nodiscard-status      Every header declaration returning Status or
//                         Result<T> must carry [[nodiscard]].
//   discarded-status      A statement consisting solely of a call to a
//                         Status/Result-returning function drops the error.
//                         Consume it (assign, RF_RETURN_NOT_OK, WarnIfError,
//                         .ok(), ...) instead.
//   atomic-order-comment  Any explicit weakened std::memory_order
//                         (relaxed/acquire/release/acq_rel/consume) needs a
//                         justification comment on the same line or within
//                         the three lines above.
//   naked-new             No naked `new` — use make_unique/make_shared or
//                         containers. The intentionally-leaked static
//                         singleton idiom (`static T* x = new T...`) is
//                         exempt.
//   naked-malloc          No malloc/calloc/realloc/free; the tensor arena
//                         and standard containers own all memory.
//   std-rand              No std::rand/srand — all randomness flows through
//                         common/rng.h so runs stay reproducible.
//   volatile-qualifier    No volatile — it is not a threading primitive;
//                         use std::atomic with a documented order.
//   include-guard         Header guards must be RESUFORMER_<PATH>_<FILE>_H_
//                         (path relative to the repo root, "src/" stripped).
//   trace-span-in-parallel-for
//                         No TRACE_SPAN inside a ParallelFor body: a span
//                         per iteration floods the per-thread ring buffers;
//                         put one span around the dispatch instead.
//   json-string-concat    No hand-rolled JSON via string concatenation — a
//                         literal ending in an escaped quote glued to a
//                         value with `+` (or `+` glued to a literal opening
//                         with an escaped quote) emits unescaped payloads.
//                         Quote through JsonEscape/AppendJsonQuoted in
//                         common/string_util (itself exempt) instead.
//   mmap-payload-cast     No reinterpret_cast to a non-byte pointer type
//                         outside nn/serialize.cc and tensor/quant.cc.
//                         Those two TUs own every typed view of raw payload
//                         bytes (mmap'd RFP3 pages, int8 GEMM scratch) and
//                         carry the alignment/lifetime proofs; a cast
//                         elsewhere bypasses them. Byte-level casts
//                         (char*/unsigned char*/std::byte*/uintptr_t) for
//                         stream IO remain allowed everywhere.
//   blocking-in-critical-section
//                         (scoped to serve/) No sleep or blocking I/O
//                         syscall between a std::lock_guard/unique_lock/
//                         scoped_lock declaration and the end of its
//                         enclosing block: a blocked admission-queue
//                         critical section stalls every submitter and
//                         worker behind the mutex. Condition-variable
//                         waits are exempt — they release the lock while
//                         parked.
//   metric-name-literal   Every MetricsRegistry::GetCounter/GetGauge/
//                         GetHistogram call site must pass one lowercase
//                         dotted string literal ([a-z][a-z0-9_.]*). A name
//                         built at runtime allocates and re-hashes on every
//                         call in hot paths and defeats the resolve-once
//                         stable-pointer idiom; a name outside the dotted
//                         convention breaks the dotted -> Prometheus-
//                         underscore mapping. The registry itself and
//                         tests/ are exempt.
//
// Suppressions:
//   // rf-lint-allow(rule[,rule...])        this line or the next line
//   // rf-lint-allow-file(rule[,rule...])   the whole file
// Each suppression should carry a short justification in the same comment.
//
// Self-test fixtures declare exact expectations with
//   // rf-lint-selftest-expect(rule=N)
// and `rf_lint --selftest <dir>` fails unless every rule's violation count
// matches and every rule fired at least once somewhere in the fixture.

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // path as reported (relative to the scan root)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

struct SourceFile {
  fs::path path;
  std::string rel;                 // path relative to the scan root
  std::vector<std::string> raw;    // original lines
  std::vector<std::string> code;   // comments and literal contents blanked
  std::vector<bool> has_comment;   // line carries (part of) a comment
};

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool IsHeader(const std::string& rel) {
  return HasSuffix(rel, ".h") || HasSuffix(rel, ".hpp");
}

// Blanks comments and the contents of string/char literals so the rule
// regexes only ever see code. Keeps line lengths identical to the raw text
// (every blanked character becomes a space) so column arithmetic holds.
void StripCommentsAndLiterals(SourceFile* file) {
  enum class State { kCode, kBlockComment, kString, kChar };
  State state = State::kCode;
  file->code.reserve(file->raw.size());
  file->has_comment.assign(file->raw.size(), false);
  for (size_t li = 0; li < file->raw.size(); ++li) {
    const std::string& in = file->raw[li];
    std::string out(in.size(), ' ');
    for (size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            file->has_comment[li] = true;
            i = in.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            file->has_comment[li] = true;
            state = State::kBlockComment;
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kChar;
          } else {
            out[i] = c;
          }
          break;
        case State::kBlockComment:
          file->has_comment[li] = true;
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kCode;
          }
          break;
      }
    }
    // Literals do not span lines in this codebase; recover rather than
    // cascade if one appears to (e.g. a stray quote in a macro).
    if (state == State::kString || state == State::kChar) state = State::kCode;
    file->code.push_back(std::move(out));
  }
}

// Parses "rule[,rule...]" lists out of rf-lint-allow(...) style markers.
std::set<std::string> ParseRuleList(const std::string& text, size_t open) {
  std::set<std::string> rules;
  const size_t close = text.find(')', open);
  if (close == std::string::npos) return rules;
  std::string inner = text.substr(open + 1, close - open - 1);
  std::stringstream ss(inner);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item.erase(std::remove_if(item.begin(), item.end(), ::isspace),
               item.end());
    if (!item.empty()) rules.insert(item);
  }
  return rules;
}

class Linter {
 public:
  void AddFile(const fs::path& path, const std::string& rel) {
    SourceFile file;
    file.path = path;
    file.rel = rel;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      file.raw.push_back(line);
    }
    StripCommentsAndLiterals(&file);
    files_.push_back(std::move(file));
  }

  void Run() {
    CollectStatusFunctions();
    for (const SourceFile& f : files_) {
      LintNodiscardDeclarations(f);
      LintDiscardedStatus(f);
      LintAtomicOrderComments(f);
      LintBannedConstructs(f);
      LintIncludeGuard(f);
      LintTraceSpanInParallelFor(f);
      LintJsonStringConcat(f);
      LintMmapPayloadCast(f);
      LintBlockingInCriticalSection(f);
      LintMetricNameLiteral(f);
    }
  }

  const std::vector<Violation>& violations() const { return violations_; }

  // Exact per-rule expectations declared in fixture files via
  // rf-lint-selftest-expect(rule=N).
  std::map<std::string, int> Expectations() const {
    std::map<std::string, int> expect;
    const std::regex re(R"(rf-lint-selftest-expect\(([a-z-]+)=(\d+)\))");
    for (const SourceFile& f : files_) {
      for (const std::string& line : f.raw) {
        auto begin = std::sregex_iterator(line.begin(), line.end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
          expect[(*it)[1].str()] += std::stoi((*it)[2].str());
        }
      }
    }
    return expect;
  }

  static const std::vector<std::string>& AllRules() {
    static const std::vector<std::string> kRules = {
        "nodiscard-status",    "discarded-status",
        "atomic-order-comment", "naked-new",
        "naked-malloc",        "std-rand",
        "volatile-qualifier",  "include-guard",
        "trace-span-in-parallel-for", "json-string-concat",
        "mmap-payload-cast",   "blocking-in-critical-section",
        "metric-name-literal"};
    return kRules;
  }

 private:
  bool Suppressed(const SourceFile& f, size_t line_index,
                  const std::string& rule) const {
    const auto check = [&](const std::string& text) {
      size_t pos = 0;
      while ((pos = text.find("rf-lint-allow", pos)) != std::string::npos) {
        size_t open = pos + std::strlen("rf-lint-allow");
        bool file_scope = false;
        if (text.compare(open, 5, "-file") == 0) {
          open += 5;
          file_scope = true;
        }
        if (open < text.size() && text[open] == '(') {
          const std::set<std::string> rules = ParseRuleList(text, open);
          if (rules.count(rule) != 0) return file_scope ? 2 : 1;
        }
        pos = open;
      }
      return 0;
    };
    // File-scope suppression anywhere in the file.
    for (const std::string& line : f.raw) {
      if (check(line) == 2) return true;
    }
    if (check(f.raw[line_index]) == 1) return true;
    if (line_index > 0 && check(f.raw[line_index - 1]) == 1) return true;
    return false;
  }

  void Report(const SourceFile& f, size_t line_index, const std::string& rule,
              std::string message) {
    if (Suppressed(f, line_index, rule)) return;
    violations_.push_back(
        {f.rel, static_cast<int>(line_index) + 1, rule, std::move(message)});
  }

  // Pass 1: every function name declared (anywhere) with a Status or
  // Result<...> return type. Used by the discarded-status rule.
  void CollectStatusFunctions() {
    static const std::regex re(
        R"(\b(Status|Result\s*<[^;{}=]*>)\s+([A-Za-z_]\w*)\s*\()");
    for (const SourceFile& f : files_) {
      for (const std::string& line : f.code) {
        auto begin = std::sregex_iterator(line.begin(), line.end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
          status_functions_.insert((*it)[2].str());
        }
      }
    }
  }

  void LintNodiscardDeclarations(const SourceFile& f) {
    if (!IsHeader(f.rel)) return;
    static const std::regex re(
        R"(\b(Status|Result\s*<[^;{}=]*>)\s+([A-Za-z_]\w*)\s*\()");
    for (size_t i = 0; i < f.code.size(); ++i) {
      std::smatch m;
      const std::string& line = f.code[i];
      if (!std::regex_search(line, m, re)) continue;
      // [[nodiscard]] must appear before the return type, on this line or
      // (for declarations that wrap) the previous one.
      const std::string before = line.substr(0, m.position(0));
      const bool annotated =
          before.find("[[nodiscard]]") != std::string::npos ||
          (i > 0 && f.code[i - 1].find("[[nodiscard]]") != std::string::npos);
      if (!annotated) {
        Report(f, i, "nodiscard-status",
               "declaration of '" + m[2].str() +
                   "' returns " + m[1].str() +
                   " but is not [[nodiscard]]; a dropped error must not "
                   "compile warning-clean");
      }
    }
  }

  // A statement that is nothing but a call to a Status/Result-returning
  // function discards the error. Heuristic: the call chain starts the line,
  // and the first non-space character after its matching ')' is ';'.
  void LintDiscardedStatus(const SourceFile& f) {
    static const std::regex re(
        R"(^\s*((?:[A-Za-z_]\w*(?:::|\.|->))*)([A-Za-z_]\w*)\s*\()");
    for (size_t i = 0; i < f.code.size(); ++i) {
      std::smatch m;
      const std::string& line = f.code[i];
      if (!std::regex_search(line, m, re)) continue;
      const std::string name = m[2].str();
      if (status_functions_.count(name) == 0) continue;
      // Find the matching close paren, possibly lines below.
      size_t li = i;
      size_t ci = static_cast<size_t>(m.position(0)) + m.length(0) - 1;
      int depth = 0;
      bool matched = false;
      char after = '\0';
      while (li < f.code.size() && !matched) {
        const std::string& l = f.code[li];
        for (; ci < l.size(); ++ci) {
          if (l[ci] == '(') ++depth;
          if (l[ci] == ')') {
            --depth;
            if (depth == 0) {
              // First non-space char after the close paren.
              size_t lj = li, cj = ci + 1;
              while (lj < f.code.size()) {
                const std::string& l2 = f.code[lj];
                while (cj < l2.size() && std::isspace(
                           static_cast<unsigned char>(l2[cj]))) {
                  ++cj;
                }
                if (cj < l2.size()) {
                  after = l2[cj];
                  break;
                }
                ++lj;
                cj = 0;
              }
              matched = true;
              break;
            }
          }
        }
        if (!matched) {
          ++li;
          ci = 0;
        }
      }
      if (matched && after == ';') {
        Report(f, i, "discarded-status",
               "return value of '" + name +
                   "' (Status/Result) is discarded; assign it, wrap it in "
                   "RF_RETURN_NOT_OK/WarnIfError, or test .ok()");
      }
    }
  }

  void LintAtomicOrderComments(const SourceFile& f) {
    static const std::regex re(
        R"(\bmemory_order_(relaxed|acquire|release|acq_rel|consume)\b)");
    for (size_t i = 0; i < f.code.size(); ++i) {
      if (!std::regex_search(f.code[i], re)) continue;
      bool commented = false;
      const size_t lo = i >= 3 ? i - 3 : 0;
      for (size_t j = lo; j <= i && !commented; ++j) {
        commented = f.has_comment[j];
      }
      if (!commented) {
        Report(f, i, "atomic-order-comment",
               "weakened std::memory_order without an adjacent "
               "justification comment (same line or the three lines above)");
      }
    }
  }

  void LintBannedConstructs(const SourceFile& f) {
    static const std::regex new_re(R"(\bnew\b)");
    static const std::regex leaked_singleton_re(
        R"(\bstatic\b[^;]*=\s*new\b)");
    static const std::regex malloc_re(
        R"(\b(malloc|calloc|realloc|free)\s*\()");
    static const std::regex rand_re(R"(\b(std::rand|rand|srand)\s*\()");
    for (size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      if (std::regex_search(line, new_re) &&
          !std::regex_search(line, leaked_singleton_re)) {
        Report(f, i, "naked-new",
               "naked 'new'; use std::make_unique/make_shared or a "
               "container (static leaked singletons are exempt)");
      }
      std::smatch m;
      if (std::regex_search(line, m, malloc_re)) {
        // Skip member/namespace-qualified lookalikes (x.free(), arena_free().
        const auto pos = static_cast<size_t>(m.position(1));
        const char prev = pos > 0 ? line[pos - 1] : '\0';
        if (prev != '.' && prev != '>' && prev != '_' && prev != ':' &&
            !std::isalnum(static_cast<unsigned char>(prev))) {
          Report(f, i, "naked-malloc",
                 "'" + m[1].str() +
                     "' bypasses the tensor arena and RAII ownership");
        }
      }
      if (std::regex_search(line, m, rand_re)) {
        const auto pos = static_cast<size_t>(m.position(1));
        const char prev = pos > 0 ? line[pos - 1] : '\0';
        if (prev != '.' && prev != '>' && prev != '_' &&
            !std::isalnum(static_cast<unsigned char>(prev))) {
          Report(f, i, "std-rand",
                 "'" + m[1].str() +
                     "' breaks reproducibility; draw from common/rng.h");
        }
      }
      if (std::regex_search(line, std::regex(R"(\bvolatile\b)"))) {
        Report(f, i, "volatile-qualifier",
               "'volatile' is not a threading primitive; use std::atomic "
               "with a documented memory order");
      }
    }
  }

  void LintIncludeGuard(const SourceFile& f) {
    if (!IsHeader(f.rel)) return;
    // Expected macro: RESUFORMER_<PATH>_<FILE>_H_ with the leading "src/"
    // stripped; every non-alphanumeric path character becomes '_'.
    std::string rel = f.rel;
    if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
    std::string expected = "RESUFORMER_";
    for (char c : rel) {
      expected += std::isalnum(static_cast<unsigned char>(c))
                      ? static_cast<char>(
                            std::toupper(static_cast<unsigned char>(c)))
                      : '_';
    }
    expected += "_";
    std::string ifndef_macro, define_macro;
    size_t ifndef_line = 0;
    for (size_t i = 0; i < f.code.size(); ++i) {
      std::smatch m;
      const std::string& line = f.code[i];
      if (ifndef_macro.empty() &&
          std::regex_search(line, m, std::regex(R"(^\s*#ifndef\s+(\w+))"))) {
        ifndef_macro = m[1].str();
        ifndef_line = i;
      } else if (!ifndef_macro.empty() &&
                 std::regex_search(line, m,
                                   std::regex(R"(^\s*#define\s+(\w+))"))) {
        define_macro = m[1].str();
        break;
      }
    }
    if (ifndef_macro.empty() || define_macro.empty()) {
      Report(f, 0, "include-guard",
             "missing include guard; expected #ifndef " + expected);
      return;
    }
    if (ifndef_macro != expected || define_macro != expected) {
      Report(f, ifndef_line, "include-guard",
             "include guard '" + ifndef_macro + "' should be '" + expected +
                 "' (RESUFORMER_ + path relative to the repo root, src/ "
                 "stripped)");
    }
  }

  // TRACE_SPAN inside the argument list of a ParallelFor call (i.e. inside
  // the dispatched lambda) records one span per chunk per dispatch and
  // floods the per-thread rings; trace the dispatch, not the body.
  void LintTraceSpanInParallelFor(const SourceFile& f) {
    for (size_t i = 0; i < f.code.size(); ++i) {
      size_t col = f.code[i].find("ParallelFor");
      while (col != std::string::npos) {
        size_t li = i;
        size_t ci = col + std::strlen("ParallelFor");
        // Next non-space char must open the call's argument list.
        while (li < f.code.size()) {
          const std::string& l = f.code[li];
          while (ci < l.size() &&
                 std::isspace(static_cast<unsigned char>(l[ci]))) {
            ++ci;
          }
          if (ci < l.size()) break;
          ++li;
          ci = 0;
        }
        if (li < f.code.size() && f.code[li][ci] == '(') {
          int depth = 0;
          bool done = false;
          for (size_t lj = li; lj < f.code.size() && !done; ++lj) {
            const std::string& l = f.code[lj];
            for (size_t cj = (lj == li ? ci : 0); cj < l.size(); ++cj) {
              if (l[cj] == '(') ++depth;
              if (l[cj] == ')' && --depth == 0) {
                done = true;
                break;
              }
              if (depth > 0 && l.compare(cj, 10, "TRACE_SPAN") == 0) {
                Report(f, lj, "trace-span-in-parallel-for",
                       "TRACE_SPAN inside a ParallelFor body records a span "
                       "per chunk per dispatch and floods the per-thread "
                       "ring buffers; trace around the dispatch instead");
              }
            }
          }
        }
        col = f.code[i].find("ParallelFor", col + 1);
      }
    }
  }

  // Hand-rolled JSON: a string literal whose last character is an escaped
  // quote concatenated onto a value with `+`, or `+` followed by a literal
  // opening with an escaped quote. Either shape means a runtime value is
  // being spliced between JSON quotes without escaping; route it through
  // JsonEscape/AppendJsonQuoted instead. This rule must look at the RAW
  // lines (the escaped quotes live inside literals, which `code` blanks),
  // so each match's `+` is cross-checked against the blanked line to make
  // sure it is real code and not part of a comment or literal.
  void LintJsonStringConcat(const SourceFile& f) {
    // common/string_util implements the escape helper itself.
    if (f.rel.find("common/string_util") != std::string::npos) return;
    static const std::regex close_then_plus_re(R"(\\""\s*\+)");
    static const std::regex plus_then_open_re(R"(\+\s*"\\")");
    for (size_t i = 0; i < f.raw.size(); ++i) {
      const std::string& line = f.raw[i];
      const auto plus_is_code = [&](size_t col) {
        return col < f.code[i].size() && f.code[i][col] == '+';
      };
      std::smatch m;
      bool fired = false;
      if (std::regex_search(line, m, close_then_plus_re) &&
          plus_is_code(static_cast<size_t>(m.position(0)) + m.length(0) - 1)) {
        fired = true;
      }
      if (!fired && std::regex_search(line, m, plus_then_open_re) &&
          plus_is_code(static_cast<size_t>(m.position(0)))) {
        fired = true;
      }
      if (fired) {
        Report(f, i, "json-string-concat",
               "raw concatenation into a JSON string literal leaves the "
               "payload unescaped; quote values with JsonEscape/"
               "AppendJsonQuoted from common/string_util");
      }
    }
  }

  // Typed views of raw bytes are confined to the two TUs that own the
  // mmap'd-payload and int8-scratch alignment proofs. Byte-pointer casts
  // (char family, std::byte, uintptr_t) are ordinary stream-IO idiom and
  // stay allowed everywhere.
  void LintMmapPayloadCast(const SourceFile& f) {
    if (HasSuffix(f.rel, "nn/serialize.cc") ||
        HasSuffix(f.rel, "tensor/quant.cc")) {
      return;
    }
    static const std::regex re(R"(\breinterpret_cast\s*<([^>]*)>)");
    static const std::regex byte_target_re(
        R"(\b(char|std\s*::\s*byte|uintptr_t|intptr_t|void)\b)");
    for (size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      auto begin = std::sregex_iterator(line.begin(), line.end(), re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string target = (*it)[1].str();
        if (std::regex_search(target, byte_target_re)) continue;
        Report(f, i, "mmap-payload-cast",
               "reinterpret_cast to '" + target +
                   "' outside nn/serialize.cc / tensor/quant.cc; typed "
                   "views of raw payload bytes live only in those TUs "
                   "(byte-pointer casts are exempt)");
      }
    }
  }

  // The serve admission loop must never block while holding a lock: a sleep
  // or blocking socket/file syscall inside the queue's critical section
  // stalls every submitter and worker serialized behind that mutex, and the
  // micro-batch flush deadline drifts by the blocked time. Scoped to serve/
  // where the admission-queue critical sections live. The region is
  // approximated as lock declaration -> close of its enclosing brace block;
  // condition-variable waits (wait/wait_for/wait_until) are exempt because
  // they release the lock while parked, as are non-blocking fd calls
  // (close/shutdown).
  void LintBlockingInCriticalSection(const SourceFile& f) {
    if (f.rel.find("serve/") == std::string::npos) return;
    static const std::regex lock_re(
        R"(\bstd\s*::\s*(lock_guard|unique_lock|scoped_lock)\s*<)");
    static const std::regex blocking_re(
        R"((\b(sleep_for|sleep_until|usleep|nanosleep|ReadFrame|WriteFrame)|::\s*(read|write|recv|send|accept|connect|poll|select))\s*\()");
    for (size_t i = 0; i < f.code.size(); ++i) {
      if (!std::regex_search(f.code[i], lock_re)) continue;
      int depth = 0;
      for (size_t lj = i; lj < f.code.size(); ++lj) {
        const std::string& l = f.code[lj];
        bool closed = false;
        for (char c : l) {
          if (c == '{') ++depth;
          if (c == '}' && --depth < 0) {
            closed = true;
            break;
          }
        }
        std::smatch m;
        if (std::regex_search(l, m, blocking_re)) {
          Report(f, lj, "blocking-in-critical-section",
                 "blocking call inside the critical section of the lock "
                 "taken on line " + std::to_string(i + 1) +
                     "; every submitter and worker stalls behind that "
                     "mutex — move the call outside the lock (cv waits "
                     "are exempt: they release the lock)");
        }
        if (closed) break;
      }
    }
  }

  // Metric names are compile-time identity. Every registry lookup must pass
  // one lowercase dotted literal: a runtime-built name allocates and
  // re-hashes per call in hot paths (the resolve-once stable-pointer idiom
  // exists to avoid exactly that), and a name outside [a-z0-9_.] breaks the
  // dotted -> Prometheus-underscore mapping. The argument may wrap onto the
  // next line (the literal is matched from the RAW text; `code` blanks
  // literal contents, so paren matching there is literal-safe).
  void LintMetricNameLiteral(const SourceFile& f) {
    // The registry implements these functions (string parameters), and
    // tests exercise snapshot plumbing with synthetic names.
    if (f.rel.find("common/metrics.") != std::string::npos) return;
    if (f.rel.rfind("tests/", 0) == 0) return;
    static const std::regex call_re(R"(\bGet(Counter|Gauge|Histogram)\s*\()");
    static const std::regex literal_re(R"re(^"([^"]*)"$)re");
    static const std::regex name_re(R"(^[a-z][a-z0-9_.]*$)");
    for (size_t i = 0; i < f.code.size(); ++i) {
      auto begin =
          std::sregex_iterator(f.code[i].begin(), f.code[i].end(), call_re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string kind = (*it)[1].str();
        // Collect the raw argument text up to the matching ')'.
        size_t li = i;
        size_t ci = static_cast<size_t>((*it).position(0)) + (*it).length(0);
        int depth = 1;
        std::string arg;
        bool matched = false;
        while (li < f.code.size() && !matched) {
          const std::string& l = f.code[li];
          const std::string& r = f.raw[li];
          for (; ci < l.size(); ++ci) {
            const char c = l[ci];
            if (c == '(') {
              ++depth;
            } else if (c == ')') {
              --depth;
              if (depth == 0) {
                matched = true;
                break;
              }
            }
            arg += ci < r.size() ? r[ci] : ' ';
          }
          if (!matched) {
            arg += ' ';
            ++li;
            ci = 0;
          }
        }
        const size_t first = arg.find_first_not_of(" \t");
        const size_t last = arg.find_last_not_of(" \t");
        arg = first == std::string::npos
                  ? std::string()
                  : arg.substr(first, last - first + 1);
        std::smatch lm;
        if (!std::regex_match(arg, lm, literal_re)) {
          Report(f, i, "metric-name-literal",
                 "Get" + kind +
                     " argument is not a single string literal; a "
                     "runtime-built metric name allocates and re-hashes on "
                     "every call — look the instrument up once from a "
                     "literal and cache the stable pointer");
          continue;
        }
        const std::string name = lm[1].str();
        if (!std::regex_match(name, name_re)) {
          Report(f, i, "metric-name-literal",
                 "metric name '" + name +
                     "' must be lowercase dotted ([a-z][a-z0-9_.]*) so the "
                     "dotted -> Prometheus-underscore mapping stays stable");
        }
      }
    }
  }

  std::vector<SourceFile> files_;
  std::set<std::string> status_functions_;
  std::vector<Violation> violations_;
};

void WalkDirectory(const fs::path& root, const fs::path& dir,
                   Linter* linter) {
  if (!fs::exists(dir)) return;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourceFile(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    linter->AddFile(p, fs::relative(p, root).generic_string());
  }
}

int Usage() {
  std::cerr
      << "usage: rf_lint <repo_root> [subdir...]   lint the project tree\n"
      << "       rf_lint --selftest <fixture_dir>  verify seeded violations\n"
      << "default subdirs: src tests bench examples\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();

  const bool selftest = args[0] == "--selftest";
  if (selftest) {
    args.erase(args.begin());
    if (args.size() != 1) return Usage();
  }
  const fs::path root = args[0];
  if (!fs::exists(root)) {
    std::cerr << "rf_lint: no such directory: " << root << "\n";
    return 2;
  }

  Linter linter;
  if (selftest) {
    WalkDirectory(root, root, &linter);
  } else {
    std::vector<std::string> subdirs(args.begin() + 1, args.end());
    if (subdirs.empty()) subdirs = {"src", "tests", "bench", "examples"};
    for (const std::string& sub : subdirs) {
      WalkDirectory(root, root / sub, &linter);
    }
  }
  linter.Run();

  if (selftest) {
    // Every rule must fire with exactly the count the fixture declares.
    const std::map<std::string, int> expected = linter.Expectations();
    std::map<std::string, int> actual;
    for (const Violation& v : linter.violations()) ++actual[v.rule];
    bool ok = true;
    for (const std::string& rule : Linter::AllRules()) {
      const int want = expected.count(rule) ? expected.at(rule) : 0;
      const int got = actual.count(rule) ? actual.at(rule) : 0;
      if (want == 0) {
        std::cerr << "selftest: fixture declares no expectation for rule '"
                  << rule << "' — every rule needs a seeded violation\n";
        ok = false;
      } else if (want != got) {
        std::cerr << "selftest: rule '" << rule << "' expected " << want
                  << " violation(s), detected " << got << "\n";
        ok = false;
      }
    }
    if (!ok) {
      for (const Violation& v : linter.violations()) {
        std::cerr << "  detected: " << v.file << ":" << v.line << ": ["
                  << v.rule << "]\n";
      }
      return 1;
    }
    std::cout << "rf_lint selftest: all " << Linter::AllRules().size()
              << " rules detected with expected counts\n";
    return 0;
  }

  for (const Violation& v : linter.violations()) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (!linter.violations().empty()) {
    std::cerr << linter.violations().size()
              << " violation(s). Suppress a deliberate exception with "
                 "// rf-lint-allow(rule) and a justification.\n";
    return 1;
  }
  std::cout << "rf_lint: clean\n";
  return 0;
}
