# Empty compiler generated dependencies file for distant_ner.
# This may be replaced when dependencies are built.
