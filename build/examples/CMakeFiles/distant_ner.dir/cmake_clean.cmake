file(REMOVE_RECURSE
  "CMakeFiles/distant_ner.dir/distant_ner.cpp.o"
  "CMakeFiles/distant_ner.dir/distant_ner.cpp.o.d"
  "distant_ner"
  "distant_ner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distant_ner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
