# Empty compiler generated dependencies file for block_classification.
# This may be replaced when dependencies are built.
