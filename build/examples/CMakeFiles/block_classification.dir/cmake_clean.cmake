file(REMOVE_RECURSE
  "CMakeFiles/block_classification.dir/block_classification.cpp.o"
  "CMakeFiles/block_classification.dir/block_classification.cpp.o.d"
  "block_classification"
  "block_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
