# Empty dependencies file for resume_pipeline.
# This may be replaced when dependencies are built.
