file(REMOVE_RECURSE
  "CMakeFiles/resume_pipeline.dir/resume_pipeline.cpp.o"
  "CMakeFiles/resume_pipeline.dir/resume_pipeline.cpp.o.d"
  "resume_pipeline"
  "resume_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resume_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
