
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/resuformer_cli.cpp" "examples/CMakeFiles/resuformer_cli.dir/resuformer_cli.cpp.o" "gcc" "examples/CMakeFiles/resuformer_cli.dir/resuformer_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_selftrain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_distant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_resumegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
