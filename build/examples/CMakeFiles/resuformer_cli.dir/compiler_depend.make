# Empty compiler generated dependencies file for resuformer_cli.
# This may be replaced when dependencies are built.
