file(REMOVE_RECURSE
  "CMakeFiles/resuformer_cli.dir/resuformer_cli.cpp.o"
  "CMakeFiles/resuformer_cli.dir/resuformer_cli.cpp.o.d"
  "resuformer_cli"
  "resuformer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resuformer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
