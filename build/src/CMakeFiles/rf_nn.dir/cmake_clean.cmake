file(REMOVE_RECURSE
  "CMakeFiles/rf_nn.dir/nn/attention.cc.o"
  "CMakeFiles/rf_nn.dir/nn/attention.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/embedding.cc.o"
  "CMakeFiles/rf_nn.dir/nn/embedding.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/layer_norm.cc.o"
  "CMakeFiles/rf_nn.dir/nn/layer_norm.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/linear.cc.o"
  "CMakeFiles/rf_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/lstm.cc.o"
  "CMakeFiles/rf_nn.dir/nn/lstm.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/rf_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/module.cc.o"
  "CMakeFiles/rf_nn.dir/nn/module.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/rf_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/serialize.cc.o"
  "CMakeFiles/rf_nn.dir/nn/serialize.cc.o.d"
  "CMakeFiles/rf_nn.dir/nn/transformer.cc.o"
  "CMakeFiles/rf_nn.dir/nn/transformer.cc.o.d"
  "librf_nn.a"
  "librf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
