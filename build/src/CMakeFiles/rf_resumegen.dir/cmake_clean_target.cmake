file(REMOVE_RECURSE
  "librf_resumegen.a"
)
