
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resumegen/corpus.cc" "src/CMakeFiles/rf_resumegen.dir/resumegen/corpus.cc.o" "gcc" "src/CMakeFiles/rf_resumegen.dir/resumegen/corpus.cc.o.d"
  "/root/repo/src/resumegen/entity_pools.cc" "src/CMakeFiles/rf_resumegen.dir/resumegen/entity_pools.cc.o" "gcc" "src/CMakeFiles/rf_resumegen.dir/resumegen/entity_pools.cc.o.d"
  "/root/repo/src/resumegen/renderer.cc" "src/CMakeFiles/rf_resumegen.dir/resumegen/renderer.cc.o" "gcc" "src/CMakeFiles/rf_resumegen.dir/resumegen/renderer.cc.o.d"
  "/root/repo/src/resumegen/resume_sampler.cc" "src/CMakeFiles/rf_resumegen.dir/resumegen/resume_sampler.cc.o" "gcc" "src/CMakeFiles/rf_resumegen.dir/resumegen/resume_sampler.cc.o.d"
  "/root/repo/src/resumegen/templates.cc" "src/CMakeFiles/rf_resumegen.dir/resumegen/templates.cc.o" "gcc" "src/CMakeFiles/rf_resumegen.dir/resumegen/templates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
