file(REMOVE_RECURSE
  "CMakeFiles/rf_resumegen.dir/resumegen/corpus.cc.o"
  "CMakeFiles/rf_resumegen.dir/resumegen/corpus.cc.o.d"
  "CMakeFiles/rf_resumegen.dir/resumegen/entity_pools.cc.o"
  "CMakeFiles/rf_resumegen.dir/resumegen/entity_pools.cc.o.d"
  "CMakeFiles/rf_resumegen.dir/resumegen/renderer.cc.o"
  "CMakeFiles/rf_resumegen.dir/resumegen/renderer.cc.o.d"
  "CMakeFiles/rf_resumegen.dir/resumegen/resume_sampler.cc.o"
  "CMakeFiles/rf_resumegen.dir/resumegen/resume_sampler.cc.o.d"
  "CMakeFiles/rf_resumegen.dir/resumegen/templates.cc.o"
  "CMakeFiles/rf_resumegen.dir/resumegen/templates.cc.o.d"
  "librf_resumegen.a"
  "librf_resumegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_resumegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
