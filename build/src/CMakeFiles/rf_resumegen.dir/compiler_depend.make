# Empty compiler generated dependencies file for rf_resumegen.
# This may be replaced when dependencies are built.
