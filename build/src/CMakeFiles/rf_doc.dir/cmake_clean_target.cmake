file(REMOVE_RECURSE
  "librf_doc.a"
)
