
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doc/block_tags.cc" "src/CMakeFiles/rf_doc.dir/doc/block_tags.cc.o" "gcc" "src/CMakeFiles/rf_doc.dir/doc/block_tags.cc.o.d"
  "/root/repo/src/doc/document.cc" "src/CMakeFiles/rf_doc.dir/doc/document.cc.o" "gcc" "src/CMakeFiles/rf_doc.dir/doc/document.cc.o.d"
  "/root/repo/src/doc/geometry.cc" "src/CMakeFiles/rf_doc.dir/doc/geometry.cc.o" "gcc" "src/CMakeFiles/rf_doc.dir/doc/geometry.cc.o.d"
  "/root/repo/src/doc/sentence_assembler.cc" "src/CMakeFiles/rf_doc.dir/doc/sentence_assembler.cc.o" "gcc" "src/CMakeFiles/rf_doc.dir/doc/sentence_assembler.cc.o.d"
  "/root/repo/src/doc/visual_features.cc" "src/CMakeFiles/rf_doc.dir/doc/visual_features.cc.o" "gcc" "src/CMakeFiles/rf_doc.dir/doc/visual_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
