file(REMOVE_RECURSE
  "CMakeFiles/rf_doc.dir/doc/block_tags.cc.o"
  "CMakeFiles/rf_doc.dir/doc/block_tags.cc.o.d"
  "CMakeFiles/rf_doc.dir/doc/document.cc.o"
  "CMakeFiles/rf_doc.dir/doc/document.cc.o.d"
  "CMakeFiles/rf_doc.dir/doc/geometry.cc.o"
  "CMakeFiles/rf_doc.dir/doc/geometry.cc.o.d"
  "CMakeFiles/rf_doc.dir/doc/sentence_assembler.cc.o"
  "CMakeFiles/rf_doc.dir/doc/sentence_assembler.cc.o.d"
  "CMakeFiles/rf_doc.dir/doc/visual_features.cc.o"
  "CMakeFiles/rf_doc.dir/doc/visual_features.cc.o.d"
  "librf_doc.a"
  "librf_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
