# Empty compiler generated dependencies file for rf_doc.
# This may be replaced when dependencies are built.
