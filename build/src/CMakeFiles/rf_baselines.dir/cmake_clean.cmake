file(REMOVE_RECURSE
  "CMakeFiles/rf_baselines.dir/baselines/autoner.cc.o"
  "CMakeFiles/rf_baselines.dir/baselines/autoner.cc.o.d"
  "CMakeFiles/rf_baselines.dir/baselines/bert_bilstm_crf.cc.o"
  "CMakeFiles/rf_baselines.dir/baselines/bert_bilstm_crf.cc.o.d"
  "CMakeFiles/rf_baselines.dir/baselines/bert_crf.cc.o"
  "CMakeFiles/rf_baselines.dir/baselines/bert_crf.cc.o.d"
  "CMakeFiles/rf_baselines.dir/baselines/common.cc.o"
  "CMakeFiles/rf_baselines.dir/baselines/common.cc.o.d"
  "CMakeFiles/rf_baselines.dir/baselines/dr_match.cc.o"
  "CMakeFiles/rf_baselines.dir/baselines/dr_match.cc.o.d"
  "CMakeFiles/rf_baselines.dir/baselines/hibert_crf.cc.o"
  "CMakeFiles/rf_baselines.dir/baselines/hibert_crf.cc.o.d"
  "CMakeFiles/rf_baselines.dir/baselines/layout_token_model.cc.o"
  "CMakeFiles/rf_baselines.dir/baselines/layout_token_model.cc.o.d"
  "CMakeFiles/rf_baselines.dir/baselines/roberta_gcn.cc.o"
  "CMakeFiles/rf_baselines.dir/baselines/roberta_gcn.cc.o.d"
  "librf_baselines.a"
  "librf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
