# Empty compiler generated dependencies file for rf_baselines.
# This may be replaced when dependencies are built.
