file(REMOVE_RECURSE
  "librf_baselines.a"
)
