
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/autoner.cc" "src/CMakeFiles/rf_baselines.dir/baselines/autoner.cc.o" "gcc" "src/CMakeFiles/rf_baselines.dir/baselines/autoner.cc.o.d"
  "/root/repo/src/baselines/bert_bilstm_crf.cc" "src/CMakeFiles/rf_baselines.dir/baselines/bert_bilstm_crf.cc.o" "gcc" "src/CMakeFiles/rf_baselines.dir/baselines/bert_bilstm_crf.cc.o.d"
  "/root/repo/src/baselines/bert_crf.cc" "src/CMakeFiles/rf_baselines.dir/baselines/bert_crf.cc.o" "gcc" "src/CMakeFiles/rf_baselines.dir/baselines/bert_crf.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/CMakeFiles/rf_baselines.dir/baselines/common.cc.o" "gcc" "src/CMakeFiles/rf_baselines.dir/baselines/common.cc.o.d"
  "/root/repo/src/baselines/dr_match.cc" "src/CMakeFiles/rf_baselines.dir/baselines/dr_match.cc.o" "gcc" "src/CMakeFiles/rf_baselines.dir/baselines/dr_match.cc.o.d"
  "/root/repo/src/baselines/hibert_crf.cc" "src/CMakeFiles/rf_baselines.dir/baselines/hibert_crf.cc.o" "gcc" "src/CMakeFiles/rf_baselines.dir/baselines/hibert_crf.cc.o.d"
  "/root/repo/src/baselines/layout_token_model.cc" "src/CMakeFiles/rf_baselines.dir/baselines/layout_token_model.cc.o" "gcc" "src/CMakeFiles/rf_baselines.dir/baselines/layout_token_model.cc.o.d"
  "/root/repo/src/baselines/roberta_gcn.cc" "src/CMakeFiles/rf_baselines.dir/baselines/roberta_gcn.cc.o" "gcc" "src/CMakeFiles/rf_baselines.dir/baselines/roberta_gcn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_selftrain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_distant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_resumegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
