file(REMOVE_RECURSE
  "librf_eval.a"
)
