file(REMOVE_RECURSE
  "CMakeFiles/rf_eval.dir/eval/block_metrics.cc.o"
  "CMakeFiles/rf_eval.dir/eval/block_metrics.cc.o.d"
  "CMakeFiles/rf_eval.dir/eval/entity_metrics.cc.o"
  "CMakeFiles/rf_eval.dir/eval/entity_metrics.cc.o.d"
  "CMakeFiles/rf_eval.dir/eval/report.cc.o"
  "CMakeFiles/rf_eval.dir/eval/report.cc.o.d"
  "CMakeFiles/rf_eval.dir/eval/timing.cc.o"
  "CMakeFiles/rf_eval.dir/eval/timing.cc.o.d"
  "librf_eval.a"
  "librf_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
