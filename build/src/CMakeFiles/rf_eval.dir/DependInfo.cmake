
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/block_metrics.cc" "src/CMakeFiles/rf_eval.dir/eval/block_metrics.cc.o" "gcc" "src/CMakeFiles/rf_eval.dir/eval/block_metrics.cc.o.d"
  "/root/repo/src/eval/entity_metrics.cc" "src/CMakeFiles/rf_eval.dir/eval/entity_metrics.cc.o" "gcc" "src/CMakeFiles/rf_eval.dir/eval/entity_metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/rf_eval.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/rf_eval.dir/eval/report.cc.o.d"
  "/root/repo/src/eval/timing.cc" "src/CMakeFiles/rf_eval.dir/eval/timing.cc.o" "gcc" "src/CMakeFiles/rf_eval.dir/eval/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_distant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_resumegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
