file(REMOVE_RECURSE
  "CMakeFiles/rf_common.dir/common/logging.cc.o"
  "CMakeFiles/rf_common.dir/common/logging.cc.o.d"
  "CMakeFiles/rf_common.dir/common/rng.cc.o"
  "CMakeFiles/rf_common.dir/common/rng.cc.o.d"
  "CMakeFiles/rf_common.dir/common/status.cc.o"
  "CMakeFiles/rf_common.dir/common/status.cc.o.d"
  "CMakeFiles/rf_common.dir/common/string_util.cc.o"
  "CMakeFiles/rf_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/rf_common.dir/common/table_printer.cc.o"
  "CMakeFiles/rf_common.dir/common/table_printer.cc.o.d"
  "librf_common.a"
  "librf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
