file(REMOVE_RECURSE
  "CMakeFiles/rf_text.dir/text/normalizer.cc.o"
  "CMakeFiles/rf_text.dir/text/normalizer.cc.o.d"
  "CMakeFiles/rf_text.dir/text/vocab.cc.o"
  "CMakeFiles/rf_text.dir/text/vocab.cc.o.d"
  "CMakeFiles/rf_text.dir/text/wordpiece.cc.o"
  "CMakeFiles/rf_text.dir/text/wordpiece.cc.o.d"
  "librf_text.a"
  "librf_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
