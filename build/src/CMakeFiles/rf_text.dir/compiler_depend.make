# Empty compiler generated dependencies file for rf_text.
# This may be replaced when dependencies are built.
