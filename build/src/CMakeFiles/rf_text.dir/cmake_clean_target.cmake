file(REMOVE_RECURSE
  "librf_text.a"
)
