
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/normalizer.cc" "src/CMakeFiles/rf_text.dir/text/normalizer.cc.o" "gcc" "src/CMakeFiles/rf_text.dir/text/normalizer.cc.o.d"
  "/root/repo/src/text/vocab.cc" "src/CMakeFiles/rf_text.dir/text/vocab.cc.o" "gcc" "src/CMakeFiles/rf_text.dir/text/vocab.cc.o.d"
  "/root/repo/src/text/wordpiece.cc" "src/CMakeFiles/rf_text.dir/text/wordpiece.cc.o" "gcc" "src/CMakeFiles/rf_text.dir/text/wordpiece.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
