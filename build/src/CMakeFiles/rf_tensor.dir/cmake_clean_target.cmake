file(REMOVE_RECURSE
  "librf_tensor.a"
)
