file(REMOVE_RECURSE
  "CMakeFiles/rf_tensor.dir/tensor/autograd.cc.o"
  "CMakeFiles/rf_tensor.dir/tensor/autograd.cc.o.d"
  "CMakeFiles/rf_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/rf_tensor.dir/tensor/ops.cc.o.d"
  "CMakeFiles/rf_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/rf_tensor.dir/tensor/tensor.cc.o.d"
  "librf_tensor.a"
  "librf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
