file(REMOVE_RECURSE
  "librf_selftrain.a"
)
