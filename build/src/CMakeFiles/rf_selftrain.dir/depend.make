# Empty dependencies file for rf_selftrain.
# This may be replaced when dependencies are built.
