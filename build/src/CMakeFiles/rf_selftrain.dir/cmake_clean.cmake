file(REMOVE_RECURSE
  "CMakeFiles/rf_selftrain.dir/selftrain/ner_model.cc.o"
  "CMakeFiles/rf_selftrain.dir/selftrain/ner_model.cc.o.d"
  "CMakeFiles/rf_selftrain.dir/selftrain/self_distill.cc.o"
  "CMakeFiles/rf_selftrain.dir/selftrain/self_distill.cc.o.d"
  "librf_selftrain.a"
  "librf_selftrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_selftrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
