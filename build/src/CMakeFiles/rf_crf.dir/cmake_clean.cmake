file(REMOVE_RECURSE
  "CMakeFiles/rf_crf.dir/crf/fuzzy_crf.cc.o"
  "CMakeFiles/rf_crf.dir/crf/fuzzy_crf.cc.o.d"
  "CMakeFiles/rf_crf.dir/crf/linear_crf.cc.o"
  "CMakeFiles/rf_crf.dir/crf/linear_crf.cc.o.d"
  "librf_crf.a"
  "librf_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
