
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/fuzzy_crf.cc" "src/CMakeFiles/rf_crf.dir/crf/fuzzy_crf.cc.o" "gcc" "src/CMakeFiles/rf_crf.dir/crf/fuzzy_crf.cc.o.d"
  "/root/repo/src/crf/linear_crf.cc" "src/CMakeFiles/rf_crf.dir/crf/linear_crf.cc.o" "gcc" "src/CMakeFiles/rf_crf.dir/crf/linear_crf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
