# Empty compiler generated dependencies file for rf_crf.
# This may be replaced when dependencies are built.
