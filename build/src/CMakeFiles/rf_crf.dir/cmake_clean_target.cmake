file(REMOVE_RECURSE
  "librf_crf.a"
)
