file(REMOVE_RECURSE
  "CMakeFiles/rf_core.dir/core/block_classifier.cc.o"
  "CMakeFiles/rf_core.dir/core/block_classifier.cc.o.d"
  "CMakeFiles/rf_core.dir/core/config.cc.o"
  "CMakeFiles/rf_core.dir/core/config.cc.o.d"
  "CMakeFiles/rf_core.dir/core/distiller.cc.o"
  "CMakeFiles/rf_core.dir/core/distiller.cc.o.d"
  "CMakeFiles/rf_core.dir/core/hierarchical_encoder.cc.o"
  "CMakeFiles/rf_core.dir/core/hierarchical_encoder.cc.o.d"
  "CMakeFiles/rf_core.dir/core/pretrainer.cc.o"
  "CMakeFiles/rf_core.dir/core/pretrainer.cc.o.d"
  "librf_core.a"
  "librf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
