src/CMakeFiles/rf_core.dir/core/config.cc.o: \
 /root/repo/src/core/config.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/config.h
