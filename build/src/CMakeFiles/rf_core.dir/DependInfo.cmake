
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_classifier.cc" "src/CMakeFiles/rf_core.dir/core/block_classifier.cc.o" "gcc" "src/CMakeFiles/rf_core.dir/core/block_classifier.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/rf_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/rf_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/distiller.cc" "src/CMakeFiles/rf_core.dir/core/distiller.cc.o" "gcc" "src/CMakeFiles/rf_core.dir/core/distiller.cc.o.d"
  "/root/repo/src/core/hierarchical_encoder.cc" "src/CMakeFiles/rf_core.dir/core/hierarchical_encoder.cc.o" "gcc" "src/CMakeFiles/rf_core.dir/core/hierarchical_encoder.cc.o.d"
  "/root/repo/src/core/pretrainer.cc" "src/CMakeFiles/rf_core.dir/core/pretrainer.cc.o" "gcc" "src/CMakeFiles/rf_core.dir/core/pretrainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_resumegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
