file(REMOVE_RECURSE
  "librf_distant.a"
)
