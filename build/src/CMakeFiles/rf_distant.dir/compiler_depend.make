# Empty compiler generated dependencies file for rf_distant.
# This may be replaced when dependencies are built.
