file(REMOVE_RECURSE
  "CMakeFiles/rf_distant.dir/distant/augmenter.cc.o"
  "CMakeFiles/rf_distant.dir/distant/augmenter.cc.o.d"
  "CMakeFiles/rf_distant.dir/distant/auto_annotator.cc.o"
  "CMakeFiles/rf_distant.dir/distant/auto_annotator.cc.o.d"
  "CMakeFiles/rf_distant.dir/distant/dictionary.cc.o"
  "CMakeFiles/rf_distant.dir/distant/dictionary.cc.o.d"
  "CMakeFiles/rf_distant.dir/distant/ner_dataset.cc.o"
  "CMakeFiles/rf_distant.dir/distant/ner_dataset.cc.o.d"
  "CMakeFiles/rf_distant.dir/distant/regex_matcher.cc.o"
  "CMakeFiles/rf_distant.dir/distant/regex_matcher.cc.o.d"
  "librf_distant.a"
  "librf_distant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_distant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
