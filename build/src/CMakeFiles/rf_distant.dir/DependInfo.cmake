
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distant/augmenter.cc" "src/CMakeFiles/rf_distant.dir/distant/augmenter.cc.o" "gcc" "src/CMakeFiles/rf_distant.dir/distant/augmenter.cc.o.d"
  "/root/repo/src/distant/auto_annotator.cc" "src/CMakeFiles/rf_distant.dir/distant/auto_annotator.cc.o" "gcc" "src/CMakeFiles/rf_distant.dir/distant/auto_annotator.cc.o.d"
  "/root/repo/src/distant/dictionary.cc" "src/CMakeFiles/rf_distant.dir/distant/dictionary.cc.o" "gcc" "src/CMakeFiles/rf_distant.dir/distant/dictionary.cc.o.d"
  "/root/repo/src/distant/ner_dataset.cc" "src/CMakeFiles/rf_distant.dir/distant/ner_dataset.cc.o" "gcc" "src/CMakeFiles/rf_distant.dir/distant/ner_dataset.cc.o.d"
  "/root/repo/src/distant/regex_matcher.cc" "src/CMakeFiles/rf_distant.dir/distant/regex_matcher.cc.o" "gcc" "src/CMakeFiles/rf_distant.dir/distant/regex_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rf_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_resumegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
