# Empty compiler generated dependencies file for rf_pipeline.
# This may be replaced when dependencies are built.
