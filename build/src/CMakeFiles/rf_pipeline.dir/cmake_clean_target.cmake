file(REMOVE_RECURSE
  "librf_pipeline.a"
)
