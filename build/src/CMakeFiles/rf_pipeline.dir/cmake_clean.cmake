file(REMOVE_RECURSE
  "CMakeFiles/rf_pipeline.dir/pipeline/pipeline.cc.o"
  "CMakeFiles/rf_pipeline.dir/pipeline/pipeline.cc.o.d"
  "librf_pipeline.a"
  "librf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
