# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/doc_test[1]_include.cmake")
include("/root/repo/build/tests/resumegen_test[1]_include.cmake")
include("/root/repo/build/tests/crf_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/distant_test[1]_include.cmake")
include("/root/repo/build/tests/selftrain_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
