# Empty compiler generated dependencies file for distant_test.
# This may be replaced when dependencies are built.
