file(REMOVE_RECURSE
  "CMakeFiles/distant_test.dir/distant_test.cc.o"
  "CMakeFiles/distant_test.dir/distant_test.cc.o.d"
  "distant_test"
  "distant_test.pdb"
  "distant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
