# Empty dependencies file for selftrain_test.
# This may be replaced when dependencies are built.
