file(REMOVE_RECURSE
  "CMakeFiles/selftrain_test.dir/selftrain_test.cc.o"
  "CMakeFiles/selftrain_test.dir/selftrain_test.cc.o.d"
  "selftrain_test"
  "selftrain_test.pdb"
  "selftrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selftrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
