file(REMOVE_RECURSE
  "CMakeFiles/resumegen_test.dir/resumegen_test.cc.o"
  "CMakeFiles/resumegen_test.dir/resumegen_test.cc.o.d"
  "resumegen_test"
  "resumegen_test.pdb"
  "resumegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resumegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
