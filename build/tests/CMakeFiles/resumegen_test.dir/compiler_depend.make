# Empty compiler generated dependencies file for resumegen_test.
# This may be replaced when dependencies are built.
