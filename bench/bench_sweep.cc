// Extension bench (not a paper table): sensitivity sweeps over the design
// choices DESIGN.md calls out —
//   (a) pre-training corpus size (the paper motivates 80k unlabeled docs;
//       we sweep the unlabeled-document count at CPU scale), and
//   (b) the dynamic sentence-mask fraction k/m of the SCL objective
//       (paper fixes it at 0.2).
// Reported metric: downstream block-classification test F1 after identical
// fine-tuning budgets.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/block_classifier.h"
#include "core/pretrainer.h"
#include "eval/block_metrics.h"
#include "resumegen/corpus.h"

namespace resuformer {
namespace {

double RunOnce(const resumegen::Corpus& corpus,
               const text::WordPieceTokenizer& tokenizer, int pretrain_docs,
               float mask_fraction) {
  core::ResuFormerConfig cfg;
  cfg.vocab_size = tokenizer.vocab().size();
  cfg.sentence_mask_frac = mask_fraction;
  Rng rng(801);
  core::BlockClassifier model(cfg, &rng);
  if (pretrain_docs > 0) {
    std::vector<core::EncodedDocument> pre;
    for (int i = 0; i < pretrain_docs &&
                    i < static_cast<int>(corpus.pretrain.size());
         ++i) {
      pre.push_back(core::EncodeForModel(corpus.pretrain[i].document,
                                         tokenizer, cfg));
    }
    core::Pretrainer pretrainer(model.encoder(), &rng);
    pretrainer.Train(pre, bench::Scaled(3, 1), 4, cfg.pretrain_lr);
  }
  std::vector<core::LabeledDocument> train, val;
  for (const auto& r : corpus.train) {
    train.push_back(core::MakeLabeledDocument(r.document, tokenizer, cfg));
  }
  for (const auto& r : corpus.val) {
    val.push_back(core::MakeLabeledDocument(r.document, tokenizer, cfg));
  }
  core::FinetuneOptions options;
  options.epochs = bench::Scaled(12, 4);
  options.patience = 4;
  core::FinetuneBlockClassifier(&model, train, val, options, &rng);

  eval::BlockScorer scorer;
  for (const auto& r : corpus.test) {
    std::vector<int> pred =
        model.Predict(core::EncodeForModel(r.document, tokenizer, cfg));
    pred.resize(r.document.NumSentences(), doc::kOutsideLabel);
    scorer.Add(r.document, pred);
  }
  return scorer.Overall().f1;
}

void Run() {
  bench::PrintHeader("Sweep: pre-training corpus size & SCL mask fraction");
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = bench::Scaled(240, 40);
  ccfg.train_docs = bench::Scaled(12, 6);
  ccfg.val_docs = bench::Scaled(8, 4);
  ccfg.test_docs = bench::Scaled(30, 10);
  ccfg.seed = 63;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);

  TablePrinter size_table({"pretrain docs", "test F1 (%)"});
  for (int docs : {0, bench::Scaled(80, 15), bench::Scaled(240, 40)}) {
    const double f1 = RunOnce(corpus, tokenizer, docs, 0.2f);
    size_table.AddRow({StringPrintf("%d", docs),
                       StringPrintf("%.2f", f1 * 100)});
    std::printf("  pretrain_docs=%d -> F1 %.2f\n", docs, f1 * 100);
    std::fflush(stdout);
  }
  std::printf("\n%s", size_table.ToString().c_str());

  TablePrinter mask_table({"SCL mask fraction k/m", "test F1 (%)"});
  for (float frac : {0.1f, 0.2f, 0.4f}) {
    const double f1 =
        RunOnce(corpus, tokenizer, bench::Scaled(160, 30), frac);
    mask_table.AddRow({StringPrintf("%.1f", frac),
                       StringPrintf("%.2f", f1 * 100)});
    std::printf("  mask_frac=%.1f -> F1 %.2f\n", frac, f1 * 100);
    std::fflush(stdout);
  }
  std::printf("\n%s", mask_table.ToString().c_str());
  std::printf(
      "\nReading: more unlabeled documents should not hurt and generally\n"
      "helps when labels are scarce; the paper's k/m = 0.2 sits between\n"
      "too-easy (0.1) and too-destructive (0.4) masking.\n");
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
