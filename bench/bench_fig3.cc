// Reproduces Figure 3: case study on a multi-page resume.
//
// The paper compares LayoutXLM and ResuFormer on a real three-page resume:
// (1) LayoutXLM folds scholarship lines inside the education section into
// EduExp while ResuFormer labels them Awards; (2) LayoutXLM fragments the
// work experiences (it sees the document in 512-token windows, so a block
// crossing a page/window boundary splits), finding four work experiences
// where the ground truth has three; (3) LayoutXLM takes 4.28s vs 0.29s for
// ResuFormer (~15x).
//
// We train both systems at bench scale, select a generated multi-page
// resume with >= 3 work entries and inline scholarship awards, and print
// gold / LayoutXLM-like / ResuFormer labels side by side with per-model
// latency and work-experience block counts.

#include <cstdio>
#include <memory>

#include "baselines/layout_token_model.h"
#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/block_classifier.h"
#include "core/distiller.h"
#include "core/pretrainer.h"
#include "eval/report.h"
#include "eval/timing.h"
#include "resumegen/corpus.h"

namespace resuformer {
namespace {

int CountBlocks(const std::vector<int>& labels, doc::BlockTag tag) {
  int count = 0;
  for (const doc::Block& b : doc::Document::BlocksFromLabels(labels)) {
    if (b.tag == tag) ++count;
  }
  return count;
}

void Run() {
  bench::PrintHeader("Figure 3: multi-page case study (LayoutXLM vs Ours)");
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = bench::Scaled(200, 24);
  ccfg.train_docs = bench::Scaled(10, 4);
  ccfg.val_docs = bench::Scaled(6, 3);
  ccfg.test_docs = 60;  // pool to pick the case-study document from
  ccfg.seed = 55;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);

  // Pick a case-study document: multi-page, >= 3 work entries, and awards
  // embedded inside the education section.
  const resumegen::GeneratedResume* case_doc = nullptr;
  for (const auto& r : corpus.test) {
    const bool multi_page = r.document.num_pages >= 2;
    const bool many_work = r.record.work.size() >= 3;
    bool inline_awards = false;
    for (const auto& e : r.record.education) {
      inline_awards = inline_awards || !e.inline_awards.empty();
    }
    if (multi_page && many_work && inline_awards) {
      case_doc = &r;
      break;
    }
  }
  if (case_doc == nullptr) case_doc = &corpus.test[0];
  std::printf("case document: %d pages, %d sentences, %zu work entries\n\n",
              case_doc->document.num_pages, case_doc->document.NumSentences(),
              case_doc->record.work.size());

  std::vector<const doc::Document*> unlabeled, train_docs, val_docs;
  for (const auto& r : corpus.pretrain) unlabeled.push_back(&r.document);
  for (const auto& r : corpus.train) train_docs.push_back(&r.document);
  for (const auto& r : corpus.val) val_docs.push_back(&r.document);

  // LayoutXLM-like.
  baselines::TokenModelConfig tcfg;
  tcfg.vocab_size = tokenizer.vocab().size();
  tcfg.epochs = bench::Scaled(10, 3);
  Rng rng1(701);
  baselines::LayoutTokenModel layoutxlm(tcfg, &tokenizer, &rng1,
                                        bench::Scaled(3, 1));
  layoutxlm.PretrainMlm(unlabeled, &rng1);
  layoutxlm.Fit(train_docs, val_docs, &rng1);
  std::printf("LayoutXLM-like trained\n");

  // Ours (pretrain + KD + finetune).
  core::ResuFormerConfig cfg;
  cfg.vocab_size = tokenizer.vocab().size();
  Rng rng2(702);
  core::BlockClassifier ours(cfg, &rng2);
  std::vector<core::EncodedDocument> pretrain_docs;
  for (const doc::Document* d : unlabeled) {
    pretrain_docs.push_back(core::EncodeForModel(*d, tokenizer, cfg));
  }
  core::Pretrainer pretrainer(ours.encoder(), &rng2);
  pretrainer.Train(pretrain_docs, bench::Scaled(3, 1), 4, cfg.pretrain_lr);
  std::vector<core::LabeledDocument> gold_train, gold_val;
  for (const doc::Document* d : train_docs) {
    gold_train.push_back(core::MakeLabeledDocument(*d, tokenizer, cfg));
  }
  for (const doc::Document* d : val_docs) {
    gold_val.push_back(core::MakeLabeledDocument(*d, tokenizer, cfg));
  }
  core::KnowledgeDistiller distiller(&tokenizer, cfg);
  const auto pseudo = distiller.DistillPseudoLabels(layoutxlm, unlabeled);
  core::FinetuneOptions options;
  options.epochs = bench::Scaled(14, 4);
  options.patience = 8;
  distiller.TrainWithDistillation(&ours, pseudo, gold_train, gold_val,
                                  options, &rng2);
  std::printf("ResuFormer trained\n\n");

  // Predictions + timing (averaged over repeats for stable latency).
  const doc::Document& document = case_doc->document;
  const int repeats = 5;
  eval::Stopwatch sw1;
  std::vector<int> xlm_pred;
  for (int i = 0; i < repeats; ++i) {
    xlm_pred = layoutxlm.LabelSentences(document);
  }
  const double xlm_time = sw1.Seconds() / repeats;

  const core::EncodedDocument encoded =
      core::EncodeForModel(document, tokenizer, cfg);
  eval::Stopwatch sw2;
  std::vector<int> ours_pred;
  for (int i = 0; i < repeats; ++i) {
    ours_pred = ours.Predict(encoded);
  }
  const double ours_time = sw2.Seconds() / repeats;
  xlm_pred.resize(document.NumSentences(), doc::kOutsideLabel);
  ours_pred.resize(document.NumSentences(), doc::kOutsideLabel);
  const std::vector<int>& gold = document.sentence_labels;

  TablePrinter table({"Page", "Sentence (truncated)", "Gold", "LayoutXLM",
                      "Ours"});
  for (int s = 0; s < document.NumSentences(); ++s) {
    std::string text = document.sentences[s].Text();
    if (text.size() > 38) text = text.substr(0, 35) + "...";
    table.AddRow({StringPrintf("%d", document.sentences[s].page + 1), text,
                  doc::IobLabelName(gold[s]), doc::IobLabelName(xlm_pred[s]),
                  doc::IobLabelName(ours_pred[s])});
  }
  std::printf("%s", table.ToString().c_str());

  auto agreement = [&](const std::vector<int>& pred) {
    int correct = 0;
    for (int s = 0; s < document.NumSentences(); ++s) {
      correct += pred[s] == gold[s];
    }
    return 100.0 * correct / document.NumSentences();
  };
  std::printf(
      "\nWorkExp blocks found: gold=%d, LayoutXLM-like=%d, Ours=%d\n",
      CountBlocks(gold, doc::BlockTag::kWorkExp),
      CountBlocks(xlm_pred, doc::BlockTag::kWorkExp),
      CountBlocks(ours_pred, doc::BlockTag::kWorkExp));
  std::printf("Awards blocks found:  gold=%d, LayoutXLM-like=%d, Ours=%d\n",
              CountBlocks(gold, doc::BlockTag::kAwards),
              CountBlocks(xlm_pred, doc::BlockTag::kAwards),
              CountBlocks(ours_pred, doc::BlockTag::kAwards));
  std::printf("Sentence agreement with gold: LayoutXLM %.1f%%, Ours %.1f%%\n",
              agreement(xlm_pred), agreement(ours_pred));
  std::printf(
      "Latency on this resume: LayoutXLM-like %s, Ours %s (%.1fx; paper "
      "reports 4.28s vs 0.29s = 14.8x)\n",
      eval::LatencyCell(xlm_time).c_str(),
      eval::LatencyCell(ours_time).c_str(),
      ours_time > 0 ? xlm_time / ours_time : 0.0);
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
