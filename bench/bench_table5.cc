// Reproduces Table V: ablation of the distantly supervised NER model.
//
// Variants: full method (soft labels + high-confidence selection +
// self-distillation), w/o HCS (soft labels only), w/o SL (hard pseudo
// labels), w/o SD (early-stopped teacher only).
//
// Expected shape (paper): w/o SD drops the most, then w/o SL, then w/o HCS.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/table_printer.h"
#include "distant/dictionary.h"
#include "distant/ner_dataset.h"
#include "eval/entity_metrics.h"
#include "eval/report.h"
#include "resumegen/corpus.h"
#include "selftrain/self_distill.h"

namespace resuformer {
namespace {

using doc::EntityTag;

struct TagRow {
  const char* block;
  doc::BlockTag block_tag;
  EntityTag tag;
  const char* paper[4];  // Ours, w/o HCS, w/o SL, w/o SD
};

const TagRow kRows[] = {
    {"PInfo", doc::BlockTag::kPInfo, EntityTag::kName,
     {"97.52", "95.87", "94.56", "85.10"}},
    {"PInfo", doc::BlockTag::kPInfo, EntityTag::kGender,
     {"98.66", "97.54", "96.23", "93.00"}},
    {"PInfo", doc::BlockTag::kPInfo, EntityTag::kPhoneNum,
     {"98.51", "97.25", "96.11", "91.83"}},
    {"PInfo", doc::BlockTag::kPInfo, EntityTag::kEmail,
     {"98.31", "97.12", "96.08", "90.95"}},
    {"PInfo", doc::BlockTag::kPInfo, EntityTag::kAge,
     {"92.98", "91.77", "90.42", "84.85"}},
    {"EduExp", doc::BlockTag::kEduExp, EntityTag::kCollege,
     {"85.89", "83.68", "81.28", "71.57"}},
    {"EduExp", doc::BlockTag::kEduExp, EntityTag::kMajor,
     {"83.75", "81.83", "80.14", "70.97"}},
    {"EduExp", doc::BlockTag::kEduExp, EntityTag::kDegree,
     {"93.55", "92.74", "91.47", "88.08"}},
    {"EduExp", doc::BlockTag::kEduExp, EntityTag::kDate,
     {"92.82", "91.53", "90.46", "86.73"}},
    {"WorkExp", doc::BlockTag::kWorkExp, EntityTag::kCompany,
     {"82.74", "80.53", "78.36", "69.35"}},
    {"WorkExp", doc::BlockTag::kWorkExp, EntityTag::kPosition,
     {"83.45", "81.57", "79.62", "65.80"}},
    {"WorkExp", doc::BlockTag::kWorkExp, EntityTag::kDate,
     {"92.76", "91.32", "90.25", "86.78"}},
    {"ProjExp", doc::BlockTag::kProjExp, EntityTag::kProjName,
     {"80.19", "78.67", "76.62", "63.24"}},
    {"ProjExp", doc::BlockTag::kProjExp, EntityTag::kDate,
     {"91.78", "90.35", "89.87", "86.41"}},
};

void Run() {
  bench::PrintHeader("Table V: intra-block extraction ablation, F1");
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = bench::Scaled(30, 8);
  ccfg.train_docs = 2;
  ccfg.val_docs = 1;
  ccfg.test_docs = 1;
  ccfg.seed = 41;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);
  const distant::EntityDictionary dictionary =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::NerDatasetConfig ncfg;
  ncfg.train_sequences = bench::Scaled(800, 150);
  ncfg.val_sequences = bench::Scaled(120, 30);
  ncfg.test_sequences = bench::Scaled(250, 50);
  ncfg.seed = 31;
  const distant::NerDataset data = distant::BuildNerDataset(ncfg, dictionary);

  struct Variant {
    const char* name;
    bool soft_labels;
    bool confidence_selection;
    bool self_distillation;
  };
  const Variant variants[] = {
      {"Our Method", true, true, true},
      {"w/o HCS", true, false, true},
      {"w/o SL", false, false, true},  // hard labels imply no HCS re-weighting
      {"w/o SD", true, true, false},
  };

  selftrain::NerModelConfig nmc;
  nmc.vocab_size = tokenizer.vocab().size();
  nmc.encoder_lr = 5e-4f;
  nmc.head_lr = 1e-3f;

  std::vector<std::map<doc::BlockTag, eval::EntityScorer>> scores;
  for (const Variant& v : variants) {
    Rng rng(601);  // identical seed: only the ablation switch differs
    selftrain::SelfTrainOptions options;
    options.teacher_epochs = bench::Scaled(10, 4);
    options.teacher_patience = 4;
    options.iterations = bench::Scaled(6, 3);
    options.student_epochs_per_iteration = 1;
    options.gamma = options.confidence_selection ? 0.7f : options.gamma;
    options.soft_labels = v.soft_labels;
    options.confidence_selection = v.confidence_selection;
    options.self_distillation = v.self_distillation;
    selftrain::SelfDistillTrainer trainer(nmc, options, &tokenizer, &rng);
    selftrain::SelfTrainResult result = trainer.Train(data.train, data.val);

    std::map<doc::BlockTag, eval::EntityScorer> per_block;
    eval::EntityScorer overall;
    for (const auto& seq : data.test) {
      const std::vector<int> pred = result.model->Predict(
          selftrain::EncodeWordsForNer(seq.words, tokenizer, nmc));
      per_block[seq.block].Add(pred, seq.labels);
      overall.Add(pred, seq.labels);
    }
    std::printf("  %-10s overall F1 %.2f\n", v.name,
                overall.Overall().f1 * 100);
    std::fflush(stdout);
    scores.push_back(std::move(per_block));
  }

  std::vector<std::string> header = {"Block", "Tag"};
  for (const Variant& v : variants) header.push_back(v.name);
  header.push_back("paper (same order)");
  TablePrinter table(header);
  std::string previous_block;
  for (const TagRow& row : kRows) {
    if (!previous_block.empty() && previous_block != row.block) {
      table.AddSeparator();
    }
    previous_block = row.block;
    std::vector<std::string> cells = {row.block, doc::EntityTagName(row.tag)};
    for (auto& s : scores) {
      cells.push_back(eval::F1Cell(s[row.block_tag].ForTag(row.tag)));
    }
    std::string paper;
    for (int i = 0; i < 4; ++i) {
      if (i > 0) paper += " / ";
      paper += row.paper[i];
    }
    cells.push_back(paper);
    table.AddRow(cells);
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nShape check: the full method leads; removing self-distillation\n"
      "(w/o SD) costs the most, soft labels and confidence selection add\n"
      "smaller increments (paper ordering: SD > SL > HCS).\n");
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
