// Reproduces Table III: ablation of our block classification model.
//
// Variants: full method, w/o KD (no knowledge distillation), w/o WMP (no
// masked layout-language modeling), w/o SCL (no contrastive sentence
// masking), w/o DNSP (no dynamic next-sentence prediction).
//
// Expected shape (paper): every ablation hurts; removing SCL hurts most,
// then DNSP, then WMP, then KD. At CPU scale the document-level objectives
// have small effect sizes (see DESIGN.md), so we check the direction (full
// model best overall) and report per-variant deltas honestly.

#include <cstdio>
#include <memory>

#include "baselines/layout_token_model.h"
#include "bench_common.h"
#include "common/table_printer.h"
#include "core/block_classifier.h"
#include "core/distiller.h"
#include "core/pretrainer.h"
#include "eval/block_metrics.h"
#include "eval/report.h"
#include "resumegen/corpus.h"

namespace resuformer {
namespace {

const char* kPaperRef[doc::kNumBlockTags][5] = {
    // Ours, w/o KD, w/o WMP, w/o SCL, w/o DNSP
    {"91.75", "89.91", "87.39", "78.85", "83.30"},  // PInfo
    {"91.00", "89.35", "87.22", "79.79", "83.93"},  // EduExp
    {"93.59", "88.94", "86.20", "79.81", "83.66"},  // WorkExp
    {"93.23", "88.79", "86.05", "77.13", "82.17"},  // ProjExp
    {"91.69", "90.06", "88.03", "79.01", "84.26"},  // Summary
    {"75.28", "71.91", "69.57", "60.73", "66.03"},  // Awards
    {"92.68", "89.84", "88.46", "79.34", "84.42"},  // SkillDes
    {"87.80", "85.37", "83.85", "75.90", "80.33"},  // Title
};

struct Variant {
  std::string name;
  bool kd;
  core::PretrainObjectives objectives;
};

void Run() {
  bench::PrintHeader("Table III: block classification ablation, F1 (R/P)");
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = bench::Scaled(160, 24);
  ccfg.train_docs = bench::Scaled(10, 4);
  ccfg.val_docs = bench::Scaled(6, 3);
  ccfg.test_docs = bench::Scaled(40, 10);
  ccfg.seed = 23;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);

  core::ResuFormerConfig cfg;
  cfg.vocab_size = tokenizer.vocab().size();

  std::vector<const doc::Document*> unlabeled, train_docs, val_docs;
  for (const auto& r : corpus.pretrain) unlabeled.push_back(&r.document);
  for (const auto& r : corpus.train) train_docs.push_back(&r.document);
  for (const auto& r : corpus.val) val_docs.push_back(&r.document);
  std::vector<core::EncodedDocument> pretrain_docs;
  for (const doc::Document* d : unlabeled) {
    pretrain_docs.push_back(core::EncodeForModel(*d, tokenizer, cfg));
  }
  std::vector<core::LabeledDocument> gold_train, gold_val;
  for (const doc::Document* d : train_docs) {
    gold_train.push_back(core::MakeLabeledDocument(*d, tokenizer, cfg));
  }
  for (const doc::Document* d : val_docs) {
    gold_val.push_back(core::MakeLabeledDocument(*d, tokenizer, cfg));
  }

  // One shared LayoutXLM-like teacher for the KD variants.
  baselines::TokenModelConfig teacher_cfg;
  teacher_cfg.vocab_size = tokenizer.vocab().size();
  teacher_cfg.epochs = bench::Scaled(10, 3);
  Rng teacher_rng(301);
  baselines::LayoutTokenModel teacher(teacher_cfg, &tokenizer, &teacher_rng,
                                      bench::Scaled(3, 1));
  teacher.PretrainMlm(unlabeled, &teacher_rng);
  teacher.Fit(train_docs, val_docs, &teacher_rng);
  core::KnowledgeDistiller distiller(&tokenizer, cfg);
  const auto pseudo = distiller.DistillPseudoLabels(teacher, unlabeled);
  std::printf("teacher trained; %zu pseudo-labeled documents\n\n",
              pseudo.size());

  const std::vector<Variant> variants = {
      {"Our Method", true, {true, true, true}},
      {"w/o KD", false, {true, true, true}},
      {"w/o WMP", true, {false, true, true}},
      {"w/o SCL", true, {true, false, true}},
      {"w/o DNSP", true, {true, true, false}},
  };

  std::vector<eval::BlockScorer> scorers;
  for (const Variant& v : variants) {
    Rng rng(401);  // identical seed across variants: only the switch differs
    core::BlockClassifier model(cfg, &rng);
    core::Pretrainer pretrainer(model.encoder(), &rng, v.objectives);
    pretrainer.Train(pretrain_docs, bench::Scaled(3, 1), 4, cfg.pretrain_lr);
    core::FinetuneOptions options;
    options.epochs = bench::Scaled(10, 4);
    options.patience = 6;
    if (v.kd) {
      distiller.TrainWithDistillation(&model, pseudo, gold_train, gold_val,
                                      options, &rng);
    } else {
      core::FinetuneBlockClassifier(&model, gold_train, gold_val, options,
                                    &rng);
    }
    eval::BlockScorer scorer;
    for (const auto& r : corpus.test) {
      std::vector<int> pred =
          model.Predict(core::EncodeForModel(r.document, tokenizer, cfg));
      pred.resize(r.document.NumSentences(), doc::kOutsideLabel);
      scorer.Add(r.document, pred);
    }
    std::printf("  %-10s overall F1 %.2f\n", v.name.c_str(),
                scorer.Overall().f1 * 100);
    std::fflush(stdout);
    scorers.push_back(scorer);
  }

  std::vector<std::string> header = {"Tag"};
  for (const Variant& v : variants) header.push_back(v.name);
  header.push_back("paper F1 (same order)");
  TablePrinter table(header);
  for (int t = 0; t < doc::kNumBlockTags; ++t) {
    const doc::BlockTag tag = static_cast<doc::BlockTag>(t);
    std::vector<std::string> row = {doc::BlockTagName(tag)};
    for (const auto& scorer : scorers) {
      row.push_back(eval::PrfCell(scorer.ForTag(tag)));
    }
    std::string paper;
    for (int m = 0; m < 5; ++m) {
      if (m > 0) paper += " / ";
      paper += kPaperRef[t][m];
    }
    row.push_back(paper);
    table.AddRow(row);
  }
  std::vector<std::string> overall = {"Overall"};
  for (const auto& scorer : scorers) {
    overall.push_back(eval::PrfCell(scorer.Overall()));
  }
  overall.push_back("-");
  table.AddSeparator();
  table.AddRow(overall);
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nShape check: the full method should score highest overall; each\n"
      "ablation removes one ingredient (paper ordering of damage:\n"
      "SCL > DNSP > WMP > KD; at CPU scale the document-level objectives\n"
      "carry small effect sizes — see EXPERIMENTS.md for the discussion).\n");
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
