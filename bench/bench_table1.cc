// Reproduces Table I: statistics of the resume document datasets.
//
// Paper: 80,000 pre-training documents; 1,100 / 500 / 500 fine-tuning
// documents; avg ~1,700 tokens, ~90 sentences, ~2.1 pages per document.
// We generate the synthetic corpus at DESIGN.md scale (ratios preserved)
// and print our measured statistics next to the paper's.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "common/string_util.h"
#include "resumegen/corpus.h"

namespace resuformer {
namespace {

void Run() {
  bench::PrintHeader("Table I: resume document dataset statistics");
  resumegen::CorpusConfig cfg;
  cfg.pretrain_docs = bench::Scaled(400, 60);
  cfg.train_docs = bench::Scaled(110, 20);
  cfg.val_docs = bench::Scaled(50, 10);
  cfg.test_docs = bench::Scaled(50, 10);
  cfg.seed = 17;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(cfg);

  struct Row {
    const char* name;
    resumegen::SplitStats stats;
    const char* paper;
  };
  const Row rows[] = {
      {"Pre-training", resumegen::ComputeStats(corpus.pretrain),
       "80000 docs, 1704.2 tok, 90.28 sent, 2.10 pages"},
      {"Finetune train", resumegen::ComputeStats(corpus.train),
       "1100 docs, 1721.98 tok, 90.71 sent, 2.02 pages"},
      {"Finetune validation", resumegen::ComputeStats(corpus.val),
       "500 docs, 1704.37 tok, 89.57 sent, 2.04 pages"},
      {"Finetune test", resumegen::ComputeStats(corpus.test),
       "500 docs, 1685.43 tok, 91.26 sent, 2.23 pages"},
  };

  TablePrinter table({"Split", "# docs", "avg tokens", "avg sentences",
                      "avg pages", "paper (full scale)"});
  for (const Row& row : rows) {
    table.AddRow({row.name, StringPrintf("%d", row.stats.num_docs),
                  StringPrintf("%.2f", row.stats.avg_tokens),
                  StringPrintf("%.2f", row.stats.avg_sentences),
                  StringPrintf("%.2f", row.stats.avg_pages), row.paper});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: multi-page text-centric documents (avg pages > 1,\n"
      "hundreds of tokens across tens of sentences); splits are i.i.d. so\n"
      "per-split statistics agree, matching the paper's Table I.\n");
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
