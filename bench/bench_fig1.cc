// Reproduces Figure 1: three different styles of resume templates.
//
// The paper shows three fictional resumes with different writing styles,
// each containing several types of semantic blocks. We render one resume
// record through three different built-in templates and print the annotated
// layouts (gold IOB block label per visual line), demonstrating that the
// same content appears in different positions/styles across templates.

#include <cstdio>

#include "bench_common.h"
#include "resumegen/corpus.h"
#include "resumegen/renderer.h"

namespace resuformer {
namespace {

void Run() {
  bench::PrintHeader("Figure 1: three resume template styles");
  Rng rng(71);
  resumegen::ResumeSampler sampler(&rng);
  const resumegen::ResumeRecord record = sampler.Sample();

  for (int template_id = 0; template_id < 3; ++template_id) {
    const resumegen::TemplateStyle& style =
        resumegen::TemplateById(template_id);
    Rng render_rng(100 + template_id);
    resumegen::Renderer renderer(&render_rng);
    const resumegen::GeneratedResume resume =
        renderer.Render(record, style);
    std::printf("\n----- style %d: \"%s\" (%d column%s, %d page%s, %d "
                "sentences) -----\n",
                template_id, style.name.c_str(), style.columns,
                style.columns > 1 ? "s" : "", resume.document.num_pages,
                resume.document.num_pages > 1 ? "s" : "",
                resume.document.NumSentences());
    std::printf("%s", resumegen::AsciiRender(
                          resume.document,
                          resume.document.sentence_labels).c_str());
  }
  std::printf(
      "\nShape check: identical content, three different layouts — blocks\n"
      "appear at different positions, fonts and orders, as in the paper's\n"
      "Figure 1 (all content fictional).\n");
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
