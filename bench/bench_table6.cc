// Reproduces Table VI: statistics of the intra-block extraction datasets.
//
// Paper: 20,000 train / 400 validation / 600 test samples; ~360-380 tokens
// and 3.5-4.3 entities per sample. Our blocks are proportionally shorter
// (CPU-scale documents), but the structure — train >> val/test, several
// entities per sample, train carrying at least one matched entity — is the
// property that matters.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "distant/dictionary.h"
#include "distant/ner_dataset.h"

namespace resuformer {
namespace {

void Run() {
  bench::PrintHeader("Table VI: intra-block extraction dataset statistics");
  const distant::EntityDictionary dictionary =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::NerDatasetConfig cfg;
  cfg.train_sequences = bench::Scaled(2000, 200);
  cfg.val_sequences = bench::Scaled(100, 20);
  cfg.test_sequences = bench::Scaled(150, 30);
  cfg.seed = 31;
  const distant::NerDataset data = distant::BuildNerDataset(cfg, dictionary);

  struct Row {
    const char* name;
    distant::NerSplitStats stats;
    const char* paper;
  };
  const Row rows[] = {
      {"Train Set", distant::ComputeNerStats(data.train),
       "20000 samples, 362 tok, 3.5 entities"},
      {"Validation Set", distant::ComputeNerStats(data.val),
       "400 samples, 359 tok, 4.1 entities"},
      {"Test Set", distant::ComputeNerStats(data.test),
       "600 samples, 381 tok, 4.3 entities"},
  };
  TablePrinter table({"Split", "# samples", "avg tokens", "avg entities",
                      "paper (full scale)"});
  for (const Row& row : rows) {
    table.AddRow({row.name, StringPrintf("%d", row.stats.num_samples),
                  StringPrintf("%.1f", row.stats.avg_tokens),
                  StringPrintf("%.2f", row.stats.avg_entities), row.paper});
  }
  std::printf("%s", table.ToString().c_str());

  const distant::NoiseStats noise = distant::ComputeNoiseStats(data.train);
  std::printf(
      "\nDistant supervision noise on the training split (not in the paper,\n"
      "but the property Section IV-B is designed around): label precision\n"
      "%.2f, label recall %.2f vs gold — i.e. auto-annotation is precise\n"
      "but incomplete.\n",
      noise.label_precision, noise.label_recall);
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
