// Micro-benchmarks (google-benchmark) backing the Time/Resume rows of
// Table II and the Figure 3 latency claim: per-component throughput of the
// sentence-level vs token-level processing paths, CRF decoding, the
// tokenizer and the sentence assembler — plus serial-vs-parallel tensor
// kernel throughput (the Arg is the thread count) so the thread-pool
// speedup is visible in CI output.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/layout_token_model.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/block_classifier.h"
#include "core/inference_plan.h"
#include "crf/linear_crf.h"
#include "doc/sentence_assembler.h"
#include "nn/serialize.h"
#include "pipeline/pipeline.h"
#include "resumegen/corpus.h"
#include "rf_lint/rules.h"
#include "serve/server.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace resuformer {
namespace {

struct Env {
  Env() {
    resumegen::CorpusConfig cfg;
    cfg.pretrain_docs = 4;
    cfg.train_docs = 2;
    cfg.val_docs = 1;
    cfg.test_docs = 1;
    cfg.seed = 3;
    corpus = resumegen::GenerateCorpus(cfg);
    tokenizer = std::make_unique<text::WordPieceTokenizer>(
        resumegen::TrainTokenizer(corpus, 1500));
    model_cfg.vocab_size = tokenizer->vocab().size();
    Rng rng(1);
    classifier = std::make_unique<core::BlockClassifier>(model_cfg, &rng);
    classifier->SetTraining(false);
    encoded = core::EncodeForModel(corpus.test[0].document, *tokenizer,
                                   model_cfg);
    token_cfg.vocab_size = tokenizer->vocab().size();
    Rng rng2(2);
    token_model = std::make_unique<baselines::LayoutTokenModel>(
        token_cfg, tokenizer.get(), &rng2, 0);
    token_model->SetTraining(false);
  }
  resumegen::Corpus corpus;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  core::ResuFormerConfig model_cfg;
  baselines::TokenModelConfig token_cfg;
  std::unique_ptr<core::BlockClassifier> classifier;
  std::unique_ptr<baselines::LayoutTokenModel> token_model;
  core::EncodedDocument encoded;
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

void BM_HierarchicalPredict(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.classifier->Predict(env.encoded));
  }
}
BENCHMARK(BM_HierarchicalPredict)->Unit(benchmark::kMillisecond);

// --- tensor-kernel throughput, serial vs parallel (Arg = thread count) ---

void BM_GemmForward(benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(21);
  Tensor a = Tensor::Randn({256, 256}, &rng);
  Tensor b = Tensor::Randn({256, 256}, &rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 256 * 256 * 256);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_GemmForward)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_GemmTrainStep(benchmark::State& state) {
  // Forward plus both backward products (dA = dC*B^T, dB = A^T*dC) on the
  // acceptance shape: 256x256 activations into a 256-class projection.
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(22);
  Tensor a = Tensor::Randn({256, 256}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({256, 256}, &rng, 1.0f, /*requires_grad=*/true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor loss = ops::Mean(ops::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 3 * 2LL * 256 * 256 * 256);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_GemmTrainStep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_RowSoftmax(benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(23);
  Tensor x = Tensor::Randn({512, 256}, &rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x));
  }
  state.SetItemsProcessed(state.iterations() * 512LL * 256);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_RowSoftmax)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_EncoderForward(benchmark::State& state) {
  // Encoder-forward at a width where the per-op sizes clear the parallel
  // thresholds (the Table-scale config with hidden=32 stays serial by
  // design — its matrices are too small to amortize a fork-join).
  Env& env = GetEnv();
  core::ResuFormerConfig cfg = env.model_cfg;
  cfg.hidden = 128;
  cfg.ffn = 256;
  cfg.runtime.threads = static_cast<int>(state.range(0));
  Rng rng(24);
  core::BlockClassifier classifier(cfg, &rng);
  classifier.SetTraining(false);
  const core::EncodedDocument encoded =
      core::EncodeForModel(env.corpus.test[0].document, *env.tokenizer, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Predict(encoded));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_EncoderForward)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// --- inference fast path: fused attention, buffer arena, batched parse ---

// Attention core at the paper dimensions (T=350 sentences, D=768, H=12;
// Section V). Composed = the reference per-head op chain with materialized
// transposes and slice/concat copies; fused = one FusedMultiHeadAttention
// node over strided head views. Arg = thread count.
constexpr int kPaperT = 350, kPaperD = 768, kPaperH = 12;

Tensor ComposedAttentionCore(const Tensor& q, const Tensor& k,
                             const Tensor& v, int num_heads) {
  const int head_dim = q.cols() / num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  std::vector<Tensor> heads;
  for (int h = 0; h < num_heads; ++h) {
    const int off = h * head_dim;
    Tensor qh = ops::SliceCols(q, off, head_dim);
    Tensor kh = ops::SliceCols(k, off, head_dim);
    Tensor vh = ops::SliceCols(v, off, head_dim);
    Tensor scores = ops::Scale(ops::MatMul(qh, ops::Transpose(kh)), scale);
    heads.push_back(ops::MatMul(ops::Softmax(scores), vh));
  }
  return ops::ConcatCols(heads);
}

void BM_AttentionComposed(benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(31);
  Tensor q = Tensor::Randn({kPaperT, kPaperD}, &rng, 0.1f);
  Tensor k = Tensor::Randn({kPaperT, kPaperD}, &rng, 0.1f);
  Tensor v = Tensor::Randn({kPaperT, kPaperD}, &rng, 0.1f);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComposedAttentionCore(q, k, v, kPaperH));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_AttentionComposed)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_AttentionFused(benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(31);  // same seed: identical inputs to the composed run
  Tensor q = Tensor::Randn({kPaperT, kPaperD}, &rng, 0.1f);
  Tensor k = Tensor::Randn({kPaperT, kPaperD}, &rng, 0.1f);
  Tensor v = Tensor::Randn({kPaperT, kPaperD}, &rng, 0.1f);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::FusedMultiHeadAttention(q, k, v, Tensor(), kPaperH));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_AttentionFused)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MatMulTransposedB(benchmark::State& state) {
  // Weight-tied vocab projection shape: [tokens, hidden] x [vocab, hidden]^T.
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(32);
  Tensor a = Tensor::Randn({128, 256}, &rng);
  Tensor b = Tensor::Randn({2000, 256}, &rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMulTransposedB(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 128 * 256 * 2000);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_MatMulTransposedB)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MatMulWithTranspose(benchmark::State& state) {
  // The composed equivalent of BM_MatMulTransposedB (materializes B^T).
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(32);
  Tensor a = Tensor::Randn({128, 256}, &rng);
  Tensor b = Tensor::Randn({2000, 256}, &rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, ops::Transpose(b)));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 128 * 256 * 2000);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_MatMulWithTranspose)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_EncoderForwardArena(benchmark::State& state) {
  // Same forward as BM_EncoderForward (threads=1); Arg toggles the arena so
  // its allocation savings are visible in isolation.
  Env& env = GetEnv();
  core::ResuFormerConfig cfg = env.model_cfg;
  cfg.hidden = 128;
  cfg.ffn = 256;
  cfg.runtime.threads = 1;
  cfg.runtime.use_tensor_arena = state.range(0) != 0;
  Rng rng(33);
  core::BlockClassifier classifier(cfg, &rng);
  classifier.SetTraining(false);
  const core::EncodedDocument encoded =
      core::EncodeForModel(env.corpus.test[0].document, *env.tokenizer, cfg);
  TensorArena::Global().SetEnabled(cfg.runtime.use_tensor_arena);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Predict(encoded));
  }
  state.counters["arena"] = static_cast<double>(state.range(0));
  TensorArena::Global().SetEnabled(true);
}
BENCHMARK(BM_EncoderForwardArena)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Document-batch throughput (docs/sec): serial Parse loop vs the pooled
// ParseBatch entry point, on a fused-attention pipeline and a composed-
// reference pipeline. Arg0: 0 = serial/fused, 1 = batched/fused,
// 2 = serial/reference, 3 = batched/reference.
struct ParseEnv {
  ParseEnv() {
    resumegen::CorpusConfig ccfg;
    ccfg.pretrain_docs = 4;
    ccfg.train_docs = 6;
    ccfg.val_docs = 2;
    ccfg.test_docs = 8;
    ccfg.seed = 55;
    corpus = resumegen::GenerateCorpus(ccfg);
    for (const resumegen::GeneratedResume& r : corpus.test) {
      documents.push_back(r.document);
    }
    pipeline::PipelineOptions options;
    options.model.hidden = 64;
    options.model.sentence_layers = 1;
    options.model.document_layers = 1;
    options.model.num_heads = 4;
    options.model.ffn = 128;
    options.model.max_tokens_per_sentence = 16;
    options.model.max_sentences = 48;
    options.model.lstm_hidden = 16;
    options.ner.hidden = 32;
    options.ner.layers = 1;
    options.ner.num_heads = 2;
    options.ner.ffn = 64;
    options.ner.max_tokens = 48;
    options.ner.lstm_hidden = 12;
    options.vocab_size = 600;
    options.pretrain_epochs = 1;
    options.finetune.epochs = 2;
    options.finetune.patience = 2;
    options.selftrain.teacher_epochs = 1;
    options.selftrain.teacher_patience = 1;
    options.selftrain.iterations = 1;
    options.ner_data.train_sequences = 20;
    options.ner_data.val_sequences = 8;
    options.ner_data.test_sequences = 8;
    fused = pipeline::ResuFormerPipeline::TrainFromCorpus(corpus, options,
                                                          nullptr);
    options.model.runtime.use_fused_attention = false;
    reference = pipeline::ResuFormerPipeline::TrainFromCorpus(
        corpus, options, nullptr);
  }
  resumegen::Corpus corpus;
  std::vector<doc::Document> documents;
  std::unique_ptr<pipeline::ResuFormerPipeline> fused;
  std::unique_ptr<pipeline::ResuFormerPipeline> reference;
};

ParseEnv& GetParseEnv() {
  static ParseEnv* env = new ParseEnv();
  return *env;
}

void BM_ParseThroughput(benchmark::State& state) {
  ParseEnv& env = GetParseEnv();
  const bool batched = (state.range(0) % 2) == 1;
  const bool use_fused = state.range(0) < 2;
  const pipeline::ResuFormerPipeline& pipe =
      use_fused ? *env.fused : *env.reference;
  ThreadPool::Global().SetNumThreads(batched ? 4 : 1);
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(pipe.ParseBatch(env.documents));
    } else {
      for (const doc::Document& document : env.documents) {
        benchmark::DoNotOptimize(pipe.Parse(document));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.documents.size()));
  state.counters["docs"] = static_cast<double>(env.documents.size());
  state.counters["threads"] = batched ? 4.0 : 1.0;
  state.counters["fused"] = use_fused ? 1.0 : 0.0;
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_ParseThroughput)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

// Serve-path throughput (docs/sec) and tail latency: Arg concurrent
// submitter threads push the 8-document set through the ParseServer
// admission queue and block on their futures, so cross-request coalescing
// and the micro-batch flush policy are on the measured path. p99_us is the
// admission-to-response-ready e2e latency from serve.e2e_us (log2-bucket
// resolution, see Histogram::ApproxPercentile).
void BM_ServerThroughput(benchmark::State& state) {
  ParseEnv& env = GetParseEnv();
  const int submitters = static_cast<int>(state.range(0));
  ThreadPool::Global().SetNumThreads(4);
  metrics::MetricsRegistry::Global().SetEnabled(true);
  metrics::Histogram* e2e =
      metrics::MetricsRegistry::Global().GetHistogram("serve.e2e_us");
  e2e->Reset();

  serve::ServerOptions options;
  options.max_batch = 8;
  options.max_queue_delay_ms = 2;
  options.queue_capacity = 1024;
  options.workers = 2;
  serve::ParseServer server(env.fused.get(), options);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(submitters));
    for (int t = 0; t < submitters; ++t) {
      threads.emplace_back([&server, &env] {
        std::vector<std::future<pipeline::ParseResponse>> futures;
        futures.reserve(env.documents.size());
        for (const doc::Document& document : env.documents) {
          pipeline::ParseRequest request;
          request.document = document;
          futures.push_back(server.Submit(std::move(request)));
        }
        for (auto& future : futures) benchmark::DoNotOptimize(future.get());
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  server.Shutdown();
  state.SetItemsProcessed(state.iterations() * submitters *
                          static_cast<int64_t>(env.documents.size()));
  state.counters["submitters"] = static_cast<double>(submitters);
  state.counters["p99_us"] = static_cast<double>(e2e->ApproxPercentile(0.99));
  metrics::MetricsRegistry::Global().SetEnabled(false);
  ThreadPool::Global().SetNumThreads(1);
}
// UseRealTime: the main thread only joins submitters, so CPU time would
// wildly overstate throughput — rates must come from wall time.
BENCHMARK(BM_ServerThroughput)->Arg(1)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// --- static inference plan: trace-once replay vs the dynamic op graph ---

// Table-scale emissions (the Env config): the plan's win is largest here,
// where per-op dispatch (node construction, shape inference, arena
// round-trips) dominates the small kernels.
void BM_EmissionsDynamic(benchmark::State& state) {
  Env& env = GetEnv();
  ThreadPool::Global().SetNumThreads(1);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.classifier->Emissions(env.encoded, nullptr));
  }
}
BENCHMARK(BM_EmissionsDynamic)->Unit(benchmark::kMicrosecond);

void BM_EmissionsPlanReplay(benchmark::State& state) {
  Env& env = GetEnv();
  ThreadPool::Global().SetNumThreads(1);
  core::InferencePlanner planner(env.classifier.get());
  std::vector<float> emissions;
  if (!planner.EmissionsViaPlan(env.encoded, &emissions)) {
    state.SkipWithError("plan build failed");
    return;
  }
  for (auto _ : state) {
    planner.EmissionsViaPlan(env.encoded, &emissions);
    benchmark::DoNotOptimize(emissions.data());
  }
}
BENCHMARK(BM_EmissionsPlanReplay)->Unit(benchmark::kMicrosecond);

// Paper-dimension document stage: 350 sentence positions through the
// document Transformer at D=768/H=12 (Section V scale; ffn and the BiLSTM
// width are kept moderate so an iteration stays affordable). Sentences are
// short so the run is dominated by the statically-planned document stage.
struct PlanPaperEnv {
  PlanPaperEnv() {
    Env& env = GetEnv();
    cfg = env.model_cfg;
    cfg.hidden = kPaperD;
    cfg.num_heads = kPaperH;
    cfg.ffn = 1024;
    cfg.sentence_layers = 1;
    cfg.document_layers = 1;
    cfg.max_sentences = kPaperT;
    cfg.max_tokens_per_sentence = 4;
    cfg.lstm_hidden = 64;
    Rng rng(41);
    classifier = std::make_unique<core::BlockClassifier>(cfg, &rng);
    classifier->SetTraining(false);
    const core::EncodedDocument base =
        core::EncodeForModel(env.corpus.test[0].document, *env.tokenizer, cfg);
    encoded.sentences.reserve(kPaperT);
    for (int i = 0; i < kPaperT; ++i) {
      encoded.sentences.push_back(
          base.sentences[i % base.sentences.size()]);
    }
  }
  core::ResuFormerConfig cfg;
  std::unique_ptr<core::BlockClassifier> classifier;
  core::EncodedDocument encoded;
};

PlanPaperEnv& GetPlanPaperEnv() {
  static PlanPaperEnv* env = new PlanPaperEnv();
  return *env;
}

void BM_EmissionsDynamicPaperDims(benchmark::State& state) {
  PlanPaperEnv& env = GetPlanPaperEnv();
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.classifier->Emissions(env.encoded, nullptr));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_EmissionsDynamicPaperDims)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_EmissionsPlanReplayPaperDims(benchmark::State& state) {
  PlanPaperEnv& env = GetPlanPaperEnv();
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  core::InferencePlanner planner(env.classifier.get());
  std::vector<float> emissions;
  if (!planner.EmissionsViaPlan(env.encoded, &emissions)) {
    state.SkipWithError("plan build failed");
    return;
  }
  for (auto _ : state) {
    planner.EmissionsViaPlan(env.encoded, &emissions);
    benchmark::DoNotOptimize(emissions.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_EmissionsPlanReplayPaperDims)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- int8 quantized inference (PR 7) --------------------------------------

/// Same model/weights as PlanPaperEnv (same config + seed) but with
/// runtime.use_int8, so the planner rewrites constant-weight GEMMs to the
/// quantized kernels. Kept separate so the fp32 env's plans stay fp32.
struct Int8PaperEnv {
  Int8PaperEnv() {
    PlanPaperEnv& fp32 = GetPlanPaperEnv();
    cfg = fp32.cfg;
    cfg.runtime.use_int8 = true;
    Rng rng(41);
    classifier = std::make_unique<core::BlockClassifier>(cfg, &rng);
    classifier->SetTraining(false);
  }
  core::ResuFormerConfig cfg;
  std::unique_ptr<core::BlockClassifier> classifier;
};

Int8PaperEnv& GetInt8PaperEnv() {
  static Int8PaperEnv* env = new Int8PaperEnv();
  return *env;
}

void BM_EmissionsPlanReplayInt8PaperDims(benchmark::State& state) {
  Int8PaperEnv& env = GetInt8PaperEnv();
  const core::EncodedDocument& encoded = GetPlanPaperEnv().encoded;
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  core::InferencePlanner planner(env.classifier.get());
  std::vector<float> emissions;
  if (!planner.EmissionsViaPlan(encoded, &emissions)) {
    state.SkipWithError("int8 plan build failed");
    return;
  }
  for (auto _ : state) {
    planner.EmissionsViaPlan(encoded, &emissions);
    benchmark::DoNotOptimize(emissions.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_EmissionsPlanReplayInt8PaperDims)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Kernel-level fp32 vs int8 at the paper's document-attention GEMM shape:
// [350, 768] x [768, 768] in NT form. The fp32 row zero-fills C first
// (the kernels accumulate); the int8 row runs the full LinearI8Forward
// production path — dynamic activation quantization, int8 GEMM, dequant —
// so the reported speedup includes the quantization overhead.
void BM_GemmFp32(benchmark::State& state) {
  const int m = kPaperT, k = kPaperD, n = kPaperD;
  Rng rng(51);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(n) * k);  // NT layout [n, k]
  std::vector<float> c(static_cast<size_t>(m) * n);
  for (float& v : a) v = static_cast<float>(rng.Normal());
  for (float& v : b) v = 0.05f * static_cast<float>(rng.Normal());
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    ThreadPool::Global().ParallelFor(
        m, [&](int, int64_t r0, int64_t r1) {
          kernels::GemmNT(a.data(), k, b.data(), k, c.data(), n, n, k, r0,
                          r1);
        });
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_GemmFp32)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_GemmI8(benchmark::State& state) {
  const int m = kPaperT, k = kPaperD, n = kPaperD;
  Rng rng(51);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> w(static_cast<size_t>(k) * n);
  for (float& v : a) v = static_cast<float>(rng.Normal());
  for (float& v : w) v = 0.05f * static_cast<float>(rng.Normal());
  const quant::QuantizedTensor qw =
      quant::QuantizeTransposed(w.data(), k, n);
  std::vector<float> scratch(quant::LinearI8ScratchFloats(m, k, n));
  std::vector<float> c(static_cast<size_t>(m) * n);
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    quant::LinearI8Forward(a.data(), qw, c.data(), m, k, n, scratch.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_GemmI8)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Cold start: load the paper-dims block classifier's parameters from each
// checkpoint format. RFP2 stream-parses every payload into private heap
// copies; RFP3 mmaps the file and points the tensors at the shared pages,
// so its "load" is an index walk plus page-table setup.
struct ColdStartEnv {
  ColdStartEnv() {
    PlanPaperEnv& paper = GetPlanPaperEnv();
    const char* tmp = std::getenv("TMPDIR");
    const std::string dir = tmp != nullptr ? tmp : "/tmp";
    rfp2_path = dir + "/rf_bench_cold_v2.bin";
    rfp3_path = dir + "/rf_bench_cold_v3.bin";
    ok = nn::SaveParameters(*paper.classifier, rfp2_path,
                        nn::CheckpointFormat::kRfp2)
             .ok() &&
         nn::SaveParameters(*paper.classifier, rfp3_path,
                        nn::CheckpointFormat::kRfp3)
             .ok();
    Rng rng(41);
    target = std::make_unique<core::BlockClassifier>(paper.cfg, &rng);
  }
  std::string rfp2_path;
  std::string rfp3_path;
  std::unique_ptr<core::BlockClassifier> target;
  bool ok = false;
};

ColdStartEnv& GetColdStartEnv() {
  static ColdStartEnv* env = new ColdStartEnv();
  return *env;
}

void BM_ColdStartRfp2(benchmark::State& state) {
  ColdStartEnv& env = GetColdStartEnv();
  if (!env.ok) {
    state.SkipWithError("checkpoint save failed");
    return;
  }
  for (auto _ : state) {
    const Status st = nn::LoadParameters(env.target.get(), env.rfp2_path);
    if (!st.ok()) {
      state.SkipWithError(st.message().c_str());
      return;
    }
  }
}
BENCHMARK(BM_ColdStartRfp2)->Unit(benchmark::kMillisecond);

void BM_ColdStartRfp3Mmap(benchmark::State& state) {
  ColdStartEnv& env = GetColdStartEnv();
  if (!env.ok) {
    state.SkipWithError("checkpoint save failed");
    return;
  }
  for (auto _ : state) {
    const Status st = nn::LoadParameters(env.target.get(), env.rfp3_path);
    if (!st.ok()) {
      state.SkipWithError(st.message().c_str());
      return;
    }
  }
}
BENCHMARK(BM_ColdStartRfp3Mmap)->Unit(benchmark::kMillisecond);

// --- observability overhead: the costs the instrumentation layer claims ---

void BM_TraceSpanDisabled(benchmark::State& state) {
  // The price every instrumented function pays when tracing is off: one
  // relaxed atomic load and a branch, no clock read.
  trace::TraceRecorder::Global().SetEnabled(false);
  for (auto _ : state) {
    TRACE_SPAN("bench.noop");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled)->Unit(benchmark::kNanosecond);

void BM_TraceSpanEnabled(benchmark::State& state) {
  trace::TraceRecorder::Global().SetEnabled(true);
  for (auto _ : state) {
    TRACE_SPAN("bench.noop");
    benchmark::ClobberMemory();
  }
  trace::TraceRecorder::Global().SetEnabled(false);
  trace::TraceRecorder::Global().Reset();
}
BENCHMARK(BM_TraceSpanEnabled)->Unit(benchmark::kNanosecond);

void BM_CounterIncrement(benchmark::State& state) {
  metrics::Counter* counter =
      metrics::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Increment();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterIncrement)->Unit(benchmark::kNanosecond);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::Histogram* hist =
      metrics::MetricsRegistry::Global().GetHistogram("bench.histogram");
  int64_t v = 0;
  for (auto _ : state) {
    hist->Record(v++ & 0xfff);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HistogramRecord)->Unit(benchmark::kNanosecond);

// The always-live record behind the serve plane's windowed p50/p99: a plain
// Histogram::Record plus one relaxed epoch-sequence check. Compare against
// BM_HistogramRecord to see the rolling overhead; the synthetic clock steps
// one microsecond per record, so epoch rotation stays on its real cadence.
void BM_RollingHistogramRecord(benchmark::State& state) {
  metrics::RollingHistogram rolling(10, 1'000'000'000);  // 10 x 1s epochs
  int64_t now_ns = 0;
  int64_t v = 0;
  for (auto _ : state) {
    rolling.Record(v++ & 0xfff, now_ns);
    now_ns += 1'000;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_RollingHistogramRecord)->Unit(benchmark::kNanosecond);

void BM_TokenLevelPredict(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.token_model->LabelSentences(env.corpus.test[0].document));
  }
}
BENCHMARK(BM_TokenLevelPredict)->Unit(benchmark::kMillisecond);

void BM_EncodeForModel(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeForModel(
        env.corpus.test[0].document, *env.tokenizer, env.model_cfg));
  }
}
BENCHMARK(BM_EncodeForModel)->Unit(benchmark::kMicrosecond);

void BM_CrfViterbiDecode(benchmark::State& state) {
  Rng rng(7);
  crf::LinearCrf crf(doc::kNumIobLabels, &rng);
  const int t_len = static_cast<int>(state.range(0));
  Tensor emissions = Tensor::Randn({t_len, doc::kNumIobLabels}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Decode(emissions));
  }
}
BENCHMARK(BM_CrfViterbiDecode)->Arg(64)->Arg(350)->Unit(benchmark::kMicrosecond);

void BM_CrfTrainingStep(benchmark::State& state) {
  Rng rng(8);
  crf::LinearCrf crf(doc::kNumIobLabels, &rng);
  Tensor emissions =
      Tensor::Randn({64, doc::kNumIobLabels}, &rng, 1.0f, true);
  std::vector<int> labels(64);
  for (int i = 0; i < 64; ++i) labels[i] = rng.UniformInt(doc::kNumIobLabels);
  for (auto _ : state) {
    emissions.ZeroGrad();
    Tensor loss = crf.NegLogLikelihood(emissions, labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_CrfTrainingStep)->Unit(benchmark::kMicrosecond);

void BM_WordPieceEncode(benchmark::State& state) {
  Env& env = GetEnv();
  const std::string text =
      "Senior Software Engineer at BrightHorizon Technologies Co. LTD";
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.tokenizer->Encode(text));
  }
}
BENCHMARK(BM_WordPieceEncode)->Unit(benchmark::kMicrosecond);

void BM_SentenceAssembler(benchmark::State& state) {
  Env& env = GetEnv();
  std::vector<doc::Token> flat;
  for (const auto& s : env.corpus.test[0].document.sentences) {
    flat.insert(flat.end(), s.tokens.begin(), s.tokens.end());
  }
  doc::SentenceAssembler assembler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assembler.Assemble(flat));
  }
}
BENCHMARK(BM_SentenceAssembler)->Unit(benchmark::kMicrosecond);

void BM_GenerateResume(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resumegen::GenerateResume(&rng));
  }
}
BENCHMARK(BM_GenerateResume)->Unit(benchmark::kMicrosecond);

// Full-tree rf_lint scan (lex -> scope facts -> call graph -> rule families
// over src/tests/bench/examples), the same work the tier-1 `rf_lint` ctest
// does. Budget: well under 5 s, so the lint gate stays cheap enough to run
// on every build.
void BM_RfLintFullScan(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path root = RESUFORMER_REPO_ROOT;
  int64_t violations = 0;
  for (auto _ : state) {
    rflint::Linter linter;
    for (const char* sub : {"src", "tests", "bench", "examples"}) {
      const fs::path dir = root / sub;
      if (!fs::exists(dir)) continue;
      std::vector<fs::path> paths;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        const std::string ext = entry.path().extension().string();
        if (entry.is_regular_file() &&
            (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp")) {
          paths.push_back(entry.path());
        }
      }
      std::sort(paths.begin(), paths.end());
      for (const fs::path& p : paths) {
        linter.AddFile(p, fs::relative(p, root).generic_string());
      }
    }
    linter.Run();
    violations += static_cast<int64_t>(linter.violations().size());
    benchmark::DoNotOptimize(violations);
  }
}
BENCHMARK(BM_RfLintFullScan)->Unit(benchmark::kMillisecond);

// Machine-readable sidecar: one JSON record per benchmark run with the
// fields CI trend-lines need (op, size, threads, ns/op). Written next to
// the working directory as BENCH_MICRO.json (override with the
// RESUFORMER_BENCH_JSON env var).
class MicroJsonReporter : public benchmark::BenchmarkReporter {
 public:
  explicit MicroJsonReporter(std::string path) : path_(std::move(path)) {}

  bool ReportContext(const Context& context) override {
    cpus_ = context.cpu_info.num_cpus;
    return true;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      // "BM_Foo/4" -> op "BM_Foo", size "4"; unparameterized stay whole.
      const size_t slash = name.find('/');
      const std::string op = name.substr(0, slash);
      const std::string size =
          slash == std::string::npos ? "" : name.substr(slash + 1);
      const double ns_per_op =
          run.iterations == 0
              ? 0.0
              : run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      double threads = 1.0;
      auto it = run.counters.find("threads");
      if (it != run.counters.end()) threads = it->second;
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "  {\"op\": \"%s\", \"size\": \"%s\", \"threads\": %d, "
                    "\"ns_per_op\": %.1f, \"iterations\": %lld}",
                    op.c_str(), size.c_str(), static_cast<int>(threads),
                    ns_per_op, static_cast<long long>(run.iterations));
      records_.push_back(buf);
    }
  }

  void Finalize() override {
    std::ofstream out(path_);
    if (!out) return;
    out << "{\n\"num_cpus\": " << cpus_ << ",\n\"benchmarks\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << records_[i] << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    // Counters accumulated across every run above (GEMM calls/FLOPs, arena
    // hits, pool dispatches, pipeline tallies) — the structural side of a
    // bench run, alongside the timings.
    out << "],\n\"metrics\": "
        << resuformer::metrics::MetricsRegistry::Global().Snapshot().ToJson()
        << "\n}\n";
  }

 private:
  std::string path_;
  int cpus_ = 0;
  std::vector<std::string> records_;
};

}  // namespace
}  // namespace resuformer

int main(int argc, char** argv) {
  // The library refuses a custom file reporter unless --benchmark_out is
  // set; our reporter writes its own path, so point the built-in stream at
  // /dev/null when the caller didn't pass the flag.
  std::vector<char*> args(argv, argv + argc);
  static char null_out[] = "--benchmark_out=/dev/null";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) args.push_back(null_out);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  const char* json_path = std::getenv("RESUFORMER_BENCH_JSON");
  resuformer::MicroJsonReporter json_reporter(
      json_path != nullptr ? json_path : "BENCH_MICRO.json");
  benchmark::ConsoleReporter console_reporter;
  benchmark::RunSpecifiedBenchmarks(&console_reporter, &json_reporter);
  benchmark::Shutdown();
  return 0;
}
