// Micro-benchmarks (google-benchmark) backing the Time/Resume rows of
// Table II and the Figure 3 latency claim: per-component throughput of the
// sentence-level vs token-level processing paths, CRF decoding, the
// tokenizer and the sentence assembler — plus serial-vs-parallel tensor
// kernel throughput (the Arg is the thread count) so the thread-pool
// speedup is visible in CI output.

#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/layout_token_model.h"
#include "common/thread_pool.h"
#include "core/block_classifier.h"
#include "crf/linear_crf.h"
#include "doc/sentence_assembler.h"
#include "resumegen/corpus.h"
#include "tensor/ops.h"

namespace resuformer {
namespace {

struct Env {
  Env() {
    resumegen::CorpusConfig cfg;
    cfg.pretrain_docs = 4;
    cfg.train_docs = 2;
    cfg.val_docs = 1;
    cfg.test_docs = 1;
    cfg.seed = 3;
    corpus = resumegen::GenerateCorpus(cfg);
    tokenizer = std::make_unique<text::WordPieceTokenizer>(
        resumegen::TrainTokenizer(corpus, 1500));
    model_cfg.vocab_size = tokenizer->vocab().size();
    Rng rng(1);
    classifier = std::make_unique<core::BlockClassifier>(model_cfg, &rng);
    classifier->SetTraining(false);
    encoded = core::EncodeForModel(corpus.test[0].document, *tokenizer,
                                   model_cfg);
    token_cfg.vocab_size = tokenizer->vocab().size();
    Rng rng2(2);
    token_model = std::make_unique<baselines::LayoutTokenModel>(
        token_cfg, tokenizer.get(), &rng2, 0);
    token_model->SetTraining(false);
  }
  resumegen::Corpus corpus;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  core::ResuFormerConfig model_cfg;
  baselines::TokenModelConfig token_cfg;
  std::unique_ptr<core::BlockClassifier> classifier;
  std::unique_ptr<baselines::LayoutTokenModel> token_model;
  core::EncodedDocument encoded;
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

void BM_HierarchicalPredict(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.classifier->Predict(env.encoded));
  }
}
BENCHMARK(BM_HierarchicalPredict)->Unit(benchmark::kMillisecond);

// --- tensor-kernel throughput, serial vs parallel (Arg = thread count) ---

void BM_GemmForward(benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(21);
  Tensor a = Tensor::Randn({256, 256}, &rng);
  Tensor b = Tensor::Randn({256, 256}, &rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 256 * 256 * 256);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_GemmForward)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_GemmTrainStep(benchmark::State& state) {
  // Forward plus both backward products (dA = dC*B^T, dB = A^T*dC) on the
  // acceptance shape: 256x256 activations into a 256-class projection.
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(22);
  Tensor a = Tensor::Randn({256, 256}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({256, 256}, &rng, 1.0f, /*requires_grad=*/true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor loss = ops::Mean(ops::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 3 * 2LL * 256 * 256 * 256);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_GemmTrainStep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_RowSoftmax(benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(23);
  Tensor x = Tensor::Randn({512, 256}, &rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x));
  }
  state.SetItemsProcessed(state.iterations() * 512LL * 256);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_RowSoftmax)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_EncoderForward(benchmark::State& state) {
  // Encoder-forward at a width where the per-op sizes clear the parallel
  // thresholds (the Table-scale config with hidden=32 stays serial by
  // design — its matrices are too small to amortize a fork-join).
  Env& env = GetEnv();
  core::ResuFormerConfig cfg = env.model_cfg;
  cfg.hidden = 128;
  cfg.ffn = 256;
  cfg.threads = static_cast<int>(state.range(0));
  Rng rng(24);
  core::BlockClassifier classifier(cfg, &rng);
  classifier.SetTraining(false);
  const core::EncodedDocument encoded =
      core::EncodeForModel(env.corpus.test[0].document, *env.tokenizer, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Predict(encoded));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::Global().SetNumThreads(1);
}
BENCHMARK(BM_EncoderForward)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TokenLevelPredict(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.token_model->LabelSentences(env.corpus.test[0].document));
  }
}
BENCHMARK(BM_TokenLevelPredict)->Unit(benchmark::kMillisecond);

void BM_EncodeForModel(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeForModel(
        env.corpus.test[0].document, *env.tokenizer, env.model_cfg));
  }
}
BENCHMARK(BM_EncodeForModel)->Unit(benchmark::kMicrosecond);

void BM_CrfViterbiDecode(benchmark::State& state) {
  Rng rng(7);
  crf::LinearCrf crf(doc::kNumIobLabels, &rng);
  const int t_len = static_cast<int>(state.range(0));
  Tensor emissions = Tensor::Randn({t_len, doc::kNumIobLabels}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Decode(emissions));
  }
}
BENCHMARK(BM_CrfViterbiDecode)->Arg(64)->Arg(350)->Unit(benchmark::kMicrosecond);

void BM_CrfTrainingStep(benchmark::State& state) {
  Rng rng(8);
  crf::LinearCrf crf(doc::kNumIobLabels, &rng);
  Tensor emissions =
      Tensor::Randn({64, doc::kNumIobLabels}, &rng, 1.0f, true);
  std::vector<int> labels(64);
  for (int i = 0; i < 64; ++i) labels[i] = rng.UniformInt(doc::kNumIobLabels);
  for (auto _ : state) {
    emissions.ZeroGrad();
    Tensor loss = crf.NegLogLikelihood(emissions, labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_CrfTrainingStep)->Unit(benchmark::kMicrosecond);

void BM_WordPieceEncode(benchmark::State& state) {
  Env& env = GetEnv();
  const std::string text =
      "Senior Software Engineer at BrightHorizon Technologies Co. LTD";
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.tokenizer->Encode(text));
  }
}
BENCHMARK(BM_WordPieceEncode)->Unit(benchmark::kMicrosecond);

void BM_SentenceAssembler(benchmark::State& state) {
  Env& env = GetEnv();
  std::vector<doc::Token> flat;
  for (const auto& s : env.corpus.test[0].document.sentences) {
    flat.insert(flat.end(), s.tokens.begin(), s.tokens.end());
  }
  doc::SentenceAssembler assembler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assembler.Assemble(flat));
  }
}
BENCHMARK(BM_SentenceAssembler)->Unit(benchmark::kMicrosecond);

void BM_GenerateResume(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resumegen::GenerateResume(&rng));
  }
}
BENCHMARK(BM_GenerateResume)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace resuformer

BENCHMARK_MAIN();
