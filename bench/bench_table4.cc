// Reproduces Table IV: intra-block information extraction — F1
// (Recall/Precision) per (block, entity tag) for five systems.
//
// Systems (Section V-B3):
//   D&R Match          dictionary + regex matching, no learning
//   BERT+BiLSTM+CRF    CRF trained on the distant labels as if gold
//   BERT+BiLSTM+FCRF   fuzzy (constrained-lattice) CRF
//   AutoNER            Tie-or-Break scheme
//   Our Method         BERT+BiLSTM+MLP + self-distillation self-training
//                      with soft labels and high-confidence selection
//
// Expected shape (paper): D&R has high precision / low recall (worst F1 on
// open-class tags); CRF < FCRF < AutoNER < Ours; fixed-format tags (Gender,
// Email, PhoneNum, Date, Degree) exceed 90 F1 for Ours.

#include <cstdio>
#include <functional>
#include <map>

#include "baselines/autoner.h"
#include "baselines/bert_bilstm_crf.h"
#include "baselines/dr_match.h"
#include "bench_common.h"
#include "common/table_printer.h"
#include "distant/dictionary.h"
#include "distant/ner_dataset.h"
#include "eval/entity_metrics.h"
#include "eval/report.h"
#include "resumegen/corpus.h"
#include "selftrain/self_distill.h"

namespace resuformer {
namespace {

using doc::EntityTag;

struct TagRow {
  const char* block;
  EntityTag tag;
  // Paper F1: D&R, CRF, FCRF, AutoNER, Ours.
  const char* paper[5];
};

const TagRow kRows[] = {
    {"PInfo", EntityTag::kName, {"69.59", "85.10", "93.03", "94.38", "97.52"}},
    {"PInfo", EntityTag::kGender, {"92.76", "93.00", "95.41", "96.17", "98.66"}},
    {"PInfo", EntityTag::kPhoneNum, {"86.74", "91.83", "93.88", "95.86", "98.51"}},
    {"PInfo", EntityTag::kEmail, {"87.98", "90.95", "93.35", "95.46", "98.31"}},
    {"PInfo", EntityTag::kAge, {"82.06", "84.85", "87.54", "89.48", "92.98"}},
    {"EduExp", EntityTag::kCollege, {"66.35", "71.57", "78.10", "80.04", "85.59"}},
    {"EduExp", EntityTag::kMajor, {"66.37", "70.97", "76.44", "78.53", "83.75"}},
    {"EduExp", EntityTag::kDegree, {"83.30", "88.08", "90.23", "91.14", "93.55"}},
    {"EduExp", EntityTag::kDate, {"82.95", "86.73", "88.43", "90.31", "92.82"}},
    {"WorkExp", EntityTag::kCompany, {"60.22", "69.35", "76.80", "77.92", "82.74"}},
    {"WorkExp", EntityTag::kPosition, {"55.42", "65.80", "74.88", "77.13", "83.45"}},
    {"WorkExp", EntityTag::kDate, {"83.62", "86.78", "88.74", "90.55", "92.76"}},
    {"ProjExp", EntityTag::kProjName, {"43.23", "63.24", "73.37", "75.53", "80.19"}},
    {"ProjExp", EntityTag::kDate, {"83.90", "86.41", "88.20", "89.57", "91.78"}},
};

/// Per-(block, tag) scorer: sequences are scored per block type so the Date
/// rows can be broken out by block as the paper does.
struct MethodScores {
  std::string name;
  // scorers indexed by block tag.
  std::map<doc::BlockTag, eval::EntityScorer> per_block;
};

MethodScores Score(
    const std::string& name,
    const std::function<std::vector<int>(const std::vector<std::string>&)>&
        predict,
    const std::vector<distant::AnnotatedSequence>& test) {
  MethodScores scores;
  scores.name = name;
  eval::EntityScorer overall;
  for (const auto& seq : test) {
    const std::vector<int> pred = predict(seq.words);
    scores.per_block[seq.block].Add(pred, seq.labels);
    overall.Add(pred, seq.labels);
  }
  std::printf("  %-18s overall F1 %.2f (P %.2f / R %.2f)\n", name.c_str(),
              overall.Overall().f1 * 100, overall.Overall().precision * 100,
              overall.Overall().recall * 100);
  std::fflush(stdout);
  return scores;
}

void Run() {
  bench::PrintHeader(
      "Table IV: intra-block information extraction, F1 (R/P)");
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = bench::Scaled(30, 8);
  ccfg.train_docs = 2;
  ccfg.val_docs = 1;
  ccfg.test_docs = 1;
  ccfg.seed = 33;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);

  const distant::EntityDictionary dictionary =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::NerDatasetConfig ncfg;
  ncfg.train_sequences = bench::Scaled(800, 150);
  ncfg.val_sequences = bench::Scaled(120, 30);
  ncfg.test_sequences = bench::Scaled(250, 50);
  ncfg.seed = 31;
  const distant::NerDataset data = distant::BuildNerDataset(ncfg, dictionary);
  const distant::NoiseStats noise = distant::ComputeNoiseStats(data.train);
  std::printf(
      "distant train: %zu sequences (label precision %.2f, recall %.2f "
      "vs gold)\n\n",
      data.train.size(), noise.label_precision, noise.label_recall);

  selftrain::NerModelConfig nmc;
  nmc.vocab_size = tokenizer.vocab().size();
  const int epochs = bench::Scaled(8, 3);
  const int patience = 3;

  std::vector<MethodScores> methods;
  {
    baselines::DrMatch model(&dictionary);
    methods.push_back(Score(
        "D&R Match",
        [&](const std::vector<std::string>& w) { return model.Predict(w); },
        data.test));
  }
  {
    Rng rng(501);
    baselines::BertBilstmCrf model(nmc, &tokenizer, /*fuzzy=*/false, &rng);
    model.Fit(data.train, data.val, epochs, patience, &rng);
    methods.push_back(Score(
        "BERT+BiLSTM+CRF",
        [&](const std::vector<std::string>& w) { return model.Predict(w); },
        data.test));
  }
  {
    Rng rng(502);
    baselines::BertBilstmCrf model(nmc, &tokenizer, /*fuzzy=*/true, &rng);
    model.Fit(data.train, data.val, epochs, patience, &rng);
    methods.push_back(Score(
        "BERT+BiLSTM+FCRF",
        [&](const std::vector<std::string>& w) { return model.Predict(w); },
        data.test));
  }
  {
    Rng rng(503);
    baselines::AutoNer model(nmc, &tokenizer, &rng);
    model.Fit(data.train, data.val, epochs, patience, &rng);
    methods.push_back(Score(
        "AutoNER",
        [&](const std::vector<std::string>& w) { return model.Predict(w); },
        data.test));
  }
  {
    Rng rng(504);
    selftrain::SelfTrainOptions options;
    options.teacher_epochs = bench::Scaled(10, 4);
    options.teacher_patience = 4;
    options.iterations = bench::Scaled(8, 3);
    options.student_epochs_per_iteration = 1;
    options.gamma = 0.7f;
    selftrain::NerModelConfig student_cfg = nmc;
    student_cfg.encoder_lr = 5e-4f;
    student_cfg.head_lr = 1e-3f;
    selftrain::SelfDistillTrainer trainer(student_cfg, options, &tokenizer,
                                          &rng);
    selftrain::SelfTrainResult result = trainer.Train(data.train, data.val);
    const selftrain::NerModel* model = result.model.get();
    methods.push_back(Score(
        "Our Method",
        [&, model](const std::vector<std::string>& w) {
          return model->Predict(
              selftrain::EncodeWordsForNer(w, tokenizer, student_cfg));
        },
        data.test));
  }

  std::vector<std::string> header = {"Block", "Tag"};
  for (const auto& m : methods) header.push_back(m.name);
  header.push_back("paper F1 (same order)");
  TablePrinter table(header);
  std::string previous_block;
  for (const TagRow& row : kRows) {
    std::vector<std::string> cells = {row.block, doc::EntityTagName(row.tag)};
    doc::BlockTag block = doc::BlockTag::kPInfo;
    if (std::string(row.block) == "EduExp") block = doc::BlockTag::kEduExp;
    if (std::string(row.block) == "WorkExp") block = doc::BlockTag::kWorkExp;
    if (std::string(row.block) == "ProjExp") block = doc::BlockTag::kProjExp;
    for (auto& m : methods) {
      cells.push_back(eval::PrfCell(m.per_block[block].ForTag(row.tag)));
    }
    std::string paper;
    for (int i = 0; i < 5; ++i) {
      if (i > 0) paper += " / ";
      paper += row.paper[i];
    }
    cells.push_back(paper);
    if (!previous_block.empty() && previous_block != row.block) {
      table.AddSeparator();
    }
    previous_block = row.block;
    table.AddRow(cells);
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nShape check: D&R precision >> recall; learned methods trade some\n"
      "precision for large recall gains; Our Method should lead overall\n"
      "(paper: best on all 14 tags, with fixed-format tags > 90 F1).\n");
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
