#ifndef RESUFORMER_BENCH_BENCH_COMMON_H_
#define RESUFORMER_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <string>

namespace resuformer {
namespace bench {

/// All benches honor RF_FAST=1 for a quick smoke run (scaled-down corpora,
/// fewer epochs) so `for b in build/bench/*; do $b; done` stays tractable on
/// a single core. The default scale is the DESIGN.md Section 6 budget.
inline bool FastMode() {
  const char* v = std::getenv("RF_FAST");
  return v != nullptr && std::string(v) == "1";
}

/// Scales an integer knob down in fast mode (at least `min_value`).
inline int Scaled(int full, int fast) { return FastMode() ? fast : full; }

inline void PrintHeader(const std::string& title) {
  std::string bar(title.size() + 8, '=');
  std::printf("%s\n=== %s ===\n%s\n", bar.c_str(), title.c_str(),
              bar.c_str());
}

}  // namespace bench
}  // namespace resuformer

#endif  // RESUFORMER_BENCH_BENCH_COMMON_H_
