// Reproduces Table II: resume block classification — F1 (Recall/Precision)
// per block tag for five systems, plus the Time/Resume row.
//
// Systems (Section V-A3):
//   BERT+CRF       token-level text-only, no pre-training
//   HiBERT+CRF     hierarchical text-only, no pre-training
//   RoBERTa+GCN    token-level text + spatial GCN, MLM-pretrained
//   LayoutXLM-like token-level text+layout+visual, MLM-pretrained
//   Our Method     hierarchical multi-modal, MLLM+SCL+DNSP pre-training,
//                  BiLSTM+CRF head, knowledge distillation (Algorithm 1)
//
// Expected shape (paper): pretrained multi-modal >> text-only
// non-pretrained; Ours best on most tags (paper wins 7/8, LayoutXLM takes
// PInfo); sentence-level systems (HiBERT, Ours) run an order of magnitude
// faster per resume than the token-level ones (paper: 0.19s/0.27s vs
// 3.26-3.88s, ~15x).

#include <cstdio>
#include <memory>

#include "baselines/bert_crf.h"
#include "baselines/hibert_crf.h"
#include "baselines/layout_token_model.h"
#include "baselines/roberta_gcn.h"
#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/block_classifier.h"
#include "core/distiller.h"
#include "core/pretrainer.h"
#include "eval/block_metrics.h"
#include "eval/report.h"
#include "eval/timing.h"
#include "resumegen/corpus.h"

namespace resuformer {
namespace {

struct MethodResult {
  std::string name;
  eval::BlockScorer scorer;
  double seconds_per_resume = 0.0;
};

/// Paper Table II reference cells, per tag per method (F1 only).
const char* kPaperRef[doc::kNumBlockTags][5] = {
    // BERT+CRF, HiBERT+CRF, RoBERTa+GCN, LayoutXLM, Ours
    {"77.88", "73.28", "89.95", "92.99", "91.75"},  // PInfo
    {"63.95", "60.50", "88.68", "90.85", "91.00"},  // EduExp
    {"60.77", "56.25", "84.72", "86.20", "93.59"},  // WorkExp
    {"66.51", "59.88", "85.68", "86.25", "93.23"},  // ProjExp
    {"43.42", "36.60", "83.95", "85.10", "91.69"},  // Summary
    {"15.31", "10.48", "70.12", "71.23", "75.28"},  // Awards
    {"40.94", "35.96", "87.01", "88.64", "92.68"},  // SkillDes
    {"43.10", "37.25", "84.88", "84.77", "87.80"},  // Title
};
const char* kPaperTime[5] = {"3.26s", "0.19s", "3.46s", "3.88s", "0.27s"};

class Harness {
 public:
  Harness() {
    resumegen::CorpusConfig cfg;
    cfg.pretrain_docs = bench::Scaled(240, 30);
    cfg.train_docs = bench::Scaled(10, 4);
    cfg.val_docs = bench::Scaled(6, 3);
    cfg.test_docs = bench::Scaled(40, 10);
    cfg.seed = 17;
    corpus_ = resumegen::GenerateCorpus(cfg);
    tokenizer_ = std::make_unique<text::WordPieceTokenizer>(
        resumegen::TrainTokenizer(corpus_, 1500));
    for (const auto& r : corpus_.pretrain) {
      unlabeled_.push_back(&r.document);
    }
    for (const auto& r : corpus_.train) train_.push_back(&r.document);
    for (const auto& r : corpus_.val) val_.push_back(&r.document);
    std::printf("corpus: %zu pretrain, %zu train, %zu val, %zu test docs; "
                "vocab %d\n\n",
                corpus_.pretrain.size(), corpus_.train.size(),
                corpus_.val.size(), corpus_.test.size(),
                tokenizer_->vocab().size());
  }

  baselines::TokenModelConfig TokenConfig() const {
    baselines::TokenModelConfig cfg;
    cfg.vocab_size = tokenizer_->vocab().size();
    cfg.epochs = bench::Scaled(10, 3);
    cfg.patience = 4;
    return cfg;
  }

  /// Evaluates a sentence labeler on the test split, timing per document.
  MethodResult Evaluate(const std::string& name,
                        const core::SentenceLabeler& model) {
    MethodResult result;
    result.name = name;
    eval::LatencyMeter meter;
    for (const auto& r : corpus_.test) {
      eval::Stopwatch sw;
      std::vector<int> pred = model.LabelSentences(r.document);
      meter.Add(sw.Seconds());
      pred.resize(r.document.NumSentences(), doc::kOutsideLabel);
      result.scorer.Add(r.document, pred);
    }
    result.seconds_per_resume = meter.MeanSeconds();
    std::printf("  %-16s done (%.3fs/resume, overall F1 %.2f)\n",
                name.c_str(), result.seconds_per_resume,
                result.scorer.Overall().f1 * 100);
    std::fflush(stdout);
    return result;
  }

  /// Our method, exposing the SentenceLabeler interface for Evaluate.
  class OursLabeler : public core::SentenceLabeler {
   public:
    OursLabeler(const core::BlockClassifier* model,
                const text::WordPieceTokenizer* tokenizer,
                const core::ResuFormerConfig& cfg)
        : model_(model), tokenizer_(tokenizer), cfg_(cfg) {}
    std::vector<int> LabelSentences(const doc::Document& d) const override {
      return model_->Predict(core::EncodeForModel(d, *tokenizer_, cfg_));
    }

   private:
    const core::BlockClassifier* model_;
    const text::WordPieceTokenizer* tokenizer_;
    core::ResuFormerConfig cfg_;
  };

  resumegen::Corpus corpus_;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer_;
  std::vector<const doc::Document*> unlabeled_, train_, val_;
};

void Run() {
  bench::PrintHeader(
      "Table II: resume block classification, F1 (Recall/Precision)");
  Harness harness;
  std::vector<MethodResult> results;

  {  // BERT+CRF: token-level, text-only, from scratch.
    Rng rng(101);
    baselines::BertCrf model(harness.TokenConfig(), harness.tokenizer_.get(),
                             &rng);
    model.Fit(harness.train_, harness.val_, &rng);
    results.push_back(harness.Evaluate("BERT+CRF", model));
  }
  {  // HiBERT+CRF: hierarchical, text-only, from scratch.
    Rng rng(102);
    baselines::HiBertCrf::Config cfg;
    cfg.vocab_size = harness.tokenizer_->vocab().size();
    cfg.epochs = bench::Scaled(12, 4);
    cfg.patience = 4;
    baselines::HiBertCrf model(cfg, harness.tokenizer_.get(), &rng);
    model.Fit(harness.train_, harness.val_, &rng);
    results.push_back(harness.Evaluate("HiBERT+CRF", model));
  }
  {  // RoBERTa+GCN: MLM-pretrained token encoder + spatial GCN.
    Rng rng(103);
    baselines::RobertaGcn model(harness.TokenConfig(),
                                harness.tokenizer_.get(), &rng,
                                bench::Scaled(3, 1));
    model.PretrainMlm(harness.unlabeled_, &rng);
    model.Fit(harness.train_, harness.val_, &rng);
    results.push_back(harness.Evaluate("RoBERTa+GCN", model));
  }
  core::ResuFormerConfig ours_cfg;
  ours_cfg.vocab_size = harness.tokenizer_->vocab().size();
  std::unique_ptr<baselines::LayoutTokenModel> layoutxlm;
  {  // LayoutXLM-like: MLM-pretrained token-level multi-modal.
    Rng rng(104);
    layoutxlm = std::make_unique<baselines::LayoutTokenModel>(
        harness.TokenConfig(), harness.tokenizer_.get(), &rng,
        bench::Scaled(4, 1));
    layoutxlm->PretrainMlm(harness.unlabeled_, &rng);
    layoutxlm->Fit(harness.train_, harness.val_, &rng);
    results.push_back(harness.Evaluate("LayoutXLM-like", *layoutxlm));
  }
  {  // Our method: pre-train (Eq. 7), KD from LayoutXLM (Alg. 1), finetune.
    Rng rng(105);
    core::BlockClassifier model(ours_cfg, &rng);
    std::vector<core::EncodedDocument> pretrain_docs;
    for (const doc::Document* d : harness.unlabeled_) {
      pretrain_docs.push_back(
          core::EncodeForModel(*d, *harness.tokenizer_, ours_cfg));
    }
    core::Pretrainer pretrainer(model.encoder(), &rng);
    pretrainer.Train(pretrain_docs, bench::Scaled(3, 1), 4,
                     ours_cfg.pretrain_lr);

    std::vector<core::LabeledDocument> gold_train, gold_val;
    for (const doc::Document* d : harness.train_) {
      gold_train.push_back(
          core::MakeLabeledDocument(*d, *harness.tokenizer_, ours_cfg));
    }
    for (const doc::Document* d : harness.val_) {
      gold_val.push_back(
          core::MakeLabeledDocument(*d, *harness.tokenizer_, ours_cfg));
    }
    core::KnowledgeDistiller distiller(harness.tokenizer_.get(), ours_cfg);
    const auto pseudo =
        distiller.DistillPseudoLabels(*layoutxlm, harness.unlabeled_);
    core::FinetuneOptions options;
    options.epochs = bench::Scaled(14, 4);
    options.patience = 8;
    distiller.TrainWithDistillation(&model, pseudo, gold_train, gold_val,
                                    options, &rng);
    Harness::OursLabeler labeler(&model, harness.tokenizer_.get(), ours_cfg);
    results.push_back(harness.Evaluate("Our Method", *&labeler));
  }

  // --- the table ---
  std::vector<std::string> header = {"Tag"};
  for (const MethodResult& r : results) header.push_back(r.name);
  header.push_back("paper F1 (same order)");
  TablePrinter table(header);
  for (int t = 0; t < doc::kNumBlockTags; ++t) {
    const doc::BlockTag tag = static_cast<doc::BlockTag>(t);
    std::vector<std::string> row = {doc::BlockTagName(tag)};
    for (const MethodResult& r : results) {
      row.push_back(eval::PrfCell(r.scorer.ForTag(tag)));
    }
    std::string paper;
    for (int m = 0; m < 5; ++m) {
      if (m > 0) paper += " / ";
      paper += kPaperRef[t][m];
    }
    row.push_back(paper);
    table.AddRow(row);
  }
  table.AddSeparator();
  std::vector<std::string> time_row = {"Time / Resume"};
  for (const MethodResult& r : results) {
    time_row.push_back(eval::LatencyCell(r.seconds_per_resume));
  }
  std::string paper_time;
  for (int m = 0; m < 5; ++m) {
    if (m > 0) paper_time += " / ";
    paper_time += kPaperTime[m];
  }
  time_row.push_back(paper_time);
  table.AddRow(time_row);
  std::printf("\n%s", table.ToString().c_str());

  const double slow = std::max(
      {results[0].seconds_per_resume, results[2].seconds_per_resume,
       results[3].seconds_per_resume});
  const double ours_time = results[4].seconds_per_resume;
  std::printf(
      "\nShape check: sentence-level methods vs slowest token-level method "
      "speedup = %.1fx (paper reports ~15x for Ours vs LayoutXLM).\n",
      ours_time > 0 ? slow / ours_time : 0.0);
}

}  // namespace
}  // namespace resuformer

int main() {
  resuformer::Run();
  return 0;
}
