// Int8 quantization + int8 GEMM kernel tests (PR 7 tentpole).
//
// Three layers of pinning:
//  * quantize -> dequantize round trip obeys the analytic per-element
//    error bound |x - deq(q(x))| <= scale/2,
//  * the int8 GEMM kernels (NT/NN/TN) match an exact scalar int32
//    reference bit-for-bit across ragged shapes and row partitions
//    (integer accumulation is associative, so there is no tolerance),
//  * LinearI8Forward (dynamic activation quant + NT GEMM + dequant)
//    tracks the fp32 product within the analytic quantization bound and
//    is bit-identical across thread-pool widths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace resuformer {
namespace quant {
namespace {

std::vector<float> RandomVec(int64_t n, float scale, Rng* rng) {
  std::vector<float> v(n);
  for (int64_t i = 0; i < n; ++i) {
    v[i] = scale * static_cast<float>(rng->Normal());
  }
  return v;
}

std::vector<int8_t> RandomI8(int64_t n, Rng* rng) {
  std::vector<int8_t> v(n);
  for (int64_t i = 0; i < n; ++i) {
    v[i] = static_cast<int8_t>(static_cast<int>(rng->UniformInt(255)) - 127);
  }
  return v;
}

TEST(QuantizeTest, RoundTripErrorBoundedByHalfScale) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t n = 1 + static_cast<int64_t>(rng.UniformInt(500));
    const float mag = 0.01f + 10.0f * static_cast<float>(rng.Uniform());
    std::vector<float> x = RandomVec(n, mag, &rng);
    const float scale = ComputeScale(x.data(), n);
    ASSERT_GT(scale, 0.0f);
    std::vector<int8_t> q(n);
    Quantize(x.data(), n, scale, q.data());
    std::vector<float> back(n);
    Dequantize(q.data(), n, scale, back.data());
    for (int64_t i = 0; i < n; ++i) {
      // Half-away-from-zero rounding: the representable grid has pitch
      // `scale`, and every |x[i]| <= 127*scale by construction of the
      // scale, so the round-trip error is at most half a grid step.
      ASSERT_LE(std::abs(x[i] - back[i]), scale * 0.5f + 1e-7f)
          << "trial " << trial << " element " << i << " x=" << x[i];
      ASSERT_GE(q[i], -127);
      ASSERT_LE(q[i], 127);
    }
  }
}

TEST(QuantizeTest, ScaleIsMaxAbsOver127AndZeroForZeroInput) {
  const float x[4] = {0.5f, -2.54f, 1.0f, 0.0f};
  EXPECT_FLOAT_EQ(ComputeScale(x, 4), 2.54f / 127.0f);
  const float zeros[3] = {0.0f, 0.0f, 0.0f};
  EXPECT_EQ(ComputeScale(zeros, 3), 0.0f);
  EXPECT_EQ(ComputeScale(nullptr, 0), 0.0f);
}

TEST(QuantizeTest, NegationIsExact) {
  // Symmetric range (-127..127, never -128): q(-x) == -q(x) exactly.
  Rng rng(7);
  std::vector<float> x = RandomVec(257, 3.0f, &rng);
  const float scale = ComputeScale(x.data(), 257);
  std::vector<float> neg(x.size());
  for (size_t i = 0; i < x.size(); ++i) neg[i] = -x[i];
  std::vector<int8_t> qx(x.size()), qn(x.size());
  Quantize(x.data(), 257, scale, qx.data());
  Quantize(neg.data(), 257, scale, qn.data());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(static_cast<int>(qn[i]), -static_cast<int>(qx[i])) << i;
  }
}

TEST(QuantizeTest, QuantizeTransposedMatchesManualTranspose) {
  Rng rng(31);
  const int k = 9, n = 5;
  std::vector<float> w = RandomVec(static_cast<int64_t>(k) * n, 1.0f, &rng);
  const QuantizedTensor qt = QuantizeTransposed(w.data(), k, n);
  ASSERT_EQ(qt.rows, n);
  ASSERT_EQ(qt.cols, k);
  const float scale = ComputeScale(w.data(), static_cast<int64_t>(k) * n);
  EXPECT_FLOAT_EQ(qt.scale, scale);
  std::vector<int8_t> qw(w.size());
  Quantize(w.data(), static_cast<int64_t>(k) * n, scale, qw.data());
  for (int t = 0; t < k; ++t) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(qt.data[static_cast<size_t>(j) * k + t],
                qw[static_cast<size_t>(t) * n + j])
          << "t=" << t << " j=" << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Int8 GEMM kernels vs an exact scalar reference. Shapes include 1, odd,
// prime, and >32 reduction dims so both the 32-wide vector body and the
// scalar tail are exercised.
// ---------------------------------------------------------------------------

struct GemmShape {
  int m, d, n;
};

const GemmShape kShapes[] = {{1, 1, 1},  {1, 16, 3},  {3, 17, 5},
                             {4, 32, 4}, {5, 33, 7},  {2, 63, 2},
                             {7, 64, 9}, {6, 100, 11}, {3, 257, 8}};

TEST(GemmI8Test, NtMatchesScalarReference) {
  Rng rng(201);
  for (const GemmShape& s : kShapes) {
    std::vector<int8_t> a = RandomI8(static_cast<int64_t>(s.m) * s.d, &rng);
    std::vector<int8_t> b = RandomI8(static_cast<int64_t>(s.n) * s.d, &rng);
    std::vector<int32_t> c(static_cast<size_t>(s.m) * s.n, 5);
    std::vector<int32_t> want(c);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        int32_t acc = 0;
        for (int t = 0; t < s.d; ++t) {
          acc += static_cast<int32_t>(a[static_cast<size_t>(i) * s.d + t]) *
                 static_cast<int32_t>(b[static_cast<size_t>(j) * s.d + t]);
        }
        want[static_cast<size_t>(i) * s.n + j] += acc;
      }
    }
    kernels::GemmNTI8(a.data(), s.d, b.data(), s.d, c.data(), s.n, s.n, s.d, 0, s.m);
    EXPECT_EQ(c, want) << "shape " << s.m << "x" << s.d << "x" << s.n;
  }
}

TEST(GemmI8Test, NnMatchesScalarReference) {
  Rng rng(202);
  for (const GemmShape& s : kShapes) {
    std::vector<int8_t> a = RandomI8(static_cast<int64_t>(s.m) * s.d, &rng);
    std::vector<int8_t> b = RandomI8(static_cast<int64_t>(s.d) * s.n, &rng);
    std::vector<int32_t> c(static_cast<size_t>(s.m) * s.n, -3);
    std::vector<int32_t> want(c);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        int32_t acc = 0;
        for (int t = 0; t < s.d; ++t) {
          acc += static_cast<int32_t>(a[static_cast<size_t>(i) * s.d + t]) *
                 static_cast<int32_t>(b[static_cast<size_t>(t) * s.n + j]);
        }
        want[static_cast<size_t>(i) * s.n + j] += acc;
      }
    }
    kernels::GemmNNI8(a.data(), s.d, b.data(), s.n, c.data(), s.n, s.d, s.n, 0, s.m);
    EXPECT_EQ(c, want) << "shape " << s.m << "x" << s.d << "x" << s.n;
  }
}

TEST(GemmI8Test, TnMatchesScalarReference) {
  Rng rng(203);
  for (const GemmShape& s : kShapes) {
    // A is [d, m] (transposed operand), B is [d, n], C is [m, n].
    std::vector<int8_t> a = RandomI8(static_cast<int64_t>(s.d) * s.m, &rng);
    std::vector<int8_t> b = RandomI8(static_cast<int64_t>(s.d) * s.n, &rng);
    std::vector<int32_t> c(static_cast<size_t>(s.m) * s.n, 1);
    std::vector<int32_t> want(c);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        int32_t acc = 0;
        for (int t = 0; t < s.d; ++t) {
          acc += static_cast<int32_t>(a[static_cast<size_t>(t) * s.m + i]) *
                 static_cast<int32_t>(b[static_cast<size_t>(t) * s.n + j]);
        }
        want[static_cast<size_t>(i) * s.n + j] += acc;
      }
    }
    kernels::GemmTNI8(a.data(), s.m, b.data(), s.n, c.data(), s.n, s.d, s.n, 0, s.m);
    EXPECT_EQ(c, want) << "shape " << s.m << "x" << s.d << "x" << s.n;
  }
}

TEST(GemmI8Test, RowPartitionsComposeExactly) {
  // The plan executor splits GEMMs into [r0, r1) row ranges across workers;
  // int32 accumulation makes any split bit-identical to the full run.
  Rng rng(204);
  const int m = 9, d = 77, n = 6;
  std::vector<int8_t> a = RandomI8(static_cast<int64_t>(m) * d, &rng);
  std::vector<int8_t> b = RandomI8(static_cast<int64_t>(n) * d, &rng);
  std::vector<int32_t> full(static_cast<size_t>(m) * n, 0);
  kernels::GemmNTI8(a.data(), d, b.data(), d, full.data(), n, n, d, 0, m);
  std::vector<int32_t> split(static_cast<size_t>(m) * n, 0);
  kernels::GemmNTI8(a.data(), d, b.data(), d, split.data(), n, n, d, 0, 4);
  kernels::GemmNTI8(a.data(), d, b.data(), d, split.data(), n, n, d, 4, 7);
  kernels::GemmNTI8(a.data(), d, b.data(), d, split.data(), n, n, d, 7, m);
  EXPECT_EQ(split, full);
}

// ---------------------------------------------------------------------------
// LinearI8Forward: quantized linear vs the fp32 product.
// ---------------------------------------------------------------------------

/// Analytic error bound for one output element of the quantized product:
/// with |a_i - sa*qa_i| <= sa/2 and |w_i - sw*qw_i| <= sw/2 and operand
/// magnitudes at most 127*scale, the per-term error is at most
/// sa*sw*(127/2 + 127/2 + 1/4) < 128*sa*sw, so the dot over k terms is
/// within k*128*sa*sw of the exact fp32 value.
float LinearTolerance(int k, float sa, float sw) {
  return 128.0f * sa * sw * static_cast<float>(k);
}

TEST(LinearI8Test, TracksFp32WithinAnalyticBound) {
  Rng rng(301);
  const GemmShape shapes[] = {{1, 8, 4}, {5, 33, 7}, {12, 96, 24}};
  for (const GemmShape& s : shapes) {
    std::vector<float> a =
        RandomVec(static_cast<int64_t>(s.m) * s.d, 0.9f, &rng);
    std::vector<float> w =
        RandomVec(static_cast<int64_t>(s.d) * s.n, 0.2f, &rng);
    const QuantizedTensor qw = QuantizeTransposed(w.data(), s.d, s.n);
    std::vector<float> scratch(LinearI8ScratchFloats(s.m, s.d, s.n));
    std::vector<float> c(static_cast<size_t>(s.m) * s.n,
                         123.0f);  // must be overwritten
    LinearI8Forward(a.data(), qw, c.data(), s.m, s.d, s.n, scratch.data());
    const float sa =
        ComputeScale(a.data(), static_cast<int64_t>(s.m) * s.d);
    const float tol = LinearTolerance(s.d, sa, qw.scale);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        float exact = 0.0f;
        for (int t = 0; t < s.d; ++t) {
          exact += a[static_cast<size_t>(i) * s.d + t] *
                   w[static_cast<size_t>(t) * s.n + j];
        }
        ASSERT_NEAR(c[static_cast<size_t>(i) * s.n + j], exact, tol)
            << "shape " << s.m << "x" << s.d << "x" << s.n << " (" << i
            << "," << j << ")";
      }
    }
  }
}

TEST(LinearI8Test, ZeroActivationsOrWeightsYieldExactZero) {
  const int m = 3, k = 8, n = 2;
  std::vector<float> zeros(static_cast<size_t>(m) * k, 0.0f);
  Rng rng(302);
  std::vector<float> w = RandomVec(static_cast<int64_t>(k) * n, 1.0f, &rng);
  const QuantizedTensor qw = QuantizeTransposed(w.data(), k, n);
  std::vector<float> scratch(LinearI8ScratchFloats(m, k, n));
  std::vector<float> c(static_cast<size_t>(m) * n, 9.0f);
  LinearI8Forward(zeros.data(), qw, c.data(), m, k, n, scratch.data());
  for (float v : c) EXPECT_EQ(v, 0.0f);

  std::vector<float> a = RandomVec(static_cast<int64_t>(m) * k, 1.0f, &rng);
  std::vector<float> wz(static_cast<size_t>(k) * n, 0.0f);
  const QuantizedTensor qz = QuantizeTransposed(wz.data(), k, n);
  std::fill(c.begin(), c.end(), 9.0f);
  LinearI8Forward(a.data(), qz, c.data(), m, k, n, scratch.data());
  for (float v : c) EXPECT_EQ(v, 0.0f);
}

TEST(LinearI8Test, BitIdenticalAcrossThreadCounts) {
  Rng rng(303);
  const int m = 40, k = 64, n = 48;  // big enough to actually parallelize
  std::vector<float> a = RandomVec(static_cast<int64_t>(m) * k, 1.0f, &rng);
  std::vector<float> w = RandomVec(static_cast<int64_t>(k) * n, 0.3f, &rng);
  const QuantizedTensor qw = QuantizeTransposed(w.data(), k, n);
  std::vector<float> scratch(LinearI8ScratchFloats(m, k, n));

  ThreadPool::Global().SetNumThreads(1);
  std::vector<float> serial(static_cast<size_t>(m) * n);
  LinearI8Forward(a.data(), qw, serial.data(), m, k, n, scratch.data());

  ThreadPool::Global().SetNumThreads(4);
  std::vector<float> parallel(static_cast<size_t>(m) * n);
  LinearI8Forward(a.data(), qw, parallel.data(), m, k, n, scratch.data());
  ThreadPool::Global().SetNumThreads(1);

  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace quant
}  // namespace resuformer
