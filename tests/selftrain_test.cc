#include <gtest/gtest.h>

#include <algorithm>

#include "distant/dictionary.h"
#include "distant/ner_dataset.h"
#include "resumegen/corpus.h"
#include "selftrain/ner_model.h"
#include "selftrain/self_distill.h"

namespace resuformer {
namespace selftrain {
namespace {

NerModelConfig TinyNerConfig(int vocab) {
  NerModelConfig cfg;
  cfg.hidden = 16;
  cfg.layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = vocab;
  cfg.max_tokens = 60;
  cfg.lstm_hidden = 12;
  return cfg;
}

struct NerFixture {
  NerFixture() {
    resumegen::CorpusConfig ccfg;
    ccfg.pretrain_docs = 8;
    ccfg.train_docs = 2;
    ccfg.val_docs = 1;
    ccfg.test_docs = 1;
    ccfg.seed = 9;
    corpus = resumegen::GenerateCorpus(ccfg);
    tokenizer = std::make_unique<text::WordPieceTokenizer>(
        resumegen::TrainTokenizer(corpus, 700));

    distant::NerDatasetConfig ncfg;
    ncfg.train_sequences = 120;
    ncfg.val_sequences = 25;
    ncfg.test_sequences = 25;
    ncfg.augment_fraction = 0.1;
    dictionary = distant::BuildDictionaries(distant::DictionaryConfig{});
    data = distant::BuildNerDataset(ncfg, dictionary);
  }

  resumegen::Corpus corpus;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  distant::EntityDictionary dictionary;
  distant::NerDataset data;
};

NerFixture& GetFixture() {
  static NerFixture* fx = new NerFixture();
  return *fx;
}

TEST(EncodeWordsForNerTest, FirstPieceConvention) {
  auto& fx = GetFixture();
  NerModelConfig cfg = TinyNerConfig(fx.tokenizer->vocab().size());
  const std::vector<int> ids =
      EncodeWordsForNer({"Email:", "john", "x"}, *fx.tokenizer, cfg);
  EXPECT_EQ(ids.size(), 3u);  // one id per word, regardless of pieces
}

TEST(EncodeWordsForNerTest, TruncatesToMaxTokens) {
  auto& fx = GetFixture();
  NerModelConfig cfg = TinyNerConfig(fx.tokenizer->vocab().size());
  cfg.max_tokens = 4;
  std::vector<std::string> words(20, "work");
  EXPECT_EQ(EncodeWordsForNer(words, *fx.tokenizer, cfg).size(), 4u);
}

TEST(NerModelTest, PredictWordsCoversBlocksLongerThanMaxTokens) {
  auto& fx = GetFixture();
  NerModelConfig cfg = TinyNerConfig(fx.tokenizer->vocab().size());
  cfg.max_tokens = 8;
  Rng rng(21);
  NerModel model(cfg, &rng);
  model.SetTraining(false);

  // 3.5 windows' worth of words: Predict() alone can only see the first 8,
  // PredictWords must label every one.
  std::vector<std::string> words;
  for (int i = 0; i < 28; ++i) {
    words.push_back(i % 3 == 0 ? "work" : (i % 3 == 1 ? "at" : "acme"));
  }
  const std::vector<int> labels = model.PredictWords(words, *fx.tokenizer);
  ASSERT_EQ(labels.size(), words.size());
  for (int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, cfg.num_labels);
  }

  // Within each window, PredictWords agrees with a direct Predict on that
  // window's encoding: windowing only partitions, it never re-contextualizes.
  for (size_t begin = 0; begin < words.size();
       begin += static_cast<size_t>(cfg.max_tokens)) {
    const size_t end =
        std::min(begin + static_cast<size_t>(cfg.max_tokens), words.size());
    const std::vector<std::string> window(words.begin() + begin,
                                          words.begin() + end);
    const std::vector<int> ids = EncodeWordsForNer(window, *fx.tokenizer, cfg);
    const std::vector<int> want = model.Predict(ids);
    const std::vector<int> got(labels.begin() + begin, labels.begin() + end);
    EXPECT_EQ(got, want) << "window at " << begin;
  }
}

TEST(NerModelTest, LogitsShape) {
  auto& fx = GetFixture();
  NerModelConfig cfg = TinyNerConfig(fx.tokenizer->vocab().size());
  Rng rng(1);
  NerModel model(cfg, &rng);
  model.SetTraining(false);
  NoGradGuard guard;
  Tensor logits = model.Logits({5, 6, 7, 8}, nullptr);
  EXPECT_EQ(logits.rows(), 4);
  EXPECT_EQ(logits.cols(), doc::kNumEntityIobLabels);
}

TEST(NerModelTest, ProbabilitiesAreDistributions) {
  auto& fx = GetFixture();
  NerModelConfig cfg = TinyNerConfig(fx.tokenizer->vocab().size());
  Rng rng(2);
  NerModel model(cfg, &rng);
  model.SetTraining(false);
  Tensor probs = model.Probabilities({5, 6, 7});
  for (int t = 0; t < 3; ++t) {
    float total = 0.0f;
    for (int c = 0; c < probs.cols(); ++c) total += probs.at(t, c);
    EXPECT_NEAR(total, 1.0f, 1e-4f);
  }
}

TEST(SelfDistillTest, TeacherOnlyTrainsAboveChance) {
  auto& fx = GetFixture();
  NerModelConfig cfg = TinyNerConfig(fx.tokenizer->vocab().size());
  SelfTrainOptions options;
  options.teacher_epochs = 8;
  options.teacher_patience = 8;
  options.self_distillation = false;  // teacher only
  Rng rng(3);
  SelfDistillTrainer trainer(cfg, options, fx.tokenizer.get(), &rng);
  SelfTrainResult result = trainer.Train(fx.data.train, fx.data.val);
  ASSERT_NE(result.model, nullptr);
  const double f1 = trainer.EvaluateSpanF1(*result.model, fx.data.test);
  EXPECT_GT(f1, 0.25);
}

TEST(SelfDistillTest, FullLoopAtLeastMatchesTeacher) {
  auto& fx = GetFixture();
  NerModelConfig cfg = TinyNerConfig(fx.tokenizer->vocab().size());

  SelfTrainOptions teacher_only;
  teacher_only.teacher_epochs = 5;
  teacher_only.self_distillation = false;
  Rng rng1(4);
  SelfDistillTrainer t1(cfg, teacher_only, fx.tokenizer.get(), &rng1);
  const SelfTrainResult teacher = t1.Train(fx.data.train, fx.data.val);

  SelfTrainOptions full;
  full.teacher_epochs = 5;
  full.iterations = 2;
  Rng rng2(4);
  SelfDistillTrainer t2(cfg, full, fx.tokenizer.get(), &rng2);
  const SelfTrainResult student = t2.Train(fx.data.train, fx.data.val);

  // The self-distillation loop keeps the best-on-validation model, so it
  // can never end below the teacher's validation score.
  EXPECT_GE(student.best_val_f1 + 1e-9, teacher.best_val_f1);
}

TEST(SelfDistillTest, HardLabelVariantRuns) {
  auto& fx = GetFixture();
  NerModelConfig cfg = TinyNerConfig(fx.tokenizer->vocab().size());
  SelfTrainOptions options;
  options.teacher_epochs = 2;
  options.iterations = 1;
  options.soft_labels = false;       // w/o SL
  options.confidence_selection = false;  // w/o HCS
  Rng rng(5);
  SelfDistillTrainer trainer(cfg, options, fx.tokenizer.get(), &rng);
  SelfTrainResult result = trainer.Train(fx.data.train, fx.data.val);
  ASSERT_NE(result.model, nullptr);
  EXPECT_GE(result.best_val_f1, 0.0);
}

}  // namespace
}  // namespace selftrain
}  // namespace resuformer
