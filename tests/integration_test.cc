#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/block_classifier.h"
#include "core/inference_plan.h"
#include "pipeline/pipeline.h"

namespace resuformer {
namespace pipeline {
namespace {

/// Strict recursive-descent JSON parser (RFC 8259 grammar, no extensions):
/// rejects trailing commas, unquoted keys, unescaped control characters and
/// trailing garbage. Decoded strings are collected in encounter order so
/// tests can assert round-tripping of escaped text.
class StrictJsonParser {
 public:
  explicit StrictJsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input as one JSON value; false on any violation.
  bool Parse() {
    pos_ = 0;
    strings_.clear();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString(nullptr);
      default:
        return ParseLiteralOrNumber();
    }
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') return false;
      if (!ParseString(nullptr)) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      if (!ParseValue()) return false;
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    std::string decoded;
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        strings_.push_back(decoded);
        if (out != nullptr) *out = decoded;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': decoded.push_back('"'); break;
          case '\\': decoded.push_back('\\'); break;
          case '/': decoded.push_back('/'); break;
          case 'b': decoded.push_back('\b'); break;
          case 'f': decoded.push_back('\f'); break;
          case 'n': decoded.push_back('\n'); break;
          case 'r': decoded.push_back('\r'); break;
          case 't': decoded.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + i];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              code = code * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                      ? h - '0'
                                      : (std::tolower(h) - 'a' + 10));
            }
            pos_ += 4;
            if (code > 0x7f) return false;  // tests only emit ASCII escapes
            decoded.push_back(static_cast<char>(code));
            break;
          }
          default:
            return false;
        }
        continue;
      }
      decoded.push_back(static_cast<char>(c));
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseLiteralOrNumber() {
    static const char* kLiterals[] = {"true", "false", "null"};
    for (const char* lit : kLiterals) {
      const size_t n = std::string(lit).size();
      if (text_.compare(pos_, n, lit) == 0) {
        pos_ += n;
        return true;
      }
    }
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::vector<std::string> strings_;
};

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  for (const std::string& s : haystack) {
    if (s == needle) return true;
  }
  return false;
}

PipelineOptions TinyOptions() {
  PipelineOptions options;
  options.model.hidden = 16;
  options.model.sentence_layers = 1;
  options.model.document_layers = 1;
  options.model.num_heads = 2;
  options.model.ffn = 32;
  options.model.max_tokens_per_sentence = 12;
  options.model.max_sentences = 32;
  options.model.lstm_hidden = 12;
  options.ner.hidden = 16;
  options.ner.layers = 1;
  options.ner.num_heads = 2;
  options.ner.ffn = 32;
  options.ner.max_tokens = 60;
  options.ner.lstm_hidden = 8;
  options.vocab_size = 600;
  options.pretrain_epochs = 1;
  options.finetune.epochs = 10;
  options.finetune.patience = 10;
  options.selftrain.teacher_epochs = 5;
  options.selftrain.teacher_patience = 5;
  options.selftrain.iterations = 1;
  options.ner_data.train_sequences = 80;
  options.ner_data.val_sequences = 20;
  options.ner_data.test_sequences = 20;
  return options;
}

TEST(PipelineJsonTest, PrettyStringIsStrictJsonAndRoundTripsEscapes) {
  // Every class of character the escaper must handle: quotes, backslashes,
  // newlines, tabs, and a raw control byte. The old renderer spliced these
  // into the output verbatim, producing unparseable JSON.
  const std::string nasty_line =
      "C++ \"wizard\" \\ backslash\nnewline\ttab \x01 ctl";
  const std::string nasty_entity = "Acme \"Corp\" \\ Inc.";
  StructuredResume resume;
  StructuredBlock work;
  work.tag = doc::BlockTag::kWorkExp;
  work.lines = {nasty_line, "plain line"};
  work.entities.push_back(
      StructuredEntity{doc::EntityTag::kCompany, nasty_entity});
  resume.blocks.push_back(work);
  // A second block with the same tag: tags repeat in real resumes, which is
  // why blocks must be an array, not object keys.
  StructuredBlock work2;
  work2.tag = doc::BlockTag::kWorkExp;
  work2.lines = {"second stint"};
  resume.blocks.push_back(work2);

  const std::string pretty = ResuFormerPipeline::ToPrettyString(resume);
  StrictJsonParser parser(pretty);
  ASSERT_TRUE(parser.Parse()) << pretty;

  // The escaped strings must decode back to the original bytes.
  EXPECT_TRUE(Contains(parser.strings(), nasty_line)) << pretty;
  EXPECT_TRUE(Contains(parser.strings(), nasty_entity)) << pretty;
  EXPECT_TRUE(Contains(parser.strings(), "plain line"));
  EXPECT_TRUE(Contains(parser.strings(), "second stint"));
  EXPECT_TRUE(Contains(parser.strings(), "blocks"));
  EXPECT_TRUE(Contains(parser.strings(), doc::BlockTagName(work.tag)));
  EXPECT_TRUE(
      Contains(parser.strings(), doc::EntityTagName(doc::EntityTag::kCompany)));

  // Empty resume is valid JSON too.
  const std::string empty_pretty = ResuFormerPipeline::ToPrettyString({});
  StrictJsonParser empty_parser(empty_pretty);
  EXPECT_TRUE(empty_parser.Parse()) << empty_pretty;
}

TEST(PipelineIntegrationTest, EndToEndTrainAndParse) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 6;
  ccfg.train_docs = 10;
  ccfg.val_docs = 4;
  ccfg.test_docs = 3;
  ccfg.seed = 77;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);

  TrainReport report;
  auto pipeline =
      ResuFormerPipeline::TrainFromCorpus(corpus, TinyOptions(), &report);
  ASSERT_NE(pipeline, nullptr);
  EXPECT_GT(report.block_val_accuracy, 0.3);  // far above the 1/17 chance
  EXPECT_GT(report.ner_val_f1, 0.1);

  const StructuredResume parsed =
      pipeline->Parse(corpus.test[0].document);
  EXPECT_FALSE(parsed.blocks.empty());
  // At least one entity should be extracted somewhere in the resume.
  int entities = 0;
  for (const StructuredBlock& b : parsed.blocks) {
    entities += static_cast<int>(b.entities.size());
  }
  EXPECT_GT(entities, 0);

  const std::string pretty = ResuFormerPipeline::ToPrettyString(parsed);
  EXPECT_NE(pretty.find("lines"), std::string::npos);
  StrictJsonParser pretty_parser(pretty);
  EXPECT_TRUE(pretty_parser.Parse()) << pretty;

  // Save/Load round-trip: the reloaded pipeline must reproduce the same
  // parse on the same document.
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(pipeline->Save(dir).ok());
  auto loaded = ResuFormerPipeline::Load(dir, TinyOptions());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const StructuredResume reparsed =
      (*loaded)->Parse(corpus.test[0].document);
  ASSERT_EQ(reparsed.blocks.size(), parsed.blocks.size());
  for (size_t i = 0; i < parsed.blocks.size(); ++i) {
    EXPECT_EQ(reparsed.blocks[i].tag, parsed.blocks[i].tag);
    EXPECT_EQ(reparsed.blocks[i].entities.size(),
              parsed.blocks[i].entities.size());
  }

  // Static inference-plan path: a pipeline loaded with the plan knob on
  // must produce a bit-identical StructuredResume at a serial pool.
  ThreadPool::Global().SetNumThreads(1);
  PipelineOptions plan_options = TinyOptions();
  plan_options.model.runtime.use_inference_plan = true;
  auto planned = ResuFormerPipeline::Load(dir, plan_options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  for (const auto& labeled : corpus.test) {
    const StructuredResume dynamic_parse = (*loaded)->Parse(labeled.document);
    const StructuredResume plan_parse = (*planned)->Parse(labeled.document);
    ASSERT_EQ(plan_parse.blocks.size(), dynamic_parse.blocks.size());
    for (size_t i = 0; i < plan_parse.blocks.size(); ++i) {
      EXPECT_EQ(plan_parse.blocks[i].tag, dynamic_parse.blocks[i].tag);
      EXPECT_EQ(plan_parse.blocks[i].lines, dynamic_parse.blocks[i].lines);
      ASSERT_EQ(plan_parse.blocks[i].entities.size(),
                dynamic_parse.blocks[i].entities.size());
      for (size_t e = 0; e < plan_parse.blocks[i].entities.size(); ++e) {
        EXPECT_EQ(plan_parse.blocks[i].entities[e].tag,
                  dynamic_parse.blocks[i].entities[e].tag);
        EXPECT_EQ(plan_parse.blocks[i].entities[e].text,
                  dynamic_parse.blocks[i].entities[e].text);
      }
    }
  }

  // ----- Int8 accuracy gate (PR 7) -----------------------------------------
  // Quantized inference must stay within a stated tolerance of fp32 on this
  // corpus: block sentence-label accuracy within kBlockAccuracyTolerance
  // (absolute), and the entity outputs — whose NER model itself never
  // quantizes, so any drift comes from block segmentation — within
  // kNerF1Tolerance of exact agreement with the fp32 parse.
  constexpr double kBlockAccuracyTolerance = 0.02;
  constexpr double kNerF1Tolerance = 0.02;

  PipelineOptions int8_options = TinyOptions();
  int8_options.model.runtime.use_int8 = true;
  auto int8_pipe = ResuFormerPipeline::Load(dir, int8_options);
  ASSERT_TRUE(int8_pipe.ok()) << int8_pipe.status().ToString();

  std::vector<core::LabeledDocument> gate_docs;
  for (const auto& labeled : corpus.val) {
    gate_docs.push_back(core::MakeLabeledDocument(
        labeled.document, (*loaded)->tokenizer(), TinyOptions().model));
  }
  for (const auto& labeled : corpus.test) {
    gate_docs.push_back(core::MakeLabeledDocument(
        labeled.document, (*loaded)->tokenizer(), TinyOptions().model));
  }
  const double fp32_acc =
      core::SentenceLabelAccuracy((*loaded)->block_classifier(), gate_docs);
  core::InferencePlanner int8_planner(&(*int8_pipe)->block_classifier());
  int correct = 0, total = 0;
  for (const core::LabeledDocument& ex : gate_docs) {
    if (ex.document.sentences.empty()) continue;
    const std::vector<int> pred = int8_planner.Predict(ex.document);
    for (size_t i = 0; i < pred.size() && i < ex.labels.size(); ++i) {
      correct += pred[i] == ex.labels[i];
      ++total;
    }
  }
  ASSERT_GT(total, 0);
  const double int8_acc = static_cast<double>(correct) / total;
  EXPECT_GE(int8_acc, fp32_acc - kBlockAccuracyTolerance)
      << "int8 block accuracy regressed beyond tolerance: fp32=" << fp32_acc
      << " int8=" << int8_acc << " delta=" << (fp32_acc - int8_acc);

  // Entity agreement: exact (block tag, entity tag, text) matches between
  // the int8 and fp32 parses, scored as F1 with fp32 as reference.
  int64_t matched = 0, int8_total = 0, fp32_total = 0;
  for (const auto& labeled : corpus.test) {
    const StructuredResume fp = (*loaded)->Parse(labeled.document);
    const StructuredResume qp = (*int8_pipe)->Parse(labeled.document);
    std::vector<std::string> fp_entities, qp_entities;
    for (const StructuredBlock& b : fp.blocks) {
      for (const StructuredEntity& e : b.entities) {
        fp_entities.push_back(doc::BlockTagName(b.tag) + "/" +
                              doc::EntityTagName(e.tag) + "/" + e.text);
      }
    }
    for (const StructuredBlock& b : qp.blocks) {
      for (const StructuredEntity& e : b.entities) {
        qp_entities.push_back(doc::BlockTagName(b.tag) + "/" +
                              doc::EntityTagName(e.tag) + "/" + e.text);
      }
    }
    std::sort(fp_entities.begin(), fp_entities.end());
    std::sort(qp_entities.begin(), qp_entities.end());
    std::vector<std::string> common;
    std::set_intersection(fp_entities.begin(), fp_entities.end(),
                          qp_entities.begin(), qp_entities.end(),
                          std::back_inserter(common));
    matched += static_cast<int64_t>(common.size());
    int8_total += static_cast<int64_t>(qp_entities.size());
    fp32_total += static_cast<int64_t>(fp_entities.size());
  }
  ASSERT_GT(fp32_total, 0);
  const double precision =
      int8_total > 0 ? static_cast<double>(matched) / int8_total : 0.0;
  const double recall = static_cast<double>(matched) / fp32_total;
  const double entity_f1 = (precision + recall) > 0
                               ? 2 * precision * recall / (precision + recall)
                               : 0.0;
  EXPECT_GE(entity_f1, 1.0 - kNerF1Tolerance)
      << "int8 entity agreement F1 drifted beyond tolerance: F1="
      << entity_f1 << " delta=" << (1.0 - entity_f1) << " (" << matched
      << " matched, " << int8_total << " int8, " << fp32_total << " fp32)";
  // Measured values recorded in EXPERIMENTS.md; printed so a gate run
  // always shows the deltas, not just on failure.
  std::cout << "[int8-gate] block accuracy fp32=" << fp32_acc
            << " int8=" << int8_acc << " entity_f1=" << entity_f1 << "\n";

  // ----- RFP3 mmap'd checkpoints (PR 7) ------------------------------------
  // Re-save with save_rfp3: the zero-copy mmap load must parse identically
  // to the stream-loaded fp32 pipeline.
  const std::string rfp3_dir = dir + "/rfp3_ckpt";
  ::mkdir(rfp3_dir.c_str(), 0755);
  PipelineOptions rfp3_options = TinyOptions();
  rfp3_options.model.runtime.save_rfp3 = true;
  auto rfp3_saver = ResuFormerPipeline::Load(dir, rfp3_options);
  ASSERT_TRUE(rfp3_saver.ok()) << rfp3_saver.status().ToString();
  ASSERT_TRUE((*rfp3_saver)->Save(rfp3_dir).ok());
  auto mmap_pipe = ResuFormerPipeline::Load(rfp3_dir, TinyOptions());
  ASSERT_TRUE(mmap_pipe.ok()) << mmap_pipe.status().ToString();
  for (const auto& labeled : corpus.test) {
    const StructuredResume stream_parse = (*loaded)->Parse(labeled.document);
    const StructuredResume mmap_parse = (*mmap_pipe)->Parse(labeled.document);
    ASSERT_EQ(mmap_parse.blocks.size(), stream_parse.blocks.size());
    for (size_t i = 0; i < mmap_parse.blocks.size(); ++i) {
      EXPECT_EQ(mmap_parse.blocks[i].tag, stream_parse.blocks[i].tag);
      EXPECT_EQ(mmap_parse.blocks[i].lines, stream_parse.blocks[i].lines);
      ASSERT_EQ(mmap_parse.blocks[i].entities.size(),
                stream_parse.blocks[i].entities.size());
      for (size_t e = 0; e < mmap_parse.blocks[i].entities.size(); ++e) {
        EXPECT_EQ(mmap_parse.blocks[i].entities[e].tag,
                  stream_parse.blocks[i].entities[e].tag);
        EXPECT_EQ(mmap_parse.blocks[i].entities[e].text,
                  stream_parse.blocks[i].entities[e].text);
      }
    }
  }

  // Save wrote an architecture manifest alongside the parameters.
  std::ifstream manifest(dir + "/manifest.txt");
  ASSERT_TRUE(manifest.good());
  std::string magic;
  manifest >> magic;
  EXPECT_EQ(magic, "RFMANIFEST");

  // Loading with mismatched dimensions must fail up front with a message
  // naming the offending field, not deserialize garbage.
  PipelineOptions wrong = TinyOptions();
  wrong.model.hidden = 24;
  auto mismatched = ResuFormerPipeline::Load(dir, wrong);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatched.status().message().find("model_hidden"),
            std::string::npos)
      << mismatched.status().ToString();

  PipelineOptions wrong_ner = TinyOptions();
  wrong_ner.ner.lstm_hidden = 99;
  auto ner_mismatched = ResuFormerPipeline::Load(dir, wrong_ner);
  ASSERT_FALSE(ner_mismatched.ok());
  EXPECT_NE(ner_mismatched.status().message().find("ner_lstm_hidden"),
            std::string::npos)
      << ner_mismatched.status().ToString();

  // A checkpoint predating the manifest (legacy layout) still loads: the
  // options are trusted, as before this format existed.
  ASSERT_EQ(std::remove((dir + "/manifest.txt").c_str()), 0);
  auto legacy = ResuFormerPipeline::Load(dir, TinyOptions());
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  const StructuredResume legacy_parsed =
      (*legacy)->Parse(corpus.test[0].document);
  EXPECT_EQ(legacy_parsed.blocks.size(), parsed.blocks.size());
}

TEST(PipelineIntegrationTest, LoadFromMissingDirectoryFails) {
  auto loaded = ResuFormerPipeline::Load("/nonexistent/path", TinyOptions());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace pipeline
}  // namespace resuformer
