#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "pipeline/pipeline.h"

namespace resuformer {
namespace pipeline {
namespace {

PipelineOptions TinyOptions() {
  PipelineOptions options;
  options.model.hidden = 16;
  options.model.sentence_layers = 1;
  options.model.document_layers = 1;
  options.model.num_heads = 2;
  options.model.ffn = 32;
  options.model.max_tokens_per_sentence = 12;
  options.model.max_sentences = 32;
  options.model.lstm_hidden = 12;
  options.ner.hidden = 16;
  options.ner.layers = 1;
  options.ner.num_heads = 2;
  options.ner.ffn = 32;
  options.ner.max_tokens = 60;
  options.ner.lstm_hidden = 8;
  options.vocab_size = 600;
  options.pretrain_epochs = 1;
  options.finetune.epochs = 10;
  options.finetune.patience = 10;
  options.selftrain.teacher_epochs = 5;
  options.selftrain.teacher_patience = 5;
  options.selftrain.iterations = 1;
  options.ner_data.train_sequences = 80;
  options.ner_data.val_sequences = 20;
  options.ner_data.test_sequences = 20;
  return options;
}

TEST(PipelineIntegrationTest, EndToEndTrainAndParse) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 6;
  ccfg.train_docs = 10;
  ccfg.val_docs = 4;
  ccfg.test_docs = 3;
  ccfg.seed = 77;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);

  TrainReport report;
  auto pipeline =
      ResuFormerPipeline::TrainFromCorpus(corpus, TinyOptions(), &report);
  ASSERT_NE(pipeline, nullptr);
  EXPECT_GT(report.block_val_accuracy, 0.3);  // far above the 1/17 chance
  EXPECT_GT(report.ner_val_f1, 0.1);

  const StructuredResume parsed =
      pipeline->Parse(corpus.test[0].document);
  EXPECT_FALSE(parsed.blocks.empty());
  // At least one entity should be extracted somewhere in the resume.
  int entities = 0;
  for (const StructuredBlock& b : parsed.blocks) {
    entities += static_cast<int>(b.entities.size());
  }
  EXPECT_GT(entities, 0);

  const std::string pretty = ResuFormerPipeline::ToPrettyString(parsed);
  EXPECT_NE(pretty.find("lines"), std::string::npos);

  // Save/Load round-trip: the reloaded pipeline must reproduce the same
  // parse on the same document.
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(pipeline->Save(dir).ok());
  auto loaded = ResuFormerPipeline::Load(dir, TinyOptions());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const StructuredResume reparsed =
      (*loaded)->Parse(corpus.test[0].document);
  ASSERT_EQ(reparsed.blocks.size(), parsed.blocks.size());
  for (size_t i = 0; i < parsed.blocks.size(); ++i) {
    EXPECT_EQ(reparsed.blocks[i].tag, parsed.blocks[i].tag);
    EXPECT_EQ(reparsed.blocks[i].entities.size(),
              parsed.blocks[i].entities.size());
  }

  // Save wrote an architecture manifest alongside the parameters.
  std::ifstream manifest(dir + "/manifest.txt");
  ASSERT_TRUE(manifest.good());
  std::string magic;
  manifest >> magic;
  EXPECT_EQ(magic, "RFMANIFEST");

  // Loading with mismatched dimensions must fail up front with a message
  // naming the offending field, not deserialize garbage.
  PipelineOptions wrong = TinyOptions();
  wrong.model.hidden = 24;
  auto mismatched = ResuFormerPipeline::Load(dir, wrong);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatched.status().message().find("model_hidden"),
            std::string::npos)
      << mismatched.status().ToString();

  PipelineOptions wrong_ner = TinyOptions();
  wrong_ner.ner.lstm_hidden = 99;
  auto ner_mismatched = ResuFormerPipeline::Load(dir, wrong_ner);
  ASSERT_FALSE(ner_mismatched.ok());
  EXPECT_NE(ner_mismatched.status().message().find("ner_lstm_hidden"),
            std::string::npos)
      << ner_mismatched.status().ToString();

  // A checkpoint predating the manifest (legacy layout) still loads: the
  // options are trusted, as before this format existed.
  ASSERT_EQ(std::remove((dir + "/manifest.txt").c_str()), 0);
  auto legacy = ResuFormerPipeline::Load(dir, TinyOptions());
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  const StructuredResume legacy_parsed =
      (*legacy)->Parse(corpus.test[0].document);
  EXPECT_EQ(legacy_parsed.blocks.size(), parsed.blocks.size());
}

TEST(PipelineIntegrationTest, LoadFromMissingDirectoryFails) {
  auto loaded = ResuFormerPipeline::Load("/nonexistent/path", TinyOptions());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace pipeline
}  // namespace resuformer
