// Property-based tests: randomized invariants swept with parameterized
// gtest (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <cmath>

#include "crf/fuzzy_crf.h"
#include "crf/linear_crf.h"
#include "doc/document.h"
#include "eval/block_metrics.h"
#include "eval/entity_metrics.h"
#include "gradcheck.h"
#include "resumegen/entity_pools.h"
#include "resumegen/renderer.h"
#include "tensor/ops.h"
#include "text/normalizer.h"
#include "text/wordpiece.h"

namespace resuformer {
namespace {

using resuformer::testing::GradCheck;

// ---------------------------------------------------------------- softmax

class SoftmaxPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoftmaxPropertyTest, ShiftInvariantAndNormalized) {
  Rng rng(GetParam());
  Tensor x = Tensor::Randn({3, 7}, &rng, 3.0f);
  Tensor shifted = ops::AddScalar(x, 17.5f);
  Tensor a = ops::Softmax(x);
  Tensor b = ops::Softmax(shifted);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-5f);
  }
  for (int r = 0; r < 3; ++r) {
    float total = 0.0f;
    for (int c = 0; c < 7; ++c) total += a.at(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------ CRF sweeps

struct CrfShape {
  int t_len;
  int num_labels;
};

class CrfGradSweepTest : public ::testing::TestWithParam<CrfShape> {};

TEST_P(CrfGradSweepTest, EmissionGradMatchesFiniteDifference) {
  const CrfShape shape = GetParam();
  Rng rng(shape.t_len * 31 + shape.num_labels);
  crf::LinearCrf crf(shape.num_labels, &rng);
  Tensor e = Tensor::Randn({shape.t_len, shape.num_labels}, &rng);
  std::vector<int> labels(shape.t_len);
  for (int t = 0; t < shape.t_len; ++t) {
    labels[t] = rng.UniformInt(shape.num_labels);
  }
  EXPECT_LT(GradCheck(e, [&]() { return crf.NegLogLikelihood(e, labels); }),
            5e-2);
}

TEST_P(CrfGradSweepTest, ViterbiPathScoresAtLeastRandomPaths) {
  const CrfShape shape = GetParam();
  Rng rng(shape.t_len * 77 + shape.num_labels);
  crf::LinearCrf crf(shape.num_labels, &rng);
  Tensor e = Tensor::Randn({shape.t_len, shape.num_labels}, &rng, 2.0f);
  const std::vector<int> best = crf.Decode(e);
  NoGradGuard guard;
  // NLL(best) must be <= NLL(random) for any path (same partition function,
  // so comparing NLLs compares path scores).
  const float best_nll = crf.NegLogLikelihood(e, best).item();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> random_path(shape.t_len);
    for (int t = 0; t < shape.t_len; ++t) {
      random_path[t] = rng.UniformInt(shape.num_labels);
    }
    EXPECT_LE(best_nll,
              crf.NegLogLikelihood(e, random_path).item() + 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CrfGradSweepTest,
                         ::testing::Values(CrfShape{1, 3}, CrfShape{2, 2},
                                           CrfShape{4, 3}, CrfShape{6, 5},
                                           CrfShape{9, 4}));

class FuzzyCrfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzyCrfPropertyTest, MarginalLossNeverExceedsExactLoss) {
  // Any allowed-set lattice containing the gold path admits at least as
  // much probability mass as the single gold path, so the marginal NLL is
  // a lower bound of the exact NLL.
  Rng rng(GetParam());
  crf::FuzzyCrf crf(4, &rng);
  const int t_len = 5;
  Tensor e = Tensor::Randn({t_len, 4}, &rng);
  std::vector<int> gold(t_len);
  std::vector<std::vector<bool>> allowed(t_len, std::vector<bool>(4, false));
  for (int t = 0; t < t_len; ++t) {
    gold[t] = rng.UniformInt(4);
    allowed[t][gold[t]] = true;
    // Randomly widen the set.
    for (int l = 0; l < 4; ++l) {
      if (rng.Bernoulli(0.4)) allowed[t][l] = true;
    }
  }
  NoGradGuard guard;
  EXPECT_LE(crf.MarginalNegLogLikelihood(e, allowed).item(),
            crf.NegLogLikelihood(e, gold).item() + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzyCrfPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// -------------------------------------------------------- tokenizer props

class TokenizerRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerRoundTripTest, DecodeEncodeRecoversNormalizedText) {
  Rng rng(GetParam());
  // Train on a random sample of generator vocabulary.
  std::vector<std::string> words;
  for (int i = 0; i < 300; ++i) {
    const auto& pool = resumegen::Skills();
    words.push_back(pool[rng.UniformInt(static_cast<int>(pool.size()))]);
  }
  auto tok = text::WordPieceTokenizer::Train(words, 2000, 1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto& pool = resumegen::Skills();
    const std::string w =
        pool[rng.UniformInt(static_cast<int>(pool.size()))];
    const std::vector<int> ids = tok.Encode(w);
    // All training-set words must round-trip without [UNK].
    for (int id : ids) EXPECT_NE(id, text::kUnkId) << w;
    // Decoding reproduces the normalized form (lowercase, punct split).
    std::string expected;
    for (const std::string& piece : text::BasicTokenize(w)) {
      if (!expected.empty()) expected += " ";
      expected += piece;
    }
    EXPECT_EQ(tok.Decode(ids), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerRoundTripTest,
                         ::testing::Values(21, 22, 23, 24));

// ----------------------------------------------------- IOB/blocks duality

class IobBlocksPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IobBlocksPropertyTest, BlocksRoundTripThroughLabels) {
  Rng rng(GetParam());
  // Random IOB sequence -> blocks -> canonical labels -> blocks is a fixed
  // point (the canonicalization is idempotent).
  const int n = 12;
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = rng.UniformInt(doc::kNumIobLabels);
  }
  const auto blocks = doc::Document::BlocksFromLabels(labels);
  std::vector<int> canonical(n, doc::kOutsideLabel);
  for (const doc::Block& b : blocks) {
    for (int i = b.first_sentence; i <= b.last_sentence; ++i) {
      canonical[i] = doc::IobLabel(b.tag, i == b.first_sentence);
    }
  }
  const auto blocks2 = doc::Document::BlocksFromLabels(canonical);
  ASSERT_EQ(blocks.size(), blocks2.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].tag, blocks2[i].tag);
    EXPECT_EQ(blocks[i].first_sentence, blocks2[i].first_sentence);
    EXPECT_EQ(blocks[i].last_sentence, blocks2[i].last_sentence);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IobBlocksPropertyTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

// --------------------------------------------------------- metric duality

class MetricIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricIdentityTest, PerfectPredictionsScorePerfectly) {
  Rng rng(GetParam());
  const resumegen::GeneratedResume resume = resumegen::GenerateResume(&rng);
  eval::BlockScorer scorer;
  scorer.Add(resume.document, resume.document.sentence_labels);
  EXPECT_NEAR(scorer.Overall().f1, 1.0, 1e-9);
  EXPECT_NEAR(scorer.Overall().precision, 1.0, 1e-9);
  EXPECT_NEAR(scorer.Overall().recall, 1.0, 1e-9);

  eval::EntityScorer entity_scorer;
  for (size_t s = 0; s < resume.entity_labels.size(); ++s) {
    entity_scorer.Add(resume.entity_labels[s], resume.entity_labels[s]);
  }
  EXPECT_NEAR(entity_scorer.Overall().f1, 1.0, 1e-9);
}

TEST_P(MetricIdentityTest, AllOutsidePredictionsScoreZeroRecall) {
  Rng rng(GetParam() + 100);
  const resumegen::GeneratedResume resume = resumegen::GenerateResume(&rng);
  eval::BlockScorer scorer;
  scorer.Add(resume.document,
             std::vector<int>(resume.document.NumSentences(),
                              doc::kOutsideLabel));
  EXPECT_EQ(scorer.Overall().recall, 0.0);
  EXPECT_EQ(scorer.Overall().f1, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricIdentityTest,
                         ::testing::Values(41, 42, 43, 44, 45));

// -------------------------------------------------- generator invariants

class GeneratorSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSweepTest, DocumentsAreWellFormed) {
  Rng rng(GetParam());
  const resumegen::GeneratedResume r = resumegen::GenerateResume(&rng);
  const doc::Document& d = r.document;
  ASSERT_EQ(d.sentences.size(), d.sentence_labels.size());
  ASSERT_EQ(d.sentences.size(), r.entity_labels.size());
  // Geometry: tokens in page bounds, sentences' boxes cover their tokens.
  for (int s = 0; s < d.NumSentences(); ++s) {
    const doc::Sentence& sentence = d.sentences[s];
    for (const doc::Token& t : sentence.tokens) {
      EXPECT_GE(t.box.x0, 0.0f);
      EXPECT_LE(t.box.x1, d.page_width + 1.0f);
      EXPECT_GE(t.box.y1, t.box.y0);
      EXPECT_GE(sentence.box.x0 - 0.01f, -1.0f);
      EXPECT_LE(t.box.x0 + 0.01f, sentence.box.x1 + 1.0f);
    }
  }
  // Entity IOB labels are internally consistent: within a sentence, I-x
  // follows B-x or I-x of the same tag. A sentence-initial I-x is legal —
  // it continues an entity wrapped from the previous visual line — and the
  // previous sentence must then end with the same tag.
  for (size_t sent = 0; sent < r.entity_labels.size(); ++sent) {
    const auto& sent_labels = r.entity_labels[sent];
    for (size_t i = 0; i < sent_labels.size(); ++i) {
      doc::EntityTag tag;
      bool begin;
      if (doc::ParseEntityIobLabel(sent_labels[i], &tag, &begin) && !begin) {
        doc::EntityTag prev_tag;
        bool prev_begin;
        if (i > 0) {
          ASSERT_TRUE(doc::ParseEntityIobLabel(sent_labels[i - 1], &prev_tag,
                                               &prev_begin));
          EXPECT_EQ(prev_tag, tag);
        } else {
          ASSERT_GT(sent, 0u);
          const auto& prev = r.entity_labels[sent - 1];
          ASSERT_FALSE(prev.empty());
          ASSERT_TRUE(doc::ParseEntityIobLabel(prev.back(), &prev_tag,
                                               &prev_begin));
          EXPECT_EQ(prev_tag, tag);
        }
      }
    }
  }
  // Block labels: every I-x is preceded (in sentence order) by B-x or I-x
  // of the same tag, except wrapped continuations which the renderer emits
  // consistently by construction.
  const auto blocks = doc::Document::BlocksFromLabels(d.sentence_labels);
  EXPECT_FALSE(blocks.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweepTest,
                         ::testing::Range<uint64_t>(100, 120));

// ---------------------------------------------------- layer-norm algebra

class LayerNormPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LayerNormPropertyTest, OutputRowsAreStandardizedForUnitGain) {
  Rng rng(GetParam());
  Tensor x = Tensor::Randn({4, 16}, &rng, 7.0f);
  Tensor gamma = Tensor::Full({16}, 1.0f);
  Tensor beta = Tensor::Zeros({16});
  Tensor y = ops::LayerNormOp(x, gamma, beta);
  for (int r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (int c = 0; c < 16; ++c) mean += y.at(r, c);
    mean /= 16;
    for (int c = 0; c < 16; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayerNormPropertyTest,
                         ::testing::Values(51, 52, 53, 54));

}  // namespace
}  // namespace resuformer
