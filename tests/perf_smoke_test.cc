// Bounded-runtime smoke tests for the inference fast path (ctest label
// perf_smoke): one batched-inference iteration over generated resumes,
// asserting the fused attention path matches the composed reference within
// 1e-5 and that ParseBatch reproduces serial Parse exactly.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/hierarchical_encoder.h"
#include "pipeline/pipeline.h"
#include "resumegen/corpus.h"
#include "tensor/arena.h"

namespace resuformer {
namespace {

resumegen::Corpus SmallCorpus() {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 4;
  ccfg.train_docs = 6;
  ccfg.val_docs = 2;
  ccfg.test_docs = 4;
  ccfg.seed = 99;
  return resumegen::GenerateCorpus(ccfg);
}

core::ResuFormerConfig SmallModelConfig() {
  core::ResuFormerConfig cfg;
  cfg.hidden = 16;
  cfg.sentence_layers = 1;
  cfg.document_layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.max_tokens_per_sentence = 12;
  cfg.max_sentences = 32;
  cfg.lstm_hidden = 12;
  return cfg;
}

TEST(PerfSmokeTest, BatchedInferenceFusedMatchesReference) {
  const resumegen::Corpus corpus = SmallCorpus();
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 400);

  core::ResuFormerConfig fused_cfg = SmallModelConfig();
  fused_cfg.vocab_size = tokenizer.vocab().size();
  fused_cfg.runtime.use_fused_attention = true;
  core::ResuFormerConfig ref_cfg = fused_cfg;
  ref_cfg.runtime.use_fused_attention = false;

  // Same seed -> identical weights; only the attention execution path
  // differs.
  Rng rng_fused(5), rng_ref(5);
  core::HierarchicalEncoder fused(fused_cfg, &rng_fused);
  core::HierarchicalEncoder reference(ref_cfg, &rng_ref);
  fused.SetTraining(false);
  reference.SetTraining(false);

  std::vector<core::EncodedDocument> docs;
  for (const resumegen::GeneratedResume& r : corpus.test) {
    docs.push_back(core::EncodeForModel(r.document, tokenizer, fused_cfg));
  }
  ASSERT_FALSE(docs.empty());

  // Reference pass, serial over documents.
  std::vector<Tensor> ref_out(docs.size());
  {
    NoGradGuard no_grad;
    for (size_t i = 0; i < docs.size(); ++i) {
      ref_out[i] = reference.Encode(docs[i], nullptr);
    }
  }

  // One batched fused-inference iteration: documents fanned across the
  // pool, per-worker NoGradGuard (the same mechanics as
  // ResuFormerPipeline::ParseBatch).
  std::vector<Tensor> fused_out(docs.size());
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(docs.size()),
      [&](int /*worker*/, int64_t begin, int64_t end) {
        NoGradGuard no_grad;
        for (int64_t i = begin; i < end; ++i) {
          fused_out[i] = fused.Encode(docs[i], nullptr);
        }
      });

  for (size_t d = 0; d < docs.size(); ++d) {
    ASSERT_TRUE(fused_out[d].defined());
    ASSERT_EQ(fused_out[d].shape(), ref_out[d].shape());
    for (int64_t i = 0; i < ref_out[d].size(); ++i) {
      ASSERT_NEAR(fused_out[d].data()[i], ref_out[d].data()[i], 1e-5f)
          << "doc " << d << " element " << i;
    }
  }
}

TEST(PerfSmokeTest, ParseBatchMatchesSerialParse) {
  const resumegen::Corpus corpus = SmallCorpus();

  pipeline::PipelineOptions options;
  options.model = SmallModelConfig();
  options.ner.hidden = 16;
  options.ner.layers = 1;
  options.ner.num_heads = 2;
  options.ner.ffn = 32;
  options.ner.max_tokens = 40;
  options.ner.lstm_hidden = 8;
  options.vocab_size = 400;
  options.pretrain_epochs = 1;
  options.pretrain_batch = 2;
  options.finetune.epochs = 2;
  options.finetune.patience = 2;
  options.selftrain.teacher_epochs = 1;
  options.selftrain.teacher_patience = 1;
  options.selftrain.iterations = 1;
  options.ner_data.train_sequences = 20;
  options.ner_data.val_sequences = 8;
  options.ner_data.test_sequences = 8;

  auto pipeline =
      pipeline::ResuFormerPipeline::TrainFromCorpus(corpus, options, nullptr);
  ASSERT_NE(pipeline, nullptr);

  std::vector<doc::Document> documents;
  for (const resumegen::GeneratedResume& r : corpus.test) {
    documents.push_back(r.document);
  }

  const std::vector<pipeline::StructuredResume> batched =
      pipeline->ParseBatch(documents);
  ASSERT_EQ(batched.size(), documents.size());
  for (size_t d = 0; d < documents.size(); ++d) {
    const pipeline::StructuredResume serial = pipeline->Parse(documents[d]);
    ASSERT_EQ(batched[d].blocks.size(), serial.blocks.size()) << "doc " << d;
    for (size_t b = 0; b < serial.blocks.size(); ++b) {
      EXPECT_EQ(batched[d].blocks[b].tag, serial.blocks[b].tag);
      EXPECT_EQ(batched[d].blocks[b].lines, serial.blocks[b].lines);
      ASSERT_EQ(batched[d].blocks[b].entities.size(),
                serial.blocks[b].entities.size());
      for (size_t e = 0; e < serial.blocks[b].entities.size(); ++e) {
        EXPECT_EQ(batched[d].blocks[b].entities[e].tag,
                  serial.blocks[b].entities[e].tag);
        EXPECT_EQ(batched[d].blocks[b].entities[e].text,
                  serial.blocks[b].entities[e].text);
      }
    }
  }

  // Inference must not leak arena buffers: everything acquired during the
  // batched parse has been returned (live model parameters are accounted in
  // the baseline taken before the parse would be — compare deltas instead).
  const int64_t outstanding_before = TensorArena::Global().stats().outstanding;
  { pipeline->ParseBatch(documents); }
  EXPECT_EQ(TensorArena::Global().stats().outstanding, outstanding_before);

  // ParseWithStats returns the same resume as Parse plus sane measurements,
  // and enabling the full observability stack must not change results.
  metrics::MetricsRegistry::Global().SetEnabled(true);
  trace::TraceRecorder::Global().SetEnabled(true);
  const pipeline::ParseResult with_stats =
      pipeline->ParseWithStats(documents[0]);
  metrics::MetricsRegistry::Global().SetEnabled(false);
  trace::TraceRecorder::Global().SetEnabled(false);
  trace::TraceRecorder::Global().Reset();
  const pipeline::StructuredResume plain = pipeline->Parse(documents[0]);
  ASSERT_EQ(with_stats.resume.blocks.size(), plain.blocks.size());
  EXPECT_EQ(with_stats.stats.num_blocks,
            static_cast<int>(plain.blocks.size()));
  EXPECT_GT(with_stats.stats.num_sentences, 0);
  EXPECT_GT(with_stats.stats.wall_time_us, 0.0);
  EXPECT_GE(with_stats.stats.arena_hit_rate, 0.0);
  EXPECT_LE(with_stats.stats.arena_hit_rate, 1.0);
}

TEST(PerfSmokeTest, DisabledInstrumentationIsCheap) {
  // The off-path contract: a disabled TRACE_SPAN is one relaxed atomic load
  // and a branch. 10M of them must finish far inside a second even on a
  // loaded CI machine (the real <2% regression gate rides on bench_micro's
  // BENCH_MICRO.json; this guards against order-of-magnitude mistakes like
  // reading the clock while disabled).
  trace::TraceRecorder::Global().SetEnabled(false);
  metrics::MetricsRegistry::Global().SetEnabled(false);
  constexpr int kIterations = 10'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    TRACE_SPAN("perf.noop");
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Sanitizers instrument every atomic load, inflating the off-path by an
  // order of magnitude on their own; keep the guard meaningful there
  // without making it flaky on a loaded single-core runner.
#if !defined(RF_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define RF_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define RF_UNDER_SANITIZER 1
#endif
#if defined(RF_UNDER_SANITIZER)
  constexpr double kBudgetSeconds = 10.0;
#else
  constexpr double kBudgetSeconds = 1.0;
#endif
  EXPECT_LT(seconds, kBudgetSeconds)
      << "disabled TRACE_SPAN is not near-zero cost";
}

}  // namespace
}  // namespace resuformer
