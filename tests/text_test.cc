#include <gtest/gtest.h>

#include <cstdio>

#include "text/normalizer.h"
#include "text/vocab.h"
#include "text/wordpiece.h"

namespace resuformer {
namespace text {
namespace {

TEST(VocabTest, SpecialTokensAtFixedIds) {
  Vocab v;
  EXPECT_EQ(v.Id(kPadToken), kPadId);
  EXPECT_EQ(v.Id(kUnkToken), kUnkId);
  EXPECT_EQ(v.Id(kClsToken), kClsId);
  EXPECT_EQ(v.Id(kSepToken), kSepId);
  EXPECT_EQ(v.Id(kMaskToken), kMaskId);
  EXPECT_EQ(v.size(), 5);
}

TEST(VocabTest, AddTokenIdempotent) {
  Vocab v;
  const int id1 = v.AddToken("hello");
  const int id2 = v.AddToken("hello");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(v.Token(id1), "hello");
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.Id("nonexistent"), kUnkId);
  EXPECT_FALSE(v.Contains("nonexistent"));
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocab v;
  v.AddToken("alpha");
  v.AddToken("##beta");
  const std::string path = ::testing::TempDir() + "/vocab.txt";
  ASSERT_TRUE(v.Save(path).ok());
  auto loaded = Vocab::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), v.size());
  EXPECT_EQ(loaded->Id("alpha"), v.Id("alpha"));
  EXPECT_EQ(loaded->Id("##beta"), v.Id("##beta"));
  std::remove(path.c_str());
}

TEST(NormalizerTest, LowercasesAndSplitsPunct) {
  const auto pieces = BasicTokenize("B.Sc, 2019");
  ASSERT_EQ(pieces.size(), 5u);
  EXPECT_EQ(pieces[0], "b");
  EXPECT_EQ(pieces[1], ".");
  EXPECT_EQ(pieces[2], "sc");
  EXPECT_EQ(pieces[3], ",");
  EXPECT_EQ(pieces[4], "2019");
}

TEST(NormalizerTest, NormalizeForMatchStripsPunct) {
  EXPECT_EQ(NormalizeForMatch("Co.-LTD"), "coltd");
  EXPECT_EQ(NormalizeForMatch("  A B "), "ab");
}

TEST(WordPieceTest, TrainCoversTrainingWords) {
  std::vector<std::string> words;
  for (int i = 0; i < 10; ++i) {
    words.push_back("engineer");
    words.push_back("engineering");
    words.push_back("software");
  }
  auto tok = WordPieceTokenizer::Train(words, 500, 2);
  const auto ids = tok.EncodeWord("engineer");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(tok.vocab().Token(ids[0]), "engineer");
}

TEST(WordPieceTest, UnseenWordsFallBackToSubwords) {
  std::vector<std::string> words;
  for (int i = 0; i < 10; ++i) {
    words.push_back("testing");
    words.push_back("coding");
  }
  auto tok = WordPieceTokenizer::Train(words, 500, 2);
  // "bling" was never seen whole; must decompose via chars/suffixes, not UNK,
  // since all its characters appear in training words.
  const auto ids = tok.EncodeWord("ting");
  EXPECT_GE(ids.size(), 1u);
  for (int id : ids) EXPECT_NE(id, kUnkId);
}

TEST(WordPieceTest, UnknownCharactersYieldUnk) {
  auto tok = WordPieceTokenizer::Train({"abc", "abc"}, 100, 1);
  const auto ids = tok.EncodeWord("xyz");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], kUnkId);
}

TEST(WordPieceTest, EncodeSplitsPunctuation) {
  std::vector<std::string> words = {"john", "john", "doe", "doe", "com",
                                    "com", "example", "example"};
  auto tok = WordPieceTokenizer::Train(words, 500, 2);
  const auto ids = tok.Encode("john.doe");
  // "john", ".", "doe"
  EXPECT_EQ(ids.size(), 3u);
}

TEST(WordPieceTest, DecodeMergesContinuations) {
  std::vector<std::string> words;
  for (int i = 0; i < 5; ++i) words.push_back("resume");
  auto tok = WordPieceTokenizer::Train(words, 500, 2);
  const auto ids = tok.Encode("resume resume");
  EXPECT_EQ(tok.Decode(ids), "resume resume");
}

TEST(WordPieceTest, GreedyLongestMatchFirst) {
  // If both "work" and "working" are in vocab, "working" must win.
  std::vector<std::string> words;
  for (int i = 0; i < 10; ++i) {
    words.push_back("work");
    words.push_back("working");
  }
  auto tok = WordPieceTokenizer::Train(words, 500, 2);
  const auto ids = tok.EncodeWord("working");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(tok.vocab().Token(ids[0]), "working");
}

TEST(WordPieceTest, MaxVocabRespected) {
  std::vector<std::string> words;
  for (int i = 0; i < 200; ++i) {
    words.push_back("word" + std::to_string(i));
    words.push_back("word" + std::to_string(i));
  }
  auto tok = WordPieceTokenizer::Train(words, 120, 2);
  EXPECT_LE(tok.vocab().size(), 120);
}

}  // namespace
}  // namespace text
}  // namespace resuformer
