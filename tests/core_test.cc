#include <gtest/gtest.h>

#include "core/block_classifier.h"
#include "core/distiller.h"
#include "core/hierarchical_encoder.h"
#include "core/pretrainer.h"
#include "resumegen/corpus.h"
#include "tensor/ops.h"

namespace resuformer {
namespace core {
namespace {

/// Tiny config for unit tests.
ResuFormerConfig TinyConfig(int vocab) {
  ResuFormerConfig cfg;
  cfg.hidden = 16;
  cfg.sentence_layers = 1;
  cfg.document_layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.max_tokens_per_sentence = 12;
  cfg.max_sentences = 24;
  cfg.vocab_size = vocab;
  cfg.lstm_hidden = 12;
  cfg.mllm_sentences_per_doc = 2;
  return cfg;
}

struct Fixture {
  Fixture() : corpus(MakeCorpus()), tokenizer(MakeTokenizer(corpus)) {}

  static resumegen::Corpus MakeCorpus() {
    resumegen::CorpusConfig cfg;
    cfg.pretrain_docs = 6;
    cfg.train_docs = 6;
    cfg.val_docs = 3;
    cfg.test_docs = 3;
    cfg.seed = 5;
    return resumegen::GenerateCorpus(cfg);
  }
  static text::WordPieceTokenizer MakeTokenizer(
      const resumegen::Corpus& corpus) {
    return resumegen::TrainTokenizer(corpus, 600);
  }

  resumegen::Corpus corpus;
  text::WordPieceTokenizer tokenizer;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

TEST(EncodeForModelTest, ShapesAndTruncation) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  const doc::Document& document = fx.corpus.train[0].document;
  EncodedDocument enc = EncodeForModel(document, fx.tokenizer, cfg);
  EXPECT_LE(static_cast<int>(enc.sentences.size()), cfg.max_sentences);
  EXPECT_GT(enc.sentences.size(), 0u);
  for (const EncodedSentence& s : enc.sentences) {
    EXPECT_LE(static_cast<int>(s.token_ids.size()),
              cfg.max_tokens_per_sentence);
    EXPECT_EQ(s.token_ids[0], text::kClsId);
    EXPECT_EQ(s.token_ids.size(), s.token_layout.size());
    EXPECT_EQ(s.visual.size(), static_cast<size_t>(doc::kVisualFeatureDim));
    for (const LayoutTuple& t : s.token_layout) {
      for (int v : t) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 1000);
      }
    }
  }
}

TEST(HierarchicalEncoderTest, OutputShapes) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  Rng rng(1);
  HierarchicalEncoder encoder(cfg, &rng);
  encoder.SetTraining(false);
  EncodedDocument enc =
      EncodeForModel(fx.corpus.train[0].document, fx.tokenizer, cfg);
  NoGradGuard guard;
  Tensor h_star = encoder.EncodeSentences(enc, nullptr);
  EXPECT_EQ(h_star.rows(), static_cast<int>(enc.sentences.size()));
  EXPECT_EQ(h_star.cols(), cfg.hidden);
  Tensor contextual = encoder.EncodeDocument(h_star, enc, nullptr);
  EXPECT_EQ(contextual.rows(), h_star.rows());
  EXPECT_EQ(contextual.cols(), cfg.hidden);
}

TEST(HierarchicalEncoderTest, VocabLogitsTiedToEmbedding) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  Rng rng(2);
  HierarchicalEncoder encoder(cfg, &rng);
  encoder.SetTraining(false);
  EncodedDocument enc =
      EncodeForModel(fx.corpus.train[0].document, fx.tokenizer, cfg);
  NoGradGuard guard;
  Tensor states =
      encoder.SentenceTokenStates(enc.sentences[0],
                                  enc.sentences[0].token_ids, nullptr);
  Tensor logits = encoder.VocabLogits(states);
  EXPECT_EQ(logits.rows(), static_cast<int>(enc.sentences[0].token_ids.size()));
  EXPECT_EQ(logits.cols(), cfg.vocab_size);
}

TEST(PretrainerTest, LossDecreasesOverSteps) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  Rng rng(3);
  HierarchicalEncoder encoder(cfg, &rng);
  Pretrainer pretrainer(&encoder, &rng);

  std::vector<EncodedDocument> docs;
  for (int i = 0; i < 4; ++i) {
    docs.push_back(EncodeForModel(fx.corpus.pretrain[i].document,
                                  fx.tokenizer, cfg));
  }
  std::vector<Tensor> params = encoder.Parameters();
  for (const Tensor& p : pretrainer.OwnParameters()) params.push_back(p);
  nn::Adam adam(params, 2e-3f);
  std::vector<const EncodedDocument*> batch;
  for (const auto& d : docs) batch.push_back(&d);

  double first_losses = 0.0, last_losses = 0.0;
  const int steps = 12;
  for (int s = 0; s < steps; ++s) {
    const PretrainStats stats = pretrainer.Step(batch, &adam);
    EXPECT_GT(stats.total_loss, 0.0);
    if (s < 3) first_losses += stats.total_loss;
    if (s >= steps - 3) last_losses += stats.total_loss;
  }
  EXPECT_LT(last_losses, first_losses);
}

TEST(PretrainerTest, AblationsDisableObjectives) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  Rng rng(4);
  HierarchicalEncoder encoder(cfg, &rng);
  PretrainObjectives obj;
  obj.mllm = false;
  Pretrainer pretrainer(&encoder, &rng, obj);
  std::vector<EncodedDocument> docs = {
      EncodeForModel(fx.corpus.pretrain[0].document, fx.tokenizer, cfg)};
  std::vector<Tensor> params = encoder.Parameters();
  for (const Tensor& p : pretrainer.OwnParameters()) params.push_back(p);
  nn::Adam adam(params, 1e-3f);
  const PretrainStats stats = pretrainer.Step({&docs[0]}, &adam);
  EXPECT_EQ(stats.mllm_loss, 0.0);
  EXPECT_GT(stats.scl_loss + stats.dnsp_loss, 0.0);
}

TEST(BlockClassifierTest, PredictShapeMatchesSentences) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  Rng rng(5);
  BlockClassifier model(cfg, &rng);
  model.SetTraining(false);
  LabeledDocument ex = MakeLabeledDocument(fx.corpus.train[0].document,
                                           fx.tokenizer, cfg);
  const std::vector<int> pred = model.Predict(ex.document);
  EXPECT_EQ(pred.size(), ex.document.sentences.size());
  for (int label : pred) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, doc::kNumIobLabels);
  }
}

TEST(BlockClassifierTest, OverfitsTinyTrainingSet) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  Rng rng(6);
  BlockClassifier model(cfg, &rng);
  std::vector<LabeledDocument> train;
  for (int i = 0; i < 4; ++i) {
    train.push_back(MakeLabeledDocument(fx.corpus.train[i].document,
                                        fx.tokenizer, cfg));
  }
  FinetuneOptions options;
  options.epochs = 40;
  options.patience = 40;
  const double acc = FinetuneBlockClassifier(&model, train, train, options,
                                             &rng);
  EXPECT_GT(acc, 0.8);  // must be able to (nearly) memorize 4 documents
}

TEST(MakeLabeledDocumentTest, LabelsAlignWithTruncation) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  cfg.max_sentences = 5;  // force truncation
  LabeledDocument ex = MakeLabeledDocument(fx.corpus.train[0].document,
                                           fx.tokenizer, cfg);
  EXPECT_EQ(ex.document.sentences.size(), 5u);
  EXPECT_EQ(ex.labels.size(), 5u);
}

/// A trivial teacher that labels everything B-PInfo.
class ConstantTeacher : public SentenceLabeler {
 public:
  std::vector<int> LabelSentences(const doc::Document& d) const override {
    return std::vector<int>(d.NumSentences(),
                            doc::IobLabel(doc::BlockTag::kPInfo, true));
  }
};

TEST(KnowledgeDistillerTest, PseudoLabelsComeFromTeacher) {
  auto& fx = GetFixture();
  ResuFormerConfig cfg = TinyConfig(fx.tokenizer.vocab().size());
  KnowledgeDistiller distiller(&fx.tokenizer, cfg);
  ConstantTeacher teacher;
  std::vector<const doc::Document*> unlabeled = {
      &fx.corpus.pretrain[0].document};
  const auto pseudo = distiller.DistillPseudoLabels(teacher, unlabeled);
  ASSERT_EQ(pseudo.size(), 1u);
  EXPECT_EQ(pseudo[0].labels.size(), pseudo[0].document.sentences.size());
  for (int label : pseudo[0].labels) {
    EXPECT_EQ(label, doc::IobLabel(doc::BlockTag::kPInfo, true));
  }
}

}  // namespace
}  // namespace core
}  // namespace resuformer
