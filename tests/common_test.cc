#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/runtime_options.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace resuformer {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    RF_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(9);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(5);
  const std::vector<int> perm = rng.Permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  const std::vector<int> sample = rng.SampleWithoutReplacement(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  int count0 = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Categorical({9.0, 1.0}) == 0) ++count0;
  }
  EXPECT_NEAR(count0 / 10000.0, 0.9, 0.03);
}

TEST(StringUtilTest, SplitAndJoin) {
  const auto pieces = SplitString("a b\tc\nd");
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(JoinStrings(pieces, "-"), "a-b-c-d");
}

TEST(StringUtilTest, SplitDropsEmpty) {
  EXPECT_EQ(SplitString("  a   b  ").size(), 2u);
  EXPECT_TRUE(SplitString("").empty());
}

TEST(StringUtilTest, AffixChecks) {
  EXPECT_TRUE(StartsWith("##ing", "##"));
  EXPECT_FALSE(StartsWith("#", "##"));
  EXPECT_TRUE(EndsWith("Acme Co. LTD", "Co. LTD"));
}

TEST(StringUtilTest, StripAndLower) {
  EXPECT_EQ(StripAscii("  Hello \n"), "Hello");
  EXPECT_EQ(ToLowerAscii("MiXeD"), "mixed");
}

TEST(StringUtilTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
}

TEST(StringUtilTest, IsAsciiDigits) {
  EXPECT_TRUE(IsAsciiDigits("2019"));
  EXPECT_FALSE(IsAsciiDigits("20a9"));
  EXPECT_FALSE(IsAsciiDigits(""));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Tag", "F1"});
  t.AddRow({"PInfo", "91.75"});
  t.AddRow({"EduExp", "91.00"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| Tag    | F1    |"), std::string::npos);
  EXPECT_NE(s.find("| PInfo  | 91.75 |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string s = t.ToString();
  // Header sep + inserted sep + trailing sep + top = 4 separator lines.
  int count = 0;
  for (size_t pos = 0; (pos = s.find("+--", pos)) != std::string::npos; ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool& pool = ThreadPool::Global();
  pool.SetNumThreads(4);
  for (int64_t count : {1, 3, 4, 7, 1000}) {
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h = 0;
    pool.ParallelFor(count, [&](int /*worker*/, int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) ++hits[i];
    });
    for (int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << count;
    }
  }
  pool.SetNumThreads(1);
}

TEST(ThreadPoolTest, StaticPartitionIsDeterministic) {
  ThreadPool& pool = ThreadPool::Global();
  pool.SetNumThreads(3);
  auto partition = [&]() {
    std::vector<std::pair<int64_t, int64_t>> chunks(3, {-1, -1});
    pool.ParallelFor(100, [&](int worker, int64_t begin, int64_t end) {
      chunks[worker] = {begin, end};
    });
    return chunks;
  };
  const auto first = partition();
  // Chunks are contiguous, ordered by worker id, and stable across runs.
  EXPECT_EQ(first[0].first, 0);
  EXPECT_EQ(first[0].second, first[1].first);
  EXPECT_EQ(first[1].second, first[2].first);
  EXPECT_EQ(first[2].second, 100);
  for (int run = 0; run < 5; ++run) EXPECT_EQ(partition(), first);
  pool.SetNumThreads(1);
}

TEST(ThreadPoolTest, SetNumThreadsResizesAndSerialRunsInline) {
  ThreadPool& pool = ThreadPool::Global();
  pool.SetNumThreads(1);
  EXPECT_EQ(pool.NumThreads(), 1);
  // With one thread the body runs on the calling thread as a single chunk.
  int calls = 0;
  int64_t begin = -1, end = -1;
  pool.ParallelFor(42, [&](int worker, int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(worker, 0);
    begin = b;
    end = e;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, 42);
  pool.SetNumThreads(8);
  EXPECT_EQ(pool.NumThreads(), 8);
  pool.SetNumThreads(1);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

// Sets one environment variable for the duration of a scope and restores
// the previous value (or unsets) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(RuntimeOptionsEnvTest, UnsetAndEmptyKeepDefaults) {
  {
    ScopedEnv env("RESUFORMER_THREADS", nullptr);
    EXPECT_EQ(RuntimeOptions::FromEnv().threads, 0);
  }
  {
    ScopedEnv env("RESUFORMER_THREADS", "");
    EXPECT_EQ(RuntimeOptions::FromEnv().threads, 0);
  }
}

TEST(RuntimeOptionsEnvTest, ValidValueIsParsed) {
  ScopedEnv env("RESUFORMER_THREADS", "8");
  EXPECT_EQ(RuntimeOptions::FromEnv().threads, 8);
  EXPECT_EQ(DefaultThreadCount(), 8);
}

TEST(RuntimeOptionsEnvTest, NonNumericFallsBackWithoutAborting) {
  for (const char* bad : {"abc", "four", "1e3", "8x", "x8", "-", "+", " "}) {
    ScopedEnv env("RESUFORMER_THREADS", bad);
    EXPECT_EQ(RuntimeOptions::FromEnv().threads, 0) << "value: " << bad;
    EXPECT_GE(DefaultThreadCount(), 1) << "value: " << bad;
  }
}

TEST(RuntimeOptionsEnvTest, NegativeAndZeroFallBack) {
  for (const char* bad : {"-4", "0", "-2147483648"}) {
    ScopedEnv env("RESUFORMER_THREADS", bad);
    EXPECT_EQ(RuntimeOptions::FromEnv().threads, 0) << "value: " << bad;
    EXPECT_GE(DefaultThreadCount(), 1) << "value: " << bad;
  }
}

TEST(RuntimeOptionsEnvTest, OverflowFallsBackInsteadOfUB) {
  // std::atoi would be undefined here; the strict parser must fall back.
  for (const char* bad : {"99999999999999999999", "2147483648", "1000"}) {
    ScopedEnv env("RESUFORMER_THREADS", bad);
    EXPECT_EQ(RuntimeOptions::FromEnv().threads, 0) << "value: " << bad;
    EXPECT_GE(DefaultThreadCount(), 1) << "value: " << bad;
  }
}

TEST(RuntimeOptionsEnvTest, TraceCapacityRangeChecked) {
  {
    ScopedEnv env("RESUFORMER_TRACE_CAPACITY", "1024");
    EXPECT_EQ(RuntimeOptions::FromEnv().trace_buffer_capacity, 1024);
  }
  {
    // Below the minimum ring size: keep the default.
    ScopedEnv env("RESUFORMER_TRACE_CAPACITY", "2");
    EXPECT_EQ(RuntimeOptions::FromEnv().trace_buffer_capacity, 8192);
  }
}

TEST(RuntimeOptionsEnvTest, BoolKnobsParseCommonSpellings) {
  {
    ScopedEnv env("RESUFORMER_TENSOR_ARENA", "off");
    EXPECT_FALSE(RuntimeOptions::FromEnv().use_tensor_arena);
  }
  {
    ScopedEnv env("RESUFORMER_TENSOR_ARENA", "1");
    EXPECT_TRUE(RuntimeOptions::FromEnv().use_tensor_arena);
  }
  {
    ScopedEnv env("RESUFORMER_METRICS", "TRUE");
    EXPECT_TRUE(RuntimeOptions::FromEnv().enable_metrics);
  }
}

// ---------------------------------------------------------------------------
// Strict serving knobs (RESUFORMER_SERVE_*): unlike the lenient knobs above,
// malformed or out-of-range values surface an error naming the variable.
// ---------------------------------------------------------------------------

TEST(RuntimeOptionsServeEnvTest, UnsetKeepsDefaultsWithoutError) {
  ScopedEnv a("RESUFORMER_SERVE_MAX_BATCH", nullptr);
  ScopedEnv b("RESUFORMER_SERVE_MAX_QUEUE_DELAY_MS", nullptr);
  ScopedEnv c("RESUFORMER_SERVE_QUEUE_CAPACITY", nullptr);
  ScopedEnv d("RESUFORMER_SERVE_WORKERS", nullptr);
  Status error;
  const RuntimeOptions opts = RuntimeOptions::FromEnv(&error);
  EXPECT_TRUE(error.ok()) << error.ToString();
  EXPECT_EQ(opts.serve_max_batch, 8);
  EXPECT_EQ(opts.serve_max_queue_delay_ms, 5);
  EXPECT_EQ(opts.serve_queue_capacity, 256);
  EXPECT_EQ(opts.serve_workers, 2);
}

TEST(RuntimeOptionsServeEnvTest, ValidValuesPopulateEveryKnob) {
  ScopedEnv a("RESUFORMER_SERVE_MAX_BATCH", "32");
  ScopedEnv b("RESUFORMER_SERVE_MAX_QUEUE_DELAY_MS", "12");
  ScopedEnv c("RESUFORMER_SERVE_QUEUE_CAPACITY", "1024");
  ScopedEnv d("RESUFORMER_SERVE_WORKERS", "4");
  Status error;
  const RuntimeOptions opts = RuntimeOptions::FromEnv(&error);
  EXPECT_TRUE(error.ok()) << error.ToString();
  EXPECT_EQ(opts.serve_max_batch, 32);
  EXPECT_EQ(opts.serve_max_queue_delay_ms, 12);
  EXPECT_EQ(opts.serve_queue_capacity, 1024);
  EXPECT_EQ(opts.serve_workers, 4);
}

TEST(RuntimeOptionsServeEnvTest, MalformedValueNamesTheVariable) {
  for (const char* bad : {"0", "-1", "8x", "abc", "99999999999999999999"}) {
    ScopedEnv env("RESUFORMER_SERVE_MAX_BATCH", bad);
    Status error;
    const RuntimeOptions opts = RuntimeOptions::FromEnv(&error);
    EXPECT_EQ(opts.serve_max_batch, 8) << "value: " << bad;  // fallback kept
    ASSERT_FALSE(error.ok()) << "value: " << bad;
    EXPECT_NE(error.ToString().find("RESUFORMER_SERVE_MAX_BATCH"),
              std::string::npos)
        << error.ToString();
    EXPECT_NE(error.ToString().find(std::string("'") + bad + "'"),
              std::string::npos)
        << error.ToString();
  }
}

TEST(RuntimeOptionsServeEnvTest, ErrorMessageStatesTheAllowedRange) {
  ScopedEnv env("RESUFORMER_SERVE_WORKERS", "0");
  Status error;
  (void)RuntimeOptions::FromEnv(&error);
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.ToString().find("[1, 256]"), std::string::npos)
      << error.ToString();
}

TEST(RuntimeOptionsServeEnvTest, FirstErrorWinsAcrossKnobs) {
  ScopedEnv a("RESUFORMER_SERVE_MAX_BATCH", "bogus");
  ScopedEnv b("RESUFORMER_SERVE_WORKERS", "also-bogus");
  Status error;
  const RuntimeOptions opts = RuntimeOptions::FromEnv(&error);
  ASSERT_FALSE(error.ok());
  // The first strict knob in declaration order reports; the rest still fall
  // back to their defaults rather than compounding.
  EXPECT_NE(error.ToString().find("RESUFORMER_SERVE_MAX_BATCH"),
            std::string::npos)
      << error.ToString();
  EXPECT_EQ(opts.serve_max_batch, 8);
  EXPECT_EQ(opts.serve_workers, 2);
}

TEST(RuntimeOptionsServeEnvTest, NullErrorPointerDoesNotCrash) {
  ScopedEnv env("RESUFORMER_SERVE_QUEUE_CAPACITY", "-7");
  // Without an out-param the error is logged as a warning, not fatal.
  EXPECT_EQ(RuntimeOptions::FromEnv().serve_queue_capacity, 256);
}

TEST(StrictIntFromEnvTest, DirectParseAndRangeChecks) {
  {
    ScopedEnv env("RESUFORMER_TEST_STRICT_KNOB", "17");
    Status error;
    EXPECT_EQ(envparse::StrictIntFromEnv("RESUFORMER_TEST_STRICT_KNOB", 3, 1,
                                         100, &error),
              17);
    EXPECT_TRUE(error.ok());
  }
  {
    ScopedEnv env("RESUFORMER_TEST_STRICT_KNOB", "101");
    Status error;
    EXPECT_EQ(envparse::StrictIntFromEnv("RESUFORMER_TEST_STRICT_KNOB", 3, 1,
                                         100, &error),
              3);
    ASSERT_FALSE(error.ok());
    EXPECT_NE(error.ToString().find("[1, 100]"), std::string::npos)
        << error.ToString();
  }
  {
    // An already-set error is preserved: first error wins.
    ScopedEnv env("RESUFORMER_TEST_STRICT_KNOB", "junk");
    Status error = Status::InvalidArgument("earlier failure");
    EXPECT_EQ(envparse::StrictIntFromEnv("RESUFORMER_TEST_STRICT_KNOB", 3, 1,
                                         100, &error),
              3);
    EXPECT_NE(error.ToString().find("earlier failure"), std::string::npos);
  }
}

}  // namespace
}  // namespace resuformer
