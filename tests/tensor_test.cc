#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.h"
#include "gradcheck.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace resuformer {
namespace {

using testing::GradCheck;

constexpr double kTol = 5e-2;  // float32 + finite differences

Tensor RandTensor(std::vector<int> shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), &rng, scale);
}

TEST(TensorTest, FactoriesAndAccessors) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.rank(), 2);
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_EQ(z.size(), 6);
  EXPECT_EQ(z.at(1, 2), 0.0f);

  Tensor f = Tensor::Full({4}, 2.5f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(f.at(i), 2.5f);

  Tensor d = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(d.at(1, 0), 3.0f);
  EXPECT_EQ(d.ShapeString(), "[2, 2]");
}

TEST(TensorTest, DetachSharesNoHistory) {
  Tensor a = Tensor::Full({2}, 3.0f, /*requires_grad=*/true);
  Tensor b = ops::Scale(a, 2.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.at(0), 6.0f);
}

TEST(AutogradTest, TopologicalOrderVisitsParentsFirst) {
  Tensor a = Tensor::Full({1}, 1.0f, true);
  Tensor b = ops::Scale(a, 2.0f);
  Tensor c = ops::Add(a, b);
  auto order = autograd_internal::TopologicalOrder(c.impl().get());
  // c must come after both a and b.
  EXPECT_EQ(order.back(), c.impl().get());
  EXPECT_EQ(order.size(), 3u);
}

TEST(AutogradTest, ChainRuleThroughSharedNode) {
  // y = (2a) + (2a) => dy/da = 4.
  Tensor a = Tensor::Full({1}, 1.5f, true);
  Tensor b = ops::Scale(a, 2.0f);
  Tensor y = ops::Add(b, b);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
}

TEST(AutogradTest, NoGradGuardSuppressesGraph) {
  Tensor a = Tensor::Full({2, 2}, 1.0f, true);
  NoGradGuard guard;
  Tensor b = ops::MatMul(a, a);
  EXPECT_FALSE(b.requires_grad());
  EXPECT_TRUE(b.impl()->parents.empty());
}

TEST(OpsForwardTest, MatMulValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Tensor a = RandTensor({3, 5}, 1);
  Tensor s = ops::Softmax(a);
  for (int i = 0; i < 3; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 5; ++j) total += s.at(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(OpsForwardTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = RandTensor({2, 4}, 2);
  Tensor s = ops::Softmax(a);
  Tensor ls = ops::LogSoftmax(a);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(ls.at(i, j), std::log(s.at(i, j)), 1e-5f);
    }
  }
}

TEST(OpsForwardTest, TransposeRoundTrip) {
  Tensor a = RandTensor({3, 4}, 3);
  Tensor t = ops::Transpose(ops::Transpose(a));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(a.at(i, j), t.at(i, j));
  }
}

TEST(OpsForwardTest, ConcatAndSliceInverse) {
  Tensor a = RandTensor({2, 3}, 4);
  Tensor b = RandTensor({1, 3}, 5);
  Tensor c = ops::ConcatRows({a, b});
  EXPECT_EQ(c.rows(), 3);
  Tensor back = ops::SliceRows(c, 0, 2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(back.at(i, j), a.at(i, j));
  }
}

TEST(OpsForwardTest, GatherRowsSelects) {
  Tensor a = Tensor::FromData({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor g = ops::GatherRows(a, {2, 0, 2});
  EXPECT_FLOAT_EQ(g.at(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 21.0f);
}

TEST(OpsForwardTest, L2NormalizeRowsUnitNorm) {
  Tensor a = RandTensor({4, 6}, 6);
  Tensor n = ops::L2NormalizeRows(a);
  for (int i = 0; i < 4; ++i) {
    float sq = 0.0f;
    for (int j = 0; j < 6; ++j) sq += n.at(i, j) * n.at(i, j);
    EXPECT_NEAR(sq, 1.0f, 1e-4f);
  }
}

TEST(OpsForwardTest, CrossEntropyIgnoresIndex) {
  Tensor logits = Tensor::FromData({2, 3}, {10, 0, 0, 0, 10, 0});
  Tensor l1 = ops::CrossEntropy(logits, {0, -1}, -1);
  Tensor l2 = ops::CrossEntropy(ops::SliceRows(logits, 0, 1), {0});
  EXPECT_NEAR(l1.item(), l2.item(), 1e-6f);
}

TEST(OpsForwardTest, DropoutIdentityWhenEval) {
  Rng rng(1);
  Tensor a = RandTensor({3, 3}, 7);
  Tensor d = ops::Dropout(a, 0.5f, &rng, /*training=*/false);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], d.data()[i]);
}

TEST(OpsForwardTest, DropoutPreservesExpectation) {
  Rng rng(2);
  Tensor a = Tensor::Full({1, 10000}, 1.0f);
  Tensor d = ops::Dropout(a, 0.3f, &rng, /*training=*/true);
  double total = 0;
  for (int64_t i = 0; i < d.size(); ++i) total += d.data()[i];
  EXPECT_NEAR(total / d.size(), 1.0, 0.05);
}

// ---------- gradient checks ----------

TEST(OpsGradTest, MatMulGrad) {
  Tensor a = RandTensor({3, 4}, 10);
  Tensor b = RandTensor({4, 2}, 11);
  b.set_requires_grad(true);
  EXPECT_LT(GradCheck(a, [&]() { return ops::Mean(ops::MatMul(a, b)); }),
            kTol);
}

TEST(OpsGradTest, MatMulGradRhs) {
  Tensor a = RandTensor({3, 4}, 12);
  Tensor b = RandTensor({4, 2}, 13);
  a.set_requires_grad(true);
  EXPECT_LT(GradCheck(b, [&]() { return ops::Mean(ops::MatMul(a, b)); }),
            kTol);
}

TEST(OpsGradTest, AddBroadcastGrad) {
  Tensor a = RandTensor({3, 4}, 14);
  Tensor bias = RandTensor({4}, 15);
  a.set_requires_grad(true);
  EXPECT_LT(GradCheck(bias,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::Add(a, bias), ops::Add(a, bias)));
                      }),
            kTol);
}

TEST(OpsGradTest, ElementwiseActivations) {
  for (uint64_t seed : {20ull, 21ull}) {
    Tensor x = RandTensor({2, 5}, seed);
    EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(ops::Tanh(x)); }), kTol);
    EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(ops::Sigmoid(x)); }),
              kTol);
    EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(ops::Gelu(x)); }), kTol);
  }
}

TEST(OpsGradTest, SoftmaxGrad) {
  Tensor x = RandTensor({2, 4}, 22);
  Tensor w = RandTensor({2, 4}, 23);
  EXPECT_LT(
      GradCheck(x, [&]() { return ops::Mean(ops::Mul(ops::Softmax(x), w)); }),
      kTol);
}

TEST(OpsGradTest, LogSoftmaxGrad) {
  Tensor x = RandTensor({2, 4}, 24);
  Tensor w = RandTensor({2, 4}, 25);
  EXPECT_LT(GradCheck(
                x, [&]() { return ops::Mean(ops::Mul(ops::LogSoftmax(x), w)); }),
            kTol);
}

TEST(OpsGradTest, CrossEntropyGrad) {
  Tensor logits = RandTensor({4, 5}, 26);
  const std::vector<int> targets = {0, 3, -1, 2};
  EXPECT_LT(GradCheck(logits,
                      [&]() { return ops::CrossEntropy(logits, targets, -1); }),
            kTol);
}

TEST(OpsGradTest, SoftCrossEntropyGrad) {
  Tensor logits = RandTensor({3, 4}, 27);
  Tensor targets = ops::Softmax(RandTensor({3, 4}, 28)).Detach();
  const std::vector<float> weights = {1.0f, 0.0f, 2.0f};
  EXPECT_LT(GradCheck(logits,
                      [&]() {
                        return ops::SoftCrossEntropy(logits, targets, weights);
                      }),
            kTol);
}

TEST(OpsGradTest, LayerNormGrad) {
  Tensor x = RandTensor({3, 6}, 29);
  Tensor gamma = RandTensor({6}, 30, 0.5f);
  Tensor beta = RandTensor({6}, 31, 0.5f);
  Tensor w = RandTensor({3, 6}, 32);
  auto loss = [&]() {
    return ops::Mean(ops::Mul(ops::LayerNormOp(x, gamma, beta), w));
  };
  EXPECT_LT(GradCheck(x, loss), kTol);
  EXPECT_LT(GradCheck(gamma, loss), kTol);
  EXPECT_LT(GradCheck(beta, loss), kTol);
}

TEST(OpsGradTest, ConcatSliceGatherGrad) {
  Tensor a = RandTensor({2, 3}, 33);
  Tensor b = RandTensor({2, 3}, 34);
  Tensor w = RandTensor({4, 3}, 35);
  EXPECT_LT(GradCheck(a,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::ConcatRows({a, b}), w));
                      }),
            kTol);
  Tensor w2 = RandTensor({2, 6}, 36);
  EXPECT_LT(GradCheck(a,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::ConcatCols({a, b}), w2));
                      }),
            kTol);
  Tensor w3 = RandTensor({3, 3}, 37);
  EXPECT_LT(GradCheck(a,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::GatherRows(a, {0, 1, 0}), w3));
                      }),
            kTol);
}

TEST(OpsGradTest, L2NormalizeGrad) {
  Tensor x = RandTensor({2, 5}, 38);
  Tensor w = RandTensor({2, 5}, 39);
  EXPECT_LT(GradCheck(x,
                      [&]() {
                        return ops::Mean(ops::Mul(ops::L2NormalizeRows(x), w));
                      }),
            kTol);
}

TEST(OpsGradTest, TransposeSliceColsGrad) {
  Tensor x = RandTensor({3, 4}, 40);
  Tensor w = RandTensor({4, 3}, 41);
  EXPECT_LT(GradCheck(
                x, [&]() { return ops::Mean(ops::Mul(ops::Transpose(x), w)); }),
            kTol);
  Tensor w2 = RandTensor({3, 2}, 42);
  EXPECT_LT(GradCheck(x,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::SliceCols(x, 1, 2), w2));
                      }),
            kTol);
}

TEST(OpsGradTest, ScaleSubMulGrad) {
  Tensor x = RandTensor({2, 3}, 43);
  Tensor y = RandTensor({2, 3}, 44);
  EXPECT_LT(GradCheck(x,
                      [&]() {
                        return ops::Mean(ops::Mul(ops::Sub(x, y),
                                                  ops::Scale(x, 0.5f)));
                      }),
            kTol);
}

TEST(OpsGradTest, SumAndReshapeGrad) {
  Tensor x = RandTensor({2, 6}, 45);
  EXPECT_LT(GradCheck(x,
                      [&]() {
                        Tensor r = ops::Reshape(x, {3, 4});
                        return ops::Scale(ops::Sum(ops::Mul(r, r)), 0.1f);
                      }),
            kTol);
}

// ---------- NaN propagation ----------

TEST(OpsForwardTest, MatMulPropagatesNaNThroughZero) {
  // 0 * NaN must stay NaN: a zero-skip branch in the kernel would silently
  // suppress divergence instead of surfacing it.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::FromData({1, 2}, {0.0f, 1.0f});
  Tensor b = Tensor::FromData({2, 1}, {nan, 1.0f});
  Tensor c = ops::MatMul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
}

TEST(OpsGradTest, MatMulBackwardPropagatesNaNThroughZero) {
  // dB = A^T * dC with A == 0 and NaN upstream gradient: dB must be NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::FromData({1, 1}, {0.0f});
  Tensor b = Tensor::FromData({1, 1}, {2.0f});
  b.set_requires_grad(true);
  Tensor c = ops::MatMul(a, b);
  Tensor poison = Tensor::FromData({1, 1}, {nan});
  Tensor loss = ops::Sum(ops::Mul(c, poison));
  loss.Backward();
  EXPECT_TRUE(std::isnan(b.grad()[0]));
}

// ---------- serial vs parallel kernels ----------

namespace {

/// Restores the pool to single-thread mode when a test scope exits.
struct PoolGuard {
  explicit PoolGuard(int n) { ThreadPool::Global().SetNumThreads(n); }
  ~PoolGuard() { ThreadPool::Global().SetNumThreads(1); }
};

std::vector<float> GradOf(const Tensor& t) { return t.impl()->grad; }

}  // namespace

TEST(ParallelOpsTest, GemmMatchesSerialAcrossThreshold) {
  // 24^3 is below the GEMM parallel threshold, 96^3 is above; both must be
  // bit-identical between a 1-thread and a 4-thread pool (the parallel GEMM
  // preserves the serial per-element accumulation order).
  for (int size : {24, 96}) {
    Tensor a = RandTensor({size, size}, 100 + size);
    Tensor b = RandTensor({size, size}, 200 + size);
    Tensor w = RandTensor({size, size}, 300 + size);
    a.set_requires_grad(true);
    b.set_requires_grad(true);
    auto run = [&]() {
      a.ZeroGrad();
      b.ZeroGrad();
      Tensor c = ops::MatMul(a, b);
      ops::Mean(ops::Mul(c, w)).Backward();
      return c;
    };
    ThreadPool::Global().SetNumThreads(1);
    Tensor serial_out = run();
    std::vector<float> serial_da = GradOf(a), serial_db = GradOf(b);
    {
      PoolGuard guard(4);
      Tensor parallel_out = run();
      std::vector<float> parallel_da = GradOf(a), parallel_db = GradOf(b);
      for (int64_t i = 0; i < serial_out.size(); ++i) {
        ASSERT_EQ(serial_out.data()[i], parallel_out.data()[i]) << i;
      }
      ASSERT_EQ(serial_da, parallel_da) << "dA mismatch at size " << size;
      ASSERT_EQ(serial_db, parallel_db) << "dB mismatch at size " << size;
    }
  }
}

TEST(ParallelOpsTest, SoftmaxMatchesSerialAcrossThreshold) {
  // Rows are independent, so forward and backward are bit-identical.
  for (int rows : {8, 512}) {  // 8x64 below the row threshold, 512x64 above
    Tensor x = RandTensor({rows, 64}, 400 + rows);
    Tensor w = RandTensor({rows, 64}, 500 + rows);
    x.set_requires_grad(true);
    auto run = [&]() {
      x.ZeroGrad();
      Tensor y = ops::Softmax(x);
      ops::Mean(ops::Mul(y, w)).Backward();
      return y;
    };
    ThreadPool::Global().SetNumThreads(1);
    Tensor serial_out = run();
    std::vector<float> serial_dx = GradOf(x);
    {
      PoolGuard guard(4);
      Tensor parallel_out = run();
      for (int64_t i = 0; i < serial_out.size(); ++i) {
        ASSERT_EQ(serial_out.data()[i], parallel_out.data()[i]) << i;
      }
      ASSERT_EQ(serial_dx, GradOf(x)) << "dx mismatch at rows " << rows;
    }
  }
}

TEST(ParallelOpsTest, LayerNormMatchesSerialAcrossThreshold) {
  for (int rows : {8, 512}) {
    Tensor x = RandTensor({rows, 64}, 600 + rows);
    Tensor gamma = RandTensor({64}, 601, 0.5f);
    Tensor beta = RandTensor({64}, 602, 0.5f);
    Tensor w = RandTensor({rows, 64}, 603 + rows);
    x.set_requires_grad(true);
    gamma.set_requires_grad(true);
    beta.set_requires_grad(true);
    auto run = [&]() {
      x.ZeroGrad();
      gamma.ZeroGrad();
      beta.ZeroGrad();
      Tensor y = ops::LayerNormOp(x, gamma, beta);
      ops::Mean(ops::Mul(y, w)).Backward();
      return y;
    };
    ThreadPool::Global().SetNumThreads(1);
    Tensor serial_out = run();
    std::vector<float> serial_dx = GradOf(x);
    std::vector<float> serial_dgamma = GradOf(gamma);
    std::vector<float> serial_dbeta = GradOf(beta);
    {
      PoolGuard guard(4);
      Tensor parallel_out = run();
      // Forward rows are independent: bit-identical.
      for (int64_t i = 0; i < serial_out.size(); ++i) {
        ASSERT_EQ(serial_out.data()[i], parallel_out.data()[i]) << i;
      }
      // dx rows are disjoint: bit-identical. dgamma/dbeta reduce over rows
      // through per-worker buffers, so only near-equality holds vs serial...
      ASSERT_EQ(serial_dx, GradOf(x));
      std::vector<float> parallel_dgamma = GradOf(gamma);
      std::vector<float> parallel_dbeta = GradOf(beta);
      for (size_t i = 0; i < serial_dgamma.size(); ++i) {
        ASSERT_NEAR(serial_dgamma[i], parallel_dgamma[i],
                    2e-4f * (1.0f + std::abs(serial_dgamma[i])));
        ASSERT_NEAR(serial_dbeta[i], parallel_dbeta[i],
                    2e-4f * (1.0f + std::abs(serial_dbeta[i])));
      }
      // ...but repeating the run at the same thread count must reproduce the
      // reduction exactly: static partitioning, no scheduling dependence.
      run();
      ASSERT_EQ(parallel_dgamma, GradOf(gamma));
      ASSERT_EQ(parallel_dbeta, GradOf(beta));
      ASSERT_EQ(serial_dx, GradOf(x));
    }
  }
}

TEST(ParallelOpsTest, CrossEntropyBitIdenticalAtAnyThreadCount) {
  // The loss reduces per-row terms serially in row order, so even the
  // parallel path is bit-identical to the serial kernel.
  const int rows = 512, cols = 64;
  Tensor logits = RandTensor({rows, cols}, 700);
  logits.set_requires_grad(true);
  std::vector<int> targets(rows);
  for (int i = 0; i < rows; ++i) targets[i] = (i * 7) % cols;
  targets[3] = -1;  // exercise ignore_index
  auto run = [&]() {
    logits.ZeroGrad();
    Tensor loss = ops::CrossEntropy(logits, targets, -1);
    loss.Backward();
    return loss.item();
  };
  ThreadPool::Global().SetNumThreads(1);
  const float serial_loss = run();
  std::vector<float> serial_grad = GradOf(logits);
  {
    PoolGuard guard(4);
    EXPECT_EQ(serial_loss, run());
    EXPECT_EQ(serial_grad, GradOf(logits));
  }
}

TEST(ParallelOpsTest, ElementwiseMatchesSerialAcrossThreshold) {
  for (int64_t n : {1024, 100000}) {
    Tensor x = RandTensor({static_cast<int>(n)}, 800 + n);
    x.set_requires_grad(true);
    auto run = [&]() {
      x.ZeroGrad();
      Tensor y = ops::Gelu(x);
      ops::Mean(y).Backward();
      return y;
    };
    ThreadPool::Global().SetNumThreads(1);
    Tensor serial_out = run();
    std::vector<float> serial_dx = GradOf(x);
    {
      PoolGuard guard(4);
      Tensor parallel_out = run();
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(serial_out.data()[i], parallel_out.data()[i]) << i;
      }
      ASSERT_EQ(serial_dx, GradOf(x));
    }
  }
}

}  // namespace
}  // namespace resuformer
