#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "gradcheck.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace resuformer {
namespace {

using testing::GradCheck;

constexpr double kTol = 5e-2;  // float32 + finite differences

Tensor RandTensor(std::vector<int> shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), &rng, scale);
}

TEST(TensorTest, FactoriesAndAccessors) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.rank(), 2);
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_EQ(z.size(), 6);
  EXPECT_EQ(z.at(1, 2), 0.0f);

  Tensor f = Tensor::Full({4}, 2.5f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(f.at(i), 2.5f);

  Tensor d = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(d.at(1, 0), 3.0f);
  EXPECT_EQ(d.ShapeString(), "[2, 2]");
}

TEST(TensorTest, DetachSharesNoHistory) {
  Tensor a = Tensor::Full({2}, 3.0f, /*requires_grad=*/true);
  Tensor b = ops::Scale(a, 2.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.at(0), 6.0f);
}

TEST(AutogradTest, TopologicalOrderVisitsParentsFirst) {
  Tensor a = Tensor::Full({1}, 1.0f, true);
  Tensor b = ops::Scale(a, 2.0f);
  Tensor c = ops::Add(a, b);
  auto order = autograd_internal::TopologicalOrder(c.impl().get());
  // c must come after both a and b.
  EXPECT_EQ(order.back(), c.impl().get());
  EXPECT_EQ(order.size(), 3u);
}

TEST(AutogradTest, ChainRuleThroughSharedNode) {
  // y = (2a) + (2a) => dy/da = 4.
  Tensor a = Tensor::Full({1}, 1.5f, true);
  Tensor b = ops::Scale(a, 2.0f);
  Tensor y = ops::Add(b, b);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
}

TEST(AutogradTest, NoGradGuardSuppressesGraph) {
  Tensor a = Tensor::Full({2, 2}, 1.0f, true);
  NoGradGuard guard;
  Tensor b = ops::MatMul(a, a);
  EXPECT_FALSE(b.requires_grad());
  EXPECT_TRUE(b.impl()->parents.empty());
}

TEST(OpsForwardTest, MatMulValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Tensor a = RandTensor({3, 5}, 1);
  Tensor s = ops::Softmax(a);
  for (int i = 0; i < 3; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 5; ++j) total += s.at(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(OpsForwardTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = RandTensor({2, 4}, 2);
  Tensor s = ops::Softmax(a);
  Tensor ls = ops::LogSoftmax(a);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(ls.at(i, j), std::log(s.at(i, j)), 1e-5f);
    }
  }
}

TEST(OpsForwardTest, TransposeRoundTrip) {
  Tensor a = RandTensor({3, 4}, 3);
  Tensor t = ops::Transpose(ops::Transpose(a));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(a.at(i, j), t.at(i, j));
  }
}

TEST(OpsForwardTest, ConcatAndSliceInverse) {
  Tensor a = RandTensor({2, 3}, 4);
  Tensor b = RandTensor({1, 3}, 5);
  Tensor c = ops::ConcatRows({a, b});
  EXPECT_EQ(c.rows(), 3);
  Tensor back = ops::SliceRows(c, 0, 2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(back.at(i, j), a.at(i, j));
  }
}

TEST(OpsForwardTest, GatherRowsSelects) {
  Tensor a = Tensor::FromData({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor g = ops::GatherRows(a, {2, 0, 2});
  EXPECT_FLOAT_EQ(g.at(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 21.0f);
}

TEST(OpsForwardTest, L2NormalizeRowsUnitNorm) {
  Tensor a = RandTensor({4, 6}, 6);
  Tensor n = ops::L2NormalizeRows(a);
  for (int i = 0; i < 4; ++i) {
    float sq = 0.0f;
    for (int j = 0; j < 6; ++j) sq += n.at(i, j) * n.at(i, j);
    EXPECT_NEAR(sq, 1.0f, 1e-4f);
  }
}

TEST(OpsForwardTest, CrossEntropyIgnoresIndex) {
  Tensor logits = Tensor::FromData({2, 3}, {10, 0, 0, 0, 10, 0});
  Tensor l1 = ops::CrossEntropy(logits, {0, -1}, -1);
  Tensor l2 = ops::CrossEntropy(ops::SliceRows(logits, 0, 1), {0});
  EXPECT_NEAR(l1.item(), l2.item(), 1e-6f);
}

TEST(OpsForwardTest, DropoutIdentityWhenEval) {
  Rng rng(1);
  Tensor a = RandTensor({3, 3}, 7);
  Tensor d = ops::Dropout(a, 0.5f, &rng, /*training=*/false);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], d.data()[i]);
}

TEST(OpsForwardTest, DropoutPreservesExpectation) {
  Rng rng(2);
  Tensor a = Tensor::Full({1, 10000}, 1.0f);
  Tensor d = ops::Dropout(a, 0.3f, &rng, /*training=*/true);
  double total = 0;
  for (int64_t i = 0; i < d.size(); ++i) total += d.data()[i];
  EXPECT_NEAR(total / d.size(), 1.0, 0.05);
}

// ---------- gradient checks ----------

TEST(OpsGradTest, MatMulGrad) {
  Tensor a = RandTensor({3, 4}, 10);
  Tensor b = RandTensor({4, 2}, 11);
  b.set_requires_grad(true);
  EXPECT_LT(GradCheck(a, [&]() { return ops::Mean(ops::MatMul(a, b)); }),
            kTol);
}

TEST(OpsGradTest, MatMulGradRhs) {
  Tensor a = RandTensor({3, 4}, 12);
  Tensor b = RandTensor({4, 2}, 13);
  a.set_requires_grad(true);
  EXPECT_LT(GradCheck(b, [&]() { return ops::Mean(ops::MatMul(a, b)); }),
            kTol);
}

TEST(OpsGradTest, AddBroadcastGrad) {
  Tensor a = RandTensor({3, 4}, 14);
  Tensor bias = RandTensor({4}, 15);
  a.set_requires_grad(true);
  EXPECT_LT(GradCheck(bias,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::Add(a, bias), ops::Add(a, bias)));
                      }),
            kTol);
}

TEST(OpsGradTest, ElementwiseActivations) {
  for (uint64_t seed : {20ull, 21ull}) {
    Tensor x = RandTensor({2, 5}, seed);
    EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(ops::Tanh(x)); }), kTol);
    EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(ops::Sigmoid(x)); }),
              kTol);
    EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(ops::Gelu(x)); }), kTol);
  }
}

TEST(OpsGradTest, SoftmaxGrad) {
  Tensor x = RandTensor({2, 4}, 22);
  Tensor w = RandTensor({2, 4}, 23);
  EXPECT_LT(
      GradCheck(x, [&]() { return ops::Mean(ops::Mul(ops::Softmax(x), w)); }),
      kTol);
}

TEST(OpsGradTest, LogSoftmaxGrad) {
  Tensor x = RandTensor({2, 4}, 24);
  Tensor w = RandTensor({2, 4}, 25);
  EXPECT_LT(GradCheck(
                x, [&]() { return ops::Mean(ops::Mul(ops::LogSoftmax(x), w)); }),
            kTol);
}

TEST(OpsGradTest, CrossEntropyGrad) {
  Tensor logits = RandTensor({4, 5}, 26);
  const std::vector<int> targets = {0, 3, -1, 2};
  EXPECT_LT(GradCheck(logits,
                      [&]() { return ops::CrossEntropy(logits, targets, -1); }),
            kTol);
}

TEST(OpsGradTest, SoftCrossEntropyGrad) {
  Tensor logits = RandTensor({3, 4}, 27);
  Tensor targets = ops::Softmax(RandTensor({3, 4}, 28)).Detach();
  const std::vector<float> weights = {1.0f, 0.0f, 2.0f};
  EXPECT_LT(GradCheck(logits,
                      [&]() {
                        return ops::SoftCrossEntropy(logits, targets, weights);
                      }),
            kTol);
}

TEST(OpsGradTest, LayerNormGrad) {
  Tensor x = RandTensor({3, 6}, 29);
  Tensor gamma = RandTensor({6}, 30, 0.5f);
  Tensor beta = RandTensor({6}, 31, 0.5f);
  Tensor w = RandTensor({3, 6}, 32);
  auto loss = [&]() {
    return ops::Mean(ops::Mul(ops::LayerNormOp(x, gamma, beta), w));
  };
  EXPECT_LT(GradCheck(x, loss), kTol);
  EXPECT_LT(GradCheck(gamma, loss), kTol);
  EXPECT_LT(GradCheck(beta, loss), kTol);
}

TEST(OpsGradTest, ConcatSliceGatherGrad) {
  Tensor a = RandTensor({2, 3}, 33);
  Tensor b = RandTensor({2, 3}, 34);
  Tensor w = RandTensor({4, 3}, 35);
  EXPECT_LT(GradCheck(a,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::ConcatRows({a, b}), w));
                      }),
            kTol);
  Tensor w2 = RandTensor({2, 6}, 36);
  EXPECT_LT(GradCheck(a,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::ConcatCols({a, b}), w2));
                      }),
            kTol);
  Tensor w3 = RandTensor({3, 3}, 37);
  EXPECT_LT(GradCheck(a,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::GatherRows(a, {0, 1, 0}), w3));
                      }),
            kTol);
}

TEST(OpsGradTest, L2NormalizeGrad) {
  Tensor x = RandTensor({2, 5}, 38);
  Tensor w = RandTensor({2, 5}, 39);
  EXPECT_LT(GradCheck(x,
                      [&]() {
                        return ops::Mean(ops::Mul(ops::L2NormalizeRows(x), w));
                      }),
            kTol);
}

TEST(OpsGradTest, TransposeSliceColsGrad) {
  Tensor x = RandTensor({3, 4}, 40);
  Tensor w = RandTensor({4, 3}, 41);
  EXPECT_LT(GradCheck(
                x, [&]() { return ops::Mean(ops::Mul(ops::Transpose(x), w)); }),
            kTol);
  Tensor w2 = RandTensor({3, 2}, 42);
  EXPECT_LT(GradCheck(x,
                      [&]() {
                        return ops::Mean(
                            ops::Mul(ops::SliceCols(x, 1, 2), w2));
                      }),
            kTol);
}

TEST(OpsGradTest, ScaleSubMulGrad) {
  Tensor x = RandTensor({2, 3}, 43);
  Tensor y = RandTensor({2, 3}, 44);
  EXPECT_LT(GradCheck(x,
                      [&]() {
                        return ops::Mean(ops::Mul(ops::Sub(x, y),
                                                  ops::Scale(x, 0.5f)));
                      }),
            kTol);
}

TEST(OpsGradTest, SumAndReshapeGrad) {
  Tensor x = RandTensor({2, 6}, 45);
  EXPECT_LT(GradCheck(x,
                      [&]() {
                        Tensor r = ops::Reshape(x, {3, 4});
                        return ops::Scale(ops::Sum(ops::Mul(r, r)), 0.1f);
                      }),
            kTol);
}

// ---------- NaN propagation ----------

TEST(OpsForwardTest, MatMulPropagatesNaNThroughZero) {
  // 0 * NaN must stay NaN: a zero-skip branch in the kernel would silently
  // suppress divergence instead of surfacing it.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::FromData({1, 2}, {0.0f, 1.0f});
  Tensor b = Tensor::FromData({2, 1}, {nan, 1.0f});
  Tensor c = ops::MatMul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
}

TEST(OpsGradTest, MatMulBackwardPropagatesNaNThroughZero) {
  // dB = A^T * dC with A == 0 and NaN upstream gradient: dB must be NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::FromData({1, 1}, {0.0f});
  Tensor b = Tensor::FromData({1, 1}, {2.0f});
  b.set_requires_grad(true);
  Tensor c = ops::MatMul(a, b);
  Tensor poison = Tensor::FromData({1, 1}, {nan});
  Tensor loss = ops::Sum(ops::Mul(c, poison));
  loss.Backward();
  EXPECT_TRUE(std::isnan(b.grad()[0]));
}

// ---------- serial vs parallel kernels ----------

namespace {

/// Restores the pool to single-thread mode when a test scope exits.
struct PoolGuard {
  explicit PoolGuard(int n) { ThreadPool::Global().SetNumThreads(n); }
  ~PoolGuard() { ThreadPool::Global().SetNumThreads(1); }
};

std::vector<float> GradOf(const Tensor& t) { return t.impl()->grad; }

}  // namespace

TEST(ParallelOpsTest, GemmMatchesSerialAcrossThreshold) {
  // 24^3 is below the GEMM parallel threshold, 96^3 is above; both must be
  // bit-identical between a 1-thread and a 4-thread pool (the parallel GEMM
  // preserves the serial per-element accumulation order).
  for (int size : {24, 96}) {
    Tensor a = RandTensor({size, size}, 100 + size);
    Tensor b = RandTensor({size, size}, 200 + size);
    Tensor w = RandTensor({size, size}, 300 + size);
    a.set_requires_grad(true);
    b.set_requires_grad(true);
    auto run = [&]() {
      a.ZeroGrad();
      b.ZeroGrad();
      Tensor c = ops::MatMul(a, b);
      ops::Mean(ops::Mul(c, w)).Backward();
      return c;
    };
    ThreadPool::Global().SetNumThreads(1);
    Tensor serial_out = run();
    std::vector<float> serial_da = GradOf(a), serial_db = GradOf(b);
    {
      PoolGuard guard(4);
      Tensor parallel_out = run();
      std::vector<float> parallel_da = GradOf(a), parallel_db = GradOf(b);
      for (int64_t i = 0; i < serial_out.size(); ++i) {
        ASSERT_EQ(serial_out.data()[i], parallel_out.data()[i]) << i;
      }
      ASSERT_EQ(serial_da, parallel_da) << "dA mismatch at size " << size;
      ASSERT_EQ(serial_db, parallel_db) << "dB mismatch at size " << size;
    }
  }
}

TEST(ParallelOpsTest, SoftmaxMatchesSerialAcrossThreshold) {
  // Rows are independent, so forward and backward are bit-identical.
  for (int rows : {8, 512}) {  // 8x64 below the row threshold, 512x64 above
    Tensor x = RandTensor({rows, 64}, 400 + rows);
    Tensor w = RandTensor({rows, 64}, 500 + rows);
    x.set_requires_grad(true);
    auto run = [&]() {
      x.ZeroGrad();
      Tensor y = ops::Softmax(x);
      ops::Mean(ops::Mul(y, w)).Backward();
      return y;
    };
    ThreadPool::Global().SetNumThreads(1);
    Tensor serial_out = run();
    std::vector<float> serial_dx = GradOf(x);
    {
      PoolGuard guard(4);
      Tensor parallel_out = run();
      for (int64_t i = 0; i < serial_out.size(); ++i) {
        ASSERT_EQ(serial_out.data()[i], parallel_out.data()[i]) << i;
      }
      ASSERT_EQ(serial_dx, GradOf(x)) << "dx mismatch at rows " << rows;
    }
  }
}

TEST(ParallelOpsTest, LayerNormMatchesSerialAcrossThreshold) {
  for (int rows : {8, 512}) {
    Tensor x = RandTensor({rows, 64}, 600 + rows);
    Tensor gamma = RandTensor({64}, 601, 0.5f);
    Tensor beta = RandTensor({64}, 602, 0.5f);
    Tensor w = RandTensor({rows, 64}, 603 + rows);
    x.set_requires_grad(true);
    gamma.set_requires_grad(true);
    beta.set_requires_grad(true);
    auto run = [&]() {
      x.ZeroGrad();
      gamma.ZeroGrad();
      beta.ZeroGrad();
      Tensor y = ops::LayerNormOp(x, gamma, beta);
      ops::Mean(ops::Mul(y, w)).Backward();
      return y;
    };
    ThreadPool::Global().SetNumThreads(1);
    Tensor serial_out = run();
    std::vector<float> serial_dx = GradOf(x);
    std::vector<float> serial_dgamma = GradOf(gamma);
    std::vector<float> serial_dbeta = GradOf(beta);
    {
      PoolGuard guard(4);
      Tensor parallel_out = run();
      // Forward rows are independent: bit-identical.
      for (int64_t i = 0; i < serial_out.size(); ++i) {
        ASSERT_EQ(serial_out.data()[i], parallel_out.data()[i]) << i;
      }
      // dx rows are disjoint: bit-identical. dgamma/dbeta reduce over rows
      // through per-worker buffers, so only near-equality holds vs serial...
      ASSERT_EQ(serial_dx, GradOf(x));
      std::vector<float> parallel_dgamma = GradOf(gamma);
      std::vector<float> parallel_dbeta = GradOf(beta);
      for (size_t i = 0; i < serial_dgamma.size(); ++i) {
        ASSERT_NEAR(serial_dgamma[i], parallel_dgamma[i],
                    2e-4f * (1.0f + std::abs(serial_dgamma[i])));
        ASSERT_NEAR(serial_dbeta[i], parallel_dbeta[i],
                    2e-4f * (1.0f + std::abs(serial_dbeta[i])));
      }
      // ...but repeating the run at the same thread count must reproduce the
      // reduction exactly: static partitioning, no scheduling dependence.
      run();
      ASSERT_EQ(parallel_dgamma, GradOf(gamma));
      ASSERT_EQ(parallel_dbeta, GradOf(beta));
      ASSERT_EQ(serial_dx, GradOf(x));
    }
  }
}

TEST(ParallelOpsTest, CrossEntropyBitIdenticalAtAnyThreadCount) {
  // The loss reduces per-row terms serially in row order, so even the
  // parallel path is bit-identical to the serial kernel.
  const int rows = 512, cols = 64;
  Tensor logits = RandTensor({rows, cols}, 700);
  logits.set_requires_grad(true);
  std::vector<int> targets(rows);
  for (int i = 0; i < rows; ++i) targets[i] = (i * 7) % cols;
  targets[3] = -1;  // exercise ignore_index
  auto run = [&]() {
    logits.ZeroGrad();
    Tensor loss = ops::CrossEntropy(logits, targets, -1);
    loss.Backward();
    return loss.item();
  };
  ThreadPool::Global().SetNumThreads(1);
  const float serial_loss = run();
  std::vector<float> serial_grad = GradOf(logits);
  {
    PoolGuard guard(4);
    EXPECT_EQ(serial_loss, run());
    EXPECT_EQ(serial_grad, GradOf(logits));
  }
}

TEST(ParallelOpsTest, ElementwiseMatchesSerialAcrossThreshold) {
  for (int64_t n : {1024, 100000}) {
    Tensor x = RandTensor({static_cast<int>(n)}, 800 + n);
    x.set_requires_grad(true);
    auto run = [&]() {
      x.ZeroGrad();
      Tensor y = ops::Gelu(x);
      ops::Mean(y).Backward();
      return y;
    };
    ThreadPool::Global().SetNumThreads(1);
    Tensor serial_out = run();
    std::vector<float> serial_dx = GradOf(x);
    {
      PoolGuard guard(4);
      Tensor parallel_out = run();
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(serial_out.data()[i], parallel_out.data()[i]) << i;
      }
      ASSERT_EQ(serial_dx, GradOf(x));
    }
  }
}

// ---------- transpose-free GEMM and fused softmax/attention ----------

namespace {

/// Composed-ops reference for the fused attention core, mirroring the
/// per-head chain in MultiHeadSelfAttention's reference path.
Tensor ComposedAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                         const Tensor& bias, int num_heads) {
  const int head_dim = q.cols() / num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  std::vector<Tensor> heads;
  for (int h = 0; h < num_heads; ++h) {
    const int off = h * head_dim;
    Tensor qh = ops::SliceCols(q, off, head_dim);
    Tensor kh = ops::SliceCols(k, off, head_dim);
    Tensor vh = ops::SliceCols(v, off, head_dim);
    Tensor scores = ops::Scale(ops::MatMul(qh, ops::Transpose(kh)), scale);
    if (bias.defined()) scores = ops::Add(scores, bias);
    heads.push_back(ops::MatMul(ops::Softmax(scores), vh));
  }
  return ops::ConcatCols(heads);
}

void ExpectBitEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

void ExpectTensorNear(const Tensor& a, const Tensor& b, float tol) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i],
                tol * (1.0f + std::abs(b.data()[i])))
        << "element " << i;
  }
}

void ExpectAllNear(const std::vector<float>& a, const std::vector<float>& b,
                   float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol * (1.0f + std::abs(a[i]))) << "element " << i;
  }
}

}  // namespace

TEST(FusedOpsTest, MatMulTransposedBMatchesComposed) {
  // Non-square shapes on both sides of the GEMM parallel threshold.
  for (auto [m, kdim, n] : {std::tuple{3, 5, 4}, std::tuple{48, 96, 80}}) {
    Tensor a = RandTensor({m, kdim}, 900 + m);
    Tensor b = RandTensor({n, kdim}, 910 + m);
    Tensor w = RandTensor({m, n}, 920 + m);
    a.set_requires_grad(true);
    b.set_requires_grad(true);

    Tensor fused = ops::MatMulTransposedB(a, b);
    ops::Mean(ops::Mul(fused, w)).Backward();
    std::vector<float> fused_da = GradOf(a), fused_db = GradOf(b);

    a.ZeroGrad();
    b.ZeroGrad();
    Tensor composed = ops::MatMul(a, ops::Transpose(b));
    ops::Mean(ops::Mul(composed, w)).Backward();

    ExpectBitEqual(fused, composed);
    ExpectAllNear(fused_da, GradOf(a), 1e-5f);
    ExpectAllNear(fused_db, GradOf(b), 1e-5f);
  }
}

TEST(FusedOpsTest, MatMulTransposedAMatchesComposed) {
  for (auto [kdim, m, n] : {std::tuple{5, 3, 4}, std::tuple{96, 48, 80}}) {
    Tensor a = RandTensor({kdim, m}, 930 + m);
    Tensor b = RandTensor({kdim, n}, 940 + m);
    Tensor w = RandTensor({m, n}, 950 + m);
    a.set_requires_grad(true);
    b.set_requires_grad(true);

    Tensor fused = ops::MatMulTransposedA(a, b);
    ops::Mean(ops::Mul(fused, w)).Backward();
    std::vector<float> fused_da = GradOf(a), fused_db = GradOf(b);

    a.ZeroGrad();
    b.ZeroGrad();
    Tensor composed = ops::MatMul(ops::Transpose(a), b);
    ops::Mean(ops::Mul(composed, w)).Backward();

    ExpectBitEqual(fused, composed);
    ExpectAllNear(fused_da, GradOf(a), 1e-5f);
    ExpectAllNear(fused_db, GradOf(b), 1e-5f);
  }
}

TEST(FusedOpsTest, MatMulTransposedGradCheck) {
  Tensor a = RandTensor({4, 6}, 960, 0.5f);
  Tensor b = RandTensor({5, 6}, 961, 0.5f);
  a.set_requires_grad(true);
  b.set_requires_grad(true);
  auto loss_bt = [&]() { return ops::Mean(ops::MatMulTransposedB(a, b)); };
  EXPECT_LT(GradCheck(a, loss_bt), kTol);
  EXPECT_LT(GradCheck(b, loss_bt), kTol);

  Tensor c = RandTensor({6, 4}, 962, 0.5f);
  Tensor d = RandTensor({6, 5}, 963, 0.5f);
  c.set_requires_grad(true);
  d.set_requires_grad(true);
  auto loss_at = [&]() { return ops::Mean(ops::MatMulTransposedA(c, d)); };
  EXPECT_LT(GradCheck(c, loss_at), kTol);
  EXPECT_LT(GradCheck(d, loss_at), kTol);
}

TEST(FusedOpsTest, ScaleAddSoftmaxMatchesComposed) {
  const float scale = 0.37f;
  Tensor x = RandTensor({7, 9}, 970);
  Tensor full_bias = RandTensor({7, 9}, 971);
  Tensor row_bias = RandTensor({9}, 972);
  Tensor w = RandTensor({7, 9}, 973);
  // Bias variants: none, same-shape, rank-1 broadcast over rows.
  for (int variant = 0; variant < 3; ++variant) {
    Tensor bias =
        variant == 0 ? Tensor() : (variant == 1 ? full_bias : row_bias);
    x.set_requires_grad(true);
    if (bias.defined()) bias.set_requires_grad(true);

    x.ZeroGrad();
    if (bias.defined()) bias.ZeroGrad();
    Tensor fused = ops::ScaleAddSoftmax(x, scale, bias);
    ops::Mean(ops::Mul(fused, w)).Backward();
    std::vector<float> fused_dx = GradOf(x);
    std::vector<float> fused_dbias = bias.defined() ? GradOf(bias)
                                                    : std::vector<float>();

    x.ZeroGrad();
    if (bias.defined()) bias.ZeroGrad();
    Tensor scaled = ops::Scale(x, scale);
    Tensor composed =
        ops::Softmax(bias.defined() ? ops::Add(scaled, bias) : scaled);
    ops::Mean(ops::Mul(composed, w)).Backward();

    ExpectBitEqual(fused, composed);
    ExpectAllNear(fused_dx, GradOf(x), 1e-5f);
    if (bias.defined()) ExpectAllNear(fused_dbias, GradOf(bias), 1e-5f);
  }
}

TEST(FusedOpsTest, ScaleAddSoftmaxGradCheck) {
  Tensor x = RandTensor({3, 6}, 980, 0.5f);
  Tensor bias = RandTensor({6}, 981, 0.5f);
  Tensor w = RandTensor({3, 6}, 982);
  x.set_requires_grad(true);
  bias.set_requires_grad(true);
  auto loss = [&]() {
    return ops::Mean(ops::Mul(ops::ScaleAddSoftmax(x, 0.61f, bias), w));
  };
  EXPECT_LT(GradCheck(x, loss), kTol);
  EXPECT_LT(GradCheck(bias, loss), kTol);
}

TEST(FusedOpsTest, FusedAttentionMatchesComposed) {
  // Non-square (T != dim) shapes; every head-count divides dim = 8.
  const int t_len = 6, dim = 8;
  for (int num_heads : {1, 2, 4}) {
    for (bool with_bias : {false, true}) {
      Tensor q = RandTensor({t_len, dim}, 1000 + num_heads);
      Tensor k = RandTensor({t_len, dim}, 1010 + num_heads);
      Tensor v = RandTensor({t_len, dim}, 1020 + num_heads);
      Tensor bias =
          with_bias ? RandTensor({t_len, t_len}, 1030 + num_heads) : Tensor();
      Tensor w = RandTensor({t_len, dim}, 1040 + num_heads);
      for (Tensor* t : {&q, &k, &v}) t->set_requires_grad(true);
      if (with_bias) bias.set_requires_grad(true);

      auto zero_all = [&]() {
        for (Tensor* t : {&q, &k, &v}) t->ZeroGrad();
        if (with_bias) bias.ZeroGrad();
      };

      zero_all();
      Tensor fused = ops::FusedMultiHeadAttention(q, k, v, bias, num_heads);
      ops::Mean(ops::Mul(fused, w)).Backward();
      std::vector<float> dq = GradOf(q), dk = GradOf(k), dv = GradOf(v);
      std::vector<float> dbias = with_bias ? GradOf(bias)
                                           : std::vector<float>();

      zero_all();
      Tensor composed = ComposedAttention(q, k, v, bias, num_heads);
      ops::Mean(ops::Mul(composed, w)).Backward();

      // Forward is 1e-5-close, not bitwise: the fused score reductions are
      // SIMD-reassociated (kernels::GemmNTVec).
      ExpectTensorNear(fused, composed, 1e-5f);
      ExpectAllNear(dq, GradOf(q), 1e-5f);
      ExpectAllNear(dk, GradOf(k), 1e-5f);
      ExpectAllNear(dv, GradOf(v), 1e-5f);
      if (with_bias) ExpectAllNear(dbias, GradOf(bias), 1e-5f);
    }
  }
}

TEST(FusedOpsTest, FusedAttentionGradCheck) {
  const int t_len = 4, dim = 6, num_heads = 2;
  Tensor q = RandTensor({t_len, dim}, 1100, 0.5f);
  Tensor k = RandTensor({t_len, dim}, 1101, 0.5f);
  Tensor v = RandTensor({t_len, dim}, 1102, 0.5f);
  Tensor bias = RandTensor({t_len, t_len}, 1103, 0.5f);
  Tensor w = RandTensor({t_len, dim}, 1104);
  for (Tensor* t : {&q, &k, &v, &bias}) t->set_requires_grad(true);
  auto loss = [&]() {
    return ops::Mean(
        ops::Mul(ops::FusedMultiHeadAttention(q, k, v, bias, num_heads), w));
  };
  EXPECT_LT(GradCheck(q, loss), kTol);
  EXPECT_LT(GradCheck(k, loss), kTol);
  EXPECT_LT(GradCheck(v, loss), kTol);
  EXPECT_LT(GradCheck(bias, loss), kTol);
}

TEST(ParallelOpsTest, FusedAttentionBitIdenticalAcrossThreads) {
  // Big enough to cross the GEMM work threshold; every backward phase
  // partitions over disjoint output elements, so gradients are bit-identical
  // between thread counts too.
  const int t_len = 64, dim = 32, num_heads = 4;
  Tensor q = RandTensor({t_len, dim}, 1200);
  Tensor k = RandTensor({t_len, dim}, 1201);
  Tensor v = RandTensor({t_len, dim}, 1202);
  Tensor bias = RandTensor({t_len, t_len}, 1203);
  Tensor w = RandTensor({t_len, dim}, 1204);
  for (Tensor* t : {&q, &k, &v, &bias}) t->set_requires_grad(true);
  auto run = [&]() {
    for (Tensor* t : {&q, &k, &v, &bias}) t->ZeroGrad();
    Tensor y = ops::FusedMultiHeadAttention(q, k, v, bias, num_heads);
    ops::Mean(ops::Mul(y, w)).Backward();
    return y;
  };
  ThreadPool::Global().SetNumThreads(1);
  Tensor serial = run();
  std::vector<float> dq = GradOf(q), dk = GradOf(k), dv = GradOf(v),
                     dbias = GradOf(bias);
  {
    PoolGuard guard(4);
    Tensor parallel = run();
    ExpectBitEqual(serial, parallel);
    ASSERT_EQ(dq, GradOf(q));
    ASSERT_EQ(dk, GradOf(k));
    ASSERT_EQ(dv, GradOf(v));
    ASSERT_EQ(dbias, GradOf(bias));
  }
}

TEST(ParallelOpsTest, MatMulTransposedBitIdenticalAcrossThreads) {
  Tensor a = RandTensor({96, 128}, 1300);
  Tensor b = RandTensor({112, 128}, 1301);
  Tensor w = RandTensor({96, 112}, 1302);
  a.set_requires_grad(true);
  b.set_requires_grad(true);
  auto run = [&]() {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor c = ops::MatMulTransposedB(a, b);
    ops::Mean(ops::Mul(c, w)).Backward();
    return c;
  };
  ThreadPool::Global().SetNumThreads(1);
  Tensor serial = run();
  std::vector<float> da = GradOf(a), db = GradOf(b);
  {
    PoolGuard guard(4);
    Tensor parallel = run();
    ExpectBitEqual(serial, parallel);
    ASSERT_EQ(da, GradOf(a));
    ASSERT_EQ(db, GradOf(b));
  }
}

// ---------- tensor buffer arena ----------

TEST(ArenaTest, RecyclesReleasedBuffers) {
  TensorArena& arena = TensorArena::Global();
  arena.SetEnabled(true);
  arena.Clear();
  arena.ResetStats();
  const int64_t before_outstanding = arena.stats().outstanding;
  {
    Tensor t = Tensor::Zeros({256});
    EXPECT_EQ(arena.stats().outstanding, before_outstanding + 1);
  }
  // The released buffer must serve the next same-class request as a hit,
  // zero-filled despite the previous tenant's writes.
  {
    Tensor t = Tensor::Full({256}, 3.0f);
  }
  const int64_t misses_before = arena.stats().misses;
  Tensor t = Tensor::Zeros({256});
  EXPECT_EQ(arena.stats().misses, misses_before);
  EXPECT_GE(arena.stats().hits, 1);
  EXPECT_GT(arena.stats().bytes_recycled, 0);
  for (int i = 0; i < 256; ++i) ASSERT_EQ(t.at(i), 0.0f);
}

TEST(ArenaTest, OutstandingReturnsToBaselineAfterGraphRuns) {
  TensorArena& arena = TensorArena::Global();
  arena.SetEnabled(true);
  const int64_t before = arena.stats().outstanding;
  {
    // Forward + backward builds and destroys a whole graph, including the
    // fused attention's ArenaBuffer workspaces.
    Tensor q = RandTensor({16, 8}, 1400);
    q.set_requires_grad(true);
    Tensor y = ops::FusedMultiHeadAttention(q, q, q, Tensor(), 2);
    ops::Mean(y).Backward();
  }
  EXPECT_EQ(arena.stats().outstanding, before);
}

TEST(ArenaTest, OddCapacityBuffersLandInFloorClass) {
  TensorArena& arena = TensorArena::Global();
  arena.SetEnabled(true);
  arena.Clear();
  arena.ResetStats();
  // 192 floats is not a size class: Acquire rounds the capacity up to 256
  // (ceil class), so the release parks it back where a 256-float request
  // finds it.
  { Tensor t = Tensor::Zeros({192}); }
  const int64_t hits_before = arena.stats().hits;
  { Tensor t = Tensor::Zeros({256}); }
  EXPECT_EQ(arena.stats().hits, hits_before + 1);

  // A foreign buffer (FromData: capacity 300, never Acquired) is adopted
  // into its floor class 256 and can serve a 200-float request.
  {
    std::vector<float> data(300, 1.0f);
    Tensor t = Tensor::FromData({300}, std::move(data));
  }
  const int64_t hits_before2 = arena.stats().hits;
  { Tensor t = Tensor::Zeros({200}); }
  EXPECT_EQ(arena.stats().hits, hits_before2 + 1);
}

TEST(ArenaTest, SubClassForeignBuffersAreDropped) {
  TensorArena& arena = TensorArena::Global();
  arena.SetEnabled(true);
  arena.Clear();
  arena.ResetStats();
  // A foreign buffer below the minimum size class (FromData with capacity 8;
  // arena-acquired buffers always reserve at least the minimum class) is
  // freed on release, not cached.
  {
    std::vector<float> d(8, 1.0f);
    Tensor t = Tensor::FromData({8}, std::move(d));
  }
  EXPECT_EQ(arena.stats().cached_bytes, 0);
  { Tensor t = Tensor::Zeros({8}); }  // nothing cached: a miss, not a hit
  EXPECT_EQ(arena.stats().hits, 0);
  EXPECT_EQ(arena.stats().outstanding, 0);
}

TEST(ArenaTest, DisabledArenaStillBalancesOutstanding) {
  TensorArena& arena = TensorArena::Global();
  arena.SetEnabled(false);
  arena.Clear();
  arena.ResetStats();
  {
    Tensor t = Tensor::Zeros({1024});
    Tensor u = ops::Scale(t, 2.0f);
  }
  const TensorArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.outstanding, 0);
  EXPECT_EQ(stats.cached_bytes, 0);
  arena.SetEnabled(true);
}

TEST(ArenaTest, BudgetBoundsCachedBytes) {
  TensorArena& arena = TensorArena::Global();
  arena.SetEnabled(true);
  arena.Clear();
  arena.ResetStats();
  arena.SetBudgetBytes(1024 * sizeof(float));
  { Tensor t = Tensor::Zeros({1024}); }       // fills the whole budget
  { Tensor t = Tensor::Zeros({1024}); }       // hit, then re-parked
  const int64_t cached = arena.stats().cached_bytes;
  EXPECT_LE(cached, 1024 * static_cast<int64_t>(sizeof(float)));
  { Tensor t = Tensor::Zeros({512}); }        // release would exceed budget
  EXPECT_EQ(arena.stats().cached_bytes, cached);
  arena.SetBudgetBytes(256LL << 20);
  arena.Clear();
}

}  // namespace
}  // namespace resuformer
