// Tests for the observability layer: MetricsRegistry (counters, gauges,
// log-scale histograms, JSON snapshots), the scoped-span tracer (ring
// buffers, Chrome trace export) and RuntimeOptions::FromEnv. Labeled
// `observability` in ctest for selective runs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/runtime_options.h"
#include "common/trace.h"

namespace resuformer {
namespace {

using metrics::MetricsRegistry;

TEST(MetricsCounterTest, ConcurrentIncrementsAreLossless) {
  metrics::Counter* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), int64_t{kThreads} * kIncrements);
}

TEST(MetricsCounterTest, PointersAreStableAcrossLookups) {
  metrics::Counter* first =
      MetricsRegistry::Global().GetCounter("test.stable_counter");
  metrics::Counter* second =
      MetricsRegistry::Global().GetCounter("test.stable_counter");
  EXPECT_EQ(first, second);
}

TEST(MetricsGaugeTest, SetAndAdd) {
  metrics::Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge->Set(10);
  gauge->Add(5);
  gauge->Add(-12);
  EXPECT_EQ(gauge->value(), 3);
  gauge->Reset();
  EXPECT_EQ(gauge->value(), 0);
}

TEST(MetricsHistogramTest, BucketingIsLogScale) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.bucketing");
  hist->Reset();
  // Bucket 0: v <= 0. Bucket b >= 1: [2^(b-1), 2^b).
  hist->Record(-5);
  hist->Record(0);
  hist->Record(1);    // bucket 1: [1, 2)
  hist->Record(2);    // bucket 2: [2, 4)
  hist->Record(3);    // bucket 2
  hist->Record(4);    // bucket 3: [4, 8)
  hist->Record(1023);  // bucket 10: [512, 1024)
  hist->Record(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(hist->bucket_count(0), 2);
  EXPECT_EQ(hist->bucket_count(1), 1);
  EXPECT_EQ(hist->bucket_count(2), 2);
  EXPECT_EQ(hist->bucket_count(3), 1);
  EXPECT_EQ(hist->bucket_count(10), 1);
  EXPECT_EQ(hist->bucket_count(11), 1);
  EXPECT_EQ(hist->count(), 8);
  EXPECT_EQ(hist->min(), -5);
  EXPECT_EQ(hist->max(), 1024);
  EXPECT_EQ(hist->sum(), -5 + 0 + 1 + 2 + 3 + 4 + 1023 + 1024);
}

TEST(MetricsHistogramTest, BucketUpperBounds) {
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(10), 1023);
}

TEST(MetricsHistogramTest, ConcurrentRecordsKeepCountAndSum) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.concurrent_histogram");
  hist->Reset();
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist]() {
      for (int i = 0; i < kRecords; ++i) hist->Record(7);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist->count(), int64_t{kThreads} * kRecords);
  EXPECT_EQ(hist->sum(), int64_t{kThreads} * kRecords * 7);
  EXPECT_EQ(hist->min(), 7);
  EXPECT_EQ(hist->max(), 7);
}

TEST(MetricsRegistryTest, SnapshotContainsRegisteredInstruments) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snapshot_counter")->Reset();
  registry.GetCounter("test.snapshot_counter")->Increment(42);
  registry.GetGauge("test.snapshot_gauge")->Set(-3);
  metrics::Histogram* hist = registry.GetHistogram("test.snapshot_histogram");
  hist->Reset();
  hist->Record(100);

  const metrics::MetricsSnapshot snap = registry.Snapshot();
  bool found_counter = false, found_gauge = false, found_histogram = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test.snapshot_counter") {
      found_counter = true;
      EXPECT_EQ(c.value, 42);
    }
  }
  for (const auto& g : snap.gauges) {
    if (g.name == "test.snapshot_gauge") {
      found_gauge = true;
      EXPECT_EQ(g.value, -3);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "test.snapshot_histogram") {
      found_histogram = true;
      EXPECT_EQ(h.count, 1);
      EXPECT_EQ(h.sum, 100);
      ASSERT_EQ(h.buckets.size(), 1u);
      EXPECT_EQ(h.buckets[0].count, 1);
      EXPECT_GE(h.buckets[0].upper_bound, 100);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_gauge);
  EXPECT_TRUE(found_histogram);
}

TEST(MetricsRegistryTest, SnapshotJsonIsWellFormed) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json_counter")->Increment();
  registry.GetHistogram("test.json_histogram")->Record(5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_histogram\""), std::string::npos);
  // Balanced braces/brackets (no string values contain either).
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsRegistryTest, ResetSparesGauges) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.reset_counter")->Increment(9);
  registry.GetGauge("test.reset_gauge")->Set(11);
  registry.GetHistogram("test.reset_histogram")->Record(4);
  registry.ResetCountersAndHistograms();
  EXPECT_EQ(registry.GetCounter("test.reset_counter")->value(), 0);
  EXPECT_EQ(registry.GetHistogram("test.reset_histogram")->count(), 0);
  EXPECT_EQ(registry.GetGauge("test.reset_gauge")->value(), 11);
}

TEST(MetricsScopedTimerTest, RecordsOnlyWhenEnabled) {
  auto& registry = MetricsRegistry::Global();
  metrics::Histogram* hist = registry.GetHistogram("test.scoped_timer");
  hist->Reset();
  registry.SetEnabled(false);
  { metrics::ScopedTimerUs timer(hist); }
  EXPECT_EQ(hist->count(), 0);
  registry.SetEnabled(true);
  { metrics::ScopedTimerUs timer(hist); }
  EXPECT_EQ(hist->count(), 1);
  registry.SetEnabled(false);
}

// Tracer tests share the process-global recorder; each enables tracing
// against a clean slate and disables it on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::TraceRecorder::Global().Reset();
    trace::TraceRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    trace::TraceRecorder::Global().SetEnabled(false);
    trace::TraceRecorder::Global().Reset();
    trace::TraceRecorder::Global().SetBufferCapacity(8192);
  }
};

TEST_F(TraceTest, NestedSpansAreRecordedInnermostFirst) {
  {
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("inner");
    }
  }
  const std::vector<trace::SpanRecord> spans =
      trace::TraceRecorder::Global().Collect();
  ASSERT_EQ(spans.size(), 2u);
  // Collect orders by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  // The inner span nests inside the outer window.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  trace::TraceRecorder::Global().SetEnabled(false);
  {
    TRACE_SPAN("invisible");
  }
  EXPECT_TRUE(trace::TraceRecorder::Global().Collect().empty());
}

TEST_F(TraceTest, RingBufferKeepsNewestAndTalliesDropped) {
  trace::TraceRecorder::Global().SetBufferCapacity(16);
  for (int i = 0; i < 40; ++i) {
    TRACE_SPAN("wrap");
  }
  const std::vector<trace::SpanRecord> spans =
      trace::TraceRecorder::Global().Collect();
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_EQ(trace::TraceRecorder::Global().dropped(), 24);
  // Retained spans are the newest: strictly increasing start times and the
  // last recorded span present.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
}

TEST_F(TraceTest, ChromeJsonIsLoadable) {
  {
    TRACE_SPAN("span.a");
  }
  {
    TRACE_SPAN("span.b");
  }
  const std::string json = trace::TraceRecorder::Global().ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span.a\""), std::string::npos);
  EXPECT_NE(json.find("\"span.b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  {
    TRACE_SPAN("main.thread");
  }
  std::thread other([]() {
    TRACE_SPAN("other.thread");
  });
  other.join();
  const std::vector<trace::SpanRecord> spans =
      trace::TraceRecorder::Global().Collect();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST_F(TraceTest, ResetDiscardsSpans) {
  {
    TRACE_SPAN("gone");
  }
  trace::TraceRecorder::Global().Reset();
  EXPECT_TRUE(trace::TraceRecorder::Global().Collect().empty());
  EXPECT_EQ(trace::TraceRecorder::Global().dropped(), 0);
}

TEST(RuntimeOptionsTest, DefaultsWhenEnvUnset) {
  unsetenv("RESUFORMER_THREADS");
  unsetenv("RESUFORMER_FUSED_ATTENTION");
  unsetenv("RESUFORMER_TENSOR_ARENA");
  unsetenv("RESUFORMER_METRICS");
  unsetenv("RESUFORMER_TRACE");
  unsetenv("RESUFORMER_TRACE_CAPACITY");
  const RuntimeOptions options = RuntimeOptions::FromEnv();
  EXPECT_EQ(options.threads, 0);
  EXPECT_TRUE(options.use_fused_attention);
  EXPECT_TRUE(options.use_tensor_arena);
  EXPECT_FALSE(options.enable_metrics);
  EXPECT_FALSE(options.enable_tracing);
  EXPECT_EQ(options.trace_buffer_capacity, 8192);
}

TEST(RuntimeOptionsTest, EnvOverridesApply) {
  setenv("RESUFORMER_THREADS", "3", 1);
  setenv("RESUFORMER_FUSED_ATTENTION", "off", 1);
  setenv("RESUFORMER_TENSOR_ARENA", "0", 1);
  setenv("RESUFORMER_METRICS", "1", 1);
  setenv("RESUFORMER_TRACE", "true", 1);
  setenv("RESUFORMER_TRACE_CAPACITY", "1024", 1);
  const RuntimeOptions options = RuntimeOptions::FromEnv();
  EXPECT_EQ(options.threads, 3);
  EXPECT_FALSE(options.use_fused_attention);
  EXPECT_FALSE(options.use_tensor_arena);
  EXPECT_TRUE(options.enable_metrics);
  EXPECT_TRUE(options.enable_tracing);
  EXPECT_EQ(options.trace_buffer_capacity, 1024);
  unsetenv("RESUFORMER_THREADS");
  unsetenv("RESUFORMER_FUSED_ATTENTION");
  unsetenv("RESUFORMER_TENSOR_ARENA");
  unsetenv("RESUFORMER_METRICS");
  unsetenv("RESUFORMER_TRACE");
  unsetenv("RESUFORMER_TRACE_CAPACITY");
}

TEST(RuntimeOptionsTest, OutOfRangeEnvValuesAreIgnored) {
  setenv("RESUFORMER_THREADS", "-2", 1);
  setenv("RESUFORMER_TRACE_CAPACITY", "4", 1);  // below the minimum of 16
  const RuntimeOptions options = RuntimeOptions::FromEnv();
  EXPECT_EQ(options.threads, 0);
  EXPECT_EQ(options.trace_buffer_capacity, 8192);
  unsetenv("RESUFORMER_THREADS");
  unsetenv("RESUFORMER_TRACE_CAPACITY");
}

TEST(RuntimeOptionsTest, TraceCapacityIsStrictlyParsed) {
  // RESUFORMER_TRACE_CAPACITY is a strict knob: a set-but-bad value still
  // falls back (above) but surfaces an InvalidArgument naming the variable
  // when the caller asks.
  setenv("RESUFORMER_TRACE_CAPACITY", "lots", 1);
  Status strict = Status::OK();
  const RuntimeOptions options = RuntimeOptions::FromEnv(&strict);
  EXPECT_EQ(options.trace_buffer_capacity, 8192);
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.ToString().find("RESUFORMER_TRACE_CAPACITY"),
            std::string::npos);
  unsetenv("RESUFORMER_TRACE_CAPACITY");

  setenv("RESUFORMER_TRACE_CAPACITY", "4", 1);  // below the minimum of 16
  strict = Status::OK();
  (void)RuntimeOptions::FromEnv(&strict);
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.ToString().find("RESUFORMER_TRACE_CAPACITY"),
            std::string::npos);
  unsetenv("RESUFORMER_TRACE_CAPACITY");

  setenv("RESUFORMER_TRACE_CAPACITY", "1024", 1);
  strict = Status::OK();
  const RuntimeOptions good = RuntimeOptions::FromEnv(&strict);
  EXPECT_TRUE(strict.ok());
  EXPECT_EQ(good.trace_buffer_capacity, 1024);
  unsetenv("RESUFORMER_TRACE_CAPACITY");
}

TEST(RuntimeOptionsTest, ServeObservabilityKnobsParse) {
  setenv("RESUFORMER_SERVE_STATS_WINDOW_MS", "500", 1);
  setenv("RESUFORMER_SERVE_SLOW_TRACE_US", "2500", 1);
  setenv("RESUFORMER_SERVE_SLOW_TRACE_DIR", "/tmp/my-traces", 1);
  Status strict = Status::OK();
  const RuntimeOptions options = RuntimeOptions::FromEnv(&strict);
  EXPECT_TRUE(strict.ok()) << strict.ToString();
  EXPECT_EQ(options.serve_stats_window_ms, 500);
  EXPECT_EQ(options.serve_slow_trace_us, 2500);
  EXPECT_EQ(options.serve_slow_trace_dir, "/tmp/my-traces");
  unsetenv("RESUFORMER_SERVE_STATS_WINDOW_MS");
  unsetenv("RESUFORMER_SERVE_SLOW_TRACE_US");
  unsetenv("RESUFORMER_SERVE_SLOW_TRACE_DIR");
}

// ---------------------------------------------------------------------------
// ApproxPercentile boundary contract (see the doc block in metrics.h).

TEST(MetricsPercentileTest, EmptyHistogramIsZeroEverywhere) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.pct_empty");
  hist->Reset();
  EXPECT_EQ(hist->ApproxPercentile(0.0), 0);
  EXPECT_EQ(hist->ApproxPercentile(0.5), 0);
  EXPECT_EQ(hist->ApproxPercentile(1.0), 0);
}

TEST(MetricsPercentileTest, SingleSampleAnswersItsBucketBoundForAllQ) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.pct_single");
  hist->Reset();
  hist->Record(100);  // bucket 7: [64, 128), bound 127
  EXPECT_EQ(hist->ApproxPercentile(0.0), 127);
  EXPECT_EQ(hist->ApproxPercentile(0.5), 127);
  EXPECT_EQ(hist->ApproxPercentile(0.99), 127);
  EXPECT_EQ(hist->ApproxPercentile(1.0), 127);
}

TEST(MetricsPercentileTest, QueriesOutsideUnitIntervalClamp) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.pct_clamp");
  hist->Reset();
  hist->Record(1);     // bucket 1, bound 1
  hist->Record(1000);  // bucket 10, bound 1023
  EXPECT_EQ(hist->ApproxPercentile(-0.5), 1);    // q<=0: first non-empty
  EXPECT_EQ(hist->ApproxPercentile(2.0), 1023);  // q>=1: last non-empty
  // NaN folds into the q>=1 case rather than invoking ceil-of-NaN UB.
  EXPECT_EQ(hist->ApproxPercentile(std::nan("")), 1023);
}

TEST(MetricsPercentileTest, AllSamplesInBucketZeroAnswerZero) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.pct_zero_bucket");
  hist->Reset();
  hist->Record(0);
  hist->Record(-7);
  EXPECT_EQ(hist->ApproxPercentile(0.5), 0);
  EXPECT_EQ(hist->ApproxPercentile(1.0), 0);
}

TEST(MetricsPercentileTest, MedianLandsInTheMiddleBucket) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.pct_median");
  hist->Reset();
  for (int i = 0; i < 100; ++i) hist->Record(10);    // bucket 4, bound 15
  for (int i = 0; i < 100; ++i) hist->Record(1000);  // bucket 10, bound 1023
  EXPECT_EQ(hist->ApproxPercentile(0.5), 15);
  EXPECT_EQ(hist->ApproxPercentile(0.99), 1023);
}

// ---------------------------------------------------------------------------
// RollingHistogram: windowed percentiles with explicit timestamps.

TEST(RollingHistogramTest, WindowMergesLiveEpochs) {
  // 4 epochs x 1s. Record into three consecutive epochs and read back.
  metrics::RollingHistogram rolling(4, 1'000'000'000);
  const int64_t t0 = 100'000'000'000;  // arbitrary epoch-aligned origin
  rolling.Record(10, t0);
  rolling.Record(20, t0 + 1'000'000'000);
  rolling.Record(1000, t0 + 2'000'000'000);
  const auto window = rolling.Window(t0 + 2'500'000'000);
  EXPECT_EQ(window.count, 3);
  EXPECT_EQ(window.sum, 1030);
  EXPECT_EQ(window.p50, 31);    // bucket of 20: [16, 32)
  EXPECT_EQ(window.p99, 1023);  // bucket of 1000: [512, 1024)
}

TEST(RollingHistogramTest, OldEpochsExpireFromTheWindow) {
  metrics::RollingHistogram rolling(4, 1'000'000'000);
  const int64_t t0 = 100'000'000'000;
  rolling.Record(500, t0);
  // Still visible one epoch later...
  EXPECT_EQ(rolling.Window(t0 + 1'000'000'000).count, 1);
  // ...gone once the window (4 epochs) has rolled past it.
  EXPECT_EQ(rolling.Window(t0 + 4'000'000'000).count, 0);
  EXPECT_EQ(rolling.Window(t0 + 4'000'000'000).p99, 0);
}

TEST(RollingHistogramTest, SlotReuseDropsStaleSamples) {
  // With 2 epochs, t0 and t0+2s share a ring slot: the newer epoch must
  // reset the slot rather than inherit the stale count.
  metrics::RollingHistogram rolling(2, 1'000'000'000);
  const int64_t t0 = 100'000'000'000;
  rolling.Record(7, t0);
  rolling.Record(9, t0 + 2'000'000'000);
  const auto window = rolling.Window(t0 + 2'000'000'000);
  EXPECT_EQ(window.count, 1);
  EXPECT_EQ(window.sum, 9);
}

TEST(RollingHistogramTest, ConcurrentRecordsWithinOneEpochAreLossless) {
  metrics::RollingHistogram rolling(4, 1'000'000'000);
  const int64_t t0 = 100'000'000'000;
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rolling, t0]() {
      // Same epoch for every record: no rotation race, so counts are exact.
      for (int i = 0; i < kRecords; ++i) rolling.Record(3, t0 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto window = rolling.Window(t0);
  EXPECT_EQ(window.count, int64_t{kThreads} * kRecords);
  EXPECT_EQ(window.sum, int64_t{kThreads} * kRecords * 3);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

TEST(PrometheusTextTest, RendersCountersGaugesAndHistograms) {
  metrics::MetricsSnapshot snap;
  snap.counters.push_back({"serve.requests", 42});
  snap.gauges.push_back({"serve.queue_depth", 3});
  metrics::MetricsSnapshot::HistogramValue h;
  h.name = "serve.e2e_us";
  h.count = 3;
  h.sum = 1300;
  h.buckets.push_back({127, 2});
  h.buckets.push_back({1023, 1});
  snap.histograms.push_back(h);

  const std::string text = snap.ToPrometheusText();
  // Dotted names sanitize to underscores under the resuformer_ prefix.
  EXPECT_NE(text.find("resuformer_serve_requests 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE resuformer_serve_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("resuformer_serve_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE resuformer_serve_queue_depth gauge"),
            std::string::npos);
  // Histogram: cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("resuformer_serve_e2e_us_bucket{le=\"127\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("resuformer_serve_e2e_us_bucket{le=\"1023\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("resuformer_serve_e2e_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("resuformer_serve_e2e_us_sum 1300"), std::string::npos);
  EXPECT_NE(text.find("resuformer_serve_e2e_us_count 3"), std::string::npos);
  // Original registry name survives on the HELP line.
  EXPECT_NE(text.find(
                "# HELP resuformer_serve_requests resuformer metric "
                "serve.requests"),
            std::string::npos);
  // Every line is a comment or `name{labels} value`; the exposition ends
  // with a newline.
  EXPECT_EQ(text.back(), '\n');
}

TEST(PrometheusTextTest, HostileNamesAreSanitizedAndHelpEscaped) {
  metrics::MetricsSnapshot snap;
  snap.counters.push_back({"weird-name with\nnewline\\slash\"quote", 1});
  const std::string text = snap.ToPrometheusText();
  // Sample line: every hostile character became '_' (no raw newline can
  // break the exposition).
  EXPECT_NE(
      text.find("resuformer_weird_name_with_newline_slash_quote 1"),
      std::string::npos);
  // HELP line: backslash and newline escaped per the 0.0.4 spec.
  EXPECT_NE(text.find("weird-name with\\nnewline\\\\slash\"quote"),
            std::string::npos);
  // No line in the output starts mid-name (raw newline leak).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line[0] == '#' || line.rfind("resuformer_", 0) == 0)
        << "unexpected line: " << line;
  }
}

TEST(PrometheusTextTest, GlobalSnapshotRoundTrips) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom_counter")->Reset();
  registry.GetCounter("test.prom_counter")->Increment(7);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("resuformer_test_prom_counter 7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Request-id span annotation + windowed collection.

TEST_F(TraceTest, SpanIdAnnotatesRecordsAndChromeArgs) {
  {
    TRACE_SPAN_ID("serve.request", 42);
  }
  {
    TRACE_SPAN("unannotated");
  }
  const std::vector<trace::SpanRecord> spans =
      trace::TraceRecorder::Global().Collect();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].request_id, 42);
  EXPECT_EQ(spans[1].request_id, 0);
  const std::string json = trace::ChromeTraceJson(spans);
  // Annotated span carries args.request_id; unannotated spans stay clean.
  EXPECT_NE(json.find("\"request_id\": 42"), std::string::npos);
  EXPECT_EQ(json.find("\"request_id\": 0"), std::string::npos);
}

TEST_F(TraceTest, CollectWindowKeepsOnlyOverlappingSpans) {
  {
    TRACE_SPAN("windowed");
  }
  const std::vector<trace::SpanRecord> all =
      trace::TraceRecorder::Global().Collect();
  ASSERT_EQ(all.size(), 1u);
  const int64_t start = all[0].start_ns;
  const int64_t end = all[0].start_ns + all[0].dur_ns;
  // Overlapping window keeps it; disjoint windows on both sides drop it.
  EXPECT_EQ(trace::TraceRecorder::Global().CollectWindow(start, end).size(),
            1u);
  EXPECT_TRUE(
      trace::TraceRecorder::Global().CollectWindow(end + 10, end + 20)
          .empty());
  EXPECT_TRUE(
      trace::TraceRecorder::Global().CollectWindow(start - 20, start - 10)
          .empty());
}

TEST_F(TraceTest, WriteChromeTraceJsonProducesLoadableFile) {
  {
    TRACE_SPAN_ID("exemplar.span", 9);
  }
  const std::string path =
      ::testing::TempDir() + "/observability_exemplar.json";
  const Status s = trace::WriteChromeTraceJson(
      path, trace::TraceRecorder::Global().Collect());
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"exemplar.span\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\": 9"), std::string::npos);
}

}  // namespace
}  // namespace resuformer
