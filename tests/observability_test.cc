// Tests for the observability layer: MetricsRegistry (counters, gauges,
// log-scale histograms, JSON snapshots), the scoped-span tracer (ring
// buffers, Chrome trace export) and RuntimeOptions::FromEnv. Labeled
// `observability` in ctest for selective runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/runtime_options.h"
#include "common/trace.h"

namespace resuformer {
namespace {

using metrics::MetricsRegistry;

TEST(MetricsCounterTest, ConcurrentIncrementsAreLossless) {
  metrics::Counter* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), int64_t{kThreads} * kIncrements);
}

TEST(MetricsCounterTest, PointersAreStableAcrossLookups) {
  metrics::Counter* first =
      MetricsRegistry::Global().GetCounter("test.stable_counter");
  metrics::Counter* second =
      MetricsRegistry::Global().GetCounter("test.stable_counter");
  EXPECT_EQ(first, second);
}

TEST(MetricsGaugeTest, SetAndAdd) {
  metrics::Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge->Set(10);
  gauge->Add(5);
  gauge->Add(-12);
  EXPECT_EQ(gauge->value(), 3);
  gauge->Reset();
  EXPECT_EQ(gauge->value(), 0);
}

TEST(MetricsHistogramTest, BucketingIsLogScale) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.bucketing");
  hist->Reset();
  // Bucket 0: v <= 0. Bucket b >= 1: [2^(b-1), 2^b).
  hist->Record(-5);
  hist->Record(0);
  hist->Record(1);    // bucket 1: [1, 2)
  hist->Record(2);    // bucket 2: [2, 4)
  hist->Record(3);    // bucket 2
  hist->Record(4);    // bucket 3: [4, 8)
  hist->Record(1023);  // bucket 10: [512, 1024)
  hist->Record(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(hist->bucket_count(0), 2);
  EXPECT_EQ(hist->bucket_count(1), 1);
  EXPECT_EQ(hist->bucket_count(2), 2);
  EXPECT_EQ(hist->bucket_count(3), 1);
  EXPECT_EQ(hist->bucket_count(10), 1);
  EXPECT_EQ(hist->bucket_count(11), 1);
  EXPECT_EQ(hist->count(), 8);
  EXPECT_EQ(hist->min(), -5);
  EXPECT_EQ(hist->max(), 1024);
  EXPECT_EQ(hist->sum(), -5 + 0 + 1 + 2 + 3 + 4 + 1023 + 1024);
}

TEST(MetricsHistogramTest, BucketUpperBounds) {
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(10), 1023);
}

TEST(MetricsHistogramTest, ConcurrentRecordsKeepCountAndSum) {
  metrics::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.concurrent_histogram");
  hist->Reset();
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist]() {
      for (int i = 0; i < kRecords; ++i) hist->Record(7);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist->count(), int64_t{kThreads} * kRecords);
  EXPECT_EQ(hist->sum(), int64_t{kThreads} * kRecords * 7);
  EXPECT_EQ(hist->min(), 7);
  EXPECT_EQ(hist->max(), 7);
}

TEST(MetricsRegistryTest, SnapshotContainsRegisteredInstruments) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snapshot_counter")->Reset();
  registry.GetCounter("test.snapshot_counter")->Increment(42);
  registry.GetGauge("test.snapshot_gauge")->Set(-3);
  metrics::Histogram* hist = registry.GetHistogram("test.snapshot_histogram");
  hist->Reset();
  hist->Record(100);

  const metrics::MetricsSnapshot snap = registry.Snapshot();
  bool found_counter = false, found_gauge = false, found_histogram = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test.snapshot_counter") {
      found_counter = true;
      EXPECT_EQ(c.value, 42);
    }
  }
  for (const auto& g : snap.gauges) {
    if (g.name == "test.snapshot_gauge") {
      found_gauge = true;
      EXPECT_EQ(g.value, -3);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "test.snapshot_histogram") {
      found_histogram = true;
      EXPECT_EQ(h.count, 1);
      EXPECT_EQ(h.sum, 100);
      ASSERT_EQ(h.buckets.size(), 1u);
      EXPECT_EQ(h.buckets[0].count, 1);
      EXPECT_GE(h.buckets[0].upper_bound, 100);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_gauge);
  EXPECT_TRUE(found_histogram);
}

TEST(MetricsRegistryTest, SnapshotJsonIsWellFormed) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json_counter")->Increment();
  registry.GetHistogram("test.json_histogram")->Record(5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_histogram\""), std::string::npos);
  // Balanced braces/brackets (no string values contain either).
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsRegistryTest, ResetSparesGauges) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.reset_counter")->Increment(9);
  registry.GetGauge("test.reset_gauge")->Set(11);
  registry.GetHistogram("test.reset_histogram")->Record(4);
  registry.ResetCountersAndHistograms();
  EXPECT_EQ(registry.GetCounter("test.reset_counter")->value(), 0);
  EXPECT_EQ(registry.GetHistogram("test.reset_histogram")->count(), 0);
  EXPECT_EQ(registry.GetGauge("test.reset_gauge")->value(), 11);
}

TEST(MetricsScopedTimerTest, RecordsOnlyWhenEnabled) {
  auto& registry = MetricsRegistry::Global();
  metrics::Histogram* hist = registry.GetHistogram("test.scoped_timer");
  hist->Reset();
  registry.SetEnabled(false);
  { metrics::ScopedTimerUs timer(hist); }
  EXPECT_EQ(hist->count(), 0);
  registry.SetEnabled(true);
  { metrics::ScopedTimerUs timer(hist); }
  EXPECT_EQ(hist->count(), 1);
  registry.SetEnabled(false);
}

// Tracer tests share the process-global recorder; each enables tracing
// against a clean slate and disables it on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::TraceRecorder::Global().Reset();
    trace::TraceRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    trace::TraceRecorder::Global().SetEnabled(false);
    trace::TraceRecorder::Global().Reset();
    trace::TraceRecorder::Global().SetBufferCapacity(8192);
  }
};

TEST_F(TraceTest, NestedSpansAreRecordedInnermostFirst) {
  {
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("inner");
    }
  }
  const std::vector<trace::SpanRecord> spans =
      trace::TraceRecorder::Global().Collect();
  ASSERT_EQ(spans.size(), 2u);
  // Collect orders by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  // The inner span nests inside the outer window.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  trace::TraceRecorder::Global().SetEnabled(false);
  {
    TRACE_SPAN("invisible");
  }
  EXPECT_TRUE(trace::TraceRecorder::Global().Collect().empty());
}

TEST_F(TraceTest, RingBufferKeepsNewestAndTalliesDropped) {
  trace::TraceRecorder::Global().SetBufferCapacity(16);
  for (int i = 0; i < 40; ++i) {
    TRACE_SPAN("wrap");
  }
  const std::vector<trace::SpanRecord> spans =
      trace::TraceRecorder::Global().Collect();
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_EQ(trace::TraceRecorder::Global().dropped(), 24);
  // Retained spans are the newest: strictly increasing start times and the
  // last recorded span present.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
}

TEST_F(TraceTest, ChromeJsonIsLoadable) {
  {
    TRACE_SPAN("span.a");
  }
  {
    TRACE_SPAN("span.b");
  }
  const std::string json = trace::TraceRecorder::Global().ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span.a\""), std::string::npos);
  EXPECT_NE(json.find("\"span.b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  {
    TRACE_SPAN("main.thread");
  }
  std::thread other([]() {
    TRACE_SPAN("other.thread");
  });
  other.join();
  const std::vector<trace::SpanRecord> spans =
      trace::TraceRecorder::Global().Collect();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST_F(TraceTest, ResetDiscardsSpans) {
  {
    TRACE_SPAN("gone");
  }
  trace::TraceRecorder::Global().Reset();
  EXPECT_TRUE(trace::TraceRecorder::Global().Collect().empty());
  EXPECT_EQ(trace::TraceRecorder::Global().dropped(), 0);
}

TEST(RuntimeOptionsTest, DefaultsWhenEnvUnset) {
  unsetenv("RESUFORMER_THREADS");
  unsetenv("RESUFORMER_FUSED_ATTENTION");
  unsetenv("RESUFORMER_TENSOR_ARENA");
  unsetenv("RESUFORMER_METRICS");
  unsetenv("RESUFORMER_TRACE");
  unsetenv("RESUFORMER_TRACE_CAPACITY");
  const RuntimeOptions options = RuntimeOptions::FromEnv();
  EXPECT_EQ(options.threads, 0);
  EXPECT_TRUE(options.use_fused_attention);
  EXPECT_TRUE(options.use_tensor_arena);
  EXPECT_FALSE(options.enable_metrics);
  EXPECT_FALSE(options.enable_tracing);
  EXPECT_EQ(options.trace_buffer_capacity, 8192);
}

TEST(RuntimeOptionsTest, EnvOverridesApply) {
  setenv("RESUFORMER_THREADS", "3", 1);
  setenv("RESUFORMER_FUSED_ATTENTION", "off", 1);
  setenv("RESUFORMER_TENSOR_ARENA", "0", 1);
  setenv("RESUFORMER_METRICS", "1", 1);
  setenv("RESUFORMER_TRACE", "true", 1);
  setenv("RESUFORMER_TRACE_CAPACITY", "1024", 1);
  const RuntimeOptions options = RuntimeOptions::FromEnv();
  EXPECT_EQ(options.threads, 3);
  EXPECT_FALSE(options.use_fused_attention);
  EXPECT_FALSE(options.use_tensor_arena);
  EXPECT_TRUE(options.enable_metrics);
  EXPECT_TRUE(options.enable_tracing);
  EXPECT_EQ(options.trace_buffer_capacity, 1024);
  unsetenv("RESUFORMER_THREADS");
  unsetenv("RESUFORMER_FUSED_ATTENTION");
  unsetenv("RESUFORMER_TENSOR_ARENA");
  unsetenv("RESUFORMER_METRICS");
  unsetenv("RESUFORMER_TRACE");
  unsetenv("RESUFORMER_TRACE_CAPACITY");
}

TEST(RuntimeOptionsTest, OutOfRangeEnvValuesAreIgnored) {
  setenv("RESUFORMER_THREADS", "-2", 1);
  setenv("RESUFORMER_TRACE_CAPACITY", "4", 1);  // below the minimum of 16
  const RuntimeOptions options = RuntimeOptions::FromEnv();
  EXPECT_EQ(options.threads, 0);
  EXPECT_EQ(options.trace_buffer_capacity, 8192);
  unsetenv("RESUFORMER_THREADS");
  unsetenv("RESUFORMER_TRACE_CAPACITY");
}

}  // namespace
}  // namespace resuformer
