#include <gtest/gtest.h>

#include <cmath>

#include "crf/fuzzy_crf.h"
#include "crf/linear_crf.h"
#include "gradcheck.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace resuformer {
namespace crf {
namespace {

using resuformer::testing::GradCheck;
constexpr double kTol = 5e-2;

/// Subclass exposing start/end for brute-force verification.
class TestableCrf : public LinearCrf {
 public:
  TestableCrf(int num_labels, Rng* rng) : LinearCrf(num_labels, rng) {}
  const Tensor& start() const { return start_; }
  const Tensor& end() const { return end_; }

  double PathScore(const Tensor& e, const std::vector<int>& path) const {
    double s = start_.data()[path[0]] + e.at(0, path[0]);
    for (size_t t = 1; t < path.size(); ++t) {
      s += transitions_.at(path[t - 1], path[t]) +
           e.at(static_cast<int>(t), path[t]);
    }
    s += end_.data()[path.back()];
    return s;
  }

  double BruteLogZ(const Tensor& e) const {
    const int t_len = e.rows();
    std::vector<int> path(t_len, 0);
    std::vector<double> scores;
    while (true) {
      scores.push_back(PathScore(e, path));
      int pos = t_len - 1;
      while (pos >= 0 && ++path[pos] == num_labels_) {
        path[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
    double mx = scores[0];
    for (double x : scores) mx = std::max(mx, x);
    double total = 0.0;
    for (double x : scores) total += std::exp(x - mx);
    return mx + std::log(total);
  }

  std::vector<int> BruteBestPath(const Tensor& e) const {
    const int t_len = e.rows();
    std::vector<int> path(t_len, 0), best_path(t_len, 0);
    double best = -1e30;
    while (true) {
      const double s = PathScore(e, path);
      if (s > best) {
        best = s;
        best_path = path;
      }
      int pos = t_len - 1;
      while (pos >= 0 && ++path[pos] == num_labels_) {
        path[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
    return best_path;
  }
};

TEST(LinearCrfTest, NllMatchesBruteForce) {
  Rng rng(1);
  TestableCrf crf(3, &rng);
  Tensor e = Tensor::Randn({4, 3}, &rng);
  const std::vector<int> labels = {0, 2, 1, 1};
  NoGradGuard guard;
  const double nll = crf.NegLogLikelihood(e, labels).item() * 4;
  const double expected = crf.BruteLogZ(e) - crf.PathScore(e, labels);
  EXPECT_NEAR(nll, expected, 1e-4);
}

TEST(LinearCrfTest, DecodeMatchesBruteForce) {
  Rng rng(2);
  TestableCrf crf(3, &rng);
  for (int trial = 0; trial < 5; ++trial) {
    Tensor e = Tensor::Randn({5, 3}, &rng, 2.0f);
    EXPECT_EQ(crf.Decode(e), crf.BruteBestPath(e));
  }
}

TEST(LinearCrfTest, EmissionGradCheck) {
  Rng rng(3);
  LinearCrf crf(4, &rng);
  Tensor e = Tensor::Randn({5, 4}, &rng);
  const std::vector<int> labels = {0, 1, 2, 3, 1};
  EXPECT_LT(GradCheck(e, [&]() { return crf.NegLogLikelihood(e, labels); }),
            kTol);
}

TEST(LinearCrfTest, TransitionGradCheck) {
  Rng rng(4);
  LinearCrf crf(3, &rng);
  Tensor e = Tensor::Randn({4, 3}, &rng);
  const std::vector<int> labels = {2, 0, 1, 0};
  Tensor trans = crf.Parameters()[0];
  EXPECT_LT(
      GradCheck(trans, [&]() { return crf.NegLogLikelihood(e, labels); }),
      kTol);
}

TEST(LinearCrfTest, LearnsDeterministicSequence) {
  // Emissions are uninformative; the CRF must learn transitions that always
  // produce 0,1,0,1,... alternation.
  Rng rng(5);
  LinearCrf crf(2, &rng);
  nn::Adam adam(crf.Parameters(), 0.1f);
  Tensor e = Tensor::Zeros({6, 2});
  const std::vector<int> labels = {0, 1, 0, 1, 0, 1};
  for (int step = 0; step < 150; ++step) {
    adam.ZeroGrad();
    Tensor loss = crf.NegLogLikelihood(e, labels);
    loss.Backward();
    adam.Step();
  }
  EXPECT_EQ(crf.Decode(e), labels);
}

TEST(LinearCrfTest, SingleTokenSequence) {
  Rng rng(6);
  LinearCrf crf(3, &rng);
  Tensor e = Tensor::FromData({1, 3}, {0.0f, 5.0f, 0.0f});
  EXPECT_EQ(crf.Decode(e), std::vector<int>({1}));
  NoGradGuard guard;
  const float nll = crf.NegLogLikelihood(e, {1}).item();
  EXPECT_GT(nll, 0.0f);
  EXPECT_LT(nll, 1.0f);
}

TEST(FuzzyCrfTest, SingletonSetsEqualExactNll) {
  Rng rng(7);
  FuzzyCrf crf(3, &rng);
  Tensor e = Tensor::Randn({4, 3}, &rng);
  const std::vector<int> labels = {1, 0, 2, 2};
  std::vector<std::vector<bool>> allowed(4, std::vector<bool>(3, false));
  for (int t = 0; t < 4; ++t) allowed[t][labels[t]] = true;
  NoGradGuard guard;
  EXPECT_NEAR(crf.MarginalNegLogLikelihood(e, allowed).item(),
              crf.NegLogLikelihood(e, labels).item(), 1e-4f);
}

TEST(FuzzyCrfTest, AllAllowedGivesZeroLoss) {
  Rng rng(8);
  FuzzyCrf crf(3, &rng);
  Tensor e = Tensor::Randn({4, 3}, &rng);
  std::vector<std::vector<bool>> allowed(4, std::vector<bool>(3, true));
  NoGradGuard guard;
  EXPECT_NEAR(crf.MarginalNegLogLikelihood(e, allowed).item(), 0.0f, 1e-5f);
}

TEST(FuzzyCrfTest, EmissionGradCheck) {
  Rng rng(9);
  FuzzyCrf crf(3, &rng);
  Tensor e = Tensor::Randn({4, 3}, &rng);
  std::vector<std::vector<bool>> allowed(4, std::vector<bool>(3, true));
  allowed[0] = {true, false, false};
  allowed[2] = {false, true, true};
  EXPECT_LT(GradCheck(
                e, [&]() { return crf.MarginalNegLogLikelihood(e, allowed); }),
            kTol);
}

TEST(FuzzyCrfTest, TransitionGradCheck) {
  Rng rng(10);
  FuzzyCrf crf(3, &rng);
  Tensor e = Tensor::Randn({4, 3}, &rng);
  std::vector<std::vector<bool>> allowed(4, std::vector<bool>(3, true));
  allowed[1] = {false, false, true};
  Tensor trans = crf.Parameters()[0];
  EXPECT_LT(GradCheck(trans,
                      [&]() {
                        return crf.MarginalNegLogLikelihood(e, allowed);
                      }),
            kTol);
}

TEST(FuzzyCrfTest, LearnsFromPartialLabels) {
  // Only half the positions are constrained; decoding should still recover
  // the consistent alternating pattern on constrained positions.
  Rng rng(11);
  FuzzyCrf crf(2, &rng);
  nn::Adam adam(crf.Parameters(), 0.1f);
  Tensor e = Tensor::Zeros({6, 2});
  std::vector<std::vector<bool>> allowed(6, std::vector<bool>(2, true));
  allowed[0] = {true, false};
  allowed[2] = {true, false};
  allowed[4] = {true, false};
  allowed[1] = {false, true};
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    Tensor loss = crf.MarginalNegLogLikelihood(e, allowed);
    loss.Backward();
    adam.Step();
  }
  const std::vector<int> decoded = crf.Decode(e);
  EXPECT_EQ(decoded[0], 0);
  EXPECT_EQ(decoded[1], 1);
  EXPECT_EQ(decoded[2], 0);
  EXPECT_EQ(decoded[4], 0);
}

}  // namespace
}  // namespace crf
}  // namespace resuformer
