#include <gtest/gtest.h>

#include <set>

#include "doc/sentence_assembler.h"
#include "resumegen/corpus.h"
#include "resumegen/entity_pools.h"
#include "resumegen/renderer.h"
#include "resumegen/resume_sampler.h"
#include "resumegen/templates.h"

namespace resuformer {
namespace resumegen {
namespace {

using doc::BlockTag;

TEST(EntityPoolsTest, PoolsAreNonTrivial) {
  EXPECT_GE(FirstNames().size(), 40u);
  EXPECT_GE(LastNames().size(), 40u);
  EXPECT_GE(Colleges().size(), 30u);
  EXPECT_GE(Majors().size(), 20u);
  EXPECT_GE(Skills().size(), 30u);
  EXPECT_GE(Awards().size(), 10u);
}

TEST(EntityPoolsTest, HeaderVariantsPerTag) {
  for (int t = 0; t < doc::kNumBlockTags; ++t) {
    EXPECT_GE(HeaderVariants(t).size(), 2u);
  }
}

TEST(ResumeSamplerTest, RecordWellFormed) {
  Rng rng(1);
  ResumeSampler sampler(&rng);
  for (int i = 0; i < 20; ++i) {
    const ResumeRecord rec = sampler.Sample();
    EXPECT_FALSE(rec.first_name.empty());
    EXPECT_NE(rec.email.find('@'), std::string::npos);
    EXPECT_GE(rec.age, 22);
    EXPECT_GE(rec.education.size(), 1u);
    EXPECT_GE(rec.work.size(), 1u);
    EXPECT_LE(rec.work.size(), 4u);
    for (const WorkEntry& w : rec.work) {
      EXPECT_FALSE(w.company.empty());
      EXPECT_GE(w.content_lines.size(), 2u);
      EXPECT_LE(w.dates.start_year * 12 + w.dates.start_month,
                w.dates.end_year * 12 + w.dates.end_month);
    }
  }
}

TEST(ResumeSamplerTest, CompositionalCompaniesAreDiverse) {
  Rng rng(2);
  ResumeSampler sampler(&rng);
  std::set<std::string> companies;
  for (int i = 0; i < 200; ++i) companies.insert(sampler.SampleCompany());
  EXPECT_GE(companies.size(), 150u);  // combinatorial space
}

TEST(FormatDateRangeTest, Styles) {
  DateRange r{2016, 9, 2019, 6, false};
  EXPECT_EQ(FormatDateRange(r, 0), "2016.09 - 2019.06");
  EXPECT_EQ(FormatDateRange(r, 1), "2016/09 - 2019/06");
  r.current = true;
  EXPECT_EQ(FormatDateRange(r, 0), "2016.09 - Present");
}

TEST(TemplatesTest, BuiltinsCoverStyles) {
  const auto& templates = BuiltinTemplates();
  EXPECT_GE(templates.size(), 3u);
  bool has_two_column = false;
  for (const auto& t : templates) {
    if (t.columns == 2) has_two_column = true;
    EXPECT_FALSE(t.block_order.empty());
  }
  EXPECT_TRUE(has_two_column);
}

class RendererInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(RendererInvariantTest, LabelsAlignedAndConsistent) {
  Rng rng(100 + GetParam());
  ResumeSampler sampler(&rng);
  Renderer renderer(&rng);
  const ResumeRecord rec = sampler.Sample();
  const GeneratedResume r = renderer.Render(rec, TemplateById(GetParam()));

  const auto& d = r.document;
  ASSERT_EQ(d.sentences.size(), d.sentence_labels.size());
  ASSERT_EQ(d.sentences.size(), r.entity_labels.size());
  EXPECT_GT(d.NumSentences(), 5);
  EXPECT_GT(d.NumTokens(), 30);

  for (int i = 0; i < d.NumSentences(); ++i) {
    const auto& s = d.sentences[i];
    ASSERT_FALSE(s.tokens.empty());
    ASSERT_EQ(s.tokens.size(), r.entity_labels[i].size());
    // Tokens stay within page bounds and inside the sentence box.
    for (const auto& t : s.tokens) {
      EXPECT_GE(t.box.x0, 0.0f);
      EXPECT_LE(t.box.x1, d.page_width + 1.0f);
      EXPECT_GE(t.box.y0, 0.0f);
      EXPECT_LE(t.box.y1, d.page_height + 1.0f);
      EXPECT_GE(t.page, 0);
      EXPECT_LT(t.page, d.num_pages);
      EXPECT_EQ(t.page, s.page);
    }
  }
  // Every generated resume must contain PInfo and WorkExp blocks. (Title
  // blocks are frequent but optional: templates may skip section headers.)
  std::set<BlockTag> seen;
  for (const auto& b : d.blocks) seen.insert(b.tag);
  EXPECT_TRUE(seen.count(BlockTag::kPInfo));
  EXPECT_TRUE(seen.count(BlockTag::kWorkExp));
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, RendererInvariantTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(RendererTest, EntityLabelsMarkGoldEntities) {
  Rng rng(7);
  ResumeSampler sampler(&rng);
  Renderer renderer(&rng);
  const ResumeRecord rec = sampler.Sample();
  const GeneratedResume r = renderer.Render(rec, TemplateById(0));

  // The rendered document must contain a token span labeled Name matching
  // the record's name.
  bool found_name = false;
  for (size_t s = 0; s < r.entity_labels.size(); ++s) {
    for (size_t t = 0; t < r.entity_labels[s].size(); ++t) {
      doc::EntityTag tag;
      bool begin;
      if (doc::ParseEntityIobLabel(r.entity_labels[s][t], &tag, &begin) &&
          tag == doc::EntityTag::kName && begin) {
        EXPECT_EQ(r.document.sentences[s].tokens[t].word, rec.first_name);
        found_name = true;
      }
    }
  }
  EXPECT_TRUE(found_name);
}

TEST(RendererTest, WorkEntriesEachStartABlock) {
  Rng rng(8);
  ResumeSampler sampler(&rng);
  Renderer renderer(&rng);
  ResumeRecord rec = sampler.Sample();
  const GeneratedResume r = renderer.Render(rec, TemplateById(0));
  int work_blocks = 0;
  for (const auto& b : r.document.blocks) {
    if (b.tag == BlockTag::kWorkExp) ++work_blocks;
  }
  EXPECT_EQ(work_blocks, static_cast<int>(rec.work.size()));
}

TEST(RendererTest, MultiPageResumesOccur) {
  Rng rng(9);
  int multipage = 0;
  for (int i = 0; i < 30; ++i) {
    const GeneratedResume r = GenerateResume(&rng);
    if (r.document.num_pages > 1) ++multipage;
  }
  EXPECT_GT(multipage, 3);
}

TEST(RendererTest, AssemblerRecoversRendererSentences) {
  // Integration: flattening the rendered tokens and re-assembling them should
  // produce nearly the same sentence segmentation (the renderer is the
  // ground truth the assembler approximates).
  Rng rng(10);
  ResumeSampler sampler(&rng);
  Renderer renderer(&rng);
  const GeneratedResume r = renderer.Render(sampler.Sample(), TemplateById(0));
  std::vector<doc::Token> flat;
  for (const auto& s : r.document.sentences) {
    flat.insert(flat.end(), s.tokens.begin(), s.tokens.end());
  }
  doc::SentenceAssembler assembler;
  const auto reassembled = assembler.Assemble(flat);
  const int diff = std::abs(static_cast<int>(reassembled.size()) -
                            r.document.NumSentences());
  EXPECT_LE(diff, r.document.NumSentences() / 5 + 2);
}

TEST(RendererTest, AsciiRenderMentionsLabels) {
  Rng rng(11);
  const GeneratedResume r = GenerateResume(&rng);
  const std::string art =
      AsciiRender(r.document, r.document.sentence_labels);
  EXPECT_NE(art.find("page 1"), std::string::npos);
  EXPECT_NE(art.find("B-PInfo"), std::string::npos);
}

TEST(CorpusTest, GenerateRespectsConfig) {
  CorpusConfig cfg;
  cfg.pretrain_docs = 12;
  cfg.train_docs = 6;
  cfg.val_docs = 3;
  cfg.test_docs = 3;
  const Corpus corpus = GenerateCorpus(cfg);
  EXPECT_EQ(corpus.pretrain.size(), 12u);
  EXPECT_EQ(corpus.train.size(), 6u);
  EXPECT_EQ(corpus.val.size(), 3u);
  EXPECT_EQ(corpus.test.size(), 3u);
}

TEST(CorpusTest, DeterministicBySeed) {
  CorpusConfig cfg;
  cfg.pretrain_docs = 3;
  cfg.train_docs = 2;
  cfg.val_docs = 1;
  cfg.test_docs = 1;
  const Corpus a = GenerateCorpus(cfg);
  const Corpus b = GenerateCorpus(cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].record.FullName(), b.train[i].record.FullName());
    EXPECT_EQ(a.train[i].document.NumTokens(),
              b.train[i].document.NumTokens());
  }
}

TEST(CorpusTest, StatsMatchDocumentContents) {
  CorpusConfig cfg;
  cfg.pretrain_docs = 0;
  cfg.train_docs = 5;
  cfg.val_docs = 0;
  cfg.test_docs = 0;
  const Corpus corpus = GenerateCorpus(cfg);
  const SplitStats stats = ComputeStats(corpus.train);
  EXPECT_EQ(stats.num_docs, 5);
  EXPECT_GT(stats.avg_tokens, 50.0);
  EXPECT_GT(stats.avg_sentences, 10.0);
  EXPECT_GE(stats.avg_pages, 1.0);
}

}  // namespace
}  // namespace resumegen
}  // namespace resuformer
