#include <gtest/gtest.h>

#include "eval/block_metrics.h"
#include "eval/entity_metrics.h"
#include "eval/report.h"
#include "eval/timing.h"

namespace resuformer {
namespace eval {
namespace {

using doc::BlockTag;
using doc::EntityTag;

TEST(ExtractEntitySpansTest, BasicSpans) {
  // B-Name I-Name O B-Date
  const std::vector<int> labels = {
      doc::EntityIobLabel(EntityTag::kName, true),
      doc::EntityIobLabel(EntityTag::kName, false), 0,
      doc::EntityIobLabel(EntityTag::kDate, true)};
  const auto spans = ExtractEntitySpans(labels);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].start, 0);
  EXPECT_EQ(spans[0].end, 2);
  EXPECT_EQ(spans[0].tag, EntityTag::kName);
  EXPECT_EQ(spans[1].start, 3);
}

TEST(ExtractEntitySpansTest, OrphanInsideStartsSpan) {
  const std::vector<int> labels = {
      0, doc::EntityIobLabel(EntityTag::kCompany, false)};
  const auto spans = ExtractEntitySpans(labels);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].tag, EntityTag::kCompany);
}

TEST(ExtractEntitySpansTest, AdjacentBeginsSeparateSpans) {
  const std::vector<int> labels = {
      doc::EntityIobLabel(EntityTag::kDate, true),
      doc::EntityIobLabel(EntityTag::kDate, true)};
  EXPECT_EQ(ExtractEntitySpans(labels).size(), 2u);
}

TEST(MakePrfTest, Math) {
  const Prf prf = MakePrf(8, 10, 16);
  EXPECT_DOUBLE_EQ(prf.precision, 0.8);
  EXPECT_DOUBLE_EQ(prf.recall, 0.5);
  EXPECT_NEAR(prf.f1, 2 * 0.8 * 0.5 / 1.3, 1e-9);
}

TEST(MakePrfTest, ZeroDenominators) {
  const Prf prf = MakePrf(0, 0, 0);
  EXPECT_EQ(prf.precision, 0.0);
  EXPECT_EQ(prf.recall, 0.0);
  EXPECT_EQ(prf.f1, 0.0);
}

TEST(EntityScorerTest, ExactSpanMatching) {
  EntityScorer scorer;
  // Gold: Name[0,2), Date[3,4). Pred: Name[0,2) correct, Date[2,4) wrong.
  const std::vector<int> gold = {
      doc::EntityIobLabel(EntityTag::kName, true),
      doc::EntityIobLabel(EntityTag::kName, false), 0,
      doc::EntityIobLabel(EntityTag::kDate, true)};
  const std::vector<int> pred = {
      doc::EntityIobLabel(EntityTag::kName, true),
      doc::EntityIobLabel(EntityTag::kName, false),
      doc::EntityIobLabel(EntityTag::kDate, true),
      doc::EntityIobLabel(EntityTag::kDate, false)};
  scorer.Add(pred, gold);
  const Prf name = scorer.ForTag(EntityTag::kName);
  EXPECT_DOUBLE_EQ(name.f1, 1.0);
  const Prf date = scorer.ForTag(EntityTag::kDate);
  EXPECT_DOUBLE_EQ(date.f1, 0.0);
  const Prf overall = scorer.Overall();
  EXPECT_DOUBLE_EQ(overall.precision, 0.5);
  EXPECT_DOUBLE_EQ(overall.recall, 0.5);
}

TEST(EntityScorerTest, LengthMismatchPadded) {
  EntityScorer scorer;
  scorer.Add({doc::EntityIobLabel(EntityTag::kAge, true)},
             {doc::EntityIobLabel(EntityTag::kAge, true), 0, 0});
  EXPECT_DOUBLE_EQ(scorer.ForTag(EntityTag::kAge).f1, 1.0);
}

doc::Document MakeDocWithAreas() {
  doc::Document d;
  auto add_sentence = [&d](float area_side, int gold_label) {
    doc::Sentence s;
    doc::Token t;
    t.word = "x";
    t.box = doc::BBox{0, 0, area_side, 1};  // area = area_side
    s.tokens = {t};
    s.box = t.box;
    d.sentences.push_back(s);
    d.sentence_labels.push_back(gold_label);
  };
  // Two PInfo sentences (areas 10 and 30), one WorkExp (area 60).
  add_sentence(10, doc::IobLabel(BlockTag::kPInfo, true));
  add_sentence(30, doc::IobLabel(BlockTag::kPInfo, false));
  add_sentence(60, doc::IobLabel(BlockTag::kWorkExp, true));
  return d;
}

TEST(BlockScorerTest, AreaWeightedScores) {
  doc::Document d = MakeDocWithAreas();
  // Prediction: first sentence correct, second mislabeled WorkExp, third
  // correct.
  const std::vector<int> pred = {doc::IobLabel(BlockTag::kPInfo, true),
                                 doc::IobLabel(BlockTag::kWorkExp, true),
                                 doc::IobLabel(BlockTag::kWorkExp, false)};
  BlockScorer scorer;
  scorer.Add(d, pred);
  const Prf pinfo = scorer.ForTag(BlockTag::kPInfo);
  // detected PInfo area 10, gold 40, correct 10.
  EXPECT_DOUBLE_EQ(pinfo.precision, 1.0);
  EXPECT_DOUBLE_EQ(pinfo.recall, 0.25);
  const Prf work = scorer.ForTag(BlockTag::kWorkExp);
  // detected 90, gold 60, correct 60.
  EXPECT_NEAR(work.precision, 60.0 / 90.0, 1e-9);
  EXPECT_DOUBLE_EQ(work.recall, 1.0);
}

TEST(BlockScorerTest, BAndIVariantsMapToSameTag) {
  doc::Document d = MakeDocWithAreas();
  const std::vector<int> pred = {doc::IobLabel(BlockTag::kPInfo, false),
                                 doc::IobLabel(BlockTag::kPInfo, true),
                                 doc::IobLabel(BlockTag::kWorkExp, false)};
  BlockScorer scorer;
  scorer.Add(d, pred);
  EXPECT_DOUBLE_EQ(scorer.ForTag(BlockTag::kPInfo).f1, 1.0);
  EXPECT_DOUBLE_EQ(scorer.ForTag(BlockTag::kWorkExp).f1, 1.0);
  EXPECT_DOUBLE_EQ(scorer.Overall().f1, 1.0);
}

TEST(ReportTest, CellFormats) {
  Prf prf;
  prf.precision = 0.8793;
  prf.recall = 0.9591;
  prf.f1 = 0.9175;
  EXPECT_EQ(PrfCell(prf), "91.75 (95.91 / 87.93)");
  EXPECT_EQ(F1Cell(prf), "91.75");
  EXPECT_EQ(LatencyCell(0.27), "0.27s");
  EXPECT_EQ(LatencyCell(0.012), "0.012s");
}

TEST(TimingTest, StopwatchAndMeter) {
  Stopwatch sw;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(sw.Seconds(), 0.0);
  (void)x;
  LatencyMeter meter;
  meter.Add(0.2);
  meter.Add(0.4);
  EXPECT_DOUBLE_EQ(meter.MeanSeconds(), 0.3);
  EXPECT_EQ(meter.count(), 2);
}

}  // namespace
}  // namespace eval
}  // namespace resuformer
