#include "gradcheck.h"

#include <cmath>

namespace resuformer {
namespace testing {

double GradCheck(Tensor input, const std::function<Tensor()>& loss_fn,
                 double epsilon) {
  input.set_requires_grad(true);
  input.ZeroGrad();
  Tensor loss = loss_fn();
  loss.Backward();
  std::vector<float> analytic(input.grad(), input.grad() + input.size());

  double max_diff = 0.0;
  for (int64_t i = 0; i < input.size(); ++i) {
    const float original = input.data()[i];
    input.data()[i] = original + static_cast<float>(epsilon);
    const double plus = loss_fn().item();
    input.data()[i] = original - static_cast<float>(epsilon);
    const double minus = loss_fn().item();
    input.data()[i] = original;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    max_diff = std::max(max_diff, std::fabs(numeric - analytic[i]));
  }
  return max_diff;
}

}  // namespace testing
}  // namespace resuformer
