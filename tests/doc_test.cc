#include <gtest/gtest.h>

#include "doc/block_tags.h"
#include "doc/document.h"
#include "doc/geometry.h"
#include "doc/sentence_assembler.h"
#include "doc/visual_features.h"

namespace resuformer {
namespace doc {
namespace {

TEST(GeometryTest, BBoxBasics) {
  BBox b{10, 20, 30, 50};
  EXPECT_FLOAT_EQ(b.width(), 20.0f);
  EXPECT_FLOAT_EQ(b.height(), 30.0f);
  EXPECT_FLOAT_EQ(b.area(), 600.0f);
  EXPECT_FLOAT_EQ(b.center_x(), 20.0f);
}

TEST(GeometryTest, UnionCovers) {
  BBox u = Union(BBox{0, 0, 10, 10}, BBox{5, 5, 20, 8});
  EXPECT_FLOAT_EQ(u.x0, 0);
  EXPECT_FLOAT_EQ(u.y0, 0);
  EXPECT_FLOAT_EQ(u.x1, 20);
  EXPECT_FLOAT_EQ(u.y1, 10);
}

TEST(GeometryTest, SameRowDetection) {
  BBox a{0, 100, 50, 110};
  BBox b{60, 102, 90, 112};   // mostly overlapping vertically
  BBox c{60, 120, 90, 130};   // next line
  EXPECT_TRUE(SameRow(a, b));
  EXPECT_FALSE(SameRow(a, c));
}

TEST(GeometryTest, NormalizeCoordRange) {
  EXPECT_EQ(NormalizeCoord(0.0f, 612.0f), 0);
  EXPECT_EQ(NormalizeCoord(612.0f, 612.0f), 1000);
  EXPECT_EQ(NormalizeCoord(306.0f, 612.0f), 500);
  EXPECT_EQ(NormalizeCoord(-5.0f, 612.0f), 0);     // clamped
  EXPECT_EQ(NormalizeCoord(700.0f, 612.0f), 1000);  // clamped
}

TEST(BlockTagsTest, IobRoundTrip) {
  for (int t = 0; t < kNumBlockTags; ++t) {
    for (bool begin : {true, false}) {
      const int label = IobLabel(static_cast<BlockTag>(t), begin);
      BlockTag tag;
      bool b;
      ASSERT_TRUE(ParseIobLabel(label, &tag, &b));
      EXPECT_EQ(static_cast<int>(tag), t);
      EXPECT_EQ(b, begin);
    }
  }
  BlockTag tag;
  bool b;
  EXPECT_FALSE(ParseIobLabel(kOutsideLabel, &tag, &b));
}

TEST(BlockTagsTest, LabelNames) {
  EXPECT_EQ(IobLabelName(kOutsideLabel), "O");
  EXPECT_EQ(IobLabelName(IobLabel(BlockTag::kWorkExp, true)), "B-WorkExp");
  EXPECT_EQ(IobLabelName(IobLabel(BlockTag::kTitle, false)), "I-Title");
}

TEST(EntityTagsTest, IobRoundTrip) {
  for (int t = 0; t < kNumEntityTags; ++t) {
    for (bool begin : {true, false}) {
      const int label = EntityIobLabel(static_cast<EntityTag>(t), begin);
      EntityTag tag;
      bool b;
      ASSERT_TRUE(ParseEntityIobLabel(label, &tag, &b));
      EXPECT_EQ(static_cast<int>(tag), t);
      EXPECT_EQ(b, begin);
    }
  }
  EXPECT_EQ(EntityIobLabelName(EntityIobLabel(EntityTag::kCompany, true)),
            "B-Company");
}

TEST(DocumentTest, BlocksFromLabelsSegments) {
  // B-PInfo I-PInfo B-WorkExp I-WorkExp B-WorkExp O B-Awards
  std::vector<int> labels = {
      IobLabel(BlockTag::kPInfo, true),   IobLabel(BlockTag::kPInfo, false),
      IobLabel(BlockTag::kWorkExp, true), IobLabel(BlockTag::kWorkExp, false),
      IobLabel(BlockTag::kWorkExp, true), kOutsideLabel,
      IobLabel(BlockTag::kAwards, true)};
  const auto blocks = Document::BlocksFromLabels(labels);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].tag, BlockTag::kPInfo);
  EXPECT_EQ(blocks[0].last_sentence, 1);
  EXPECT_EQ(blocks[1].first_sentence, 2);
  EXPECT_EQ(blocks[1].last_sentence, 3);
  EXPECT_EQ(blocks[2].first_sentence, 4);
  EXPECT_EQ(blocks[3].tag, BlockTag::kAwards);
}

TEST(DocumentTest, OrphanContinuationStartsBlock) {
  // I-EduExp without a preceding B- still opens a block (robust decoding).
  std::vector<int> labels = {IobLabel(BlockTag::kEduExp, false)};
  const auto blocks = Document::BlocksFromLabels(labels);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].tag, BlockTag::kEduExp);
}

Token MakeToken(const std::string& w, float x0, float y0, float x1, float y1,
                int page = 0) {
  Token t;
  t.word = w;
  t.box = BBox{x0, y0, x1, y1};
  t.page = page;
  return t;
}

TEST(SentenceAssemblerTest, MergesSameRowTokens) {
  SentenceAssembler assembler;
  std::vector<Token> tokens = {
      MakeToken("John", 50, 100, 80, 110),
      MakeToken("Smith", 85, 100, 120, 110),
      MakeToken("Engineer", 50, 120, 110, 130),
  };
  const auto sentences = assembler.Assemble(tokens);
  ASSERT_EQ(sentences.size(), 2u);
  EXPECT_EQ(sentences[0].Text(), "John Smith");
  EXPECT_EQ(sentences[1].Text(), "Engineer");
  EXPECT_FLOAT_EQ(sentences[0].box.x1, 120.0f);
}

TEST(SentenceAssemblerTest, SplitsAtColumnGap) {
  SentenceAssembler assembler;
  std::vector<Token> tokens = {
      MakeToken("Skills", 40, 100, 80, 110),
      MakeToken("Work", 300, 100, 330, 110),  // far right: second column
      MakeToken("Experience", 335, 100, 400, 110),
  };
  const auto sentences = assembler.Assemble(tokens);
  ASSERT_EQ(sentences.size(), 2u);
  EXPECT_EQ(sentences[0].Text(), "Skills");
  EXPECT_EQ(sentences[1].Text(), "Work Experience");
}

TEST(SentenceAssemblerTest, SeparatesPages) {
  SentenceAssembler assembler;
  std::vector<Token> tokens = {
      MakeToken("first", 50, 100, 80, 110, 0),
      MakeToken("second", 50, 100, 90, 110, 1),
  };
  const auto sentences = assembler.Assemble(tokens);
  ASSERT_EQ(sentences.size(), 2u);
  EXPECT_EQ(sentences[0].page, 0);
  EXPECT_EQ(sentences[1].page, 1);
}

TEST(SentenceAssemblerTest, UnsortedInputHandled) {
  SentenceAssembler assembler;
  std::vector<Token> tokens = {
      MakeToken("world", 90, 100, 130, 110),
      MakeToken("hello", 50, 100, 85, 110),
  };
  const auto sentences = assembler.Assemble(tokens);
  ASSERT_EQ(sentences.size(), 1u);
  EXPECT_EQ(sentences[0].Text(), "hello world");
}

TEST(SentenceAssemblerTest, EmptyInput) {
  SentenceAssembler assembler;
  EXPECT_TRUE(assembler.Assemble({}).empty());
}

TEST(VisualFeaturesTest, TitleHasLargerFontFeature) {
  Sentence title;
  Token t = MakeToken("Experience", 50, 50, 150, 66);
  t.font_size = 16.0f;
  t.bold = true;
  title.tokens = {t};
  title.box = t.box;

  Sentence body;
  Token b = MakeToken("worked", 50, 80, 100, 90);
  b.font_size = 10.0f;
  body.tokens = {b};
  body.box = b.box;

  const auto ft = ComputeVisualFeatures(title, 612, 792, 2);
  const auto fb = ComputeVisualFeatures(body, 612, 792, 2);
  EXPECT_GT(ft[0], fb[0]);  // font size
  EXPECT_GT(ft[1], fb[1]);  // bold
  EXPECT_EQ(ft.size(), static_cast<size_t>(kVisualFeatureDim));
}

TEST(VisualFeaturesTest, DigitFractionReflectsContent) {
  Sentence dates;
  Token t = MakeToken("2019.06", 50, 50, 100, 60);
  dates.tokens = {t};
  dates.box = t.box;
  const auto f = ComputeVisualFeatures(dates, 612, 792, 1);
  EXPECT_GT(f[7], 0.8f);  // mostly digits
}

}  // namespace
}  // namespace doc
}  // namespace resuformer
