#ifndef RESUFORMER_TESTS_GRADCHECK_H_
#define RESUFORMER_TESTS_GRADCHECK_H_

#include <functional>

#include "tensor/tensor.h"

namespace resuformer {
namespace testing {

/// Compares the analytic gradient of `loss_fn` w.r.t. `input` against
/// central finite differences. `loss_fn` must be a pure function of the
/// current contents of `input` returning a scalar Tensor.
/// Returns the maximum absolute difference found.
double GradCheck(Tensor input, const std::function<Tensor()>& loss_fn,
                 double epsilon = 1e-3);

}  // namespace testing
}  // namespace resuformer

#endif  // RESUFORMER_TESTS_GRADCHECK_H_
