#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "tensor/ops.h"

namespace resuformer {
namespace nn {
namespace {

using resuformer::testing::GradCheck;
constexpr double kTol = 8e-2;

TEST(ModuleTest, ParameterRegistryFlattensChildren) {
  Rng rng(1);
  Mlp mlp({4, 8, 2}, &rng);
  // Two linears, each weight+bias.
  EXPECT_EQ(mlp.Parameters().size(), 4u);
  EXPECT_EQ(mlp.ParameterCount(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(ModuleTest, TrainingFlagPropagates) {
  Rng rng(1);
  TransformerEncoder enc(TransformerConfig{8, 2, 2, 16, 0.1f}, &rng);
  enc.SetTraining(false);
  EXPECT_FALSE(enc.training());
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(2);
  Linear lin(3, 5, &rng);
  Tensor x = Tensor::Randn({4, 3}, &rng);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 5);
}

TEST(LinearTest, GradThroughLayer) {
  Rng rng(3);
  Linear lin(4, 3, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(lin.Forward(x)); }), kTol);
}

TEST(EmbeddingTest, LookupMatchesWeightRows) {
  Rng rng(4);
  Embedding emb(10, 6, &rng);
  Tensor out = emb.Forward({3, 3, 7});
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(out.at(0, j), emb.weight().at(3, j));
    EXPECT_EQ(out.at(1, j), emb.weight().at(3, j));
    EXPECT_EQ(out.at(2, j), emb.weight().at(7, j));
  }
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(5);
  LayerNorm ln(8);
  Tensor x = Tensor::Randn({3, 8}, &rng, 5.0f);
  Tensor y = ln.Forward(x);
  for (int i = 0; i < 3; ++i) {
    float mean = 0.0f, var = 0.0f;
    for (int j = 0; j < 8; ++j) mean += y.at(i, j);
    mean /= 8;
    for (int j = 0; j < 8; ++j) var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(AttentionTest, OutputShapeAndGrad) {
  Rng rng(6);
  MultiHeadSelfAttention attn(8, 2, &rng);
  Tensor x = Tensor::Randn({5, 8}, &rng);
  Tensor y = attn.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
  EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(attn.Forward(x)); }), kTol);
}

TEST(AttentionTest, MaskBiasBlocksPositions) {
  Rng rng(7);
  MultiHeadSelfAttention attn(8, 2, &rng);
  Tensor x = Tensor::Randn({3, 8}, &rng);
  // Bias that forbids attending to position 2 from anywhere.
  Tensor bias = Tensor::Zeros({3, 3});
  for (int i = 0; i < 3; ++i) bias.at(i, 2) = -1e9f;
  Tensor masked = attn.Forward(x, bias);
  // Changing row 2's content must not affect rows 0-1 outputs beyond its own
  // query path. Perturb x row 2 and compare outputs of row 0.
  Tensor x2 = x.Detach();
  for (int j = 0; j < 8; ++j) x2.at(2, j) += 10.0f;
  Tensor masked2 = attn.Forward(x2, bias);
  for (int j = 0; j < 8; ++j) {
    EXPECT_NEAR(masked.at(0, j), masked2.at(0, j), 1e-4f);
  }
}

TEST(AttentionTest, FusedMatchesReferenceForwardAndGradients) {
  // Same Rng seed -> identical projection weights in both modules; the only
  // difference is the execution path. Head counts cover the paper's 12-head
  // regime shape-wise (dim 32 divides by all of them); T != dim throughout.
  const int dim = 32;
  for (int num_heads : {1, 4, 8}) {
    for (bool with_bias : {false, true}) {
      for (int t_len : {5, 11}) {
        Rng rng_fused(42), rng_ref(42), rng_data(43);
        MultiHeadSelfAttention fused(dim, num_heads, &rng_fused,
                                     /*fused=*/true);
        MultiHeadSelfAttention reference(dim, num_heads, &rng_ref,
                                         /*fused=*/false);
        ASSERT_TRUE(fused.fused());
        ASSERT_FALSE(reference.fused());

        Tensor x = Tensor::Randn({t_len, dim}, &rng_data);
        x.set_requires_grad(true);
        Tensor bias = with_bias
                          ? Tensor::Randn({t_len, t_len}, &rng_data, 0.5f)
                          : Tensor();

        x.ZeroGrad();
        for (Tensor& p : fused.Parameters()) p.ZeroGrad();
        Tensor yf = fused.Forward(x, bias);
        ops::Mean(yf).Backward();
        std::vector<float> fused_dx = x.impl()->grad;
        std::vector<std::vector<float>> fused_dp;
        for (Tensor& p : fused.Parameters()) fused_dp.push_back(p.impl()->grad);

        x.ZeroGrad();
        for (Tensor& p : reference.Parameters()) p.ZeroGrad();
        Tensor yr = reference.Forward(x, bias);
        ops::Mean(yr).Backward();

        // Forward and gradients: float-rounding agreement (the fused path's
        // score reductions are SIMD-reassociated, so not bitwise).
        ASSERT_EQ(yf.shape(), yr.shape());
        for (int64_t i = 0; i < yf.size(); ++i) {
          ASSERT_NEAR(yf.data()[i], yr.data()[i],
                      1e-5f * (1.0f + std::abs(yr.data()[i])))
              << "heads=" << num_heads << " bias=" << with_bias
              << " t=" << t_len << " element " << i;
        }
        for (size_t i = 0; i < fused_dx.size(); ++i) {
          ASSERT_NEAR(fused_dx[i], x.impl()->grad[i],
                      1e-5f * (1.0f + std::abs(fused_dx[i])));
        }
        std::vector<Tensor> ref_params = reference.Parameters();
        for (size_t p = 0; p < fused_dp.size(); ++p) {
          const std::vector<float>& ref_grad = ref_params[p].impl()->grad;
          ASSERT_EQ(fused_dp[p].size(), ref_grad.size());
          for (size_t i = 0; i < ref_grad.size(); ++i) {
            ASSERT_NEAR(fused_dp[p][i], ref_grad[i],
                        1e-5f * (1.0f + std::abs(ref_grad[i])))
                << "param " << p << " element " << i;
          }
        }
      }
    }
  }
}

TEST(AttentionTest, FusedGradCheck) {
  Rng rng(11);
  MultiHeadSelfAttention attn(8, 4, &rng, /*fused=*/true);
  Tensor x = Tensor::Randn({5, 8}, &rng);
  EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(attn.Forward(x)); }), kTol);
}

TEST(TransformerTest, FusedFlagReachesAttentionLayers) {
  Rng rng(12);
  TransformerConfig ref_cfg{8, 1, 2, 16, 0.0f, /*fused_attention=*/false};
  TransformerConfig fused_cfg{8, 1, 2, 16, 0.0f, /*fused_attention=*/true};
  Rng rng2(12);
  TransformerEncoder ref_enc(ref_cfg, &rng);
  TransformerEncoder fused_enc(fused_cfg, &rng2);
  Tensor x = Tensor::Randn({4, 8}, &rng);
  Tensor yr = ref_enc.Forward(x);
  Tensor yf = fused_enc.Forward(x);
  for (int64_t i = 0; i < yr.size(); ++i) {
    ASSERT_NEAR(yr.data()[i], yf.data()[i], 1e-4f) << i;
  }
}

TEST(TransformerTest, StackPreservesShape) {
  Rng rng(8);
  TransformerConfig cfg{12, 3, 2, 24, 0.0f};
  TransformerEncoder enc(cfg, &rng);
  Tensor x = Tensor::Randn({6, 12}, &rng);
  Tensor y = enc.Forward(x);
  EXPECT_EQ(y.rows(), 6);
  EXPECT_EQ(y.cols(), 12);
}

TEST(TransformerTest, GradFlowsThroughStack) {
  Rng rng(9);
  TransformerConfig cfg{8, 2, 2, 16, 0.0f};
  TransformerEncoder enc(cfg, &rng);
  Tensor x = Tensor::Randn({4, 8}, &rng);
  EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(enc.Forward(x)); }),
            2e-1);  // deep stack, float32
}

TEST(LstmTest, ShapesAndReverseAlignment) {
  Rng rng(10);
  Lstm lstm(6, 4, &rng);
  Tensor x = Tensor::Randn({5, 6}, &rng);
  Tensor fwd = lstm.Forward(x, false);
  EXPECT_EQ(fwd.rows(), 5);
  EXPECT_EQ(fwd.cols(), 4);
  // Reverse: output row 4 should equal forward-over-reversed-input row 0.
  Tensor rev = lstm.Forward(x, true);
  EXPECT_EQ(rev.rows(), 5);
}

TEST(LstmTest, GradThroughTime) {
  Rng rng(11);
  Lstm lstm(4, 3, &rng);
  Tensor x = Tensor::Randn({4, 4}, &rng);
  EXPECT_LT(GradCheck(x, [&]() { return ops::Mean(lstm.Forward(x)); }), kTol);
}

TEST(BiLstmTest, ConcatenatesDirections) {
  Rng rng(12);
  BiLstm bilstm(6, 5, &rng);
  Tensor x = Tensor::Randn({3, 6}, &rng);
  Tensor y = bilstm.Forward(x);
  EXPECT_EQ(y.cols(), 10);
  EXPECT_EQ(bilstm.output_dim(), 10);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  // min ||w - target||^2
  Rng rng(13);
  Tensor w = Tensor::Randn({4}, &rng);
  w.set_requires_grad(true);
  Tensor target = Tensor::FromData({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  Adam adam({w}, 0.1f);
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    Tensor diff = ops::Sub(w, target);
    Tensor loss = ops::Mean(ops::Mul(diff, diff));
    loss.Backward();
    adam.Step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.at(i), target.at(i), 1e-2f);
}

TEST(OptimizerTest, SgdMomentumMinimizes) {
  Rng rng(14);
  Tensor w = Tensor::Randn({3}, &rng);
  w.set_requires_grad(true);
  Sgd sgd({w}, 0.05f, 0.9f);
  for (int step = 0; step < 200; ++step) {
    sgd.ZeroGrad();
    Tensor loss = ops::Mean(ops::Mul(w, w));
    loss.Backward();
    sgd.Step();
  }
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(w.at(i), 0.0f, 1e-2f);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Tensor w = Tensor::Full({4}, 1.0f, true);
  for (int i = 0; i < 4; ++i) w.grad()[i] = 10.0f;
  Adam adam({w}, 0.1f);
  const float norm = adam.ClipGradNorm(1.0f);
  EXPECT_NEAR(norm, 20.0f, 1e-3f);
  float new_norm = 0.0f;
  for (int i = 0; i < 4; ++i) new_norm += w.grad()[i] * w.grad()[i];
  EXPECT_NEAR(std::sqrt(new_norm), 1.0f, 1e-4f);
}

TEST(OptimizerTest, PerGroupLearningRate) {
  Tensor a = Tensor::Full({1}, 0.0f, true);
  Tensor b = Tensor::Full({1}, 0.0f, true);
  a.grad()[0] = 1.0f;
  b.grad()[0] = 1.0f;
  Sgd sgd({a, b}, 0.1f);
  sgd.SetLearningRateFor({b}, 0.01f);
  sgd.Step();
  EXPECT_NEAR(a.at(0), -0.1f, 1e-6f);
  EXPECT_NEAR(b.at(0), -0.01f, 1e-6f);
}

TEST(OptimizerTest, TrainTinyClassifier) {
  // End-to-end sanity: a 2-layer MLP separates two Gaussian blobs.
  Rng rng(15);
  Mlp mlp({2, 16, 2}, &rng);
  Adam adam(mlp.Parameters(), 0.02f);
  std::vector<float> xs;
  std::vector<int> ys;
  for (int i = 0; i < 60; ++i) {
    const int label = i % 2;
    xs.push_back(static_cast<float>(rng.Normal()) + (label ? 2.5f : -2.5f));
    xs.push_back(static_cast<float>(rng.Normal()) + (label ? 2.5f : -2.5f));
    ys.push_back(label);
  }
  Tensor x = Tensor::FromData({60, 2}, xs);
  for (int epoch = 0; epoch < 60; ++epoch) {
    adam.ZeroGrad();
    Tensor loss = ops::CrossEntropy(mlp.Forward(x), ys);
    loss.Backward();
    adam.Step();
  }
  NoGradGuard guard;
  Tensor logits = mlp.Forward(x);
  int correct = 0;
  for (int i = 0; i < 60; ++i) {
    if ((logits.at(i, 1) > logits.at(i, 0)) == (ys[i] == 1)) ++correct;
  }
  EXPECT_GE(correct, 57);
}

TEST(OptimizerTest, SkipsParametersThatNeverReceivedGradients) {
  // Partial fine-tuning: `frozen` is registered with the optimizer but never
  // flows into the loss, so its grad buffer is never allocated. The
  // optimizer must treat it as zero-gradient: no out-of-bounds read, no
  // allocation, and crucially no weight-decay/momentum update.
  Rng rng(40);
  Tensor active = Tensor::Randn({4}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor frozen = Tensor::Randn({4}, &rng, 1.0f, /*requires_grad=*/true);
  const std::vector<float> active_before(active.data(),
                                         active.data() + active.size());
  const std::vector<float> frozen_before(frozen.data(),
                                         frozen.data() + frozen.size());
  Adam adam({active, frozen}, 0.1f, 0.9f, 0.999f, 1e-8f,
            /*weight_decay=*/0.1f);
  for (int step = 0; step < 3; ++step) {
    adam.ZeroGrad();
    Tensor loss = ops::Mean(ops::Mul(active, active));
    loss.Backward();
    adam.ClipGradNorm(1.0f);
    adam.Step();
  }
  EXPECT_TRUE(frozen.impl()->grad.empty())
      << "optimizer must not allocate grads for untouched parameters";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(frozen.at(i), frozen_before[i])
        << "weight decay applied to a parameter outside the loss";
  }
  // The active parameter did get updates.
  bool active_moved = false;
  for (int i = 0; i < 4; ++i) {
    if (active.at(i) != active_before[i]) active_moved = true;
  }
  EXPECT_TRUE(active_moved);
}

TEST(OptimizerTest, SgdSkipsParametersThatNeverReceivedGradients) {
  Rng rng(41);
  Tensor active = Tensor::Randn({3}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor frozen = Tensor::Randn({3}, &rng, 1.0f, /*requires_grad=*/true);
  const std::vector<float> frozen_before(frozen.data(),
                                         frozen.data() + frozen.size());
  Sgd sgd({active, frozen}, 0.05f, /*momentum=*/0.9f);
  for (int step = 0; step < 3; ++step) {
    sgd.ZeroGrad();
    Tensor loss = ops::Mean(ops::Mul(active, active));
    loss.Backward();
    sgd.Step();
  }
  EXPECT_TRUE(frozen.impl()->grad.empty());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(frozen.at(i), frozen_before[i]);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(16);
  Mlp a({3, 5, 2}, &rng);
  Mlp b({3, 5, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/params.bin";
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].size(); ++j) {
      EXPECT_EQ(pa[i].data()[j], pb[i].data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsMismatchedModule) {
  Rng rng(17);
  Mlp a({3, 5, 2}, &rng);
  Mlp b({3, 7, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/params2.bin";
  ASSERT_TRUE(SaveParameters(a, path).ok());
  EXPECT_FALSE(LoadParameters(&b, path).ok());
  std::remove(path.c_str());
}

namespace {

/// Module with a single 2-D weight; lets tests pick exact parameter shapes.
class SingleWeightModule : public Module {
 public:
  explicit SingleWeightModule(std::vector<int> shape) {
    weight_ = RegisterParameter(Tensor::Zeros(std::move(shape)));
  }
  Tensor weight_;
};

}  // namespace

TEST(SerializeTest, LoadRejectsTransposedShapes) {
  // Same flattened size, different layout: RFP1 loaded this silently into
  // the wrong layout; RFP2 records per-tensor shapes and must reject it.
  SingleWeightModule a({3, 5});
  SingleWeightModule b({5, 3});
  for (int i = 0; i < 15; ++i) a.weight_.data()[i] = static_cast<float>(i);
  const std::string path = ::testing::TempDir() + "/params_t.bin";
  ASSERT_TRUE(SaveParameters(a, path).ok());
  const Status status = LoadParameters(&b, path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(SerializeTest, ReadsLegacyRfp1Files) {
  // Hand-write an RFP1 record (magic, count, flat size, raw floats) and
  // check the loader still accepts it.
  SingleWeightModule m({2, 3});
  const std::string path = ::testing::TempDir() + "/params_v1.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const uint32_t magic = 0x52465031;  // "RFP1"
    const uint64_t count = 1;
    const uint64_t n = 6;
    const float values[6] = {1, 2, 3, 4, 5, 6};
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(values), sizeof(values));
  }
  ASSERT_TRUE(LoadParameters(&m, path).ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(m.weight_.data()[i], static_cast<float>(i + 1));
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RFP3 (mmap'd zero-copy) checkpoints + the PR-7 header-validation sweep.
// ---------------------------------------------------------------------------

namespace {

/// Byte-patches `path` at `offset` (opens r+b; the file must exist).
void PatchFile(const std::string& path, int64_t offset, const void* bytes,
               size_t n) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekp(offset);
  f.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(n));
  ASSERT_TRUE(f.good());
}

/// Truncates `path` to `new_size` bytes by rewriting its prefix.
void TruncateFile(const std::string& path, int64_t new_size) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << path;
  std::vector<char> head(static_cast<size_t>(new_size));
  in.read(head.data(), new_size);
  ASSERT_EQ(in.gcount(), new_size);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(head.data(), new_size);
  ASSERT_TRUE(out.good());
}

void ExpectParametersEqual(Module& a, Module& b) {
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].size(), pb[i].size()) << "parameter " << i;
    for (int64_t j = 0; j < pa[i].size(); ++j) {
      ASSERT_EQ(pa[i].data()[j], pb[i].data()[j])
          << "parameter " << i << " element " << j;
    }
  }
}

}  // namespace

TEST(SerializeTest, Rfp3SaveMmapLoadRoundTrip) {
  Rng rng(19);
  Mlp a({3, 5, 2}, &rng);
  Mlp b({3, 5, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/params_v3.bin";
  ASSERT_TRUE(SaveParameters(a, path, CheckpointFormat::kRfp3).ok());
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  ExpectParametersEqual(a, b);
#if defined(__unix__) || defined(__APPLE__)
  // On mmap platforms the loaded tensors must point at the mapped pages
  // (zero-copy), not at private heap copies.
  for (Tensor& p : b.Parameters()) {
    EXPECT_TRUE(p.has_external_storage());
  }
#endif
  std::remove(path.c_str());
}

TEST(SerializeTest, Rfp3MmapTensorsAreCopyOnWrite) {
  // MAP_PRIVATE: an optimizer-style in-place write must not leak back into
  // the checkpoint file (a second load still sees the saved values).
  Rng rng(20);
  Mlp a({2, 4, 2}, &rng);
  Mlp b({2, 4, 2}, &rng);
  Mlp c({2, 4, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/params_cow.bin";
  ASSERT_TRUE(SaveParameters(a, path, CheckpointFormat::kRfp3).ok());
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  for (Tensor& p : b.Parameters()) {
    for (int64_t j = 0; j < p.size(); ++j) p.data()[j] = -123.0f;
  }
  ASSERT_TRUE(LoadParameters(&c, path).ok());
  ExpectParametersEqual(a, c);
  std::remove(path.c_str());
}

TEST(SerializeTest, Rfp3RejectsMismatchedShapes) {
  SingleWeightModule a({3, 5});
  SingleWeightModule b({5, 3});
  const std::string path = ::testing::TempDir() + "/params_v3_t.bin";
  ASSERT_TRUE(SaveParameters(a, path, CheckpointFormat::kRfp3).ok());
  const Status status = LoadParameters(&b, path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(SerializeTest, Rfp3TruncatedPayloadIsFailedPrecondition) {
  SingleWeightModule a({8, 8});
  SingleWeightModule b({8, 8});
  const std::string path = ::testing::TempDir() + "/params_v3_trunc.bin";
  ASSERT_TRUE(SaveParameters(a, path, CheckpointFormat::kRfp3).ok());
  // Chop the tail of the (64-byte-aligned) payload region.
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  const int64_t full = probe.tellg();
  probe.close();
  TruncateFile(path, full - 32);
  const Status status = LoadParameters(&b, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.message();
  EXPECT_NE(status.message().find("parameter"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(SerializeTest, Rfp2TruncatedPayloadNamesParameter) {
  Rng rng(21);
  Mlp a({3, 5, 2}, &rng);
  Mlp b({3, 5, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/params_v2_trunc.bin";
  ASSERT_TRUE(SaveParameters(a, path, CheckpointFormat::kRfp2).ok());
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  const int64_t full = probe.tellg();
  probe.close();
  TruncateFile(path, full - 4);
  const Status status = LoadParameters(&b, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.message();
  EXPECT_NE(status.message().find("parameter"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(SerializeTest, Rfp2OversizedDimRejectedBeforeAllocation) {
  // Corrupt the first record's dims[0] to ~2^31: the claimed payload
  // (gigabytes) must be bounds-checked against the file size BEFORE any
  // buffer is sized from it.
  SingleWeightModule a({3, 5});
  SingleWeightModule b({3, 5});
  const std::string path = ::testing::TempDir() + "/params_v2_dim.bin";
  ASSERT_TRUE(SaveParameters(a, path, CheckpointFormat::kRfp2).ok());
  const int32_t huge = 0x7ffffff0;
  // RFP2 layout: magic u32 + count u64, then record 0's rank u32 at 12 and
  // dims[0] at 16.
  PatchFile(path, 16, &huge, sizeof(huge));
  const Status status = LoadParameters(&b, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.message();
  std::remove(path.c_str());
}

TEST(SerializeTest, Rfp2OversizedRankRejected) {
  SingleWeightModule a({3, 5});
  SingleWeightModule b({3, 5});
  const std::string path = ::testing::TempDir() + "/params_v2_rank.bin";
  ASSERT_TRUE(SaveParameters(a, path, CheckpointFormat::kRfp2).ok());
  const uint32_t rank = 1u << 20;
  PatchFile(path, 12, &rank, sizeof(rank));
  const Status status = LoadParameters(&b, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.message();
  std::remove(path.c_str());
}

TEST(SerializeTest, ConvertRfp2ToRfp3RoundTrip) {
  Rng rng(22);
  Mlp a({4, 6, 3}, &rng);
  Mlp b({4, 6, 3}, &rng);
  const std::string v2 = ::testing::TempDir() + "/conv_v2.bin";
  const std::string v3 = ::testing::TempDir() + "/conv_v3.bin";
  ASSERT_TRUE(SaveParameters(a, v2, CheckpointFormat::kRfp2).ok());
  ASSERT_TRUE(ConvertRfp2ToRfp3(v2, v3).ok());
  ASSERT_TRUE(LoadParameters(&b, v3).ok());
  ExpectParametersEqual(a, b);
  std::remove(v2.c_str());
  std::remove(v3.c_str());
}

TEST(SerializeTest, ConvertValidatesSourceLikeLoad) {
  SingleWeightModule a({3, 5});
  const std::string v2 = ::testing::TempDir() + "/conv_bad_v2.bin";
  const std::string v3 = ::testing::TempDir() + "/conv_bad_v3.bin";
  ASSERT_TRUE(SaveParameters(a, v2, CheckpointFormat::kRfp2).ok());
  const int32_t huge = 0x7ffffff0;
  PatchFile(v2, 16, &huge, sizeof(huge));
  const Status status = ConvertRfp2ToRfp3(v2, v3);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.message();
  std::remove(v2.c_str());
}

TEST(SerializeTest, CopyParametersClones) {
  Rng rng(18);
  Mlp a({2, 4, 2}, &rng);
  Mlp b({2, 4, 2}, &rng);
  ASSERT_TRUE(CopyParameters(a, &b).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].data()[0], pb[i].data()[0]);
  }
}

}  // namespace
}  // namespace nn
}  // namespace resuformer
