// Concurrency stress suite (ctest label: stress).
//
// These tests hammer the shared runtime pieces — thread pool, metrics
// registry, tracer rings, tensor arena, batched inference — from many
// threads at once. They assert functional correctness (sums match, counts
// balance, results equal serial execution), but their main job is to give
// ThreadSanitizer something to chew on: the tsan preset runs this suite and
// must report zero races.
//
//   cmake --preset tsan && cmake --build build-tsan -j
//   cd build-tsan && ctest -L stress --output-on-failure
//
// The misuse death tests double as documentation of the SetNumThreads
// contract: configure the pool at startup or between dispatches, never from
// inside a ParallelFor body and never while another thread is dispatching.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "pipeline/pipeline.h"
#include "tensor/arena.h"

namespace resuformer {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(StressThreadPool, RepeatedParallelForPerWorkerAccumulation) {
  ThreadPool& pool = ThreadPool::Global();
  pool.SetNumThreads(4);
  constexpr int64_t kCount = 100000;
  constexpr int64_t kWant = kCount * (kCount - 1) / 2;
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<int64_t> sums(4, 0);
    pool.ParallelFor(kCount, [&](int worker, int64_t begin, int64_t end) {
      int64_t s = 0;
      for (int64_t i = begin; i < end; ++i) s += i;
      sums[worker] += s;
    });
    const int64_t total = std::accumulate(sums.begin(), sums.end(), int64_t{0});
    ASSERT_EQ(total, kWant) << "iteration " << iter;
  }
  pool.SetNumThreads(1);
}

// Several external (non-pool) threads dispatch at once. At most one claims
// the pool; the rest run their bodies inline on the caller. Either way every
// dispatch must compute the same total.
TEST(StressThreadPool, ConcurrentExternalDispatchesStayCorrect) {
  ThreadPool& pool = ThreadPool::Global();
  pool.SetNumThreads(4);
  constexpr int64_t kCount = 10000;
  constexpr int64_t kWant = kCount * (kCount - 1) / 2;
  constexpr int kCallers = 4;
  constexpr int kItersPerCaller = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&]() {
      for (int iter = 0; iter < kItersPerCaller; ++iter) {
        std::vector<int64_t> sums(4, 0);
        pool.ParallelFor(kCount, [&](int worker, int64_t begin, int64_t end) {
          int64_t s = 0;
          for (int64_t i = begin; i < end; ++i) s += i;
          sums[worker] += s;
        });
        const int64_t total =
            std::accumulate(sums.begin(), sums.end(), int64_t{0});
        if (total != kWant) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  pool.SetNumThreads(1);
}

TEST(StressThreadPoolDeathTest, SetNumThreadsFromPooledBodyAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool& pool = ThreadPool::Global();
        pool.SetNumThreads(4);
        pool.ParallelFor(4, [&](int worker, int64_t, int64_t) {
          if (worker == 0) pool.SetNumThreads(2);
        });
      },
      "inside a ParallelFor body");
}

// The serial pool runs bodies inline on the caller, but the body is still
// "inside a ParallelFor" — resizing from it must abort just the same.
TEST(StressThreadPoolDeathTest, SetNumThreadsFromInlineBodyAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool& pool = ThreadPool::Global();
        pool.SetNumThreads(1);
        pool.ParallelFor(8,
                         [&](int, int64_t, int64_t) { pool.SetNumThreads(2); });
      },
      "inside a ParallelFor body");
}

TEST(StressThreadPoolDeathTest, SetNumThreadsMidDispatchAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool& pool = ThreadPool::Global();
        pool.SetNumThreads(2);
        std::atomic<bool> started{false};
        std::atomic<bool> release{false};
        std::thread dispatcher([&]() {
          pool.ParallelFor(2, [&](int, int64_t, int64_t) {
            started.store(true);
            while (!release.load()) std::this_thread::yield();
          });
        });
        while (!started.load()) std::this_thread::yield();
        pool.SetNumThreads(3);  // dispatch still in flight: must abort
        release.store(true);
        dispatcher.join();
      },
      "dispatch is in flight");
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(StressMetrics, ConcurrentCountersHistogramsAndRegistration) {
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  auto& registry = metrics::MetricsRegistry::Global();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t]() {
      // Same-name lookups race on registration; each must get the same
      // instrument. Per-thread names race on map insertion.
      metrics::Counter* shared = registry.GetCounter("stress.shared_counter");
      metrics::Counter* own =
          registry.GetCounter("stress.counter." + std::to_string(t));
      metrics::Histogram* hist = registry.GetHistogram("stress.latency");
      for (int i = 0; i < kIters; ++i) {
        shared->Increment();
        own->Increment();
        hist->Record(i % 100);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.GetCounter("stress.shared_counter")->value(),
            int64_t{kThreads} * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("stress.counter." + std::to_string(t))
                  ->value(),
              kIters);
  }
  metrics::Histogram* hist = registry.GetHistogram("stress.latency");
  EXPECT_EQ(hist->count(), int64_t{kThreads} * kIters);
  EXPECT_EQ(hist->min(), 0);
  EXPECT_EQ(hist->max(), 99);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(StressTrace, RingOverwriteUnderContentionWithConcurrentCollect) {
  auto& recorder = trace::TraceRecorder::Global();
  recorder.SetBufferCapacity(16);
  recorder.Reset();

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::atomic<bool> done{false};
  // Reader thread races Collect()/dropped() against active recording; the
  // per-thread buffer mutexes must make that safe.
  std::thread reader([&]() {
    while (!done.load()) {
      const std::vector<trace::SpanRecord> spans = recorder.Collect();
      for (size_t i = 1; i < spans.size(); ++i) {
        ASSERT_LE(spans[i - 1].start_ns, spans[i].start_ns);
      }
      (void)recorder.dropped();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder]() {
      for (int i = 0; i < kSpansPerThread; ++i) {
        recorder.Record("stress.span", trace::NowNs(), 10);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true);
  reader.join();

  // Each writer thread's ring keeps its most recent 16 spans; everything
  // older was overwritten and tallied.
  const std::vector<trace::SpanRecord> spans = recorder.Collect();
  EXPECT_EQ(static_cast<int>(spans.size()), kThreads * 16);
  EXPECT_EQ(recorder.dropped(), int64_t{kThreads} * (kSpansPerThread - 16));

  recorder.Reset();
  recorder.SetBufferCapacity(8192);
}

// ---------------------------------------------------------------------------
// TensorArena
// ---------------------------------------------------------------------------

TEST(StressArena, AcquireReleaseChurnBalancesOutstanding) {
  TensorArena& arena = TensorArena::Global();
  const int64_t outstanding_before = arena.stats().outstanding;

  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      TensorArena& a = TensorArena::Global();
      for (int i = 0; i < kIters; ++i) {
        // Mix of size classes, including below-minimum and byte-exact
        // power-of-two sizes, so free lists grow, hit, and drop.
        const int64_t n = int64_t{16} << ((i + t) % 10);
        bool from_arena = false;
        std::vector<float> buf = a.Acquire(n, &from_arena);
        ASSERT_EQ(static_cast<int64_t>(buf.size()), n);
        ASSERT_EQ(buf[0], 0.0f);  // Acquire promises zero-filled storage
        buf[0] = 1.0f;
        a.Release(std::move(buf), from_arena);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(arena.stats().outstanding, outstanding_before);
}

// ---------------------------------------------------------------------------
// Batched inference
// ---------------------------------------------------------------------------

pipeline::PipelineOptions TinyOptions() {
  pipeline::PipelineOptions options;
  options.model.hidden = 16;
  options.model.sentence_layers = 1;
  options.model.document_layers = 1;
  options.model.num_heads = 2;
  options.model.ffn = 32;
  options.model.max_tokens_per_sentence = 12;
  options.model.max_sentences = 32;
  options.model.lstm_hidden = 12;
  options.ner.hidden = 16;
  options.ner.layers = 1;
  options.ner.num_heads = 2;
  options.ner.ffn = 32;
  options.ner.max_tokens = 60;
  options.ner.lstm_hidden = 8;
  options.vocab_size = 400;
  options.pretrain_epochs = 1;
  options.finetune.epochs = 2;
  options.finetune.patience = 2;
  options.selftrain.teacher_epochs = 1;
  options.selftrain.teacher_patience = 1;
  options.selftrain.iterations = 1;
  options.ner_data.train_sequences = 30;
  options.ner_data.val_sequences = 10;
  options.ner_data.test_sequences = 10;
  return options;
}

void ExpectSameResume(const pipeline::StructuredResume& got,
                      const pipeline::StructuredResume& want) {
  ASSERT_EQ(got.blocks.size(), want.blocks.size());
  for (size_t b = 0; b < got.blocks.size(); ++b) {
    EXPECT_EQ(got.blocks[b].tag, want.blocks[b].tag) << "block " << b;
    EXPECT_EQ(got.blocks[b].lines, want.blocks[b].lines) << "block " << b;
    ASSERT_EQ(got.blocks[b].entities.size(), want.blocks[b].entities.size())
        << "block " << b;
    for (size_t e = 0; e < got.blocks[b].entities.size(); ++e) {
      EXPECT_EQ(got.blocks[b].entities[e].tag, want.blocks[b].entities[e].tag);
      EXPECT_EQ(got.blocks[b].entities[e].text,
                want.blocks[b].entities[e].text);
    }
  }
}

TEST(StressPipeline, ConcurrentParseBatchWithStatsMatchesSerialParse) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 4;
  ccfg.train_docs = 6;
  ccfg.val_docs = 2;
  ccfg.test_docs = 4;
  ccfg.seed = 99;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);

  pipeline::TrainReport report;
  auto pl = pipeline::ResuFormerPipeline::TrainFromCorpus(corpus, TinyOptions(),
                                                          &report);
  ASSERT_NE(pl, nullptr);

  std::vector<doc::Document> documents;
  for (const auto& labeled : corpus.test) documents.push_back(labeled.document);

  // Serial ground truth with a serial pool. The first pass warms the arena;
  // the second records per-document stats in steady state.
  ThreadPool::Global().SetNumThreads(1);
  std::vector<pipeline::StructuredResume> expected;
  for (const doc::Document& d : documents) expected.push_back(pl->Parse(d));
  std::vector<pipeline::ParseResult> serial_stats;
  for (const doc::Document& d : documents) {
    serial_stats.push_back(pl->ParseWithStats(d));
  }

  // Per-document arena_hit_rate diffs *thread-local* counters, so a
  // document's rate only reflects its own traffic. Hammer the arena with
  // guaranteed misses from another thread mid-parse: the parse's rate must
  // match the quiet serial rate (the old process-wide diff dragged it down
  // with the noise thread's misses).
  {
    std::atomic<bool> stop{false};
    std::thread noise([&]() {
      while (!stop.load()) {
        // Acquired but never Released: the size class never refills, so
        // every acquire after the first few is a miss on the noise thread.
        std::vector<float> buf =
            TensorArena::Global().Acquire(int64_t{1} << 18);
        buf.clear();
      }
    });
    const pipeline::ParseResult noisy = pl->ParseWithStats(documents[0]);
    stop.store(true);
    noise.join();
    ExpectSameResume(noisy.resume, expected[0]);
    EXPECT_NEAR(noisy.stats.arena_hit_rate,
                serial_stats[0].stats.arena_hit_rate, 1e-12);
    EXPECT_GT(noisy.stats.arena_hit_rate, 0.9);
  }

  // Two external request threads batch-parse concurrently while the pool
  // fans documents out; one claims the pool, the other degrades to inline.
  ThreadPool::Global().SetNumThreads(4);
  constexpr int kRequests = 2;
  std::vector<std::vector<pipeline::ParseResult>> results(kRequests);
  std::vector<std::thread> requests;
  requests.reserve(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    requests.emplace_back(
        [&, r]() { results[r] = pl->ParseBatchWithStats(documents); });
  }
  for (std::thread& t : requests) t.join();
  ThreadPool::Global().SetNumThreads(1);

  for (int r = 0; r < kRequests; ++r) {
    ASSERT_EQ(results[r].size(), documents.size()) << "request " << r;
    for (size_t i = 0; i < results[r].size(); ++i) {
      ExpectSameResume(results[r][i].resume, expected[i]);
      EXPECT_EQ(results[r][i].stats.num_blocks,
                static_cast<int>(results[r][i].resume.blocks.size()));
      EXPECT_GT(results[r][i].stats.num_sentences, 0);
      EXPECT_GT(results[r][i].stats.wall_time_us, 0.0);
      // Batch stats must match the serial stats document for document:
      // identical counts, and a per-document hit rate (thread-local
      // counters) that stays high even with four workers allocating at
      // once.
      EXPECT_EQ(results[r][i].stats.num_sentences,
                serial_stats[i].stats.num_sentences);
      EXPECT_EQ(results[r][i].stats.num_blocks,
                serial_stats[i].stats.num_blocks);
      EXPECT_EQ(results[r][i].stats.num_entities,
                serial_stats[i].stats.num_entities);
      EXPECT_GE(results[r][i].stats.arena_hit_rate, 0.0);
      EXPECT_LE(results[r][i].stats.arena_hit_rate, 1.0);
    }
  }
}

}  // namespace
}  // namespace resuformer
