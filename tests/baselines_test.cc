#include <gtest/gtest.h>

#include "baselines/autoner.h"
#include "baselines/bert_bilstm_crf.h"
#include "baselines/bert_crf.h"
#include "baselines/common.h"
#include "baselines/dr_match.h"
#include "baselines/hibert_crf.h"
#include "baselines/layout_token_model.h"
#include "baselines/roberta_gcn.h"
#include "distant/ner_dataset.h"
#include "eval/entity_metrics.h"
#include "resumegen/corpus.h"

namespace resuformer {
namespace baselines {
namespace {

TokenModelConfig TinyTokenConfig(int vocab) {
  TokenModelConfig cfg;
  cfg.hidden = 16;
  cfg.layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = vocab;
  cfg.window = 64;
  cfg.max_total_tokens = 200;
  cfg.epochs = 4;
  cfg.patience = 4;
  return cfg;
}

struct Fixture {
  Fixture() {
    resumegen::CorpusConfig ccfg;
    ccfg.pretrain_docs = 4;
    ccfg.train_docs = 4;
    ccfg.val_docs = 2;
    ccfg.test_docs = 2;
    ccfg.seed = 21;
    corpus = resumegen::GenerateCorpus(ccfg);
    tokenizer = std::make_unique<text::WordPieceTokenizer>(
        resumegen::TrainTokenizer(corpus, 600));
  }
  resumegen::Corpus corpus;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
};

Fixture& GetFixture() {
  static Fixture* fx = new Fixture();
  return *fx;
}

TEST(TokenizeFlatTest, AlignmentAndLabels) {
  auto& fx = GetFixture();
  TokenModelConfig cfg = TinyTokenConfig(fx.tokenizer->vocab().size());
  const doc::Document& d = fx.corpus.train[0].document;
  const TokenizedDoc flat = TokenizeFlat(d, *fx.tokenizer, cfg);
  EXPECT_GT(flat.ids.size(), 10u);
  EXPECT_LE(static_cast<int>(flat.ids.size()), cfg.max_total_tokens);
  EXPECT_EQ(flat.ids.size(), flat.layout.size());
  EXPECT_EQ(flat.ids.size(), flat.token_labels.size());
  EXPECT_EQ(flat.ids.size(), flat.sentence_index.size());
  // Sentence indices are non-decreasing.
  for (size_t i = 1; i < flat.sentence_index.size(); ++i) {
    EXPECT_GE(flat.sentence_index[i], flat.sentence_index[i - 1]);
  }
  // Only the first token of a labeled sentence may carry a B- label.
  for (size_t i = 1; i < flat.token_labels.size(); ++i) {
    if (flat.sentence_index[i] == flat.sentence_index[i - 1]) {
      doc::BlockTag tag;
      bool begin;
      if (doc::ParseIobLabel(flat.token_labels[i], &tag, &begin)) {
        EXPECT_FALSE(begin);
      }
    }
  }
}

TEST(TokenLabelsToSentenceLabelsTest, MajorityVoteRoundTrip) {
  auto& fx = GetFixture();
  TokenModelConfig cfg = TinyTokenConfig(fx.tokenizer->vocab().size());
  const doc::Document& d = fx.corpus.train[1].document;
  const TokenizedDoc flat = TokenizeFlat(d, *fx.tokenizer, cfg);
  // Perfect token predictions must reconstruct the sentence labels for all
  // sentences covered by the (possibly truncated) token stream.
  const std::vector<int> reconstructed =
      TokenLabelsToSentenceLabels(flat, flat.token_labels);
  const int covered = flat.sentence_index.empty()
                          ? 0
                          : flat.sentence_index.back() + 1;
  int mismatches = 0;
  for (int s = 0; s < covered; ++s) {
    if (reconstructed[s] != d.sentence_labels[s]) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(TokenTaggerTest, FitAndLabelSmoke) {
  auto& fx = GetFixture();
  TokenModelConfig cfg = TinyTokenConfig(fx.tokenizer->vocab().size());
  cfg.epochs = 2;
  Rng rng(1);
  BertCrf model(cfg, fx.tokenizer.get(), &rng);
  std::vector<const doc::Document*> train, val;
  for (const auto& r : fx.corpus.train) train.push_back(&r.document);
  for (const auto& r : fx.corpus.val) val.push_back(&r.document);
  model.Fit(train, val, &rng);
  const std::vector<int> labels =
      model.LabelSentences(fx.corpus.test[0].document);
  EXPECT_EQ(labels.size(),
            static_cast<size_t>(fx.corpus.test[0].document.NumSentences()));
}

TEST(TokenTaggerTest, MlmPretrainingRuns) {
  auto& fx = GetFixture();
  TokenModelConfig cfg = TinyTokenConfig(fx.tokenizer->vocab().size());
  Rng rng(2);
  LayoutTokenModel model(cfg, fx.tokenizer.get(), &rng,
                         /*mlm_pretrain_epochs=*/1);
  std::vector<const doc::Document*> docs;
  for (const auto& r : fx.corpus.pretrain) docs.push_back(&r.document);
  model.PretrainMlm(docs, &rng);  // must not crash and must leave eval mode
  EXPECT_FALSE(model.training());
}

TEST(TokenTaggerTest, GcnVariantRuns) {
  auto& fx = GetFixture();
  TokenModelConfig cfg = TinyTokenConfig(fx.tokenizer->vocab().size());
  cfg.epochs = 1;
  Rng rng(3);
  RobertaGcn model(cfg, fx.tokenizer.get(), &rng, /*mlm_pretrain_epochs=*/0);
  std::vector<const doc::Document*> train, val;
  for (const auto& r : fx.corpus.train) train.push_back(&r.document);
  for (const auto& r : fx.corpus.val) val.push_back(&r.document);
  model.Fit(train, val, &rng);
  const auto labels = model.LabelSentences(fx.corpus.test[0].document);
  EXPECT_FALSE(labels.empty());
}

TEST(HiBertCrfTest, FitImprovesOverUntrained) {
  auto& fx = GetFixture();
  HiBertCrf::Config cfg;
  cfg.hidden = 16;
  cfg.sentence_layers = 1;
  cfg.document_layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = fx.tokenizer->vocab().size();
  cfg.max_tokens_per_sentence = 12;
  cfg.max_sentences = 32;
  cfg.epochs = 12;
  cfg.patience = 12;
  Rng rng(4);
  HiBertCrf model(cfg, fx.tokenizer.get(), &rng);
  std::vector<const doc::Document*> train;
  for (const auto& r : fx.corpus.train) train.push_back(&r.document);
  model.Fit(train, train, &rng);  // overfit check on the training docs
  int correct = 0, total = 0;
  for (const auto& r : fx.corpus.train) {
    const auto pred = model.LabelSentences(r.document);
    for (size_t i = 0; i < pred.size() &&
                       i < r.document.sentence_labels.size() && i < 32;
         ++i) {
      correct += pred[i] == r.document.sentence_labels[i];
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.6);
}

TEST(DrMatchTest, HighPrecisionLowRecallShape) {
  const distant::EntityDictionary dict =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::NerDatasetConfig ncfg;
  ncfg.train_sequences = 10;
  ncfg.val_sequences = 5;
  ncfg.test_sequences = 30;
  const distant::NerDataset data = distant::BuildNerDataset(ncfg, dict);
  DrMatch matcher(&dict);
  eval::EntityScorer scorer = eval::ScoreNerPredictor(
      [&](const std::vector<std::string>& w) { return matcher.Predict(w); },
      data.test);
  const eval::Prf overall = scorer.Overall();
  EXPECT_GT(overall.precision, overall.recall);  // the paper's signature
  EXPECT_GT(overall.precision, 0.7);
}

TEST(BertBilstmCrfTest, PredictsValidLabels) {
  auto& fx = GetFixture();
  selftrain::NerModelConfig cfg;
  cfg.hidden = 16;
  cfg.layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = fx.tokenizer->vocab().size();
  cfg.max_tokens = 60;
  cfg.lstm_hidden = 8;
  Rng rng(5);
  BertBilstmCrf model(cfg, fx.tokenizer.get(), /*fuzzy=*/false, &rng);
  const auto labels = model.Predict({"Email:", "a@b.com", "Phone:"});
  EXPECT_EQ(labels.size(), 3u);
  for (int l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, doc::kNumEntityIobLabels);
  }
}

TEST(BertBilstmCrfTest, FuzzyVariantTrainsSmoke) {
  auto& fx = GetFixture();
  const distant::EntityDictionary dict =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::NerDatasetConfig ncfg;
  ncfg.train_sequences = 20;
  ncfg.val_sequences = 8;
  ncfg.test_sequences = 8;
  const distant::NerDataset data = distant::BuildNerDataset(ncfg, dict);
  selftrain::NerModelConfig cfg;
  cfg.hidden = 16;
  cfg.layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = fx.tokenizer->vocab().size();
  cfg.max_tokens = 60;
  cfg.lstm_hidden = 8;
  Rng rng(6);
  BertBilstmCrf model(cfg, fx.tokenizer.get(), /*fuzzy=*/true, &rng);
  const double f1 = model.Fit(data.train, data.val, /*epochs=*/2,
                              /*patience=*/2, &rng);
  EXPECT_GE(f1, 0.0);
}

TEST(AutoNerTest, TrainsAndPredicts) {
  auto& fx = GetFixture();
  const distant::EntityDictionary dict =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::NerDatasetConfig ncfg;
  ncfg.train_sequences = 20;
  ncfg.val_sequences = 8;
  ncfg.test_sequences = 8;
  const distant::NerDataset data = distant::BuildNerDataset(ncfg, dict);
  selftrain::NerModelConfig cfg;
  cfg.hidden = 16;
  cfg.layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = fx.tokenizer->vocab().size();
  cfg.max_tokens = 60;
  cfg.lstm_hidden = 8;
  Rng rng(7);
  AutoNer model(cfg, fx.tokenizer.get(), &rng);
  model.Fit(data.train, data.val, /*epochs=*/2, /*patience=*/2, &rng);
  const auto labels = model.Predict(data.test[0].words);
  EXPECT_EQ(labels.size(),
            std::min(data.test[0].words.size(), static_cast<size_t>(60)));
}

}  // namespace
}  // namespace baselines
}  // namespace resuformer
