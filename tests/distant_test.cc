#include <gtest/gtest.h>

#include "distant/augmenter.h"
#include "distant/auto_annotator.h"
#include "distant/dictionary.h"
#include "distant/ner_dataset.h"
#include "distant/regex_matcher.h"

namespace resuformer {
namespace distant {
namespace {

using doc::EntityTag;

TEST(EntityDictionaryTest, ExactMatchSingleWord) {
  EntityDictionary dict;
  dict.Add(EntityTag::kGender, "Male");
  const auto matches = dict.FindMatches({"Gender:", "Male"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].start, 1);
  EXPECT_EQ(matches[0].length, 1);
  EXPECT_EQ(matches[0].tag, EntityTag::kGender);
}

TEST(EntityDictionaryTest, MultiWordLongestMatchWins) {
  EntityDictionary dict;
  dict.Add(EntityTag::kCollege, "Northgate University");
  dict.Add(EntityTag::kCollege, "Northgate");
  const auto matches = dict.FindMatches({"Northgate", "University", "x"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].length, 2);
}

TEST(EntityDictionaryTest, MatchIsCaseAndPunctInsensitive) {
  EntityDictionary dict;
  dict.Add(EntityTag::kCompany, "BlueData Systems Inc.");
  const auto matches = dict.FindMatches({"bluedata", "SYSTEMS", "inc"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].length, 3);
}

TEST(EntityDictionaryTest, NoOverlappingMatches) {
  EntityDictionary dict;
  dict.Add(EntityTag::kMajor, "Computer Science");
  dict.Add(EntityTag::kCompany, "Science Lab");
  // "Computer Science" consumes "Science"; "Science Lab" cannot overlap it.
  const auto matches = dict.FindMatches({"Computer", "Science", "Lab"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].tag, EntityTag::kMajor);
  EXPECT_EQ(matches[0].length, 2);
}

TEST(EntityDictionaryTest, SurfacesReturnsPerTagPool) {
  EntityDictionary dict;
  dict.Add(EntityTag::kDegree, "Bachelor");
  dict.Add(EntityTag::kDegree, "Master");
  EXPECT_EQ(dict.Surfaces(EntityTag::kDegree).size(), 2u);
  EXPECT_TRUE(dict.Surfaces(EntityTag::kCompany).empty());
}

TEST(BuildDictionariesTest, CoverageRoughlyRespected) {
  DictionaryConfig cfg;
  cfg.college_coverage = 0.5;
  const EntityDictionary dict = BuildDictionaries(cfg);
  EXPECT_GT(dict.size(), 100);
  const size_t colleges = dict.Surfaces(EntityTag::kCollege).size();
  EXPECT_GT(colleges, 5u);
  EXPECT_LT(colleges, 40u);  // only a fraction of the 40-college pool
}

TEST(RegexMatcherTest, EmailDetection) {
  EXPECT_TRUE(LooksLikeEmail("john.doe3@example.com"));
  EXPECT_FALSE(LooksLikeEmail("john.doe"));
  EXPECT_FALSE(LooksLikeEmail("@example.com"));
}

TEST(RegexMatcherTest, PhoneDetection) {
  EXPECT_TRUE(LooksLikePhone("134-2561-9078"));
  EXPECT_FALSE(LooksLikePhone("134"));
  EXPECT_FALSE(LooksLikePhone("134-ab-9078"));
}

TEST(RegexMatcherTest, YearMonthDetection) {
  EXPECT_TRUE(LooksLikeYearMonth("2016.09"));
  EXPECT_TRUE(LooksLikeYearMonth("2019/06"));
  EXPECT_FALSE(LooksLikeYearMonth("2016.13"));  // bad month
  EXPECT_FALSE(LooksLikeYearMonth("1016.09"));  // implausible year
  EXPECT_FALSE(LooksLikeYearMonth("2016-09"));
}

TEST(RegexMatcherTest, DateRangeSpansThreeTokens) {
  const auto matches =
      FindRegexMatches({"2016.09", "-", "2019.06", "Northgate"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].length, 3);
  EXPECT_EQ(matches[0].tag, EntityTag::kDate);
}

TEST(RegexMatcherTest, PresentEndsRange) {
  const auto matches = FindRegexMatches({"2021/03", "-", "Present"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].length, 3);
}

TEST(AutoAnnotatorTest, CombinesAllSources) {
  EntityDictionary dict;
  dict.Add(EntityTag::kCollege, "Northgate University");
  AutoAnnotator annotator(&dict);
  const std::vector<std::string> words = {
      "Email:", "a.b@example.com", "Age:", "27",
      "Northgate", "University", "2016.09", "-", "2019.06"};
  const std::vector<int> labels = annotator.Annotate(words);
  EXPECT_EQ(labels[1], doc::EntityIobLabel(EntityTag::kEmail, true));
  EXPECT_EQ(labels[3], doc::EntityIobLabel(EntityTag::kAge, true));
  EXPECT_EQ(labels[4], doc::EntityIobLabel(EntityTag::kCollege, true));
  EXPECT_EQ(labels[5], doc::EntityIobLabel(EntityTag::kCollege, false));
  EXPECT_EQ(labels[6], doc::EntityIobLabel(EntityTag::kDate, true));
  EXPECT_EQ(labels[8], doc::EntityIobLabel(EntityTag::kDate, false));
}

TEST(AutoAnnotatorTest, CompanySuffixHeuristic) {
  EntityDictionary dict;  // empty: force the heuristic path
  AutoAnnotator annotator(&dict);
  const std::vector<std::string> words = {"at", "NovaWave", "Software",
                                          "Co.", "LTD", "as"};
  const std::vector<int> labels = annotator.Annotate(words);
  EXPECT_EQ(labels[1], doc::EntityIobLabel(EntityTag::kCompany, true));
  EXPECT_EQ(labels[4], doc::EntityIobLabel(EntityTag::kCompany, false));
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[5], 0);
}

TEST(AutoAnnotatorTest, HighPrecisionAgainstGold) {
  // Over generated resumes, distant labels that fire should mostly agree
  // with gold (precision >> recall — the paper's D&R behaviour).
  const EntityDictionary dict = BuildDictionaries(DictionaryConfig{});
  NerDatasetConfig cfg;
  cfg.train_sequences = 60;
  cfg.val_sequences = 5;
  cfg.test_sequences = 5;
  cfg.augment_fraction = 0.0;
  const NerDataset data = BuildNerDataset(cfg, dict);
  const NoiseStats noise = ComputeNoiseStats(data.train);
  EXPECT_GT(noise.label_precision, 0.85);
  EXPECT_LT(noise.label_recall, 0.99);  // dictionary gaps exist
  EXPECT_GT(noise.label_recall, 0.30);
}

TEST(AugmenterTest, SwapPreservesLabelStructure) {
  EntityDictionary dict;
  dict.Add(EntityTag::kCollege, "Northgate University");
  dict.Add(EntityTag::kCollege, "Riverside Institute");
  Rng rng(1);
  Augmenter augmenter(&dict, &rng);
  AnnotatedSequence seq;
  seq.words = {"studied", "at", "Northgate", "University", "in", "2019"};
  AutoAnnotator annotator(&dict);
  seq.labels = annotator.Annotate(seq.words);
  const AnnotatedSequence aug = augmenter.SwapEntities(seq, 1.0);
  EXPECT_EQ(aug.words.size(), aug.labels.size());
  // The span must still exist with the same tag.
  int begins = 0;
  for (int l : aug.labels) {
    doc::EntityTag tag;
    bool begin;
    if (doc::ParseEntityIobLabel(l, &tag, &begin) && begin) {
      EXPECT_EQ(tag, EntityTag::kCollege);
      ++begins;
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(aug.words.front(), "studied");
  EXPECT_EQ(aug.words.back(), "2019");
}

TEST(AugmenterTest, ShuffleSwapsAdjacentSpans) {
  EntityDictionary dict;
  Rng rng(2);
  Augmenter augmenter(&dict, &rng);
  AnnotatedSequence seq;
  seq.words = {"2016.09", "Acme", "Corp"};
  seq.labels = {doc::EntityIobLabel(EntityTag::kDate, true),
                doc::EntityIobLabel(EntityTag::kCompany, true),
                doc::EntityIobLabel(EntityTag::kCompany, false)};
  const AnnotatedSequence out = augmenter.ShuffleEntityOrder(seq);
  ASSERT_EQ(out.words.size(), 3u);
  EXPECT_EQ(out.words[0], "Acme");
  EXPECT_EQ(out.words[1], "Corp");
  EXPECT_EQ(out.words[2], "2016.09");
  EXPECT_EQ(out.labels[0], doc::EntityIobLabel(EntityTag::kCompany, true));
  EXPECT_EQ(out.labels[2], doc::EntityIobLabel(EntityTag::kDate, true));
}

TEST(NerDatasetTest, SplitSizesAndLabelSemantics) {
  const EntityDictionary dict = BuildDictionaries(DictionaryConfig{});
  NerDatasetConfig cfg;
  cfg.train_sequences = 40;
  cfg.val_sequences = 10;
  cfg.test_sequences = 10;
  cfg.augment_fraction = 0.25;
  const NerDataset data = BuildNerDataset(cfg, dict);
  EXPECT_EQ(data.val.size(), 10u);
  EXPECT_EQ(data.test.size(), 10u);
  EXPECT_GE(data.train.size(), 40u);  // plus augmented copies
  // Train sequences all contain at least one distant entity.
  for (const auto& seq : data.train) {
    bool any = false;
    for (int l : seq.labels) any = any || l != 0;
    EXPECT_TRUE(any);
  }
  // Val/test labels equal gold.
  for (const auto& seq : data.val) EXPECT_EQ(seq.labels, seq.gold_labels);
}

TEST(NerDatasetTest, StatsReasonable) {
  const EntityDictionary dict = BuildDictionaries(DictionaryConfig{});
  NerDatasetConfig cfg;
  cfg.train_sequences = 30;
  cfg.val_sequences = 5;
  cfg.test_sequences = 5;
  const NerDataset data = BuildNerDataset(cfg, dict);
  const NerSplitStats stats = ComputeNerStats(data.test);
  EXPECT_EQ(stats.num_samples, 5);
  EXPECT_GT(stats.avg_tokens, 3.0);
  EXPECT_GT(stats.avg_entities, 0.5);
}

TEST(ExtractBlockSequencesTest, OnlyEntityBearingBlocks) {
  Rng rng(11);
  const resumegen::GeneratedResume resume = resumegen::GenerateResume(&rng);
  const auto sequences = ExtractBlockSequences(resume);
  EXPECT_FALSE(sequences.empty());
  for (const auto& seq : sequences) {
    EXPECT_TRUE(seq.block == doc::BlockTag::kPInfo ||
                seq.block == doc::BlockTag::kEduExp ||
                seq.block == doc::BlockTag::kWorkExp ||
                seq.block == doc::BlockTag::kProjExp);
    EXPECT_EQ(seq.words.size(), seq.gold_labels.size());
  }
}

}  // namespace
}  // namespace distant
}  // namespace resuformer
