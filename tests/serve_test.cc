// Serving-path tests: admission-queue coalescing, deadlines, backpressure,
// graceful drain, framing, and a loopback end-to-end run against the socket
// endpoint. Labeled `serve` (tier-1 selective runs) and `stress` (the TSan
// preset's concurrency pass) — every test here is written to be race-free
// under ThreadSanitizer.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "gtest/gtest.h"
#include "pipeline/pipeline.h"
#include "resumegen/corpus.h"
#include "serve/endpoint.h"
#include "serve/framing.h"
#include "serve/server.h"
#include "serve/text_document.h"

namespace resuformer {
namespace serve {
namespace {

using pipeline::ParseRequest;
using pipeline::ParseResponse;
using pipeline::PipelineOptions;
using pipeline::ResuFormerPipeline;

PipelineOptions TinyOptions() {
  PipelineOptions options;
  options.model.hidden = 16;
  options.model.sentence_layers = 1;
  options.model.document_layers = 1;
  options.model.num_heads = 2;
  options.model.ffn = 32;
  options.model.max_tokens_per_sentence = 12;
  options.model.max_sentences = 32;
  options.model.lstm_hidden = 12;
  options.ner.hidden = 16;
  options.ner.layers = 1;
  options.ner.num_heads = 2;
  options.ner.ffn = 32;
  options.ner.max_tokens = 60;
  options.ner.lstm_hidden = 8;
  options.vocab_size = 600;
  options.pretrain_epochs = 1;
  options.finetune.epochs = 6;
  options.finetune.patience = 6;
  options.selftrain.teacher_epochs = 3;
  options.selftrain.teacher_patience = 3;
  options.selftrain.iterations = 1;
  options.ner_data.train_sequences = 60;
  options.ner_data.val_sequences = 15;
  options.ner_data.test_sequences = 15;
  return options;
}

struct ServeEnv {
  ServeEnv() {
    resumegen::CorpusConfig ccfg;
    ccfg.pretrain_docs = 6;
    ccfg.train_docs = 10;
    ccfg.val_docs = 4;
    ccfg.test_docs = 6;
    ccfg.seed = 77;
    const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
    pipeline =
        ResuFormerPipeline::TrainFromCorpus(corpus, TinyOptions(), nullptr);
    for (const auto& r : corpus.test) documents.push_back(r.document);
  }
  std::unique_ptr<ResuFormerPipeline> pipeline;
  std::vector<doc::Document> documents;  // held-out resumes to parse
};

/// One tiny trained pipeline shared by every test in this binary — training
/// dominates runtime, parsing does not. Intentionally leaked.
const ServeEnv& GetEnv() {
  static const ServeEnv* env = new ServeEnv();
  return *env;
}

ParseRequest RequestFor(const doc::Document& document) {
  ParseRequest request;
  request.document = document;
  return request;
}

/// Batches of more than one request recorded in `hist`: sizes >= 2 land in
/// log2 buckets 2 and above (bucket 1 holds [1, 2)). The instruments are
/// process-global, so tests assert on deltas of this, not on absolutes.
int64_t MultiRequestBatches(const metrics::Histogram* hist) {
  int64_t total = 0;
  for (int b = 2; b < metrics::Histogram::kNumBuckets; ++b) {
    total += hist->bucket_count(b);
  }
  return total;
}

/// Loopback client connection to 127.0.0.1:`port` (asserts on failure).
int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // rf-lint-allow(mmap-payload-cast): POSIX sockets calling convention.
  const sockaddr* addr_ptr = reinterpret_cast<const sockaddr*>(&addr);
  EXPECT_EQ(::connect(fd, addr_ptr, sizeof(addr)), 0);
  return fd;
}

// ---------------------------------------------------------------------------
// ServerOptions

TEST(ServerOptionsTest, ValidateNamesTheOffendingParameter) {
  ServerOptions options;
  EXPECT_TRUE(options.Validate().ok());

  options.max_batch = 0;
  EXPECT_NE(options.Validate().ToString().find("max_batch"),
            std::string::npos);
  options = ServerOptions{};
  options.max_queue_delay_ms = -3;
  EXPECT_NE(options.Validate().ToString().find("max_queue_delay_ms"),
            std::string::npos);
  options = ServerOptions{};
  options.queue_capacity = 0;
  EXPECT_NE(options.Validate().ToString().find("queue_capacity"),
            std::string::npos);
  options = ServerOptions{};
  options.workers = 0;
  EXPECT_NE(options.Validate().ToString().find("workers"), std::string::npos);
  options = ServerOptions{};
  options.stats_window_ms = 5;  // below the 10ms epoch-split floor
  EXPECT_NE(options.Validate().ToString().find("stats_window_ms"),
            std::string::npos);
  options = ServerOptions{};
  options.slow_trace_us = -1;
  EXPECT_NE(options.Validate().ToString().find("slow_trace_us"),
            std::string::npos);
}

TEST(ServerOptionsTest, FromRuntimeCopiesTheServeKnobs) {
  RuntimeOptions rt;
  rt.serve_max_batch = 31;
  rt.serve_max_queue_delay_ms = 17;
  rt.serve_queue_capacity = 99;
  rt.serve_workers = 5;
  rt.serve_stats_window_ms = 1234;
  rt.serve_slow_trace_us = 777;
  rt.serve_slow_trace_dir = "/tmp/exemplars";
  const ServerOptions options = ServerOptions::FromRuntime(rt);
  EXPECT_EQ(options.max_batch, 31);
  EXPECT_EQ(options.max_queue_delay_ms, 17);
  EXPECT_EQ(options.queue_capacity, 99);
  EXPECT_EQ(options.workers, 5);
  EXPECT_EQ(options.stats_window_ms, 1234);
  EXPECT_EQ(options.slow_trace_us, 777);
  EXPECT_EQ(options.slow_trace_dir, "/tmp/exemplars");
}

// ---------------------------------------------------------------------------
// Text <-> Document bridge

TEST(TextDocumentTest, RoundTripPreservesLinesAndTokens) {
  const std::string text = "John Smith\nEmail: john@example.com\n\nSkills";
  const doc::Document document = DocumentFromText(text);
  ASSERT_EQ(document.sentences.size(), 3u);  // blank line yields no sentence
  EXPECT_EQ(document.sentences[0].tokens.size(), 2u);
  EXPECT_EQ(document.sentences[1].tokens.size(), 2u);
  EXPECT_EQ(document.sentences[2].tokens.size(), 1u);
  EXPECT_EQ(DocumentToText(document),
            "John Smith\nEmail: john@example.com\nSkills");

  // Deterministic geometry: the same text always lays out identically.
  const doc::Document again = DocumentFromText(text);
  ASSERT_EQ(again.sentences.size(), document.sentences.size());
  for (size_t i = 0; i < document.sentences.size(); ++i) {
    EXPECT_FLOAT_EQ(again.sentences[i].box.x0, document.sentences[i].box.x0);
    EXPECT_FLOAT_EQ(again.sentences[i].box.y0, document.sentences[i].box.y0);
  }
}

TEST(TextDocumentTest, LongTextWrapsToMultiplePages) {
  std::string text;
  for (int i = 0; i < 120; ++i) text += "line " + std::to_string(i) + "\n";
  const doc::Document document = DocumentFromText(text);
  EXPECT_EQ(document.sentences.size(), 120u);
  EXPECT_GT(document.num_pages, 1);
}

// ---------------------------------------------------------------------------
// Framing

TEST(FramingTest, RoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Frame out;
  out.kind = FrameKind::kParse;
  out.deadline_ms = 250;
  out.payload = "John Smith\nEmail: j@x.com";
  ASSERT_TRUE(WriteFrame(fds[1], out).ok());

  Frame in;
  ASSERT_TRUE(ReadFrame(fds[0], &in).ok());
  EXPECT_EQ(in.kind, FrameKind::kParse);
  EXPECT_EQ(in.deadline_ms, 250u);
  EXPECT_EQ(in.payload, out.payload);

  // Clean EOF at a frame boundary is NotFound (normal connection end)...
  ::close(fds[1]);
  const Status eof = ReadFrame(fds[0], &in);
  EXPECT_EQ(eof.code(), StatusCode::kNotFound);
  ::close(fds[0]);
}

TEST(FramingTest, TruncatedFrameIsAnIoError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // A header promising 100 payload bytes, then EOF.
  const unsigned char header[9] = {100, 0, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::write(fds[1], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  ::close(fds[1]);
  Frame in;
  const Status truncated = ReadFrame(fds[0], &in);
  EXPECT_EQ(truncated.code(), StatusCode::kIoError);
  ::close(fds[0]);
}

TEST(FramingTest, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const uint32_t huge = kMaxFramePayload + 1;
  const unsigned char header[9] = {
      static_cast<unsigned char>(huge),       static_cast<unsigned char>(huge >> 8),
      static_cast<unsigned char>(huge >> 16), static_cast<unsigned char>(huge >> 24),
      0, 0, 0, 0, 0};
  ASSERT_EQ(::write(fds[1], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  Frame in;
  const Status rejected = ReadFrame(fds[0], &in);
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);

  Frame oversized;
  oversized.kind = FrameKind::kOk;
  oversized.payload.resize(kMaxFramePayload + 1);
  EXPECT_EQ(WriteFrame(-1, oversized).code(), StatusCode::kInvalidArgument);
}

TEST(FramingTest, ProtocolV2KindsRoundTrip) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  for (const FrameKind kind : {FrameKind::kStats, FrameKind::kHealth,
                               FrameKind::kParseV2, FrameKind::kOkV2,
                               FrameKind::kErrorV2}) {
    Frame out;
    out.kind = kind;
    out.payload = "payload";
    ASSERT_TRUE(WriteFrame(fds[1], out).ok());
    Frame in;
    ASSERT_TRUE(ReadFrame(fds[0], &in).ok());
    EXPECT_EQ(in.kind, kind);
    EXPECT_EQ(in.payload, "payload");
  }
  // One past the newest kind is still a malformed frame.
  const unsigned char unknown_kind[9] = {0, 0, 0, 0, 9, 0, 0, 0, 0};
  ASSERT_EQ(::write(fds[1], unknown_kind, sizeof(unknown_kind)),
            static_cast<ssize_t>(sizeof(unknown_kind)));
  Frame in;
  EXPECT_EQ(ReadFrame(fds[0], &in).code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FramingTest, IdPayloadRoundTrips) {
  const std::string encoded =
      EncodeIdPayload(0x0123456789abcdef, "resume body");
  ASSERT_EQ(encoded.size(), 8u + 11u);
  int64_t id = 0;
  std::string body;
  ASSERT_TRUE(DecodeIdPayload(encoded, &id, &body).ok());
  EXPECT_EQ(id, 0x0123456789abcdef);
  EXPECT_EQ(body, "resume body");

  // Empty body and id 0 both survive.
  ASSERT_TRUE(DecodeIdPayload(EncodeIdPayload(0, ""), &id, &body).ok());
  EXPECT_EQ(id, 0);
  EXPECT_TRUE(body.empty());

  // A payload shorter than the id prefix is malformed, not a crash.
  EXPECT_EQ(DecodeIdPayload("1234567", &id, &body).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ParseServer admission queue

TEST(ParseServerTest, CoalescesABurstIntoMicroBatches) {
  const ServeEnv& env = GetEnv();
  metrics::MetricsRegistry::Global().SetEnabled(true);
  metrics::Histogram* batch_size =
      metrics::MetricsRegistry::Global().GetHistogram("serve.batch_size");
  const int64_t batches_before = batch_size->count();
  const int64_t multi_before = MultiRequestBatches(batch_size);

  ServerOptions options;
  options.max_batch = 8;
  options.max_queue_delay_ms = 40;
  options.queue_capacity = 256;
  options.workers = 1;  // one worker: the burst must coalesce, not fan out
  ParseServer server(env.pipeline.get(), options);

  constexpr int kBurst = 16;
  std::vector<std::future<ParseResponse>> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(server.Submit(
        RequestFor(env.documents[i % env.documents.size()])));
  }
  for (auto& future : futures) {
    const ParseResponse response = future.get();
    EXPECT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_FALSE(response.resume.blocks.empty());
  }
  server.Shutdown();

  EXPECT_GT(batch_size->count(), batches_before);
  // 16 requests admitted faster than one 40ms flush window against a single
  // worker: at least one micro-batch holds more than one request.
  EXPECT_GT(MultiRequestBatches(batch_size), multi_before);
}

TEST(ParseServerTest, ExpiredDeadlineIsRejectedWithoutKillingTheWorker) {
  const ServeEnv& env = GetEnv();
  ServerOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 1;
  options.workers = 1;
  ParseServer server(env.pipeline.get(), options);

  ParseRequest expired = RequestFor(env.documents[0]);
  expired.deadline_ns = trace::NowNs() - 1;  // already past on admission
  const ParseResponse rejected = server.Submit(std::move(expired)).get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kDeadlineExceeded);

  // The worker that served the rejection still parses the next request.
  const ParseResponse good =
      server.Submit(RequestFor(env.documents[0])).get();
  EXPECT_TRUE(good.ok()) << good.status.ToString();
  EXPECT_FALSE(good.resume.blocks.empty());
  server.Shutdown();
}

TEST(ParseServerTest, BackpressureAtQueueCapacity) {
  const ServeEnv& env = GetEnv();
  metrics::Counter* rejected_counter =
      metrics::MetricsRegistry::Global().GetCounter("serve.rejected.queue_full");
  const int64_t rejected_before = rejected_counter->value();

  ServerOptions options;
  options.max_batch = 16;             // larger than capacity: no early flush
  options.max_queue_delay_ms = 5000;  // the worker parks until drain
  options.queue_capacity = 2;
  options.workers = 1;
  ParseServer server(env.pipeline.get(), options);

  auto first = server.Submit(RequestFor(env.documents[0]));
  auto second = server.Submit(RequestFor(env.documents[1]));
  auto third = server.Submit(RequestFor(env.documents[2]));

  // The queue holds two; the third is rejected immediately (future ready).
  const ParseResponse overflow = third.get();
  EXPECT_EQ(overflow.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected_counter->value(), rejected_before + 1);

  // Shutdown flushes the queued pair without waiting out the 5s delay.
  server.Shutdown();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
}

TEST(ParseServerTest, GracefulDrainReturnsEveryInFlightResponse) {
  const ServeEnv& env = GetEnv();
  ServerOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 5000;  // only drain flushes the queue
  options.queue_capacity = 256;
  options.workers = 2;
  auto server = std::make_unique<ParseServer>(env.pipeline.get(), options);

  constexpr int kInFlight = 24;
  std::vector<std::future<ParseResponse>> futures;
  futures.reserve(kInFlight);
  for (int i = 0; i < kInFlight; ++i) {
    futures.push_back(server->Submit(
        RequestFor(env.documents[i % env.documents.size()])));
  }
  server->Shutdown();

  int completed = 0;
  for (auto& future : futures) {
    const ParseResponse response = future.get();  // never blocks forever
    EXPECT_TRUE(response.ok()) << response.status.ToString();
    ++completed;
  }
  EXPECT_EQ(completed, kInFlight);  // zero lost requests

  // Admission after shutdown fails fast with Unavailable.
  const ParseResponse late =
      server->Submit(RequestFor(env.documents[0])).get();
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  server.reset();
}

TEST(ParseServerTest, AssignsMonotonicRequestIds) {
  const ServeEnv& env = GetEnv();
  ServerOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 1;
  options.workers = 1;
  ParseServer server(env.pipeline.get(), options);

  const ParseResponse first = server.ParseSync(RequestFor(env.documents[0]));
  const ParseResponse second = server.ParseSync(RequestFor(env.documents[1]));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first.request_id, 0);
  EXPECT_GT(second.request_id, first.request_id);

  // Rejected requests carry ids too: correlatable failures.
  server.Shutdown();
  const ParseResponse late = server.ParseSync(RequestFor(env.documents[0]));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(late.request_id, second.request_id);
}

TEST(ParseServerTest, StatsJsonReportsStateAndWindowedPercentiles) {
  const ServeEnv& env = GetEnv();
  metrics::MetricsRegistry::Global().SetEnabled(true);
  ServerOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 1;
  options.workers = 1;
  options.stats_window_ms = 100;  // 10 epochs x 10ms: expires fast
  ParseServer server(env.pipeline.get(), options);

  ASSERT_TRUE(server.ParseSync(RequestFor(env.documents[0])).ok());
  EXPECT_EQ(server.state(), ServerState::kServing);
  EXPECT_GT(server.uptime_ns(), 0);

  std::string json = server.StatsJson();
  const auto IntOf = [&json](const char* key) {
    std::string needle = "\"";
    needle += key;
    needle += "\": ";
    const size_t at = json.find(needle);
    EXPECT_NE(at, std::string::npos) << key << " missing in " << json;
    if (at == std::string::npos) return int64_t{-1};
    return static_cast<int64_t>(
        std::strtoll(json.c_str() + at + needle.size(), nullptr, 10));
  };
  EXPECT_NE(json.find("\"state\": \"ok\""), std::string::npos);
  EXPECT_GE(IntOf("requests"), 1);
  EXPECT_EQ(IntOf("window_ms"), 100);
  // The parse just happened: it is inside the 100ms window, and the rolling
  // percentiles are live even though they come from the always-on path.
  EXPECT_GE(IntOf("window_e2e_count"), 1);
  EXPECT_GT(IntOf("window_e2e_p99_us"), 0);
  const int64_t cumulative = IntOf("e2e_count");
  EXPECT_GE(cumulative, 1);

  // Windowed percentiles reflect ONLY the window: after it rolls past, the
  // windowed count returns to zero while the cumulative stats persist.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  json = server.StatsJson();
  EXPECT_EQ(IntOf("window_e2e_count"), 0);
  EXPECT_EQ(IntOf("window_e2e_p99_us"), 0);
  EXPECT_GE(IntOf("e2e_count"), cumulative);

  // Prometheus rendition of the same plane.
  const std::string prom = server.StatsPrometheus();
  EXPECT_NE(prom.find("resuformer_serve_uptime_seconds"), std::string::npos);
  EXPECT_NE(prom.find("resuformer_serve_draining 0"), std::string::npos);
  EXPECT_NE(prom.find("resuformer_serve_window_e2e_p99_us"),
            std::string::npos);

  server.Shutdown();
  EXPECT_EQ(server.state(), ServerState::kStopped);
  EXPECT_NE(server.StatsJson().find("\"state\": \"unavailable\""),
            std::string::npos);
}

TEST(ParseServerTest, SlowTraceThresholdWritesALoadableExemplar) {
  const ServeEnv& env = GetEnv();
  trace::TraceRecorder::Global().SetEnabled(true);
  trace::TraceRecorder::Global().Reset();

  const std::string dir = ::testing::TempDir() + "/slow-trace-exemplars";
  std::filesystem::remove_all(dir);

  ServerOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 1;
  options.workers = 1;
  options.slow_trace_us = 1;  // every request is "slow"
  options.slow_trace_dir = dir;
  ParseServer server(env.pipeline.get(), options);

  const ParseResponse response =
      server.ParseSync(RequestFor(env.documents[0]));
  ASSERT_TRUE(response.ok());

  // Capture runs before the response future is fulfilled, so the exemplar
  // is on disk by the time ParseSync returns.
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.push_back(entry.path());
  }
  ASSERT_EQ(files.size(), 1u);
  const std::string name = files[0].filename().string();
  EXPECT_EQ(name.rfind("slow-req-", 0), 0u) << name;
  EXPECT_NE(name.find("us.json"), std::string::npos) << name;

  std::ifstream in(files[0]);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The request's pipeline span, annotated with its id.
  EXPECT_NE(json.find("\"pipeline.request\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\": " +
                      std::to_string(response.request_id)),
            std::string::npos);

  // Counted, and rate-limited: an immediate second slow request inside the
  // 1s min-gap does not produce a second file.
  EXPECT_GE(metrics::MetricsRegistry::Global()
                .GetCounter("serve.slow_traces")
                ->value(),
            1);
  ASSERT_TRUE(server.ParseSync(RequestFor(env.documents[1])).ok());
  files.clear();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.push_back(entry.path());
  }
  EXPECT_EQ(files.size(), 1u);

  server.Shutdown();
  trace::TraceRecorder::Global().SetEnabled(false);
  trace::TraceRecorder::Global().Reset();
  std::filesystem::remove_all(dir);
}

TEST(ParseServerTest, ServePathMatchesDirectBatchParse) {
  const ServeEnv& env = GetEnv();
  ServerOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 10;
  options.workers = 2;
  ParseServer server(env.pipeline.get(), options);

  std::vector<std::future<ParseResponse>> futures;
  for (const doc::Document& document : env.documents) {
    futures.push_back(server.Submit(RequestFor(document)));
  }
  const std::vector<pipeline::StructuredResume> direct =
      env.pipeline->ParseBatch(env.documents);
  ASSERT_EQ(direct.size(), futures.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    const ParseResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(ResuFormerPipeline::ToPrettyString(response.resume),
              ResuFormerPipeline::ToPrettyString(direct[i]))
        << "serve-path parse diverged for document " << i;
  }
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Loopback end-to-end: >= 64 concurrent requests through the socket
// endpoint, responses identical to one-shot parses, batches > 1, expired
// deadlines rejected, shutdown drains losslessly.

TEST(LoopbackEndToEndTest, ConcurrentClientsMatchOneShotParses) {
  const ServeEnv& env = GetEnv();
  metrics::MetricsRegistry::Global().SetEnabled(true);
  metrics::Histogram* batch_size =
      metrics::MetricsRegistry::Global().GetHistogram("serve.batch_size");
  const int64_t multi_before = MultiRequestBatches(batch_size);

  ServerOptions options;
  options.max_batch = 8;
  options.max_queue_delay_ms = 25;
  options.queue_capacity = 256;
  options.workers = 2;
  ParseServer server(env.pipeline.get(), options);
  SocketEndpoint endpoint(&server);
  const Result<int> bound = endpoint.Start(0);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const int port = bound.value();

  // Expected responses: one-shot parses of the same text-derived documents.
  std::vector<std::string> texts;
  std::vector<std::string> expected;
  for (const doc::Document& document : env.documents) {
    texts.push_back(DocumentToText(document));
    ParseRequest request;
    request.document = DocumentFromText(texts.back());
    const ParseResponse direct = env.pipeline->Parse(request);
    ASSERT_TRUE(direct.ok());
    expected.push_back(ResuFormerPipeline::ToPrettyString(direct.resume));
  }

  auto connect = [port]() { return ConnectTo(port); };

  // Admin poller: hammers kStats / kHealth on its own connection while all
  // 16 clients parse. Admin frames bypass the admission queue, so every
  // poll must answer promptly and well-formed even under full parse load.
  std::atomic<bool> polling_done{false};
  std::atomic<int> poll_failures{0};
  std::atomic<int> polls{0};
  std::thread poller([&] {
    const int fd = connect();
    // acquire: pairs with the release store after the clients join.
    while (!polling_done.load(std::memory_order_acquire)) {
      Frame stats;
      stats.kind = FrameKind::kStats;
      Frame reply;
      if (!WriteFrame(fd, stats).ok() || !ReadFrame(fd, &reply).ok() ||
          reply.kind != FrameKind::kOk ||
          reply.payload.find("\"queue_depth\"") == std::string::npos ||
          reply.payload.find("\"window_e2e_p99_us\"") == std::string::npos) {
        poll_failures.fetch_add(1);
        break;
      }
      Frame health;
      health.kind = FrameKind::kHealth;
      if (!WriteFrame(fd, health).ok() || !ReadFrame(fd, &reply).ok() ||
          reply.kind != FrameKind::kOk || reply.payload != "ok") {
        poll_failures.fetch_add(1);
        break;
      }
      polls.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(fd);
  });

  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 4;  // 64 total
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect();
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t doc = (c + r) % texts.size();
        Frame request;
        request.kind = FrameKind::kParse;
        request.payload = texts[doc];
        if (!WriteFrame(fd, request).ok()) {
          failures.fetch_add(1);
          break;
        }
        Frame response;
        if (!ReadFrame(fd, &response).ok() ||
            response.kind != FrameKind::kOk) {
          failures.fetch_add(1);
          break;
        }
        if (response.payload != expected[doc]) mismatches.fetch_add(1);
      }
      ::close(fd);
    });
  }
  for (std::thread& client : clients) client.join();
  // release: pairs with the poller's acquire poll of the done flag.
  polling_done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(poll_failures.load(), 0);
  EXPECT_GE(polls.load(), 1);
  // 64 concurrent requests against a 25ms flush window: cross-request
  // batching must have produced at least one batch of more than one.
  EXPECT_GT(MultiRequestBatches(batch_size), multi_before);

  // Deadline phase: a lone request with a 1ms budget waits out the 25ms
  // flush window in the (otherwise empty) queue and must come back as a
  // DeadlineExceeded error — and the connection keeps working after.
  {
    const int fd = connect();
    Frame request;
    request.kind = FrameKind::kParse;
    request.deadline_ms = 1;
    request.payload = texts[0];
    ASSERT_TRUE(WriteFrame(fd, request).ok());
    Frame response;
    ASSERT_TRUE(ReadFrame(fd, &response).ok());
    EXPECT_EQ(response.kind, FrameKind::kError);
    EXPECT_NE(response.payload.find("DeadlineExceeded"), std::string::npos)
        << response.payload;

    Frame retry;
    retry.kind = FrameKind::kParse;
    retry.payload = texts[0];
    ASSERT_TRUE(WriteFrame(fd, retry).ok());
    ASSERT_TRUE(ReadFrame(fd, &response).ok());
    EXPECT_EQ(response.kind, FrameKind::kOk);
    EXPECT_EQ(response.payload, expected[0]);
    ::close(fd);
  }

  // Shutdown phase: the kShutdown frame is acked and unblocks
  // WaitForShutdownRequest; teardown drains with nothing lost.
  {
    const int fd = connect();
    Frame request;
    request.kind = FrameKind::kShutdown;
    ASSERT_TRUE(WriteFrame(fd, request).ok());
    Frame response;
    ASSERT_TRUE(ReadFrame(fd, &response).ok());
    EXPECT_EQ(response.kind, FrameKind::kOk);
    ::close(fd);
  }
  endpoint.WaitForShutdownRequest();  // returns without blocking
  endpoint.Stop();
  server.Shutdown();
  EXPECT_EQ(server.queue_depth(), 0);
}

TEST(LoopbackEndToEndTest, ParseV2EchoesMonotonicRequestIds) {
  const ServeEnv& env = GetEnv();
  ServerOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 1;
  options.workers = 1;
  ParseServer server(env.pipeline.get(), options);
  SocketEndpoint endpoint(&server);
  const Result<int> bound = endpoint.Start(0);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  const std::string text = DocumentToText(env.documents[0]);
  ParseRequest direct_request;
  direct_request.document = DocumentFromText(text);
  const ParseResponse direct = env.pipeline->Parse(direct_request);
  ASSERT_TRUE(direct.ok());
  const std::string expected =
      ResuFormerPipeline::ToPrettyString(direct.resume);

  const int fd = ConnectTo(bound.value());
  int64_t previous_id = 0;
  for (int i = 0; i < 3; ++i) {
    Frame request;
    request.kind = FrameKind::kParseV2;
    request.payload = text;
    ASSERT_TRUE(WriteFrame(fd, request).ok());
    Frame response;
    ASSERT_TRUE(ReadFrame(fd, &response).ok());
    ASSERT_EQ(response.kind, FrameKind::kOkV2);
    int64_t id = 0;
    std::string body;
    ASSERT_TRUE(DecodeIdPayload(response.payload, &id, &body).ok());
    EXPECT_EQ(body, expected);
    EXPECT_GT(id, previous_id);  // server-assigned, strictly increasing
    previous_id = id;
  }

  // Both protocol versions coexist on one connection: a v1 kParse after
  // the v2 exchanges still answers plain kOk with no id prefix.
  Frame v1;
  v1.kind = FrameKind::kParse;
  v1.payload = text;
  ASSERT_TRUE(WriteFrame(fd, v1).ok());
  Frame v1_response;
  ASSERT_TRUE(ReadFrame(fd, &v1_response).ok());
  EXPECT_EQ(v1_response.kind, FrameKind::kOk);
  EXPECT_EQ(v1_response.payload, expected);  // no id prefix on v1

  ::close(fd);
  endpoint.Stop();
  server.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace resuformer
