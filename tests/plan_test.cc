// Static inference-plan equivalence suite (ctest label: plan).
//
// The plan layer promises "purely a fast path": for every sequence-length
// bucket, replaying the traced plan must produce the same numbers the
// dynamic op graph produces. These tests pin that contract:
//
//  * bit-identical emissions and labels at a serial thread pool,
//  * <= 1e-6 agreement across thread-pool widths,
//  * zero arena misses in steady-state replay (the workspace comes from
//    the free lists every time),
//  * one planner shared by concurrent reader threads (plans are immutable;
//    the tsan preset runs this suite).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/block_classifier.h"
#include "core/hierarchical_encoder.h"
#include "core/inference_plan.h"
#include "doc/block_tags.h"
#include "resumegen/corpus.h"
#include "tensor/arena.h"

namespace resuformer {
namespace core {
namespace {

/// Tiny config (mirrors core_test): exercises every op the plan records
/// while keeping trace + replay fast.
ResuFormerConfig TinyConfig(int vocab) {
  ResuFormerConfig cfg;
  cfg.hidden = 16;
  cfg.sentence_layers = 1;
  cfg.document_layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.max_tokens_per_sentence = 12;
  cfg.max_sentences = 24;
  cfg.vocab_size = vocab;
  cfg.lstm_hidden = 12;
  return cfg;
}

struct Fixture {
  Fixture() : corpus(MakeCorpus()), tokenizer(MakeTokenizer(corpus)) {
    config = TinyConfig(tokenizer.vocab().size());
    Rng rng(11);
    classifier = std::make_unique<BlockClassifier>(config, &rng);
    classifier->SetTraining(false);
    for (const resumegen::GeneratedResume& r : corpus.train) {
      documents.push_back(EncodeForModel(r.document, tokenizer, config));
    }
  }

  static resumegen::Corpus MakeCorpus() {
    resumegen::CorpusConfig cfg;
    cfg.pretrain_docs = 2;
    cfg.train_docs = 6;
    cfg.val_docs = 2;
    cfg.test_docs = 2;
    cfg.seed = 13;
    return resumegen::GenerateCorpus(cfg);
  }
  static text::WordPieceTokenizer MakeTokenizer(
      const resumegen::Corpus& corpus) {
    return resumegen::TrainTokenizer(corpus, 400);
  }

  resumegen::Corpus corpus;
  text::WordPieceTokenizer tokenizer;
  ResuFormerConfig config;
  std::unique_ptr<BlockClassifier> classifier;
  std::vector<EncodedDocument> documents;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

/// Dynamic-path emissions flattened row-major (the layout EmissionsViaPlan
/// writes).
std::vector<float> DynamicEmissions(const BlockClassifier& classifier,
                                    const EncodedDocument& document) {
  NoGradGuard guard;
  Tensor em = classifier.Emissions(document, nullptr);
  std::vector<float> out;
  out.reserve(static_cast<size_t>(em.rows()) * em.cols());
  for (int r = 0; r < em.rows(); ++r) {
    for (int c = 0; c < em.cols(); ++c) out.push_back(em.at(r, c));
  }
  return out;
}

TEST(InferencePlanTest, ReplayMatchesDynamicEmissionsBitExactSerial) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner planner(fx.classifier.get());
  ASSERT_FALSE(fx.documents.empty());
  for (size_t d = 0; d < fx.documents.size(); ++d) {
    const EncodedDocument& document = fx.documents[d];
    const std::vector<float> want =
        DynamicEmissions(*fx.classifier, document);
    // Two replays per document: the first builds the bucket's plans, the
    // second takes the pure cache-hit path. Both must be bit-identical.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<float> got;
      ASSERT_TRUE(planner.EmissionsViaPlan(document, &got))
          << "document " << d << " pass " << pass;
      ASSERT_EQ(got.size(), want.size()) << "document " << d;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "document " << d << " pass " << pass << " element " << i;
      }
    }
  }
}

TEST(InferencePlanTest, PredictMatchesDynamicLabels) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner planner(fx.classifier.get());
  for (size_t d = 0; d < fx.documents.size(); ++d) {
    const std::vector<int> want = fx.classifier->Predict(fx.documents[d]);
    const std::vector<int> got = planner.Predict(fx.documents[d]);
    EXPECT_EQ(got, want) << "document " << d;
  }
}

TEST(InferencePlanTest, ReplayAgreesAcrossThreadCounts) {
  auto& fx = GetFixture();
  const EncodedDocument& document = fx.documents[0];

  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner serial_planner(fx.classifier.get());
  std::vector<float> serial;
  ASSERT_TRUE(serial_planner.EmissionsViaPlan(document, &serial));

  for (int threads : {2, 4}) {
    ThreadPool::Global().SetNumThreads(threads);
    InferencePlanner planner(fx.classifier.get());
    std::vector<float> got;
    ASSERT_TRUE(planner.EmissionsViaPlan(document, &got)) << threads;
    ASSERT_EQ(got.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_NEAR(got[i], serial[i], 1e-6)
          << "threads=" << threads << " element " << i;
    }
  }
  ThreadPool::Global().SetNumThreads(1);
}

TEST(InferencePlanTest, SteadyStateReplayNeverMissesTheArena) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  TensorArena::Global().SetEnabled(true);
  InferencePlanner planner(fx.classifier.get());
  const EncodedDocument& document = fx.documents[0];

  // Warm-up: builds the plans and seeds the workspace size classes.
  std::vector<float> emissions;
  ASSERT_TRUE(planner.EmissionsViaPlan(document, &emissions));

  // Steady state: replay allocates exactly one arena workspace per plan
  // run, and every one of them must come from the free lists.
  const TensorArena::ThreadStats before = TensorArena::thread_stats();
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(planner.EmissionsViaPlan(document, &emissions));
  }
  const TensorArena::ThreadStats after = TensorArena::thread_stats();
  EXPECT_EQ(after.misses - before.misses, 0);
  EXPECT_GT(after.hits - before.hits, 0);
}

TEST(InferencePlanTest, ConcurrentRepliesShareOnePlanner) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner planner(fx.classifier.get());

  std::vector<std::vector<int>> want(fx.documents.size());
  for (size_t d = 0; d < fx.documents.size(); ++d) {
    want[d] = fx.classifier->Predict(fx.documents[d]);
  }

  // Reader threads race the first builds and then replay shared immutable
  // plans; every result must match the dynamic labels.
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        const size_t d = (t + iter) % fx.documents.size();
        if (planner.Predict(fx.documents[d]) != want[d]) ++mismatches[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

// ---------------------------------------------------------------------------
// Int8 plan routing (PR 7): with runtime.use_int8 the recorder rewrites
// constant-weight GEMMs to quantized kernels at plan build. The int8 path
// must replay without fallback, stay deterministic across thread counts,
// and track the fp32 emissions closely on this tiny model.
// ---------------------------------------------------------------------------

/// A classifier with identical weights to the fixture's (same seed/config)
/// but runtime.use_int8 set, so its planner builds int8 plans.
std::unique_ptr<BlockClassifier> MakeInt8Twin(const Fixture& fx) {
  ResuFormerConfig cfg = fx.config;
  cfg.runtime.use_int8 = true;
  Rng rng(11);  // same seed as the fixture -> identical parameters
  auto classifier = std::make_unique<BlockClassifier>(cfg, &rng);
  classifier->SetTraining(false);
  return classifier;
}

TEST(InferencePlanInt8Test, ReplayRewritesGemmsAndTracksFp32) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  std::unique_ptr<BlockClassifier> int8_cls = MakeInt8Twin(fx);
  InferencePlanner planner(int8_cls.get());
  auto& reg = metrics::MetricsRegistry::Global();
  const int64_t rewrites_before = reg.GetCounter("quant.instrs_rewritten")->value();
  const int64_t fallbacks_before = reg.GetCounter("plan.fallbacks")->value();

  for (size_t d = 0; d < fx.documents.size(); ++d) {
    const EncodedDocument& document = fx.documents[d];
    const std::vector<float> want = DynamicEmissions(*fx.classifier, document);
    std::vector<float> got;
    ASSERT_TRUE(planner.EmissionsViaPlan(document, &got)) << "document " << d;
    ASSERT_EQ(got.size(), want.size());
    // Quantization error compounds through the encoder stack; on this tiny
    // model the emissions stay within a small absolute band of fp32. The
    // end-to-end accuracy gate lives in integration_test.cc.
    float max_diff = 0.0f;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_TRUE(std::isfinite(got[i])) << "document " << d << " elt " << i;
      max_diff = std::max(max_diff, std::abs(got[i] - want[i]));
    }
    EXPECT_LT(max_diff, 0.75f) << "document " << d;
  }
  EXPECT_GT(reg.GetCounter("quant.instrs_rewritten")->value(), rewrites_before);
  EXPECT_EQ(reg.GetCounter("plan.fallbacks")->value(), fallbacks_before);
}

TEST(InferencePlanInt8Test, ReplayIsBitIdenticalAcrossThreadCounts) {
  auto& fx = GetFixture();
  std::unique_ptr<BlockClassifier> int8_cls = MakeInt8Twin(fx);
  const EncodedDocument& document = fx.documents[0];

  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner serial_planner(int8_cls.get());
  std::vector<float> serial;
  ASSERT_TRUE(serial_planner.EmissionsViaPlan(document, &serial));

  // Int32 accumulation is exact, so unlike the fp32 path (<= 1e-6 band)
  // the int8 replay is bit-identical at any pool width.
  ThreadPool::Global().SetNumThreads(4);
  InferencePlanner parallel_planner(int8_cls.get());
  std::vector<float> parallel;
  ASSERT_TRUE(parallel_planner.EmissionsViaPlan(document, &parallel));
  ThreadPool::Global().SetNumThreads(1);

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(parallel[i], serial[i]) << "element " << i;
  }
}

TEST(InferencePlanInt8Test, PredictLabelsMostlyAgreeWithFp32) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  std::unique_ptr<BlockClassifier> int8_cls = MakeInt8Twin(fx);
  InferencePlanner planner(int8_cls.get());
  int total = 0, agree = 0;
  for (const EncodedDocument& document : fx.documents) {
    const std::vector<int> want = fx.classifier->Predict(document);
    const std::vector<int> got = planner.Predict(document);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ++total;
      if (got[i] == want[i]) ++agree;
    }
  }
  ASSERT_GT(total, 0);
  // Untrained tiny model: logits sit near ties, so perfect agreement is not
  // expected — but wholesale divergence means the int8 path is broken.
  EXPECT_GE(static_cast<double>(agree) / total, 0.9)
      << agree << "/" << total << " labels agree";
}

}  // namespace
}  // namespace core
}  // namespace resuformer
