// Static inference-plan equivalence suite (ctest label: plan).
//
// The plan layer promises "purely a fast path": for every sequence-length
// bucket, replaying the traced plan must produce the same numbers the
// dynamic op graph produces. These tests pin that contract:
//
//  * bit-identical emissions and labels at a serial thread pool,
//  * <= 1e-6 agreement across thread-pool widths,
//  * zero arena misses in steady-state replay (the workspace comes from
//    the free lists every time),
//  * one planner shared by concurrent reader threads (plans are immutable;
//    the tsan preset runs this suite).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/block_classifier.h"
#include "core/hierarchical_encoder.h"
#include "core/inference_plan.h"
#include "doc/block_tags.h"
#include "resumegen/corpus.h"
#include "tensor/arena.h"

namespace resuformer {
namespace core {
namespace {

/// Tiny config (mirrors core_test): exercises every op the plan records
/// while keeping trace + replay fast.
ResuFormerConfig TinyConfig(int vocab) {
  ResuFormerConfig cfg;
  cfg.hidden = 16;
  cfg.sentence_layers = 1;
  cfg.document_layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.max_tokens_per_sentence = 12;
  cfg.max_sentences = 24;
  cfg.vocab_size = vocab;
  cfg.lstm_hidden = 12;
  return cfg;
}

struct Fixture {
  Fixture() : corpus(MakeCorpus()), tokenizer(MakeTokenizer(corpus)) {
    config = TinyConfig(tokenizer.vocab().size());
    Rng rng(11);
    classifier = std::make_unique<BlockClassifier>(config, &rng);
    classifier->SetTraining(false);
    for (const resumegen::GeneratedResume& r : corpus.train) {
      documents.push_back(EncodeForModel(r.document, tokenizer, config));
    }
  }

  static resumegen::Corpus MakeCorpus() {
    resumegen::CorpusConfig cfg;
    cfg.pretrain_docs = 2;
    cfg.train_docs = 6;
    cfg.val_docs = 2;
    cfg.test_docs = 2;
    cfg.seed = 13;
    return resumegen::GenerateCorpus(cfg);
  }
  static text::WordPieceTokenizer MakeTokenizer(
      const resumegen::Corpus& corpus) {
    return resumegen::TrainTokenizer(corpus, 400);
  }

  resumegen::Corpus corpus;
  text::WordPieceTokenizer tokenizer;
  ResuFormerConfig config;
  std::unique_ptr<BlockClassifier> classifier;
  std::vector<EncodedDocument> documents;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

/// Dynamic-path emissions flattened row-major (the layout EmissionsViaPlan
/// writes).
std::vector<float> DynamicEmissions(const BlockClassifier& classifier,
                                    const EncodedDocument& document) {
  NoGradGuard guard;
  Tensor em = classifier.Emissions(document, nullptr);
  std::vector<float> out;
  out.reserve(static_cast<size_t>(em.rows()) * em.cols());
  for (int r = 0; r < em.rows(); ++r) {
    for (int c = 0; c < em.cols(); ++c) out.push_back(em.at(r, c));
  }
  return out;
}

TEST(InferencePlanTest, ReplayMatchesDynamicEmissionsBitExactSerial) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner planner(fx.classifier.get());
  ASSERT_FALSE(fx.documents.empty());
  for (size_t d = 0; d < fx.documents.size(); ++d) {
    const EncodedDocument& document = fx.documents[d];
    const std::vector<float> want =
        DynamicEmissions(*fx.classifier, document);
    // Two replays per document: the first builds the bucket's plans, the
    // second takes the pure cache-hit path. Both must be bit-identical.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<float> got;
      ASSERT_TRUE(planner.EmissionsViaPlan(document, &got))
          << "document " << d << " pass " << pass;
      ASSERT_EQ(got.size(), want.size()) << "document " << d;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "document " << d << " pass " << pass << " element " << i;
      }
    }
  }
}

TEST(InferencePlanTest, PredictMatchesDynamicLabels) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner planner(fx.classifier.get());
  for (size_t d = 0; d < fx.documents.size(); ++d) {
    const std::vector<int> want = fx.classifier->Predict(fx.documents[d]);
    const std::vector<int> got = planner.Predict(fx.documents[d]);
    EXPECT_EQ(got, want) << "document " << d;
  }
}

TEST(InferencePlanTest, ReplayAgreesAcrossThreadCounts) {
  auto& fx = GetFixture();
  const EncodedDocument& document = fx.documents[0];

  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner serial_planner(fx.classifier.get());
  std::vector<float> serial;
  ASSERT_TRUE(serial_planner.EmissionsViaPlan(document, &serial));

  for (int threads : {2, 4}) {
    ThreadPool::Global().SetNumThreads(threads);
    InferencePlanner planner(fx.classifier.get());
    std::vector<float> got;
    ASSERT_TRUE(planner.EmissionsViaPlan(document, &got)) << threads;
    ASSERT_EQ(got.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_NEAR(got[i], serial[i], 1e-6)
          << "threads=" << threads << " element " << i;
    }
  }
  ThreadPool::Global().SetNumThreads(1);
}

TEST(InferencePlanTest, SteadyStateReplayNeverMissesTheArena) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  TensorArena::Global().SetEnabled(true);
  InferencePlanner planner(fx.classifier.get());
  const EncodedDocument& document = fx.documents[0];

  // Warm-up: builds the plans and seeds the workspace size classes.
  std::vector<float> emissions;
  ASSERT_TRUE(planner.EmissionsViaPlan(document, &emissions));

  // Steady state: replay allocates exactly one arena workspace per plan
  // run, and every one of them must come from the free lists.
  const TensorArena::ThreadStats before = TensorArena::thread_stats();
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(planner.EmissionsViaPlan(document, &emissions));
  }
  const TensorArena::ThreadStats after = TensorArena::thread_stats();
  EXPECT_EQ(after.misses - before.misses, 0);
  EXPECT_GT(after.hits - before.hits, 0);
}

TEST(InferencePlanTest, ConcurrentRepliesShareOnePlanner) {
  auto& fx = GetFixture();
  ThreadPool::Global().SetNumThreads(1);
  InferencePlanner planner(fx.classifier.get());

  std::vector<std::vector<int>> want(fx.documents.size());
  for (size_t d = 0; d < fx.documents.size(); ++d) {
    want[d] = fx.classifier->Predict(fx.documents[d]);
  }

  // Reader threads race the first builds and then replay shared immutable
  // plans; every result must match the dynamic labels.
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        const size_t d = (t + iter) % fx.documents.size();
        if (planner.Predict(fx.documents[d]) != want[d]) ++mismatches[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace core
}  // namespace resuformer
