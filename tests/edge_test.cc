// Edge-case and behavioural tests that go beyond the per-module basics:
// degenerate op inputs, optimizer corner cases, pre-training objective
// behaviour, renderer geometry, and augmenter identities.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pretrainer.h"
#include "distant/augmenter.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "resumegen/corpus.h"
#include "tensor/ops.h"

namespace resuformer {
namespace {

// ------------------------------------------------------------- ops edges

TEST(OpsEdgeTest, SoftmaxSingleColumnIsOne) {
  Tensor x = Tensor::FromData({3, 1}, {5.0f, -2.0f, 0.0f});
  Tensor s = ops::Softmax(x);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(s.at(i, 0), 1.0f);
}

TEST(OpsEdgeTest, CrossEntropyAllIgnoredIsZero) {
  Tensor logits = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor loss = ops::CrossEntropy(logits, {-1, -1}, -1);
  EXPECT_EQ(loss.item(), 0.0f);
}

TEST(OpsEdgeTest, CrossEntropyExtremeLogitsFinite) {
  Tensor logits = Tensor::FromData({1, 3}, {1000.0f, -1000.0f, 0.0f});
  Tensor loss = ops::CrossEntropy(logits, {1});
  EXPECT_TRUE(std::isfinite(loss.item()));
  // The probability is clamped at 1e-12 before the log, so the loss is
  // large but bounded (-log(1e-12) ~ 27.6) instead of inf.
  EXPECT_GT(loss.item(), 20.0f);
  EXPECT_LT(loss.item(), 30.0f);
}

TEST(OpsEdgeTest, L2NormalizeZeroRowStaysFinite) {
  Tensor x = Tensor::Zeros({2, 4});
  x.at(1, 0) = 3.0f;
  Tensor n = ops::L2NormalizeRows(x);
  for (int64_t i = 0; i < n.size(); ++i) {
    EXPECT_TRUE(std::isfinite(n.data()[i]));
  }
  EXPECT_NEAR(n.at(1, 0), 1.0f, 1e-4f);
}

TEST(OpsEdgeTest, ConcatSingletonIsIdentityCopy) {
  Rng rng(1);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  Tensor c = ops::ConcatRows({a});
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], c.data()[i]);
  }
}

TEST(OpsEdgeTest, SliceFullRangeEqualsInput) {
  Rng rng(2);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  Tensor s = ops::SliceRows(a, 0, 3);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], s.data()[i]);
  }
}

TEST(OpsEdgeTest, GatherRepeatedRowsAccumulatesGradient) {
  Tensor a = Tensor::Full({2, 2}, 1.0f, /*requires_grad=*/true);
  Tensor g = ops::GatherRows(a, {0, 0, 0});
  Tensor loss = ops::Sum(g);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);  // row 0 used three times
  EXPECT_FLOAT_EQ(a.grad()[2], 0.0f);  // row 1 unused
}

TEST(OpsEdgeTest, DropoutFullGraphStillBackprops) {
  Rng rng(3);
  Tensor x = Tensor::Full({1, 8}, 2.0f, true);
  Tensor d = ops::Dropout(x, 0.5f, &rng, /*training=*/true);
  ops::Mean(d).Backward();
  // Gradient exists and is zero exactly where the mask dropped units.
  for (int i = 0; i < 8; ++i) {
    if (d.at(0, i) == 0.0f) {
      EXPECT_EQ(x.grad()[i], 0.0f);
    } else {
      EXPECT_GT(x.grad()[i], 0.0f);
    }
  }
}

// --------------------------------------------------------- optimizer edges

TEST(OptimizerEdgeTest, AdamWeightDecayShrinksWithZeroGrad) {
  Tensor w = Tensor::Full({1}, 1.0f, true);
  w.ZeroGrad();
  nn::Adam adam({w}, /*lr=*/0.1f, 0.9f, 0.999f, 1e-8f,
                /*weight_decay=*/0.5f);
  adam.Step();
  EXPECT_LT(w.at(0), 1.0f);  // decoupled decay applies without gradient
}

TEST(OptimizerEdgeTest, ClipNoopBelowThreshold) {
  Tensor w = Tensor::Full({2}, 0.0f, true);
  w.grad()[0] = 0.3f;
  w.grad()[1] = 0.4f;  // norm 0.5
  nn::Sgd sgd({w}, 0.1f);
  const float norm = sgd.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(norm, 0.5f);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.3f);  // unchanged
}

// ------------------------------------------------------ pretrainer edges

TEST(PretrainerEdgeTest, SingleSentenceDocumentHandled) {
  // SCL and DNSP need >= 2 sentences; a 1-sentence document must not crash
  // and MLLM must still produce a loss.
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 2;
  ccfg.train_docs = 1;
  ccfg.val_docs = 1;
  ccfg.test_docs = 1;
  ccfg.seed = 91;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 400);
  core::ResuFormerConfig cfg;
  cfg.hidden = 16;
  cfg.sentence_layers = 1;
  cfg.document_layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = tokenizer.vocab().size();
  Rng rng(1);
  core::HierarchicalEncoder encoder(cfg, &rng);
  core::Pretrainer pretrainer(&encoder, &rng);

  core::EncodedDocument doc =
      core::EncodeForModel(corpus.train[0].document, tokenizer, cfg);
  doc.sentences.resize(1);  // truncate to a single sentence
  std::vector<Tensor> params = encoder.Parameters();
  for (const Tensor& p : pretrainer.OwnParameters()) params.push_back(p);
  nn::Adam adam(params, 1e-3f);
  const core::PretrainStats stats = pretrainer.Step({&doc}, &adam);
  EXPECT_GT(stats.mllm_loss, 0.0);
  EXPECT_EQ(stats.scl_loss, 0.0);
  EXPECT_EQ(stats.dnsp_loss, 0.0);
}

TEST(PretrainerEdgeTest, DnspMatrixReceivesGradient) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 1;
  ccfg.train_docs = 1;
  ccfg.val_docs = 1;
  ccfg.test_docs = 1;
  ccfg.seed = 92;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 400);
  core::ResuFormerConfig cfg;
  cfg.hidden = 16;
  cfg.sentence_layers = 1;
  cfg.document_layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = tokenizer.vocab().size();
  Rng rng(2);
  core::HierarchicalEncoder encoder(cfg, &rng);
  core::PretrainObjectives obj;
  obj.mllm = false;
  obj.scl = false;
  core::Pretrainer pretrainer(&encoder, &rng, obj);
  const core::EncodedDocument doc =
      core::EncodeForModel(corpus.pretrain[0].document, tokenizer, cfg);
  Tensor w = pretrainer.OwnParameters()[0];
  const float before = w.at(0, 0);
  std::vector<Tensor> params = encoder.Parameters();
  params.push_back(w);
  nn::Adam adam(params, 1e-2f);
  pretrainer.Step({&doc}, &adam);
  EXPECT_NE(w.at(0, 0), before);  // the bilinear form trained
}

// -------------------------------------------------------- renderer edges

TEST(RendererEdgeTest, TwoColumnSidebarGeometry) {
  Rng rng(7);
  resumegen::ResumeSampler sampler(&rng);
  resumegen::Renderer renderer(&rng);
  const resumegen::GeneratedResume r =
      renderer.Render(sampler.Sample(), resumegen::TemplateById(1));
  // Two-column layout: some sentences must start left of x=200 (sidebar)
  // and some right of x=210 (main column).
  bool has_sidebar = false, has_main = false;
  for (const auto& s : r.document.sentences) {
    if (s.box.x0 < 200.0f) has_sidebar = true;
    if (s.box.x0 > 210.0f) has_main = true;
  }
  EXPECT_TRUE(has_sidebar);
  EXPECT_TRUE(has_main);
}

TEST(RendererEdgeTest, FooterNoiseLinesAreOutsideLabel) {
  // Across many documents, some carry "Page x / y" footers labeled O.
  Rng rng(8);
  int footers = 0;
  for (int i = 0; i < 30; ++i) {
    const resumegen::GeneratedResume r = resumegen::GenerateResume(&rng);
    for (int s = 0; s < r.document.NumSentences(); ++s) {
      if (r.document.sentences[s].tokens[0].word == "Page") {
        EXPECT_EQ(r.document.sentence_labels[s], doc::kOutsideLabel);
        ++footers;
      }
    }
  }
  EXPECT_GT(footers, 0);
}

// -------------------------------------------------------- augmenter edges

TEST(AugmenterEdgeTest, ZeroSwapProbabilityIsIdentity) {
  distant::EntityDictionary dict;
  dict.Add(doc::EntityTag::kCollege, "Northgate University");
  Rng rng(9);
  distant::Augmenter augmenter(&dict, &rng);
  distant::AnnotatedSequence seq;
  seq.words = {"Northgate", "University", "x"};
  seq.labels = {doc::EntityIobLabel(doc::EntityTag::kCollege, true),
                doc::EntityIobLabel(doc::EntityTag::kCollege, false), 0};
  const auto out = augmenter.SwapEntities(seq, 0.0);
  EXPECT_EQ(out.words, seq.words);
  EXPECT_EQ(out.labels, seq.labels);
}

TEST(AugmenterEdgeTest, ShuffleWithoutTwoSpansIsIdentity) {
  distant::EntityDictionary dict;
  Rng rng(10);
  distant::Augmenter augmenter(&dict, &rng);
  distant::AnnotatedSequence seq;
  seq.words = {"just", "words"};
  seq.labels = {0, 0};
  const auto out = augmenter.ShuffleEntityOrder(seq);
  EXPECT_EQ(out.words, seq.words);
}

// ------------------------------------------------------- serialize edges

TEST(SerializeEdgeTest, LargeModuleRoundTrip) {
  Rng rng(11);
  core::ResuFormerConfig cfg;
  cfg.hidden = 16;
  cfg.sentence_layers = 1;
  cfg.document_layers = 1;
  cfg.num_heads = 2;
  cfg.ffn = 32;
  cfg.vocab_size = 200;
  core::HierarchicalEncoder a(cfg, &rng);
  core::HierarchicalEncoder b(cfg, &rng);
  const std::string path = ::testing::TempDir() + "/encoder.bin";
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());
  ASSERT_TRUE(nn::LoadParameters(&b, path).ok());
  const auto pa = a.Parameters(), pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].size(), pb[i].size());
    EXPECT_EQ(pa[i].data()[0], pb[i].data()[0]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace resuformer
