// Command-line front end for the library — the surface a downstream user
// scripts against.
//
//   resuformer_cli generate --docs 5 --seed 42        render resumes to stdout
//   resuformer_cli stats --docs 100                   corpus statistics
//   resuformer_cli annotate "Email: a@b.com Age: 27"  distant annotation demo
//   resuformer_cli train-and-parse [--seed N]         train the pipeline on a
//                                                     small corpus and parse a
//                                                     held-out resume
//   resuformer_cli bench-latency                      per-resume latency of the
//                                                     untrained hierarchical
//                                                     vs token-level paths

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/layout_token_model.h"
#include "common/string_util.h"
#include "distant/dictionary.h"
#include "eval/timing.h"
#include "pipeline/pipeline.h"
#include "resumegen/corpus.h"

namespace resuformer {
namespace {

int64_t FlagValue(int argc, char** argv, const char* name,
                  int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

int CmdGenerate(int argc, char** argv) {
  const int docs = static_cast<int>(FlagValue(argc, argv, "--docs", 1));
  Rng rng(static_cast<uint64_t>(FlagValue(argc, argv, "--seed", 42)));
  for (int i = 0; i < docs; ++i) {
    const resumegen::GeneratedResume r = resumegen::GenerateResume(&rng);
    std::printf("--- resume %d: %s (template %d, %d pages) ---\n%s\n", i + 1,
                r.record.FullName().c_str(), r.template_id,
                r.document.num_pages,
                resumegen::AsciiRender(r.document,
                                       r.document.sentence_labels).c_str());
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  resumegen::CorpusConfig cfg;
  cfg.pretrain_docs = static_cast<int>(FlagValue(argc, argv, "--docs", 100));
  cfg.train_docs = 0;
  cfg.val_docs = 0;
  cfg.test_docs = 0;
  cfg.seed = static_cast<uint64_t>(FlagValue(argc, argv, "--seed", 17));
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(cfg);
  const resumegen::SplitStats stats =
      resumegen::ComputeStats(corpus.pretrain);
  std::printf("%d documents: avg %.1f tokens, %.1f sentences, %.2f pages\n",
              stats.num_docs, stats.avg_tokens, stats.avg_sentences,
              stats.avg_pages);
  return 0;
}

int CmdAnnotate(int argc, char** argv) {
  std::string text;
  for (int i = 2; i < argc; ++i) {
    if (argv[i][0] == '-') break;
    if (!text.empty()) text += " ";
    text += argv[i];
  }
  if (text.empty()) {
    std::fprintf(stderr, "usage: resuformer_cli annotate <text...>\n");
    return 1;
  }
  const distant::EntityDictionary dict =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::AutoAnnotator annotator(&dict);
  const std::vector<std::string> words = SplitString(text);
  const std::vector<int> labels = annotator.Annotate(words);
  for (size_t i = 0; i < words.size(); ++i) {
    std::printf("%-24s %s\n", words[i].c_str(),
                doc::EntityIobLabelName(labels[i]).c_str());
  }
  return 0;
}

int CmdTrainAndParse(int argc, char** argv) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 60;
  ccfg.train_docs = 10;
  ccfg.val_docs = 6;
  ccfg.test_docs = 2;
  ccfg.seed = static_cast<uint64_t>(FlagValue(argc, argv, "--seed", 7));
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  pipeline::PipelineOptions options;
  options.pretrain_epochs = 2;
  options.finetune.epochs = 10;
  options.finetune.patience = 4;
  options.selftrain.teacher_epochs = 6;
  options.selftrain.iterations = 3;
  options.ner_data.train_sequences = 300;
  options.ner_data.val_sequences = 50;
  options.ner_data.test_sequences = 50;
  std::printf("training pipeline (this takes a minute)...\n");
  pipeline::TrainReport report;
  auto p = pipeline::ResuFormerPipeline::TrainFromCorpus(corpus, options,
                                                         &report);
  std::printf("trained: block val acc %.3f, NER val F1 %.3f\n\n",
              report.block_val_accuracy, report.ner_val_f1);
  const pipeline::StructuredResume parsed =
      p->Parse(corpus.test[0].document);
  std::printf("%s", pipeline::ResuFormerPipeline::ToPrettyString(parsed)
                        .c_str());
  return 0;
}

int CmdBenchLatency(int argc, char** argv) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 0;
  ccfg.train_docs = 0;
  ccfg.val_docs = 0;
  ccfg.test_docs = 20;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);

  core::ResuFormerConfig cfg;
  cfg.vocab_size = tokenizer.vocab().size();
  Rng rng(1);
  core::BlockClassifier hierarchical(cfg, &rng);
  hierarchical.SetTraining(false);
  baselines::TokenModelConfig tcfg;
  tcfg.vocab_size = tokenizer.vocab().size();
  Rng rng2(2);
  baselines::LayoutTokenModel token_model(tcfg, &tokenizer, &rng2, 0);
  token_model.SetTraining(false);

  eval::LatencyMeter hier_meter, token_meter;
  for (const auto& r : corpus.test) {
    eval::Stopwatch sw1;
    hierarchical.Predict(core::EncodeForModel(r.document, tokenizer, cfg));
    hier_meter.Add(sw1.Seconds());
    eval::Stopwatch sw2;
    token_model.LabelSentences(r.document);
    token_meter.Add(sw2.Seconds());
  }
  std::printf("hierarchical (sentence-level): %.4fs/resume\n",
              hier_meter.MeanSeconds());
  std::printf("token-level (windowed):        %.4fs/resume\n",
              token_meter.MeanSeconds());
  std::printf("ratio: %.2fx\n",
              token_meter.MeanSeconds() /
                  std::max(hier_meter.MeanSeconds(), 1e-9));
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: resuformer_cli <generate|stats|annotate|train-and-parse|"
      "bench-latency> [flags]\n");
  return 1;
}

}  // namespace
}  // namespace resuformer

int main(int argc, char** argv) {
  if (argc < 2) return resuformer::Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return resuformer::CmdGenerate(argc, argv);
  if (cmd == "stats") return resuformer::CmdStats(argc, argv);
  if (cmd == "annotate") return resuformer::CmdAnnotate(argc, argv);
  if (cmd == "train-and-parse") {
    return resuformer::CmdTrainAndParse(argc, argv);
  }
  if (cmd == "bench-latency") return resuformer::CmdBenchLatency(argc, argv);
  return resuformer::Usage();
}
