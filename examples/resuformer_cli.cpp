// Command-line front end for the library — the surface a downstream user
// scripts against.
//
//   resuformer_cli generate --docs 5 --seed 42        render resumes to stdout
//   resuformer_cli stats --docs 100                   corpus statistics
//   resuformer_cli annotate "Email: a@b.com Age: 27"  distant annotation demo
//   resuformer_cli train-and-parse [--seed N]         train the pipeline on a
//                                                     small corpus and parse a
//                                                     held-out resume
//   resuformer_cli bench-latency                      per-resume latency of the
//                                                     untrained hierarchical
//                                                     vs token-level paths
//
// Global observability flags (any command; see common/runtime_options.h for
// the matching RESUFORMER_* environment overrides):
//   --trace-out FILE     enable tracing, write a chrome://tracing JSON file
//   --metrics-out FILE   enable timed metrics, write a metrics snapshot JSON
//   --threads N          thread-pool width (0 = auto)
//   --use-plan           static inference-plan replay (RESUFORMER_USE_PLAN)
//   --use-int8           int8 GEMMs inside plan replay (RESUFORMER_USE_INT8)
//   --save-rfp3          save mmap-able RFP3 checkpoints (RESUFORMER_SAVE_RFP3)
// With no command, train-and-parse runs — `resuformer_cli --trace-out t.json`
// captures a trace of the full pipeline.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "baselines/layout_token_model.h"
#include "common/metrics.h"
#include "common/runtime_options.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "distant/dictionary.h"
#include "eval/timing.h"
#include "pipeline/pipeline.h"
#include "resumegen/corpus.h"

namespace resuformer {
namespace {

// Resolved once in main (env, then flags) and injected into every model
// config a command builds: model constructors re-apply their config's
// runtime options, so a config built from defaults would silently switch
// tracing/metrics back off.
RuntimeOptions g_runtime;

int64_t FlagValue(int argc, char** argv, const char* name,
                  int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

const char* StringFlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int CmdGenerate(int argc, char** argv) {
  const int docs = static_cast<int>(FlagValue(argc, argv, "--docs", 1));
  Rng rng(static_cast<uint64_t>(FlagValue(argc, argv, "--seed", 42)));
  for (int i = 0; i < docs; ++i) {
    const resumegen::GeneratedResume r = resumegen::GenerateResume(&rng);
    std::printf("--- resume %d: %s (template %d, %d pages) ---\n%s\n", i + 1,
                r.record.FullName().c_str(), r.template_id,
                r.document.num_pages,
                resumegen::AsciiRender(r.document,
                                       r.document.sentence_labels).c_str());
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  resumegen::CorpusConfig cfg;
  cfg.pretrain_docs = static_cast<int>(FlagValue(argc, argv, "--docs", 100));
  cfg.train_docs = 0;
  cfg.val_docs = 0;
  cfg.test_docs = 0;
  cfg.seed = static_cast<uint64_t>(FlagValue(argc, argv, "--seed", 17));
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(cfg);
  const resumegen::SplitStats stats =
      resumegen::ComputeStats(corpus.pretrain);
  std::printf("%d documents: avg %.1f tokens, %.1f sentences, %.2f pages\n",
              stats.num_docs, stats.avg_tokens, stats.avg_sentences,
              stats.avg_pages);
  return 0;
}

int CmdAnnotate(int argc, char** argv) {
  std::string text;
  for (int i = 2; i < argc; ++i) {
    if (argv[i][0] == '-') break;
    if (!text.empty()) text += " ";
    text += argv[i];
  }
  if (text.empty()) {
    std::fprintf(stderr, "usage: resuformer_cli annotate <text...>\n");
    return 1;
  }
  const distant::EntityDictionary dict =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::AutoAnnotator annotator(&dict);
  const std::vector<std::string> words = SplitString(text);
  const std::vector<int> labels = annotator.Annotate(words);
  for (size_t i = 0; i < words.size(); ++i) {
    std::printf("%-24s %s\n", words[i].c_str(),
                doc::EntityIobLabelName(labels[i]).c_str());
  }
  return 0;
}

int CmdTrainAndParse(int argc, char** argv) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 60;
  ccfg.train_docs = 10;
  ccfg.val_docs = 6;
  ccfg.test_docs = 2;
  ccfg.seed = static_cast<uint64_t>(FlagValue(argc, argv, "--seed", 7));
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  pipeline::PipelineOptions options;
  options.model.runtime = g_runtime;
  options.pretrain_epochs = 2;
  options.finetune.epochs = 10;
  options.finetune.patience = 4;
  options.selftrain.teacher_epochs = 6;
  options.selftrain.iterations = 3;
  options.ner_data.train_sequences = 300;
  options.ner_data.val_sequences = 50;
  options.ner_data.test_sequences = 50;
  std::printf("training pipeline (this takes a minute)...\n");
  pipeline::TrainReport report;
  auto p = pipeline::ResuFormerPipeline::TrainFromCorpus(corpus, options,
                                                         &report);
  std::printf("trained: block val acc %.3f, NER val F1 %.3f\n\n",
              report.block_val_accuracy, report.ner_val_f1);
  const pipeline::StructuredResume parsed =
      p->Parse(corpus.test[0].document);
  std::printf("%s", pipeline::ResuFormerPipeline::ToPrettyString(parsed)
                        .c_str());
  return 0;
}

int CmdBenchLatency(int argc, char** argv) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 0;
  ccfg.train_docs = 0;
  ccfg.val_docs = 0;
  ccfg.test_docs = 20;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);

  core::ResuFormerConfig cfg;
  cfg.runtime = g_runtime;
  cfg.vocab_size = tokenizer.vocab().size();
  Rng rng(1);
  core::BlockClassifier hierarchical(cfg, &rng);
  hierarchical.SetTraining(false);
  baselines::TokenModelConfig tcfg;
  tcfg.vocab_size = tokenizer.vocab().size();
  Rng rng2(2);
  baselines::LayoutTokenModel token_model(tcfg, &tokenizer, &rng2, 0);
  token_model.SetTraining(false);

  eval::LatencyMeter hier_meter, token_meter;
  for (const auto& r : corpus.test) {
    eval::Stopwatch sw1;
    hierarchical.Predict(core::EncodeForModel(r.document, tokenizer, cfg));
    hier_meter.Add(sw1.Seconds());
    eval::Stopwatch sw2;
    token_model.LabelSentences(r.document);
    token_meter.Add(sw2.Seconds());
  }
  std::printf("hierarchical (sentence-level): %.4fs/resume\n",
              hier_meter.MeanSeconds());
  std::printf("token-level (windowed):        %.4fs/resume\n",
              token_meter.MeanSeconds());
  std::printf("ratio: %.2fx\n",
              token_meter.MeanSeconds() /
                  std::max(hier_meter.MeanSeconds(), 1e-9));
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: resuformer_cli <generate|stats|annotate|train-and-parse|"
      "bench-latency> [flags]\n"
      "global flags: --trace-out FILE  --metrics-out FILE  --threads N\n"
      "              --use-plan  --use-int8  --save-rfp3\n");
  return 1;
}

int Dispatch(const std::string& cmd, int argc, char** argv) {
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "annotate") return CmdAnnotate(argc, argv);
  if (cmd == "train-and-parse") return CmdTrainAndParse(argc, argv);
  if (cmd == "bench-latency") return CmdBenchLatency(argc, argv);
  return Usage();
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();

  g_runtime = RuntimeOptions::FromEnv();
  const char* trace_out = StringFlagValue(argc, argv, "--trace-out");
  const char* metrics_out = StringFlagValue(argc, argv, "--metrics-out");
  if (trace_out != nullptr) g_runtime.enable_tracing = true;
  if (metrics_out != nullptr) g_runtime.enable_metrics = true;
  g_runtime.threads = static_cast<int>(
      FlagValue(argc, argv, "--threads", g_runtime.threads));
  if (HasFlag(argc, argv, "--use-plan")) g_runtime.use_inference_plan = true;
  if (HasFlag(argc, argv, "--use-int8")) g_runtime.use_int8 = true;
  if (HasFlag(argc, argv, "--save-rfp3")) g_runtime.save_rfp3 = true;
  core::ApplyRuntimeOptions(g_runtime);

  // A leading flag means "no command": default to the end-to-end pipeline
  // demo, the most useful thing to capture a trace of.
  const std::string cmd =
      argv[1][0] == '-' ? std::string("train-and-parse") : argv[1];
  const int rc = Dispatch(cmd, argc, argv);

  if (metrics_out != nullptr) {
    std::ofstream out(metrics_out);
    out << metrics::MetricsRegistry::Global().Snapshot().ToJson() << '\n';
    if (!out.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out);
      return 1;
    }
    std::fprintf(stderr, "metrics snapshot written to %s\n", metrics_out);
  }
  if (trace_out != nullptr) {
    const Status s =
        trace::TraceRecorder::Global().WriteChromeJson(trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "trace written to %s (load via chrome://tracing)\n",
                 trace_out);
  }
  return rc;
}

}  // namespace
}  // namespace resuformer

int main(int argc, char** argv) { return resuformer::Run(argc, argv); }
