// Command-line front end for the library — the surface a downstream user
// scripts against. Explicit subcommands, parsed once against a per-command
// flag table: an unknown subcommand or flag fails with usage and a nonzero
// exit instead of being silently ignored.
//
// Core subcommands:
//   resuformer_cli train --out DIR [--seed N]     train the full pipeline and
//                                                 save a checkpoint
//   resuformer_cli parse [--model DIR]            parse resume text (--input
//            [--input FILE] [--stats]             FILE or stdin) to JSON
//   resuformer_cli bench                          per-resume latency of the
//                                                 hierarchical vs token paths
//   resuformer_cli serve [--port N] [--model DIR] long-lived parse daemon on
//            [--max-batch N] [--max-delay-ms N]   127.0.0.1 speaking the
//            [--queue-capacity N] [--workers N]   length-prefixed framing
//            [--stats-window-ms N]                protocol (src/serve);
//            [--slow-trace-us N]                  SIGINT/SIGTERM or a client
//            [--slow-trace-dir DIR]               kShutdown frame drains
//                                                 gracefully
//   resuformer_cli stats --port N [--prom|--json] live admin stats of a
//                                                 running serve daemon
//                                                 (kStats frame), rendered
//                                                 as a table by default
//
// Demo subcommands (kept from the pre-daemon CLI):
//   resuformer_cli generate --docs 5 --seed 42        render resumes to stdout
//   resuformer_cli corpus-stats --docs 100            corpus statistics
//   resuformer_cli annotate "Email: a@b.com Age: 27"  distant annotation demo
//   resuformer_cli train-and-parse [--seed N]         train + parse a held-out
//                                                     resume in one process
//   resuformer_cli bench-latency                      alias of bench
//
// Global flags (any subcommand; see common/runtime_options.h for the
// matching RESUFORMER_* environment overrides, including the
// RESUFORMER_SERVE_* admission-queue knobs):
//   --trace-out FILE     enable tracing, write a chrome://tracing JSON file
//   --metrics-out FILE   enable timed metrics, write a metrics snapshot JSON
//   --threads N          thread-pool width (0 = auto)
//   --use-plan           static inference-plan replay (RESUFORMER_USE_PLAN)
//   --use-int8           int8 GEMMs inside plan replay (RESUFORMER_USE_INT8)
//   --save-rfp3          save mmap-able RFP3 checkpoints (RESUFORMER_SAVE_RFP3)
// With no subcommand, train-and-parse runs — `resuformer_cli --trace-out
// t.json` captures a trace of the full pipeline.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/layout_token_model.h"
#include "common/metrics.h"
#include "common/runtime_options.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/trace.h"
#include "distant/dictionary.h"
#include "eval/timing.h"
#include "pipeline/pipeline.h"
#include "resumegen/corpus.h"
#include "serve/endpoint.h"
#include "serve/framing.h"
#include "serve/server.h"
#include "serve/text_document.h"

namespace resuformer {
namespace {

// Resolved once in Run (env, then global flags) and injected into every
// model config a command builds: model constructors re-apply their config's
// runtime options, so a config built from defaults would silently switch
// tracing/metrics back off.
RuntimeOptions g_runtime;

// ---------------------------------------------------------------------------
// Argument parsing: one pass, against an explicit per-command flag table.

struct FlagSpec {
  const char* name;
  bool takes_value;
};

struct CommandSpec {
  const char* name;
  const char* summary;
  std::vector<FlagSpec> flags;
  bool allows_positional;  // bare words after the command (annotate text)
};

// Accepted by every command, stripped before command flags are checked.
const std::vector<FlagSpec>& GlobalFlags() {
  static const std::vector<FlagSpec> kGlobal = {
      {"--trace-out", true}, {"--metrics-out", true}, {"--threads", true},
      {"--use-plan", false}, {"--use-int8", false},   {"--save-rfp3", false},
  };
  return kGlobal;
}

const std::vector<CommandSpec>& Commands() {
  static const std::vector<CommandSpec> kCommands = {
      {"train", "train the full pipeline and save a checkpoint",
       {{"--out", true}, {"--seed", true}}, false},
      {"parse", "parse resume text (--input FILE or stdin) to JSON",
       {{"--model", true}, {"--input", true}, {"--seed", true},
        {"--stats", false}}, false},
      {"bench", "per-resume latency of the hierarchical vs token paths",
       {}, false},
      {"serve", "long-lived parse daemon on 127.0.0.1 (framing protocol)",
       {{"--port", true}, {"--model", true}, {"--seed", true},
        {"--max-batch", true}, {"--max-delay-ms", true},
        {"--queue-capacity", true}, {"--workers", true},
        {"--stats-window-ms", true}, {"--slow-trace-us", true},
        {"--slow-trace-dir", true}}, false},
      {"stats", "live admin stats of a running serve daemon",
       {{"--port", true}, {"--prom", false}, {"--json", false}}, false},
      {"generate", "render synthetic resumes to stdout",
       {{"--docs", true}, {"--seed", true}}, false},
      {"corpus-stats", "corpus statistics",
       {{"--docs", true}, {"--seed", true}}, false},
      {"annotate", "distant annotation demo over the argument text",
       {}, true},
      {"train-and-parse", "train + parse a held-out resume in one process",
       {{"--seed", true}}, false},
      {"bench-latency", "alias of bench", {}, false},
  };
  return kCommands;
}

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;  // "--name" -> value ("" = set)
  std::vector<std::string> positional;
};

int Usage() {
  std::fprintf(stderr, "usage: resuformer_cli <command> [flags]\n\ncommands:\n");
  for (const CommandSpec& cmd : Commands()) {
    std::fprintf(stderr, "  %-16s %s\n", cmd.name, cmd.summary);
  }
  std::fprintf(stderr,
               "\nglobal flags: --trace-out FILE  --metrics-out FILE"
               "  --threads N\n"
               "              --use-plan  --use-int8  --save-rfp3\n");
  return 2;
}

const FlagSpec* FindFlag(const std::vector<FlagSpec>& specs,
                         const char* name) {
  for (const FlagSpec& spec : specs) {
    if (std::strcmp(spec.name, name) == 0) return &spec;
  }
  return nullptr;
}

/// Parses everything after the command name. Returns false (after printing
/// the error and usage) on an unknown flag, a flag missing its value, or an
/// unexpected bare word.
bool ParseArgs(const CommandSpec& cmd, int argc, char** argv, int first,
               ParsedArgs* out) {
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] != '-') {
      if (!cmd.allows_positional) {
        std::fprintf(stderr, "error: unexpected argument \"%s\" for %s\n\n",
                     arg, cmd.name);
        Usage();
        return false;
      }
      out->positional.push_back(arg);
      continue;
    }
    const FlagSpec* spec = FindFlag(GlobalFlags(), arg);
    if (spec == nullptr) spec = FindFlag(cmd.flags, arg);
    if (spec == nullptr) {
      std::fprintf(stderr, "error: unknown flag \"%s\" for %s\n\n", arg,
                   cmd.name);
      Usage();
      return false;
    }
    if (spec->takes_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: flag \"%s\" requires a value\n\n", arg);
        Usage();
        return false;
      }
      out->flags[arg] = argv[++i];
    } else {
      out->flags[arg] = "";
    }
  }
  return true;
}

bool HasFlag(const ParsedArgs& args, const char* name) {
  return args.flags.count(name) > 0;
}

const char* StringFlag(const ParsedArgs& args, const char* name) {
  const auto it = args.flags.find(name);
  return it == args.flags.end() ? nullptr : it->second.c_str();
}

/// Strict base-10 integer flag: the whole value must parse, or the command
/// fails with usage. `*ok` is only ever cleared.
int64_t IntFlag(const ParsedArgs& args, const char* name, int64_t fallback,
                bool* ok) {
  const auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  const char* text = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') {
    std::fprintf(stderr, "error: flag \"%s\" expects an integer, got \"%s\"\n",
                 name, text);
    *ok = false;
    return fallback;
  }
  return value;
}

// ---------------------------------------------------------------------------
// Shared pipeline construction. train/parse/serve must build identical
// PipelineOptions: Load() verifies the checkpoint manifest against them.

pipeline::PipelineOptions DemoPipelineOptions() {
  pipeline::PipelineOptions options;
  options.model.runtime = g_runtime;
  options.pretrain_epochs = 2;
  options.finetune.epochs = 10;
  options.finetune.patience = 4;
  options.selftrain.teacher_epochs = 6;
  options.selftrain.iterations = 3;
  options.ner_data.train_sequences = 300;
  options.ner_data.val_sequences = 50;
  options.ner_data.test_sequences = 50;
  return options;
}

resumegen::Corpus DemoCorpus(uint64_t seed) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 60;
  ccfg.train_docs = 10;
  ccfg.val_docs = 6;
  ccfg.test_docs = 2;
  ccfg.seed = seed;
  return resumegen::GenerateCorpus(ccfg);
}

/// Loads `--model DIR` when given, otherwise trains in-process from the
/// demo corpus (seeded by --seed). Null on load failure (already reported).
std::unique_ptr<pipeline::ResuFormerPipeline> LoadOrTrain(
    const ParsedArgs& args, uint64_t seed) {
  const char* model_dir = StringFlag(args, "--model");
  if (model_dir != nullptr) {
    auto loaded = pipeline::ResuFormerPipeline::Load(model_dir,
                                                     DemoPipelineOptions());
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return nullptr;
    }
    return std::move(loaded).ValueOrDie();
  }
  std::fprintf(stderr,
               "no --model given: training in-process (this takes a "
               "minute)...\n");
  return pipeline::ResuFormerPipeline::TrainFromCorpus(DemoCorpus(seed),
                                                       DemoPipelineOptions());
}

// ---------------------------------------------------------------------------
// Subcommands.

int CmdGenerate(const ParsedArgs& args) {
  bool ok = true;
  const int docs = static_cast<int>(IntFlag(args, "--docs", 1, &ok));
  Rng rng(static_cast<uint64_t>(IntFlag(args, "--seed", 42, &ok)));
  if (!ok) return 2;
  for (int i = 0; i < docs; ++i) {
    const resumegen::GeneratedResume r = resumegen::GenerateResume(&rng);
    std::printf("--- resume %d: %s (template %d, %d pages) ---\n%s\n", i + 1,
                r.record.FullName().c_str(), r.template_id,
                r.document.num_pages,
                resumegen::AsciiRender(r.document,
                                       r.document.sentence_labels).c_str());
  }
  return 0;
}

int CmdCorpusStats(const ParsedArgs& args) {
  bool ok = true;
  resumegen::CorpusConfig cfg;
  cfg.pretrain_docs = static_cast<int>(IntFlag(args, "--docs", 100, &ok));
  cfg.train_docs = 0;
  cfg.val_docs = 0;
  cfg.test_docs = 0;
  cfg.seed = static_cast<uint64_t>(IntFlag(args, "--seed", 17, &ok));
  if (!ok) return 2;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(cfg);
  const resumegen::SplitStats stats =
      resumegen::ComputeStats(corpus.pretrain);
  std::printf("%d documents: avg %.1f tokens, %.1f sentences, %.2f pages\n",
              stats.num_docs, stats.avg_tokens, stats.avg_sentences,
              stats.avg_pages);
  return 0;
}

int CmdAnnotate(const ParsedArgs& args) {
  std::string text;
  for (const std::string& word : args.positional) {
    if (!text.empty()) text += " ";
    text += word;
  }
  if (text.empty()) {
    std::fprintf(stderr, "usage: resuformer_cli annotate <text...>\n");
    return 2;
  }
  const distant::EntityDictionary dict =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  distant::AutoAnnotator annotator(&dict);
  const std::vector<std::string> words = SplitString(text);
  const std::vector<int> labels = annotator.Annotate(words);
  for (size_t i = 0; i < words.size(); ++i) {
    std::printf("%-24s %s\n", words[i].c_str(),
                doc::EntityIobLabelName(labels[i]).c_str());
  }
  return 0;
}

int CmdTrain(const ParsedArgs& args) {
  bool ok = true;
  const char* out_dir = StringFlag(args, "--out");
  const uint64_t seed = static_cast<uint64_t>(IntFlag(args, "--seed", 7, &ok));
  if (!ok) return 2;
  if (out_dir == nullptr) {
    std::fprintf(stderr, "error: train requires --out DIR\n");
    return 2;
  }
  std::printf("training pipeline (this takes a minute)...\n");
  pipeline::TrainReport report;
  auto p = pipeline::ResuFormerPipeline::TrainFromCorpus(
      DemoCorpus(seed), DemoPipelineOptions(), &report);
  std::printf("trained: block val acc %.3f, NER val F1 %.3f\n",
              report.block_val_accuracy, report.ner_val_f1);
  const Status saved = p->Save(out_dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", out_dir);
  return 0;
}

int CmdParse(const ParsedArgs& args) {
  bool ok = true;
  const uint64_t seed = static_cast<uint64_t>(IntFlag(args, "--seed", 7, &ok));
  if (!ok) return 2;

  std::string text;
  const char* input = StringFlag(args, "--input");
  if (input != nullptr) {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", input);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }
  if (text.empty()) {
    std::fprintf(stderr, "error: empty input (give --input FILE or stdin)\n");
    return 2;
  }

  auto p = LoadOrTrain(args, seed);
  if (p == nullptr) return 1;

  pipeline::ParseRequest request;
  request.document = serve::DocumentFromText(text);
  request.want_stats = HasFlag(args, "--stats");
  const pipeline::ParseResponse response = p->Parse(request);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status.ToString().c_str());
    return 1;
  }
  std::printf("%s", pipeline::ResuFormerPipeline::ToPrettyString(
                        response.resume).c_str());
  if (request.want_stats) {
    std::fprintf(stderr,
                 "parse: %.0f us, %d sentences, %d blocks, %d entities\n",
                 response.stats.wall_time_us, response.stats.num_sentences,
                 response.stats.num_blocks, response.stats.num_entities);
  }
  return 0;
}

int CmdTrainAndParse(const ParsedArgs& args) {
  bool ok = true;
  const uint64_t seed = static_cast<uint64_t>(IntFlag(args, "--seed", 7, &ok));
  if (!ok) return 2;
  const resumegen::Corpus corpus = DemoCorpus(seed);
  std::printf("training pipeline (this takes a minute)...\n");
  pipeline::TrainReport report;
  auto p = pipeline::ResuFormerPipeline::TrainFromCorpus(
      corpus, DemoPipelineOptions(), &report);
  std::printf("trained: block val acc %.3f, NER val F1 %.3f\n\n",
              report.block_val_accuracy, report.ner_val_f1);
  pipeline::ParseRequest request;
  request.document = corpus.test[0].document;
  const pipeline::ParseResponse response = p->Parse(request);
  std::printf("%s", pipeline::ResuFormerPipeline::ToPrettyString(
                        response.resume).c_str());
  return 0;
}

int CmdBench(const ParsedArgs&) {
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 0;
  ccfg.train_docs = 0;
  ccfg.val_docs = 0;
  ccfg.test_docs = 20;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);

  core::ResuFormerConfig cfg;
  cfg.runtime = g_runtime;
  cfg.vocab_size = tokenizer.vocab().size();
  Rng rng(1);
  core::BlockClassifier hierarchical(cfg, &rng);
  hierarchical.SetTraining(false);
  baselines::TokenModelConfig tcfg;
  tcfg.vocab_size = tokenizer.vocab().size();
  Rng rng2(2);
  baselines::LayoutTokenModel token_model(tcfg, &tokenizer, &rng2, 0);
  token_model.SetTraining(false);

  eval::LatencyMeter hier_meter, token_meter;
  for (const auto& r : corpus.test) {
    eval::Stopwatch sw1;
    hierarchical.Predict(core::EncodeForModel(r.document, tokenizer, cfg));
    hier_meter.Add(sw1.Seconds());
    eval::Stopwatch sw2;
    token_model.LabelSentences(r.document);
    token_meter.Add(sw2.Seconds());
  }
  std::printf("hierarchical (sentence-level): %.4fs/resume\n",
              hier_meter.MeanSeconds());
  std::printf("token-level (windowed):        %.4fs/resume\n",
              token_meter.MeanSeconds());
  std::printf("ratio: %.2fx\n",
              token_meter.MeanSeconds() /
                  std::max(hier_meter.MeanSeconds(), 1e-9));
  return 0;
}

// ---------------------------------------------------------------------------
// Observability outputs (--metrics-out / --trace-out). Written by CmdServe
// right after a graceful drain (so a SIGTERM'd daemon still leaves its
// artifacts) and by Run's epilogue for every other command; the flag keeps
// the two call sites from double-writing.

const char* g_metrics_out = nullptr;
const char* g_trace_out = nullptr;
bool g_observability_written = false;

int WriteObservabilityOutputs() {
  if (g_observability_written) return 0;
  g_observability_written = true;
  if (g_metrics_out != nullptr) {
    std::ofstream out(g_metrics_out);
    out << metrics::MetricsRegistry::Global().Snapshot().ToJson() << '\n';
    if (!out.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n", g_metrics_out);
      return 1;
    }
    std::fprintf(stderr, "metrics snapshot written to %s\n", g_metrics_out);
  }
  if (g_trace_out != nullptr) {
    const Status s =
        trace::TraceRecorder::Global().WriteChromeJson(g_trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "trace written to %s (load via chrome://tracing)\n",
                 g_trace_out);
  }
  return 0;
}

// SIGINT/SIGTERM -> graceful drain. The handler only stores a flag
// (async-signal-safe); a watcher thread in CmdServe polls it and routes it
// into SocketEndpoint::RequestShutdown — the same path as a client
// kShutdown frame.
std::atomic<int> g_shutdown_signal{0};

void OnShutdownSignal(int sig) {
  // Relaxed: the watcher thread only needs to eventually observe the store;
  // no other memory is published by the handler.
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
}

int CmdServe(const ParsedArgs& args) {
  bool ok = true;
  const int port = static_cast<int>(IntFlag(args, "--port", 0, &ok));
  const uint64_t seed = static_cast<uint64_t>(IntFlag(args, "--seed", 7, &ok));

  // Flag overrides stack on the RESUFORMER_SERVE_* env knobs already parsed
  // into g_runtime; ServerOptions::Validate rejects out-of-range values.
  serve::ServerOptions options = serve::ServerOptions::FromRuntime(g_runtime);
  options.max_batch = static_cast<int>(
      IntFlag(args, "--max-batch", options.max_batch, &ok));
  options.max_queue_delay_ms = static_cast<int>(
      IntFlag(args, "--max-delay-ms", options.max_queue_delay_ms, &ok));
  options.queue_capacity = static_cast<int>(
      IntFlag(args, "--queue-capacity", options.queue_capacity, &ok));
  options.workers = static_cast<int>(
      IntFlag(args, "--workers", options.workers, &ok));
  options.stats_window_ms = static_cast<int>(
      IntFlag(args, "--stats-window-ms", options.stats_window_ms, &ok));
  options.slow_trace_us = static_cast<int>(
      IntFlag(args, "--slow-trace-us", options.slow_trace_us, &ok));
  const char* slow_trace_dir = StringFlag(args, "--slow-trace-dir");
  if (slow_trace_dir != nullptr) options.slow_trace_dir = slow_trace_dir;
  if (!ok) return 2;
  const Status valid = options.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 2;
  }

  auto p = LoadOrTrain(args, seed);
  if (p == nullptr) return 1;

  serve::ParseServer server(p.get(), options);
  serve::SocketEndpoint endpoint(&server);
  const Result<int> bound = endpoint.Start(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "error: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  // stdout and flushed: scripts block on this line to learn the port.
  std::printf("serving on 127.0.0.1:%d (max_batch=%d max_delay_ms=%d "
              "queue_capacity=%d workers=%d)\n",
              bound.value(), options.max_batch, options.max_queue_delay_ms,
              options.queue_capacity, options.workers);
  std::fflush(stdout);

  // Route SIGINT/SIGTERM into the same graceful drain as a kShutdown frame.
  g_shutdown_signal.store(0, std::memory_order_relaxed);
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);
  std::atomic<bool> serving_done{false};
  std::thread signal_watcher([&endpoint, &serving_done] {
    // Relaxed loads: plain flag polls, no memory published through them.
    while (!serving_done.load(std::memory_order_relaxed)) {
      if (g_shutdown_signal.load(std::memory_order_relaxed) != 0) {
        endpoint.RequestShutdown();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  endpoint.WaitForShutdownRequest();
  std::fprintf(stderr, "shutdown requested: draining...\n");
  endpoint.Stop();
  server.Shutdown();
  // Relaxed store: the watcher only reads the flag, nothing else.
  serving_done.store(true, std::memory_order_relaxed);
  signal_watcher.join();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::fprintf(stderr, "drained.\n");
  // Write --metrics-out / --trace-out now, while the drained counters and
  // spans are final — a SIGTERM'd daemon must not lose its artifacts.
  return WriteObservabilityOutputs();
}

// ---------------------------------------------------------------------------
// `stats`: a kStats admin client for a running serve daemon.

/// Connects to 127.0.0.1:`port`. Returns -1 after printing the error.
int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // rf-lint-allow(mmap-payload-cast): POSIX sockets calling convention.
  const sockaddr* addr_ptr = reinterpret_cast<const sockaddr*>(&addr);
  if (::connect(fd, addr_ptr, sizeof(addr)) < 0) {
    std::fprintf(stderr, "error: connect 127.0.0.1:%d: %s\n", port,
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

/// First occurrence of `"key": <int>` in `json`. Safe against StatsJson
/// because its "server" section leads and its keys are unique there.
int64_t FindJsonInt(const std::string& json, const char* key, bool* found) {
  std::string needle = "\"";
  needle += key;
  needle += "\": ";
  const size_t at = json.find(needle);
  if (at == std::string::npos) {
    *found = false;
    return 0;
  }
  return std::strtoll(json.c_str() + at + needle.size(), nullptr, 10);
}

/// First occurrence of `"key": "<value>"`.
std::string FindJsonString(const std::string& json, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\": \"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return "?";
  const size_t start = at + needle.size();
  const size_t end = json.find('"', start);
  if (end == std::string::npos) return "?";
  return json.substr(start, end - start);
}

int CmdServerStats(const ParsedArgs& args) {
  bool ok = true;
  const int port = static_cast<int>(IntFlag(args, "--port", 0, &ok));
  if (!ok) return 2;
  if (port <= 0) {
    std::fprintf(stderr, "error: stats requires --port N of a running "
                         "serve daemon\n");
    return 2;
  }
  const bool prom = HasFlag(args, "--prom");

  const int fd = ConnectLoopback(port);
  if (fd < 0) return 1;
  serve::Frame request;
  request.kind = serve::FrameKind::kStats;
  if (prom) request.payload = "prometheus";
  Status s = serve::WriteFrame(fd, request);
  serve::Frame reply;
  if (s.ok()) s = serve::ReadFrame(fd, &reply);
  ::close(fd);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  if (reply.kind != serve::FrameKind::kOk) {
    std::fprintf(stderr, "error: server answered kind %d: %s\n",
                 static_cast<int>(reply.kind), reply.payload.c_str());
    return 1;
  }

  if (prom || HasFlag(args, "--json")) {
    // Raw payload for scripting (Prometheus scrape shims, jq).
    std::printf("%s\n", reply.payload.c_str());
    return 0;
  }

  const std::string& json = reply.payload;
  bool found = true;
  const auto Int = [&json, &found](const char* key) {
    return FindJsonInt(json, key, &found);
  };
  const auto Row = [](const char* label, int64_t value) {
    return std::vector<std::string>{label, std::to_string(value)};
  };
  const int64_t window_ms = Int("window_ms");
  TablePrinter table({"stat", "value"});
  table.AddRow({"state", FindJsonString(json, "state")});
  table.AddRow({"uptime_s",
                std::to_string(Int("uptime_us") / 1'000'000)});
  table.AddRow(Row("queue_depth", Int("queue_depth")));
  table.AddRow(Row("workers", Int("workers")));
  table.AddRow(Row("max_batch", Int("max_batch")));
  table.AddSeparator();
  table.AddRow(Row("requests", Int("requests")));
  table.AddRow(Row("batches", Int("batches")));
  table.AddRow(Row("rejected_queue_full", Int("rejected_queue_full")));
  table.AddRow(Row("rejected_deadline", Int("rejected_deadline")));
  table.AddRow(Row("rejected_unavailable", Int("rejected_unavailable")));
  table.AddRow(Row("slow_traces", Int("slow_traces")));
  table.AddSeparator();
  const std::string window = "window(" + std::to_string(window_ms) + "ms)";
  table.AddRow(Row((window + " e2e_count").c_str(),
                   Int("window_e2e_count")));
  table.AddRow(Row((window + " e2e_p50_us").c_str(),
                   Int("window_e2e_p50_us")));
  table.AddRow(Row((window + " e2e_p99_us").c_str(),
                   Int("window_e2e_p99_us")));
  table.AddRow(Row((window + " queue_wait_p50_us").c_str(),
                   Int("window_queue_wait_p50_us")));
  table.AddRow(Row((window + " queue_wait_p99_us").c_str(),
                   Int("window_queue_wait_p99_us")));
  table.AddSeparator();
  table.AddRow(Row("cumulative e2e_count", Int("e2e_count")));
  table.AddRow(Row("cumulative e2e_p50_us", Int("e2e_p50_us")));
  table.AddRow(Row("cumulative e2e_p99_us", Int("e2e_p99_us")));
  if (!found) {
    // Version skew (older/newer daemon): show what we got instead of a
    // half-empty table.
    std::fprintf(stderr, "warning: unrecognized stats payload; raw JSON:\n");
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int Dispatch(const CommandSpec& cmd, const ParsedArgs& args) {
  const std::string name = cmd.name;
  if (name == "generate") return CmdGenerate(args);
  if (name == "corpus-stats") return CmdCorpusStats(args);
  if (name == "stats") return CmdServerStats(args);
  if (name == "annotate") return CmdAnnotate(args);
  if (name == "train") return CmdTrain(args);
  if (name == "parse") return CmdParse(args);
  if (name == "train-and-parse") return CmdTrainAndParse(args);
  if (name == "bench" || name == "bench-latency") return CmdBench(args);
  if (name == "serve") return CmdServe(args);
  return Usage();
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();

  // A leading flag means "no command": default to the end-to-end pipeline
  // demo, the most useful thing to capture a trace of.
  const bool has_command = argv[1][0] != '-';
  const std::string name = has_command ? argv[1] : "train-and-parse";
  const CommandSpec* cmd = nullptr;
  for (const CommandSpec& candidate : Commands()) {
    if (name == candidate.name) {
      cmd = &candidate;
      break;
    }
  }
  if (cmd == nullptr) {
    std::fprintf(stderr, "error: unknown command \"%s\"\n\n", name.c_str());
    return Usage();
  }

  ParsedArgs args;
  args.command = name;
  if (!ParseArgs(*cmd, argc, argv, has_command ? 2 : 1, &args)) return 2;

  // Globals: env first, then flags on top; strict-parsed serve knobs
  // surface their error instead of silently falling back.
  Status serve_env_error = Status::OK();
  g_runtime = RuntimeOptions::FromEnv(&serve_env_error);
  if (!serve_env_error.ok()) {
    std::fprintf(stderr, "error: %s\n", serve_env_error.ToString().c_str());
    return 2;
  }
  bool ok = true;
  g_trace_out = StringFlag(args, "--trace-out");
  g_metrics_out = StringFlag(args, "--metrics-out");
  if (g_trace_out != nullptr) g_runtime.enable_tracing = true;
  if (g_metrics_out != nullptr) g_runtime.enable_metrics = true;
  g_runtime.threads =
      static_cast<int>(IntFlag(args, "--threads", g_runtime.threads, &ok));
  if (!ok) return 2;
  if (HasFlag(args, "--use-plan")) g_runtime.use_inference_plan = true;
  if (HasFlag(args, "--use-int8")) g_runtime.use_int8 = true;
  if (HasFlag(args, "--save-rfp3")) g_runtime.save_rfp3 = true;
  core::ApplyRuntimeOptions(g_runtime);

  const int rc = Dispatch(*cmd, args);

  // CmdServe writes these itself right after its drain; for every other
  // command this is the first (and only) writer.
  const int write_rc = WriteObservabilityOutputs();
  return rc != 0 ? rc : write_rc;
}

}  // namespace
}  // namespace resuformer

int main(int argc, char** argv) { return resuformer::Run(argc, argv); }
