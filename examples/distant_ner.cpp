// Example: distantly supervised intra-block extraction (Section IV-B).
// Builds the entity dictionaries, auto-annotates training data with
// string/regex/heuristic matching, runs the self-distillation self-training
// loop, and compares the learned model against pure D&R matching.
//
//   ./examples/distant_ner

#include <cstdio>

#include "baselines/dr_match.h"
#include "distant/dictionary.h"
#include "distant/ner_dataset.h"
#include "eval/entity_metrics.h"
#include "resumegen/corpus.h"
#include "selftrain/self_distill.h"

int main() {
  using namespace resuformer;

  // Dictionaries: partial coverage by construction (Section IV-B1) — the
  // compositional entity families can never be fully enumerated.
  const distant::EntityDictionary dictionary =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  std::printf("dictionary: %d surface forms\n", dictionary.size());

  // Auto-annotated dataset (train = distant labels, val/test = gold).
  distant::NerDatasetConfig ncfg;
  ncfg.train_sequences = 400;
  ncfg.val_sequences = 60;
  ncfg.test_sequences = 80;
  const distant::NerDataset data = distant::BuildNerDataset(ncfg, dictionary);
  const distant::NoiseStats noise = distant::ComputeNoiseStats(data.train);
  std::printf("distant labels vs gold: precision %.2f, recall %.2f "
              "(precise but incomplete)\n\n",
              noise.label_precision, noise.label_recall);

  // A tokenizer for the NER model.
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 40;
  ccfg.train_docs = 2;
  ccfg.val_docs = 1;
  ccfg.test_docs = 1;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);

  // Baseline: pure dictionary + regex decoding.
  baselines::DrMatch matcher(&dictionary);
  const eval::EntityScorer dr_scores = eval::ScoreNerPredictor(
      [&](const std::vector<std::string>& w) { return matcher.Predict(w); },
      data.test);
  std::printf("D&R Match:   P %.2f  R %.2f  F1 %.2f  <- high precision, "
              "low recall\n",
              dr_scores.Overall().precision * 100,
              dr_scores.Overall().recall * 100,
              dr_scores.Overall().f1 * 100);

  // Our method: BERT+BiLSTM+MLP trained in the self-distillation loop
  // (Algorithm 2) with soft labels (Eq. 9) and high-confidence selection
  // (Eq. 11).
  selftrain::NerModelConfig cfg;
  cfg.vocab_size = tokenizer.vocab().size();
  cfg.encoder_lr = 5e-4f;
  cfg.head_lr = 1e-3f;
  selftrain::SelfTrainOptions options;
  options.teacher_epochs = 8;
  options.teacher_patience = 3;
  options.iterations = 4;
  options.student_epochs_per_iteration = 2;
  options.verbose = true;
  Rng rng(3);
  selftrain::SelfDistillTrainer trainer(cfg, options, &tokenizer, &rng);
  selftrain::SelfTrainResult result = trainer.Train(data.train, data.val);

  const eval::EntityScorer our_scores = eval::ScoreNerPredictor(
      [&](const std::vector<std::string>& w) {
        return result.model->Predict(
            selftrain::EncodeWordsForNer(w, tokenizer, cfg));
      },
      data.test);
  std::printf("Our Method:  P %.2f  R %.2f  F1 %.2f  <- generalizes past "
              "the dictionary\n",
              our_scores.Overall().precision * 100,
              our_scores.Overall().recall * 100,
              our_scores.Overall().f1 * 100);

  // Show a concrete win: entities the dictionary missed but the model got.
  std::printf("\nexamples the dictionary missed but the model recovered:\n");
  int shown = 0;
  for (const auto& seq : data.test) {
    if (shown >= 5) break;
    const std::vector<int> dict_pred = matcher.Predict(seq.words);
    const std::vector<int> model_pred = result.model->Predict(
        selftrain::EncodeWordsForNer(seq.words, tokenizer, cfg));
    const auto gold_spans = eval::ExtractEntitySpans(seq.labels);
    const auto dict_spans = eval::ExtractEntitySpans(dict_pred);
    auto model_spans = eval::ExtractEntitySpans(model_pred);
    for (const auto& g : gold_spans) {
      const bool dict_found =
          std::find(dict_spans.begin(), dict_spans.end(), g) !=
          dict_spans.end();
      const bool model_found =
          std::find(model_spans.begin(), model_spans.end(), g) !=
          model_spans.end();
      if (!dict_found && model_found && shown < 5) {
        std::string text;
        for (int t = g.start; t < g.end && t < static_cast<int>(seq.words.size());
             ++t) {
          if (!text.empty()) text += " ";
          text += seq.words[t];
        }
        std::printf("  [%s] \"%s\"\n",
                    doc::EntityTagName(g.tag).c_str(), text.c_str());
        ++shown;
      }
    }
  }
  return 0;
}
