// Example: the full two-stage pipeline — resume block classification
// followed by intra-block information extraction — trained end to end from
// a generated corpus and applied to an unseen resume, printing the
// recovered hierarchical structure (the product surface the paper deploys
// on Baidu Cloud).
//
//   ./examples/resume_pipeline

#include <cstdio>

#include "pipeline/pipeline.h"
#include "resumegen/renderer.h"

int main() {
  using namespace resuformer;

  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 60;
  ccfg.train_docs = 12;
  ccfg.val_docs = 6;
  ccfg.test_docs = 4;
  ccfg.seed = 19;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);

  pipeline::PipelineOptions options;
  options.pretrain_epochs = 2;
  options.finetune.epochs = 10;
  options.finetune.patience = 4;
  options.selftrain.teacher_epochs = 6;
  options.selftrain.iterations = 3;
  options.ner_data.train_sequences = 300;
  options.ner_data.val_sequences = 50;
  options.ner_data.test_sequences = 50;
  options.ner.encoder_lr = 5e-4f;
  options.ner.head_lr = 1e-3f;

  std::printf("training the full pipeline (pre-train -> fine-tune -> "
              "distant NER)...\n");
  pipeline::TrainReport report;
  auto p = pipeline::ResuFormerPipeline::TrainFromCorpus(corpus, options,
                                                         &report);
  std::printf("done: block val accuracy %.3f, NER val F1 %.3f\n\n",
              report.block_val_accuracy, report.ner_val_f1);

  const auto& test = corpus.test[0];
  std::printf("input resume (%s, %d pages):\n%s\n",
              test.record.FullName().c_str(), test.document.num_pages,
              resumegen::AsciiRender(test.document,
                                     test.document.sentence_labels).c_str());

  const pipeline::StructuredResume parsed = p->Parse(test.document);
  std::printf("extracted structure:\n%s\n",
              pipeline::ResuFormerPipeline::ToPrettyString(parsed).c_str());
  return 0;
}
