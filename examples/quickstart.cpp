// Quickstart: generate a synthetic resume, inspect its parsed structure,
// and run the sentence assembler — the 60-second tour of the document
// substrate. (Training the models is shown in the other examples.)
//
//   ./examples/quickstart

#include <cstdio>

#include "doc/sentence_assembler.h"
#include "resumegen/renderer.h"

int main() {
  using namespace resuformer;

  // 1. Sample a structured resume record and render it through a template.
  //    This stands in for "a PDF parsed with PyMuPDF" (DESIGN.md): the
  //    output is a stream of (word, bounding box, page) tokens.
  Rng rng(42);
  const resumegen::GeneratedResume resume = resumegen::GenerateResume(&rng);

  std::printf("Generated resume for %s (template %d): %d pages, %d "
              "sentences, %d tokens\n\n",
              resume.record.FullName().c_str(), resume.template_id,
              resume.document.num_pages, resume.document.NumSentences(),
              resume.document.NumTokens());

  // 2. The gold annotation: every visual line carries an IOB block label.
  std::printf("%s\n", resumegen::AsciiRender(
                          resume.document,
                          resume.document.sentence_labels).c_str());

  // 3. Re-assemble sentences from the raw token stream, exactly as the
  //    paper's Section III-A groups "closely spaced tokens in a row".
  std::vector<doc::Token> flat;
  for (const auto& s : resume.document.sentences) {
    flat.insert(flat.end(), s.tokens.begin(), s.tokens.end());
  }
  doc::SentenceAssembler assembler;
  const std::vector<doc::Sentence> sentences = assembler.Assemble(flat);
  std::printf("SentenceAssembler recovered %zu sentences from %zu raw "
              "tokens (renderer produced %d).\n",
              sentences.size(), flat.size(),
              resume.document.NumSentences());

  // 4. Gold entities inside one block.
  std::printf("\nGold entities in the first sentences:\n");
  int shown = 0;
  for (int s = 0; s < resume.document.NumSentences() && shown < 8; ++s) {
    for (size_t t = 0; t < resume.entity_labels[s].size(); ++t) {
      doc::EntityTag tag;
      bool begin;
      if (doc::ParseEntityIobLabel(resume.entity_labels[s][t], &tag,
                                   &begin) &&
          begin) {
        std::printf("  %-9s starts at \"%s\" (sentence %d)\n",
                    doc::EntityTagName(tag).c_str(),
                    resume.document.sentences[s].tokens[t].word.c_str(), s);
        ++shown;
      }
    }
  }
  return 0;
}
