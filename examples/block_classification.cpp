// Example: pre-train the hierarchical multi-modal encoder with the paper's
// three objectives (MLLM + SCL + DNSP, Eq. 1-7), fine-tune the BiLSTM+CRF
// head on a small labeled set, and classify an unseen resume.
//
//   ./examples/block_classification

#include <cstdio>

#include "core/block_classifier.h"
#include "core/pretrainer.h"
#include "resumegen/corpus.h"

int main() {
  using namespace resuformer;

  // A small corpus: unlabeled documents for pre-training, a handful of
  // labeled ones for fine-tuning (the paper's scarce-annotation regime).
  resumegen::CorpusConfig ccfg;
  ccfg.pretrain_docs = 60;
  ccfg.train_docs = 10;
  ccfg.val_docs = 6;
  ccfg.test_docs = 4;
  ccfg.seed = 7;
  const resumegen::Corpus corpus = resumegen::GenerateCorpus(ccfg);
  const text::WordPieceTokenizer tokenizer =
      resumegen::TrainTokenizer(corpus, 1500);
  std::printf("corpus ready: %zu unlabeled, %zu labeled; vocab %d\n",
              corpus.pretrain.size(), corpus.train.size(),
              tokenizer.vocab().size());

  core::ResuFormerConfig cfg;
  cfg.vocab_size = tokenizer.vocab().size();
  Rng rng(1);
  core::BlockClassifier model(cfg, &rng);

  // Stage 1: self-supervised pre-training (watch all three losses fall).
  std::vector<core::EncodedDocument> pretrain_docs;
  for (const auto& r : corpus.pretrain) {
    pretrain_docs.push_back(
        core::EncodeForModel(r.document, tokenizer, cfg));
  }
  core::Pretrainer pretrainer(model.encoder(), &rng);
  std::vector<Tensor> params = model.encoder()->Parameters();
  for (const Tensor& p : pretrainer.OwnParameters()) params.push_back(p);
  nn::Adam adam(params, cfg.pretrain_lr);
  for (int epoch = 0; epoch < 2; ++epoch) {
    core::PretrainStats stats;
    int steps = 0;
    for (size_t i = 0; i + 4 <= pretrain_docs.size(); i += 4) {
      std::vector<const core::EncodedDocument*> batch;
      for (size_t j = i; j < i + 4; ++j) batch.push_back(&pretrain_docs[j]);
      const core::PretrainStats s = pretrainer.Step(batch, &adam);
      stats.mllm_loss += s.mllm_loss;
      stats.scl_loss += s.scl_loss;
      stats.dnsp_loss += s.dnsp_loss;
      ++steps;
    }
    std::printf("pretrain epoch %d: L_wp=%.3f  L_cl=%.3f  L_ns=%.3f\n",
                epoch, stats.mllm_loss / steps, stats.scl_loss / steps,
                stats.dnsp_loss / steps);
  }

  // Stage 2: fine-tune with the two learning-rate groups (encoder slow,
  // BiLSTM+CRF head fast), early-stopped on validation accuracy.
  std::vector<core::LabeledDocument> train, val;
  for (const auto& r : corpus.train) {
    train.push_back(core::MakeLabeledDocument(r.document, tokenizer, cfg));
  }
  for (const auto& r : corpus.val) {
    val.push_back(core::MakeLabeledDocument(r.document, tokenizer, cfg));
  }
  core::FinetuneOptions options;
  options.epochs = 10;
  options.patience = 4;
  options.verbose = true;
  const double val_acc =
      core::FinetuneBlockClassifier(&model, train, val, options, &rng);
  std::printf("fine-tuned; best validation sentence accuracy %.3f\n\n",
              val_acc);

  // Stage 3: classify an unseen resume.
  const auto& test = corpus.test[0];
  const std::vector<int> predicted =
      model.Predict(core::EncodeForModel(test.document, tokenizer, cfg));
  std::printf("predicted blocks for an unseen resume (%s):\n",
              test.record.FullName().c_str());
  for (const doc::Block& b :
       doc::Document::BlocksFromLabels(predicted)) {
    std::printf("  sentences %2d-%2d  %s\n", b.first_sentence,
                b.last_sentence, doc::BlockTagName(b.tag).c_str());
  }
  return 0;
}
