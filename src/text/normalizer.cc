#include "text/normalizer.h"

#include <cctype>

namespace resuformer {
namespace text {

namespace {
bool IsPunct(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::vector<std::string> BasicTokenize(const std::string& word) {
  std::vector<std::string> out;
  std::string current;
  for (char raw : word) {
    const char c =
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else if (IsPunct(c)) {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
      out.push_back(std::string(1, c));
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

std::string NormalizeForMatch(const std::string& word) {
  std::string out;
  for (char raw : word) {
    if (IsPunct(raw) || std::isspace(static_cast<unsigned char>(raw))) {
      continue;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw))));
  }
  return out;
}

}  // namespace text
}  // namespace resuformer
