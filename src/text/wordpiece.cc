#include "text/wordpiece.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "text/normalizer.h"

namespace resuformer {
namespace text {

WordPieceTokenizer::WordPieceTokenizer(Vocab vocab, int max_chars_per_word)
    : vocab_(std::move(vocab)), max_chars_per_word_(max_chars_per_word) {}

WordPieceTokenizer WordPieceTokenizer::Train(
    const std::vector<std::string>& words, int max_vocab, int min_frequency) {
  // Count normalized word and suffix frequencies.
  std::unordered_map<std::string, int64_t> word_freq;
  for (const std::string& raw : words) {
    for (const std::string& w : BasicTokenize(raw)) ++word_freq[w];
  }

  Vocab vocab;
  // Single characters (and punctuation) always enter the vocabulary so every
  // word is representable.
  std::map<std::string, int64_t> char_freq;
  for (const auto& [word, freq] : word_freq) {
    for (char c : word) {
      ++char_freq[std::string(1, c)];
      ++char_freq["##" + std::string(1, c)];
    }
  }
  for (const auto& [piece, freq] : char_freq) vocab.AddToken(piece);

  // Whole words by descending frequency.
  std::vector<std::pair<std::string, int64_t>> sorted(word_freq.begin(),
                                                      word_freq.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie break
  });
  for (const auto& [word, freq] : sorted) {
    if (vocab.size() >= max_vocab) break;
    if (freq < min_frequency) break;
    vocab.AddToken(word);
  }
  // Frequent suffix pieces (length 2..4) for unseen-word back-off.
  std::unordered_map<std::string, int64_t> suffix_freq;
  for (const auto& [word, freq] : word_freq) {
    for (size_t len = 2; len <= 4 && len < word.size(); ++len) {
      suffix_freq["##" + word.substr(word.size() - len)] += freq;
    }
  }
  std::vector<std::pair<std::string, int64_t>> suffixes(suffix_freq.begin(),
                                                        suffix_freq.end());
  std::sort(suffixes.begin(), suffixes.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (const auto& [piece, freq] : suffixes) {
    if (vocab.size() >= max_vocab) break;
    if (freq < min_frequency * 4) break;
    vocab.AddToken(piece);
  }
  return WordPieceTokenizer(std::move(vocab));
}

std::vector<int> WordPieceTokenizer::EncodeWord(const std::string& word) const {
  if (static_cast<int>(word.size()) > max_chars_per_word_) return {kUnkId};
  std::vector<int> pieces;
  size_t start = 0;
  while (start < word.size()) {
    size_t end = word.size();
    int found = -1;
    while (end > start) {
      std::string piece = word.substr(start, end - start);
      if (start > 0) piece = "##" + piece;
      if (vocab_.Contains(piece)) {
        found = vocab_.Id(piece);
        break;
      }
      --end;
    }
    if (found < 0) return {kUnkId};
    pieces.push_back(found);
    start = end;
  }
  return pieces;
}

std::vector<int> WordPieceTokenizer::Encode(const std::string& text) const {
  std::vector<int> out;
  for (const std::string& w : BasicTokenize(text)) {
    const std::vector<int> pieces = EncodeWord(w);
    out.insert(out.end(), pieces.begin(), pieces.end());
  }
  return out;
}

std::string WordPieceTokenizer::Decode(const std::vector<int>& ids) const {
  std::string out;
  for (int id : ids) {
    const std::string& piece = vocab_.Token(id);
    if (StartsWith(piece, "##")) {
      out += piece.substr(2);
    } else {
      if (!out.empty()) out += " ";
      out += piece;
    }
  }
  return out;
}

}  // namespace text
}  // namespace resuformer
