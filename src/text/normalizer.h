#ifndef RESUFORMER_TEXT_NORMALIZER_H_
#define RESUFORMER_TEXT_NORMALIZER_H_

#include <string>
#include <vector>

namespace resuformer {
namespace text {

/// \brief Pre-tokenization normalization: lowercases ASCII and splits
/// punctuation into standalone tokens (BERT's BasicTokenizer behaviour).
///
/// "B.Sc, 2019" -> {"b", ".", "sc", ",", "2019"}
std::vector<std::string> BasicTokenize(const std::string& word);

/// Lowercased, punctuation-stripped form used as a dictionary key.
std::string NormalizeForMatch(const std::string& word);

}  // namespace text
}  // namespace resuformer

#endif  // RESUFORMER_TEXT_NORMALIZER_H_
