#ifndef RESUFORMER_TEXT_WORDPIECE_H_
#define RESUFORMER_TEXT_WORDPIECE_H_

#include <string>
#include <vector>

#include "text/vocab.h"

namespace resuformer {
namespace text {

/// \brief WordPiece tokenizer (greedy longest-match-first with "##"
/// continuation pieces), plus a frequency-based vocabulary trainer.
///
/// The trainer is a simplified WordPiece learner: it keeps whole words above
/// a frequency threshold and backs off to character pieces plus frequent
/// suffix pieces, which is sufficient for the synthetic corpus while
/// exercising the same subword code path the paper's RoBERTa stack does.
class WordPieceTokenizer {
 public:
  explicit WordPieceTokenizer(Vocab vocab,
                              int max_chars_per_word = 32);

  /// Trains a vocabulary on whitespace-separated words.
  /// `max_vocab` bounds the total size (including specials);
  /// `min_frequency` gates whole-word entries.
  static WordPieceTokenizer Train(const std::vector<std::string>& words,
                                  int max_vocab, int min_frequency = 2);

  /// Splits a single word into piece ids; falls back to [UNK] when the word
  /// cannot be covered.
  std::vector<int> EncodeWord(const std::string& word) const;

  /// Normalizes and encodes a text fragment (multiple words / punctuation).
  std::vector<int> Encode(const std::string& text) const;

  /// Joins piece ids back into a readable string (## pieces merged).
  std::string Decode(const std::vector<int>& ids) const;

  const Vocab& vocab() const { return vocab_; }

 private:
  Vocab vocab_;
  int max_chars_per_word_;
};

}  // namespace text
}  // namespace resuformer

#endif  // RESUFORMER_TEXT_WORDPIECE_H_
