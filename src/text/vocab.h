#ifndef RESUFORMER_TEXT_VOCAB_H_
#define RESUFORMER_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace resuformer {
namespace text {

/// Reserved token ids (fixed positions, BERT convention).
inline constexpr int kPadId = 0;
inline constexpr int kUnkId = 1;
inline constexpr int kClsId = 2;
inline constexpr int kSepId = 3;
inline constexpr int kMaskId = 4;

inline constexpr const char* kPadToken = "[PAD]";
inline constexpr const char* kUnkToken = "[UNK]";
inline constexpr const char* kClsToken = "[CLS]";
inline constexpr const char* kSepToken = "[SEP]";
inline constexpr const char* kMaskToken = "[MASK]";

/// \brief Bidirectional token <-> id map with the five special tokens
/// pre-registered at fixed ids.
class Vocab {
 public:
  Vocab();

  /// Adds a token if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// Id of `token`, or kUnkId when unknown.
  int Id(const std::string& token) const;

  /// Whether `token` is present.
  bool Contains(const std::string& token) const;

  /// Token string for an id (checked).
  const std::string& Token(int id) const;

  int size() const { return static_cast<int>(tokens_.size()); }

  [[nodiscard]] Status Save(const std::string& path) const;
  [[nodiscard]] static Result<Vocab> Load(const std::string& path);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace text
}  // namespace resuformer

#endif  // RESUFORMER_TEXT_VOCAB_H_
