#include "text/vocab.h"

#include <fstream>

#include "common/logging.h"

namespace resuformer {
namespace text {

Vocab::Vocab() {
  AddToken(kPadToken);
  AddToken(kUnkToken);
  AddToken(kClsToken);
  AddToken(kSepToken);
  AddToken(kMaskToken);
}

int Vocab::AddToken(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  ids_.emplace(token, id);
  return id;
}

int Vocab::Id(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kUnkId : it->second;
}

bool Vocab::Contains(const std::string& token) const {
  return ids_.count(token) > 0;
}

const std::string& Vocab::Token(int id) const {
  RF_CHECK_GE(id, 0);
  RF_CHECK_LT(id, size());
  return tokens_[id];
}

Status Vocab::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const std::string& t : tokens_) out << t << "\n";
  return out ? Status::OK() : Status::IoError("write failed: " + path);
}

Result<Vocab> Vocab::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  Vocab vocab;
  std::string line;
  int index = 0;
  while (std::getline(in, line)) {
    if (index < vocab.size()) {
      // First five lines must be the special tokens.
      if (line != vocab.tokens_[index]) {
        return Status::InvalidArgument("vocab file missing special tokens");
      }
    } else {
      vocab.AddToken(line);
    }
    ++index;
  }
  return vocab;
}

}  // namespace text
}  // namespace resuformer
