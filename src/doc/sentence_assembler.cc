#include "doc/sentence_assembler.h"

#include <algorithm>

namespace resuformer {
namespace doc {

std::vector<Sentence> SentenceAssembler::Assemble(
    const std::vector<Token>& tokens) const {
  std::vector<Sentence> sentences;
  if (tokens.empty()) return sentences;

  int max_page = 0;
  for (const Token& t : tokens) max_page = std::max(max_page, t.page);

  for (int page = 0; page <= max_page; ++page) {
    std::vector<Token> page_tokens;
    for (const Token& t : tokens) {
      if (t.page == page) page_tokens.push_back(t);
    }
    if (page_tokens.empty()) continue;
    std::sort(page_tokens.begin(), page_tokens.end(),
              [](const Token& a, const Token& b) {
                if (a.box.y0 != b.box.y0) return a.box.y0 < b.box.y0;
                return a.box.x0 < b.box.x0;
              });

    // Cluster into rows greedily: a token joins the current row when it
    // vertically overlaps the row's running box.
    std::vector<std::vector<Token>> rows;
    for (const Token& t : page_tokens) {
      if (!rows.empty()) {
        BBox row_box = rows.back().front().box;
        for (const Token& rt : rows.back()) row_box = Union(row_box, rt.box);
        if (SameRow(row_box, t.box, options_.same_row_ratio)) {
          rows.back().push_back(t);
          continue;
        }
      }
      rows.push_back({t});
    }

    // Split each row at large horizontal gaps (column boundaries) and emit
    // sentences in left-to-right order.
    for (auto& row : rows) {
      std::sort(row.begin(), row.end(), [](const Token& a, const Token& b) {
        return a.box.x0 < b.box.x0;
      });
      float mean_height = 0.0f;
      for (const Token& t : row) mean_height += t.box.height();
      mean_height /= static_cast<float>(row.size());
      const float max_gap =
          options_.max_gap_ratio * std::max(mean_height, 1.0f);

      Sentence current;
      current.page = page;
      for (const Token& t : row) {
        if (!current.tokens.empty() && t.box.x0 - current.box.x1 > max_gap) {
          sentences.push_back(current);
          current = Sentence();
          current.page = page;
        }
        if (current.tokens.empty()) {
          current.box = t.box;
        } else {
          current.box = Union(current.box, t.box);
        }
        current.tokens.push_back(t);
      }
      if (!current.tokens.empty()) sentences.push_back(current);
    }
  }
  return sentences;
}

}  // namespace doc
}  // namespace resuformer
