#ifndef RESUFORMER_DOC_GEOMETRY_H_
#define RESUFORMER_DOC_GEOMETRY_H_

namespace resuformer {
namespace doc {

/// Axis-aligned bounding box in page coordinates (origin top-left, y grows
/// downward, as produced by PDF parsers).
struct BBox {
  float x0 = 0.0f;
  float y0 = 0.0f;
  float x1 = 0.0f;
  float y1 = 0.0f;

  float width() const { return x1 - x0; }
  float height() const { return y1 - y0; }
  float area() const { return width() > 0 && height() > 0 ? width() * height() : 0.0f; }
  float center_x() const { return 0.5f * (x0 + x1); }
  float center_y() const { return 0.5f * (y0 + y1); }
};

/// Smallest box containing both inputs.
BBox Union(const BBox& a, const BBox& b);

/// Overlap of the two vertical extents in absolute units (<= 0 if disjoint).
float VerticalOverlap(const BBox& a, const BBox& b);

/// Whether two boxes lie on the same text row: their vertical overlap is at
/// least `min_ratio` of the smaller height.
bool SameRow(const BBox& a, const BBox& b, float min_ratio = 0.5f);

/// Quantizes a coordinate in [0, extent] to an integer in [0, 1000]
/// (LayoutLMv2 convention).
int NormalizeCoord(float value, float extent);

}  // namespace doc
}  // namespace resuformer

#endif  // RESUFORMER_DOC_GEOMETRY_H_
