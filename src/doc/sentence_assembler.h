#ifndef RESUFORMER_DOC_SENTENCE_ASSEMBLER_H_
#define RESUFORMER_DOC_SENTENCE_ASSEMBLER_H_

#include <vector>

#include "doc/document.h"

namespace resuformer {
namespace doc {

/// Parameters for grouping tokens into sentences (Section III-A: "the two
/// tokens are closely spaced and in a row in the document").
struct AssemblerOptions {
  /// Horizontal gap (as a multiple of the mean token height) beyond which
  /// two same-row tokens start separate sentences — this is what splits
  /// two-column layouts.
  float max_gap_ratio = 2.0f;
  /// Minimum vertical-overlap ratio for two tokens to share a row.
  float same_row_ratio = 0.5f;
};

/// \brief Groups a flat token stream into reading-order sentences.
///
/// Tokens are bucketed per page, sorted top-to-bottom then left-to-right,
/// clustered into rows by vertical overlap, and rows are split at large
/// horizontal gaps. The merged bounding box of each group becomes the
/// sentence box.
class SentenceAssembler {
 public:
  explicit SentenceAssembler(AssemblerOptions options = {})
      : options_(options) {}

  std::vector<Sentence> Assemble(const std::vector<Token>& tokens) const;

 private:
  AssemblerOptions options_;
};

}  // namespace doc
}  // namespace resuformer

#endif  // RESUFORMER_DOC_SENTENCE_ASSEMBLER_H_
