#ifndef RESUFORMER_DOC_VISUAL_FEATURES_H_
#define RESUFORMER_DOC_VISUAL_FEATURES_H_

#include <vector>

#include "doc/document.h"

namespace resuformer {
namespace doc {

/// Width of the engineered per-sentence visual feature vector. This stands
/// in for the paper's Faster R-CNN region features (see DESIGN.md): the
/// signal the paper attributes to vision — "a section title usually has a
/// different font color or a larger font size" — is carried by font size,
/// boldness, geometry and character-class statistics.
inline constexpr int kVisualFeatureDim = 12;

/// Features (all roughly in [0, 1]):
///   0 font size / 24
///   1 any bold token
///   2 x-center / page width
///   3 y-center / page height
///   4 width / page width
///   5 height / page height
///   6 page index / max(1, num_pages - 1)
///   7 digit character fraction
///   8 punctuation character fraction
///   9 uppercase character fraction
///  10 token count / 16 (capped)
///  11 indentation: x0 / page width
std::vector<float> ComputeVisualFeatures(const Sentence& sentence,
                                         float page_width, float page_height,
                                         int num_pages);

}  // namespace doc
}  // namespace resuformer

#endif  // RESUFORMER_DOC_VISUAL_FEATURES_H_
