#include "doc/geometry.h"

#include <algorithm>
#include <cmath>

namespace resuformer {
namespace doc {

BBox Union(const BBox& a, const BBox& b) {
  return BBox{std::min(a.x0, b.x0), std::min(a.y0, b.y0),
              std::max(a.x1, b.x1), std::max(a.y1, b.y1)};
}

float VerticalOverlap(const BBox& a, const BBox& b) {
  return std::min(a.y1, b.y1) - std::max(a.y0, b.y0);
}

bool SameRow(const BBox& a, const BBox& b, float min_ratio) {
  const float overlap = VerticalOverlap(a, b);
  if (overlap <= 0.0f) return false;
  const float smaller = std::min(a.height(), b.height());
  if (smaller <= 0.0f) return false;
  return overlap >= min_ratio * smaller;
}

int NormalizeCoord(float value, float extent) {
  if (extent <= 0.0f) return 0;
  const float clamped = std::clamp(value, 0.0f, extent);
  return static_cast<int>(std::lround(clamped / extent * 1000.0f));
}

}  // namespace doc
}  // namespace resuformer
