#ifndef RESUFORMER_DOC_DOCUMENT_H_
#define RESUFORMER_DOC_DOCUMENT_H_

#include <string>
#include <vector>

#include "doc/block_tags.h"
#include "doc/geometry.h"

namespace resuformer {
namespace doc {

/// One parsed word with its spatial layout — the `(w, (x0,y0,x1,y1), p)`
/// tuple of Section III-A, plus the style attributes a PDF parser exposes
/// (our renderer substitutes for PyMuPDF; see DESIGN.md).
struct Token {
  std::string word;
  BBox box;
  int page = 0;
  float font_size = 10.0f;
  bool bold = false;
};

/// A "sentence" in the paper's sense: a visual line of adjacent tokens with
/// the merged bounding box (not a grammatical sentence).
struct Sentence {
  std::vector<Token> tokens;
  BBox box;
  int page = 0;

  /// Words joined with single spaces.
  std::string Text() const;
  /// Maximum token font size (drives the visual features).
  float MaxFontSize() const;
  bool AnyBold() const;
};

/// A contiguous run of sentences forming one semantic block.
struct Block {
  BlockTag tag = BlockTag::kPInfo;
  int first_sentence = 0;  // inclusive
  int last_sentence = 0;   // inclusive
};

/// A resume document after parsing/assembly. `sentence_labels` and `blocks`
/// carry the gold annotation when the document came from the generator or
/// from the (simulated) expert annotation; they are empty for unlabeled
/// pre-training documents only in the sense that training code ignores them.
struct Document {
  std::vector<Sentence> sentences;
  int num_pages = 1;
  float page_width = 612.0f;   // US letter, points
  float page_height = 792.0f;

  /// Gold IOB label per sentence (same size as `sentences`).
  std::vector<int> sentence_labels;
  /// Gold block segmentation (consistent with sentence_labels).
  std::vector<Block> blocks;

  int NumSentences() const { return static_cast<int>(sentences.size()); }
  int NumTokens() const;

  /// Derives `blocks` from `sentence_labels` (B- starts a block, I- extends
  /// it, O closes it). Used both for gold docs and for predictions.
  static std::vector<Block> BlocksFromLabels(const std::vector<int>& labels);
};

}  // namespace doc
}  // namespace resuformer

#endif  // RESUFORMER_DOC_DOCUMENT_H_
