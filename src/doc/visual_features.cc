#include "doc/visual_features.h"

#include <algorithm>
#include <cctype>

namespace resuformer {
namespace doc {

std::vector<float> ComputeVisualFeatures(const Sentence& sentence,
                                         float page_width, float page_height,
                                         int num_pages) {
  std::vector<float> f(kVisualFeatureDim, 0.0f);
  f[0] = std::min(sentence.MaxFontSize() / 24.0f, 1.5f);
  f[1] = sentence.AnyBold() ? 1.0f : 0.0f;
  f[2] = sentence.box.center_x() / std::max(page_width, 1.0f);
  f[3] = sentence.box.center_y() / std::max(page_height, 1.0f);
  f[4] = sentence.box.width() / std::max(page_width, 1.0f);
  f[5] = sentence.box.height() / std::max(page_height, 1.0f);
  f[6] = num_pages > 1 ? static_cast<float>(sentence.page) / (num_pages - 1)
                       : 0.0f;

  int digits = 0, punct = 0, upper = 0, chars = 0;
  for (const Token& t : sentence.tokens) {
    for (char c : t.word) {
      const unsigned char uc = static_cast<unsigned char>(c);
      ++chars;
      if (std::isdigit(uc)) ++digits;
      if (std::ispunct(uc)) ++punct;
      if (std::isupper(uc)) ++upper;
    }
  }
  if (chars > 0) {
    f[7] = static_cast<float>(digits) / chars;
    f[8] = static_cast<float>(punct) / chars;
    f[9] = static_cast<float>(upper) / chars;
  }
  f[10] = std::min(static_cast<float>(sentence.tokens.size()) / 16.0f, 1.0f);
  f[11] = sentence.box.x0 / std::max(page_width, 1.0f);
  return f;
}

}  // namespace doc
}  // namespace resuformer
