#include "doc/block_tags.h"

#include <array>

#include "common/logging.h"

namespace resuformer {
namespace doc {

namespace {
const std::array<std::string, kNumBlockTags>& TagNames() {
  static const std::array<std::string, kNumBlockTags> kNames = {
      "PInfo",   "EduExp", "WorkExp",  "ProjExp",
      "Summary", "Awards", "SkillDes", "Title"};
  return kNames;
}
}  // namespace

int IobLabel(BlockTag tag, bool begin) {
  return 1 + 2 * static_cast<int>(tag) + (begin ? 0 : 1);
}

bool ParseIobLabel(int label, BlockTag* tag, bool* begin) {
  RF_CHECK_GE(label, 0);
  RF_CHECK_LT(label, kNumIobLabels);
  if (label == kOutsideLabel) return false;
  const int rem = label - 1;
  *tag = static_cast<BlockTag>(rem / 2);
  *begin = (rem % 2) == 0;
  return true;
}

const std::string& BlockTagName(BlockTag tag) {
  return TagNames()[static_cast<int>(tag)];
}

std::string IobLabelName(int label) {
  BlockTag tag;
  bool begin;
  if (!ParseIobLabel(label, &tag, &begin)) return "O";
  return (begin ? "B-" : "I-") + BlockTagName(tag);
}

namespace {
const std::array<std::string, kNumEntityTags>& EntityNames() {
  static const std::array<std::string, kNumEntityTags> kNames = {
      "Name",    "Gender", "PhoneNum", "Email",   "Age",      "College",
      "Major",   "Degree", "Date",     "Company", "Position", "ProjName"};
  return kNames;
}
}  // namespace

int EntityIobLabel(EntityTag tag, bool begin) {
  return 1 + 2 * static_cast<int>(tag) + (begin ? 0 : 1);
}

bool ParseEntityIobLabel(int label, EntityTag* tag, bool* begin) {
  RF_CHECK_GE(label, 0);
  RF_CHECK_LT(label, kNumEntityIobLabels);
  if (label == 0) return false;
  const int rem = label - 1;
  *tag = static_cast<EntityTag>(rem / 2);
  *begin = (rem % 2) == 0;
  return true;
}

const std::string& EntityTagName(EntityTag tag) {
  return EntityNames()[static_cast<int>(tag)];
}

std::string EntityIobLabelName(int label) {
  EntityTag tag;
  bool begin;
  if (!ParseEntityIobLabel(label, &tag, &begin)) return "O";
  return (begin ? "B-" : "I-") + EntityTagName(tag);
}

}  // namespace doc
}  // namespace resuformer
