#ifndef RESUFORMER_DOC_BLOCK_TAGS_H_
#define RESUFORMER_DOC_BLOCK_TAGS_H_

#include <string>

namespace resuformer {
namespace doc {

/// The eight semantic block classes of Section III-A.
enum class BlockTag {
  kPInfo = 0,
  kEduExp,
  kWorkExp,
  kProjExp,
  kSummary,
  kAwards,
  kSkillDes,
  kTitle,
};

inline constexpr int kNumBlockTags = 8;

/// IOB label space over the block classes: label 0 is "O"; for class c,
/// 1 + 2c is "B-c" and 2 + 2c is "I-c".
inline constexpr int kOutsideLabel = 0;
inline constexpr int kNumIobLabels = 1 + 2 * kNumBlockTags;

/// IOB label id for (tag, begin?).
int IobLabel(BlockTag tag, bool begin);

/// Decomposes an IOB label; returns false for "O".
bool ParseIobLabel(int label, BlockTag* tag, bool* begin);

/// Names: "PInfo", "EduExp", ... and "B-WorkExp"-style IOB names.
const std::string& BlockTagName(BlockTag tag);
std::string IobLabelName(int label);

/// Fine-grained entity classes for intra-block extraction (Table IV).
/// `kDate` is shared by EduExp, WorkExp and ProjExp blocks.
enum class EntityTag {
  kName = 0,
  kGender,
  kPhoneNum,
  kEmail,
  kAge,
  kCollege,
  kMajor,
  kDegree,
  kDate,
  kCompany,
  kPosition,
  kProjName,
};

inline constexpr int kNumEntityTags = 12;
inline constexpr int kNumEntityIobLabels = 1 + 2 * kNumEntityTags;

/// IOB label id over the entity space (0 is "O").
int EntityIobLabel(EntityTag tag, bool begin);
bool ParseEntityIobLabel(int label, EntityTag* tag, bool* begin);
const std::string& EntityTagName(EntityTag tag);
std::string EntityIobLabelName(int label);

}  // namespace doc
}  // namespace resuformer

#endif  // RESUFORMER_DOC_BLOCK_TAGS_H_
