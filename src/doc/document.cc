#include "doc/document.h"

#include "common/logging.h"

namespace resuformer {
namespace doc {

std::string Sentence::Text() const {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += " ";
    out += tokens[i].word;
  }
  return out;
}

float Sentence::MaxFontSize() const {
  float mx = 0.0f;
  for (const Token& t : tokens) mx = std::max(mx, t.font_size);
  return mx;
}

bool Sentence::AnyBold() const {
  for (const Token& t : tokens) {
    if (t.bold) return true;
  }
  return false;
}

int Document::NumTokens() const {
  int n = 0;
  for (const Sentence& s : sentences) n += static_cast<int>(s.tokens.size());
  return n;
}

std::vector<Block> Document::BlocksFromLabels(const std::vector<int>& labels) {
  std::vector<Block> blocks;
  BlockTag current_tag = BlockTag::kPInfo;
  bool in_block = false;
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    BlockTag tag;
    bool begin;
    if (!ParseIobLabel(labels[i], &tag, &begin)) {
      in_block = false;
      continue;
    }
    if (begin || !in_block || tag != current_tag) {
      blocks.push_back(Block{tag, i, i});
      current_tag = tag;
      in_block = true;
    } else {
      blocks.back().last_sentence = i;
    }
  }
  return blocks;
}

}  // namespace doc
}  // namespace resuformer
