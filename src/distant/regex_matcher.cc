#include "distant/regex_matcher.h"

#include <cctype>

#include "common/string_util.h"

namespace resuformer {
namespace distant {

using doc::EntityTag;

bool LooksLikeEmail(const std::string& word) {
  const size_t at = word.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= word.size()) {
    return false;
  }
  const size_t dot = word.find('.', at);
  return dot != std::string::npos && dot + 1 < word.size();
}

bool LooksLikePhone(const std::string& word) {
  // Accepts digit groups separated by '-' with at least 7 digits total,
  // e.g. "134-2561-9078".
  int digits = 0;
  int groups = 1;
  for (char c : word) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
    } else if (c == '-') {
      ++groups;
    } else {
      return false;
    }
  }
  return digits >= 7 && groups >= 2;
}

bool LooksLikeYearMonth(const std::string& word) {
  // "dddd.dd" or "dddd/dd"
  if (word.size() != 7) return false;
  for (int i = 0; i < 4; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(word[i]))) return false;
  }
  if (word[4] != '.' && word[4] != '/') return false;
  for (int i = 5; i < 7; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(word[i]))) return false;
  }
  const int year = (word[0] - '0') * 1000 + (word[1] - '0') * 100 +
                   (word[2] - '0') * 10 + (word[3] - '0');
  const int month = (word[5] - '0') * 10 + (word[6] - '0');
  return year >= 1950 && year <= 2035 && month >= 1 && month <= 12;
}

std::vector<Match> FindRegexMatches(const std::vector<std::string>& words) {
  std::vector<Match> matches;
  size_t i = 0;
  while (i < words.size()) {
    if (LooksLikeEmail(words[i])) {
      matches.push_back(Match{static_cast<int>(i), 1, EntityTag::kEmail});
      ++i;
      continue;
    }
    if (LooksLikePhone(words[i])) {
      matches.push_back(Match{static_cast<int>(i), 1, EntityTag::kPhoneNum});
      ++i;
      continue;
    }
    if (LooksLikeYearMonth(words[i])) {
      // Date range: "<ym> - <ym|Present>".
      if (i + 2 < words.size() && words[i + 1] == "-" &&
          (LooksLikeYearMonth(words[i + 2]) || words[i + 2] == "Present")) {
        matches.push_back(Match{static_cast<int>(i), 3, EntityTag::kDate});
        i += 3;
      } else {
        matches.push_back(Match{static_cast<int>(i), 1, EntityTag::kDate});
        ++i;
      }
      continue;
    }
    ++i;
  }
  return matches;
}

}  // namespace distant
}  // namespace resuformer
