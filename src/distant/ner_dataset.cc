#include "distant/ner_dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace resuformer {
namespace distant {

using doc::BlockTag;

NerSplitStats ComputeNerStats(const std::vector<AnnotatedSequence>& split) {
  NerSplitStats stats;
  stats.num_samples = static_cast<int>(split.size());
  if (split.empty()) return stats;
  double tokens = 0, entities = 0;
  for (const AnnotatedSequence& s : split) {
    tokens += static_cast<double>(s.words.size());
    for (int label : s.labels) {
      doc::EntityTag tag;
      bool begin;
      if (doc::ParseEntityIobLabel(label, &tag, &begin) && begin) {
        entities += 1;
      }
    }
  }
  stats.avg_tokens = tokens / split.size();
  stats.avg_entities = entities / split.size();
  return stats;
}

std::vector<AnnotatedSequence> ExtractBlockSequences(
    const resumegen::GeneratedResume& resume) {
  std::vector<AnnotatedSequence> sequences;
  for (const doc::Block& block : resume.document.blocks) {
    switch (block.tag) {
      case BlockTag::kPInfo:
      case BlockTag::kEduExp:
      case BlockTag::kWorkExp:
      case BlockTag::kProjExp:
        break;
      default:
        continue;  // entity-free block types
    }
    AnnotatedSequence seq;
    seq.block = block.tag;
    for (int s = block.first_sentence; s <= block.last_sentence; ++s) {
      const doc::Sentence& sentence = resume.document.sentences[s];
      for (size_t t = 0; t < sentence.tokens.size(); ++t) {
        seq.words.push_back(sentence.tokens[t].word);
        seq.gold_labels.push_back(resume.entity_labels[s][t]);
      }
    }
    if (!seq.words.empty()) sequences.push_back(std::move(seq));
  }
  return sequences;
}

NerDataset BuildNerDataset(const NerDatasetConfig& config,
                           const EntityDictionary& dictionary) {
  Rng rng(config.seed);
  AutoAnnotator annotator(&dictionary);
  Augmenter augmenter(&dictionary, &rng);

  NerDataset dataset;
  const int total_needed = config.train_sequences + config.val_sequences +
                           config.test_sequences;
  std::vector<AnnotatedSequence> collected;
  int guard = 0;
  while (static_cast<int>(collected.size()) < total_needed &&
         guard++ < total_needed * 4) {
    const resumegen::GeneratedResume resume = resumegen::GenerateResume(&rng);
    for (AnnotatedSequence& seq : ExtractBlockSequences(resume)) {
      collected.push_back(std::move(seq));
      if (static_cast<int>(collected.size()) >= total_needed) break;
    }
  }
  RF_CHECK_GE(static_cast<int>(collected.size()), total_needed)
      << "corpus generation under-produced block sequences";

  int cursor = 0;
  // Training split: distant annotation; keep only sequences with at least
  // one matched entity (paper Section V-B1).
  while (static_cast<int>(dataset.train.size()) < config.train_sequences &&
         cursor < static_cast<int>(collected.size()) -
                      (config.val_sequences + config.test_sequences)) {
    AnnotatedSequence seq = collected[cursor++];
    seq.labels = annotator.Annotate(seq.words);
    const bool has_entity =
        std::any_of(seq.labels.begin(), seq.labels.end(),
                    [](int l) { return l != 0; });
    if (!has_entity) continue;
    dataset.train.push_back(std::move(seq));
  }
  // Augmentation: extra swapped/shuffled copies.
  const int augment_count = static_cast<int>(
      config.augment_fraction * static_cast<double>(dataset.train.size()));
  for (int i = 0; i < augment_count; ++i) {
    const AnnotatedSequence& base =
        dataset.train[rng.UniformInt(static_cast<int>(dataset.train.size()))];
    AnnotatedSequence aug = rng.Bernoulli(0.5)
                                ? augmenter.SwapEntities(base)
                                : augmenter.ShuffleEntityOrder(base);
    dataset.train.push_back(std::move(aug));
  }

  // Validation/test: gold ("expert") labels.
  auto take_gold = [&](int count, std::vector<AnnotatedSequence>* split) {
    while (static_cast<int>(split->size()) < count &&
           cursor < static_cast<int>(collected.size())) {
      AnnotatedSequence seq = collected[cursor++];
      seq.labels = seq.gold_labels;
      split->push_back(std::move(seq));
    }
  };
  take_gold(config.val_sequences, &dataset.val);
  take_gold(config.test_sequences, &dataset.test);
  return dataset;
}

NoiseStats ComputeNoiseStats(const std::vector<AnnotatedSequence>& split) {
  int64_t distant_nonzero = 0, gold_nonzero = 0, agree = 0;
  for (const AnnotatedSequence& seq : split) {
    if (seq.gold_labels.size() != seq.labels.size()) continue;  // augmented
    for (size_t i = 0; i < seq.labels.size(); ++i) {
      if (seq.labels[i] != 0) ++distant_nonzero;
      if (seq.gold_labels[i] != 0) ++gold_nonzero;
      if (seq.labels[i] != 0 && seq.labels[i] == seq.gold_labels[i]) ++agree;
    }
  }
  NoiseStats stats;
  if (distant_nonzero > 0) {
    stats.label_precision =
        static_cast<double>(agree) / static_cast<double>(distant_nonzero);
  }
  if (gold_nonzero > 0) {
    stats.label_recall =
        static_cast<double>(agree) / static_cast<double>(gold_nonzero);
  }
  return stats;
}

}  // namespace distant
}  // namespace resuformer
