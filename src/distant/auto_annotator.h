#ifndef RESUFORMER_DISTANT_AUTO_ANNOTATOR_H_
#define RESUFORMER_DISTANT_AUTO_ANNOTATOR_H_

#include <string>
#include <vector>

#include "distant/dictionary.h"
#include "distant/regex_matcher.h"

namespace resuformer {
namespace distant {

/// A token sequence with distant (auto) labels and, when available, gold
/// labels from the generator — both in the entity IOB space.
struct AnnotatedSequence {
  std::vector<std::string> words;
  std::vector<int> labels;       // distant supervision
  std::vector<int> gold_labels;  // empty for purely unlabeled text
  doc::BlockTag block = doc::BlockTag::kPInfo;
};

/// \brief Automatic data annotation (Section IV-B2): combines dictionary
/// string matching, regular expressions, and heuristic prefix rules into
/// IOB entity labels.
///
/// Heuristic rules implemented (footnote 4 of the paper):
///   * "Age:" followed by a number in [16, 70] labels the number as Age;
///   * "Name:" followed by two capitalized words labels them as Name;
///   * a word ending in "LTD"/"Inc."/"LLC"/"Group" extends a preceding
///     unmatched capitalized run into a Company span.
class AutoAnnotator {
 public:
  explicit AutoAnnotator(const EntityDictionary* dictionary)
      : dictionary_(dictionary) {}

  /// IOB labels over `words` (kNumEntityIobLabels space).
  std::vector<int> Annotate(const std::vector<std::string>& words) const;

 private:
  const EntityDictionary* dictionary_;
};

}  // namespace distant
}  // namespace resuformer

#endif  // RESUFORMER_DISTANT_AUTO_ANNOTATOR_H_
