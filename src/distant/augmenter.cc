#include "distant/augmenter.h"

#include "common/string_util.h"

namespace resuformer {
namespace distant {

namespace {

/// Contiguous labeled spans in an IOB sequence.
struct Span {
  int start;
  int length;
  doc::EntityTag tag;
};

std::vector<Span> ExtractSpans(const std::vector<int>& labels) {
  std::vector<Span> spans;
  for (size_t i = 0; i < labels.size();) {
    doc::EntityTag tag;
    bool begin;
    if (doc::ParseEntityIobLabel(labels[i], &tag, &begin) && begin) {
      size_t j = i + 1;
      doc::EntityTag tag2;
      bool begin2;
      while (j < labels.size() &&
             doc::ParseEntityIobLabel(labels[j], &tag2, &begin2) &&
             !begin2 && tag2 == tag) {
        ++j;
      }
      spans.push_back(Span{static_cast<int>(i),
                           static_cast<int>(j - i), tag});
      i = j;
    } else {
      ++i;
    }
  }
  return spans;
}

/// Copies a [start, start+len) slice of both words and labels.
template <typename T>
void AppendRange(const std::vector<T>& src, int start, int len,
                 std::vector<T>* dst) {
  dst->insert(dst->end(), src.begin() + start, src.begin() + start + len);
}

}  // namespace

AnnotatedSequence Augmenter::SwapEntities(const AnnotatedSequence& sequence,
                                          double swap_prob) const {
  AnnotatedSequence out;
  out.block = sequence.block;
  const std::vector<Span> spans = ExtractSpans(sequence.labels);
  size_t next_span = 0;
  for (size_t i = 0; i < sequence.words.size();) {
    if (next_span < spans.size() &&
        spans[next_span].start == static_cast<int>(i)) {
      const Span& span = spans[next_span++];
      const auto& pool = dictionary_->Surfaces(span.tag);
      if (!pool.empty() && rng_->Bernoulli(swap_prob)) {
        const std::string& replacement =
            pool[rng_->UniformInt(static_cast<int>(pool.size()))];
        bool first = true;
        for (const std::string& w : SplitString(replacement)) {
          out.words.push_back(w);
          out.labels.push_back(doc::EntityIobLabel(span.tag, first));
          first = false;
        }
      } else {
        AppendRange(sequence.words, span.start, span.length, &out.words);
        AppendRange(sequence.labels, span.start, span.length, &out.labels);
      }
      i += span.length;
    } else {
      out.words.push_back(sequence.words[i]);
      out.labels.push_back(sequence.labels[i]);
      ++i;
    }
  }
  // Gold labels are no longer aligned after augmentation; training data is
  // distant-only by definition.
  return out;
}

AnnotatedSequence Augmenter::ShuffleEntityOrder(
    const AnnotatedSequence& sequence) const {
  const std::vector<Span> spans = ExtractSpans(sequence.labels);
  if (spans.size() < 2) return sequence;
  // Pick a random adjacent pair of spans and swap their word ranges
  // (inclusive of the gap between them staying in place).
  const int k = rng_->UniformInt(static_cast<int>(spans.size()) - 1);
  const Span& a = spans[k];
  const Span& b = spans[k + 1];

  AnnotatedSequence out;
  out.block = sequence.block;
  // prefix | b | middle | a | suffix
  AppendRange(sequence.words, 0, a.start, &out.words);
  AppendRange(sequence.labels, 0, a.start, &out.labels);
  AppendRange(sequence.words, b.start, b.length, &out.words);
  AppendRange(sequence.labels, b.start, b.length, &out.labels);
  const int middle_start = a.start + a.length;
  AppendRange(sequence.words, middle_start, b.start - middle_start,
              &out.words);
  AppendRange(sequence.labels, middle_start, b.start - middle_start,
              &out.labels);
  AppendRange(sequence.words, a.start, a.length, &out.words);
  AppendRange(sequence.labels, a.start, a.length, &out.labels);
  const int suffix_start = b.start + b.length;
  AppendRange(sequence.words, suffix_start,
              static_cast<int>(sequence.words.size()) - suffix_start,
              &out.words);
  AppendRange(sequence.labels, suffix_start,
              static_cast<int>(sequence.labels.size()) - suffix_start,
              &out.labels);
  return out;
}

}  // namespace distant
}  // namespace resuformer
