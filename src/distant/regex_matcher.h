#ifndef RESUFORMER_DISTANT_REGEX_MATCHER_H_
#define RESUFORMER_DISTANT_REGEX_MATCHER_H_

#include <string>
#include <vector>

#include "distant/dictionary.h"

namespace resuformer {
namespace distant {

/// Pattern recognizers for the fixed-format entities the paper matches with
/// regular expressions (email, phone number, date). Implemented as
/// hand-rolled scanners — faster and dependency-free compared to
/// std::regex, and the grammar is tiny.
bool LooksLikeEmail(const std::string& word);
bool LooksLikePhone(const std::string& word);
/// "2016.09" / "2016/09" style year-month token.
bool LooksLikeYearMonth(const std::string& word);

/// Finds regex-matchable entities over a word sequence: single-token emails
/// and phones, and date *ranges* ("2016.09 - 2019.06", "2016.09 - Present")
/// spanning three tokens, or standalone year-month tokens.
std::vector<Match> FindRegexMatches(const std::vector<std::string>& words);

}  // namespace distant
}  // namespace resuformer

#endif  // RESUFORMER_DISTANT_REGEX_MATCHER_H_
