#ifndef RESUFORMER_DISTANT_NER_DATASET_H_
#define RESUFORMER_DISTANT_NER_DATASET_H_

#include <vector>

#include "distant/augmenter.h"
#include "resumegen/renderer.h"

namespace resuformer {
namespace distant {

/// Split sizes (paper: 20,000 train / 400 val / 600 test, Table VI).
struct NerDatasetConfig {
  int train_sequences = 2000;
  int val_sequences = 100;
  int test_sequences = 150;
  double augment_fraction = 0.3;  // extra augmented copies of train data
  uint64_t seed = 31;
};

/// The intra-block extraction dataset: train carries distant labels,
/// val/test carry gold ("expert") labels.
struct NerDataset {
  std::vector<AnnotatedSequence> train;
  std::vector<AnnotatedSequence> val;   // labels == gold
  std::vector<AnnotatedSequence> test;  // labels == gold
};

/// Statistics for Table VI.
struct NerSplitStats {
  int num_samples = 0;
  double avg_tokens = 0.0;
  double avg_entities = 0.0;
};

NerSplitStats ComputeNerStats(const std::vector<AnnotatedSequence>& split);

/// Extracts one AnnotatedSequence per entity-bearing block (PInfo, EduExp,
/// WorkExp, ProjExp) of a generated resume, carrying the generator's gold
/// entity labels. Section V-B1: blocks come from the block segmentation
/// stage; here the generator's gold segmentation decouples the two tasks.
std::vector<AnnotatedSequence> ExtractBlockSequences(
    const resumegen::GeneratedResume& resume);

/// Builds the dataset: generates resumes, extracts block sequences,
/// annotates the training split with the dictionaries + regex + heuristics
/// (keeping only sequences with >= 1 matched entity, as in the paper), and
/// applies entity-swap / order-shuffle augmentation.
NerDataset BuildNerDataset(const NerDatasetConfig& config,
                           const EntityDictionary& dictionary);

/// Token-level distant-label noise metrics against gold (how noisy the
/// distant supervision actually is — reported by the bench harnesses).
struct NoiseStats {
  double label_precision = 0.0;  // distant non-O labels that match gold
  double label_recall = 0.0;     // gold non-O labels recovered by distant
};
NoiseStats ComputeNoiseStats(const std::vector<AnnotatedSequence>& split);

}  // namespace distant
}  // namespace resuformer

#endif  // RESUFORMER_DISTANT_NER_DATASET_H_
