#ifndef RESUFORMER_DISTANT_DICTIONARY_H_
#define RESUFORMER_DISTANT_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "doc/block_tags.h"

namespace resuformer {
namespace distant {

/// A matched entity span over a word sequence.
struct Match {
  int start = 0;
  int length = 0;
  doc::EntityTag tag = doc::EntityTag::kName;
};

/// \brief Multi-class gazetteer with greedy longest-match lookup
/// (Section IV-B1: entity dictionaries built from name databases, web
/// encyclopedias and recruitment sites).
///
/// Surfaces are stored as sequences of case/punctuation-normalized words;
/// FindMatches scans left-to-right preferring longer matches and never
/// overlaps spans.
class EntityDictionary {
 public:
  /// Registers a surface form (whitespace-split) for `tag`.
  void Add(doc::EntityTag tag, const std::string& surface);

  /// Number of stored surface forms.
  int size() const { return size_; }

  /// Non-overlapping matches over the word sequence.
  std::vector<Match> FindMatches(const std::vector<std::string>& words) const;

  /// All surfaces of one tag (used by the entity-swap augmenter).
  const std::vector<std::string>& Surfaces(doc::EntityTag tag) const;

 private:
  struct Entry {
    std::vector<std::string> normalized_words;
    doc::EntityTag tag;
  };
  // First normalized word -> candidate entries (longest first).
  std::unordered_map<std::string, std::vector<Entry>> index_;
  std::vector<std::vector<std::string>> surfaces_ =
      std::vector<std::vector<std::string>>(doc::kNumEntityTags);
  int size_ = 0;
};

/// Coverage knobs for dictionary construction. Fractions below 1 introduce
/// the false-negative noise distant supervision must cope with; the
/// compositional families (companies, positions, projects, names) are
/// covered by drawing `*_samples` random compositions, which misses part of
/// the combinatorial space by construction.
struct DictionaryConfig {
  double college_coverage = 0.5;
  double major_coverage = 0.55;
  double degree_coverage = 1.0;  // degrees have "the limited value type"
  int company_samples = 250;
  int position_samples = 50;
  int project_samples = 120;
  int name_samples = 900;
  uint64_t seed = 97;
};

/// Builds the resume-domain dictionaries from the generator's entity pools
/// (the paper's "self-built dictionary" step).
EntityDictionary BuildDictionaries(const DictionaryConfig& config);

}  // namespace distant
}  // namespace resuformer

#endif  // RESUFORMER_DISTANT_DICTIONARY_H_
