#include "distant/dictionary.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "resumegen/entity_pools.h"
#include "resumegen/resume_sampler.h"
#include "text/normalizer.h"

namespace resuformer {
namespace distant {

using doc::EntityTag;

void EntityDictionary::Add(EntityTag tag, const std::string& surface) {
  Entry entry;
  entry.tag = tag;
  for (const std::string& w : SplitString(surface)) {
    const std::string norm = text::NormalizeForMatch(w);
    if (!norm.empty()) entry.normalized_words.push_back(norm);
  }
  if (entry.normalized_words.empty()) return;
  auto& bucket = index_[entry.normalized_words[0]];
  bucket.push_back(std::move(entry));
  // Longest-first so the greedy scan prefers maximal spans.
  std::sort(bucket.begin(), bucket.end(), [](const Entry& a, const Entry& b) {
    return a.normalized_words.size() > b.normalized_words.size();
  });
  surfaces_[static_cast<int>(tag)].push_back(surface);
  ++size_;
}

std::vector<Match> EntityDictionary::FindMatches(
    const std::vector<std::string>& words) const {
  std::vector<std::string> normalized(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    normalized[i] = text::NormalizeForMatch(words[i]);
  }
  std::vector<Match> matches;
  size_t i = 0;
  while (i < words.size()) {
    auto it = index_.find(normalized[i]);
    bool matched = false;
    if (it != index_.end()) {
      for (const Entry& entry : it->second) {
        const size_t len = entry.normalized_words.size();
        if (i + len > words.size()) continue;
        bool ok = true;
        for (size_t k = 0; k < len; ++k) {
          if (normalized[i + k] != entry.normalized_words[k]) {
            ok = false;
            break;
          }
        }
        if (ok) {
          matches.push_back(Match{static_cast<int>(i),
                                  static_cast<int>(len), entry.tag});
          i += len;
          matched = true;
          break;
        }
      }
    }
    if (!matched) ++i;
  }
  return matches;
}

const std::vector<std::string>& EntityDictionary::Surfaces(
    EntityTag tag) const {
  return surfaces_[static_cast<int>(tag)];
}

EntityDictionary BuildDictionaries(const DictionaryConfig& config) {
  Rng rng(config.seed);
  EntityDictionary dict;

  auto add_fraction = [&](EntityTag tag,
                          const std::vector<std::string>& pool,
                          double coverage) {
    for (const std::string& s : pool) {
      if (rng.Uniform() < coverage) dict.Add(tag, s);
    }
  };
  add_fraction(EntityTag::kCollege, resumegen::Colleges(),
               config.college_coverage);
  add_fraction(EntityTag::kMajor, resumegen::Majors(),
               config.major_coverage);
  add_fraction(EntityTag::kDegree, resumegen::Degrees(),
               config.degree_coverage);
  dict.Add(EntityTag::kGender, "Male");
  dict.Add(EntityTag::kGender, "Female");

  // Compositional families: sampling covers only part of the space.
  resumegen::ResumeSampler sampler(&rng);
  for (int i = 0; i < config.company_samples; ++i) {
    dict.Add(EntityTag::kCompany, sampler.SampleCompany());
  }
  for (int i = 0; i < config.position_samples; ++i) {
    dict.Add(EntityTag::kPosition, sampler.SamplePosition());
  }
  for (int i = 0; i < config.project_samples; ++i) {
    dict.Add(EntityTag::kProjName, sampler.SampleProjectName());
  }
  for (int i = 0; i < config.name_samples; ++i) {
    dict.Add(EntityTag::kName, sampler.SampleFullName());
  }
  return dict;
}

}  // namespace distant
}  // namespace resuformer
