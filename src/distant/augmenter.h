#ifndef RESUFORMER_DISTANT_AUGMENTER_H_
#define RESUFORMER_DISTANT_AUGMENTER_H_

#include "common/rng.h"
#include "distant/auto_annotator.h"

namespace resuformer {
namespace distant {

/// \brief Training-data augmentation (Section IV-B2, last paragraph):
/// entity-mention replacement from the dictionaries, and reordering of
/// adjacent entity segments within a sequence.
class Augmenter {
 public:
  Augmenter(const EntityDictionary* dictionary, Rng* rng)
      : dictionary_(dictionary), rng_(rng) {}

  /// Replaces each distant-labeled entity span with a random dictionary
  /// surface of the same tag (with probability `swap_prob` per span),
  /// keeping labels aligned. Returns the augmented copy.
  AnnotatedSequence SwapEntities(const AnnotatedSequence& sequence,
                                 double swap_prob = 0.5) const;

  /// Swaps two adjacent labeled segments (e.g. company <-> date in a work
  /// header). Returns the original when fewer than two spans exist.
  AnnotatedSequence ShuffleEntityOrder(const AnnotatedSequence& sequence) const;

 private:
  const EntityDictionary* dictionary_;
  Rng* rng_;
};

}  // namespace distant
}  // namespace resuformer

#endif  // RESUFORMER_DISTANT_AUGMENTER_H_
