#include "distant/auto_annotator.h"

#include <cctype>

#include "common/string_util.h"

namespace resuformer {
namespace distant {

using doc::EntityTag;

namespace {

bool IsCapitalizedWord(const std::string& w) {
  return !w.empty() && std::isupper(static_cast<unsigned char>(w[0]));
}

bool ParsesAsAge(const std::string& w) {
  if (!IsAsciiDigits(w)) return false;
  const int v = std::stoi(w);
  return v >= 16 && v <= 70;
}

void Apply(const Match& m, std::vector<int>* labels) {
  // Never overwrite existing annotations (first writer wins; dictionary and
  // regex matches are applied before heuristics).
  for (int k = 0; k < m.length; ++k) {
    if ((*labels)[m.start + k] != 0) return;
  }
  for (int k = 0; k < m.length; ++k) {
    (*labels)[m.start + k] = doc::EntityIobLabel(m.tag, k == 0);
  }
}

}  // namespace

std::vector<int> AutoAnnotator::Annotate(
    const std::vector<std::string>& words) const {
  std::vector<int> labels(words.size(), 0);

  // 1. Regular expressions (email / phone / dates) — unambiguous formats.
  for (const Match& m : FindRegexMatches(words)) Apply(m, &labels);
  // 2. Dictionary string matching.
  for (const Match& m : dictionary_->FindMatches(words)) Apply(m, &labels);

  // 3. Heuristic prefix rules.
  for (size_t i = 0; i + 1 < words.size(); ++i) {
    const std::string lower = ToLowerAscii(words[i]);
    if ((lower == "age:" || lower == "age") && ParsesAsAge(words[i + 1])) {
      Apply(Match{static_cast<int>(i + 1), 1, EntityTag::kAge}, &labels);
    }
    if (lower == "name:" && IsCapitalizedWord(words[i + 1])) {
      const int len =
          (i + 2 < words.size() && IsCapitalizedWord(words[i + 2])) ? 2 : 1;
      Apply(Match{static_cast<int>(i + 1), len, EntityTag::kName}, &labels);
    }
  }
  // Company suffix rule: "... <Cap> <Cap> Co. LTD" / "... Inc.".
  for (size_t i = 0; i < words.size(); ++i) {
    const std::string& w = words[i];
    const bool suffix = EndsWith(w, "LTD") || w == "Inc." || w == "LLC" ||
                        w == "Group" || w == "Inc";
    if (!suffix || labels[i] != 0) continue;
    // Extend left over capitalized, unlabeled words (at most 4).
    int start = static_cast<int>(i);
    while (start > 0 && i - start < 4 &&
           IsCapitalizedWord(words[start - 1]) && labels[start - 1] == 0) {
      --start;
    }
    if (start < static_cast<int>(i)) {
      Apply(Match{start, static_cast<int>(i) - start + 1,
                  EntityTag::kCompany},
            &labels);
    }
  }
  return labels;
}

}  // namespace distant
}  // namespace resuformer
