#ifndef RESUFORMER_RESUMEGEN_RENDERER_H_
#define RESUFORMER_RESUMEGEN_RENDERER_H_

#include <vector>

#include "common/rng.h"
#include "doc/document.h"
#include "resumegen/resume_sampler.h"
#include "resumegen/templates.h"

namespace resuformer {
namespace resumegen {

/// A fully labeled synthetic resume: the structured record, the rendered
/// multi-page document (tokens with bounding boxes + gold IOB block labels
/// per sentence) and gold IOB entity labels per token.
struct GeneratedResume {
  ResumeRecord record;
  doc::Document document;
  /// entity_labels[s][t]: entity IOB label of token t in sentence s
  /// (doc::kNumEntityIobLabels space).
  std::vector<std::vector<int>> entity_labels;
  int template_id = 0;
};

/// \brief Renders a ResumeRecord through a TemplateStyle into a token
/// stream with page-coordinate bounding boxes — the stand-in for
/// "PDF + PyMuPDF parsing" in the paper (see DESIGN.md).
///
/// Layout model: monospaced-ish word widths proportional to font size,
/// top-down line flow with page breaks, optional sidebar column. Each
/// visual line becomes one doc::Sentence; wrapped continuations inherit the
/// I- form of the line's block label.
class Renderer {
 public:
  explicit Renderer(Rng* rng) : rng_(rng) {}

  GeneratedResume Render(const ResumeRecord& record,
                         const TemplateStyle& style) const;

 private:
  Rng* rng_;
};

/// Convenience: sample a record, pick a random template, render.
GeneratedResume GenerateResume(Rng* rng);

/// Renders the document as annotated ASCII art (used by the Figure 1 and
/// Figure 3 harnesses and the examples).
std::string AsciiRender(const doc::Document& document,
                        const std::vector<int>& sentence_labels,
                        int max_width = 100);

}  // namespace resumegen
}  // namespace resuformer

#endif  // RESUFORMER_RESUMEGEN_RENDERER_H_
