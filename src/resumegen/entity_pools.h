#ifndef RESUFORMER_RESUMEGEN_ENTITY_POOLS_H_
#define RESUFORMER_RESUMEGEN_ENTITY_POOLS_H_

#include <string>
#include <vector>

namespace resuformer {
namespace resumegen {

/// Static word pools backing the synthetic resume generator. These replace
/// the paper's proprietary data sources (name databases, web encyclopedia,
/// recruitment sites; Section IV-B1). All content is fictional.
///
/// Entities like companies and project names are produced *compositionally*
/// (adjective + noun + suffix), so the space of surface forms is much larger
/// than any dictionary built from a sample — exactly the partial-coverage
/// regime distant supervision faces in the paper.
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
const std::vector<std::string>& Colleges();
const std::vector<std::string>& Majors();
const std::vector<std::string>& Degrees();
const std::vector<std::string>& CompanyAdjectives();
const std::vector<std::string>& CompanyNouns();
const std::vector<std::string>& CompanySuffixes();
const std::vector<std::string>& PositionLevels();
const std::vector<std::string>& PositionRoles();
const std::vector<std::string>& ProjectAdjectives();
const std::vector<std::string>& ProjectNouns();
const std::vector<std::string>& ProjectSuffixes();
const std::vector<std::string>& Skills();
const std::vector<std::string>& Awards();
const std::vector<std::string>& SummaryPhrases();
const std::vector<std::string>& WorkContentPhrases();
const std::vector<std::string>& ProjectContentPhrases();
const std::vector<std::string>& EmailDomains();
const std::vector<std::string>& Cities();

/// Section-header wording variants per block, e.g. WorkExp ->
/// {"Work Experience", "Employment History", ...}.
const std::vector<std::string>& HeaderVariants(int block_tag);

}  // namespace resumegen
}  // namespace resuformer

#endif  // RESUFORMER_RESUMEGEN_ENTITY_POOLS_H_
