#include "resumegen/entity_pools.h"

#include "common/logging.h"
#include "doc/block_tags.h"

namespace resuformer {
namespace resumegen {

// Each pool is a function-local static vector built once; the accessor
// returns a reference (allowed for function-local statics).

const std::vector<std::string>& FirstNames() {
  static const auto* kPool = new std::vector<std::string>{
      "James",  "Mary",    "Robert", "Patricia", "John",    "Jennifer",
      "Michael", "Linda",  "David",  "Elizabeth", "William", "Barbara",
      "Richard", "Susan",  "Joseph", "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",  "Wei",    "Fang",     "Lei",     "Na",
      "Min",    "Jing",    "Li",     "Qiang",    "Yan",     "Jun",
      "Ana",    "Luis",    "Carlos", "Sofia",    "Diego",   "Lucia",
      "Hiro",   "Yuki",    "Kenji",  "Aiko",     "Raj",     "Priya",
      "Arjun",  "Divya",   "Omar",   "Layla",    "Ivan",    "Olga",
      "Pierre", "Claire",  "Hans",   "Greta",    "Erik",    "Astrid",
      "Noah",   "Emma",    "Liam",   "Olivia",   "Ethan",   "Ava"};
  return *kPool;
}

const std::vector<std::string>& LastNames() {
  static const auto* kPool = new std::vector<std::string>{
      "Smith",   "Johnson", "Williams", "Brown",   "Jones",    "Garcia",
      "Miller",  "Davis",   "Rodriguez", "Martinez", "Hernandez", "Lopez",
      "Gonzalez", "Wilson", "Anderson", "Taylor",  "Moore",    "Jackson",
      "Martin",  "Lee",     "Wang",     "Zhang",   "Chen",     "Liu",
      "Yang",    "Huang",   "Zhao",     "Wu",      "Zhou",     "Xu",
      "Sun",     "Ma",      "Zhu",      "Hu",      "Guo",      "He",
      "Tanaka",  "Suzuki",  "Sato",     "Kim",     "Park",     "Choi",
      "Singh",   "Patel",   "Kumar",    "Sharma",  "Ali",      "Hassan",
      "Ivanov",  "Petrov",  "Muller",   "Schmidt", "Schneider", "Fischer",
      "Dubois",  "Moreau",  "Rossi",    "Ferrari", "Silva",    "Santos"};
  return *kPool;
}

const std::vector<std::string>& Colleges() {
  static const auto* kPool = new std::vector<std::string>{
      "Northgate University",          "Riverside Institute of Technology",
      "Lakeshore State University",    "Summit Polytechnic University",
      "Harborview University",         "Eastfield Technical University",
      "Westbrook University",          "Crestwood College of Engineering",
      "Silverpine University",         "Maplewood State University",
      "Stonebridge University",        "Clearwater Institute of Science",
      "Oakhill University",            "Brightland University",
      "Fairmont Technological University", "Greenfield University",
      "Hillcrest University",          "Kingsford Institute of Technology",
      "Longview University",           "Meadowbrook University",
      "Northern Plains University",    "Pacific Crest University",
      "Queensbury University",         "Redwood Valley University",
      "Southport University",          "Thornton State University",
      "Valleyforge University",        "Whitfield University",
      "Ashford University of Science", "Beaconsfield University",
      "Cedarville Institute",          "Dunmore University",
      "Eastgate Normal University",    "Foxglove University",
      "Glenhaven University",          "Ironwood Institute of Technology",
      "Juniper State University",      "Kestrel University",
      "Larkspur University",           "Midland University of Technology"};
  return *kPool;
}

const std::vector<std::string>& Majors() {
  static const auto* kPool = new std::vector<std::string>{
      "Computer Science",          "Software Engineering",
      "Electrical Engineering",    "Mechanical Engineering",
      "Information Systems",       "Data Science",
      "Applied Mathematics",       "Statistics",
      "Physics",                   "Chemistry",
      "Civil Engineering",         "Industrial Engineering",
      "Business Administration",   "Accounting",
      "Finance",                   "Economics",
      "Marketing",                 "Human Resource Management",
      "Communication Engineering", "Automation",
      "Biomedical Engineering",    "Materials Science",
      "Environmental Engineering", "Chemical Engineering",
      "Computer Engineering",      "Artificial Intelligence",
      "Information Security",      "Digital Media Technology",
      "Logistics Management",      "International Trade"};
  return *kPool;
}

const std::vector<std::string>& Degrees() {
  static const auto* kPool = new std::vector<std::string>{
      "Bachelor", "Master", "Ph.D.", "B.Sc.", "M.Sc.",
      "B.Eng.",   "M.Eng.", "MBA",   "Associate", "Doctorate"};
  return *kPool;
}

const std::vector<std::string>& CompanyAdjectives() {
  static const auto* kPool = new std::vector<std::string>{
      "Blue",   "Bright", "Swift",  "Nova",   "Prime",  "Apex",
      "Global", "United", "Quantum", "Vertex", "Golden", "Silver",
      "Rapid",  "Smart",  "Deep",   "Clear",  "Grand",  "Solar",
      "Lunar",  "Astral", "Crimson", "Emerald", "Pioneer", "Summit"};
  return *kPool;
}

const std::vector<std::string>& CompanyNouns() {
  static const auto* kPool = new std::vector<std::string>{
      "Horizon", "Data",    "Cloud",  "Link",   "Wave",   "Byte",
      "Logic",   "Matrix",  "Pulse",  "Bridge", "Forge",  "Stream",
      "Circuit", "Vision",  "Signal", "Orbit",  "Vector", "Nexus",
      "Harbor",  "Compass", "Beacon", "Anchor", "Lattice", "Spark"};
  return *kPool;
}

const std::vector<std::string>& CompanySuffixes() {
  static const auto* kPool = new std::vector<std::string>{
      "Technologies Co. LTD", "Software Co. LTD", "Systems Inc.",
      "Solutions Inc.",       "Networks Co. LTD", "Group",
      "Holdings LLC",         "Labs Inc.",        "Digital Co. LTD",
      "Information Co. LTD"};
  return *kPool;
}

const std::vector<std::string>& PositionLevels() {
  static const auto* kPool = new std::vector<std::string>{
      "", "Junior", "Senior", "Lead", "Principal", "Staff", "Chief",
      "Associate", "Deputy"};
  return *kPool;
}

const std::vector<std::string>& PositionRoles() {
  static const auto* kPool = new std::vector<std::string>{
      "Software Engineer",   "Backend Engineer",   "Frontend Engineer",
      "Data Engineer",       "Data Analyst",       "Data Scientist",
      "Product Manager",     "Project Manager",    "QA Engineer",
      "Test Engineer",       "DevOps Engineer",    "System Architect",
      "Algorithm Engineer",  "Research Scientist", "UI Designer",
      "Operations Manager",  "Sales Manager",      "Account Executive",
      "HR Specialist",       "Financial Analyst",  "Marketing Specialist",
      "Technical Writer",    "Database Administrator", "Security Engineer"};
  return *kPool;
}

const std::vector<std::string>& ProjectAdjectives() {
  static const auto* kPool = new std::vector<std::string>{
      "Intelligent", "Distributed", "Realtime", "Unified", "Scalable",
      "Automated",   "Secure",      "Mobile",   "Enterprise", "Hybrid",
      "Adaptive",    "Integrated",  "Modular",  "Predictive", "Streaming"};
  return *kPool;
}

const std::vector<std::string>& ProjectNouns() {
  static const auto* kPool = new std::vector<std::string>{
      "Payment",   "Recommendation", "Inventory", "Logistics", "Monitoring",
      "Analytics", "Messaging",      "Search",    "Billing",   "Scheduling",
      "Risk",      "Trading",        "Content",   "Identity",  "Reporting"};
  return *kPool;
}

const std::vector<std::string>& ProjectSuffixes() {
  static const auto* kPool = new std::vector<std::string>{
      "Platform", "System", "Engine", "Service", "Pipeline",
      "Portal",   "Gateway", "Dashboard", "Framework", "Toolkit"};
  return *kPool;
}

const std::vector<std::string>& Skills() {
  static const auto* kPool = new std::vector<std::string>{
      "Python",     "Java",       "C++",       "Go",         "Rust",
      "JavaScript", "TypeScript", "SQL",       "NoSQL",      "Redis",
      "MySQL",      "PostgreSQL", "MongoDB",   "Kafka",      "Spark",
      "Hadoop",     "Flink",      "Docker",    "Kubernetes", "Linux",
      "Git",        "Jenkins",    "TensorFlow", "PyTorch",   "Scikit-learn",
      "React",      "Vue",        "Angular",   "Spring",     "Django",
      "Flask",      "gRPC",       "REST",      "GraphQL",    "AWS",
      "Azure",      "GCP",        "Terraform", "Ansible",    "Elasticsearch"};
  return *kPool;
}

const std::vector<std::string>& Awards() {
  static const auto* kPool = new std::vector<std::string>{
      "National Scholarship",            "First Class Scholarship",
      "Outstanding Graduate Award",      "Best Employee of the Year",
      "Excellent Team Award",            "Innovation Prize",
      "Dean's List",                     "Merit Student Award",
      "Hackathon First Prize",           "Mathematical Contest Honorable Mention",
      "Programming Contest Gold Medal",  "Outstanding Intern Award",
      "Second Class Scholarship",        "Excellent Student Leader",
      "Annual Technical Breakthrough Award", "Presidential Scholarship"};
  return *kPool;
}

const std::vector<std::string>& SummaryPhrases() {
  static const auto* kPool = new std::vector<std::string>{
      "Results-driven engineer with strong problem solving skills",
      "Experienced professional passionate about large scale systems",
      "Self-motivated team player with excellent communication",
      "Detail oriented developer focused on code quality",
      "Proven track record of delivering projects on time",
      "Strong background in algorithms and data structures",
      "Skilled at cross functional collaboration and mentoring",
      "Enthusiastic about learning new technologies quickly",
      "Solid foundation in distributed systems and databases",
      "Creative thinker with a pragmatic engineering mindset",
      "Dedicated to building reliable and maintainable software",
      "Comfortable working in fast paced agile environments"};
  return *kPool;
}

const std::vector<std::string>& WorkContentPhrases() {
  static const auto* kPool = new std::vector<std::string>{
      "Designed and implemented core backend services",
      "Led a team of five engineers to deliver key features",
      "Improved system throughput by optimizing database queries",
      "Built continuous integration pipelines for daily releases",
      "Collaborated with product managers to refine requirements",
      "Reduced infrastructure costs through capacity planning",
      "Migrated legacy services to a microservice architecture",
      "Developed monitoring dashboards and alerting rules",
      "Owned the on call rotation and incident response process",
      "Mentored junior engineers through code reviews",
      "Automated deployment workflows across environments",
      "Maintained high availability for customer facing services",
      "Wrote design documents and drove architecture reviews",
      "Partnered with data team on analytics requirements"};
  return *kPool;
}

const std::vector<std::string>& ProjectContentPhrases() {
  static const auto* kPool = new std::vector<std::string>{
      "Implemented the service layer and storage schema",
      "Responsible for module design and interface definition",
      "Integrated third party APIs and payment channels",
      "Optimized query latency with caching and indexing",
      "Developed unit and integration test suites",
      "Deployed the system with containers and orchestration",
      "Conducted load testing and performance tuning",
      "Coordinated requirements with business stakeholders",
      "Designed the data model and reporting pipeline",
      "Implemented authentication and access control"};
  return *kPool;
}

const std::vector<std::string>& EmailDomains() {
  static const auto* kPool = new std::vector<std::string>{
      "example.com", "mailbox.org", "postbox.net", "webmail.io",
      "inbox.dev",   "mailhub.co",  "letterbox.app"};
  return *kPool;
}

const std::vector<std::string>& Cities() {
  static const auto* kPool = new std::vector<std::string>{
      "Springfield", "Rivertown", "Lakeside", "Hillsboro", "Fairview",
      "Greenville",  "Bridgeport", "Clayton", "Ashland",   "Milford",
      "Oakdale",     "Burlington", "Clinton", "Dayton",    "Easton"};
  return *kPool;
}

const std::vector<std::string>& HeaderVariants(int block_tag) {
  using doc::BlockTag;
  static const auto* kVariants = new std::vector<std::vector<std::string>>{
      /*PInfo*/ {"Personal Information", "Contact", "Basic Information",
                 "About Me"},
      /*EduExp*/ {"Education", "Education Experience", "Educational Background",
                  "Academic History"},
      /*WorkExp*/ {"Work Experience", "Employment History",
                   "Professional Experience", "Career History"},
      /*ProjExp*/ {"Project Experience", "Projects", "Key Projects",
                   "Selected Projects"},
      /*Summary*/ {"Summary", "Profile", "Professional Summary", "Objective"},
      /*Awards*/ {"Awards", "Honors", "Honors and Awards", "Achievements"},
      /*SkillDes*/ {"Skills", "Technical Skills", "Skill Description",
                    "Core Competencies"},
      /*Title*/ {"Resume", "Curriculum Vitae", "CV"},
  };
  RF_CHECK_GE(block_tag, 0);
  RF_CHECK_LT(block_tag, static_cast<int>(kVariants->size()));
  return (*kVariants)[block_tag];
}

}  // namespace resumegen
}  // namespace resuformer
