#include "resumegen/corpus.h"

namespace resuformer {
namespace resumegen {

SplitStats ComputeStats(const std::vector<GeneratedResume>& docs) {
  SplitStats stats;
  stats.num_docs = static_cast<int>(docs.size());
  if (docs.empty()) return stats;
  double tokens = 0, sentences = 0, pages = 0;
  for (const GeneratedResume& r : docs) {
    tokens += r.document.NumTokens();
    sentences += r.document.NumSentences();
    pages += r.document.num_pages;
  }
  stats.avg_tokens = tokens / docs.size();
  stats.avg_sentences = sentences / docs.size();
  stats.avg_pages = pages / docs.size();
  return stats;
}

Corpus GenerateCorpus(const CorpusConfig& config) {
  Rng rng(config.seed);
  Corpus corpus;
  auto fill = [&rng](std::vector<GeneratedResume>* split, int count) {
    split->reserve(count);
    for (int i = 0; i < count; ++i) split->push_back(GenerateResume(&rng));
  };
  fill(&corpus.pretrain, config.pretrain_docs);
  fill(&corpus.train, config.train_docs);
  fill(&corpus.val, config.val_docs);
  fill(&corpus.test, config.test_docs);
  return corpus;
}

text::WordPieceTokenizer TrainTokenizer(const Corpus& corpus, int max_vocab) {
  std::vector<std::string> words;
  auto collect = [&words](const std::vector<GeneratedResume>& split) {
    for (const GeneratedResume& r : split) {
      for (const doc::Sentence& s : r.document.sentences) {
        for (const doc::Token& t : s.tokens) words.push_back(t.word);
      }
    }
  };
  collect(corpus.pretrain);
  collect(corpus.train);
  return text::WordPieceTokenizer::Train(words, max_vocab);
}

}  // namespace resumegen
}  // namespace resuformer
