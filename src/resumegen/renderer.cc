#include "resumegen/renderer.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"
#include "resumegen/entity_pools.h"

namespace resuformer {
namespace resumegen {

using doc::BlockTag;
using doc::EntityTag;

namespace {

// Page geometry (US letter, points).
constexpr float kPageWidth = 612.0f;
constexpr float kPageHeight = 792.0f;
constexpr float kTopMargin = 50.0f;
constexpr float kBottomLimit = 742.0f;
constexpr float kSingleX0 = 50.0f;
constexpr float kSingleWidth = 512.0f;
constexpr float kSidebarX0 = 40.0f;
constexpr float kSidebarWidth = 150.0f;
constexpr float kMainX0 = 215.0f;
constexpr float kMainWidth = 357.0f;

struct WordSpec {
  std::string text;
  int entity_label = 0;  // entity IOB
};

/// One logical line before wrapping.
struct LineSpec {
  std::vector<WordSpec> words;
  int block_label = doc::kOutsideLabel;  // block IOB of the first visual line
  float font_size = 10.0f;
  bool bold = false;
  int column = 0;  // 0 = main flow, 1 = sidebar
  float extra_gap = 0.0f;  // additional vertical space before the line
};

void AppendPlain(LineSpec* line, const std::string& text) {
  for (const std::string& w : SplitString(text)) {
    line->words.push_back({w, 0});
  }
}

void AppendEntity(LineSpec* line, const std::string& text, EntityTag tag) {
  bool first = true;
  for (const std::string& w : SplitString(text)) {
    line->words.push_back({w, doc::EntityIobLabel(tag, first)});
    first = false;
  }
}

/// I-variant of a block IOB label (continuation lines of a wrapped line).
int ContinuationLabel(int block_label) {
  BlockTag tag;
  bool begin;
  if (!doc::ParseIobLabel(block_label, &tag, &begin)) {
    return doc::kOutsideLabel;
  }
  return doc::IobLabel(tag, /*begin=*/false);
}

/// Builder for one semantic block: emits an optional section-title line then
/// content lines. `begin_label` tracks B-/I- within the block.
class BlockBuilder {
 public:
  BlockBuilder(const TemplateStyle& style, Rng* rng,
               std::vector<LineSpec>* out)
      : style_(style), rng_(rng), out_(out) {}

  void SectionHeader(BlockTag tag, int column) {
    // Some resumes omit section titles entirely; the block must then be
    // recognized from content, fonts and position.
    if (rng_->Bernoulli(style_.header_skip_prob)) return;
    const auto& variants = HeaderVariants(static_cast<int>(tag));
    LineSpec line;
    line.block_label = doc::IobLabel(BlockTag::kTitle, true);
    line.font_size = style_.header_font;
    line.bold = style_.bold_headers;
    line.column = column;
    line.extra_gap = style_.body_font * 0.8f;
    std::string text = variants[rng_->UniformInt(
        static_cast<int>(variants.size()))];
    if (rng_->Bernoulli(0.2)) text = ToUpper(text);
    AppendPlain(&line, text);
    out_->push_back(line);
  }

  LineSpec NewLine(BlockTag tag, bool begin, int column,
                   float font_scale = 1.0f, bool bold = false) {
    LineSpec line;
    line.block_label = doc::IobLabel(tag, begin);
    line.font_size = style_.body_font * font_scale;
    line.bold = bold;
    line.column = column;
    return line;
  }

  void Emit(LineSpec line) { out_->push_back(std::move(line)); }

  Rng* rng() { return rng_; }
  const TemplateStyle& style() const { return style_; }

 private:
  static std::string ToUpper(const std::string& s) {
    std::string out = s;
    for (char& c : out) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return out;
  }

  const TemplateStyle& style_;
  Rng* rng_;
  std::vector<LineSpec>* out_;
};

void BuildPInfo(const ResumeRecord& rec, BlockBuilder* b, int column) {
  const TemplateStyle& style = b->style();
  if (style.pinfo_header && b->rng()->Bernoulli(0.5)) {
    b->SectionHeader(BlockTag::kPInfo, column);
  }
  // Name line: large font, bold.
  LineSpec name_line = b->NewLine(BlockTag::kPInfo, true, column,
                                  style.name_font / style.body_font, true);
  AppendEntity(&name_line, rec.FullName(), EntityTag::kName);
  b->Emit(name_line);

  // Contact lines; 50/50 combined vs separate.
  if (b->rng()->Bernoulli(0.5)) {
    LineSpec contact = b->NewLine(BlockTag::kPInfo, false, column);
    AppendPlain(&contact, "Email:");
    AppendEntity(&contact, rec.email, EntityTag::kEmail);
    AppendPlain(&contact, "| Phone:");
    AppendEntity(&contact, rec.phone, EntityTag::kPhoneNum);
    b->Emit(contact);
    LineSpec detail = b->NewLine(BlockTag::kPInfo, false, column);
    AppendPlain(&detail, "Gender:");
    AppendEntity(&detail, rec.gender, EntityTag::kGender);
    AppendPlain(&detail, "| Age:");
    AppendEntity(&detail, StringPrintf("%d", rec.age), EntityTag::kAge);
    AppendPlain(&detail, "| City: " + rec.city);
    b->Emit(detail);
  } else {
    LineSpec l1 = b->NewLine(BlockTag::kPInfo, false, column);
    AppendPlain(&l1, "Email:");
    AppendEntity(&l1, rec.email, EntityTag::kEmail);
    b->Emit(l1);
    LineSpec l2 = b->NewLine(BlockTag::kPInfo, false, column);
    AppendPlain(&l2, "Phone:");
    AppendEntity(&l2, rec.phone, EntityTag::kPhoneNum);
    b->Emit(l2);
    LineSpec l3 = b->NewLine(BlockTag::kPInfo, false, column);
    AppendPlain(&l3, "Gender:");
    AppendEntity(&l3, rec.gender, EntityTag::kGender);
    AppendPlain(&l3, "Age:");
    AppendEntity(&l3, StringPrintf("%d", rec.age), EntityTag::kAge);
    b->Emit(l3);
  }
}

void BuildEduExp(const ResumeRecord& rec, BlockBuilder* b, int column) {
  b->SectionHeader(BlockTag::kEduExp, column);
  const int date_style = b->style().date_style;
  for (const EducationEntry& e : rec.education) {
    LineSpec head = b->NewLine(BlockTag::kEduExp, true, column, 1.0f,
                               b->style().bold_headers);
    AppendEntity(&head, FormatDateRange(e.dates, date_style),
                 EntityTag::kDate);
    AppendEntity(&head, e.college, EntityTag::kCollege);
    b->Emit(head);
    LineSpec detail = b->NewLine(BlockTag::kEduExp, false, column);
    if (b->rng()->Bernoulli(0.5)) {
      AppendEntity(&detail, e.major, EntityTag::kMajor);
      AppendPlain(&detail, ",");
      AppendEntity(&detail, e.degree, EntityTag::kDegree);
    } else {
      AppendEntity(&detail, e.degree, EntityTag::kDegree);
      AppendPlain(&detail, "in");
      AppendEntity(&detail, e.major, EntityTag::kMajor);
    }
    b->Emit(detail);
    // Inline scholarships: gold-labeled Awards inside the education section
    // (the Figure 3 scenario).
    bool first_award = true;
    for (const std::string& award : e.inline_awards) {
      LineSpec al = b->NewLine(BlockTag::kAwards, first_award, column);
      AppendPlain(&al, award);
      b->Emit(al);
      first_award = false;
    }
  }
}

void BuildWorkExp(const ResumeRecord& rec, BlockBuilder* b, int column) {
  b->SectionHeader(BlockTag::kWorkExp, column);
  const int date_style = b->style().date_style;
  for (const WorkEntry& w : rec.work) {
    LineSpec head = b->NewLine(BlockTag::kWorkExp, true, column, 1.0f,
                               b->style().bold_headers);
    if (b->rng()->Bernoulli(0.5)) {
      AppendEntity(&head, FormatDateRange(w.dates, date_style),
                   EntityTag::kDate);
      AppendEntity(&head, w.company, EntityTag::kCompany);
      AppendEntity(&head, w.position, EntityTag::kPosition);
    } else {
      AppendEntity(&head, w.company, EntityTag::kCompany);
      AppendPlain(&head, "|");
      AppendEntity(&head, w.position, EntityTag::kPosition);
      AppendPlain(&head, "|");
      AppendEntity(&head, FormatDateRange(w.dates, date_style),
                   EntityTag::kDate);
    }
    b->Emit(head);
    for (const std::string& content : w.content_lines) {
      LineSpec cl = b->NewLine(BlockTag::kWorkExp, false, column);
      AppendPlain(&cl, b->style().bullets ? "- " + content : content);
      b->Emit(cl);
    }
  }
}

void BuildProjExp(const ResumeRecord& rec, BlockBuilder* b, int column) {
  if (rec.projects.empty()) return;
  b->SectionHeader(BlockTag::kProjExp, column);
  const int date_style = b->style().date_style;
  for (const ProjectEntry& p : rec.projects) {
    LineSpec head = b->NewLine(BlockTag::kProjExp, true, column, 1.0f,
                               b->style().bold_headers);
    AppendEntity(&head, p.name, EntityTag::kProjName);
    AppendEntity(&head, FormatDateRange(p.dates, date_style),
                 EntityTag::kDate);
    b->Emit(head);
    for (const std::string& content : p.content_lines) {
      LineSpec cl = b->NewLine(BlockTag::kProjExp, false, column);
      AppendPlain(&cl, b->style().bullets ? "- " + content : content);
      b->Emit(cl);
    }
  }
}

void BuildSummary(const ResumeRecord& rec, BlockBuilder* b, int column) {
  if (rec.summary_lines.empty()) return;
  b->SectionHeader(BlockTag::kSummary, column);
  bool first = true;
  for (const std::string& s : rec.summary_lines) {
    LineSpec line = b->NewLine(BlockTag::kSummary, first, column);
    AppendPlain(&line, s + ".");
    b->Emit(line);
    first = false;
  }
}

void BuildAwards(const ResumeRecord& rec, BlockBuilder* b, int column) {
  if (rec.awards.empty()) return;
  b->SectionHeader(BlockTag::kAwards, column);
  bool first = true;
  for (const std::string& a : rec.awards) {
    LineSpec line = b->NewLine(BlockTag::kAwards, first, column);
    AppendPlain(&line, b->style().bullets ? "- " + a : a);
    b->Emit(line);
    first = false;
  }
}

void BuildSkillDes(const ResumeRecord& rec, BlockBuilder* b, int column) {
  if (rec.skills.empty()) return;
  b->SectionHeader(BlockTag::kSkillDes, column);
  // Skills rendered a few per line, comma separated.
  bool first = true;
  size_t i = 0;
  while (i < rec.skills.size()) {
    LineSpec line = b->NewLine(BlockTag::kSkillDes, first, column);
    const size_t per_line =
        1 + static_cast<size_t>(b->rng()->UniformInt(4));
    std::string text;
    for (size_t k = 0; k < per_line && i < rec.skills.size(); ++k, ++i) {
      if (!text.empty()) text += ", ";
      text += rec.skills[i];
    }
    AppendPlain(&line, text);
    b->Emit(line);
    first = false;
  }
}

void BuildBlock(BlockTag tag, const ResumeRecord& rec, BlockBuilder* b,
                int column) {
  switch (tag) {
    case BlockTag::kPInfo:
      BuildPInfo(rec, b, column);
      break;
    case BlockTag::kEduExp:
      BuildEduExp(rec, b, column);
      break;
    case BlockTag::kWorkExp:
      BuildWorkExp(rec, b, column);
      break;
    case BlockTag::kProjExp:
      BuildProjExp(rec, b, column);
      break;
    case BlockTag::kSummary:
      BuildSummary(rec, b, column);
      break;
    case BlockTag::kAwards:
      BuildAwards(rec, b, column);
      break;
    case BlockTag::kSkillDes:
      BuildSkillDes(rec, b, column);
      break;
    case BlockTag::kTitle:
      break;  // section titles are emitted with their blocks
  }
}

float WordWidth(const std::string& word, float font) {
  return 0.52f * font * static_cast<float>(word.size());
}

}  // namespace

GeneratedResume Renderer::Render(const ResumeRecord& record,
                                 const TemplateStyle& base_style) const {
  // Per-document style jitter: a random date wording and (half the time) a
  // shuffled main-block order — "the semantic blocks randomly appear in
  // different positions in the documents" (Section I).
  TemplateStyle style = base_style;
  const int date_roll = rng_->UniformInt(100);
  style.date_style = date_roll < 45 ? 0 : (date_roll < 80 ? 1 : 2);
  if (style.block_order.size() > 2 && rng_->Bernoulli(0.5)) {
    // Keep the first block (typically PInfo) anchored; shuffle the rest.
    const size_t begin = style.block_order[0] == BlockTag::kPInfo ? 1 : 0;
    for (size_t i = style.block_order.size() - 1; i > begin; --i) {
      const size_t j =
          begin + rng_->UniformInt(static_cast<int>(i - begin + 1));
      std::swap(style.block_order[i], style.block_order[j]);
    }
  }

  std::vector<LineSpec> lines;
  BlockBuilder builder(style, rng_, &lines);

  if (style.columns == 2) {
    // Sidebar: contact, skills, standalone awards.
    BuildPInfo(record, &builder, /*column=*/1);
    BuildSkillDes(record, &builder, /*column=*/1);
    BuildAwards(record, &builder, /*column=*/1);
    for (BlockTag tag : style.block_order) {
      BuildBlock(tag, record, &builder, /*column=*/0);
    }
  } else {
    for (BlockTag tag : style.block_order) {
      BuildBlock(tag, record, &builder, /*column=*/0);
    }
  }

  GeneratedResume out;
  out.record = record;
  out.template_id = style.id;
  out.document.page_width = kPageWidth;
  out.document.page_height = kPageHeight;

  // Layout: wrap each logical line into visual lines, advance per-column
  // cursors, break pages on the main flow.
  struct Cursor {
    float y = kTopMargin;
    int page = 0;
  };
  Cursor main_cursor, side_cursor;

  // Sidebar lines are emitted first in `lines` (two-column templates), and
  // reading order within a page is approximated by emission order.
  for (const LineSpec& line : lines) {
    if (line.words.empty()) continue;
    const bool sidebar = line.column == 1;
    Cursor& cursor = sidebar ? side_cursor : main_cursor;
    const float x0 = style.columns == 2
                         ? (sidebar ? kSidebarX0 : kMainX0)
                         : kSingleX0;
    const float col_width = style.columns == 2
                                ? (sidebar ? kSidebarWidth : kMainWidth)
                                : kSingleWidth;
    cursor.y += line.extra_gap;

    const float font = line.font_size;
    const float space = 0.30f * font;
    int label = line.block_label;

    size_t i = 0;
    while (i < line.words.size()) {
      // Fill one visual line.
      if (cursor.y + font > kBottomLimit) {
        cursor.y = kTopMargin;
        cursor.page += 1;
      }
      doc::Sentence sentence;
      sentence.page = cursor.page;
      std::vector<int> sent_entities;
      float x = x0;
      while (i < line.words.size()) {
        const WordSpec& w = line.words[i];
        const float width = WordWidth(w.text, font);
        if (!sentence.tokens.empty() && x + width > x0 + col_width) break;
        doc::Token token;
        token.word = w.text;
        token.box = doc::BBox{x, cursor.y, x + width, cursor.y + font};
        token.page = cursor.page;
        token.font_size = font;
        token.bold = line.bold;
        sentence.tokens.push_back(token);
        // Entity continuation across wraps keeps IOB consistency because
        // labels are per word and already B-/I- tagged.
        sent_entities.push_back(w.entity_label);
        x += width + space;
        ++i;
      }
      sentence.box = sentence.tokens.front().box;
      for (const doc::Token& t : sentence.tokens) {
        sentence.box = doc::Union(sentence.box, t.box);
      }
      out.document.sentences.push_back(std::move(sentence));
      out.document.sentence_labels.push_back(label);
      out.entity_labels.push_back(std::move(sent_entities));
      label = ContinuationLabel(label);  // wrapped continuations
      cursor.y += font * style.line_spacing;
    }
  }

  out.document.num_pages =
      1 + std::max(main_cursor.page, side_cursor.page);
  out.document.blocks =
      doc::Document::BlocksFromLabels(out.document.sentence_labels);

  // Occasional footer noise lines labeled "O".
  if (rng_->Bernoulli(0.25)) {
    for (int p = 0; p < out.document.num_pages; ++p) {
      doc::Sentence footer;
      footer.page = p;
      const std::string text = StringPrintf("Page %d / %d", p + 1,
                                            out.document.num_pages);
      float x = kPageWidth / 2 - 40.0f;
      for (const std::string& w : SplitString(text)) {
        doc::Token token;
        token.word = w;
        token.box = doc::BBox{x, 760.0f, x + WordWidth(w, 8.0f), 768.0f};
        token.page = p;
        token.font_size = 8.0f;
        footer.tokens.push_back(token);
        x += WordWidth(w, 8.0f) + 2.4f;
      }
      footer.box = footer.tokens.front().box;
      for (const doc::Token& t : footer.tokens) {
        footer.box = doc::Union(footer.box, t.box);
      }
      out.document.sentences.push_back(footer);
      out.document.sentence_labels.push_back(doc::kOutsideLabel);
      out.entity_labels.emplace_back(footer.tokens.size(), 0);
    }
  }

  RF_CHECK_EQ(out.document.sentences.size(),
              out.document.sentence_labels.size());
  RF_CHECK_EQ(out.document.sentences.size(), out.entity_labels.size());
  return out;
}

GeneratedResume GenerateResume(Rng* rng) {
  ResumeSampler sampler(rng);
  const ResumeRecord record = sampler.Sample();
  const auto& templates = BuiltinTemplates();
  const TemplateStyle& style =
      templates[rng->UniformInt(static_cast<int>(templates.size()))];
  Renderer renderer(rng);
  return renderer.Render(record, style);
}

std::string AsciiRender(const doc::Document& document,
                        const std::vector<int>& sentence_labels,
                        int max_width) {
  std::string out;
  for (int page = 0; page < document.num_pages; ++page) {
    out += StringPrintf("=== page %d ===\n", page + 1);
    // Sentences in y-then-x order for this page.
    std::vector<int> order;
    for (int i = 0; i < document.NumSentences(); ++i) {
      if (document.sentences[i].page == page) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto& sa = document.sentences[a].box;
      const auto& sb = document.sentences[b].box;
      if (sa.y0 != sb.y0) return sa.y0 < sb.y0;
      return sa.x0 < sb.x0;
    });
    for (int idx : order) {
      const doc::Sentence& s = document.sentences[idx];
      const int indent =
          static_cast<int>(s.box.x0 / document.page_width * 28.0f);
      std::string label = idx < static_cast<int>(sentence_labels.size())
                              ? doc::IobLabelName(sentence_labels[idx])
                              : "?";
      std::string text = s.Text();
      const int budget = max_width - indent - 14;
      if (static_cast<int>(text.size()) > budget && budget > 3) {
        text = text.substr(0, budget - 3) + "...";
      }
      out += StringPrintf("%-12s %s%s\n", ("[" + label + "]").c_str(),
                          std::string(indent, ' ').c_str(), text.c_str());
    }
  }
  return out;
}

}  // namespace resumegen
}  // namespace resuformer
