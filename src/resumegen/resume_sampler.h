#ifndef RESUFORMER_RESUMEGEN_RESUME_SAMPLER_H_
#define RESUFORMER_RESUMEGEN_RESUME_SAMPLER_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace resuformer {
namespace resumegen {

/// A date interval such as "2016.09 - 2019.06"; `current` renders the end
/// as "Present".
struct DateRange {
  int start_year = 2015;
  int start_month = 9;
  int end_year = 2019;
  int end_month = 6;
  bool current = false;
};

struct EducationEntry {
  std::string college;
  std::string major;
  std::string degree;
  DateRange dates;
  /// Scholarships earned during this degree — the Figure 3 case study hinges
  /// on awards being embedded inside an education block.
  std::vector<std::string> inline_awards;
};

struct WorkEntry {
  std::string company;
  std::string position;
  DateRange dates;
  std::vector<std::string> content_lines;
};

struct ProjectEntry {
  std::string name;
  DateRange dates;
  std::vector<std::string> content_lines;
};

/// The structured ground truth behind one synthetic resume.
struct ResumeRecord {
  std::string first_name;
  std::string last_name;
  std::string gender;  // "Male" / "Female"
  int age = 25;
  std::string phone;
  std::string email;
  std::string city;
  std::vector<EducationEntry> education;
  std::vector<WorkEntry> work;
  std::vector<ProjectEntry> projects;
  std::vector<std::string> skills;
  std::vector<std::string> awards;
  std::vector<std::string> summary_lines;

  std::string FullName() const { return first_name + " " + last_name; }
};

/// Rendering helper shared by the renderer and the dictionaries: the
/// canonical textual form of a date range.
std::string FormatDateRange(const DateRange& range, int style);

/// \brief Samples structured resume records from the entity pools.
///
/// Companies / positions / project names are composed from parts, so their
/// surface-form space is combinatorial; `ResumeSampler` is also the source
/// from which distant-supervision dictionaries draw a *partial* sample
/// (see distant::BuildDictionaries).
class ResumeSampler {
 public:
  explicit ResumeSampler(Rng* rng) : rng_(rng) {}

  ResumeRecord Sample() const;

  /// Individual entity samplers (used for dictionary construction and data
  /// augmentation as well).
  std::string SampleCompany() const;
  std::string SamplePosition() const;
  std::string SampleProjectName() const;
  std::string SampleFullName() const;
  DateRange SampleDateRange(int earliest_year, int latest_year) const;

 private:
  Rng* rng_;
};

}  // namespace resumegen
}  // namespace resuformer

#endif  // RESUFORMER_RESUMEGEN_RESUME_SAMPLER_H_
