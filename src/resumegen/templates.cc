#include "resumegen/templates.h"

#include "common/logging.h"

namespace resuformer {
namespace resumegen {

using doc::BlockTag;

const std::vector<TemplateStyle>& BuiltinTemplates() {
  static const auto* kTemplates = new std::vector<TemplateStyle>{
      // Style 0: classic chronological single column.
      {0,
       "classic",
       /*columns=*/1,
       /*body_font=*/10.0f,
       /*header_font=*/13.0f,
       /*name_font=*/18.0f,
       /*bold_headers=*/true,
       /*bullets=*/false,
       /*pinfo_header=*/true,
       /*date_style=*/0,
       /*header_skip_prob=*/0.15f,
       /*line_spacing=*/1.35f,
       {BlockTag::kPInfo, BlockTag::kSummary, BlockTag::kEduExp,
        BlockTag::kWorkExp, BlockTag::kProjExp, BlockTag::kSkillDes,
        BlockTag::kAwards}},
      // Style 1: two-column with a contact/skills sidebar.
      {1,
       "two-column",
       /*columns=*/2,
       /*body_font=*/9.5f,
       /*header_font=*/12.0f,
       /*name_font=*/16.0f,
       /*bold_headers=*/true,
       /*bullets=*/true,
       /*pinfo_header=*/false,
       /*date_style=*/1,
       /*header_skip_prob=*/0.35f,
       /*line_spacing=*/1.3f,
       {BlockTag::kSummary, BlockTag::kWorkExp, BlockTag::kProjExp,
        BlockTag::kEduExp}},
      // Style 2: compact, experience-first, no summary.
      {2,
       "compact",
       /*columns=*/1,
       /*body_font=*/9.0f,
       /*header_font=*/11.5f,
       /*name_font=*/14.0f,
       /*bold_headers=*/false,
       /*bullets=*/true,
       /*pinfo_header=*/false,
       /*date_style=*/1,
       /*header_skip_prob=*/0.5f,
       /*line_spacing=*/1.2f,
       {BlockTag::kPInfo, BlockTag::kWorkExp, BlockTag::kProjExp,
        BlockTag::kEduExp, BlockTag::kAwards, BlockTag::kSkillDes}},
      // Style 3: academic CV, education-first with generous spacing.
      {3,
       "academic",
       /*columns=*/1,
       /*body_font=*/10.5f,
       /*header_font=*/14.0f,
       /*name_font=*/20.0f,
       /*bold_headers=*/true,
       /*bullets=*/false,
       /*pinfo_header=*/true,
       /*date_style=*/0,
       /*header_skip_prob=*/0.1f,
       /*line_spacing=*/1.5f,
       {BlockTag::kPInfo, BlockTag::kEduExp, BlockTag::kAwards,
        BlockTag::kProjExp, BlockTag::kWorkExp, BlockTag::kSummary,
        BlockTag::kSkillDes}},
  };
  return *kTemplates;
}

const TemplateStyle& TemplateById(int id) {
  const auto& all = BuiltinTemplates();
  RF_CHECK_GE(id, 0);
  RF_CHECK_LT(id, static_cast<int>(all.size()));
  return all[id];
}

}  // namespace resumegen
}  // namespace resuformer
