#include "resumegen/resume_sampler.h"

#include <algorithm>

#include "common/string_util.h"
#include "resumegen/entity_pools.h"

namespace resuformer {
namespace resumegen {

namespace {
template <typename T>
const T& Pick(Rng* rng, const std::vector<T>& pool) {
  return pool[rng->UniformInt(static_cast<int>(pool.size()))];
}
}  // namespace

std::string FormatDateRange(const DateRange& range, int style) {
  const char* sep = style == 1 ? "/" : ".";
  std::string start =
      StringPrintf("%04d%s%02d", range.start_year, sep, range.start_month);
  std::string end =
      range.current
          ? "Present"
          : StringPrintf("%04d%s%02d", range.end_year, sep, range.end_month);
  // Style 2: compact single token ("2016.09-2019.06") — deliberately outside
  // what the date regular expressions cover, a realistic recall gap for
  // distant supervision.
  if (style == 2) return start + "-" + end;
  return start + " - " + end;
}

std::string ResumeSampler::SampleCompany() const {
  return Pick(rng_, CompanyAdjectives()) + Pick(rng_, CompanyNouns()) + " " +
         Pick(rng_, CompanySuffixes());
}

std::string ResumeSampler::SamplePosition() const {
  const std::string& level = Pick(rng_, PositionLevels());
  const std::string& role = Pick(rng_, PositionRoles());
  return level.empty() ? role : level + " " + role;
}

std::string ResumeSampler::SampleProjectName() const {
  return Pick(rng_, ProjectAdjectives()) + " " + Pick(rng_, ProjectNouns()) +
         " " + Pick(rng_, ProjectSuffixes());
}

std::string ResumeSampler::SampleFullName() const {
  return Pick(rng_, FirstNames()) + " " + Pick(rng_, LastNames());
}

DateRange ResumeSampler::SampleDateRange(int earliest_year,
                                         int latest_year) const {
  DateRange r;
  r.start_year = earliest_year + rng_->UniformInt(
                                     std::max(1, latest_year - earliest_year));
  r.start_month = 1 + rng_->UniformInt(12);
  const int duration_months = 6 + rng_->UniformInt(48);
  const int total = r.start_year * 12 + (r.start_month - 1) + duration_months;
  r.end_year = total / 12;
  r.end_month = total % 12 + 1;
  if (r.end_year >= latest_year) {
    r.end_year = latest_year;
    r.current = rng_->Bernoulli(0.4);
  }
  return r;
}

ResumeRecord ResumeSampler::Sample() const {
  ResumeRecord rec;
  rec.first_name = Pick(rng_, FirstNames());
  rec.last_name = Pick(rng_, LastNames());
  rec.gender = rng_->Bernoulli(0.5) ? "Male" : "Female";
  rec.age = 22 + rng_->UniformInt(20);
  rec.phone = StringPrintf("1%02d-%04d-%04d", rng_->UniformInt(100),
                           rng_->UniformInt(10000), rng_->UniformInt(10000));
  rec.email = ToLowerAscii(rec.first_name) + "." + ToLowerAscii(rec.last_name) +
              StringPrintf("%d", rng_->UniformInt(100)) + "@" +
              Pick(rng_, EmailDomains());
  rec.city = Pick(rng_, Cities());

  // Education: 1-2 entries, newest first.
  const int num_edu = 1 + (rng_->Bernoulli(0.35) ? 1 : 0);
  int grad_year = 2024 - rng_->UniformInt(8);
  for (int i = 0; i < num_edu; ++i) {
    EducationEntry e;
    e.college = Pick(rng_, Colleges());
    e.major = Pick(rng_, Majors());
    e.degree = Pick(rng_, Degrees());
    e.dates.end_year = grad_year;
    e.dates.end_month = 6 + rng_->UniformInt(2);
    e.dates.start_year = grad_year - (i == 0 ? 2 + rng_->UniformInt(3) : 4);
    e.dates.start_month = 9;
    if (rng_->Bernoulli(0.3)) {
      const int n = 1 + rng_->UniformInt(2);
      for (int a = 0; a < n; ++a) {
        e.inline_awards.push_back(Pick(rng_, Awards()));
      }
    }
    rec.education.push_back(e);
    grad_year = e.dates.start_year;
  }

  // Work experience: 2-4 entries.
  const int num_work = 2 + rng_->UniformInt(3);
  for (int i = 0; i < num_work; ++i) {
    WorkEntry w;
    w.company = SampleCompany();
    w.position = SamplePosition();
    w.dates = SampleDateRange(2012, 2025);
    const int n = 3 + rng_->UniformInt(3);
    for (int c = 0; c < n; ++c) {
      w.content_lines.push_back(Pick(rng_, WorkContentPhrases()));
    }
    rec.work.push_back(w);
  }

  // Projects: 1-3 entries.
  const int num_proj = 1 + rng_->UniformInt(3);
  for (int i = 0; i < num_proj; ++i) {
    ProjectEntry p;
    p.name = SampleProjectName();
    p.dates = SampleDateRange(2014, 2025);
    const int n = 2 + rng_->UniformInt(3);
    for (int c = 0; c < n; ++c) {
      p.content_lines.push_back(Pick(rng_, ProjectContentPhrases()));
    }
    rec.projects.push_back(p);
  }

  // Skills: 6-13.
  const int num_skills = 6 + rng_->UniformInt(8);
  for (int i = 0; i < num_skills; ++i) {
    rec.skills.push_back(Pick(rng_, Skills()));
  }

  // Standalone awards block: 0-3.
  const int num_awards = rng_->UniformInt(4);
  for (int i = 0; i < num_awards; ++i) {
    rec.awards.push_back(Pick(rng_, Awards()));
  }

  // Summary: 2-4 lines.
  const int num_summary = 2 + rng_->UniformInt(3);
  for (int i = 0; i < num_summary; ++i) {
    rec.summary_lines.push_back(Pick(rng_, SummaryPhrases()));
  }
  return rec;
}

}  // namespace resumegen
}  // namespace resuformer
