#ifndef RESUFORMER_RESUMEGEN_CORPUS_H_
#define RESUFORMER_RESUMEGEN_CORPUS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "resumegen/renderer.h"
#include "text/wordpiece.h"

namespace resuformer {
namespace resumegen {

/// Split sizes for corpus generation. Paper scale is 80,000 pre-training
/// documents and 1,100/500/500 fine-tuning splits (Table I); defaults here
/// are CPU-scale with the same ratios (see DESIGN.md Section 6).
struct CorpusConfig {
  int pretrain_docs = 300;
  int train_docs = 110;
  int val_docs = 50;
  int test_docs = 50;
  uint64_t seed = 17;
};

/// Generated corpus with the Table I splits.
struct Corpus {
  std::vector<GeneratedResume> pretrain;
  std::vector<GeneratedResume> train;
  std::vector<GeneratedResume> val;
  std::vector<GeneratedResume> test;
};

/// Summary statistics of one split (rows of Table I).
struct SplitStats {
  int num_docs = 0;
  double avg_tokens = 0.0;
  double avg_sentences = 0.0;
  double avg_pages = 0.0;
};

SplitStats ComputeStats(const std::vector<GeneratedResume>& docs);

/// Deterministic corpus generation from the config seed.
Corpus GenerateCorpus(const CorpusConfig& config);

/// Trains a WordPiece tokenizer on every word of the pre-training split
/// (the stand-in for the paper's pretrained RoBERTa vocabulary).
text::WordPieceTokenizer TrainTokenizer(const Corpus& corpus, int max_vocab);

}  // namespace resumegen
}  // namespace resuformer

#endif  // RESUFORMER_RESUMEGEN_CORPUS_H_
