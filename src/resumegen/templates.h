#ifndef RESUFORMER_RESUMEGEN_TEMPLATES_H_
#define RESUFORMER_RESUMEGEN_TEMPLATES_H_

#include <string>
#include <vector>

#include "doc/block_tags.h"

namespace resuformer {
namespace resumegen {

/// Visual style of a resume template (Figure 1 shows three styles; we ship
/// three plus a compact variant).
struct TemplateStyle {
  int id = 0;
  std::string name;
  int columns = 1;          // 1 = single column, 2 = sidebar + main
  float body_font = 10.0f;
  float header_font = 13.0f;
  float name_font = 18.0f;
  bool bold_headers = true;
  bool bullets = false;      // prefix content lines with "-"
  bool pinfo_header = true;  // whether PInfo gets its own section title
  int date_style = 0;        // forwarded to FormatDateRange
  /// Probability that a section title line is omitted entirely — block
  /// identity must then come from content, fonts and position, which is
  /// what makes the classification task non-trivial.
  float header_skip_prob = 0.2f;
  float line_spacing = 1.35f;
  /// Block order for the main flow (sidebar order is fixed for 2-column).
  std::vector<doc::BlockTag> block_order;
};

/// The built-in template set.
const std::vector<TemplateStyle>& BuiltinTemplates();

/// Template by id (checked).
const TemplateStyle& TemplateById(int id);

}  // namespace resumegen
}  // namespace resuformer

#endif  // RESUFORMER_RESUMEGEN_TEMPLATES_H_
