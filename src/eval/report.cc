#include "eval/report.h"

#include "common/string_util.h"

namespace resuformer {
namespace eval {

std::string PrfCell(const Prf& prf) {
  return StringPrintf("%.2f (%.2f / %.2f)", prf.f1 * 100.0,
                      prf.recall * 100.0, prf.precision * 100.0);
}

std::string F1Cell(const Prf& prf) {
  return StringPrintf("%.2f", prf.f1 * 100.0);
}

std::string LatencyCell(double seconds) {
  if (seconds < 0.0995) return StringPrintf("%.3fs", seconds);
  return StringPrintf("%.2fs", seconds);
}

}  // namespace eval
}  // namespace resuformer
