#ifndef RESUFORMER_EVAL_REPORT_H_
#define RESUFORMER_EVAL_REPORT_H_

#include <string>

#include "eval/entity_metrics.h"

namespace resuformer {
namespace eval {

/// "91.75 (95.91 / 87.93)" — the paper's F1 (Recall / Precision) cell
/// format, percentages with two decimals.
std::string PrfCell(const Prf& prf);

/// "91.75" — F1 only.
std::string F1Cell(const Prf& prf);

/// "0.27s" — latency cell.
std::string LatencyCell(double seconds);

}  // namespace eval
}  // namespace resuformer

#endif  // RESUFORMER_EVAL_REPORT_H_
