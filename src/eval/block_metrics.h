#ifndef RESUFORMER_EVAL_BLOCK_METRICS_H_
#define RESUFORMER_EVAL_BLOCK_METRICS_H_

#include <array>
#include <vector>

#include "doc/document.h"
#include "eval/entity_metrics.h"

namespace resuformer {
namespace eval {

/// \brief Area-weighted precision/recall/F1 for resume block classification
/// (Eq. 13-15), following the document layout analysis convention of
/// DocBank rather than IOB-tagging evaluation.
///
/// For each block tag c:
///   P = area(gold-c tokens within detected-c tokens) / area(detected-c),
///   R = same numerator / area(gold-c tokens).
/// A token is "detected as c" when its sentence's predicted IOB label maps
/// to tag c; token area is its bounding-box area.
class BlockScorer {
 public:
  /// Adds one document: `predicted` is the per-sentence IOB prediction; the
  /// gold comes from document.sentence_labels.
  void Add(const doc::Document& document, const std::vector<int>& predicted);

  Prf ForTag(doc::BlockTag tag) const;

  /// Area-micro-averaged score over all tags.
  Prf Overall() const;

 private:
  struct Areas {
    double intersection = 0.0;
    double detected = 0.0;
    double gold = 0.0;
  };
  std::array<Areas, doc::kNumBlockTags> per_tag_{};
};

}  // namespace eval
}  // namespace resuformer

#endif  // RESUFORMER_EVAL_BLOCK_METRICS_H_
