#ifndef RESUFORMER_EVAL_ENTITY_METRICS_H_
#define RESUFORMER_EVAL_ENTITY_METRICS_H_

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "distant/auto_annotator.h"
#include "doc/block_tags.h"

namespace resuformer {
namespace eval {

/// An entity span: token interval [start, end) of one tag.
struct EntitySpan {
  int start = 0;
  int end = 0;
  doc::EntityTag tag = doc::EntityTag::kName;

  bool operator==(const EntitySpan& other) const = default;
  bool operator<(const EntitySpan& other) const {
    return std::tie(start, end, tag) <
           std::tie(other.start, other.end, other.tag);
  }
};

/// Decodes IOB entity labels into spans (robust to orphan I- tags).
std::vector<EntitySpan> ExtractEntitySpans(const std::vector<int>& labels);

/// Precision / recall / F1 triple (Eq. 16-18).
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

Prf MakePrf(int64_t correct, int64_t predicted, int64_t gold);

/// Accumulates exact-span-match counts per entity tag and overall.
class EntityScorer {
 public:
  /// Adds one sequence's predictions vs gold (both IOB label vectors; the
  /// shorter is padded with O).
  void Add(const std::vector<int>& predicted, const std::vector<int>& gold);

  Prf Overall() const;
  Prf ForTag(doc::EntityTag tag) const;

 private:
  struct Counts {
    int64_t correct = 0;
    int64_t predicted = 0;
    int64_t gold = 0;
  };
  std::array<Counts, doc::kNumEntityTags> per_tag_{};
};

/// Evaluates a predictor over gold-labeled sequences and returns the filled
/// scorer (the Table IV/V harness loop).
EntityScorer ScoreNerPredictor(
    const std::function<std::vector<int>(const std::vector<std::string>&)>&
        predict,
    const std::vector<distant::AnnotatedSequence>& data);

}  // namespace eval
}  // namespace resuformer

#endif  // RESUFORMER_EVAL_ENTITY_METRICS_H_
