// Stopwatch and LatencyMeter are header-only; see timing.h.
#include "eval/timing.h"
