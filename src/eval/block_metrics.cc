#include "eval/block_metrics.h"

namespace resuformer {
namespace eval {

namespace {
/// Maps an IOB label to a tag index, or -1 for outside.
int TagIndex(int label) {
  doc::BlockTag tag;
  bool begin;
  if (!doc::ParseIobLabel(label, &tag, &begin)) return -1;
  return static_cast<int>(tag);
}
}  // namespace

void BlockScorer::Add(const doc::Document& document,
                      const std::vector<int>& predicted) {
  for (int s = 0; s < document.NumSentences(); ++s) {
    const int gold_tag =
        s < static_cast<int>(document.sentence_labels.size())
            ? TagIndex(document.sentence_labels[s])
            : -1;
    const int pred_tag = s < static_cast<int>(predicted.size())
                             ? TagIndex(predicted[s])
                             : -1;
    double area = 0.0;
    for (const doc::Token& t : document.sentences[s].tokens) {
      area += t.box.area();
    }
    if (pred_tag >= 0) per_tag_[pred_tag].detected += area;
    if (gold_tag >= 0) per_tag_[gold_tag].gold += area;
    if (pred_tag >= 0 && pred_tag == gold_tag) {
      per_tag_[pred_tag].intersection += area;
    }
  }
}

Prf BlockScorer::ForTag(doc::BlockTag tag) const {
  const Areas& a = per_tag_[static_cast<int>(tag)];
  Prf prf;
  if (a.detected > 0) prf.precision = a.intersection / a.detected;
  if (a.gold > 0) prf.recall = a.intersection / a.gold;
  if (prf.precision + prf.recall > 0) {
    prf.f1 = 2 * prf.precision * prf.recall / (prf.precision + prf.recall);
  }
  return prf;
}

Prf BlockScorer::Overall() const {
  Areas total;
  for (const Areas& a : per_tag_) {
    total.intersection += a.intersection;
    total.detected += a.detected;
    total.gold += a.gold;
  }
  Prf prf;
  if (total.detected > 0) prf.precision = total.intersection / total.detected;
  if (total.gold > 0) prf.recall = total.intersection / total.gold;
  if (prf.precision + prf.recall > 0) {
    prf.f1 = 2 * prf.precision * prf.recall / (prf.precision + prf.recall);
  }
  return prf;
}

}  // namespace eval
}  // namespace resuformer
