#ifndef RESUFORMER_EVAL_TIMING_H_
#define RESUFORMER_EVAL_TIMING_H_

#include <chrono>
#include <cstdint>

namespace resuformer {
namespace eval {

/// Monotonic wall-clock stopwatch for the Time/Resume rows.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Running mean of per-item latencies.
class LatencyMeter {
 public:
  void Add(double seconds) {
    total_ += seconds;
    ++count_;
  }
  double MeanSeconds() const { return count_ ? total_ / count_ : 0.0; }
  int64_t count() const { return count_; }

 private:
  double total_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace eval
}  // namespace resuformer

#endif  // RESUFORMER_EVAL_TIMING_H_
