#include "eval/entity_metrics.h"

#include <algorithm>
#include <set>

namespace resuformer {
namespace eval {

std::vector<EntitySpan> ExtractEntitySpans(const std::vector<int>& labels) {
  std::vector<EntitySpan> spans;
  size_t i = 0;
  while (i < labels.size()) {
    doc::EntityTag tag;
    bool begin;
    if (doc::ParseEntityIobLabel(labels[i], &tag, &begin)) {
      // Treat an orphan I- as starting a span (robust decoding).
      size_t j = i + 1;
      doc::EntityTag tag2;
      bool begin2;
      while (j < labels.size() &&
             doc::ParseEntityIobLabel(labels[j], &tag2, &begin2) && !begin2 &&
             tag2 == tag) {
        ++j;
      }
      spans.push_back(EntitySpan{static_cast<int>(i), static_cast<int>(j),
                                 tag});
      i = j;
    } else {
      ++i;
    }
  }
  return spans;
}

Prf MakePrf(int64_t correct, int64_t predicted, int64_t gold) {
  Prf prf;
  if (predicted > 0) {
    prf.precision = static_cast<double>(correct) / predicted;
  }
  if (gold > 0) prf.recall = static_cast<double>(correct) / gold;
  if (prf.precision + prf.recall > 0) {
    prf.f1 = 2 * prf.precision * prf.recall / (prf.precision + prf.recall);
  }
  return prf;
}

void EntityScorer::Add(const std::vector<int>& predicted,
                       const std::vector<int>& gold) {
  std::vector<int> p = predicted, g = gold;
  const size_t n = std::max(p.size(), g.size());
  p.resize(n, 0);
  g.resize(n, 0);
  const std::vector<EntitySpan> pred_spans = ExtractEntitySpans(p);
  const std::vector<EntitySpan> gold_spans = ExtractEntitySpans(g);
  std::set<EntitySpan> gold_set(gold_spans.begin(), gold_spans.end());
  for (const EntitySpan& s : pred_spans) {
    auto& c = per_tag_[static_cast<int>(s.tag)];
    ++c.predicted;
    if (gold_set.count(s)) ++c.correct;
  }
  for (const EntitySpan& s : gold_spans) {
    ++per_tag_[static_cast<int>(s.tag)].gold;
  }
}

Prf EntityScorer::Overall() const {
  int64_t correct = 0, predicted = 0, gold = 0;
  for (const Counts& c : per_tag_) {
    correct += c.correct;
    predicted += c.predicted;
    gold += c.gold;
  }
  return MakePrf(correct, predicted, gold);
}

Prf EntityScorer::ForTag(doc::EntityTag tag) const {
  const Counts& c = per_tag_[static_cast<int>(tag)];
  return MakePrf(c.correct, c.predicted, c.gold);
}

EntityScorer ScoreNerPredictor(
    const std::function<std::vector<int>(const std::vector<std::string>&)>&
        predict,
    const std::vector<distant::AnnotatedSequence>& data) {
  EntityScorer scorer;
  for (const auto& seq : data) {
    scorer.Add(predict(seq.words), seq.labels);
  }
  return scorer;
}

}  // namespace eval
}  // namespace resuformer
