#include "baselines/layout_token_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "text/vocab.h"

namespace resuformer {
namespace baselines {

namespace {

int Bucket(int coord, int buckets) {
  return std::clamp(coord * buckets / 1001, 0, buckets - 1);
}

/// Symmetric row-normalized k-NN adjacency (with self loops) over token
/// positions: neighbors by Euclidean distance in (x_center, y_center)
/// within the same page.
Tensor SpatialAdjacency(const TokenizedDoc& doc, int k) {
  const int n = static_cast<int>(doc.ids.size());
  Tensor adj = Tensor::Zeros({n, n});
  std::vector<float> cx(n), cy(n);
  std::vector<int> page(n);
  for (int i = 0; i < n; ++i) {
    cx[i] = 0.5f * (doc.layout[i][0] + doc.layout[i][2]);
    cy[i] = 0.5f * (doc.layout[i][1] + doc.layout[i][3]);
    page[i] = doc.layout[i][6];
  }
  for (int i = 0; i < n; ++i) {
    // Find k nearest same-page tokens (linear scan; n is bounded).
    std::vector<std::pair<float, int>> dist;
    dist.reserve(16);
    for (int j = 0; j < n; ++j) {
      if (j == i || page[j] != page[i]) continue;
      const float dx = cx[i] - cx[j];
      const float dy = cy[i] - cy[j];
      dist.push_back({dx * dx + dy * dy, j});
    }
    const int keep = std::min<int>(k, static_cast<int>(dist.size()));
    std::partial_sort(dist.begin(), dist.begin() + keep, dist.end());
    adj.at(i, i) = 1.0f;
    for (int t = 0; t < keep; ++t) adj.at(i, dist[t].second) = 1.0f;
  }
  // Row normalize.
  for (int i = 0; i < n; ++i) {
    float row_sum = 0.0f;
    for (int j = 0; j < n; ++j) row_sum += adj.at(i, j);
    for (int j = 0; j < n; ++j) adj.at(i, j) /= row_sum;
  }
  return adj;
}

}  // namespace

TokenTaggerBase::TokenTaggerBase(const TokenModelConfig& config,
                                 Options options,
                                 const text::WordPieceTokenizer* tokenizer,
                                 Rng* rng)
    : config_(config), options_(options), tokenizer_(tokenizer) {
  token_embedding_ =
      std::make_unique<nn::Embedding>(config.vocab_size, config.hidden, rng);
  position_embedding_ =
      std::make_unique<nn::Embedding>(config.window, config.hidden, rng);
  RegisterModule(token_embedding_.get());
  RegisterModule(position_embedding_.get());
  if (options_.use_layout) {
    for (int i = 0; i < 7; ++i) {
      layout_embeddings_.push_back(std::make_unique<nn::Embedding>(
          config.layout_buckets, config.hidden, rng));
      RegisterModule(layout_embeddings_.back().get());
    }
  }
  if (options_.use_visual) {
    visual_projection_ = std::make_unique<nn::Linear>(2, config.hidden, rng);
    RegisterModule(visual_projection_.get());
  }
  nn::TransformerConfig enc_cfg{config.hidden, config.layers,
                                config.num_heads, config.ffn, config.dropout};
  encoder_ = std::make_unique<nn::TransformerEncoder>(enc_cfg, rng);
  RegisterModule(encoder_.get());
  if (options_.use_gcn) {
    gcn1_ = std::make_unique<nn::Linear>(config.hidden, config.hidden, rng);
    gcn2_ = std::make_unique<nn::Linear>(config.hidden, config.hidden, rng);
    RegisterModule(gcn1_.get());
    RegisterModule(gcn2_.get());
  }
  head_ =
      std::make_unique<nn::Linear>(config.hidden, doc::kNumIobLabels, rng);
  RegisterModule(head_.get());
  if (options_.crf_head) {
    crf_ = std::make_unique<crf::LinearCrf>(doc::kNumIobLabels, rng);
    RegisterModule(crf_.get());
  }
  mlm_bias_ = RegisterParameter(Tensor::Zeros({config.vocab_size}));
}

Tensor TokenTaggerBase::WindowStates(const TokenizedDoc& doc, int start,
                                     int len,
                                     const std::vector<int>* ids_override,
                                     Rng* dropout_rng) const {
  std::vector<int> ids(len);
  std::vector<int> positions(len);
  for (int i = 0; i < len; ++i) {
    ids[i] = ids_override ? (*ids_override)[start + i] : doc.ids[start + i];
    positions[i] = i;
  }
  Tensor x = ops::Add(token_embedding_->Forward(ids),
                      position_embedding_->Forward(positions));
  if (options_.use_layout) {
    std::vector<int> buckets(len);
    for (int f = 0; f < 7; ++f) {
      for (int i = 0; i < len; ++i) {
        buckets[i] = Bucket(doc.layout[start + i][f], config_.layout_buckets);
      }
      x = ops::Add(x, layout_embeddings_[f]->Forward(buckets));
    }
  }
  if (options_.use_visual) {
    Tensor channels = Tensor::Zeros({len, 2});
    for (int i = 0; i < len; ++i) {
      channels.at(i, 0) = doc.font_size[start + i];
      channels.at(i, 1) = doc.bold[start + i];
    }
    x = ops::Add(x, visual_projection_->Forward(channels));
  }
  return encoder_->Forward(x, Tensor(), dropout_rng);
}

Tensor TokenTaggerBase::ContextualStates(const TokenizedDoc& doc,
                                         Rng* dropout_rng) const {
  const int n = static_cast<int>(doc.ids.size());
  RF_CHECK_GT(n, 0);
  std::vector<Tensor> windows;
  for (int start = 0; start < n; start += config_.window) {
    const int len = std::min(config_.window, n - start);
    windows.push_back(WindowStates(doc, start, len, nullptr, dropout_rng));
  }
  Tensor states = ops::ConcatRows(windows);
  if (options_.use_gcn) {
    // Two graph-convolution layers over the spatial k-NN graph: H' =
    // relu(A_hat H W) (Kipf & Welling form with row normalization).
    Tensor adj = SpatialAdjacency(doc, /*k=*/6);
    states = ops::Relu(gcn1_->Forward(ops::MatMul(adj, states)));
    states = ops::Relu(gcn2_->Forward(ops::MatMul(adj, states)));
  }
  return states;
}

Tensor TokenTaggerBase::Emissions(const TokenizedDoc& doc,
                                  Rng* dropout_rng) const {
  return head_->Forward(ContextualStates(doc, dropout_rng));
}

std::vector<int> TokenTaggerBase::PredictTokenLabels(
    const TokenizedDoc& doc) const {
  NoGradGuard guard;
  Tensor emissions = Emissions(doc, nullptr);
  if (options_.crf_head) return crf_->Decode(emissions);
  std::vector<int> labels(emissions.rows());
  for (int t = 0; t < emissions.rows(); ++t) {
    int best = 0;
    for (int c = 1; c < emissions.cols(); ++c) {
      if (emissions.at(t, c) > emissions.at(t, best)) best = c;
    }
    labels[t] = best;
  }
  return labels;
}

void TokenTaggerBase::PretrainMlm(
    const std::vector<const doc::Document*>& docs, Rng* rng) {
  if (options_.mlm_pretrain_epochs <= 0) return;
  nn::Adam adam(Parameters(), config_.lr, 0.9f, 0.999f, 1e-8f,
                config_.weight_decay);
  SetTraining(true);
  for (int epoch = 0; epoch < options_.mlm_pretrain_epochs; ++epoch) {
    const std::vector<int> order =
        rng->Permutation(static_cast<int>(docs.size()));
    for (int idx : order) {
      const TokenizedDoc doc = TokenizeFlat(*docs[idx], *tokenizer_, config_);
      const int n = static_cast<int>(doc.ids.size());
      if (n < 8) continue;
      // One random window per document per epoch.
      const int start =
          n > config_.window ? rng->UniformInt(n - config_.window) : 0;
      const int len = std::min(config_.window, n - start);
      std::vector<int> masked = doc.ids;
      std::vector<int> targets;
      std::vector<int> positions;
      for (int i = 0; i < len; ++i) {
        if (!rng->Bernoulli(0.15)) continue;
        targets.push_back(doc.ids[start + i]);
        positions.push_back(i);
        const double roll = rng->Uniform();
        if (roll < 0.8) {
          masked[start + i] = text::kMaskId;
        } else if (roll < 0.9) {
          masked[start + i] = rng->UniformInt(config_.vocab_size);
        }
      }
      if (targets.empty()) continue;
      adam.ZeroGrad();
      Tensor states = WindowStates(doc, start, len, &masked, rng);
      Tensor logits = ops::Add(
          ops::MatMulTransposedB(ops::GatherRows(states, positions),
                                 token_embedding_->weight()),
          mlm_bias_);
      Tensor loss = ops::CrossEntropy(logits, targets);
      loss.Backward();
      adam.ClipGradNorm(config_.grad_clip);
      adam.Step();
    }
  }
  SetTraining(false);
}

void TokenTaggerBase::Fit(const std::vector<const doc::Document*>& train,
                          const std::vector<const doc::Document*>& val,
                          Rng* rng) {
  // Pre-tokenize once.
  std::vector<TokenizedDoc> train_docs, val_docs;
  for (const doc::Document* d : train) {
    train_docs.push_back(TokenizeFlat(*d, *tokenizer_, config_));
  }
  for (const doc::Document* d : val) {
    val_docs.push_back(TokenizeFlat(*d, *tokenizer_, config_));
  }

  nn::Adam adam(Parameters(), config_.lr, 0.9f, 0.999f, 1e-8f,
                config_.weight_decay);
  auto val_accuracy = [&]() {
    int correct = 0, total = 0;
    for (const TokenizedDoc& d : val_docs) {
      if (d.ids.empty()) continue;
      const std::vector<int> pred = PredictTokenLabels(d);
      for (size_t i = 0; i < pred.size(); ++i) {
        correct += pred[i] == d.token_labels[i];
        ++total;
      }
    }
    return total ? static_cast<double>(correct) / total : 0.0;
  };

  const std::string snapshot =
      std::string("/tmp/rf_token_tagger_") + name() + ".bin";
  double best = -1.0;
  int bad = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    SetTraining(true);
    const std::vector<int> order =
        rng->Permutation(static_cast<int>(train_docs.size()));
    for (int idx : order) {
      const TokenizedDoc& d = train_docs[idx];
      if (d.ids.empty()) continue;
      adam.ZeroGrad();
      Tensor emissions = Emissions(d, rng);
      Tensor loss = options_.crf_head
                        ? crf_->NegLogLikelihood(emissions, d.token_labels)
                        : ops::CrossEntropy(emissions, d.token_labels);
      loss.Backward();
      adam.ClipGradNorm(config_.grad_clip);
      adam.Step();
    }
    SetTraining(false);
    const double acc = val_accuracy();
    if (acc > best) {
      best = acc;
      bad = 0;
      WarnIfError(nn::SaveParameters(*this, snapshot),
                  "layout-token snapshot save");
    } else if (++bad >= config_.patience) {
      break;
    }
  }
  if (best >= 0.0) {
    WarnIfError(nn::LoadParameters(this, snapshot),
                "layout-token snapshot restore");
  }
  SetTraining(false);
}

std::vector<int> TokenTaggerBase::LabelSentences(
    const doc::Document& document) const {
  const TokenizedDoc doc = TokenizeFlat(document, *tokenizer_, config_);
  if (doc.ids.empty()) {
    return std::vector<int>(document.NumSentences(), doc::kOutsideLabel);
  }
  return TokenLabelsToSentenceLabels(doc, PredictTokenLabels(doc));
}

}  // namespace baselines
}  // namespace resuformer
