#ifndef RESUFORMER_BASELINES_HIBERT_CRF_H_
#define RESUFORMER_BASELINES_HIBERT_CRF_H_

#include <memory>
#include <vector>

#include "baselines/common.h"
#include "crf/linear_crf.h"
#include "nn/embedding.h"
#include "nn/transformer.h"

namespace resuformer {
namespace baselines {

/// "HiBERT+CRF" baseline (Chapuis et al., 2020): a hierarchical text-only
/// encoder — sentence-level Transformer pooled at [CLS], document-level
/// Transformer over sentence vectors — with a sentence CRF. No layout, no
/// visual channel, no pre-training: this isolates the contribution of the
/// hierarchical structure itself (it shares ResuFormer's speed but not its
/// accuracy).
class HiBertCrf : public nn::Module, public BlockTagger {
 public:
  struct Config {
    int hidden = 32;
    int sentence_layers = 2;
    int document_layers = 2;
    int num_heads = 4;
    int ffn = 64;
    float dropout = 0.1f;
    int vocab_size = 2000;
    int max_tokens_per_sentence = 24;
    int max_sentences = 64;
    float lr = 1e-3f;
    float weight_decay = 0.01f;
    float grad_clip = 5.0f;
    int epochs = 8;
    int patience = 3;
  };

  HiBertCrf(const Config& config, const text::WordPieceTokenizer* tokenizer,
            Rng* rng);

  void Fit(const std::vector<const doc::Document*>& train,
           const std::vector<const doc::Document*>& val, Rng* rng) override;

  std::vector<int> LabelSentences(const doc::Document& document) const override;

  const char* name() const override { return "HiBERT+CRF"; }

 private:
  struct Encoded {
    std::vector<std::vector<int>> sentences;  // token ids with [CLS]
    std::vector<int> labels;
  };
  Encoded EncodeDoc(const doc::Document& document) const;
  Tensor Emissions(const Encoded& doc, Rng* dropout_rng) const;

  Config config_;
  const text::WordPieceTokenizer* tokenizer_;
  std::unique_ptr<nn::Embedding> token_embedding_;
  std::unique_ptr<nn::Embedding> token_position_;
  std::unique_ptr<nn::TransformerEncoder> sentence_encoder_;
  std::unique_ptr<nn::Embedding> sentence_position_;
  std::unique_ptr<nn::TransformerEncoder> document_encoder_;
  std::unique_ptr<nn::Linear> head_;
  std::unique_ptr<crf::LinearCrf> crf_;
};

}  // namespace baselines
}  // namespace resuformer

#endif  // RESUFORMER_BASELINES_HIBERT_CRF_H_
