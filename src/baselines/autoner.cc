#include "baselines/autoner.h"

#include <algorithm>

#include "common/logging.h"
#include "eval/entity_metrics.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace resuformer {
namespace baselines {

namespace {

constexpr int kTie = 0;
constexpr int kBreak = 1;
constexpr int kUnknownBoundary = -1;
constexpr int kNoneType = doc::kNumEntityTags;  // chunk type "None"

/// Boundary targets for positions 1..T-1 under the Tie-or-Break scheme
/// derived from distant IOB labels: inside a matched span -> Tie; at a span
/// edge -> Break; between two unmatched tokens -> unknown (no supervision).
std::vector<int> BoundaryTargets(const std::vector<int>& labels) {
  std::vector<int> targets(labels.size(), kUnknownBoundary);
  for (size_t t = 1; t < labels.size(); ++t) {
    doc::EntityTag tag_prev, tag_cur;
    bool begin_prev, begin_cur;
    const bool prev_entity =
        doc::ParseEntityIobLabel(labels[t - 1], &tag_prev, &begin_prev);
    const bool cur_entity =
        doc::ParseEntityIobLabel(labels[t], &tag_cur, &begin_cur);
    if (cur_entity && !begin_cur) {
      targets[t] = kTie;  // continuation inside a span
    } else if (prev_entity || cur_entity) {
      targets[t] = kBreak;  // span edge
    }
    // both outside: unknown — the scheme never claims two unmatched tokens
    // are in the same chunk.
  }
  return targets;
}

}  // namespace

AutoNer::AutoNer(const selftrain::NerModelConfig& config,
                 const text::WordPieceTokenizer* tokenizer, Rng* rng)
    : config_(config), tokenizer_(tokenizer) {
  backbone_ = std::make_unique<selftrain::NerModel>(config, rng);
  const int state_dim = 2 * config.lstm_hidden;
  boundary_head_ = std::make_unique<nn::Linear>(2 * state_dim, 2, rng);
  type_head_ =
      std::make_unique<nn::Linear>(state_dim, doc::kNumEntityTags + 1, rng);
}

Tensor AutoNer::States(const std::vector<int>& ids, Rng* dropout_rng) const {
  return backbone_->ContextualStates(ids, dropout_rng);
}

double AutoNer::Fit(const std::vector<distant::AnnotatedSequence>& train,
                    const std::vector<distant::AnnotatedSequence>& val,
                    int epochs, int patience, Rng* rng) {
  std::vector<Tensor> params = backbone_->Parameters();
  for (const Tensor& p : boundary_head_->Parameters()) params.push_back(p);
  for (const Tensor& p : type_head_->Parameters()) params.push_back(p);
  nn::Adam adam(params, config_.encoder_lr, 0.9f, 0.999f, 1e-8f,
                config_.weight_decay);
  std::vector<Tensor> head = backbone_->HeadParameters();
  for (const Tensor& p : boundary_head_->Parameters()) head.push_back(p);
  for (const Tensor& p : type_head_->Parameters()) head.push_back(p);
  adam.SetLearningRateFor(head, config_.head_lr);

  auto val_f1 = [&]() {
    return eval::ScoreNerPredictor(
               [this](const std::vector<std::string>& w) {
                 return Predict(w);
               },
               val)
        .Overall()
        .f1;
  };

  const std::string snap_backbone = "/tmp/rf_autoner_backbone.bin";
  const std::string snap_b = "/tmp/rf_autoner_bhead.bin";
  const std::string snap_t = "/tmp/rf_autoner_thead.bin";
  double best = -1.0;
  int bad = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    backbone_->SetTraining(true);
    const std::vector<int> order =
        rng->Permutation(static_cast<int>(train.size()));
    for (int idx : order) {
      const auto& seq = train[idx];
      const std::vector<int> ids =
          selftrain::EncodeWordsForNer(seq.words, *tokenizer_, config_);
      std::vector<int> labels = seq.labels;
      labels.resize(ids.size(), 0);
      const int t_len = static_cast<int>(ids.size());
      if (t_len < 2) continue;

      adam.ZeroGrad();
      Tensor states = States(ids, rng);

      // Boundary loss over supervised adjacent pairs.
      const std::vector<int> boundary = BoundaryTargets(labels);
      std::vector<int> pair_left, pair_right, pair_targets;
      for (int t = 1; t < t_len; ++t) {
        if (boundary[t] == kUnknownBoundary) continue;
        pair_left.push_back(t - 1);
        pair_right.push_back(t);
        pair_targets.push_back(boundary[t]);
      }
      std::vector<Tensor> losses;
      if (!pair_targets.empty()) {
        Tensor pairs = ops::ConcatCols({ops::GatherRows(states, pair_left),
                                        ops::GatherRows(states, pair_right)});
        losses.push_back(
            ops::CrossEntropy(boundary_head_->Forward(pairs), pair_targets));
      }

      // Type loss over matched spans (and random O singleton chunks as
      // "None" negatives).
      std::vector<Tensor> chunk_reps;
      std::vector<int> chunk_types;
      for (const eval::EntitySpan& span :
           eval::ExtractEntitySpans(labels)) {
        std::vector<int> span_rows;
        for (int t = span.start; t < span.end && t < t_len; ++t) {
          span_rows.push_back(t);
        }
        if (span_rows.empty()) continue;
        Tensor mean = ops::Scale(
            ops::MatMul(Tensor::Full({1, static_cast<int>(span_rows.size())},
                                     1.0f),
                        ops::GatherRows(states, span_rows)),
            1.0f / static_cast<float>(span_rows.size()));
        chunk_reps.push_back(mean);
        chunk_types.push_back(static_cast<int>(span.tag));
      }
      for (int t = 0; t < t_len; ++t) {
        if (labels[t] == 0 && rng->Bernoulli(0.1)) {
          chunk_reps.push_back(ops::SliceRows(states, t, 1));
          chunk_types.push_back(kNoneType);
        }
      }
      if (!chunk_reps.empty()) {
        losses.push_back(ops::CrossEntropy(
            type_head_->Forward(ops::ConcatRows(chunk_reps)), chunk_types));
      }
      if (losses.empty()) continue;
      Tensor loss = losses[0];
      for (size_t i = 1; i < losses.size(); ++i) {
        loss = ops::Add(loss, losses[i]);
      }
      loss.Backward();
      adam.ClipGradNorm(config_.grad_clip);
      adam.Step();
    }
    backbone_->SetTraining(false);
    const double f1 = val_f1();
    if (f1 > best) {
      best = f1;
      bad = 0;
      WarnIfError(nn::SaveParameters(*backbone_, snap_backbone),
                  "autoner backbone snapshot save");
      WarnIfError(nn::SaveParameters(*boundary_head_, snap_b),
                  "autoner boundary-head snapshot save");
      WarnIfError(nn::SaveParameters(*type_head_, snap_t),
                  "autoner type-head snapshot save");
    } else if (++bad >= patience) {
      break;
    }
  }
  if (best >= 0.0) {
    WarnIfError(nn::LoadParameters(backbone_.get(), snap_backbone),
                "autoner backbone snapshot restore");
    WarnIfError(nn::LoadParameters(boundary_head_.get(), snap_b),
                "autoner boundary-head snapshot restore");
    WarnIfError(nn::LoadParameters(type_head_.get(), snap_t),
                "autoner type-head snapshot restore");
  }
  backbone_->SetTraining(false);
  return best;
}

std::vector<int> AutoNer::Predict(
    const std::vector<std::string>& words) const {
  NoGradGuard guard;
  const std::vector<int> ids =
      selftrain::EncodeWordsForNer(words, *tokenizer_, config_);
  const int t_len = static_cast<int>(ids.size());
  std::vector<int> labels(t_len, 0);
  if (t_len == 0) return labels;
  Tensor states = States(ids, nullptr);

  // Predicted boundaries: break before t when the boundary head says so.
  std::vector<bool> break_before(t_len, false);
  if (t_len >= 2) {
    std::vector<int> left(t_len - 1), right(t_len - 1);
    for (int t = 1; t < t_len; ++t) {
      left[t - 1] = t - 1;
      right[t - 1] = t;
    }
    Tensor pairs = ops::ConcatCols(
        {ops::GatherRows(states, left), ops::GatherRows(states, right)});
    Tensor logits = boundary_head_->Forward(pairs);
    for (int t = 1; t < t_len; ++t) {
      break_before[t] = logits.at(t - 1, kBreak) > logits.at(t - 1, kTie);
    }
  }

  // Chunk and type.
  int start = 0;
  for (int t = 1; t <= t_len; ++t) {
    if (t == t_len || break_before[t]) {
      std::vector<int> span_rows;
      for (int i = start; i < t; ++i) span_rows.push_back(i);
      Tensor mean = ops::Scale(
          ops::MatMul(Tensor::Full({1, static_cast<int>(span_rows.size())},
                                   1.0f),
                      ops::GatherRows(states, span_rows)),
          1.0f / static_cast<float>(span_rows.size()));
      Tensor logits = type_head_->Forward(mean);
      int best_type = 0;
      for (int c = 1; c <= doc::kNumEntityTags; ++c) {
        if (logits.at(0, c) > logits.at(0, best_type)) best_type = c;
      }
      if (best_type != kNoneType) {
        for (int i = start; i < t; ++i) {
          labels[i] = doc::EntityIobLabel(
              static_cast<doc::EntityTag>(best_type), i == start);
        }
      }
      start = t;
    }
  }
  return labels;
}

}  // namespace baselines
}  // namespace resuformer
