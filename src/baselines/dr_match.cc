// DrMatch is fully inline; see dr_match.h.
#include "baselines/dr_match.h"
