// RobertaGcn is a configuration of TokenTaggerBase; see roberta_gcn.h.
#include "baselines/roberta_gcn.h"
