#include "baselines/common.h"

#include <algorithm>

#include "doc/geometry.h"

namespace resuformer {
namespace baselines {

namespace {

core::LayoutTuple MakeTuple(const doc::BBox& box, float pw, float ph,
                            int page, int num_pages) {
  core::LayoutTuple t;
  t[0] = doc::NormalizeCoord(box.x0, pw);
  t[1] = doc::NormalizeCoord(box.y0, ph);
  t[2] = doc::NormalizeCoord(box.x1, pw);
  t[3] = doc::NormalizeCoord(box.y1, ph);
  t[4] = doc::NormalizeCoord(box.width(), pw);
  t[5] = doc::NormalizeCoord(box.height(), ph);
  t[6] = std::min(page * 1000 / std::max(num_pages, 1), 1000);
  return t;
}

int DemoteToInside(int label) {
  doc::BlockTag tag;
  bool begin;
  if (!doc::ParseIobLabel(label, &tag, &begin)) return doc::kOutsideLabel;
  return doc::IobLabel(tag, /*begin=*/false);
}

}  // namespace

TokenizedDoc TokenizeFlat(const doc::Document& document,
                          const text::WordPieceTokenizer& tokenizer,
                          const TokenModelConfig& config) {
  TokenizedDoc out;
  out.num_sentences = document.NumSentences();
  const bool has_labels =
      document.sentence_labels.size() == document.sentences.size();
  for (int s = 0; s < document.NumSentences(); ++s) {
    const doc::Sentence& sentence = document.sentences[s];
    const int sentence_label =
        has_labels ? document.sentence_labels[s] : doc::kOutsideLabel;
    bool first_token_of_sentence = true;
    for (const doc::Token& token : sentence.tokens) {
      const core::LayoutTuple tuple =
          MakeTuple(token.box, document.page_width, document.page_height,
                    token.page, document.num_pages);
      for (int id : tokenizer.Encode(token.word)) {
        if (static_cast<int>(out.ids.size()) >= config.max_total_tokens) {
          return out;
        }
        out.ids.push_back(id);
        out.layout.push_back(tuple);
        out.font_size.push_back(std::min(token.font_size / 24.0f, 1.5f));
        out.bold.push_back(token.bold ? 1.0f : 0.0f);
        out.sentence_index.push_back(s);
        out.token_labels.push_back(first_token_of_sentence
                                       ? sentence_label
                                       : DemoteToInside(sentence_label));
        first_token_of_sentence = false;
      }
    }
  }
  return out;
}

std::vector<int> TokenLabelsToSentenceLabels(
    const TokenizedDoc& doc, const std::vector<int>& predicted) {
  std::vector<int> sentence_labels(doc.num_sentences, doc::kOutsideLabel);
  std::vector<int> first_token(doc.num_sentences, -1);
  // Majority block tag per sentence (index 0 = outside, 1+t = tag t).
  std::vector<std::vector<int>> votes(
      doc.num_sentences, std::vector<int>(doc::kNumBlockTags + 1, 0));
  for (size_t i = 0; i < predicted.size() && i < doc.sentence_index.size();
       ++i) {
    const int s = doc.sentence_index[i];
    if (first_token[s] < 0) first_token[s] = static_cast<int>(i);
    doc::BlockTag tag;
    bool begin;
    if (doc::ParseIobLabel(predicted[i], &tag, &begin)) {
      ++votes[s][1 + static_cast<int>(tag)];
    } else {
      ++votes[s][0];
    }
  }
  int prev_tag = -1;  // -1 = outside
  for (int s = 0; s < doc.num_sentences; ++s) {
    int best = 0;
    for (int c = 1; c <= doc::kNumBlockTags; ++c) {
      if (votes[s][c] > votes[s][best]) best = c;
    }
    if (best == 0) {
      sentence_labels[s] = doc::kOutsideLabel;
      prev_tag = -1;
      continue;
    }
    const int tag = best - 1;
    bool begins = tag != prev_tag;
    // A B- prediction on the sentence's first token splits a block even when
    // the previous sentence shares the tag (multi-entry blocks).
    if (!begins && first_token[s] >= 0 &&
        first_token[s] < static_cast<int>(predicted.size())) {
      doc::BlockTag ptag;
      bool pbegin;
      if (doc::ParseIobLabel(predicted[first_token[s]], &ptag, &pbegin) &&
          pbegin && static_cast<int>(ptag) == tag) {
        begins = true;
      }
    }
    sentence_labels[s] =
        doc::IobLabel(static_cast<doc::BlockTag>(tag), begins);
    prev_tag = tag;
  }
  return sentence_labels;
}

}  // namespace baselines
}  // namespace resuformer
