#ifndef RESUFORMER_BASELINES_LAYOUT_TOKEN_MODEL_H_
#define RESUFORMER_BASELINES_LAYOUT_TOKEN_MODEL_H_

#include <memory>
#include <vector>

#include "baselines/common.h"
#include "crf/linear_crf.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/transformer.h"

namespace resuformer {
namespace baselines {

/// \brief Shared implementation of the token-level baseline family
/// (BERT+CRF, RoBERTa+GCN, LayoutXLM-like): a flat Transformer over
/// window-chunked token streams with optional layout / visual channels, a
/// spatial GCN stage, CRF or softmax decoding, and optional MLM
/// pre-training.
///
/// These models "run on the token-level" (Section V-A5) — the whole
/// document is processed in `window`-sized chunks, which is what makes them
/// an order of magnitude slower per resume than the sentence-level systems.
class TokenTaggerBase : public nn::Module, public BlockTagger {
 public:
  struct Options {
    bool use_layout = false;
    bool use_visual = false;   // font-size / boldness channels
    bool use_gcn = false;      // spatial graph convolution stage
    bool crf_head = true;      // false -> per-token softmax
    int mlm_pretrain_epochs = 0;
  };

  TokenTaggerBase(const TokenModelConfig& config, Options options,
                  const text::WordPieceTokenizer* tokenizer, Rng* rng);

  /// MLM pre-training over unlabeled documents (enabled when
  /// options.mlm_pretrain_epochs > 0 — call before Fit).
  void PretrainMlm(const std::vector<const doc::Document*>& docs, Rng* rng);

  void Fit(const std::vector<const doc::Document*>& train,
           const std::vector<const doc::Document*>& val, Rng* rng) override;

  std::vector<int> LabelSentences(const doc::Document& document) const override;

  /// Token-level IOB predictions (exposed for tests / the case study).
  std::vector<int> PredictTokenLabels(const TokenizedDoc& doc) const;

  const TokenModelConfig& config() const { return config_; }

 protected:
  /// Contextual token states [N, hidden]: windows encoded independently,
  /// then the optional GCN mixes information across windows spatially.
  Tensor ContextualStates(const TokenizedDoc& doc, Rng* dropout_rng) const;

  /// Emissions [N, kNumIobLabels].
  Tensor Emissions(const TokenizedDoc& doc, Rng* dropout_rng) const;

  Tensor WindowStates(const TokenizedDoc& doc, int start, int len,
                      const std::vector<int>* ids_override,
                      Rng* dropout_rng) const;

  TokenModelConfig config_;
  Options options_;
  const text::WordPieceTokenizer* tokenizer_;

  std::unique_ptr<nn::Embedding> token_embedding_;
  std::unique_ptr<nn::Embedding> position_embedding_;
  std::vector<std::unique_ptr<nn::Embedding>> layout_embeddings_;
  std::unique_ptr<nn::Linear> visual_projection_;  // 2 channels -> hidden
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::Linear> gcn1_;
  std::unique_ptr<nn::Linear> gcn2_;
  std::unique_ptr<nn::Linear> head_;
  std::unique_ptr<crf::LinearCrf> crf_;
  Tensor mlm_bias_;
};

/// The "LayoutXLM"-analog baseline and KD teacher: token-level multi-modal
/// (text + 2-D layout + style channels), MLM-pretrained, softmax token
/// classification, 512-token-window chunking.
class LayoutTokenModel : public TokenTaggerBase {
 public:
  LayoutTokenModel(const TokenModelConfig& config,
                   const text::WordPieceTokenizer* tokenizer, Rng* rng,
                   int mlm_pretrain_epochs = 2)
      : TokenTaggerBase(config,
                        Options{/*use_layout=*/true, /*use_visual=*/true,
                                /*use_gcn=*/false, /*crf_head=*/false,
                                mlm_pretrain_epochs},
                        tokenizer, rng) {}

  const char* name() const override { return "LayoutXLM-like"; }
};

}  // namespace baselines
}  // namespace resuformer

#endif  // RESUFORMER_BASELINES_LAYOUT_TOKEN_MODEL_H_
