#include "baselines/bert_bilstm_crf.h"

#include "common/logging.h"
#include "eval/entity_metrics.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace resuformer {
namespace baselines {

BertBilstmCrf::BertBilstmCrf(const selftrain::NerModelConfig& config,
                             const text::WordPieceTokenizer* tokenizer,
                             bool fuzzy, Rng* rng)
    : config_(config), tokenizer_(tokenizer), fuzzy_(fuzzy) {
  backbone_ = std::make_unique<selftrain::NerModel>(config, rng);
  crf_ = std::make_unique<crf::FuzzyCrf>(config.num_labels, rng);
}

Tensor BertBilstmCrf::Emissions(const std::vector<int>& ids,
                                Rng* dropout_rng) const {
  return backbone_->Logits(ids, dropout_rng);
}

double BertBilstmCrf::Fit(
    const std::vector<distant::AnnotatedSequence>& train,
    const std::vector<distant::AnnotatedSequence>& val, int epochs,
    int patience, Rng* rng) {
  std::vector<Tensor> params = backbone_->Parameters();
  for (const Tensor& p : crf_->Parameters()) params.push_back(p);
  nn::Adam adam(params, config_.encoder_lr, 0.9f, 0.999f, 1e-8f,
                config_.weight_decay);
  std::vector<Tensor> head = backbone_->HeadParameters();
  for (const Tensor& p : crf_->Parameters()) head.push_back(p);
  adam.SetLearningRateFor(head, config_.head_lr);

  auto val_f1 = [&]() {
    eval::EntityScorer scorer = eval::ScoreNerPredictor(
        [this](const std::vector<std::string>& words) {
          return Predict(words);
        },
        val);
    return scorer.Overall().f1;
  };

  const std::string snapshot =
      std::string("/tmp/rf_bbc_") + (fuzzy_ ? "fcrf" : "crf") + ".bin";
  auto save = [&]() {
    WarnIfError(nn::SaveParameters(*backbone_, snapshot),
                "bilstm-crf backbone snapshot save");
    WarnIfError(nn::SaveParameters(*crf_, snapshot + ".crf"),
                "bilstm-crf head snapshot save");
  };
  auto load = [&]() {
    WarnIfError(nn::LoadParameters(backbone_.get(), snapshot),
                "bilstm-crf backbone snapshot restore");
    WarnIfError(nn::LoadParameters(crf_.get(), snapshot + ".crf"),
                "bilstm-crf head snapshot restore");
  };

  double best = -1.0;
  int bad = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    backbone_->SetTraining(true);
    const std::vector<int> order =
        rng->Permutation(static_cast<int>(train.size()));
    for (int idx : order) {
      const auto& seq = train[idx];
      const std::vector<int> ids =
          selftrain::EncodeWordsForNer(seq.words, *tokenizer_, config_);
      std::vector<int> labels = seq.labels;
      labels.resize(ids.size(), 0);
      adam.ZeroGrad();
      Tensor emissions = Emissions(ids, rng);
      Tensor loss;
      if (fuzzy_) {
        // Constrained lattice: matched tokens keep their distant label.
        // Unmatched tokens are ambiguous (any label) only when they are
        // *plausible entity candidates* — capitalized, digit-bearing, or
        // adjacent to a matched span — mirroring AutoNER's use of mined
        // phrases as potential entities; all other tokens are fixed to O
        // (otherwise nothing anchors the O class and precision collapses).
        auto cap = [&](size_t t) {
          return t < seq.words.size() && !seq.words[t].empty() &&
                 std::isupper(
                     static_cast<unsigned char>(seq.words[t][0])) != 0;
        };
        auto candidate = [&](size_t t) {
          const std::string& w = seq.words[t];
          if (w.empty()) return false;
          for (char c : w) {
            if (std::isdigit(static_cast<unsigned char>(c))) return true;
          }
          const bool prev_matched = t > 0 && labels[t - 1] != 0;
          const bool next_matched =
              t + 1 < ids.size() && labels[t + 1] != 0;
          if (prev_matched || next_matched) return true;
          // Capitalized *runs* (>= 2 adjacent capitalized words) look like
          // unmatched entity mentions; an isolated capitalized word is
          // usually just a sentence start and stays O.
          return cap(t) && ((t > 0 && cap(t - 1)) || cap(t + 1));
        };
        std::vector<std::vector<bool>> allowed(
            ids.size(), std::vector<bool>(config_.num_labels, false));
        for (size_t t = 0; t < ids.size(); ++t) {
          if (labels[t] != 0) {
            allowed[t][labels[t]] = true;
          } else if (t < seq.words.size() && candidate(t)) {
            allowed[t].assign(config_.num_labels, true);
          } else {
            allowed[t][0] = true;  // fixed O
          }
        }
        loss = crf_->MarginalNegLogLikelihood(emissions, allowed);
      } else {
        loss = crf_->NegLogLikelihood(emissions, labels);
      }
      loss.Backward();
      adam.ClipGradNorm(config_.grad_clip);
      adam.Step();
    }
    backbone_->SetTraining(false);
    const double f1 = val_f1();
    if (f1 > best) {
      best = f1;
      bad = 0;
      save();
    } else if (++bad >= patience) {
      break;
    }
  }
  if (best >= 0.0) load();
  backbone_->SetTraining(false);
  return best;
}

std::vector<int> BertBilstmCrf::Predict(
    const std::vector<std::string>& words) const {
  NoGradGuard guard;
  const std::vector<int> ids =
      selftrain::EncodeWordsForNer(words, *tokenizer_, config_);
  return crf_->Decode(Emissions(ids, nullptr));
}

}  // namespace baselines
}  // namespace resuformer
