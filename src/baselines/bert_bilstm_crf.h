#ifndef RESUFORMER_BASELINES_BERT_BILSTM_CRF_H_
#define RESUFORMER_BASELINES_BERT_BILSTM_CRF_H_

#include <memory>
#include <vector>

#include "crf/fuzzy_crf.h"
#include "selftrain/ner_model.h"

namespace resuformer {
namespace baselines {

/// \brief "BERT+BiLSTM+CRF" and "BERT+BiLSTM+FCRF" NER baselines.
///
/// Both reuse the NerModel backbone (Transformer + BiLSTM) but decode with
/// a linear-chain CRF. The plain variant trains the CRF on the distant
/// labels as if they were gold ("more suitable for the fully-supervised
/// scenario", hence its weakness here); the fuzzy variant treats unmatched
/// tokens as label-unknown via the constrained-lattice marginal likelihood
/// (Shang et al., 2018).
class BertBilstmCrf {
 public:
  BertBilstmCrf(const selftrain::NerModelConfig& config,
                const text::WordPieceTokenizer* tokenizer, bool fuzzy,
                Rng* rng);

  /// Trains on the distantly annotated data with early stopping on val
  /// span F1; returns the best F1.
  double Fit(const std::vector<distant::AnnotatedSequence>& train,
             const std::vector<distant::AnnotatedSequence>& val, int epochs,
             int patience, Rng* rng);

  /// Viterbi-decoded IOB entity labels for a word sequence.
  std::vector<int> Predict(const std::vector<std::string>& words) const;

  const char* name() const {
    return fuzzy_ ? "BERT+BiLSTM+FCRF" : "BERT+BiLSTM+CRF";
  }

  selftrain::NerModel* backbone() { return backbone_.get(); }

 private:
  /// Emission scores come from the backbone's logits (pre-softmax).
  Tensor Emissions(const std::vector<int>& ids, Rng* dropout_rng) const;

  selftrain::NerModelConfig config_;
  const text::WordPieceTokenizer* tokenizer_;
  bool fuzzy_;
  std::unique_ptr<selftrain::NerModel> backbone_;
  std::unique_ptr<crf::FuzzyCrf> crf_;
};

}  // namespace baselines
}  // namespace resuformer

#endif  // RESUFORMER_BASELINES_BERT_BILSTM_CRF_H_
