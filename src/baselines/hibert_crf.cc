#include "baselines/hibert_crf.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "text/vocab.h"

namespace resuformer {
namespace baselines {

HiBertCrf::HiBertCrf(const Config& config,
                     const text::WordPieceTokenizer* tokenizer, Rng* rng)
    : config_(config), tokenizer_(tokenizer) {
  token_embedding_ =
      std::make_unique<nn::Embedding>(config.vocab_size, config.hidden, rng);
  token_position_ = std::make_unique<nn::Embedding>(
      config.max_tokens_per_sentence, config.hidden, rng);
  nn::TransformerConfig sent_cfg{config.hidden, config.sentence_layers,
                                 config.num_heads, config.ffn,
                                 config.dropout};
  sentence_encoder_ =
      std::make_unique<nn::TransformerEncoder>(sent_cfg, rng);
  sentence_position_ = std::make_unique<nn::Embedding>(config.max_sentences,
                                                       config.hidden, rng);
  nn::TransformerConfig doc_cfg{config.hidden, config.document_layers,
                                config.num_heads, config.ffn, config.dropout};
  document_encoder_ = std::make_unique<nn::TransformerEncoder>(doc_cfg, rng);
  head_ =
      std::make_unique<nn::Linear>(config.hidden, doc::kNumIobLabels, rng);
  crf_ = std::make_unique<crf::LinearCrf>(doc::kNumIobLabels, rng);
  RegisterModule(token_embedding_.get());
  RegisterModule(token_position_.get());
  RegisterModule(sentence_encoder_.get());
  RegisterModule(sentence_position_.get());
  RegisterModule(document_encoder_.get());
  RegisterModule(head_.get());
  RegisterModule(crf_.get());
}

HiBertCrf::Encoded HiBertCrf::EncodeDoc(const doc::Document& document) const {
  Encoded out;
  const bool has_labels =
      document.sentence_labels.size() == document.sentences.size();
  for (int s = 0; s < document.NumSentences() &&
                  s < config_.max_sentences;
       ++s) {
    std::vector<int> ids = {text::kClsId};
    for (const doc::Token& t : document.sentences[s].tokens) {
      for (int id : tokenizer_->Encode(t.word)) {
        if (static_cast<int>(ids.size()) >=
            config_.max_tokens_per_sentence) {
          break;
        }
        ids.push_back(id);
      }
      if (static_cast<int>(ids.size()) >= config_.max_tokens_per_sentence) {
        break;
      }
    }
    out.sentences.push_back(std::move(ids));
    out.labels.push_back(has_labels ? document.sentence_labels[s]
                                    : doc::kOutsideLabel);
  }
  return out;
}

Tensor HiBertCrf::Emissions(const Encoded& doc, Rng* dropout_rng) const {
  std::vector<Tensor> reps;
  reps.reserve(doc.sentences.size());
  for (const std::vector<int>& ids : doc.sentences) {
    std::vector<int> positions(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      positions[i] = static_cast<int>(i);
    }
    Tensor x = ops::Add(token_embedding_->Forward(ids),
                        token_position_->Forward(positions));
    Tensor states = sentence_encoder_->Forward(x, Tensor(), dropout_rng);
    reps.push_back(ops::SliceRows(states, 0, 1));  // [CLS]
  }
  Tensor h = ops::ConcatRows(reps);
  std::vector<int> sentence_positions(doc.sentences.size());
  for (size_t i = 0; i < doc.sentences.size(); ++i) {
    sentence_positions[i] =
        std::min(static_cast<int>(i), config_.max_sentences - 1);
  }
  h = ops::Add(h, sentence_position_->Forward(sentence_positions));
  Tensor contextual = document_encoder_->Forward(h, Tensor(), dropout_rng);
  return head_->Forward(contextual);
}

void HiBertCrf::Fit(const std::vector<const doc::Document*>& train,
                    const std::vector<const doc::Document*>& val, Rng* rng) {
  std::vector<Encoded> train_docs, val_docs;
  for (const doc::Document* d : train) train_docs.push_back(EncodeDoc(*d));
  for (const doc::Document* d : val) val_docs.push_back(EncodeDoc(*d));

  nn::Adam adam(Parameters(), config_.lr, 0.9f, 0.999f, 1e-8f,
                config_.weight_decay);
  auto val_accuracy = [&]() {
    NoGradGuard guard;
    int correct = 0, total = 0;
    for (const Encoded& d : val_docs) {
      if (d.sentences.empty()) continue;
      const std::vector<int> pred = crf_->Decode(Emissions(d, nullptr));
      for (size_t i = 0; i < pred.size(); ++i) {
        correct += pred[i] == d.labels[i];
        ++total;
      }
    }
    return total ? static_cast<double>(correct) / total : 0.0;
  };

  const std::string snapshot = "/tmp/rf_hibert_crf.bin";
  double best = -1.0;
  int bad = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    SetTraining(true);
    const std::vector<int> order =
        rng->Permutation(static_cast<int>(train_docs.size()));
    for (int idx : order) {
      const Encoded& d = train_docs[idx];
      if (d.sentences.empty()) continue;
      adam.ZeroGrad();
      Tensor loss = crf_->NegLogLikelihood(Emissions(d, rng), d.labels);
      loss.Backward();
      adam.ClipGradNorm(config_.grad_clip);
      adam.Step();
    }
    SetTraining(false);
    const double acc = val_accuracy();
    if (acc > best) {
      best = acc;
      bad = 0;
      WarnIfError(nn::SaveParameters(*this, snapshot),
                  "hibert-crf snapshot save");
    } else if (++bad >= config_.patience) {
      break;
    }
  }
  if (best >= 0.0) {
    WarnIfError(nn::LoadParameters(this, snapshot),
                "hibert-crf snapshot restore");
  }
  SetTraining(false);
}

std::vector<int> HiBertCrf::LabelSentences(
    const doc::Document& document) const {
  NoGradGuard guard;
  const Encoded d = EncodeDoc(document);
  if (d.sentences.empty()) {
    return std::vector<int>(document.NumSentences(), doc::kOutsideLabel);
  }
  std::vector<int> labels = crf_->Decode(Emissions(d, nullptr));
  labels.resize(document.NumSentences(), doc::kOutsideLabel);
  return labels;
}

}  // namespace baselines
}  // namespace resuformer
