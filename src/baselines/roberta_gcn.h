#ifndef RESUFORMER_BASELINES_ROBERTA_GCN_H_
#define RESUFORMER_BASELINES_ROBERTA_GCN_H_

#include "baselines/layout_token_model.h"

namespace resuformer {
namespace baselines {

/// "RoBERTa+GCN" baseline (Wei et al., 2020): an MLM-pretrained token-level
/// text encoder whose states are refined by a two-layer graph convolution
/// over the spatial k-NN token graph — layout enters through the graph
/// structure rather than through embeddings.
class RobertaGcn : public TokenTaggerBase {
 public:
  RobertaGcn(const TokenModelConfig& config,
             const text::WordPieceTokenizer* tokenizer, Rng* rng,
             int mlm_pretrain_epochs = 2)
      : TokenTaggerBase(config,
                        Options{/*use_layout=*/false, /*use_visual=*/false,
                                /*use_gcn=*/true, /*crf_head=*/false,
                                mlm_pretrain_epochs},
                        tokenizer, rng) {}

  const char* name() const override { return "RoBERTa+GCN"; }
};

}  // namespace baselines
}  // namespace resuformer

#endif  // RESUFORMER_BASELINES_ROBERTA_GCN_H_
