#ifndef RESUFORMER_BASELINES_BERT_CRF_H_
#define RESUFORMER_BASELINES_BERT_CRF_H_

#include "baselines/layout_token_model.h"

namespace resuformer {
namespace baselines {

/// "BERT+CRF" baseline (Li et al., 2019): token-level text-only Transformer
/// with a CRF layer, trained from scratch on the labeled data (the paper's
/// non-pretrained text group).
class BertCrf : public TokenTaggerBase {
 public:
  BertCrf(const TokenModelConfig& config,
          const text::WordPieceTokenizer* tokenizer, Rng* rng)
      : TokenTaggerBase(config,
                        Options{/*use_layout=*/false, /*use_visual=*/false,
                                /*use_gcn=*/false, /*crf_head=*/true,
                                /*mlm_pretrain_epochs=*/0},
                        tokenizer, rng) {}

  const char* name() const override { return "BERT+CRF"; }
};

}  // namespace baselines
}  // namespace resuformer

#endif  // RESUFORMER_BASELINES_BERT_CRF_H_
