#ifndef RESUFORMER_BASELINES_DR_MATCH_H_
#define RESUFORMER_BASELINES_DR_MATCH_H_

#include <vector>

#include "distant/auto_annotator.h"

namespace resuformer {
namespace baselines {

/// "D&R Match" baseline (Section V-B3): pure dictionary string matching plus
/// regular expressions — no learning. High precision (dictionary hits are
/// almost always right) but low recall (anything outside the dictionaries is
/// invisible), which is the paper's reported failure mode.
class DrMatch {
 public:
  explicit DrMatch(const distant::EntityDictionary* dictionary)
      : annotator_(dictionary) {}

  /// IOB entity labels for a word sequence.
  std::vector<int> Predict(const std::vector<std::string>& words) const {
    return annotator_.Annotate(words);
  }

  const char* name() const { return "D&R Match"; }

 private:
  distant::AutoAnnotator annotator_;
};

}  // namespace baselines
}  // namespace resuformer

#endif  // RESUFORMER_BASELINES_DR_MATCH_H_
