#ifndef RESUFORMER_BASELINES_COMMON_H_
#define RESUFORMER_BASELINES_COMMON_H_

#include <vector>

#include "core/distiller.h"
#include "core/hierarchical_encoder.h"
#include "doc/document.h"
#include "text/wordpiece.h"

namespace resuformer {
namespace baselines {

/// Shared hyper-parameters for the token-level baseline family. `window` is
/// the analog of the 512-token limit of BERT/LayoutXLM: documents longer
/// than one window are processed "token by token loop" in chunks, which is
/// the root of the latency gap Table II reports.
struct TokenModelConfig {
  int hidden = 32;
  int layers = 2;
  int num_heads = 4;
  int ffn = 64;
  float dropout = 0.1f;
  int vocab_size = 2000;
  int window = 256;
  int max_total_tokens = 1024;
  int layout_buckets = 33;
  float lr = 1e-3f;
  float weight_decay = 0.01f;
  float grad_clip = 5.0f;
  int epochs = 8;
  int patience = 3;
};

/// A document flattened to one token stream (the representation every
/// token-level baseline consumes).
struct TokenizedDoc {
  std::vector<int> ids;
  std::vector<core::LayoutTuple> layout;
  std::vector<float> font_size;      // /24, like the visual features
  std::vector<float> bold;
  std::vector<int> sentence_index;   // provenance for label conversion
  std::vector<int> token_labels;     // block IOB broadcast from sentences
  int num_sentences = 0;
};

/// Flattens a document: WordPiece ids, per-token layout, style channels and
/// token-level labels (first token of a labeled sentence keeps B-, the rest
/// demote to I-).
TokenizedDoc TokenizeFlat(const doc::Document& document,
                          const text::WordPieceTokenizer& tokenizer,
                          const TokenModelConfig& config);

/// Converts token-level predictions back to sentence-level IOB labels:
/// majority block tag per sentence; a sentence opens a new block when its
/// first token carries a B- prediction or its tag differs from the previous
/// sentence.
std::vector<int> TokenLabelsToSentenceLabels(const TokenizedDoc& doc,
                                             const std::vector<int>& predicted);

/// Common interface for Table II systems: trainable on gold-labeled
/// documents, and usable as a KD teacher through core::SentenceLabeler.
class BlockTagger : public core::SentenceLabeler {
 public:
  /// Trains on documents carrying gold `sentence_labels`; `val` drives
  /// early stopping.
  virtual void Fit(const std::vector<const doc::Document*>& train,
                   const std::vector<const doc::Document*>& val, Rng* rng) = 0;

  virtual const char* name() const = 0;
};

}  // namespace baselines
}  // namespace resuformer

#endif  // RESUFORMER_BASELINES_COMMON_H_
