// BertCrf is a configuration of TokenTaggerBase; see bert_crf.h.
#include "baselines/bert_crf.h"
