#ifndef RESUFORMER_BASELINES_AUTONER_H_
#define RESUFORMER_BASELINES_AUTONER_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "selftrain/ner_model.h"

namespace resuformer {
namespace baselines {

/// \brief AutoNER baseline (Shang et al., 2018): distantly supervised NER
/// with the "Tie or Break" tagging scheme instead of IOB.
///
/// Two heads over a shared encoder:
///   * a boundary head classifies each adjacent token pair as Tie (same
///     chunk) or Break; pairs whose status is unknown under the distant
///     annotation contribute no loss ("unknown" is the scheme's way of
///     absorbing dictionary misses);
///   * a type head classifies each chunk (mean-pooled span representation)
///     into an entity tag or None.
/// Inference: split at predicted Breaks, type each chunk, emit IOB.
class AutoNer {
 public:
  AutoNer(const selftrain::NerModelConfig& config,
          const text::WordPieceTokenizer* tokenizer, Rng* rng);

  /// Trains on distant annotations with early stopping on val span F1.
  double Fit(const std::vector<distant::AnnotatedSequence>& train,
             const std::vector<distant::AnnotatedSequence>& val, int epochs,
             int patience, Rng* rng);

  std::vector<int> Predict(const std::vector<std::string>& words) const;

  const char* name() const { return "AutoNER"; }

 private:
  /// Contextual states [T, hidden] from the shared backbone encoder.
  Tensor States(const std::vector<int>& ids, Rng* dropout_rng) const;

  selftrain::NerModelConfig config_;
  const text::WordPieceTokenizer* tokenizer_;
  std::unique_ptr<selftrain::NerModel> backbone_;
  std::unique_ptr<nn::Linear> boundary_head_;  // [2h] -> {tie, break}
  std::unique_ptr<nn::Linear> type_head_;      // [h] -> tags + none
};

}  // namespace baselines
}  // namespace resuformer

#endif  // RESUFORMER_BASELINES_AUTONER_H_
