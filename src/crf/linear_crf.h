#ifndef RESUFORMER_CRF_LINEAR_CRF_H_
#define RESUFORMER_CRF_LINEAR_CRF_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace resuformer {
namespace crf {

/// \brief Linear-chain conditional random field layer.
///
/// Score of a path y for emissions e [T, L]:
///   start[y_0] + sum_t e[t, y_t] + sum_t trans[y_t, y_{t+1}] + end[y_{T-1}]
///
/// NegLogLikelihood computes -log p(y | e) with the forward algorithm in
/// log space and backpropagates exact marginal gradients into the emissions
/// and the transition parameters (Lafferty et al., 2001). Decode runs
/// Viterbi.
class LinearCrf : public nn::Module {
 public:
  LinearCrf(int num_labels, Rng* rng);

  /// Mean (over the sequence) negative log-likelihood of the gold labels.
  Tensor NegLogLikelihood(const Tensor& emissions,
                          const std::vector<int>& labels) const;

  /// Most likely label sequence for the emissions (no autograd).
  std::vector<int> Decode(const Tensor& emissions) const;

  int num_labels() const { return num_labels_; }
  const Tensor& transitions() const { return transitions_; }

 protected:
  int num_labels_;
  Tensor transitions_;  // [L, L], trans[i][j] = score of i -> j
  Tensor start_;        // [L]
  Tensor end_;          // [L]
};

}  // namespace crf
}  // namespace resuformer

#endif  // RESUFORMER_CRF_LINEAR_CRF_H_
