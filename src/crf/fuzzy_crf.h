#ifndef RESUFORMER_CRF_FUZZY_CRF_H_
#define RESUFORMER_CRF_FUZZY_CRF_H_

#include <vector>

#include "crf/linear_crf.h"

namespace resuformer {
namespace crf {

/// \brief Fuzzy (partial / constrained-lattice) CRF for distant supervision
/// (Shang et al., 2018).
///
/// Instead of one gold path, each position carries a *set* of permitted
/// labels; the objective maximizes the total probability of all paths that
/// stay inside the lattice:
///   loss = log Z  -  log Z_constrained.
/// Positions with unknown labels simply allow every label, which is how
/// unmatched tokens in distantly-annotated data are handled.
class FuzzyCrf : public LinearCrf {
 public:
  FuzzyCrf(int num_labels, Rng* rng) : LinearCrf(num_labels, rng) {}

  /// allowed[t][l] == true iff label l is permitted at position t. Each
  /// position must allow at least one label.
  Tensor MarginalNegLogLikelihood(
      const Tensor& emissions,
      const std::vector<std::vector<bool>>& allowed) const;
};

}  // namespace crf
}  // namespace resuformer

#endif  // RESUFORMER_CRF_FUZZY_CRF_H_
