#include "crf/linear_crf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/trace.h"

namespace resuformer {
namespace crf {

namespace {

double LogSumExp(const std::vector<double>& v) {
  double mx = v[0];
  for (double x : v) mx = std::max(mx, x);
  double total = 0.0;
  for (double x : v) total += std::exp(x - mx);
  return mx + std::log(total);
}

/// Forward messages alpha[t][j] = log sum over paths ending at (t, j).
std::vector<std::vector<double>> ForwardMessages(const float* e, int t_len,
                                                 int num_labels,
                                                 const float* trans,
                                                 const float* start) {
  std::vector<std::vector<double>> alpha(t_len,
                                         std::vector<double>(num_labels));
  for (int j = 0; j < num_labels; ++j) alpha[0][j] = start[j] + e[j];
  std::vector<double> scratch(num_labels);
  for (int t = 1; t < t_len; ++t) {
    for (int j = 0; j < num_labels; ++j) {
      for (int i = 0; i < num_labels; ++i) {
        scratch[i] = alpha[t - 1][i] + trans[i * num_labels + j];
      }
      alpha[t][j] = LogSumExp(scratch) + e[t * num_labels + j];
    }
  }
  return alpha;
}

/// Backward messages beta[t][i] = log sum over paths starting at (t, i),
/// excluding e[t][i] itself but including the end scores.
std::vector<std::vector<double>> BackwardMessages(const float* e, int t_len,
                                                  int num_labels,
                                                  const float* trans,
                                                  const float* end) {
  std::vector<std::vector<double>> beta(t_len,
                                        std::vector<double>(num_labels));
  for (int i = 0; i < num_labels; ++i) beta[t_len - 1][i] = end[i];
  std::vector<double> scratch(num_labels);
  for (int t = t_len - 2; t >= 0; --t) {
    for (int i = 0; i < num_labels; ++i) {
      for (int j = 0; j < num_labels; ++j) {
        scratch[j] = trans[i * num_labels + j] + e[(t + 1) * num_labels + j] +
                     beta[t + 1][j];
      }
      beta[t][i] = LogSumExp(scratch);
    }
  }
  return beta;
}

}  // namespace

LinearCrf::LinearCrf(int num_labels, Rng* rng) : num_labels_(num_labels) {
  transitions_ = RegisterParameter(
      Tensor::Randn({num_labels, num_labels}, rng, 0.01f));
  start_ = RegisterParameter(Tensor::Randn({num_labels}, rng, 0.01f));
  end_ = RegisterParameter(Tensor::Randn({num_labels}, rng, 0.01f));
}

Tensor LinearCrf::NegLogLikelihood(const Tensor& emissions,
                                   const std::vector<int>& labels) const {
  const int t_len = emissions.rows();
  const int num_labels = num_labels_;
  RF_CHECK_EQ(emissions.cols(), num_labels);
  RF_CHECK_EQ(static_cast<int>(labels.size()), t_len);
  RF_CHECK_GT(t_len, 0);

  const float* e = emissions.data();
  const float* trans = transitions_.data();
  const float* start = start_.data();
  const float* end = end_.data();

  const auto alpha = ForwardMessages(e, t_len, num_labels, trans, start);
  std::vector<double> final_scores(num_labels);
  for (int j = 0; j < num_labels; ++j) {
    final_scores[j] = alpha[t_len - 1][j] + end[j];
  }
  const double log_z = LogSumExp(final_scores);

  double gold = start[labels[0]] + e[labels[0]];
  for (int t = 1; t < t_len; ++t) {
    gold += trans[labels[t - 1] * num_labels + labels[t]] +
            e[t * num_labels + labels[t]];
  }
  gold += end[labels[t_len - 1]];

  // Build the loss node with a custom backward computing exact marginals.
  Tensor loss = Tensor::Zeros({1});
  loss.data()[0] = static_cast<float>((log_z - gold) / t_len);
  const bool needs_grad =
      NoGradGuard::GradEnabled() &&
      (emissions.requires_grad() || transitions_.requires_grad());
  if (!needs_grad) return loss;

  loss.impl()->requires_grad = true;
  loss.impl()->parents = {emissions.impl(), transitions_.impl(),
                          start_.impl(), end_.impl()};
  TensorImpl* self = loss.impl().get();
  auto ei = emissions.impl();
  auto ti = transitions_.impl();
  auto si = start_.impl();
  auto ni = end_.impl();
  self->backward_fn = [self, ei, ti, si, ni, t_len, num_labels, labels,
                       alpha, log_z]() {
    const float g = self->grad[0] / t_len;
    const float* e = ei->data_ptr();
    const float* trans = ti->data_ptr();
    const float* end = ni->data_ptr();
    const auto beta = BackwardMessages(e, t_len, num_labels, trans, end);

    // Unary marginals P(y_t = j).
    if (ei->requires_grad) {
      ei->EnsureGrad();
      for (int t = 0; t < t_len; ++t) {
        for (int j = 0; j < num_labels; ++j) {
          const double logp = alpha[t][j] + beta[t][j] - log_z;
          ei->grad[t * num_labels + j] +=
              g * static_cast<float>(std::exp(logp));
        }
        ei->grad[t * num_labels + labels[t]] -= g;
      }
    }
    // Pairwise marginals P(y_t = i, y_{t+1} = j).
    if (ti->requires_grad) {
      ti->EnsureGrad();
      for (int t = 0; t + 1 < t_len; ++t) {
        for (int i = 0; i < num_labels; ++i) {
          for (int j = 0; j < num_labels; ++j) {
            const double logp = alpha[t][i] + trans[i * num_labels + j] +
                                e[(t + 1) * num_labels + j] +
                                beta[t + 1][j] - log_z;
            ti->grad[i * num_labels + j] +=
                g * static_cast<float>(std::exp(logp));
          }
        }
        ti->grad[labels[t] * num_labels + labels[t + 1]] -= g;
      }
    }
    if (si->requires_grad) {
      si->EnsureGrad();
      for (int j = 0; j < num_labels; ++j) {
        const double logp = alpha[0][j] + beta[0][j] - log_z;
        si->grad[j] += g * static_cast<float>(std::exp(logp));
      }
      si->grad[labels[0]] -= g;
    }
    if (ni->requires_grad) {
      ni->EnsureGrad();
      for (int j = 0; j < num_labels; ++j) {
        const double logp = alpha[t_len - 1][j] + beta[t_len - 1][j] - log_z;
        ni->grad[j] += g * static_cast<float>(std::exp(logp));
      }
      ni->grad[labels[t_len - 1]] -= g;
    }
  };
  return loss;
}

std::vector<int> LinearCrf::Decode(const Tensor& emissions) const {
  TRACE_SPAN("crf.decode");
  const int t_len = emissions.rows();
  const int num_labels = num_labels_;
  RF_CHECK_EQ(emissions.cols(), num_labels);
  RF_CHECK_GT(t_len, 0);
  const float* e = emissions.data();
  const float* trans = transitions_.data();

  std::vector<std::vector<double>> score(t_len,
                                         std::vector<double>(num_labels));
  std::vector<std::vector<int>> back(t_len, std::vector<int>(num_labels, 0));
  for (int j = 0; j < num_labels; ++j) {
    score[0][j] = start_.data()[j] + e[j];
  }
  for (int t = 1; t < t_len; ++t) {
    for (int j = 0; j < num_labels; ++j) {
      double best = -1e30;
      int arg = 0;
      for (int i = 0; i < num_labels; ++i) {
        const double s = score[t - 1][i] + trans[i * num_labels + j];
        if (s > best) {
          best = s;
          arg = i;
        }
      }
      score[t][j] = best + e[t * num_labels + j];
      back[t][j] = arg;
    }
  }
  double best = -1e30;
  int arg = 0;
  for (int j = 0; j < num_labels; ++j) {
    const double s = score[t_len - 1][j] + end_.data()[j];
    if (s > best) {
      best = s;
      arg = j;
    }
  }
  std::vector<int> path(t_len);
  path[t_len - 1] = arg;
  for (int t = t_len - 1; t > 0; --t) path[t - 1] = back[t][path[t]];
  return path;
}

}  // namespace crf
}  // namespace resuformer
