#include "crf/fuzzy_crf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace resuformer {
namespace crf {

namespace {

constexpr double kNegInf = -1e30;

double LogSumExp(const std::vector<double>& v) {
  double mx = v[0];
  for (double x : v) mx = std::max(mx, x);
  if (mx <= kNegInf / 2) return kNegInf;
  double total = 0.0;
  for (double x : v) total += std::exp(x - mx);
  return mx + std::log(total);
}

struct LatticeResult {
  std::vector<std::vector<double>> alpha;
  std::vector<std::vector<double>> beta;
  double log_z = 0.0;
};

/// Forward-backward over an optionally constrained lattice. `allowed` may be
/// null for the unconstrained partition function.
LatticeResult RunLattice(const float* e, int t_len, int num_labels,
                         const float* trans, const float* start,
                         const float* end,
                         const std::vector<std::vector<bool>>* allowed) {
  auto ok = [&](int t, int j) {
    return allowed == nullptr || (*allowed)[t][j];
  };
  LatticeResult r;
  r.alpha.assign(t_len, std::vector<double>(num_labels, kNegInf));
  r.beta.assign(t_len, std::vector<double>(num_labels, kNegInf));
  for (int j = 0; j < num_labels; ++j) {
    if (ok(0, j)) r.alpha[0][j] = start[j] + e[j];
  }
  std::vector<double> scratch(num_labels);
  for (int t = 1; t < t_len; ++t) {
    for (int j = 0; j < num_labels; ++j) {
      if (!ok(t, j)) continue;
      for (int i = 0; i < num_labels; ++i) {
        scratch[i] = r.alpha[t - 1][i] + trans[i * num_labels + j];
      }
      const double lse = LogSumExp(scratch);
      r.alpha[t][j] = lse <= kNegInf / 2 ? kNegInf
                                         : lse + e[t * num_labels + j];
    }
  }
  for (int i = 0; i < num_labels; ++i) {
    if (ok(t_len - 1, i)) r.beta[t_len - 1][i] = end[i];
  }
  for (int t = t_len - 2; t >= 0; --t) {
    for (int i = 0; i < num_labels; ++i) {
      if (!ok(t, i)) continue;
      for (int j = 0; j < num_labels; ++j) {
        scratch[j] = ok(t + 1, j)
                         ? trans[i * num_labels + j] +
                               e[(t + 1) * num_labels + j] + r.beta[t + 1][j]
                         : kNegInf;
      }
      r.beta[t][i] = LogSumExp(scratch);
    }
  }
  std::vector<double> finals(num_labels);
  for (int j = 0; j < num_labels; ++j) {
    finals[j] = r.alpha[t_len - 1][j] + end[j];
  }
  r.log_z = LogSumExp(finals);
  return r;
}

}  // namespace

Tensor FuzzyCrf::MarginalNegLogLikelihood(
    const Tensor& emissions,
    const std::vector<std::vector<bool>>& allowed) const {
  const int t_len = emissions.rows();
  const int num_labels = num_labels_;
  RF_CHECK_EQ(emissions.cols(), num_labels);
  RF_CHECK_EQ(static_cast<int>(allowed.size()), t_len);
  for (const auto& row : allowed) {
    RF_CHECK_EQ(static_cast<int>(row.size()), num_labels);
    bool any = false;
    for (bool b : row) any = any || b;
    RF_CHECK(any) << "every position must allow at least one label";
  }

  const float* e = emissions.data();
  const float* trans = transitions_.data();
  const float* start = start_.data();
  const float* end = end_.data();

  const LatticeResult full =
      RunLattice(e, t_len, num_labels, trans, start, end, nullptr);
  const LatticeResult constrained =
      RunLattice(e, t_len, num_labels, trans, start, end, &allowed);

  Tensor loss = Tensor::Zeros({1});
  loss.data()[0] =
      static_cast<float>((full.log_z - constrained.log_z) / t_len);

  const bool needs_grad =
      NoGradGuard::GradEnabled() &&
      (emissions.requires_grad() || transitions_.requires_grad());
  if (!needs_grad) return loss;

  loss.impl()->requires_grad = true;
  loss.impl()->parents = {emissions.impl(), transitions_.impl(),
                          start_.impl(), end_.impl()};
  TensorImpl* self = loss.impl().get();
  auto ei = emissions.impl();
  auto ti = transitions_.impl();
  auto si = start_.impl();
  auto ni = end_.impl();
  self->backward_fn = [self, ei, ti, si, ni, t_len, num_labels, full,
                       constrained]() {
    const float g = self->grad[0] / t_len;
    const float* e = ei->data_ptr();
    const float* trans = ti->data_ptr();

    auto marginal = [&](const LatticeResult& r, int t, int j) {
      const double logp = r.alpha[t][j] + r.beta[t][j] - r.log_z;
      return logp <= kNegInf / 2 ? 0.0 : std::exp(logp);
    };
    auto pair_marginal = [&](const LatticeResult& r, int t, int i, int j) {
      const double logp = r.alpha[t][i] + trans[i * num_labels + j] +
                          e[(t + 1) * num_labels + j] + r.beta[t + 1][j] -
                          r.log_z;
      return logp <= kNegInf / 2 ? 0.0 : std::exp(logp);
    };

    if (ei->requires_grad) {
      ei->EnsureGrad();
      for (int t = 0; t < t_len; ++t) {
        for (int j = 0; j < num_labels; ++j) {
          ei->grad[t * num_labels + j] += g * static_cast<float>(
              marginal(full, t, j) - marginal(constrained, t, j));
        }
      }
    }
    if (ti->requires_grad) {
      ti->EnsureGrad();
      for (int t = 0; t + 1 < t_len; ++t) {
        for (int i = 0; i < num_labels; ++i) {
          for (int j = 0; j < num_labels; ++j) {
            ti->grad[i * num_labels + j] += g * static_cast<float>(
                pair_marginal(full, t, i, j) -
                pair_marginal(constrained, t, i, j));
          }
        }
      }
    }
    if (si->requires_grad) {
      si->EnsureGrad();
      for (int j = 0; j < num_labels; ++j) {
        si->grad[j] += g * static_cast<float>(marginal(full, 0, j) -
                                              marginal(constrained, 0, j));
      }
    }
    if (ni->requires_grad) {
      ni->EnsureGrad();
      for (int j = 0; j < num_labels; ++j) {
        ni->grad[j] += g * static_cast<float>(
            marginal(full, t_len - 1, j) -
            marginal(constrained, t_len - 1, j));
      }
    }
  };
  return loss;
}

}  // namespace crf
}  // namespace resuformer
