#include "pipeline/pipeline.h"

#include <fstream>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "distant/dictionary.h"
#include "nn/serialize.h"
#include "tensor/arena.h"

namespace resuformer {
namespace pipeline {

namespace {

std::string ManifestPath(const std::string& directory) {
  return directory + "/manifest.txt";
}

/// Architecture fields persisted by Save and verified by Load. The value is
/// whatever the supplied options resolve to; vocab_size comes from the
/// trained tokenizer, not the (placeholder) config field.
std::vector<std::pair<std::string, int64_t>> ManifestFields(
    int vocab_size, const PipelineOptions& options) {
  const core::ResuFormerConfig& m = options.model;
  const selftrain::NerModelConfig& n = options.ner;
  return {
      {"vocab_size", vocab_size},
      {"model_hidden", m.hidden},
      {"model_sentence_layers", m.sentence_layers},
      {"model_document_layers", m.document_layers},
      {"model_num_heads", m.num_heads},
      {"model_ffn", m.ffn},
      {"model_max_tokens", m.max_tokens_per_sentence},
      {"model_max_sentences", m.max_sentences},
      {"model_layout_buckets", m.layout_buckets},
      {"model_lstm_hidden", m.lstm_hidden},
      {"ner_hidden", n.hidden},
      {"ner_layers", n.layers},
      {"ner_num_heads", n.num_heads},
      {"ner_ffn", n.ffn},
      {"ner_max_tokens", n.max_tokens},
      {"ner_lstm_hidden", n.lstm_hidden},
      {"ner_num_labels", n.num_labels},
  };
}

/// Stamps wall time and the arena hit rate over [start_ns, now] into stats.
/// The rate diffs the *calling thread's* arena counters: a parse runs
/// entirely on one thread, so the window sees only this document's
/// allocations even when ParseBatchWithStats parses documents concurrently
/// (the process-wide counters would mix every worker's traffic).
void FinalizeParseStats(int64_t start_ns,
                        const TensorArena::ThreadStats& before,
                        ParseStats* stats) {
  stats->wall_time_us =
      static_cast<double>(trace::NowNs() - start_ns) / 1000.0;
  const TensorArena::ThreadStats after = TensorArena::thread_stats();
  const int64_t hits = after.hits - before.hits;
  const int64_t misses = after.misses - before.misses;
  if (hits + misses > 0) {
    stats->arena_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
}

}  // namespace

std::unique_ptr<ResuFormerPipeline> ResuFormerPipeline::TrainFromCorpus(
    const resumegen::Corpus& corpus, const PipelineOptions& options,
    TrainReport* report) {
  auto pipeline =
      // Private ctor: make_unique cannot reach it; ownership is immediate.
      // rf-lint-allow(naked-new)
      std::unique_ptr<ResuFormerPipeline>(new ResuFormerPipeline());
  pipeline->options_ = options;
  Rng rng(options.seed);

  // Tokenizer from the pre-training corpus.
  pipeline->tokenizer_ = std::make_unique<text::WordPieceTokenizer>(
      resumegen::TrainTokenizer(corpus, options.vocab_size));
  core::ResuFormerConfig model_cfg = options.model;
  model_cfg.vocab_size = pipeline->tokenizer_->vocab().size();

  // Stage 1: pre-train the hierarchical encoder (Eq. 7).
  pipeline->block_classifier_ =
      std::make_unique<core::BlockClassifier>(model_cfg, &rng);
  std::vector<core::EncodedDocument> pretrain_docs;
  for (const resumegen::GeneratedResume& r : corpus.pretrain) {
    pretrain_docs.push_back(core::EncodeForModel(
        r.document, *pipeline->tokenizer_, model_cfg));
  }
  core::Pretrainer pretrainer(pipeline->block_classifier_->encoder(), &rng);
  core::PretrainStats pretrain_stats;
  if (!pretrain_docs.empty() && options.pretrain_epochs > 0) {
    pretrain_stats =
        pretrainer.Train(pretrain_docs, options.pretrain_epochs,
                         options.pretrain_batch, model_cfg.pretrain_lr);
  }

  // Stage 2: fine-tune the block classifier on labeled data.
  std::vector<core::LabeledDocument> train, val;
  for (const resumegen::GeneratedResume& r : corpus.train) {
    train.push_back(core::MakeLabeledDocument(
        r.document, *pipeline->tokenizer_, model_cfg));
  }
  for (const resumegen::GeneratedResume& r : corpus.val) {
    val.push_back(core::MakeLabeledDocument(r.document,
                                            *pipeline->tokenizer_,
                                            model_cfg));
  }
  const double block_acc = core::FinetuneBlockClassifier(
      pipeline->block_classifier_.get(), train, val, options.finetune, &rng);

  // Stage 3: distantly supervised NER with self-distillation.
  const distant::EntityDictionary dictionary =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  const distant::NerDataset ner_data =
      distant::BuildNerDataset(options.ner_data, dictionary);
  selftrain::NerModelConfig ner_cfg = options.ner;
  ner_cfg.vocab_size = pipeline->tokenizer_->vocab().size();
  selftrain::SelfDistillTrainer trainer(ner_cfg, options.selftrain,
                                        pipeline->tokenizer_.get(), &rng);
  selftrain::SelfTrainResult result =
      trainer.Train(ner_data.train, ner_data.val);
  pipeline->ner_model_ = std::move(result.model);

  // use_int8 implies plan routing: the int8 kernels only exist inside plan
  // replay, and unplannable documents still fall back to dynamic fp32.
  if (options.model.runtime.use_inference_plan ||
      options.model.runtime.use_int8) {
    pipeline->planner_ = std::make_unique<core::InferencePlanner>(
        pipeline->block_classifier_.get());
  }

  if (report != nullptr) {
    report->pretrain = pretrain_stats;
    report->block_val_accuracy = block_acc;
    report->ner_val_f1 = result.best_val_f1;
  }
  return pipeline;
}

ParseResponse ResuFormerPipeline::Parse(const ParseRequest& request) const {
  // Request-scoped span annotated with the serving id (0 outside the
  // server), so a slow-trace exemplar ties wire frames to pipeline spans.
  TRACE_SPAN_ID("pipeline.request", request.request_id);
  ParseResponse response;
  response.request_id = request.request_id;
  if (request.deadline_ns != 0 && trace::NowNs() > request.deadline_ns) {
    static metrics::Counter* deadline_counter =
        metrics::MetricsRegistry::Global().GetCounter(
            "pipeline.rejected.deadline");
    deadline_counter->Increment();
    response.status = Status::DeadlineExceeded(
        "parse deadline passed before the document was parsed");
    return response;
  }
  ParseResult result = ParseDocument(request.document);
  response.resume = std::move(result.resume);
  if (request.want_stats) {
    response.stats = result.stats;
    response.stats.request_id = request.request_id;
  }
  return response;
}

std::vector<ParseResponse> ResuFormerPipeline::Parse(
    const std::vector<ParseRequest>& requests) const {
  TRACE_SPAN("pipeline.parse_batch");
  std::vector<ParseResponse> out(requests.size());
  // Parallelism moves up a level for batches: each worker takes a chunk of
  // requests, and the per-request tensor kernels run inline (ParallelFor
  // from a pool worker does not nest). NoGradGuard state is thread-local,
  // so each worker needs its own guard.
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(requests.size()),
      [&](int /*worker*/, int64_t begin, int64_t end) {
        NoGradGuard no_grad;
        for (int64_t i = begin; i < end; ++i) {
          out[i] = Parse(requests[i]);
        }
      });
  return out;
}

StructuredResume ResuFormerPipeline::Parse(
    const doc::Document& document) const {
  return ParseDocument(document).resume;
}

ParseResult ResuFormerPipeline::ParseWithStats(
    const doc::Document& document) const {
  return ParseDocument(document);
}

ParseResult ResuFormerPipeline::ParseDocument(
    const doc::Document& document) const {
  TRACE_SPAN("pipeline.parse");
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter* documents_counter =
      registry.GetCounter("pipeline.documents");
  static metrics::Counter* sentences_counter =
      registry.GetCounter("pipeline.sentences");
  static metrics::Counter* blocks_counter =
      registry.GetCounter("pipeline.blocks");
  static metrics::Counter* entities_counter =
      registry.GetCounter("pipeline.entities");
  static metrics::Histogram* parse_hist =
      registry.GetHistogram("pipeline.parse_us");
  metrics::ScopedTimerUs parse_timer(parse_hist);

  // Inference never needs the tape; without the guard every op in the
  // encoder would record parents and backward closures just to drop them.
  NoGradGuard no_grad;
  const int64_t start_ns = trace::NowNs();
  const TensorArena::ThreadStats arena_before = TensorArena::thread_stats();
  documents_counter->Increment();

  ParseResult result;
  StructuredResume& out = result.resume;
  core::ResuFormerConfig model_cfg = options_.model;
  model_cfg.vocab_size = tokenizer_->vocab().size();
  core::EncodedDocument encoded;
  {
    TRACE_SPAN("pipeline.encode");
    encoded = core::EncodeForModel(document, *tokenizer_, model_cfg);
  }
  result.stats.num_sentences = static_cast<int>(encoded.sentences.size());
  sentences_counter->Increment(result.stats.num_sentences);
  if (encoded.sentences.empty()) {
    FinalizeParseStats(start_ns, arena_before, &result.stats);
    return result;
  }
  std::vector<int> labels;
  {
    TRACE_SPAN("pipeline.block_classify");
    labels = planner_ != nullptr ? planner_->Predict(encoded)
                                 : block_classifier_->Predict(encoded);
  }
  std::vector<doc::Block> blocks;
  {
    TRACE_SPAN("pipeline.segment");
    blocks = doc::Document::BlocksFromLabels(labels);
  }

  selftrain::NerModelConfig ner_cfg = options_.ner;
  ner_cfg.vocab_size = tokenizer_->vocab().size();
  for (const doc::Block& block : blocks) {
    StructuredBlock sb;
    sb.tag = block.tag;
    std::vector<std::string> words;
    for (int s = block.first_sentence;
         s <= block.last_sentence && s < document.NumSentences(); ++s) {
      sb.lines.push_back(document.sentences[s].Text());
      for (const doc::Token& t : document.sentences[s].tokens) {
        words.push_back(t.word);
      }
    }
    const bool entity_bearing = block.tag == doc::BlockTag::kPInfo ||
                                block.tag == doc::BlockTag::kEduExp ||
                                block.tag == doc::BlockTag::kWorkExp ||
                                block.tag == doc::BlockTag::kProjExp;
    if (entity_bearing && !words.empty() && ner_model_ != nullptr) {
      TRACE_SPAN("pipeline.ner");
      static metrics::Counter* ner_truncations_counter =
          metrics::MetricsRegistry::Global().GetCounter(
              "pipeline.ner_truncations");
      // Blocks longer than one NER window were silently truncated here
      // before PredictWords windowed them; the counter keeps that tail
      // visible.
      if (static_cast<int>(words.size()) > ner_cfg.max_tokens) {
        ner_truncations_counter->Increment();
      }
      const std::vector<int> entity_labels =
          ner_model_->PredictWords(words, *tokenizer_);
      // Reconstruct entity strings from IOB runs.
      size_t i = 0;
      while (i < entity_labels.size()) {
        doc::EntityTag tag;
        bool begin;
        if (doc::ParseEntityIobLabel(entity_labels[i], &tag, &begin)) {
          std::string textval = words[i];
          size_t j = i + 1;
          doc::EntityTag tag2;
          bool begin2;
          while (j < entity_labels.size() && j < words.size() &&
                 doc::ParseEntityIobLabel(entity_labels[j], &tag2, &begin2) &&
                 !begin2 && tag2 == tag) {
            textval += " " + words[j];
            ++j;
          }
          sb.entities.push_back(StructuredEntity{tag, textval});
          i = j;
        } else {
          ++i;
        }
      }
    }
    result.stats.num_entities += static_cast<int>(sb.entities.size());
    out.blocks.push_back(std::move(sb));
  }
  result.stats.num_blocks = static_cast<int>(out.blocks.size());
  blocks_counter->Increment(result.stats.num_blocks);
  entities_counter->Increment(result.stats.num_entities);
  FinalizeParseStats(start_ns, arena_before, &result.stats);
  return result;
}

std::vector<StructuredResume> ResuFormerPipeline::ParseBatch(
    const std::vector<doc::Document>& documents) const {
  std::vector<ParseResult> results = ParseBatchWithStats(documents);
  std::vector<StructuredResume> out;
  out.reserve(results.size());
  for (ParseResult& r : results) out.push_back(std::move(r.resume));
  return out;
}

std::vector<ParseResult> ResuFormerPipeline::ParseBatchWithStats(
    const std::vector<doc::Document>& documents) const {
  TRACE_SPAN("pipeline.parse_batch");
  // Same fan-out as the ParseRequest batch overload, but straight over the
  // borrowed documents — wrapping them in ParseRequests would copy every
  // document just to unwrap it again.
  std::vector<ParseResult> out(documents.size());
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(documents.size()),
      [&](int /*worker*/, int64_t begin, int64_t end) {
        NoGradGuard no_grad;
        for (int64_t i = begin; i < end; ++i) {
          out[i] = ParseDocument(documents[i]);
        }
      });
  return out;
}

Status ResuFormerPipeline::Save(const std::string& directory) const {
  RF_RETURN_NOT_OK(tokenizer_->vocab().Save(directory + "/vocab.txt"));
  const nn::CheckpointFormat format = options_.model.runtime.save_rfp3
                                          ? nn::CheckpointFormat::kRfp3
                                          : nn::CheckpointFormat::kRfp2;
  RF_RETURN_NOT_OK(nn::SaveParameters(*block_classifier_,
                                      directory + "/block.bin", format));
  if (ner_model_ != nullptr) {
    RF_RETURN_NOT_OK(
        nn::SaveParameters(*ner_model_, directory + "/ner.bin", format));
  }
  std::ofstream manifest(ManifestPath(directory));
  if (!manifest) {
    return Status::IoError("cannot write " + ManifestPath(directory));
  }
  manifest << "RFMANIFEST 1\n";
  const int vocab_size = tokenizer_->vocab().size();
  for (const auto& [key, value] : ManifestFields(vocab_size, options_)) {
    manifest << key << ' ' << value << '\n';
  }
  manifest << "has_ner " << (ner_model_ != nullptr ? 1 : 0) << '\n';
  manifest.flush();
  if (!manifest) {
    return Status::IoError("failed writing " + ManifestPath(directory));
  }
  return Status::OK();
}

Result<std::unique_ptr<ResuFormerPipeline>> ResuFormerPipeline::Load(
    const std::string& directory, const PipelineOptions& options) {
  Result<text::Vocab> vocab = text::Vocab::Load(directory + "/vocab.txt");
  if (!vocab.ok()) return vocab.status();

  auto pipeline =
      // Private ctor: make_unique cannot reach it; ownership is immediate.
      // rf-lint-allow(naked-new)
      std::unique_ptr<ResuFormerPipeline>(new ResuFormerPipeline());
  pipeline->options_ = options;
  pipeline->tokenizer_ = std::make_unique<text::WordPieceTokenizer>(
      std::move(vocab).ValueOrDie());

  // Verify the checkpoint's manifest against the supplied options before
  // touching the parameter files: a dimension mismatch would otherwise
  // surface as a cryptic tensor-count/shape error (or load garbage).
  bool has_ner = true;
  std::ifstream manifest(ManifestPath(directory));
  if (!manifest) {
    RF_LOG(Warning) << "no manifest.txt in " << directory
                    << "; legacy checkpoint, loading without architecture"
                       " validation";
  } else {
    std::string magic;
    int version = 0;
    manifest >> magic >> version;
    if (magic != "RFMANIFEST") {
      return Status::FailedPrecondition(
          ManifestPath(directory) + " is not a checkpoint manifest");
    }
    if (version != 1) {
      return Status::FailedPrecondition(
          "unsupported manifest format version " + std::to_string(version) +
          " in " + ManifestPath(directory) + " (this build reads version 1)");
    }
    std::map<std::string, int64_t> stored;
    std::string key;
    int64_t value = 0;
    while (manifest >> key >> value) stored[key] = value;
    const int vocab_size = pipeline->tokenizer_->vocab().size();
    for (const auto& [field, expected] : ManifestFields(vocab_size, options)) {
      auto it = stored.find(field);
      if (it == stored.end()) {
        return Status::FailedPrecondition(
            "checkpoint manifest in " + directory + " is missing field '" +
            field + "'");
      }
      if (it->second != expected) {
        return Status::FailedPrecondition(
            "checkpoint in " + directory + " was saved with " + field + "=" +
            std::to_string(it->second) + " but the supplied options expect " +
            field + "=" + std::to_string(expected) +
            "; refusing to load a mismatched architecture");
      }
    }
    auto ner_it = stored.find("has_ner");
    if (ner_it != stored.end()) has_ner = ner_it->second != 0;
  }

  Rng rng(options.seed);  // architecture init; weights overwritten below
  core::ResuFormerConfig model_cfg = options.model;
  model_cfg.vocab_size = pipeline->tokenizer_->vocab().size();
  pipeline->block_classifier_ =
      std::make_unique<core::BlockClassifier>(model_cfg, &rng);
  Status s = nn::LoadParameters(pipeline->block_classifier_.get(),
                                directory + "/block.bin");
  if (!s.ok()) return s;
  pipeline->block_classifier_->SetTraining(false);

  if (has_ner) {
    selftrain::NerModelConfig ner_cfg = options.ner;
    ner_cfg.vocab_size = pipeline->tokenizer_->vocab().size();
    pipeline->ner_model_ =
        std::make_unique<selftrain::NerModel>(ner_cfg, &rng);
    s = nn::LoadParameters(pipeline->ner_model_.get(),
                           directory + "/ner.bin");
    if (!s.ok()) return s;
    pipeline->ner_model_->SetTraining(false);
  }
  // use_int8 implies plan routing: the int8 kernels only exist inside plan
  // replay, and unplannable documents still fall back to dynamic fp32.
  if (options.model.runtime.use_inference_plan ||
      options.model.runtime.use_int8) {
    pipeline->planner_ = std::make_unique<core::InferencePlanner>(
        pipeline->block_classifier_.get());
  }
  return pipeline;
}

std::string ResuFormerPipeline::ToPrettyString(const StructuredResume& resume) {
  // Blocks are an array (tags repeat: two kWorkExp blocks are common), and
  // every string routes through AppendJsonQuoted, so the result is strictly
  // valid JSON — resume text with quotes, backslashes or newlines cannot
  // break the framing.
  std::string out = "{\n  \"blocks\": [";
  for (size_t b = 0; b < resume.blocks.size(); ++b) {
    const StructuredBlock& block = resume.blocks[b];
    out.append(b == 0 ? "\n" : ",\n");
    out.append("    {\n      \"tag\": ");
    AppendJsonQuoted(&out, doc::BlockTagName(block.tag));
    out.append(",\n      \"lines\": [");
    for (size_t i = 0; i < block.lines.size(); ++i) {
      if (i > 0) out.append(", ");
      AppendJsonQuoted(&out, block.lines[i]);
    }
    out.append("],\n      \"entities\": [");
    for (size_t i = 0; i < block.entities.size(); ++i) {
      if (i > 0) out.append(", ");
      out.append("{\"tag\": ");
      AppendJsonQuoted(&out, doc::EntityTagName(block.entities[i].tag));
      out.append(", \"text\": ");
      AppendJsonQuoted(&out, block.entities[i].text);
      out.push_back('}');
    }
    out.append("]\n    }");
  }
  out.append(resume.blocks.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out;
}

}  // namespace pipeline
}  // namespace resuformer
