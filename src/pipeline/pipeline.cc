#include "pipeline/pipeline.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "distant/dictionary.h"
#include "nn/serialize.h"

namespace resuformer {
namespace pipeline {

std::unique_ptr<ResuFormerPipeline> ResuFormerPipeline::TrainFromCorpus(
    const resumegen::Corpus& corpus, const PipelineOptions& options,
    TrainReport* report) {
  auto pipeline =
      std::unique_ptr<ResuFormerPipeline>(new ResuFormerPipeline());
  pipeline->options_ = options;
  Rng rng(options.seed);

  // Tokenizer from the pre-training corpus.
  pipeline->tokenizer_ = std::make_unique<text::WordPieceTokenizer>(
      resumegen::TrainTokenizer(corpus, options.vocab_size));
  core::ResuFormerConfig model_cfg = options.model;
  model_cfg.vocab_size = pipeline->tokenizer_->vocab().size();

  // Stage 1: pre-train the hierarchical encoder (Eq. 7).
  pipeline->block_classifier_ =
      std::make_unique<core::BlockClassifier>(model_cfg, &rng);
  std::vector<core::EncodedDocument> pretrain_docs;
  for (const resumegen::GeneratedResume& r : corpus.pretrain) {
    pretrain_docs.push_back(core::EncodeForModel(
        r.document, *pipeline->tokenizer_, model_cfg));
  }
  core::Pretrainer pretrainer(pipeline->block_classifier_->encoder(), &rng);
  core::PretrainStats pretrain_stats;
  if (!pretrain_docs.empty() && options.pretrain_epochs > 0) {
    pretrain_stats =
        pretrainer.Train(pretrain_docs, options.pretrain_epochs,
                         options.pretrain_batch, model_cfg.pretrain_lr);
  }

  // Stage 2: fine-tune the block classifier on labeled data.
  std::vector<core::LabeledDocument> train, val;
  for (const resumegen::GeneratedResume& r : corpus.train) {
    train.push_back(core::MakeLabeledDocument(
        r.document, *pipeline->tokenizer_, model_cfg));
  }
  for (const resumegen::GeneratedResume& r : corpus.val) {
    val.push_back(core::MakeLabeledDocument(r.document,
                                            *pipeline->tokenizer_,
                                            model_cfg));
  }
  const double block_acc = core::FinetuneBlockClassifier(
      pipeline->block_classifier_.get(), train, val, options.finetune, &rng);

  // Stage 3: distantly supervised NER with self-distillation.
  const distant::EntityDictionary dictionary =
      distant::BuildDictionaries(distant::DictionaryConfig{});
  const distant::NerDataset ner_data =
      distant::BuildNerDataset(options.ner_data, dictionary);
  selftrain::NerModelConfig ner_cfg = options.ner;
  ner_cfg.vocab_size = pipeline->tokenizer_->vocab().size();
  selftrain::SelfDistillTrainer trainer(ner_cfg, options.selftrain,
                                        pipeline->tokenizer_.get(), &rng);
  selftrain::SelfTrainResult result =
      trainer.Train(ner_data.train, ner_data.val);
  pipeline->ner_model_ = std::move(result.model);

  if (report != nullptr) {
    report->pretrain = pretrain_stats;
    report->block_val_accuracy = block_acc;
    report->ner_val_f1 = result.best_val_f1;
  }
  return pipeline;
}

StructuredResume ResuFormerPipeline::Parse(
    const doc::Document& document) const {
  // Inference never needs the tape; without the guard every op in the
  // encoder would record parents and backward closures just to drop them.
  NoGradGuard no_grad;
  StructuredResume out;
  core::ResuFormerConfig model_cfg = options_.model;
  model_cfg.vocab_size = tokenizer_->vocab().size();
  const core::EncodedDocument encoded =
      core::EncodeForModel(document, *tokenizer_, model_cfg);
  if (encoded.sentences.empty()) return out;
  const std::vector<int> labels = block_classifier_->Predict(encoded);
  const std::vector<doc::Block> blocks =
      doc::Document::BlocksFromLabels(labels);

  selftrain::NerModelConfig ner_cfg = options_.ner;
  ner_cfg.vocab_size = tokenizer_->vocab().size();
  for (const doc::Block& block : blocks) {
    StructuredBlock sb;
    sb.tag = block.tag;
    std::vector<std::string> words;
    for (int s = block.first_sentence;
         s <= block.last_sentence && s < document.NumSentences(); ++s) {
      sb.lines.push_back(document.sentences[s].Text());
      for (const doc::Token& t : document.sentences[s].tokens) {
        words.push_back(t.word);
      }
    }
    const bool entity_bearing = block.tag == doc::BlockTag::kPInfo ||
                                block.tag == doc::BlockTag::kEduExp ||
                                block.tag == doc::BlockTag::kWorkExp ||
                                block.tag == doc::BlockTag::kProjExp;
    if (entity_bearing && !words.empty() && ner_model_ != nullptr) {
      const std::vector<int> ids =
          selftrain::EncodeWordsForNer(words, *tokenizer_, ner_cfg);
      const std::vector<int> entity_labels = ner_model_->Predict(ids);
      // Reconstruct entity strings from IOB runs.
      size_t i = 0;
      while (i < entity_labels.size()) {
        doc::EntityTag tag;
        bool begin;
        if (doc::ParseEntityIobLabel(entity_labels[i], &tag, &begin)) {
          std::string textval = words[i];
          size_t j = i + 1;
          doc::EntityTag tag2;
          bool begin2;
          while (j < entity_labels.size() && j < words.size() &&
                 doc::ParseEntityIobLabel(entity_labels[j], &tag2, &begin2) &&
                 !begin2 && tag2 == tag) {
            textval += " " + words[j];
            ++j;
          }
          sb.entities.push_back(StructuredEntity{tag, textval});
          i = j;
        } else {
          ++i;
        }
      }
    }
    out.blocks.push_back(std::move(sb));
  }
  return out;
}

std::vector<StructuredResume> ResuFormerPipeline::ParseBatch(
    const std::vector<doc::Document>& documents) const {
  std::vector<StructuredResume> out(documents.size());
  // Parallelism moves up a level for batches: each worker takes a chunk of
  // documents, and the per-document kernels run inline (ParallelFor from a
  // pool worker does not nest). NoGradGuard state is thread-local, so each
  // worker needs its own guard.
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(documents.size()),
      [&](int /*worker*/, int64_t begin, int64_t end) {
        NoGradGuard no_grad;
        for (int64_t i = begin; i < end; ++i) {
          out[i] = Parse(documents[i]);
        }
      });
  return out;
}

Status ResuFormerPipeline::Save(const std::string& directory) const {
  RF_RETURN_NOT_OK(tokenizer_->vocab().Save(directory + "/vocab.txt"));
  RF_RETURN_NOT_OK(
      nn::SaveParameters(*block_classifier_, directory + "/block.bin"));
  if (ner_model_ != nullptr) {
    RF_RETURN_NOT_OK(
        nn::SaveParameters(*ner_model_, directory + "/ner.bin"));
  }
  return Status::OK();
}

Result<std::unique_ptr<ResuFormerPipeline>> ResuFormerPipeline::Load(
    const std::string& directory, const PipelineOptions& options) {
  Result<text::Vocab> vocab = text::Vocab::Load(directory + "/vocab.txt");
  if (!vocab.ok()) return vocab.status();

  auto pipeline =
      std::unique_ptr<ResuFormerPipeline>(new ResuFormerPipeline());
  pipeline->options_ = options;
  pipeline->tokenizer_ = std::make_unique<text::WordPieceTokenizer>(
      std::move(vocab).ValueOrDie());

  Rng rng(options.seed);  // architecture init; weights overwritten below
  core::ResuFormerConfig model_cfg = options.model;
  model_cfg.vocab_size = pipeline->tokenizer_->vocab().size();
  pipeline->block_classifier_ =
      std::make_unique<core::BlockClassifier>(model_cfg, &rng);
  Status s = nn::LoadParameters(pipeline->block_classifier_.get(),
                                directory + "/block.bin");
  if (!s.ok()) return s;
  pipeline->block_classifier_->SetTraining(false);

  selftrain::NerModelConfig ner_cfg = options.ner;
  ner_cfg.vocab_size = pipeline->tokenizer_->vocab().size();
  pipeline->ner_model_ = std::make_unique<selftrain::NerModel>(ner_cfg, &rng);
  s = nn::LoadParameters(pipeline->ner_model_.get(), directory + "/ner.bin");
  if (!s.ok()) return s;
  pipeline->ner_model_->SetTraining(false);
  return pipeline;
}

std::string ResuFormerPipeline::ToPrettyString(const StructuredResume& resume) {
  std::string out = "{\n";
  for (const StructuredBlock& block : resume.blocks) {
    out += "  \"" + doc::BlockTagName(block.tag) + "\": {\n";
    if (!block.entities.empty()) {
      out += "    \"entities\": {";
      for (size_t i = 0; i < block.entities.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + doc::EntityTagName(block.entities[i].tag) + "\": \"" +
               block.entities[i].text + "\"";
      }
      out += "},\n";
    }
    out += "    \"lines\": [";
    for (size_t i = 0; i < block.lines.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + block.lines[i] + "\"";
    }
    out += "]\n  },\n";
  }
  out += "}\n";
  return out;
}

}  // namespace pipeline
}  // namespace resuformer
