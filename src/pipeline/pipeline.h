#ifndef RESUFORMER_PIPELINE_PIPELINE_H_
#define RESUFORMER_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/block_classifier.h"
#include "core/inference_plan.h"
#include "core/pretrainer.h"
#include "distant/ner_dataset.h"
#include "resumegen/corpus.h"
#include "selftrain/self_distill.h"

namespace resuformer {
namespace pipeline {

/// One extracted entity within a block.
struct StructuredEntity {
  doc::EntityTag tag;
  std::string text;
};

/// One recovered semantic block with its text lines and entities.
struct StructuredBlock {
  doc::BlockTag tag;
  std::vector<std::string> lines;
  std::vector<StructuredEntity> entities;
};

/// The hierarchical structure ResuFormer extracts from a resume.
struct StructuredResume {
  std::vector<StructuredBlock> blocks;
};

/// Per-document measurements captured alongside a parse. Counts are exact;
/// arena_hit_rate is computed from the *calling thread's* arena counters
/// over the parse window, so it describes this document's own allocations
/// even when several documents parse concurrently (ParseBatchWithStats runs
/// each document entirely on one worker).
struct ParseStats {
  double wall_time_us = 0.0;
  int num_sentences = 0;  // sentences after encoding truncation
  int num_blocks = 0;
  int num_entities = 0;
  double arena_hit_rate = 0.0;  // hits / (hits + misses); 0 when no traffic
};

/// A parse plus its measurements — returned by the *WithStats entry points.
struct ParseResult {
  StructuredResume resume;
  ParseStats stats;
};

/// Training budgets for the end-to-end pipeline.
struct PipelineOptions {
  core::ResuFormerConfig model;
  selftrain::NerModelConfig ner;
  int vocab_size = 2000;
  int pretrain_epochs = 2;
  int pretrain_batch = 4;
  core::FinetuneOptions finetune;
  selftrain::SelfTrainOptions selftrain;
  distant::NerDatasetConfig ner_data;
  uint64_t seed = 7;
  bool verbose = false;
};

/// Summary of an end-to-end training run.
struct TrainReport {
  core::PretrainStats pretrain;
  double block_val_accuracy = 0.0;
  double ner_val_f1 = 0.0;
};

/// \brief End-to-end resume semantic structure understanding: block
/// segmentation (pre-trained hierarchical model + BiLSTM/CRF) followed by
/// intra-block extraction (self-distilled distantly supervised NER).
class ResuFormerPipeline {
 public:
  /// Trains all stages from a generated corpus; `report` (optional)
  /// receives the training summary.
  static std::unique_ptr<ResuFormerPipeline> TrainFromCorpus(
      const resumegen::Corpus& corpus, const PipelineOptions& options,
      TrainReport* report = nullptr);

  /// Full parse: segment into blocks, then extract entities inside the
  /// entity-bearing blocks. Inference-only: runs under NoGradGuard, so no
  /// autograd tape is built.
  StructuredResume Parse(const doc::Document& document) const;

  /// Parse plus per-document measurements (wall time, sentence/block/entity
  /// counts, arena hit rate). Same output as Parse — Parse delegates here
  /// and drops the stats.
  ParseResult ParseWithStats(const doc::Document& document) const;

  /// Batched inference: parses `documents` by fanning them across the global
  /// tensor thread pool (one contiguous chunk of documents per worker, each
  /// worker under its own NoGradGuard; per-document tensor kernels then run
  /// inline). Output order matches input order, and every document produces
  /// the same StructuredResume as a serial Parse call.
  std::vector<StructuredResume> ParseBatch(
      const std::vector<doc::Document>& documents) const;

  /// ParseBatch with per-document stats, same fan-out and ordering.
  std::vector<ParseResult> ParseBatchWithStats(
      const std::vector<doc::Document>& documents) const;

  /// Persists the trained pipeline (vocabulary + both models' parameters)
  /// into `directory` (must exist), plus a manifest recording the vocab
  /// size and model dimensions. Load() requires the same PipelineOptions
  /// used for training; with a manifest present it verifies the options
  /// against it and fails with FailedPrecondition (naming the mismatched
  /// field) instead of deserializing garbage. Checkpoints predating the
  /// manifest load with a warning.
  [[nodiscard]] Status Save(const std::string& directory) const;
  [[nodiscard]] static Result<std::unique_ptr<ResuFormerPipeline>> Load(
      const std::string& directory, const PipelineOptions& options);

  /// Renders a StructuredResume as indented, strictly valid JSON:
  /// {"blocks": [{"tag": ..., "lines": [...], "entities":
  /// [{"tag": ..., "text": ...}]}]}. All strings are escaped.
  static std::string ToPrettyString(const StructuredResume& resume);

  const text::WordPieceTokenizer& tokenizer() const { return *tokenizer_; }
  const core::BlockClassifier& block_classifier() const {
    return *block_classifier_;
  }
  const selftrain::NerModel& ner_model() const { return *ner_model_; }

 private:
  ResuFormerPipeline() = default;

  PipelineOptions options_;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer_;
  std::unique_ptr<core::BlockClassifier> block_classifier_;
  std::unique_ptr<selftrain::NerModel> ner_model_;
  // Non-null only when options_.model.runtime.use_inference_plan or
  // .use_int8 is set; ParseWithStats then routes block prediction through
  // the plan cache (int8 kernels when use_int8, fp32 replay otherwise).
  std::unique_ptr<core::InferencePlanner> planner_;
};

}  // namespace pipeline
}  // namespace resuformer

#endif  // RESUFORMER_PIPELINE_PIPELINE_H_
