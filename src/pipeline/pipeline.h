#ifndef RESUFORMER_PIPELINE_PIPELINE_H_
#define RESUFORMER_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/block_classifier.h"
#include "core/inference_plan.h"
#include "core/pretrainer.h"
#include "distant/ner_dataset.h"
#include "resumegen/corpus.h"
#include "selftrain/self_distill.h"

namespace resuformer {
namespace pipeline {

/// One extracted entity within a block.
struct StructuredEntity {
  doc::EntityTag tag;
  std::string text;
};

/// One recovered semantic block with its text lines and entities.
struct StructuredBlock {
  doc::BlockTag tag;
  std::vector<std::string> lines;
  std::vector<StructuredEntity> entities;
};

/// The hierarchical structure ResuFormer extracts from a resume.
struct StructuredResume {
  std::vector<StructuredBlock> blocks;
};

/// Per-document measurements captured alongside a parse. Counts are exact;
/// arena_hit_rate is computed from the *calling thread's* arena counters
/// over the parse window, so it describes this document's own allocations
/// even when several documents parse concurrently (ParseBatchWithStats runs
/// each document entirely on one worker).
struct ParseStats {
  double wall_time_us = 0.0;
  int num_sentences = 0;  // sentences after encoding truncation
  int num_blocks = 0;
  int num_entities = 0;
  double arena_hit_rate = 0.0;  // hits / (hits + misses); 0 when no traffic
  int64_t request_id = 0;       // echoed from the ParseRequest (0 = none)
};

/// A parse plus its measurements — returned by the *WithStats entry points.
struct ParseResult {
  StructuredResume resume;
  ParseStats stats;
};

/// \brief The one parse input every consumer builds — CLI, batch jobs and
/// the serve admission queue all speak this.
///
/// `deadline_ns` is an *absolute* steady-clock timestamp on the
/// trace::NowNs() timebase (0 = no deadline). A request whose deadline has
/// passed before its parse starts is answered with DeadlineExceeded instead
/// of being parsed; a parse already underway is never aborted mid-flight
/// (documents parse in milliseconds — cancellation points inside the
/// encoder would cost more than they save).
struct ParseRequest {
  doc::Document document;
  int64_t deadline_ns = 0;
  bool want_stats = false;
  /// Serving correlation id (0 = unassigned). ParseServer::Submit assigns a
  /// process-monotonic id; it is echoed on the response, annotated onto the
  /// request's trace spans, and prefixed onto kOkV2/kErrorV2 wire payloads.
  int64_t request_id = 0;
};

/// \brief The one parse output: a Status plus the payload. `resume` and
/// `stats` are meaningful only when `status.ok()`; `stats` is additionally
/// zeroed unless the request set `want_stats`. Server-side rejections
/// (DeadlineExceeded, ResourceExhausted, Unavailable) arrive through
/// `status` rather than an exception or a crash.
struct ParseResponse {
  Status status = Status::OK();
  StructuredResume resume;
  ParseStats stats;
  /// Echo of ParseRequest::request_id — set on every response, including
  /// rejections, so a client can correlate out-of-band.
  int64_t request_id = 0;

  bool ok() const { return status.ok(); }
};

/// Training budgets for the end-to-end pipeline.
struct PipelineOptions {
  core::ResuFormerConfig model;
  selftrain::NerModelConfig ner;
  int vocab_size = 2000;
  int pretrain_epochs = 2;
  int pretrain_batch = 4;
  core::FinetuneOptions finetune;
  selftrain::SelfTrainOptions selftrain;
  distant::NerDatasetConfig ner_data;
  uint64_t seed = 7;
  bool verbose = false;
};

/// Summary of an end-to-end training run.
struct TrainReport {
  core::PretrainStats pretrain;
  double block_val_accuracy = 0.0;
  double ner_val_f1 = 0.0;
};

/// \brief End-to-end resume semantic structure understanding: block
/// segmentation (pre-trained hierarchical model + BiLSTM/CRF) followed by
/// intra-block extraction (self-distilled distantly supervised NER).
class ResuFormerPipeline {
 public:
  /// Trains all stages from a generated corpus; `report` (optional)
  /// receives the training summary.
  static std::unique_ptr<ResuFormerPipeline> TrainFromCorpus(
      const resumegen::Corpus& corpus, const PipelineOptions& options,
      TrainReport* report = nullptr);

  /// The unified parse entry point: full parse (block segmentation +
  /// intra-block NER) under the request's deadline/stats policy.
  /// Inference-only: runs under NoGradGuard, so no autograd tape is built.
  /// Never throws — failures (currently only DeadlineExceeded) come back in
  /// `ParseResponse::status`.
  [[nodiscard]] ParseResponse Parse(const ParseRequest& request) const;

  /// Batched form: fans `requests` across the global tensor thread pool
  /// (one contiguous chunk of requests per worker, each worker under its
  /// own NoGradGuard; per-request tensor kernels then run inline). Output
  /// order matches input order, and every request produces the same
  /// response as a serial Parse(request) call. Per-request deadlines are
  /// honored individually — one expired request does not poison its batch.
  [[nodiscard]] std::vector<ParseResponse> Parse(
      const std::vector<ParseRequest>& requests) const;

  // --- deprecated pre-ParseRequest surface ---------------------------------
  // Thin wrappers over Parse(ParseRequest)/Parse(vector<ParseRequest>),
  // kept so existing callers compile unchanged. New code should build a
  // ParseRequest.

  /// \deprecated Use Parse(const ParseRequest&).
  StructuredResume Parse(const doc::Document& document) const;

  /// \deprecated Use Parse(const ParseRequest&) with want_stats = true.
  ParseResult ParseWithStats(const doc::Document& document) const;

  /// \deprecated Use Parse(const std::vector<ParseRequest>&).
  std::vector<StructuredResume> ParseBatch(
      const std::vector<doc::Document>& documents) const;

  /// \deprecated Use Parse(const std::vector<ParseRequest>&) with
  /// want_stats = true.
  std::vector<ParseResult> ParseBatchWithStats(
      const std::vector<doc::Document>& documents) const;

  /// Persists the trained pipeline (vocabulary + both models' parameters)
  /// into `directory` (must exist), plus a manifest recording the vocab
  /// size and model dimensions. Load() requires the same PipelineOptions
  /// used for training; with a manifest present it verifies the options
  /// against it and fails with FailedPrecondition (naming the mismatched
  /// field) instead of deserializing garbage. Checkpoints predating the
  /// manifest load with a warning.
  [[nodiscard]] Status Save(const std::string& directory) const;
  [[nodiscard]] static Result<std::unique_ptr<ResuFormerPipeline>> Load(
      const std::string& directory, const PipelineOptions& options);

  /// Renders a StructuredResume as indented, strictly valid JSON:
  /// {"blocks": [{"tag": ..., "lines": [...], "entities":
  /// [{"tag": ..., "text": ...}]}]}. All strings are escaped.
  static std::string ToPrettyString(const StructuredResume& resume);

  const text::WordPieceTokenizer& tokenizer() const { return *tokenizer_; }
  const core::BlockClassifier& block_classifier() const {
    return *block_classifier_;
  }
  const selftrain::NerModel& ner_model() const { return *ner_model_; }

 private:
  ResuFormerPipeline() = default;

  /// The actual parse implementation (always computes stats; callers that
  /// don't want them drop them). Everything public funnels here.
  ParseResult ParseDocument(const doc::Document& document) const;

  PipelineOptions options_;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer_;
  std::unique_ptr<core::BlockClassifier> block_classifier_;
  std::unique_ptr<selftrain::NerModel> ner_model_;
  // Non-null only when options_.model.runtime.use_inference_plan or
  // .use_int8 is set; ParseWithStats then routes block prediction through
  // the plan cache (int8 kernels when use_int8, fp32 replay otherwise).
  std::unique_ptr<core::InferencePlanner> planner_;
};

}  // namespace pipeline
}  // namespace resuformer

#endif  // RESUFORMER_PIPELINE_PIPELINE_H_
