#ifndef RESUFORMER_NN_LAYER_NORM_H_
#define RESUFORMER_NN_LAYER_NORM_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace resuformer {
namespace nn {

/// Row-wise layer normalization with learned gain (init 1) and bias (init 0).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
  float eps_;
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_LAYER_NORM_H_
