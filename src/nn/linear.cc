#include "nn/linear.h"

#include <cmath>

namespace resuformer {
namespace nn {

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = RegisterParameter(
      Tensor::Uniform({in_features, out_features}, rng, -bound, bound));
  if (bias) {
    bias_ = RegisterParameter(Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = ops::MatMul(x, weight_);
  if (bias_.defined()) y = ops::Add(y, bias_);
  return y;
}

}  // namespace nn
}  // namespace resuformer
