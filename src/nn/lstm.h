#ifndef RESUFORMER_NN_LSTM_H_
#define RESUFORMER_NN_LSTM_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace resuformer {
namespace nn {

/// Single-direction LSTM over a [T, input_dim] sequence; returns the hidden
/// states [T, hidden_dim]. Gate layout in the packed weights: i, f, g, o.
class Lstm : public Module {
 public:
  Lstm(int input_dim, int hidden_dim, Rng* rng);

  /// When `reverse` is true the sequence is processed right-to-left and the
  /// output rows are returned re-aligned to input order.
  Tensor Forward(const Tensor& x, bool reverse = false) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Tensor w_ih_;  // [input_dim, 4*hidden]
  Tensor w_hh_;  // [hidden, 4*hidden]
  Tensor bias_;  // [4*hidden]
};

/// Bidirectional LSTM; output is the concatenation [T, 2*hidden_dim] of the
/// forward and backward passes (Eq. 8 of the paper).
class BiLstm : public Module {
 public:
  BiLstm(int input_dim, int hidden_dim, Rng* rng);

  Tensor Forward(const Tensor& x) const;

  /// Output feature width (2 * hidden_dim).
  int output_dim() const;

 private:
  std::unique_ptr<Lstm> forward_;
  std::unique_ptr<Lstm> backward_;
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_LSTM_H_
