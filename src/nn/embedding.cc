#include "nn/embedding.h"

namespace resuformer {
namespace nn {

Embedding::Embedding(int num_embeddings, int dim, Rng* rng)
    : num_embeddings_(num_embeddings), dim_(dim) {
  weight_ =
      RegisterParameter(Tensor::Randn({num_embeddings, dim}, rng, 0.02f));
}

Tensor Embedding::Forward(const std::vector<int>& ids) const {
  return ops::EmbeddingLookup(weight_, ids);
}

}  // namespace nn
}  // namespace resuformer
