#ifndef RESUFORMER_NN_TRANSFORMER_H_
#define RESUFORMER_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace resuformer {
namespace nn {

/// Hyper-parameters of one Transformer encoder stack.
struct TransformerConfig {
  int dim = 32;
  int num_layers = 2;
  int num_heads = 4;
  int ffn_dim = 64;
  float dropout = 0.1f;
  // Use the fused attention kernel (see MultiHeadSelfAttention); false
  // selects the composed-ops reference path.
  bool fused_attention = true;
};

/// Post-norm Transformer encoder layer (BERT convention):
///   x = LN(x + Attn(x)); x = LN(x + FFN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(const TransformerConfig& config, Rng* rng);

  /// x: [T, dim]; `bias` is the optional additive attention mask.
  /// `dropout_rng` supplies dropout noise during training (may be null when
  /// not training).
  Tensor Forward(const Tensor& x, const Tensor& bias, Rng* dropout_rng) const;

 private:
  TransformerConfig config_;
  std::unique_ptr<MultiHeadSelfAttention> attention_;
  std::unique_ptr<LayerNorm> norm1_;
  std::unique_ptr<Linear> ffn1_;
  std::unique_ptr<Linear> ffn2_;
  std::unique_ptr<LayerNorm> norm2_;
};

/// Stack of encoder layers.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor& bias = Tensor(),
                 Rng* dropout_rng = nullptr) const;

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_TRANSFORMER_H_
