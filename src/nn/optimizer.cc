#include "nn/optimizer.h"

#include <cmath>

namespace resuformer {
namespace nn {

namespace {
/// A parameter that never flowed into a loss has an empty grad buffer
/// (EnsureGrad never ran for it — e.g. partial fine-tuning where only one
/// encoder participates). Treat it as zero gradient: reading grad() for
/// size() elements would touch storage that was never allocated, and
/// stepping it would still apply weight decay / momentum to frozen weights.
bool HasGrad(const Tensor& p) {
  return static_cast<int64_t>(p.impl()->grad.size()) == p.size();
}
}  // namespace

void Optimizer::ZeroGrad() {
  // Only clear buffers that exist. Allocating here would mark every
  // parameter as "has a gradient", defeating the empty-grad skip in Step /
  // ClipGradNorm for parameters that never participate in the loss.
  for (Tensor& p : params_) {
    if (HasGrad(p)) p.ZeroGrad();
  }
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (Tensor& p : params_) {
    if (!HasGrad(p)) continue;
    const float* g = p.impl()->grad.data();
    for (int64_t i = 0; i < p.size(); ++i) total += double(g[i]) * g[i];
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Tensor& p : params_) {
      if (!HasGrad(p)) continue;
      float* g = p.impl()->grad.data();
      for (int64_t i = 0; i < p.size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

void Optimizer::SetLearningRateFor(const std::vector<Tensor>& params,
                                   float lr) {
  for (const Tensor& p : params) lr_overrides_[p.impl().get()] = lr;
}

float Optimizer::LearningRateFor(const TensorImpl* p,
                                 float default_lr) const {
  auto it = lr_overrides_.find(p);
  return it == lr_overrides_.end() ? default_lr : it->second;
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void Adam::Step() {
  ++step_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (Tensor& p : params_) {
    if (!HasGrad(p)) continue;  // never received a gradient: no update
    const TensorImpl* key = p.impl().get();
    auto& m = m_[key];
    auto& v = v_[key];
    if (m.size() != static_cast<size_t>(p.size())) {
      m.assign(p.size(), 0.0f);
      v.assign(p.size(), 0.0f);
    }
    const float lr = LearningRateFor(key, lr_);
    float* w = p.data();
    const float* g = p.grad();
    for (int64_t i = 0; i < p.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w[i]);
    }
  }
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {}

void Sgd::Step() {
  for (Tensor& p : params_) {
    if (!HasGrad(p)) continue;  // never received a gradient: no update
    const TensorImpl* key = p.impl().get();
    const float lr = LearningRateFor(key, lr_);
    float* w = p.data();
    const float* g = p.grad();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[key];
      if (vel.size() != static_cast<size_t>(p.size())) {
        vel.assign(p.size(), 0.0f);
      }
      for (int64_t i = 0; i < p.size(); ++i) {
        vel[i] = momentum_ * vel[i] + g[i];
        w[i] -= lr * vel[i];
      }
    } else {
      for (int64_t i = 0; i < p.size(); ++i) w[i] -= lr * g[i];
    }
  }
}

}  // namespace nn
}  // namespace resuformer
