#include "nn/transformer.h"

#include "tensor/ops.h"

namespace resuformer {
namespace nn {

TransformerEncoderLayer::TransformerEncoderLayer(
    const TransformerConfig& config, Rng* rng)
    : config_(config) {
  attention_ =
      std::make_unique<MultiHeadSelfAttention>(config.dim, config.num_heads,
                                               rng, config.fused_attention);
  norm1_ = std::make_unique<LayerNorm>(config.dim);
  ffn1_ = std::make_unique<Linear>(config.dim, config.ffn_dim, rng);
  ffn2_ = std::make_unique<Linear>(config.ffn_dim, config.dim, rng);
  norm2_ = std::make_unique<LayerNorm>(config.dim);
  RegisterModule(attention_.get());
  RegisterModule(norm1_.get());
  RegisterModule(ffn1_.get());
  RegisterModule(ffn2_.get());
  RegisterModule(norm2_.get());
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x, const Tensor& bias,
                                        Rng* dropout_rng) const {
  const bool train = training() && dropout_rng != nullptr;
  Tensor attn = attention_->Forward(x, bias);
  attn = ops::Dropout(attn, config_.dropout, dropout_rng, train);
  Tensor h = norm1_->Forward(ops::Add(x, attn));

  Tensor ffn = ffn2_->Forward(ops::Gelu(ffn1_->Forward(h)));
  ffn = ops::Dropout(ffn, config_.dropout, dropout_rng, train);
  return norm2_->Forward(ops::Add(h, ffn));
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config,
                                       Rng* rng)
    : config_(config) {
  layers_.reserve(config.num_layers);
  for (int i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(config, rng));
    RegisterModule(layers_.back().get());
  }
}

Tensor TransformerEncoder::Forward(const Tensor& x, const Tensor& bias,
                                   Rng* dropout_rng) const {
  Tensor h = x;
  for (const auto& layer : layers_) {
    h = layer->Forward(h, bias, dropout_rng);
  }
  return h;
}

}  // namespace nn
}  // namespace resuformer
