#ifndef RESUFORMER_NN_EMBEDDING_H_
#define RESUFORMER_NN_EMBEDDING_H_

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace resuformer {
namespace nn {

/// Lookup table mapping integer ids to dense rows, N(0, 0.02) initialized
/// (BERT convention).
class Embedding : public Module {
 public:
  Embedding(int num_embeddings, int dim, Rng* rng);

  /// ids (each in [0, num_embeddings)) -> [ids.size(), dim].
  Tensor Forward(const std::vector<int>& ids) const;

  int num_embeddings() const { return num_embeddings_; }
  int dim() const { return dim_; }
  const Tensor& weight() const { return weight_; }

 private:
  int num_embeddings_;
  int dim_;
  Tensor weight_;  // [num_embeddings, dim]
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_EMBEDDING_H_
