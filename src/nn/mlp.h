#ifndef RESUFORMER_NN_MLP_H_
#define RESUFORMER_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace resuformer {
namespace nn {

/// Multi-layer perceptron with GELU between layers (none after the last).
class Mlp : public Module {
 public:
  /// dims: {in, hidden..., out}; at least two entries.
  Mlp(const std::vector<int>& dims, Rng* rng);

  Tensor Forward(const Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_MLP_H_
