#ifndef RESUFORMER_NN_LINEAR_H_
#define RESUFORMER_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace resuformer {
namespace nn {

/// Fully-connected layer y = xW + b with Xavier-uniform initialization.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  /// x: [m, in_features] -> [m, out_features].
  Tensor Forward(const Tensor& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_LINEAR_H_
