#include "nn/module.h"

namespace resuformer {
namespace nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> all = parameters_;
  for (const Module* child : children_) {
    std::vector<Tensor> sub = child->Parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const Tensor& p : Parameters()) count += p.size();
  return count;
}

void Module::ZeroGrad() {
  for (Tensor& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (Module* child : children_) child->SetTraining(training);
}

Tensor Module::RegisterParameter(Tensor t) {
  t.set_requires_grad(true);
  parameters_.push_back(t);
  return t;
}

void Module::RegisterModule(Module* child) { children_.push_back(child); }

}  // namespace nn
}  // namespace resuformer
