#include "nn/mlp.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace resuformer {
namespace nn {

Mlp::Mlp(const std::vector<int>& dims, Rng* rng) {
  RF_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule(layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = ops::Gelu(h);
  }
  return h;
}

}  // namespace nn
}  // namespace resuformer
