#ifndef RESUFORMER_NN_SERIALIZE_H_
#define RESUFORMER_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace resuformer {
namespace nn {

/// Writes the module's parameters (in Parameters() order) to a binary file.
/// Format "RFP2": magic, parameter count, then per parameter its rank and
/// dimensions followed by raw float32 data.
[[nodiscard]] Status SaveParameters(const Module& module, const std::string& path);

/// Loads parameters saved by SaveParameters into an identically-shaped
/// module. Fails if the parameter count or any shape differs. Legacy "RFP1"
/// files (which recorded only flattened sizes) are still readable, with the
/// weaker size-only validation.
[[nodiscard]] Status LoadParameters(Module* module, const std::string& path);

/// Copies parameters between two identically-structured modules (used to
/// clone teacher -> student in the self-distillation loop).
[[nodiscard]] Status CopyParameters(const Module& source, Module* target);

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_SERIALIZE_H_
