#ifndef RESUFORMER_NN_SERIALIZE_H_
#define RESUFORMER_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace resuformer {
namespace nn {

/// On-disk parameter layouts. All formats are little-endian and
/// self-describing (shapes in the file); LoadParameters sniffs the magic.
///
///   RFP1  legacy: flattened sizes only (read-only support).
///   RFP2  per-tensor shapes, payloads packed inline after each record.
///   RFP3  mmap-able: a header + index up front, then 64-byte-aligned raw
///         float32 payloads. Loading maps the file (MAP_PRIVATE,
///         PROT_READ|PROT_WRITE) and points each parameter at its payload
///         pages — zero-copy, so N replicas on one host share a single
///         physical copy of the weights and cold start is a page fault,
///         not a parse. A write (optimizer step) copy-on-writes privately.
enum class CheckpointFormat { kRfp2, kRfp3 };

/// Writes the module's parameters (in Parameters() order) to a binary file
/// in the requested format (RFP2 by default).
[[nodiscard]] Status SaveParameters(const Module& module,
                                    const std::string& path,
                                    CheckpointFormat format = CheckpointFormat::kRfp2);

/// Loads parameters saved by SaveParameters into an identically-shaped
/// module; the format is detected from the file magic. Every header field
/// is validated against the actual file size before any payload is read —
/// a truncated or corrupt file yields FailedPrecondition naming the
/// offending parameter, never a huge allocation or a silent short read.
/// RFP3 files are mmap'd (see CheckpointFormat); RFP1/RFP2 stream-load.
[[nodiscard]] Status LoadParameters(Module* module, const std::string& path);

/// Rewrites an RFP2 checkpoint into the mmap-able RFP3 layout without
/// needing the module (RFP2 records are self-describing). Validates the
/// source like LoadParameters does.
[[nodiscard]] Status ConvertRfp2ToRfp3(const std::string& src_path,
                                       const std::string& dst_path);

/// Copies parameters between two identically-structured modules (used to
/// clone teacher -> student in the self-distillation loop).
[[nodiscard]] Status CopyParameters(const Module& source, Module* target);

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_SERIALIZE_H_
