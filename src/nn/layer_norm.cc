#include "nn/layer_norm.h"

namespace resuformer {
namespace nn {

LayerNorm::LayerNorm(int dim, float eps) : eps_(eps) {
  gamma_ = RegisterParameter(Tensor::Full({dim}, 1.0f));
  beta_ = RegisterParameter(Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return ops::LayerNormOp(x, gamma_, beta_, eps_);
}

}  // namespace nn
}  // namespace resuformer
