#include "nn/attention.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace resuformer {
namespace nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int dim, int num_heads,
                                               Rng* rng, bool fused)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      fused_(fused) {
  RF_CHECK_EQ(head_dim_ * num_heads_, dim_);
  wq_ = std::make_unique<Linear>(dim, dim, rng);
  wk_ = std::make_unique<Linear>(dim, dim, rng);
  wv_ = std::make_unique<Linear>(dim, dim, rng);
  wo_ = std::make_unique<Linear>(dim, dim, rng);
  RegisterModule(wq_.get());
  RegisterModule(wk_.get());
  RegisterModule(wv_.get());
  RegisterModule(wo_.get());
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const Tensor& bias) const {
  const Tensor q = wq_->Forward(x);
  const Tensor k = wk_->Forward(x);
  const Tensor v = wv_->Forward(x);

  if (fused_) {
    return wo_->Forward(ops::FusedMultiHeadAttention(q, k, v, bias,
                                                     num_heads_));
  }

  // Reference composed-ops path: one slice/transpose/scale/softmax/concat
  // chain per head. Kept as the equivalence oracle for the fused kernel.
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    const int off = h * head_dim_;
    Tensor qh = ops::SliceCols(q, off, head_dim_);
    Tensor kh = ops::SliceCols(k, off, head_dim_);
    Tensor vh = ops::SliceCols(v, off, head_dim_);
    Tensor scores = ops::Scale(ops::MatMul(qh, ops::Transpose(kh)), scale);
    if (bias.defined()) scores = ops::Add(scores, bias);
    Tensor attn = ops::Softmax(scores);
    head_outputs.push_back(ops::MatMul(attn, vh));
  }
  return wo_->Forward(ops::ConcatCols(head_outputs));
}

}  // namespace nn
}  // namespace resuformer
