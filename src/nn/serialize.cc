#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"

namespace resuformer {
namespace nn {

namespace {
// RFP1 stored only flattened element counts, so two same-size parameters
// with different shapes (e.g. a transposed projection) loaded silently into
// the wrong layout. RFP2 stores per-tensor shapes and verifies them; RFP1
// files remain readable with the legacy size-only check.
constexpr uint32_t kMagicV1 = 0x52465031;  // "RFP1"
constexpr uint32_t kMagicV2 = 0x52465032;  // "RFP2"

std::string ShapeToString(const std::vector<int>& shape) {
  std::string s = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}
}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const std::vector<Tensor> params = module.Parameters();
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&kMagicV2), sizeof(kMagicV2));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    const uint32_t rank = static_cast<uint32_t>(p.rank());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d = 0; d < p.rank(); ++d) {
      const int32_t extent = p.dim(d);
      out.write(reinterpret_cast<const char*>(&extent), sizeof(extent));
    }
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(p.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || (magic != kMagicV1 && magic != kMagicV2)) {
    return Status::IoError("bad parameter file header: " + path);
  }
  std::vector<Tensor> params = module->Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument(StringPrintf(
        "parameter count mismatch: file has %llu, module has %zu",
        static_cast<unsigned long long>(count), params.size()));
  }
  size_t index = 0;
  for (Tensor& p : params) {
    if (magic == kMagicV2) {
      uint32_t rank = 0;
      in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
      if (!in || rank > 8) {
        return Status::IoError("corrupt parameter record in " + path);
      }
      std::vector<int> shape(rank);
      for (uint32_t d = 0; d < rank; ++d) {
        int32_t extent = 0;
        in.read(reinterpret_cast<char*>(&extent), sizeof(extent));
        if (!in || extent < 0) {
          return Status::IoError("corrupt parameter record in " + path);
        }
        shape[d] = extent;
      }
      if (shape != p.shape()) {
        return Status::InvalidArgument(StringPrintf(
            "parameter %zu shape mismatch in %s: file has %s, module has %s",
            index, path.c_str(), ShapeToString(shape).c_str(),
            ShapeToString(p.shape()).c_str()));
      }
    } else {
      // Legacy RFP1 record: flattened element count only.
      uint64_t n = 0;
      in.read(reinterpret_cast<char*>(&n), sizeof(n));
      if (!in || n != static_cast<uint64_t>(p.size())) {
        return Status::InvalidArgument("parameter size mismatch in " + path);
      }
    }
    in.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(p.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated parameter file: " + path);
    ++index;
  }
  return Status::OK();
}

Status CopyParameters(const Module& source, Module* target) {
  const std::vector<Tensor> src = source.Parameters();
  std::vector<Tensor> dst = target->Parameters();
  if (src.size() != dst.size()) {
    return Status::InvalidArgument("module structures differ");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].size() != dst[i].size()) {
      return Status::InvalidArgument("parameter shapes differ");
    }
    std::copy(src[i].data(), src[i].data() + src[i].size(), dst[i].data());
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace resuformer
