#include "nn/serialize.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define RESUFORMER_HAVE_MMAP 1
#endif

#include "common/metrics.h"
#include "common/string_util.h"

namespace resuformer {
namespace nn {

namespace {
// RFP1 stored only flattened element counts, so two same-size parameters
// with different shapes (e.g. a transposed projection) loaded silently into
// the wrong layout. RFP2 stores per-tensor shapes and verifies them; RFP1
// files remain readable with the legacy size-only check. RFP3 moves the
// shape index to the front of the file and aligns every raw payload to 64
// bytes so the whole file can be mmap'd and parameters pointed straight at
// the page cache. All multi-byte fields are little-endian; a big-endian
// reader rejects the magic rather than mis-reading payloads.
constexpr uint32_t kMagicV1 = 0x52465031;  // "RFP1"
constexpr uint32_t kMagicV2 = 0x52465032;  // "RFP2"
constexpr uint32_t kMagicV3 = 0x52465033;  // "RFP3"

constexpr uint32_t kMaxRank = 8;
constexpr uint64_t kPayloadAlign = 64;

std::string ShapeToString(const std::vector<int>& shape) {
  std::string s = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

/// Byte size of the whole file, or -1 on failure. Pre-validating payload
/// extents against this is what keeps a corrupt header from driving huge
/// allocations or silent short reads.
int64_t FileSizeOf(std::ifstream* in) {
  in->seekg(0, std::ios::end);
  const std::streamoff size = in->tellg();
  in->seekg(0, std::ios::beg);
  return in->good() ? static_cast<int64_t>(size) : -1;
}

Status TruncatedRecord(size_t index, const std::string& path) {
  return Status::FailedPrecondition(StringPrintf(
      "parameter %zu: record header extends past end of file %s",
      index, path.c_str()));
}

/// One parsed RFP2/RFP3 index record.
struct ParamRecord {
  std::vector<int> shape;
  uint64_t elements = 0;
  uint64_t payload_offset = 0;  // RFP3 only
};

/// Reads the shape header of one RFP2 record, bounds-checking against the
/// remaining file bytes. Leaves the stream at the start of the payload.
Status ReadRfp2RecordHeader(std::ifstream* in, int64_t file_size,
                            size_t index, const std::string& path,
                            ParamRecord* rec) {
  uint32_t rank = 0;
  if (static_cast<int64_t>(in->tellg()) + 4 > file_size) {
    return TruncatedRecord(index, path);
  }
  in->read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!*in || rank > kMaxRank) {
    return Status::FailedPrecondition(StringPrintf(
        "parameter %zu: corrupt rank %u in %s", index, rank, path.c_str()));
  }
  if (static_cast<int64_t>(in->tellg()) + 4 * static_cast<int64_t>(rank) >
      file_size) {
    return TruncatedRecord(index, path);
  }
  rec->shape.resize(rank);
  rec->elements = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    int32_t extent = 0;
    in->read(reinterpret_cast<char*>(&extent), sizeof(extent));
    if (!*in || extent < 0) {
      return Status::FailedPrecondition(StringPrintf(
          "parameter %zu: corrupt dimension in %s", index, path.c_str()));
    }
    rec->shape[d] = extent;
    rec->elements *= static_cast<uint64_t>(extent);
  }
  // The payload must fit inside the file *before* anything reads it.
  const int64_t payload_bytes = static_cast<int64_t>(rec->elements) * 4;
  if (static_cast<int64_t>(in->tellg()) + payload_bytes > file_size) {
    return Status::FailedPrecondition(StringPrintf(
        "parameter %zu (shape %s): payload of %lld bytes extends past end "
        "of file %s",
        index, ShapeToString(rec->shape).c_str(),
        static_cast<long long>(payload_bytes), path.c_str()));
  }
  return Status::OK();
}

Status WriteRfp3File(const std::vector<std::vector<int>>& shapes,
                     const std::vector<const float*>& payloads,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const uint64_t count = shapes.size();
  // Header + index size determines where the aligned payload region starts.
  uint64_t pos = sizeof(kMagicV3) + sizeof(uint32_t) + sizeof(count);
  for (const auto& shape : shapes) {
    pos += sizeof(uint32_t) + 4 * shape.size() + sizeof(uint64_t);
  }
  std::vector<uint64_t> offsets(count);
  std::vector<uint64_t> sizes(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t elements = 1;
    for (int d : shapes[i]) elements *= static_cast<uint64_t>(d);
    pos = (pos + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
    offsets[i] = pos;
    sizes[i] = elements * 4;
    pos += sizes[i];
  }
  const uint32_t reserved = 0;
  out.write(reinterpret_cast<const char*>(&kMagicV3), sizeof(kMagicV3));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t rank = static_cast<uint32_t>(shapes[i].size());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d : shapes[i]) {
      const int32_t extent = d;
      out.write(reinterpret_cast<const char*>(&extent), sizeof(extent));
    }
    out.write(reinterpret_cast<const char*>(&offsets[i]),
              sizeof(offsets[i]));
  }
  uint64_t written = static_cast<uint64_t>(out.tellp());
  const char zeros[kPayloadAlign] = {};
  for (uint64_t i = 0; i < count; ++i) {
    if (offsets[i] > written) {
      out.write(zeros, static_cast<std::streamsize>(offsets[i] - written));
    }
    out.write(reinterpret_cast<const char*>(payloads[i]),
              static_cast<std::streamsize>(sizes[i]));
    written = offsets[i] + sizes[i];
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

#if defined(RESUFORMER_HAVE_MMAP)
/// Owns one whole-checkpoint mapping; every parameter's external_owner is a
/// shared_ptr to one of these, so the pages outlive the last tensor using
/// them and the mmap_bytes gauge tracks live mappings exactly.
struct MmapRegion {
  void* base = nullptr;
  size_t bytes = 0;
  ~MmapRegion() {
    if (base != nullptr) {
      ::munmap(base, bytes);
      metrics::MetricsRegistry::Global()
          .GetGauge("checkpoint.mmap_bytes")
          ->Add(-static_cast<int64_t>(bytes));
    }
  }
};
#endif

/// Bounds-checked little-endian cursor over an in-memory RFP3 image.
struct ByteCursor {
  const unsigned char* base = nullptr;
  uint64_t size = 0;
  uint64_t pos = 0;
  bool Read(void* out, uint64_t n) {
    if (pos + n > size || pos + n < pos) return false;
    std::memcpy(out, base + pos, n);
    pos += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return Read(v, sizeof(*v)); }
};

/// Parses and validates an RFP3 header+index against the module's shapes
/// and the actual file size. On success `records` holds one fully
/// bounds-checked entry per parameter.
Status ParseRfp3Index(const unsigned char* base, uint64_t file_size,
                      const std::vector<Tensor>& params,
                      const std::string& path,
                      std::vector<ParamRecord>* records) {
  ByteCursor cur{base, file_size, 0};
  uint32_t magic = 0, reserved = 0;
  uint64_t count = 0;
  if (!cur.ReadU32(&magic) || !cur.ReadU32(&reserved) ||
      !cur.ReadU64(&count) || magic != kMagicV3) {
    return Status::IoError("bad parameter file header: " + path);
  }
  if (count != params.size()) {
    return Status::InvalidArgument(StringPrintf(
        "parameter count mismatch: file has %llu, module has %zu",
        static_cast<unsigned long long>(count), params.size()));
  }
  records->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    ParamRecord& rec = (*records)[i];
    uint32_t rank = 0;
    if (!cur.ReadU32(&rank)) return TruncatedRecord(i, path);
    if (rank > kMaxRank) {
      return Status::FailedPrecondition(StringPrintf(
          "parameter %llu: corrupt rank %u in %s",
          static_cast<unsigned long long>(i), rank, path.c_str()));
    }
    rec.shape.resize(rank);
    rec.elements = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      int32_t extent = 0;
      if (!cur.ReadI32(&extent) || extent < 0) {
        return Status::FailedPrecondition(StringPrintf(
            "parameter %llu: corrupt dimension in %s",
            static_cast<unsigned long long>(i), path.c_str()));
      }
      rec.shape[d] = extent;
      rec.elements *= static_cast<uint64_t>(extent);
    }
    if (!cur.ReadU64(&rec.payload_offset)) return TruncatedRecord(i, path);
    if (rec.shape != params[i].shape()) {
      return Status::InvalidArgument(StringPrintf(
          "parameter %llu shape mismatch in %s: file has %s, module has %s",
          static_cast<unsigned long long>(i), path.c_str(),
          ShapeToString(rec.shape).c_str(),
          ShapeToString(params[i].shape()).c_str()));
    }
    const uint64_t bytes = rec.elements * 4;
    if (rec.payload_offset % kPayloadAlign != 0 ||
        rec.payload_offset + bytes > file_size ||
        rec.payload_offset + bytes < rec.payload_offset) {
      return Status::FailedPrecondition(StringPrintf(
          "parameter %llu (shape %s): payload [%llu, +%llu) is misaligned "
          "or extends past end of file %s",
          static_cast<unsigned long long>(i),
          ShapeToString(rec.shape).c_str(),
          static_cast<unsigned long long>(rec.payload_offset),
          static_cast<unsigned long long>(bytes), path.c_str()));
    }
  }
  return Status::OK();
}

Status LoadParametersRfp3(std::vector<Tensor>* params,
                          const std::string& path) {
#if defined(RESUFORMER_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for read: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat: " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size == 0) {
    ::close(fd);
    return Status::IoError("bad parameter file header: " + path);
  }
  // MAP_PRIVATE + PROT_READ|PROT_WRITE: reads share the page cache with
  // every other replica mapping this checkpoint; a write (fine-tuning on
  // loaded weights) faults in a private copy instead of crashing or
  // corrupting the file.
  void* base = ::mmap(nullptr, file_size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) return Status::IoError("mmap failed: " + path);
  auto region = std::make_shared<MmapRegion>();
  region->base = base;
  region->bytes = file_size;

  std::vector<ParamRecord> records;
  const Status st_idx = ParseRfp3Index(
      static_cast<const unsigned char*>(base), file_size, *params, path,
      &records);
  if (!st_idx.ok()) return st_idx;  // region unmaps on return

  metrics::MetricsRegistry::Global()
      .GetGauge("checkpoint.mmap_bytes")
      ->Add(static_cast<int64_t>(file_size));
  metrics::MetricsRegistry::Global()
      .GetCounter("checkpoint.mmap_loads")
      ->Increment();
  char* bytes = static_cast<char*>(base);
  for (size_t i = 0; i < params->size(); ++i) {
    // 64-byte payload alignment (validated above) implies float alignment.
    float* payload =
        reinterpret_cast<float*>(bytes + records[i].payload_offset);
    (*params)[i].AttachExternalStorage(payload, region);
  }
  return Status::OK();
#else
  // No mmap on this platform: stream the payloads into heap storage (same
  // validation, no zero-copy).
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  const int64_t file_size = FileSizeOf(&in);
  if (file_size < 0) return Status::IoError("cannot stat: " + path);
  std::vector<unsigned char> image(static_cast<size_t>(file_size));
  in.read(reinterpret_cast<char*>(image.data()), file_size);
  if (!in) return Status::IoError("truncated parameter file: " + path);
  std::vector<ParamRecord> records;
  const Status st_idx = ParseRfp3Index(
      image.data(), static_cast<uint64_t>(file_size), *params, path,
      &records);
  if (!st_idx.ok()) return st_idx;
  for (size_t i = 0; i < params->size(); ++i) {
    std::memcpy((*params)[i].data(), image.data() + records[i].payload_offset,
                records[i].elements * 4);
  }
  return Status::OK();
#endif
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path,
                      CheckpointFormat format) {
  const std::vector<Tensor> params = module.Parameters();
  if (format == CheckpointFormat::kRfp3) {
    std::vector<std::vector<int>> shapes;
    std::vector<const float*> payloads;
    shapes.reserve(params.size());
    payloads.reserve(params.size());
    for (const Tensor& p : params) {
      shapes.push_back(p.shape());
      payloads.push_back(p.data());
    }
    return WriteRfp3File(shapes, payloads, path);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&kMagicV2), sizeof(kMagicV2));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    const uint32_t rank = static_cast<uint32_t>(p.rank());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d = 0; d < p.rank(); ++d) {
      const int32_t extent = p.dim(d);
      out.write(reinterpret_cast<const char*>(&extent), sizeof(extent));
    }
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(p.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::vector<Tensor> params = module->Parameters();
  {
    std::ifstream sniff(path, std::ios::binary);
    if (!sniff) return Status::IoError("cannot open for read: " + path);
    uint32_t magic = 0;
    sniff.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (sniff && magic == kMagicV3) {
      return LoadParametersRfp3(&params, path);
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  const int64_t file_size = FileSizeOf(&in);
  if (file_size < 0) return Status::IoError("cannot stat: " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || (magic != kMagicV1 && magic != kMagicV2)) {
    return Status::IoError("bad parameter file header: " + path);
  }
  if (count != params.size()) {
    return Status::InvalidArgument(StringPrintf(
        "parameter count mismatch: file has %llu, module has %zu",
        static_cast<unsigned long long>(count), params.size()));
  }
  size_t index = 0;
  for (Tensor& p : params) {
    if (magic == kMagicV2) {
      ParamRecord rec;
      const Status st = ReadRfp2RecordHeader(&in, file_size, index, path, &rec);
      if (!st.ok()) return st;
      if (rec.shape != p.shape()) {
        return Status::InvalidArgument(StringPrintf(
            "parameter %zu shape mismatch in %s: file has %s, module has %s",
            index, path.c_str(), ShapeToString(rec.shape).c_str(),
            ShapeToString(p.shape()).c_str()));
      }
    } else {
      // Legacy RFP1 record: flattened element count only.
      uint64_t n = 0;
      if (static_cast<int64_t>(in.tellg()) + 8 > file_size) {
        return TruncatedRecord(index, path);
      }
      in.read(reinterpret_cast<char*>(&n), sizeof(n));
      if (!in || n != static_cast<uint64_t>(p.size())) {
        return Status::InvalidArgument("parameter size mismatch in " + path);
      }
      if (static_cast<int64_t>(in.tellg()) + static_cast<int64_t>(n) * 4 >
          file_size) {
        return Status::FailedPrecondition(StringPrintf(
            "parameter %zu: payload extends past end of file %s", index,
            path.c_str()));
      }
    }
    in.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(p.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated parameter file: " + path);
    ++index;
  }
  return Status::OK();
}

Status ConvertRfp2ToRfp3(const std::string& src_path,
                         const std::string& dst_path) {
  std::ifstream in(src_path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + src_path);
  const int64_t file_size = FileSizeOf(&in);
  if (file_size < 0) return Status::IoError("cannot stat: " + src_path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagicV2) {
    return Status::InvalidArgument("not an RFP2 checkpoint: " + src_path);
  }
  // RFP2 records are self-describing, so conversion needs no module — but
  // an absurd count would only be caught record-by-record below, each of
  // which bounds-checks against the true file size before allocating.
  std::vector<std::vector<int>> shapes;
  std::vector<std::vector<float>> data;
  for (uint64_t i = 0; i < count; ++i) {
    ParamRecord rec;
    const Status st = ReadRfp2RecordHeader(
        &in, file_size, static_cast<size_t>(i), src_path, &rec);
    if (!st.ok()) return st;
    std::vector<float> payload(rec.elements);
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(rec.elements * 4));
    if (!in) return Status::IoError("truncated parameter file: " + src_path);
    shapes.push_back(std::move(rec.shape));
    data.push_back(std::move(payload));
  }
  std::vector<const float*> payloads;
  payloads.reserve(data.size());
  for (const auto& d : data) payloads.push_back(d.data());
  return WriteRfp3File(shapes, payloads, dst_path);
}

Status CopyParameters(const Module& source, Module* target) {
  const std::vector<Tensor> src = source.Parameters();
  std::vector<Tensor> dst = target->Parameters();
  if (src.size() != dst.size()) {
    return Status::InvalidArgument("module structures differ");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].size() != dst[i].size()) {
      return Status::InvalidArgument("parameter shapes differ");
    }
    std::copy(src[i].data(), src[i].data() + src[i].size(), dst[i].data());
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace resuformer
