#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"

namespace resuformer {
namespace nn {

namespace {
constexpr uint32_t kMagic = 0x52465031;  // "RFP1"
}

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const std::vector<Tensor> params = module.Parameters();
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    const uint64_t n = static_cast<uint64_t>(p.size());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return Status::IoError("bad parameter file header: " + path);
  }
  std::vector<Tensor> params = module->Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument(StringPrintf(
        "parameter count mismatch: file has %llu, module has %zu",
        static_cast<unsigned long long>(count), params.size()));
  }
  for (Tensor& p : params) {
    uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || n != static_cast<uint64_t>(p.size())) {
      return Status::InvalidArgument("parameter size mismatch in " + path);
    }
    in.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) return Status::IoError("truncated parameter file: " + path);
  }
  return Status::OK();
}

Status CopyParameters(const Module& source, Module* target) {
  const std::vector<Tensor> src = source.Parameters();
  std::vector<Tensor> dst = target->Parameters();
  if (src.size() != dst.size()) {
    return Status::InvalidArgument("module structures differ");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].size() != dst[i].size()) {
      return Status::InvalidArgument("parameter shapes differ");
    }
    std::copy(src[i].data(), src[i].data() + src[i].size(), dst[i].data());
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace resuformer
