#ifndef RESUFORMER_NN_MODULE_H_
#define RESUFORMER_NN_MODULE_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace resuformer {
namespace nn {

/// \brief Base class for trainable components.
///
/// A Module owns parameters (registered via RegisterParameter) and may own
/// child modules (registered via RegisterModule; lifetime is managed by the
/// owner, typically as member fields). Parameters() flattens the tree in
/// registration order, which also defines the serialization layout.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants, in a deterministic
  /// order (own parameters first, then children in registration order).
  std::vector<Tensor> Parameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Clears the gradient buffers of every parameter.
  void ZeroGrad();

  /// Training mode toggles dropout and similar stochastic behaviour.
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  /// Registers `t` as a trainable leaf (sets requires_grad).
  Tensor RegisterParameter(Tensor t);

  /// Registers a child; `child` must outlive this module.
  void RegisterModule(Module* child);

 private:
  std::vector<Tensor> parameters_;
  std::vector<Module*> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_MODULE_H_
