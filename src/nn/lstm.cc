#include "nn/lstm.h"

#include <cmath>

#include "tensor/ops.h"

namespace resuformer {
namespace nn {

Lstm::Lstm(int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(input_dim + 4 * hidden_dim));
  w_ih_ = RegisterParameter(
      Tensor::Uniform({input_dim, 4 * hidden_dim}, rng, -bound, bound));
  const float rbound = std::sqrt(6.0f / static_cast<float>(5 * hidden_dim));
  w_hh_ = RegisterParameter(
      Tensor::Uniform({hidden_dim, 4 * hidden_dim}, rng, -rbound, rbound));
  // Forget-gate bias initialized to 1 (standard trick for gradient flow).
  Tensor bias = Tensor::Zeros({4 * hidden_dim});
  for (int j = hidden_dim; j < 2 * hidden_dim; ++j) bias.at(j) = 1.0f;
  bias_ = RegisterParameter(bias);
}

Tensor Lstm::Forward(const Tensor& x, bool reverse) const {
  const int t_len = x.rows();
  const int h = hidden_dim_;
  // Precompute input projections for every step at once.
  Tensor proj = ops::Add(ops::MatMul(x, w_ih_), bias_);  // [T, 4H]

  Tensor h_prev = Tensor::Zeros({1, h});
  Tensor c_prev = Tensor::Zeros({1, h});
  std::vector<Tensor> outputs(t_len);
  for (int step = 0; step < t_len; ++step) {
    const int t = reverse ? t_len - 1 - step : step;
    Tensor gates = ops::Add(ops::SliceRows(proj, t, 1),
                            ops::MatMul(h_prev, w_hh_));  // [1, 4H]
    Tensor i_gate = ops::Sigmoid(ops::SliceCols(gates, 0, h));
    Tensor f_gate = ops::Sigmoid(ops::SliceCols(gates, h, h));
    Tensor g_gate = ops::Tanh(ops::SliceCols(gates, 2 * h, h));
    Tensor o_gate = ops::Sigmoid(ops::SliceCols(gates, 3 * h, h));
    Tensor c_new =
        ops::Add(ops::Mul(f_gate, c_prev), ops::Mul(i_gate, g_gate));
    Tensor h_new = ops::Mul(o_gate, ops::Tanh(c_new));
    outputs[t] = h_new;
    h_prev = h_new;
    c_prev = c_new;
  }
  return ops::ConcatRows(outputs);
}

BiLstm::BiLstm(int input_dim, int hidden_dim, Rng* rng) {
  forward_ = std::make_unique<Lstm>(input_dim, hidden_dim, rng);
  backward_ = std::make_unique<Lstm>(input_dim, hidden_dim, rng);
  RegisterModule(forward_.get());
  RegisterModule(backward_.get());
}

Tensor BiLstm::Forward(const Tensor& x) const {
  Tensor fwd = forward_->Forward(x, /*reverse=*/false);
  Tensor bwd = backward_->Forward(x, /*reverse=*/true);
  return ops::ConcatCols({fwd, bwd});
}

int BiLstm::output_dim() const { return 2 * forward_->hidden_dim(); }

}  // namespace nn
}  // namespace resuformer
