#ifndef RESUFORMER_NN_ATTENTION_H_
#define RESUFORMER_NN_ATTENTION_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace resuformer {
namespace nn {

/// \brief Multi-head scaled-dot-product self-attention.
///
/// Single-sequence formulation: the input is [T, D]; heads are column slices
/// of the projected Q/K/V matrices. An optional additive attention bias
/// [T, T] supports padding masks (-inf entries) and locality priors.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int dim, int num_heads, Rng* rng);

  /// x: [T, dim] -> [T, dim]. `bias` (optional) is added to the raw
  /// attention scores of every head.
  Tensor Forward(const Tensor& x, const Tensor& bias = Tensor()) const;

  int dim() const { return dim_; }
  int num_heads() const { return num_heads_; }

 private:
  int dim_;
  int num_heads_;
  int head_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_ATTENTION_H_
