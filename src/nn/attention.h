#ifndef RESUFORMER_NN_ATTENTION_H_
#define RESUFORMER_NN_ATTENTION_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace resuformer {
namespace nn {

/// \brief Multi-head scaled-dot-product self-attention.
///
/// Single-sequence formulation: the input is [T, D]; heads are column slices
/// of the projected Q/K/V matrices. An optional additive attention bias
/// [T, T] supports padding masks (-inf entries) and locality priors.
///
/// Two execution paths compute the same function:
///  * fused (default): one ops::FusedMultiHeadAttention node over strided
///    head views — no per-head slice/transpose/concat copies, one fork-join
///    for all heads, full autograd support;
///  * reference (`fused = false`): the composed per-head op chain
///    (SliceCols / MatMul / Transpose / Scale / Add / Softmax / ConcatCols).
/// Fused results are deterministic and bit-identical across thread counts;
/// against the reference path they agree to float rounding (within 1e-5
/// relative on forward and backward — the score reductions run as
/// SIMD-reassociated dots, see kernels::GemmNTVec).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int dim, int num_heads, Rng* rng, bool fused = true);

  /// x: [T, dim] -> [T, dim]. `bias` (optional) is added to the raw
  /// attention scores of every head.
  Tensor Forward(const Tensor& x, const Tensor& bias = Tensor()) const;

  int dim() const { return dim_; }
  int num_heads() const { return num_heads_; }
  bool fused() const { return fused_; }

 private:
  int dim_;
  int num_heads_;
  int head_dim_;
  bool fused_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_ATTENTION_H_
