#ifndef RESUFORMER_NN_OPTIMIZER_H_
#define RESUFORMER_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace resuformer {
namespace nn {

/// Common optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in the params.
  virtual void Step() = 0;

  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`;
  /// returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  /// Per-parameter-group learning-rate override: parameters added here use
  /// `lr` instead of the optimizer default (the paper fine-tunes the encoder
  /// at 5e-5 but the BiLSTM+CRF head at 1e-3).
  void SetLearningRateFor(const std::vector<Tensor>& params, float lr);

 protected:
  float LearningRateFor(const TensorImpl* p, float default_lr) const;

  std::vector<Tensor> params_;
  std::unordered_map<const TensorImpl*, float> lr_overrides_;
};

/// Adam with decoupled weight decay (AdamW-style; the paper uses Adam with
/// weight decay 0.01).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_ = 0;
  std::unordered_map<const TensorImpl*, std::vector<float>> m_;
  std::unordered_map<const TensorImpl*, std::vector<float>> v_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::unordered_map<const TensorImpl*, std::vector<float>> velocity_;
};

}  // namespace nn
}  // namespace resuformer

#endif  // RESUFORMER_NN_OPTIMIZER_H_
